(* The EVEREST command-line tool.

     everest_cli compile [--size N] [--emit ir|sycl|rtl|variants]
         compile the demo tensor pipeline and print the requested artifact
     everest_cli run [--policy P] [--fpgas K] [--kill NODE:T]..
         compile and execute the demo workflow on the simulated
         demonstrator; exhausted recovery exits 1 with a structured error
     everest_cli serve [--requests N] [--goal time|energy]
         adaptively serve the hot kernel through the virtualized runtime
     everest_cli recover [--seed S] [--crash-after N] [--snapshot-every T]
         crash-recovery drill: run the journaled serving fabric and the
         checkpointed workflow executor, kill each at a seeded mid-run
         journal record, restore, and byte-compare the resumed reports
         against uninterrupted same-seed runs; exit 1 on any mismatch
     everest_cli recover --demo
         corrupt snapshots (bit-flip, truncation, version skew): each must
         be detected and fallen back over, an all-corrupt store must be
         refused with a typed error (exits 1)
     everest_cli hls [--unroll U] [--dift]
         synthesize the demo kernel and print the HLS report + RTL sketch
     everest_cli telemetry [--trace-out F] [--metrics-out F] [--format t|p]
         run the demonstrator workflow + adaptive serving fully
         instrumented; emit a Chrome trace-event JSON and a metrics dump
     everest_cli chaos [--seed S] [--fault-rate R] [--format text|json]
         deterministic fault-injection drill: run the example workflows
         under a seeded fault plan with the recovery policy on, twice,
         plus a circuit-breaker degradation demo; exit 1 on any failure
     everest_cli lint [FILE..] [--demo] [--examples] [--format text|json]
         run the static-analysis rules over textual IR modules (or the
         seeded-defect / lowered-example modules); exit 1 on errors
     everest_cli observe [--seed S] [--format text|json] [--out F]
         run the stress workflow traced under a seeded fault plan plus an
         SLO-monitored serving phase; print the analytics report (critical
         path, per-node utilization, SLO verdicts); exit 1 if any internal
         consistency check fails or an SLO is violated
     everest_cli observe --demo
         deliberately violate the availability SLO so the burn-rate alert
         fires (exercises the failure path; exits 1)
     everest_cli observe --diff A.json B.json
         diff two saved reports; exit 1 on regressions beyond tolerance
     everest_cli estee [--tasks N] [--family F] [--policy P] [--budget-s T]
         Estee-style scheduler scale smoke: plan (and optionally execute)
         one generated DAG family instance; exit 1 if the wall clock
         exceeds the budget — the CI guard against O(n^2) regressions
     everest_cli plan-lint [--examples] [--family F --tasks N --policy P]
                           [--demo] [--strict] [--format text|json]
         statically sanitize execution plans (EV1xx): structure,
         happens-before, placement capability and SLO feasibility; exit 1
         on errors, --demo seeds one defective plan per class            *)

open Cmdliner
module Sdk = Everest.Sdk
module Dsl = Everest_dsl
module TE = Everest_dsl.Tensor_expr
module Tel = Everest_telemetry
module EIr = Everest_ir
module Lint = Everest_analysis.Lint

let demo_graph n =
  let g = Sdk.workflow "demo" in
  let src = Dsl.Dataflow.source g "input" ~bytes:(8 * n * n) in
  let x = TE.input "x" [ n; n ] in
  let mm =
    Dsl.Dataflow.task g "mm" (Dsl.Dataflow.Tensor_kernel (TE.matmul x x))
      ~deps:[ src ]
  in
  let act =
    Dsl.Dataflow.task g "act"
      (Dsl.Dataflow.Tensor_kernel (TE.relu (TE.input "y" [ n; n ])))
      ~deps:[ mm ]
  in
  Dsl.Dataflow.sink g "out" act;
  g

(* ---- compile --------------------------------------------------------------- *)

let compile_cmd =
  let size =
    Arg.(value & opt int 64 & info [ "size" ] ~docv:"N" ~doc:"Tensor size N×N.")
  in
  let emit =
    Arg.(
      value
      & opt (enum [ ("ir", `Ir); ("sycl", `Sycl); ("variants", `Variants);
                    ("report", `Report) ])
          `Report
      & info [ "emit" ] ~doc:"Artifact to print: ir, sycl, variants, report.")
  in
  let run size emit =
    let app = Sdk.compile (demo_graph size) in
    match emit with
    | `Ir ->
        print_string
          (Everest_ir.Printer.module_to_string app.Everest_compiler.Pipeline.ir)
    | `Sycl ->
        List.iter
          (fun k -> print_string k.Everest_compiler.Pipeline.sycl)
          app.Everest_compiler.Pipeline.kernels
    | `Variants ->
        List.iter
          (fun k ->
            Format.printf "kernel %s:@." k.Everest_compiler.Pipeline.ck_name;
            List.iter
              (fun v -> Format.printf "  %a@." Everest_compiler.Variants.pp v)
              k.Everest_compiler.Pipeline.dse.Everest_compiler.Dse.variants)
          app.Everest_compiler.Pipeline.kernels
    | `Report -> Format.printf "%a" Everest_compiler.Pipeline.report app
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile the demo pipeline.")
    Term.(const run $ size $ emit)

(* ---- run ------------------------------------------------------------------- *)

(* NODE:TIME pairs for --kill, shared by run and telemetry. *)
let node_time_conv =
  let parse s =
    match String.rindex_opt s ':' with
    | Some i -> (
        let node = String.sub s 0 i
        and t = String.sub s (i + 1) (String.length s - i - 1) in
        match float_of_string_opt t with
        | Some t when node <> "" -> Ok (node, t)
        | _ -> Error (`Msg "expected NODE:TIME, e.g. cf0:0.0001"))
    | None -> Error (`Msg "expected NODE:TIME, e.g. cf0:0.0001")
  in
  let print ppf (n, t) = Format.fprintf ppf "%s:%g" n t in
  Cmdliner.Arg.conv (parse, print)

let run_cmd =
  let policy =
    Arg.(
      value & opt string "heft-locality"
      & info [ "policy" ] ~doc:"Scheduling policy.")
  in
  let fpgas =
    Arg.(value & opt int 4 & info [ "fpgas" ] ~doc:"Number of cloudFPGA nodes.")
  in
  let size =
    Arg.(value & opt int 128 & info [ "size" ] ~docv:"N" ~doc:"Tensor size.")
  in
  let kills =
    Arg.(
      value & opt_all node_time_conv []
      & info [ "kill" ] ~docv:"NODE:T"
          ~doc:"Fail node NODE permanently at simulated time T (repeatable).")
  in
  let retries =
    Arg.(
      value & opt int 3
      & info [ "retries" ] ~doc:"Per-task retry budget under --kill.")
  in
  let run policy fpgas size kills retries =
    let module Res = Everest_resilience in
    let module Wf = Sdk.Workflow in
    let app = Sdk.compile (demo_graph size) in
    let faults = Res.Faults.of_failures kills in
    let exec_policy = { Res.Policy.default with Res.Policy.max_retries = retries } in
    match Sdk.run ~policy ~cloud_fpgas:fpgas ~faults ~exec_policy app with
    | stats -> Format.printf "%a@." Sdk.pp_run stats
    | exception Wf.Executor.Execution_failed { reason; partial } ->
        let total = Array.length partial.Wf.Executor.task_finish in
        let completed =
          Array.fold_left
            (fun acc f -> if f >= 0.0 then acc + 1 else acc)
            0 partial.Wf.Executor.task_finish
        in
        Format.eprintf
          "error: execution failed: %s@.  completed %d/%d tasks, retries=%d \
           timeouts=%d recomputed=%d@."
          reason completed total partial.Wf.Executor.retries
          partial.Wf.Executor.timeouts partial.Wf.Executor.recomputed;
        exit 1
  in
  Cmd.v (Cmd.info "run" ~doc:"Run the demo workflow on the demonstrator.")
    Term.(const run $ policy $ fpgas $ size $ kills $ retries)

(* ---- serve ----------------------------------------------------------------- *)

(* Serving-fleet drill: a seeded multi-tenant workload through N
   orchestrator shards behind admission control, a balancer, batching and
   worker auto-allocation.  Built-in checks (exit 1 on failure): the run
   must serve, keep availability and the per-tenant SLOs, shed nothing,
   and a second same-seed run must produce a byte-identical request log
   and SLO outcomes.  [--demo] deliberately overloads a starved fleet so
   the checks fail. *)
let serve_cmd =
  let module Srv = Everest_serving in
  let module Res = Everest_resilience in
  let module Obs = Everest_observe in
  let shards =
    Arg.(value & opt int 2 & info [ "shards" ] ~docv:"N" ~doc:"Shard count.")
  in
  let seed =
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"S" ~doc:"Workload seed.")
  in
  let balancer =
    Arg.(
      value & opt string "least-outstanding"
      & info [ "balancer" ] ~docv:"POLICY"
          ~doc:"Routing policy: rr, least-outstanding, affinity.")
  in
  let rate =
    Arg.(
      value & opt float 150.0
      & info [ "rate" ] ~docv:"RPS" ~doc:"Open-loop tenant arrival rate.")
  in
  let horizon =
    Arg.(
      value & opt float 0.3
      & info [ "horizon" ] ~docv:"T" ~doc:"Workload horizon in seconds.")
  in
  let fault_rate =
    Arg.(
      value & opt float 0.0
      & info [ "fault-rate" ] ~docv:"R"
          ~doc:"Per-shard crash probability over the horizon.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~doc:"Report format: text, json.")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the JSON report to FILE.")
  in
  let demo =
    Arg.(
      value & flag
      & info [ "demo" ]
          ~doc:
            "Overload a starved single-worker fleet so requests are shed \
             and the latency SLO burns (exits 1).")
  in
  let run shards seed balancer rate horizon fault_rate format out demo =
    let balancer =
      match Srv.Balancer.policy_of_string balancer with
      | Some p -> p
      | None ->
          Format.eprintf "error: unknown balancer policy %S@." balancer;
          exit 2
    in
    let tenants =
      [ Srv.Workload.open_tenant ~name:"acme" ~kernel:"mm"
          ~rate_rps:(if demo then 4000.0 else rate)
          ~diurnal_amplitude:0.3 ~diurnal_period_s:1.0
          ~burst:
            { Srv.Workload.burst_factor = 3.0; mean_calm_s = 0.1;
              mean_burst_s = 0.05 }
          ~features:(fun seq ->
            [ ("size", float_of_int (1024 + (64 * (seq mod 4)))) ])
          ();
        Srv.Workload.closed_tenant ~name:"globex" ~kernel:"mm" ~users:4
          ~think_s:0.05 () ]
    in
    let base = Srv.Fabric.default_config ~n_shards:shards in
    let faults =
      if fault_rate <= 0.0 then Res.Faults.none
      else
        Res.Faults.random_plan ~seed ~fault_rate
          ~mean_downtime:(0.25 *. horizon)
          ~nodes:(List.init shards (Printf.sprintf "shard%d"))
          ~horizon ()
    in
    let config =
      if demo then
        (* starved on purpose: one worker, no batching headroom, a tiny
           queue bound and a tight latency SLO *)
        { base with
          Srv.Fabric.seed; balancer; faults; max_queue = 16;
          autoscale = Srv.Autoscale.fixed 1;
          batcher =
            { Srv.Batcher.max_batch = 1; max_delay_s = 0.0;
              marginal_cost = 1.0 };
          tenant_slos =
            [ Obs.Slo.availability "availability" 0.99;
              Obs.Slo.latency "p99-latency" ~q:0.99 ~limit_s:0.002 ] }
      else { base with Srv.Fabric.seed; balancer; faults }
    in
    let once () =
      Srv.Fabric.run ~registry:(Tel.Metrics.create_registry ()) config
        ~deploy:(Srv.Fabric.demo_deploy ()) ~tenants ~horizon
    in
    let r = once () in
    let again = once () in
    let identical =
      String.equal (Srv.Fabric.render_log r) (Srv.Fabric.render_log again)
      && String.equal (Srv.Fabric.render_slos r)
           (Srv.Fabric.render_slos again)
    in
    let served = Srv.Fabric.served_ok r in
    let shed = Srv.Fabric.shed r in
    let availability = Srv.Fabric.availability r in
    let slos_met =
      List.for_all
        (fun tr ->
          List.for_all
            (fun (res : Obs.Slo.result) -> res.Obs.Slo.met)
            tr.Srv.Fabric.tr_slos)
        r.Srv.Fabric.f_tenants
    in
    let checks =
      [ ("served", served > 0);
        ("availability", availability >= 0.99);
        ("slos_met", slos_met);
        ("nothing_shed", shed = 0);
        ("deterministic", identical) ]
    in
    let all_ok = List.for_all snd checks in
    let json =
      Obs.Json.Obj
        [ ("shards", Obs.Json.Num (float_of_int shards));
          ("seed", Obs.Json.Num (float_of_int seed));
          ("balancer",
           Obs.Json.Str (Srv.Balancer.policy_name config.Srv.Fabric.balancer));
          ("horizon_s", Obs.Json.Num horizon);
          ("requests", Obs.Json.Num (float_of_int (List.length r.Srv.Fabric.f_log)));
          ("served", Obs.Json.Num (float_of_int served));
          ("failed", Obs.Json.Num (float_of_int (Srv.Fabric.failed r)));
          ("shed", Obs.Json.Num (float_of_int shed));
          ("availability", Obs.Json.Num availability);
          ("throughput_rps", Obs.Json.Num (Srv.Fabric.throughput_rps r));
          ("p99_latency_s", Obs.Json.Num (Srv.Fabric.latency_quantile r 0.99));
          ("batched_requests",
           Obs.Json.Num (float_of_int (Srv.Fabric.batched_requests r)));
          ("workers_spawned", Obs.Json.Num (float_of_int r.Srv.Fabric.f_spawned));
          ("workers_retired", Obs.Json.Num (float_of_int r.Srv.Fabric.f_retired));
          ("reroutes", Obs.Json.Num (float_of_int r.Srv.Fabric.f_reroutes));
          ("tenants",
           Obs.Json.Arr
             (List.map
                (fun tr ->
                  Obs.Json.Obj
                    [ ("tenant", Obs.Json.Str tr.Srv.Fabric.tr_tenant);
                      ("requests",
                       Obs.Json.Num (float_of_int tr.Srv.Fabric.tr_requests));
                      ("served",
                       Obs.Json.Num (float_of_int tr.Srv.Fabric.tr_served));
                      ("shed",
                       Obs.Json.Num
                         (float_of_int
                            (List.fold_left
                               (fun acc (_, n) -> acc + n)
                               0 tr.Srv.Fabric.tr_shed)));
                      ("burn_alerts",
                       Obs.Json.Num (float_of_int tr.Srv.Fabric.tr_alerts));
                      ("slos",
                       Obs.Json.Arr
                         (List.map Obs.Slo.result_to_json
                            tr.Srv.Fabric.tr_slos)) ])
                r.Srv.Fabric.f_tenants));
          ("checks",
           Obs.Json.Obj
             (List.map (fun (n, ok) -> (n, Obs.Json.Bool ok)) checks
             @ [ ("passed", Obs.Json.Bool all_ok) ])) ]
    in
    (match out with
    | None -> ()
    | Some f ->
        let oc = open_out f in
        output_string oc (Obs.Json.to_string ~pretty:true json);
        output_string oc "\n";
        close_out oc);
    (match format with
    | `Json -> print_string (Obs.Json.to_string ~pretty:true json ^ "\n")
    | `Text ->
        print_string (Srv.Fabric.render_summary r);
        List.iter
          (fun (n, ok) ->
            Printf.printf "check %-14s %s\n" n (if ok then "ok" else "FAILED"))
          checks;
        print_string
          (if all_ok then "serve drill passed\n" else "serve drill FAILED\n"));
    if not all_ok then exit 1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serving-fleet drill: sharded multi-tenant serving with checks.")
    Term.(
      const run $ shards $ seed $ balancer $ rate $ horizon $ fault_rate
      $ format $ out $ demo)

(* ---- recover ---------------------------------------------------------------- *)

(* Crash-recovery drill: run the serving fabric with write-ahead
   journaling on, kill it at a seeded mid-run journal record, restore
   from the latest snapshot + journal tail, and byte-compare the resumed
   report against the uninterrupted same-seed run; then the same for the
   workflow executor (journaled deterministic replay).  Exit 1 on any
   mismatch.  [--demo] corrupts the newest snapshot three ways (bit-flip,
   truncation, version skew): each must be detected and fallen back over,
   and a store with every snapshot damaged must be refused with a typed
   error — the demo exits 1 to prove the detection path fired. *)
let recover_cmd =
  let module Srv = Everest_serving in
  let module Res = Everest_resilience in
  let module Obs = Everest_observe in
  let module Rec = Everest_recovery in
  let module Wf = Everest_workflow in
  let seed =
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"S" ~doc:"Workload seed.")
  in
  let shards =
    Arg.(value & opt int 2 & info [ "shards" ] ~docv:"N" ~doc:"Shard count.")
  in
  let rate =
    Arg.(
      value & opt float 150.0
      & info [ "rate" ] ~docv:"RPS" ~doc:"Open-loop tenant arrival rate.")
  in
  let horizon =
    Arg.(
      value & opt float 0.5
      & info [ "horizon" ] ~docv:"T" ~doc:"Workload horizon in seconds.")
  in
  let snapshot_every =
    Arg.(
      value & opt float 0.1
      & info [ "snapshot-every" ] ~docv:"T"
          ~doc:"Fabric snapshot interval in simulated seconds.")
  in
  let crash_after =
    Arg.(
      value & opt int 0
      & info [ "crash-after" ] ~docv:"N"
          ~doc:"Kill after N journal records (0: mid-run).")
  in
  let dir =
    Arg.(
      value
      & opt string (Filename.concat (Filename.get_temp_dir_name ()) "everest-recover")
      & info [ "dir" ] ~docv:"DIR" ~doc:"Recovery store directory.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~doc:"Report format: text, json.")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the JSON report to FILE.")
  in
  let dump_baseline =
    Arg.(
      value & opt (some string) None
      & info [ "dump-baseline" ] ~docv:"FILE"
          ~doc:"Write the uninterrupted run's report to FILE (for cmp).")
  in
  let dump_resumed =
    Arg.(
      value & opt (some string) None
      & info [ "dump-resumed" ] ~docv:"FILE"
          ~doc:"Write the crash-restart-resumed report to FILE (for cmp).")
  in
  let demo =
    Arg.(
      value & flag
      & info [ "demo" ]
          ~doc:
            "Corrupt snapshots (bit-flip, truncation, version skew); the \
             store must detect each, fall back, and refuse an all-corrupt \
             store with a typed error (exits 1).")
  in
  let run seed shards rate horizon snapshot_every crash_after dir format out
      dump_baseline dump_resumed demo =
    let tenants =
      [ Srv.Workload.open_tenant ~name:"acme" ~kernel:"mm" ~rate_rps:rate
          ~diurnal_amplitude:0.3 ~diurnal_period_s:1.0
          ~features:(fun seq ->
            [ ("size", float_of_int (1024 + (64 * (seq mod 4)))) ])
          ();
        Srv.Workload.closed_tenant ~name:"globex" ~kernel:"mm" ~users:4
          ~think_s:0.05 () ]
    in
    let config =
      { (Srv.Fabric.default_config ~n_shards:shards) with
        Srv.Fabric.seed;
        faults =
          Res.Faults.plan ~seed ~transient_prob:0.05 ~fpga_transient_prob:0.1
            () }
    in
    let fp = Srv.Fabric.fingerprint config ~tenants ~horizon in
    let render r =
      Srv.Fabric.render_log r ^ "\n" ^ Srv.Fabric.render_slos r ^ "\n"
      ^ Srv.Fabric.render_summary r
    in
    let fab_run ?recovery () =
      Srv.Fabric.run ~registry:(Tel.Metrics.create_registry ()) ?recovery
        config ~deploy:(Srv.Fabric.demo_deploy ()) ~tenants ~horizon
    in
    let read_file path =
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let write_file path contents =
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc contents)
    in
    (* uninterrupted journaled run: the reference report *)
    let base_store =
      Rec.Store.open_store ~fresh:true ~dir:(Filename.concat dir "baseline")
        ~fingerprint:fp ()
    in
    let baseline =
      render
        (fab_run
           ~recovery:
             { Srv.Fabric.rv_store = base_store;
               rv_snapshot_every_s = snapshot_every }
           ())
    in
    let records = base_store.Rec.Store.records_written in
    let snapshots = base_store.Rec.Store.snapshots_written in
    Rec.Store.close base_store;
    let after =
      if crash_after > 0 then min crash_after (max 1 (records - 1))
      else max 1 (records / 2)
    in
    (* crashed run: the armed record is flushed, then the process "dies" *)
    let crash_dir = Filename.concat dir "crash" in
    let store =
      Rec.Store.open_store ~fresh:true ~dir:crash_dir ~fingerprint:fp ()
    in
    Rec.Store.arm_crash store ~after_records:after;
    let recovery =
      { Srv.Fabric.rv_store = store; rv_snapshot_every_s = snapshot_every }
    in
    let crashed =
      try
        ignore (fab_run ~recovery ());
        false
      with Rec.Journal.Crashed -> true
    in
    Rec.Store.close store;
    if demo then begin
      (* corruption drills against the crashed store *)
      let newest_snap () =
        Sys.readdir crash_dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".esnap")
        |> List.sort compare |> List.rev |> List.hd
        |> Filename.concat crash_dir
      in
      let corruptions =
        [ ( "bit-flip",
            fun path ->
              let b = Bytes.of_string (read_file path) in
              let off = Bytes.length b - 7 in
              Bytes.set b off
                (Char.chr (Char.code (Bytes.get b off) lxor 0x01));
              write_file path (Bytes.to_string b) );
          ( "truncation",
            fun path ->
              let s = read_file path in
              write_file path (String.sub s 0 (String.length s / 2)) );
          ( "version-skew",
            fun path ->
              let s = read_file path in
              write_file path
                ("EVEREST-SNAP v9" ^ String.sub s 15 (String.length s - 15)) )
        ]
      in
      let all_detected =
        List.for_all
          (fun (kind, corrupt) ->
            let snap = newest_snap () in
            let pristine = read_file snap in
            corrupt snap;
            let store =
              Rec.Store.open_store ~dir:crash_dir ~fingerprint:fp ()
            in
            let recovery =
              { Srv.Fabric.rv_store = store;
                rv_snapshot_every_s = snapshot_every }
            in
            let resumed, report =
              Srv.Fabric.resume ~registry:(Tel.Metrics.create_registry ())
                ~recovery config ~deploy:(Srv.Fabric.demo_deploy ()) ~tenants
                ~horizon
            in
            Rec.Store.close store;
            let detected = report.Srv.Fabric.rr_fallbacks >= 1 in
            let identical = String.equal baseline (render resumed) in
            Printf.printf
              "recover demo: %-12s detected=%b fell back to snapshot %d, \
               report identical=%b\n"
              kind detected report.Srv.Fabric.rr_snapshot_index identical;
            write_file snap pristine;
            detected && identical)
          corruptions
      in
      (* every snapshot damaged: restore must refuse with a typed error *)
      Sys.readdir crash_dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".esnap")
      |> List.iter (fun f ->
             let path = Filename.concat crash_dir f in
             write_file path ("XX" ^ read_file path));
      let refused =
        let store = Rec.Store.open_store ~dir:crash_dir ~fingerprint:fp () in
        let recovery =
          { Srv.Fabric.rv_store = store; rv_snapshot_every_s = snapshot_every }
        in
        match
          Srv.Fabric.resume ~recovery config
            ~deploy:(Srv.Fabric.demo_deploy ()) ~tenants ~horizon
        with
        | _ ->
            Rec.Store.close store;
            false
        | exception Rec.Store.Recovery_error e ->
            Rec.Store.close store;
            Printf.printf "recover demo: all-corrupt store refused: %s\n"
              (Rec.Store.error_to_string e);
            true
      in
      print_endline
        (if all_detected && refused then
           "recover demo: corruption detected and contained (exiting 1)"
         else "recover demo: DETECTION FAILED");
      exit 1
    end;
    (* restore from the crashed store and finish the run *)
    let store = Rec.Store.open_store ~dir:crash_dir ~fingerprint:fp () in
    let recovery =
      { Srv.Fabric.rv_store = store; rv_snapshot_every_s = snapshot_every }
    in
    let t0 = Sys.time () in
    let resumed_r, report =
      Srv.Fabric.resume ~registry:(Tel.Metrics.create_registry ()) ~recovery
        config ~deploy:(Srv.Fabric.demo_deploy ()) ~tenants ~horizon
    in
    let recovery_s = Sys.time () -. t0 in
    Rec.Store.close store;
    let resumed = render resumed_r in
    let fab_identical = String.equal baseline resumed in
    (match dump_baseline with
    | Some f -> write_file f baseline
    | None -> ());
    (match dump_resumed with
    | Some f -> write_file f resumed
    | None -> ());
    (* executor drill: journaled deterministic replay from genesis *)
    let exec_digest (s : Wf.Executor.stats) =
      let buf = Buffer.create 1024 in
      Buffer.add_string buf
        (Printf.sprintf "makespan=%.9f retries=%d timeouts=%d recomp=%d\n"
           s.Wf.Executor.makespan s.Wf.Executor.retries s.Wf.Executor.timeouts
           s.Wf.Executor.recomputed);
      Array.iteri
        (fun i f -> Buffer.add_string buf (Printf.sprintf "%d=%.9f\n" i f))
        s.Wf.Executor.task_finish;
      List.iter
        (fun (n, k) -> Buffer.add_string buf (Printf.sprintf "%s:%d\n" n k))
        s.Wf.Executor.per_node_tasks;
      Buffer.contents buf
    in
    let exec_run ?checkpoint () =
      let d =
        Wf.Dag.layered ~seed ~layers:5 ~width:6 ~flops:1e9 ~bytes:1e6 ()
      in
      let c = Everest_platform.Cluster.everest_demonstrator () in
      let plan = Wf.Scheduler.heft c d in
      Wf.Executor.execute
        ~faults:(Res.Faults.plan ~seed ~transient_prob:0.02 ())
        ~registry:(Tel.Metrics.create_registry ()) ?checkpoint c plan
    in
    let exec_dir = Filename.concat dir "executor" in
    let store =
      Rec.Store.open_store ~fresh:true ~dir:exec_dir ~fingerprint:"executor" ()
    in
    let exec_base =
      exec_digest
        (exec_run ~checkpoint:(Wf.Checkpoint.create ~store ~every:7) ())
    in
    let exec_records = store.Rec.Store.records_written in
    Rec.Store.close store;
    let exec_after = max 1 (exec_records / 2) in
    let store =
      Rec.Store.open_store ~fresh:true ~dir:exec_dir ~fingerprint:"executor" ()
    in
    Rec.Store.arm_crash store ~after_records:exec_after;
    let exec_crashed =
      try
        ignore
          (exec_run ~checkpoint:(Wf.Checkpoint.create ~store ~every:7) ());
        false
      with Rec.Journal.Crashed -> true
    in
    Rec.Store.close store;
    let store =
      Rec.Store.open_store ~dir:exec_dir ~fingerprint:"executor" ()
    in
    let ck = Wf.Checkpoint.resume ~store ~every:7 in
    let exec_resumed = exec_digest (exec_run ~checkpoint:ck ()) in
    Rec.Store.close store;
    let exec_identical = String.equal exec_base exec_resumed in
    let checks =
      [ ("fabric_crashed", crashed);
        ("fabric_byte_identical", fab_identical);
        ("fabric_no_fallbacks", report.Srv.Fabric.rr_fallbacks = 0);
        ("executor_crashed", exec_crashed);
        ("executor_byte_identical", exec_identical) ]
    in
    let all_ok = List.for_all snd checks in
    let json =
      Obs.Json.Obj
        [ ("seed", Obs.Json.Num (float_of_int seed));
          ("horizon_s", Obs.Json.Num horizon);
          ("snapshot_every_s", Obs.Json.Num snapshot_every);
          ("journal_records", Obs.Json.Num (float_of_int records));
          ("snapshots", Obs.Json.Num (float_of_int snapshots));
          ("crash_after_record", Obs.Json.Num (float_of_int after));
          ("resume_snapshot",
           Obs.Json.Num (float_of_int report.Srv.Fabric.rr_snapshot_index));
          ("replayed_records",
           Obs.Json.Num (float_of_int report.Srv.Fabric.rr_replayed));
          ("recovery_time_s", Obs.Json.Num recovery_s);
          ("executor_records", Obs.Json.Num (float_of_int exec_records));
          ("executor_crash_after", Obs.Json.Num (float_of_int exec_after));
          ("checks",
           Obs.Json.Obj
             (List.map (fun (n, ok) -> (n, Obs.Json.Bool ok)) checks
             @ [ ("passed", Obs.Json.Bool all_ok) ])) ]
    in
    (match out with
    | None -> ()
    | Some f -> write_file f (Obs.Json.to_string ~pretty:true json ^ "\n"));
    (match format with
    | `Json -> print_string (Obs.Json.to_string ~pretty:true json ^ "\n")
    | `Text ->
        Printf.printf
          "fabric: %d journal records, %d snapshots; killed after record \
           %d, resumed from snapshot %d (+%d replayed) in %.3fs cpu\n"
          records snapshots after report.Srv.Fabric.rr_snapshot_index
          report.Srv.Fabric.rr_replayed recovery_s;
        Printf.printf
          "executor: %d journal records; killed after record %d, replayed \
           to completion\n"
          exec_records exec_after;
        List.iter
          (fun (n, ok) ->
            Printf.printf "check %-24s %s\n" n (if ok then "ok" else "FAILED"))
          checks;
        print_string
          (if all_ok then "recover drill passed\n"
           else "recover drill FAILED\n"));
    if not all_ok then exit 1
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Crash-recovery drill: kill mid-run, restore, byte-compare reports.")
    Term.(
      const run $ seed $ shards $ rate $ horizon $ snapshot_every
      $ crash_after $ dir $ format $ out $ dump_baseline $ dump_resumed
      $ demo)

(* ---- hls ------------------------------------------------------------------- *)

let hls_cmd =
  let unroll = Arg.(value & opt int 4 & info [ "unroll" ] ~doc:"Unroll factor.") in
  let dift = Arg.(value & flag & info [ "dift" ] ~doc:"Instrument with DIFT.") in
  let rtl = Arg.(value & flag & info [ "rtl" ] ~doc:"Print the RTL sketch.") in
  let run unroll dift rtl =
    let e = TE.matmul (TE.input "a" [ 64; 64 ]) (TE.input "b" [ 64; 64 ]) in
    let dfg = Everest_compiler.Hw_lower.dfg_of_expr ~unroll e in
    let c =
      { Everest_hls.Hls.default_constraints with
        Everest_hls.Hls.unroll; dift;
        trips = Everest_compiler.Hw_lower.trips e ~unroll;
        max_banks = max 16 unroll }
    in
    let d = Everest_hls.Hls.synthesize ~c ~name:"matmul64" dfg in
    Format.printf "%a" Everest_hls.Hls.report d;
    if rtl then print_string (Everest_hls.Rtl.to_string d.Everest_hls.Hls.rtl)
  in
  Cmd.v (Cmd.info "hls" ~doc:"Synthesize the demo kernel with the HLS flow.")
    Term.(const run $ unroll $ dift $ rtl)

(* ---- telemetry ------------------------------------------------------------- *)

(* Runs the full instrumented flow: compile (wall-clock spans), the
   demonstrator workflow under the executor (simulated-time spans, one track
   per node) and a closed-loop adaptive serving phase, then emits one Chrome
   trace with the three processes plus a metrics dump.  The headline
   executor numbers are printed from both stats and the metrics registry so
   the two accounts can be compared; they must agree exactly. *)
let telemetry_cmd =
  let size =
    Arg.(value & opt int 128 & info [ "size" ] ~docv:"N" ~doc:"Tensor size.")
  in
  let policy =
    Arg.(
      value & opt string "heft-locality"
      & info [ "policy" ] ~doc:"Scheduling policy for the workflow phase.")
  in
  let requests =
    Arg.(
      value & opt int 50
      & info [ "requests" ] ~doc:"Closed-loop requests in the serving phase.")
  in
  let kill =
    Arg.(
      value & opt (some node_time_conv) None
      & info [ "kill" ] ~docv:"NODE:T"
          ~doc:"Fail node NODE at simulated time T (exercises retries).")
  in
  let trace_out =
    Arg.(
      value & opt string "everest_trace.json"
      & info [ "trace-out" ] ~doc:"Chrome trace-event JSON output file.")
  in
  let metrics_out =
    Arg.(
      value & opt (some string) None
      & info [ "metrics-out" ] ~doc:"Metrics dump file (default: stdout).")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("prometheus", `Prom) ]) `Text
      & info [ "format" ] ~doc:"Metrics dump format: text, prometheus.")
  in
  let run size policy requests kill trace_out metrics_out format =
    let registry = Tel.Metrics.default in
    Tel.Metrics.reset registry;
    (* 1. compile, tracing the DSE stages on the wall clock *)
    let compile_tracer = Tel.Trace.create () in
    let app =
      Tel.Probe.with_tracer compile_tracer (fun () ->
          Sdk.compile (demo_graph size))
    in
    (* 2. demonstrator workflow under the executor, on simulated time *)
    let c = Sdk.Platform.Cluster.everest_demonstrator () in
    let exec_tracer = Sdk.Runtime.Orchestrator.sim_tracer c in
    let failures = match kill with None -> [] | Some f -> [ f ] in
    let plan =
      match Sdk.Workflow.Scheduler.by_name policy with
      | Some f -> f c app.Everest_compiler.Pipeline.dag
      | None -> invalid_arg ("unknown scheduling policy " ^ policy)
    in
    let stats =
      Sdk.Workflow.Executor.execute ~failures ~tracer:exec_tracer ~registry c
        plan
    in
    (* 3. adaptive serving phase (Fig. 2 loop), its own simulated clock *)
    let served = Sdk.serve ~n:requests ~telemetry:true app ~kernel:"mm" in
    (* 4. one Chrome trace, three processes *)
    Tel.Chrome_trace.write_processes trace_out
      [ Tel.Chrome_trace.of_tracer ~pid:1 ~process_name:"compile (wall)"
          compile_tracer;
        Tel.Chrome_trace.of_tracer ~pid:2 ~process_name:"executor (sim)"
          exec_tracer;
        Tel.Chrome_trace.of_spans ~pid:3 ~process_name:"orchestrator (sim)"
          served.Sdk.span_log ];
    (* 5. metrics dump *)
    let dump =
      match format with
      | `Text -> Tel.Metrics.render_text registry
      | `Prom -> Tel.Metrics.render_prometheus registry
    in
    (match metrics_out with
    | None -> print_string dump
    | Some f ->
        let oc = open_out f in
        output_string oc dump;
        close_out oc);
    (* 6. stats vs. telemetry agreement *)
    let counter name =
      match
        Tel.Metrics.find ~registry
          ~labels:[ ("workflow", "demo") ]
          name
      with
      | Some { Tel.Metrics.value = Tel.Metrics.Counter c; _ } ->
          int_of_float !c
      | _ -> -1
    in
    let spans = stats.Sdk.Workflow.Executor.span_log in
    Format.printf
      "@.workflow phase (policy=%s): makespan=%.4gs energy=%.4gJ@." policy
      stats.Sdk.Workflow.Executor.makespan
      stats.Sdk.Workflow.Executor.energy_j;
    let agree name from_stats from_metrics from_trace =
      Format.printf "  %-12s stats=%-10d metrics=%-10d trace=%-10d %s@." name
        from_stats from_metrics from_trace
        (if from_stats = from_metrics && from_metrics = from_trace then "agree"
         else "MISMATCH");
      from_stats = from_metrics && from_metrics = from_trace
    in
    let ok =
      List.for_all Fun.id
        [ agree "tasks"
            (Array.length stats.Sdk.Workflow.Executor.task_finish)
            (counter "workflow_tasks_completed_total")
            (Sdk.Workflow.Executor.trace_tasks_completed spans);
          agree "retries" stats.Sdk.Workflow.Executor.retries
            (counter "workflow_task_retries_total")
            (Sdk.Workflow.Executor.trace_retries spans);
          agree "bytes_moved" stats.Sdk.Workflow.Executor.bytes_moved
            (counter "workflow_bytes_moved_total")
            (Sdk.Workflow.Executor.trace_bytes_moved spans) ]
    in
    Format.printf
      "serving phase: %d requests, mean latency %.3gs, %d switches@."
      served.Sdk.requests served.Sdk.mean_latency_s served.Sdk.switches;
    Format.printf "trace: %s (open in chrome://tracing or ui.perfetto.dev)@."
      trace_out;
    if not ok then exit 1
  in
  Cmd.v
    (Cmd.info "telemetry"
       ~doc:"Run the instrumented demonstrator and emit trace + metrics.")
    Term.(
      const run $ size $ policy $ requests $ kill $ trace_out $ metrics_out
      $ format)

(* ---- example workflows ----------------------------------------------------- *)

(* Lowered example workflows (the shapes of examples/): linted by `lint
   --examples` (must be clean) and stressed by the `chaos` drill. *)
let example_graphs () =
  let quickstart =
    let g = Sdk.workflow "quickstart" in
    let src =
      Dsl.Dataflow.source g "sensor" ~bytes:(1 lsl 16)
        ~annots:[ Dsl.Annot.Access Dsl.Annot.Streaming ]
    in
    let x = TE.input "x" [ 64; 64 ] in
    let smooth =
      Dsl.Dataflow.task g "smooth"
        (Dsl.Dataflow.Tensor_kernel (TE.scale 0.25 (TE.add x x)))
        ~deps:[ src ]
    in
    let w = TE.input "w" [ 64; 64 ] in
    let project =
      Dsl.Dataflow.task g "project"
        (Dsl.Dataflow.Tensor_kernel (TE.relu (TE.matmul w w)))
        ~deps:[ smooth ]
        ~annots:[ Dsl.Annot.Security EIr.Dialect_sec.Confidential ]
    in
    Dsl.Dataflow.sink g "result" project;
    g
  in
  let forecast =
    let g = Sdk.workflow "forecast" in
    let src = Dsl.Dataflow.source g "meters" ~bytes:(1 lsl 20) in
    let x = TE.input "x" [ 128; 128 ] in
    let model =
      Dsl.Dataflow.task g "model"
        (Dsl.Dataflow.Tensor_kernel (TE.matmul x x))
        ~deps:[ src ]
        ~annots:[ Dsl.Annot.Locality "cloud" ]
    in
    Dsl.Dataflow.sink g "forecast" model;
    g
  in
  [ ("quickstart", quickstart); ("forecast", forecast);
    ("demo", demo_graph 64) ]

(* ---- chaos ----------------------------------------------------------------- *)

(* Fault-injection drill over the example workflows plus a breaker demo on
   the serving side.  Every verdict is derived from the seed, so the whole
   report is reproducible: the command runs each workflow twice and fails
   (exit 1) if the two runs disagree, if any workflow cannot complete, or if
   the breaker never recovers. *)
let chaos_cmd =
  let module Res = Everest_resilience in
  let module Wf = Sdk.Workflow in
  let seed =
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"S" ~doc:"Fault-plan seed.")
  in
  let fault_rate =
    Arg.(
      value & opt float 0.2
      & info [ "fault-rate" ] ~docv:"R"
          ~doc:"Per-node crash probability over the run.")
  in
  let mean_downtime =
    Arg.(
      value & opt float 0.25
      & info [ "mean-downtime" ] ~docv:"F"
          ~doc:
            "Mean downtime as a fraction of the clean makespan (0 = crashed \
             nodes never restart).")
  in
  let transient =
    Arg.(
      value & opt float 0.05
      & info [ "transient" ] ~docv:"P"
          ~doc:"Per-attempt transient task-failure probability.")
  in
  let fpga_transient =
    Arg.(
      value & opt float 0.02
      & info [ "fpga-transient" ] ~docv:"P"
          ~doc:"Extra transient probability for FPGA executions.")
  in
  let sched =
    Arg.(
      value & opt string "heft-locality"
      & info [ "policy" ] ~doc:"Scheduling policy for the workflows.")
  in
  let retries =
    Arg.(
      value & opt int 8
      & info [ "retries" ] ~docv:"N" ~doc:"Per-task retry budget.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~doc:"Report format: text, json.")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the report to FILE.")
  in
  let run seed fault_rate mean_downtime transient fpga_transient sched retries
      format out =
    let exec_policy = { Res.Policy.chaos with Res.Policy.max_retries = retries } in
    let nodes =
      List.map
        (fun (n : Sdk.Platform.Node.t) -> n.Sdk.Platform.Node.name)
        (Sdk.Platform.Cluster.everest_demonstrator ()).Sdk.Platform.Cluster.nodes
    in
    let drill (name, dag) =
      let _, clean = Wf.Executor.run_on_demonstrator ~policy:sched dag in
      let clean_makespan = clean.Wf.Executor.makespan in
      let faults =
        Res.Faults.random_plan ~seed ~fault_rate
          ~mean_downtime:(mean_downtime *. clean_makespan)
          ~transient_prob:transient ~fpga_transient_prob:fpga_transient
          ~nodes ~horizon:clean_makespan ()
      in
      let once () =
        match
          Wf.Executor.run_on_demonstrator ~policy:sched ~faults ~exec_policy
            dag
        with
        | _, s -> Ok s
        | exception Wf.Executor.Execution_failed { reason; partial } ->
            Error (reason, partial)
      in
      let completed (s : Wf.Executor.stats) =
        Array.fold_left
          (fun acc f -> if f >= 0.0 then acc + 1 else acc)
          0 s.Wf.Executor.task_finish
      in
      let summary = function
        | Ok (s : Wf.Executor.stats) ->
            ( s.Wf.Executor.makespan, completed s, s.Wf.Executor.retries,
              s.Wf.Executor.timeouts, s.Wf.Executor.speculative,
              s.Wf.Executor.recomputed )
        | Error (_, (p : Wf.Executor.stats)) ->
            ( p.Wf.Executor.makespan, completed p, p.Wf.Executor.retries,
              p.Wf.Executor.timeouts, p.Wf.Executor.speculative,
              p.Wf.Executor.recomputed )
      in
      let a = once () in
      let b = once () in
      let reproducible = summary a = summary b in
      (name, Sdk.Workflow.Dag.size dag, clean_makespan, a, reproducible)
    in
    let dags =
      List.map
        (fun (name, g) -> (name, (Sdk.compile g).Everest_compiler.Pipeline.dag))
        (example_graphs ())
      (* the example graphs are tiny; a layered stress DAG long enough for
         crashes, stragglers and lost outputs to actually bite *)
      @ [ ("stress",
           Wf.Dag.layered ~seed ~layers:5 ~width:4 ~flops:2e9 ~bytes:1e6 ()) ]
    in
    let reports = List.map drill dags in
    (* breaker demo: the hw variant fails for a while, the breaker opens,
       requests degrade to sw, a half-open probe brings hw back *)
    let cluster = Sdk.Platform.Cluster.create [ Sdk.Platform.Cluster.power9_node "p9" ] in
    let orch = Sdk.Runtime.Orchestrator.create cluster ~host_name:"p9" in
    let estimate =
      { Everest_hls.Estimate.area = Everest_hls.Estimate.zero_area;
        cycles = 100_000; ii = 1; clock_mhz = 250.0; dynamic_power_w = 8.0 }
    in
    let dk =
      Sdk.Runtime.Orchestrator.deploy orch
        ~breaker:
          { Res.Breaker.failure_threshold = 2; cooldown_s = 0.01;
            half_open_probes = 1 }
        ~kname:"k"
        ~impls:
          [ ("sw", Sdk.Runtime.Orchestrator.Sw { flops = 5e8; bytes = 1e5; threads = 2 });
            ("hw",
             Sdk.Runtime.Orchestrator.Hw
               { bitstream = "k"; estimate; in_bytes = 4096; out_bytes = 4096 }) ]
        ~knowledge:
          (Everest_autotune.Knowledge.create "k"
             [ { Everest_autotune.Knowledge.variant = "sw"; features = [];
                 metrics = [ ("time_s", 0.01) ] };
               { Everest_autotune.Knowledge.variant = "hw"; features = [];
                 metrics = [ ("time_s", 0.001) ] } ])
        ~goal:
          (Everest_autotune.Goal.make (Everest_autotune.Goal.Minimize "time_s"))
    in
    let hw_outage = 6 in
    let log =
      Sdk.Runtime.Orchestrator.serve orch ~kernel:"k" ~n:30
        ~policy:(Sdk.Runtime.Orchestrator.Fixed "hw")
        ~fail:(fun ~req ~variant ~attempt:_ ->
          req < hw_outage && String.equal variant "hw")
        ()
    in
    let breaker_opens =
      List.fold_left
        (fun acc (_, b) -> acc + Res.Breaker.opens b)
        0 dk.Sdk.Runtime.Orchestrator.breakers
    in
    let breaker_recovered =
      Sdk.Runtime.Orchestrator.breaker_state orch dk ~variant:"hw"
      = Some Res.Breaker.Closed
    in
    let degraded = Sdk.Runtime.Orchestrator.degraded_requests log in
    let availability = Sdk.Runtime.Orchestrator.availability log in
    let all_ok =
      List.for_all
        (fun (_, size, _, r, reproducible) ->
          reproducible
          && match r with Ok s -> Array.length s.Wf.Executor.task_finish = size
                                  && Array.for_all (fun f -> f >= 0.0) s.Wf.Executor.task_finish
                        | Error _ -> false)
        reports
      && breaker_opens >= 1 && breaker_recovered && degraded >= 1
    in
    let buf = Buffer.create 2048 in
    (match format with
    | `Text ->
        Buffer.add_string buf
          (Printf.sprintf
             "chaos drill: seed=%d fault-rate=%g transient=%g policy=%s\n\n"
             seed fault_rate transient sched);
        List.iter
          (fun (name, size, clean_ms, r, reproducible) ->
            match r with
            | Ok (s : Wf.Executor.stats) ->
                Buffer.add_string buf
                  (Printf.sprintf
                     "  %-10s %d/%d tasks  makespan %.4gs (clean %.4gs, \
                      +%.0f%%)  retries=%d timeouts=%d speculative=%d \
                      recomputed=%d  %s\n"
                     name size size s.Wf.Executor.makespan clean_ms
                     ((s.Wf.Executor.makespan /. clean_ms -. 1.0) *. 100.0)
                     s.Wf.Executor.retries s.Wf.Executor.timeouts
                     s.Wf.Executor.speculative s.Wf.Executor.recomputed
                     (if reproducible then "reproducible"
                      else "NON-DETERMINISTIC"))
            | Error (reason, p) ->
                Buffer.add_string buf
                  (Printf.sprintf
                     "  %-10s FAILED: %s (%d tasks done, retries=%d)\n" name
                     reason
                     (Array.fold_left
                        (fun acc f -> if f >= 0.0 then acc + 1 else acc)
                        0 p.Wf.Executor.task_finish)
                     p.Wf.Executor.retries))
          reports;
        Buffer.add_string buf
          (Printf.sprintf
             "\nbreaker demo: %d requests, availability %.0f%%, %d degraded \
              to sw, breaker opened %d time(s), %s\n"
             (List.length log) (availability *. 100.0) degraded breaker_opens
             (if breaker_recovered then "recovered (closed)"
              else "NOT RECOVERED"));
        Buffer.add_string buf
          (if all_ok then "\nchaos drill passed\n"
           else "\nchaos drill FAILED\n")
    | `Json ->
        let graph_json (name, size, clean_ms, r, reproducible) =
          match r with
          | Ok (s : Wf.Executor.stats) ->
              Printf.sprintf
                "{\"graph\": \"%s\", \"tasks\": %d, \"completed\": %d, \
                 \"clean_makespan_s\": %.17g, \"makespan_s\": %.17g, \
                 \"retries\": %d, \"timeouts\": %d, \"speculative\": %d, \
                 \"recomputed\": %d, \"reproducible\": %b}"
                name size size clean_ms s.Wf.Executor.makespan
                s.Wf.Executor.retries s.Wf.Executor.timeouts
                s.Wf.Executor.speculative s.Wf.Executor.recomputed reproducible
          | Error (reason, p) ->
              Printf.sprintf
                "{\"graph\": \"%s\", \"tasks\": %d, \"completed\": %d, \
                 \"error\": \"%s\", \"retries\": %d, \"reproducible\": %b}"
                name size
                (Array.fold_left
                   (fun acc f -> if f >= 0.0 then acc + 1 else acc)
                   0 p.Wf.Executor.task_finish)
                (String.escaped reason) p.Wf.Executor.retries reproducible
        in
        Buffer.add_string buf
          (Printf.sprintf
             "{\"seed\": %d, \"fault_rate\": %g, \"transient_prob\": %g, \
              \"policy\": \"%s\",\n\
              \ \"workflows\": [%s],\n\
              \ \"breaker_demo\": {\"requests\": %d, \"availability\": %g, \
              \"degraded\": %d, \"opens\": %d, \"recovered\": %b},\n\
              \ \"passed\": %b}\n"
             seed fault_rate transient sched
             (String.concat ", " (List.map graph_json reports))
             (List.length log) availability degraded breaker_opens
             breaker_recovered all_ok));
    (match out with
    | None -> print_string (Buffer.contents buf)
    | Some f ->
        let oc = open_out f in
        Buffer.output_buffer oc buf;
        close_out oc);
    if not all_ok then exit 1
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Deterministic fault-injection drill over the example workflows.")
    Term.(
      const run $ seed $ fault_rate $ mean_downtime $ transient
      $ fpga_transient $ sched $ retries $ format $ out)

(* ---- lint ------------------------------------------------------------------ *)

(* A module seeded with one instance of every defect family the lint rules
   cover, each op carrying a file location so diagnostics are clickable. *)
let seeded_module () =
  EIr.Registry.register_all ();
  let ctx = EIr.Ir.ctx () in
  let at l (o : EIr.Ir.op) =
    { o with EIr.Ir.loc = EIr.Loc.file "seeded.mlir" l }
  in
  let r = EIr.Ir.result in
  (* @k_proc: the kernel referenced by the placed task (kept alive) *)
  let karg = EIr.Ir.fresh_value ctx EIr.Types.f64 in
  let kret = at 3 (EIr.Dialect_func.return ctx [ karg ]) in
  let k_proc = EIr.Ir.func "k_proc" [ karg ] [ EIr.Types.f64 ] [ kret ] in
  (* @orphan: never referenced -> EV011 *)
  let oret = at 7 (EIr.Dialect_func.return ctx []) in
  let orphan = EIr.Ir.func "orphan" [] [] [ oret ] in
  (* @secrets: EV040 secret data reaches a public sink; EV041 secret task
     pinned to an edge node *)
  let src =
    at 11
      (EIr.Dialect_df.source ctx "patient_records"
         (EIr.Types.tensor EIr.Types.F64 [ 64 ]))
  in
  let cls =
    at 12 (EIr.Dialect_sec.classify ctx (r src) EIr.Dialect_sec.Secret)
  in
  let leak_sink = at 13 (EIr.Dialect_df.sink ctx "public_out" (r cls)) in
  let placed =
    at 14
      (EIr.Dialect_df.task ctx ~kernel:"k_proc"
         ~attrs:
           [ ("everest.security", EIr.Attr.str "secret");
             ("everest.locality", EIr.Attr.str "edge:0") ]
         [ r cls ]
         [ EIr.Types.tensor EIr.Types.F64 [ 64 ] ])
  in
  let sret = at 15 (EIr.Dialect_func.return ctx []) in
  let secrets =
    EIr.Ir.func "secrets" [] [] [ src; cls; leak_sink; placed; sret ]
  in
  (* @main: memref lifetime defects + a dead, constant-foldable op *)
  let buf = at 19 (EIr.Dialect_memref.alloc ctx EIr.Types.F64 [ 4; 4 ]) in
  let c0 = at 20 (EIr.Dialect_arith.const_index ctx 0) in
  let c9 = at 21 (EIr.Dialect_arith.const_index ctx 9) in
  let free1 = at 22 (EIr.Dialect_memref.dealloc ctx (r buf)) in
  (* use after dealloc (EV030) with a constant OOB index (EV033) *)
  let uaf = at 23 (EIr.Dialect_memref.load ctx (r buf) [ r c9; r c0 ]) in
  let free2 = at 24 (EIr.Dialect_memref.dealloc ctx (r buf)) in (* EV031 *)
  let leaked = at 25 (EIr.Dialect_memref.alloc ctx EIr.Types.F64 [ 8 ]) in
  let st =
    at 26 (EIr.Dialect_memref.store ctx (r uaf) (r leaked) [ r c0 ])
  in (* leaked is only loaded/stored and never freed -> EV032 *)
  let k2 = at 27 (EIr.Dialect_arith.const_i ctx 2) in
  let k3 = at 28 (EIr.Dialect_arith.const_i ctx 3) in
  let dead = at 29 (EIr.Dialect_arith.muli ctx (r k2) (r k3)) in
  (* ^ result unused -> EV010; operands constant -> EV013 *)
  let call = at 30 (EIr.Dialect_func.call ctx "secrets" [] []) in
  let mret = at 31 (EIr.Dialect_func.return ctx []) in
  let main =
    EIr.Ir.func "main" [] []
      [ buf; c0; c9; free1; uaf; free2; leaked; st; k2; k3; dead; call; mret ]
  in
  EIr.Ir.modul "seeded" [ k_proc; orphan; secrets; main ]

let lint_cmd =
  let files =
    Arg.(
      value & pos_all file []
      & info [] ~docv:"FILE" ~doc:"Textual IR module to lint.")
  in
  let demo =
    Arg.(
      value & flag
      & info [ "demo" ]
          ~doc:"Lint a module seeded with one defect per rule family.")
  in
  let examples =
    Arg.(
      value & flag
      & info [ "examples" ]
          ~doc:"Lint the lowered example workflow modules (must be clean).")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~doc:"Output format: text, json.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Promote warnings to errors (exit 1 on any warning).")
  in
  let run files demo examples format strict =
    EIr.Registry.register_all ();
    let read_file f =
      let ic = open_in_bin f in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    let mods =
      List.map
        (fun f ->
          let ctx = EIr.Ir.ctx () in
          (f, EIr.Parser.parse_module ctx (read_file f)))
        files
      @ (if demo then [ ("seeded", seeded_module ()) ] else [])
      @
      if examples then
        List.map
          (fun (name, g) ->
            let ctx = EIr.Ir.ctx () in
            (name, Dsl.Lower.lower_graph ctx g))
          (example_graphs ())
      else []
    in
    if mods = [] then (
      prerr_endline
        "lint: nothing to check (pass FILE arguments, --demo or --examples)";
      exit 2);
    let results =
      List.map
        (fun (name, m) ->
          let ds = Lint.run m in
          (name, if strict then Lint.promote_warnings ds else ds))
        mods
    in
    (match format with
    | `Text ->
        List.iter
          (fun (name, ds) ->
            Format.printf "== %s ==@.%s@." name (Lint.render_text ds))
          results
    | `Json ->
        let items =
          List.map
            (fun (name, ds) ->
              Printf.sprintf "{\"module\": \"%s\", \"report\": %s}" name
                (String.trim (Lint.render_json ds)))
            results
        in
        print_string ("[" ^ String.concat ",\n" items ^ "]\n"));
    if List.exists (fun (_, ds) -> Lint.has_errors ds) results then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Run the static-analysis rules (EV0xx) over IR modules.")
    Term.(const run $ files $ demo $ examples $ format $ strict)

(* ---- estee ----------------------------------------------------------------- *)

(* Scheduler scale smoke for CI: plan one generated family instance and
   fail when the wall clock blows the budget.  A 10^4-task layered plan
   takes milliseconds on the indexed HEFT and minutes on an O(n^2) one, so
   a generous budget still catches quadratic regressions without making
   the job flaky on slow runners (see bench/estee.ml for the full E17
   sweep). *)
let estee_cmd =
  let tasks =
    Arg.(
      value & opt int 10_000
      & info [ "tasks" ] ~docv:"N" ~doc:"Approximate DAG size.")
  in
  let family =
    Arg.(
      value & opt string "layered"
      & info [ "family" ] ~docv:"F"
          ~doc:"DAG family: layered, fork-join, ensemble.")
  in
  let policy =
    Arg.(
      value & opt string "heft"
      & info [ "policy" ] ~docv:"P"
          ~doc:
            "Scheduling policy (heft, heft-locality, min-load, round-robin, \
             heft-reference).")
  in
  let seed =
    Arg.(value & opt int 17 & info [ "seed" ] ~docv:"S" ~doc:"Generator seed.")
  in
  let budget =
    Arg.(
      value & opt float 0.0
      & info [ "budget-s" ] ~docv:"T"
          ~doc:
            "Exit 1 if planning (+ execution) wall time exceeds T seconds; 0 \
             disables the check.")
  in
  let execute =
    Arg.(
      value & flag
      & info [ "execute" ]
          ~doc:"Also simulate execution on the demonstrator cluster.")
  in
  let run tasks family policy seed budget execute =
    let module Sb = Sdk.Workflow.Scalebench in
    match Sb.family_of_string family with
    | None ->
        Printf.eprintf "estee: unknown family %S\n" family;
        exit 2
    | Some fam -> (
        match Sb.run_policy ~seed ~execute fam ~tasks ~policy with
        | exception Invalid_argument msg ->
            Printf.eprintf "estee: %s\n" msg;
            exit 2
        | s ->
            let total =
              s.Sb.sb_plan_wall_s
              +. if s.Sb.sb_exec_wall_s > 0.0 then s.Sb.sb_exec_wall_s else 0.0
            in
            Printf.printf
              "family=%s tasks=%d policy=%s plan=%.3fs (%.0f tasks/s)%s\n"
              s.Sb.sb_family s.Sb.sb_tasks s.Sb.sb_policy s.Sb.sb_plan_wall_s
              s.Sb.sb_tasks_per_s
              (if s.Sb.sb_exec_wall_s < 0.0 then ""
               else
                 Printf.sprintf " exec=%.3fs makespan=%.1fs"
                   s.Sb.sb_exec_wall_s s.Sb.sb_makespan_s);
            if budget > 0.0 && total > budget then begin
              Printf.eprintf
                "estee: wall %.3fs exceeded budget %.3fs — scheduling \
                 throughput regressed\n"
                total budget;
              exit 1
            end)
  in
  Cmd.v
    (Cmd.info "estee"
       ~doc:"Scheduler scale smoke: plan a DAG family against a wall budget.")
    Term.(const run $ tasks $ family $ policy $ seed $ budget $ execute)

(* ---- plan-lint ------------------------------------------------------------- *)

(* Static plan sanitization (EV1xx): lint (dag, plan, cluster) triples
   before they reach the executor.  [--examples] lints every compiled
   example workflow under every shipped scheduler (must be clean);
   [--family] lints a generated estee-family plan against a wall budget (a
   lint pass costing a noticeable fraction of planning is a regression);
   [--demo] assembles one defective plan per EV1xx defect class and must
   exit 1 with every class flagged. *)
let plan_lint_cmd =
  let module Wf = Sdk.Workflow in
  let module Pl = Wf.Planlint in
  let module Sched = Wf.Scheduler in
  let module Dag = Wf.Dag in
  let examples =
    Arg.(
      value & flag
      & info [ "examples" ]
          ~doc:
            "Lint the compiled example workflows under every shipped \
             scheduling policy (must be clean).")
  in
  let demo =
    Arg.(
      value & flag
      & info [ "demo" ]
          ~doc:
            "Lint plans seeded with one defect per class (precedence break, \
             off-pin, capability mismatch, slot oversubscription, \
             infeasible SLO); exits 1.")
  in
  let family =
    Arg.(
      value
      & opt (some string) None
      & info [ "family" ] ~docv:"F"
          ~doc:"Lint a generated DAG family plan: layered, fork-join, \
                ensemble.")
  in
  let tasks =
    Arg.(
      value & opt int 10_000
      & info [ "tasks" ] ~docv:"N" ~doc:"Family DAG size (with --family).")
  in
  let policy =
    Arg.(
      value & opt string "heft"
      & info [ "policy" ] ~docv:"P"
          ~doc:"Scheduling policy for --family (heft, heft-locality, \
                min-load, round-robin).")
  in
  let seed =
    Arg.(value & opt int 17 & info [ "seed" ] ~docv:"S" ~doc:"Generator seed.")
  in
  let budget =
    Arg.(
      value & opt float 0.0
      & info [ "budget-s" ] ~docv:"T"
          ~doc:
            "With --family: exit 1 if the lint pass exceeds T seconds of \
             wall time; 0 disables the check.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Promote warnings to errors (exit 1 on any warning).")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~doc:"Output format: text, json.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-s" ] ~docv:"T"
          ~doc:"Latency deadline for the EV140 feasibility check.")
  in
  let shipped_policies = [ "round-robin"; "min-load"; "heft"; "heft-locality" ] in
  (* one defective plan per EV1xx defect class, built on the demonstrator *)
  let demo_targets c =
    let cpu = Dag.Cpu { flops = 1e9; bytes = 1e6; threads = 1 } in
    let est =
      { Everest_hls.Estimate.area = Everest_hls.Estimate.zero_area;
        cycles = 100_000; ii = 1; clock_mhz = 250.0; dynamic_power_w = 5.0 }
    in
    let fpga b =
      Dag.Fpga { bitstream = b; estimate = est; in_bytes = 4096;
                 out_bytes = 1024 }
    in
    let chain name =
      Dag.create name
        [ Dag.task ~id:0 ~name:"src" ~inputs:[] ~out_bytes:4096 ~impls:[ cpu ] ();
          Dag.task ~id:1 ~name:"mid" ~inputs:[ 0 ] ~out_bytes:4096
            ~impls:[ cpu ] ();
          Dag.task ~id:2 ~name:"sink" ~inputs:[ 1 ] ~out_bytes:64
            ~impls:[ cpu ] () ]
    in
    (* 1. precedence break: the plan's DAG lost the 1 -> 2 edge that the
       reference DAG still carries *)
    let edge_drop =
      let full = chain "edge-drop" in
      let cut =
        Dag.create "edge-drop"
          [ full.Dag.tasks.(0); full.Dag.tasks.(1);
            { (full.Dag.tasks.(2)) with Dag.inputs = [] } ]
      in
      let plan =
        match Sched.by_name "round-robin" with
        | Some f -> f c cut
        | None -> assert false
      in
      ("precedence-break", [ "EV110"; "EV111" ], Some full, None, plan)
    in
    (* 2. pinned source placed off its pin *)
    let off_pin =
      let d =
        Dag.create "off-pin"
          [ Dag.task ~id:0 ~name:"src" ~pinned:(Some "ep0") ~inputs:[]
              ~out_bytes:4096 ~impls:[ cpu ] ();
            Dag.task ~id:1 ~name:"sink" ~inputs:[ 0 ] ~out_bytes:64
              ~impls:[ cpu ] () ]
      in
      let plan = Sched.heft c d in
      let assignments = Array.copy plan.Sched.assignments in
      assignments.(0) <-
        { (assignments.(0)) with Sched.node = "cf0" };
      ("off-pin", [ "EV120" ],
       None, None, { plan with Sched.assignments; policy = "heft+mutated" })
    in
    (* 3. capability mismatch: FPGA implementation routed to an FPGA-less
       endpoint while FPGA-capable nodes exist *)
    let capability =
      let d =
        Dag.create "capability"
          [ Dag.task ~id:0 ~name:"k" ~inputs:[] ~out_bytes:1024
              ~impls:[ fpga "k" ] () ]
      in
      let plan =
        { Sched.dag = d;
          assignments = [| { Sched.node = "ep0"; impl = fpga "k" } |];
          policy = "manual" }
      in
      ("capability-mismatch", [ "EV122" ], None, None, plan)
    in
    (* 4. slot oversubscription + reconfiguration thrash: eight concurrent
       distinct-bitstream FPGA tasks on one 2-slot cloudFPGA node *)
    let oversubscribe =
      let width = 8 in
      let workers =
        List.init width (fun i ->
            Dag.task ~id:(i + 1)
              ~name:(Printf.sprintf "w%d" i)
              ~inputs:[ 0 ] ~out_bytes:1024
              ~impls:[ fpga (Printf.sprintf "bit%d" i) ]
              ())
      in
      let d =
        Dag.create "oversubscribe"
          (Dag.task ~id:0 ~name:"src" ~inputs:[] ~out_bytes:4096
             ~impls:[ cpu ] ()
          :: workers)
      in
      let assignments =
        Array.init (width + 1) (fun i ->
            if i = 0 then { Sched.node = "ep0"; impl = cpu }
            else
              { Sched.node = "cf0";
                impl = fpga (Printf.sprintf "bit%d" (i - 1)) })
      in
      ("slot-oversubscription", [ "EV130"; "EV131" ], None, None,
       { Sched.dag = d; assignments; policy = "manual" })
    in
    (* 5. infeasible SLO: a deadline below the critical-path lower bound *)
    let infeasible =
      let d =
        Dag.create "infeasible-slo"
          [ Dag.task ~id:0 ~name:"heavy" ~inputs:[] ~out_bytes:64
              ~impls:[ Dag.Cpu { flops = 1e13; bytes = 1e6; threads = 1 } ]
              () ]
      in
      ("infeasible-slo", [ "EV140" ], None, Some 1e-6, Sched.heft c d)
    in
    [ edge_drop; off_pin; capability; oversubscribe; infeasible ]
  in
  let run examples demo family tasks policy seed budget strict format deadline
      =
    let c = Sdk.Platform.Cluster.everest_demonstrator () in
    (* each target: (name, expected codes, reference dag, deadline, plan) *)
    let targets = ref [] in
    if examples then
      List.iter
        (fun (name, g) ->
          let dag = (Sdk.compile g).Everest_compiler.Pipeline.dag in
          List.iter
            (fun p ->
              match Sched.by_name p with
              | Some f ->
                  targets :=
                    (name ^ "/" ^ p, [], None, None, f c dag) :: !targets
              | None -> ())
            shipped_policies)
        (example_graphs ());
    (match family with
    | Some f -> (
        let module Sb = Wf.Scalebench in
        match Sb.family_of_string f with
        | None ->
            Printf.eprintf "plan-lint: unknown family %S\n" f;
            exit 2
        | Some fam -> (
            match Sched.by_name policy with
            | None ->
                Printf.eprintf "plan-lint: unknown policy %S\n" policy;
                exit 2
            | Some sched ->
                let dag = Sb.make_dag ~seed fam ~tasks in
                targets :=
                  (Printf.sprintf "%s-%d/%s" f tasks policy, [], None, None,
                   sched c dag)
                  :: !targets))
    | None -> ());
    if demo then targets := !targets @ demo_targets c;
    let targets = List.rev !targets in
    if targets = [] then begin
      prerr_endline
        "plan-lint: nothing to check (pass --examples, --family or --demo)";
      exit 2
    end;
    let lint_wall = ref 0.0 in
    let results =
      List.map
        (fun (name, expected, dag, dl, plan) ->
          let dl = match dl with Some _ as d -> d | None -> deadline in
          let t0 = Unix.gettimeofday () in
          let ds = Pl.check ?dag ?deadline_s:dl c plan in
          lint_wall := !lint_wall +. (Unix.gettimeofday () -. t0);
          let ds = if strict then Lint.promote_warnings ds else ds in
          (name, expected, ds))
        targets
    in
    (match format with
    | `Text ->
        List.iter
          (fun (name, _, ds) ->
            Format.printf "== %s ==@.%s@." name (Lint.render_text ds))
          results
    | `Json ->
        let items =
          List.map
            (fun (name, _, ds) ->
              Printf.sprintf "{\"plan\": \"%s\", \"report\": %s}" name
                (String.trim (Lint.render_json ds)))
            results
        in
        print_string ("[" ^ String.concat ",\n" items ^ "]\n"));
    (* no false negatives: every seeded defect class must be flagged with
       its expected code *)
    let missing =
      List.concat_map
        (fun (name, expected, ds) ->
          List.filter_map
            (fun code ->
              if List.exists (fun d -> String.equal d.Lint.code code) ds then
                None
              else Some (name, code))
            expected)
        results
    in
    if missing <> [] then begin
      List.iter
        (fun (name, code) ->
          Printf.eprintf "plan-lint: seeded defect %s NOT caught (%s)\n" name
            code)
        missing;
      exit 2
    end;
    if budget > 0.0 && !lint_wall > budget then begin
      Printf.eprintf
        "plan-lint: lint wall %.3fs exceeded budget %.3fs — analyzer \
         throughput regressed\n"
        !lint_wall budget;
      exit 1
    end;
    if List.exists (fun (_, _, ds) -> Lint.has_errors ds) results then exit 1
  in
  Cmd.v
    (Cmd.info "plan-lint"
       ~doc:
         "Statically sanitize execution plans (EV1xx): structure, \
          happens-before, placement capability, SLO feasibility.")
    Term.(
      const run $ examples $ demo $ family $ tasks $ policy $ seed $ budget
      $ strict $ format $ deadline)

(* ---- observe --------------------------------------------------------------- *)

(* Read-side analytics drill: run the stress DAG fully traced under a
   seeded fault plan, force the executor's lazy report and check it for
   internal consistency (critical-path duration must equal the run's
   makespan, per-node utilization must reconcile with the span log), then
   serve requests under availability/latency SLO monitors.  [--demo]
   deliberately violates the availability SLO to exercise the burn-rate
   alert and failure exit; [--diff] compares two saved reports. *)
let observe_cmd =
  let module Res = Everest_resilience in
  let module Wf = Sdk.Workflow in
  let module Obs = Everest_observe in
  let seed =
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"S" ~doc:"Fault-plan seed.")
  in
  let sched =
    Arg.(
      value & opt string "heft-locality"
      & info [ "policy" ] ~doc:"Scheduling policy for the stress workflow.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~doc:"Report format: text, json.")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the JSON report to FILE.")
  in
  let demo =
    Arg.(
      value & flag
      & info [ "demo" ]
          ~doc:
            "Deliberately violate the availability SLO so the burn-rate \
             alert fires (exits 1).")
  in
  let diff =
    Arg.(
      value & opt_all file []
      & info [ "diff" ] ~docv:"FILE"
          ~doc:"Diff two saved reports (pass --diff twice).")
  in
  let tolerance =
    Arg.(
      value & opt float 0.05
      & info [ "tolerance" ] ~docv:"T"
          ~doc:"Relative change treated as noise by --diff.")
  in
  let run seed sched format out demo diff tolerance =
    match diff with
    | [ a; b ] ->
        let before = Obs.Json.parse_file a and after = Obs.Json.parse_file b in
        let changes = Obs.Regress.diff ~tolerance ~before ~after () in
        print_string (Obs.Regress.render_text changes);
        if Obs.Regress.regressions changes <> [] then exit 1
    | _ :: _ ->
        prerr_endline "observe: --diff needs exactly two report files";
        exit 2
    | [] ->
        (* deterministic fault plan scaled to the clean makespan, as in the
           chaos drill *)
        let dag =
          Wf.Dag.layered ~seed ~layers:5 ~width:4 ~flops:2e9 ~bytes:1e6 ()
        in
        let nodes =
          List.map
            (fun (n : Sdk.Platform.Node.t) -> n.Sdk.Platform.Node.name)
            (Sdk.Platform.Cluster.everest_demonstrator ())
              .Sdk.Platform.Cluster.nodes
        in
        let _, clean = Wf.Executor.run_on_demonstrator ~policy:sched dag in
        let faults =
          Res.Faults.random_plan ~seed ~fault_rate:0.2
            ~mean_downtime:(0.25 *. clean.Wf.Executor.makespan)
            ~transient_prob:0.05 ~fpga_transient_prob:0.02 ~nodes
            ~horizon:clean.Wf.Executor.makespan ()
        in
        let registry = Tel.Metrics.create_registry () in
        let _, stats =
          Wf.Executor.run_on_demonstrator ~policy:sched ~faults
            ~exec_policy:Res.Policy.chaos ~tracer:`Sim ~registry dag
        in
        let report = Lazy.force stats.Wf.Executor.report in
        let cp_ok, cp_matches =
          match report.Obs.Report.r_cp with
          | None -> (false, false)
          | Some cp ->
              ( Obs.Critical_path.check cp,
                Float.abs
                  (cp.Obs.Critical_path.duration_s
                  -. stats.Wf.Executor.makespan)
                <= 1e-9 *. Float.max 1.0 stats.Wf.Executor.makespan )
        in
        let util_ok =
          match report.Obs.Report.r_util with
          | None -> false
          | Some u -> Obs.Utilization.check u
        in
        (* serving phase: hw outage early in the run; monitors watch
           availability and tail latency over simulated time *)
        let cluster =
          Sdk.Platform.Cluster.create [ Sdk.Platform.Cluster.power9_node "p9" ]
        in
        let orch =
          Sdk.Runtime.Orchestrator.create ~registry cluster ~host_name:"p9"
        in
        let estimate =
          { Everest_hls.Estimate.area = Everest_hls.Estimate.zero_area;
            cycles = 100_000; ii = 1; clock_mhz = 250.0; dynamic_power_w = 8.0 }
        in
        let _ =
          Sdk.Runtime.Orchestrator.deploy orch
            ~breaker:
              { Res.Breaker.failure_threshold = 2; cooldown_s = 0.01;
                half_open_probes = 1 }
            ~kname:"k"
            ~impls:
              [ ("sw",
                 Sdk.Runtime.Orchestrator.Sw
                   { flops = 5e8; bytes = 1e5; threads = 2 });
                ("hw",
                 Sdk.Runtime.Orchestrator.Hw
                   { bitstream = "k"; estimate; in_bytes = 4096;
                     out_bytes = 4096 }) ]
            ~knowledge:
              (Everest_autotune.Knowledge.create "k"
                 [ { Everest_autotune.Knowledge.variant = "sw"; features = [];
                     metrics = [ ("time_s", 0.01) ] };
                   { Everest_autotune.Knowledge.variant = "hw"; features = [];
                     metrics = [ ("time_s", 0.001) ] } ])
            ~goal:
              (Everest_autotune.Goal.make
                 (Everest_autotune.Goal.Minimize "time_s"))
        in
        let n_req = 30 in
        let specs =
          [ Obs.Slo.availability "requests-available" 0.9;
            Obs.Slo.latency "tail-latency" ~q:0.95 ~limit_s:0.1 ]
        in
        let alert =
          { Obs.Slo.fast_window_s = 0.05; slow_window_s = 0.5;
            burn_threshold = 2.0 }
        in
        let monitors = List.map (Obs.Slo.monitor ~alert) specs in
        let fail =
          if demo then
            (* a sustained outage: most requests fail outright, burning the
               10% error budget at ~5x — both alert windows trip *)
            fun ~req ~variant:_ ~attempt:_ -> req mod 2 = 0
          else fun ~req ~variant ~attempt:_ ->
            req < 4 && String.equal variant "hw"
        in
        let max_attempts = if demo then 1 else 3 in
        let log =
          Sdk.Runtime.Orchestrator.serve orch ~kernel:"k" ~n:n_req
            ~policy:(Sdk.Runtime.Orchestrator.Fixed "hw")
            ~fail ~max_attempts ~slos:monitors ()
        in
        let serve_results =
          Obs.Slo.evaluate_all specs
            (Sdk.Runtime.Orchestrator.slo_outcomes log)
        in
        let alerts =
          List.fold_left (fun acc m -> acc + Obs.Slo.alerts m) 0 monitors
        in
        let slos_met =
          List.for_all (fun (r : Obs.Slo.result) -> r.Obs.Slo.met)
            (report.Obs.Report.r_slos @ serve_results)
        in
        let all_ok = cp_ok && cp_matches && util_ok && slos_met && alerts = 0 in
        let json =
          Obs.Json.Obj
            [ ("workflow", Obs.Report.to_json report);
              ("serving",
               Obs.Json.Obj
                 [ ("requests", Obs.Json.Num (float_of_int (List.length log)));
                   ("availability",
                    Obs.Json.Num (Sdk.Runtime.Orchestrator.availability log));
                   ("slos",
                    Obs.Json.Arr
                      (List.map Obs.Slo.result_to_json serve_results));
                   ("burn_alerts", Obs.Json.Num (float_of_int alerts)) ]);
              ("checks",
               Obs.Json.Obj
                 [ ("critical_path_consistent", Obs.Json.Bool cp_ok);
                   ("critical_path_matches_makespan", Obs.Json.Bool cp_matches);
                   ("utilization_consistent", Obs.Json.Bool util_ok);
                   ("slos_met", Obs.Json.Bool slos_met);
                   ("passed", Obs.Json.Bool all_ok) ]) ]
        in
        (match out with
        | None -> ()
        | Some f ->
            let oc = open_out f in
            output_string oc (Obs.Json.to_string ~pretty:true json);
            output_string oc "\n";
            close_out oc);
        (match format with
        | `Json -> print_string (Obs.Json.to_string ~pretty:true json ^ "\n")
        | `Text ->
            print_string (Obs.Report.render report);
            Printf.printf
              "serving: %d requests, availability %.0f%%, %d burn alert(s)\n"
              (List.length log)
              (100.0 *. Sdk.Runtime.Orchestrator.availability log)
              alerts;
            List.iter
              (fun r -> Format.printf "  slo: %a@." Obs.Slo.pp_result r)
              serve_results;
            Printf.printf
              "checks: critical-path %s (makespan match %s), utilization %s\n"
              (if cp_ok then "ok" else "FAILED")
              (if cp_matches then "ok" else "FAILED")
              (if util_ok then "ok" else "FAILED");
            print_string
              (if all_ok then "observe drill passed\n"
               else "observe drill FAILED\n"));
        if not all_ok then exit 1
  in
  Cmd.v
    (Cmd.info "observe"
       ~doc:"Trace analytics: critical path, utilization and SLO verdicts.")
    Term.(
      const run $ seed $ sched $ format $ out $ demo $ diff $ tolerance)

(* ---- top -------------------------------------------------------------------- *)

(* Live observability drill: run a seeded serving workload with a watch
   attached (registry + fabric scrape, per-request latency sketch, alert
   rules) and render the deterministic dashboard.  [--follow] re-renders
   on every scrape tick; [--demo] kills all but one shard mid-run so the
   queueing latency step must trip the CUSUM alert (exercises the alert
   path; exits 1). *)
let top_cmd =
  let module Srv = Everest_serving in
  let module Res = Everest_resilience in
  let module Obs = Everest_observe in
  let module W = Everest_watch in
  let shards =
    Arg.(value & opt int 4 & info [ "shards" ] ~docv:"N" ~doc:"Shard count.")
  in
  let seed =
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"S" ~doc:"Workload seed.")
  in
  let rate =
    Arg.(
      value & opt float 400.0
      & info [ "rate" ] ~docv:"RPS" ~doc:"Open-loop tenant arrival rate.")
  in
  let horizon =
    Arg.(
      value & opt float 0.4
      & info [ "horizon" ] ~docv:"T" ~doc:"Workload horizon in seconds.")
  in
  let interval =
    Arg.(
      value & opt float 0.02
      & info [ "interval" ] ~docv:"T" ~doc:"Watch scrape interval in seconds.")
  in
  let follow =
    Arg.(
      value & flag
      & info [ "follow" ] ~doc:"Render the dashboard on every scrape tick.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~doc:"Dashboard format: text, json.")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the final dashboard (in the chosen format) to FILE.")
  in
  let demo =
    Arg.(
      value & flag
      & info [ "demo" ]
          ~doc:
            "Kill all but one shard mid-run: the latency step must trip \
             the CUSUM alert (exits 1).")
  in
  let run shards seed rate horizon interval follow format out demo =
    if shards < 1 then begin
      Format.eprintf "error: need at least one shard@.";
      exit 2
    end;
    let tenants =
      [ Srv.Workload.open_tenant ~name:"acme" ~kernel:"mm" ~rate_rps:rate
          ~features:(fun seq ->
            [ ("size", float_of_int (1024 + (64 * (seq mod 4)))) ])
          () ]
    in
    let faults =
      if demo then
        (* capacity cliff at mid-horizon: survivors absorb the load and
           the queueing delay shows up as a latency step *)
        Res.Faults.of_failures
          (List.init (shards - 1) (fun i ->
               (Printf.sprintf "shard%d" (i + 1), 0.5 *. horizon)))
      else Res.Faults.none
    in
    let config =
      { (Srv.Fabric.default_config ~n_shards:shards) with
        Srv.Fabric.seed; faults }
    in
    let latency_labels = [ ("tenant", "acme") ] in
    let p99 =
      W.Rules.Quantile_over ("latency", latency_labels, 0.99, 0.2)
    in
    let rules =
      [ W.Rules.record "latency:p99" p99;
        W.Rules.alert "latency-step" p99
          (W.Rules.Detector (W.Detect.cusum ~drift:0.5 ~threshold:5.0 ()));
        W.Rules.alert "fleet-degraded"
          (W.Rules.Last ("fabric:alive_shards", []))
          (W.Rules.Below (float_of_int shards)) ]
    in
    let watch =
      W.Watch.create
        ~config:
          { W.Watch.default_config with W.Watch.wc_interval_s = interval }
        ~rules ()
    in
    if follow then
      W.Watch.on_tick watch (fun w ~now ->
          print_string (W.Live.render w ~now);
          print_string "\n");
    let r =
      Srv.Fabric.run ~registry:(Tel.Metrics.create_registry ()) ~watch config
        ~deploy:(Srv.Fabric.demo_deploy ()) ~tenants ~horizon
    in
    let now = horizon in
    let dashboard =
      match format with
      | `Text -> W.Live.render watch ~now
      | `Json -> W.Live.render_json watch ~now ^ "\n"
    in
    (match out with
    | None -> ()
    | Some f ->
        let oc = open_out f in
        output_string oc dashboard;
        close_out oc);
    if not follow then print_string dashboard;
    let cusum_fired =
      List.exists
        (fun (a : W.Rules.alert_state) ->
          String.equal a.W.Rules.as_name "latency-step"
          && a.W.Rules.as_edges > 0)
        (W.Watch.alert_states watch)
    in
    let served = Srv.Fabric.served_ok r in
    if demo then begin
      Printf.printf "demo: served=%d ticks=%d latency-step alert %s\n" served
        (W.Watch.ticks watch)
        (if cusum_fired then "FIRED (expected)" else "did NOT fire");
      (* like the other --demo drills: exit 1 iff the failure path ran *)
      if cusum_fired then exit 1
    end
    else begin
      let checks =
        [ ("served", served > 0);
          ("scraped", W.Watch.ticks watch > 0);
          ("sketch_fed", W.Watch.samples watch > 0);
          ("no_false_alarms", W.Watch.alerts_total watch = 0) ]
      in
      let all_ok = List.for_all snd checks in
      List.iter
        (fun (n, ok) ->
          Printf.printf "check %-16s %s\n" n (if ok then "ok" else "FAILED"))
        checks;
      print_string (if all_ok then "top drill passed\n" else "top drill FAILED\n");
      if not all_ok then exit 1
    end
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live observability drill: watch a seeded serving run and render \
          the dashboard.")
    Term.(
      const run $ shards $ seed $ rate $ horizon $ interval $ follow $ format
      $ out $ demo)

let () =
  let doc = "EVEREST SDK: compile, run and adapt HPDA applications." in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "everest_cli" ~doc)
          [ compile_cmd; run_cmd; serve_cmd; recover_cmd; hls_cmd;
            telemetry_cmd; chaos_cmd; lint_cmd; observe_cmd; estee_cmd;
            plan_lint_cmd; top_cmd ]))
