(* The EVEREST command-line tool.

     everest_cli compile [--size N] [--emit ir|sycl|rtl|variants]
         compile the demo tensor pipeline and print the requested artifact
     everest_cli run [--policy P] [--fpgas K]
         compile and execute the demo workflow on the simulated demonstrator
     everest_cli serve [--requests N] [--goal time|energy]
         adaptively serve the hot kernel through the virtualized runtime
     everest_cli hls [--unroll U] [--dift]
         synthesize the demo kernel and print the HLS report + RTL sketch
     everest_cli telemetry [--trace-out F] [--metrics-out F] [--format t|p]
         run the demonstrator workflow + adaptive serving fully
         instrumented; emit a Chrome trace-event JSON and a metrics dump
     everest_cli lint [FILE..] [--demo] [--examples] [--format text|json]
         run the static-analysis rules over textual IR modules (or the
         seeded-defect / lowered-example modules); exit 1 on errors  *)

open Cmdliner
module Sdk = Everest.Sdk
module Dsl = Everest_dsl
module TE = Everest_dsl.Tensor_expr
module Tel = Everest_telemetry
module EIr = Everest_ir
module Lint = Everest_analysis.Lint

let demo_graph n =
  let g = Sdk.workflow "demo" in
  let src = Dsl.Dataflow.source g "input" ~bytes:(8 * n * n) in
  let x = TE.input "x" [ n; n ] in
  let mm =
    Dsl.Dataflow.task g "mm" (Dsl.Dataflow.Tensor_kernel (TE.matmul x x))
      ~deps:[ src ]
  in
  let act =
    Dsl.Dataflow.task g "act"
      (Dsl.Dataflow.Tensor_kernel (TE.relu (TE.input "y" [ n; n ])))
      ~deps:[ mm ]
  in
  Dsl.Dataflow.sink g "out" act;
  g

(* ---- compile --------------------------------------------------------------- *)

let compile_cmd =
  let size =
    Arg.(value & opt int 64 & info [ "size" ] ~docv:"N" ~doc:"Tensor size N×N.")
  in
  let emit =
    Arg.(
      value
      & opt (enum [ ("ir", `Ir); ("sycl", `Sycl); ("variants", `Variants);
                    ("report", `Report) ])
          `Report
      & info [ "emit" ] ~doc:"Artifact to print: ir, sycl, variants, report.")
  in
  let run size emit =
    let app = Sdk.compile (demo_graph size) in
    match emit with
    | `Ir ->
        print_string
          (Everest_ir.Printer.module_to_string app.Everest_compiler.Pipeline.ir)
    | `Sycl ->
        List.iter
          (fun k -> print_string k.Everest_compiler.Pipeline.sycl)
          app.Everest_compiler.Pipeline.kernels
    | `Variants ->
        List.iter
          (fun k ->
            Format.printf "kernel %s:@." k.Everest_compiler.Pipeline.ck_name;
            List.iter
              (fun v -> Format.printf "  %a@." Everest_compiler.Variants.pp v)
              k.Everest_compiler.Pipeline.dse.Everest_compiler.Dse.variants)
          app.Everest_compiler.Pipeline.kernels
    | `Report -> Format.printf "%a" Everest_compiler.Pipeline.report app
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile the demo pipeline.")
    Term.(const run $ size $ emit)

(* ---- run ------------------------------------------------------------------- *)

let run_cmd =
  let policy =
    Arg.(
      value & opt string "heft-locality"
      & info [ "policy" ] ~doc:"Scheduling policy.")
  in
  let fpgas =
    Arg.(value & opt int 4 & info [ "fpgas" ] ~doc:"Number of cloudFPGA nodes.")
  in
  let size =
    Arg.(value & opt int 128 & info [ "size" ] ~docv:"N" ~doc:"Tensor size.")
  in
  let run policy fpgas size =
    let app = Sdk.compile (demo_graph size) in
    let stats = Sdk.run ~policy ~cloud_fpgas:fpgas app in
    Format.printf "%a@." Sdk.pp_run stats
  in
  Cmd.v (Cmd.info "run" ~doc:"Run the demo workflow on the demonstrator.")
    Term.(const run $ policy $ fpgas $ size)

(* ---- serve ----------------------------------------------------------------- *)

let serve_cmd =
  let requests =
    Arg.(value & opt int 100 & info [ "requests" ] ~doc:"Request count.")
  in
  let goal =
    Arg.(
      value
      & opt (enum [ ("time", `Time); ("energy", `Energy) ]) `Time
      & info [ "goal" ] ~doc:"Optimization goal.")
  in
  let size =
    Arg.(value & opt int 128 & info [ "size" ] ~docv:"N" ~doc:"Tensor size.")
  in
  let run requests goal size =
    let app = Sdk.compile (demo_graph size) in
    let goal =
      match goal with
      | `Time ->
          Everest_autotune.Goal.make (Everest_autotune.Goal.Minimize "time_s")
      | `Energy ->
          Everest_autotune.Goal.make (Everest_autotune.Goal.Minimize "energy_j")
    in
    let served = Sdk.serve ~n:requests ~goal app ~kernel:"mm" in
    Format.printf "%a@." Sdk.pp_served served
  in
  Cmd.v (Cmd.info "serve" ~doc:"Serve the hot kernel adaptively.")
    Term.(const run $ requests $ goal $ size)

(* ---- hls ------------------------------------------------------------------- *)

let hls_cmd =
  let unroll = Arg.(value & opt int 4 & info [ "unroll" ] ~doc:"Unroll factor.") in
  let dift = Arg.(value & flag & info [ "dift" ] ~doc:"Instrument with DIFT.") in
  let rtl = Arg.(value & flag & info [ "rtl" ] ~doc:"Print the RTL sketch.") in
  let run unroll dift rtl =
    let e = TE.matmul (TE.input "a" [ 64; 64 ]) (TE.input "b" [ 64; 64 ]) in
    let dfg = Everest_compiler.Hw_lower.dfg_of_expr ~unroll e in
    let c =
      { Everest_hls.Hls.default_constraints with
        Everest_hls.Hls.unroll; dift;
        trips = Everest_compiler.Hw_lower.trips e ~unroll;
        max_banks = max 16 unroll }
    in
    let d = Everest_hls.Hls.synthesize ~c ~name:"matmul64" dfg in
    Format.printf "%a" Everest_hls.Hls.report d;
    if rtl then print_string (Everest_hls.Rtl.to_string d.Everest_hls.Hls.rtl)
  in
  Cmd.v (Cmd.info "hls" ~doc:"Synthesize the demo kernel with the HLS flow.")
    Term.(const run $ unroll $ dift $ rtl)

(* ---- telemetry ------------------------------------------------------------- *)

(* Runs the full instrumented flow: compile (wall-clock spans), the
   demonstrator workflow under the executor (simulated-time spans, one track
   per node) and a closed-loop adaptive serving phase, then emits one Chrome
   trace with the three processes plus a metrics dump.  The headline
   executor numbers are printed from both stats and the metrics registry so
   the two accounts can be compared; they must agree exactly. *)
let telemetry_cmd =
  let size =
    Arg.(value & opt int 128 & info [ "size" ] ~docv:"N" ~doc:"Tensor size.")
  in
  let policy =
    Arg.(
      value & opt string "heft-locality"
      & info [ "policy" ] ~doc:"Scheduling policy for the workflow phase.")
  in
  let requests =
    Arg.(
      value & opt int 50
      & info [ "requests" ] ~doc:"Closed-loop requests in the serving phase.")
  in
  let kill =
    let node_time =
      let parse s =
        match String.rindex_opt s ':' with
        | Some i -> (
            let node = String.sub s 0 i
            and t = String.sub s (i + 1) (String.length s - i - 1) in
            match float_of_string_opt t with
            | Some t when node <> "" -> Ok (node, t)
            | _ -> Error (`Msg "expected NODE:TIME, e.g. cf0:0.0001")
          )
        | None -> Error (`Msg "expected NODE:TIME, e.g. cf0:0.0001")
      in
      let print ppf (n, t) = Format.fprintf ppf "%s:%g" n t in
      Arg.conv (parse, print)
    in
    Arg.(
      value & opt (some node_time) None
      & info [ "kill" ] ~docv:"NODE:T"
          ~doc:"Fail node NODE at simulated time T (exercises retries).")
  in
  let trace_out =
    Arg.(
      value & opt string "everest_trace.json"
      & info [ "trace-out" ] ~doc:"Chrome trace-event JSON output file.")
  in
  let metrics_out =
    Arg.(
      value & opt (some string) None
      & info [ "metrics-out" ] ~doc:"Metrics dump file (default: stdout).")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("prometheus", `Prom) ]) `Text
      & info [ "format" ] ~doc:"Metrics dump format: text, prometheus.")
  in
  let run size policy requests kill trace_out metrics_out format =
    let registry = Tel.Metrics.default in
    Tel.Metrics.reset registry;
    (* 1. compile, tracing the DSE stages on the wall clock *)
    let compile_tracer = Tel.Trace.create () in
    let app =
      Tel.Probe.with_tracer compile_tracer (fun () ->
          Sdk.compile (demo_graph size))
    in
    (* 2. demonstrator workflow under the executor, on simulated time *)
    let c = Sdk.Platform.Cluster.everest_demonstrator () in
    let exec_tracer = Sdk.Runtime.Orchestrator.sim_tracer c in
    let failures = match kill with None -> [] | Some f -> [ f ] in
    let plan =
      match Sdk.Workflow.Scheduler.by_name policy with
      | Some f -> f c app.Everest_compiler.Pipeline.dag
      | None -> invalid_arg ("unknown scheduling policy " ^ policy)
    in
    let stats =
      Sdk.Workflow.Executor.execute ~failures ~tracer:exec_tracer ~registry c
        plan
    in
    (* 3. adaptive serving phase (Fig. 2 loop), its own simulated clock *)
    let served = Sdk.serve ~n:requests ~telemetry:true app ~kernel:"mm" in
    (* 4. one Chrome trace, three processes *)
    Tel.Chrome_trace.write_processes trace_out
      [ Tel.Chrome_trace.of_tracer ~pid:1 ~process_name:"compile (wall)"
          compile_tracer;
        Tel.Chrome_trace.of_tracer ~pid:2 ~process_name:"executor (sim)"
          exec_tracer;
        Tel.Chrome_trace.of_spans ~pid:3 ~process_name:"orchestrator (sim)"
          served.Sdk.span_log ];
    (* 5. metrics dump *)
    let dump =
      match format with
      | `Text -> Tel.Metrics.render_text registry
      | `Prom -> Tel.Metrics.render_prometheus registry
    in
    (match metrics_out with
    | None -> print_string dump
    | Some f ->
        let oc = open_out f in
        output_string oc dump;
        close_out oc);
    (* 6. stats vs. telemetry agreement *)
    let counter name =
      match
        Tel.Metrics.find ~registry
          ~labels:[ ("workflow", "demo") ]
          name
      with
      | Some { Tel.Metrics.value = Tel.Metrics.Counter c; _ } ->
          int_of_float !c
      | _ -> -1
    in
    let spans = stats.Sdk.Workflow.Executor.span_log in
    Format.printf
      "@.workflow phase (policy=%s): makespan=%.4gs energy=%.4gJ@." policy
      stats.Sdk.Workflow.Executor.makespan
      stats.Sdk.Workflow.Executor.energy_j;
    let agree name from_stats from_metrics from_trace =
      Format.printf "  %-12s stats=%-10d metrics=%-10d trace=%-10d %s@." name
        from_stats from_metrics from_trace
        (if from_stats = from_metrics && from_metrics = from_trace then "agree"
         else "MISMATCH");
      from_stats = from_metrics && from_metrics = from_trace
    in
    let ok =
      List.for_all Fun.id
        [ agree "tasks"
            (Array.length stats.Sdk.Workflow.Executor.task_finish)
            (counter "workflow_tasks_completed_total")
            (Sdk.Workflow.Executor.trace_tasks_completed spans);
          agree "retries" stats.Sdk.Workflow.Executor.retries
            (counter "workflow_task_retries_total")
            (Sdk.Workflow.Executor.trace_retries spans);
          agree "bytes_moved" stats.Sdk.Workflow.Executor.bytes_moved
            (counter "workflow_bytes_moved_total")
            (Sdk.Workflow.Executor.trace_bytes_moved spans) ]
    in
    Format.printf
      "serving phase: %d requests, mean latency %.3gs, %d switches@."
      served.Sdk.requests served.Sdk.mean_latency_s served.Sdk.switches;
    Format.printf "trace: %s (open in chrome://tracing or ui.perfetto.dev)@."
      trace_out;
    if not ok then exit 1
  in
  Cmd.v
    (Cmd.info "telemetry"
       ~doc:"Run the instrumented demonstrator and emit trace + metrics.")
    Term.(
      const run $ size $ policy $ requests $ kill $ trace_out $ metrics_out
      $ format)

(* ---- lint ------------------------------------------------------------------ *)

(* A module seeded with one instance of every defect family the lint rules
   cover, each op carrying a file location so diagnostics are clickable. *)
let seeded_module () =
  EIr.Registry.register_all ();
  let ctx = EIr.Ir.ctx () in
  let at l (o : EIr.Ir.op) =
    { o with EIr.Ir.loc = EIr.Loc.file "seeded.mlir" l }
  in
  let r = EIr.Ir.result in
  (* @k_proc: the kernel referenced by the placed task (kept alive) *)
  let karg = EIr.Ir.fresh_value ctx EIr.Types.f64 in
  let kret = at 3 (EIr.Dialect_func.return ctx [ karg ]) in
  let k_proc = EIr.Ir.func "k_proc" [ karg ] [ EIr.Types.f64 ] [ kret ] in
  (* @orphan: never referenced -> EV011 *)
  let oret = at 7 (EIr.Dialect_func.return ctx []) in
  let orphan = EIr.Ir.func "orphan" [] [] [ oret ] in
  (* @secrets: EV040 secret data reaches a public sink; EV041 secret task
     pinned to an edge node *)
  let src =
    at 11
      (EIr.Dialect_df.source ctx "patient_records"
         (EIr.Types.tensor EIr.Types.F64 [ 64 ]))
  in
  let cls =
    at 12 (EIr.Dialect_sec.classify ctx (r src) EIr.Dialect_sec.Secret)
  in
  let leak_sink = at 13 (EIr.Dialect_df.sink ctx "public_out" (r cls)) in
  let placed =
    at 14
      (EIr.Dialect_df.task ctx ~kernel:"k_proc"
         ~attrs:
           [ ("everest.security", EIr.Attr.str "secret");
             ("everest.locality", EIr.Attr.str "edge:0") ]
         [ r cls ]
         [ EIr.Types.tensor EIr.Types.F64 [ 64 ] ])
  in
  let sret = at 15 (EIr.Dialect_func.return ctx []) in
  let secrets =
    EIr.Ir.func "secrets" [] [] [ src; cls; leak_sink; placed; sret ]
  in
  (* @main: memref lifetime defects + a dead, constant-foldable op *)
  let buf = at 19 (EIr.Dialect_memref.alloc ctx EIr.Types.F64 [ 4; 4 ]) in
  let c0 = at 20 (EIr.Dialect_arith.const_index ctx 0) in
  let c9 = at 21 (EIr.Dialect_arith.const_index ctx 9) in
  let free1 = at 22 (EIr.Dialect_memref.dealloc ctx (r buf)) in
  (* use after dealloc (EV030) with a constant OOB index (EV033) *)
  let uaf = at 23 (EIr.Dialect_memref.load ctx (r buf) [ r c9; r c0 ]) in
  let free2 = at 24 (EIr.Dialect_memref.dealloc ctx (r buf)) in (* EV031 *)
  let leaked = at 25 (EIr.Dialect_memref.alloc ctx EIr.Types.F64 [ 8 ]) in
  let st =
    at 26 (EIr.Dialect_memref.store ctx (r uaf) (r leaked) [ r c0 ])
  in (* leaked is only loaded/stored and never freed -> EV032 *)
  let k2 = at 27 (EIr.Dialect_arith.const_i ctx 2) in
  let k3 = at 28 (EIr.Dialect_arith.const_i ctx 3) in
  let dead = at 29 (EIr.Dialect_arith.muli ctx (r k2) (r k3)) in
  (* ^ result unused -> EV010; operands constant -> EV013 *)
  let call = at 30 (EIr.Dialect_func.call ctx "secrets" [] []) in
  let mret = at 31 (EIr.Dialect_func.return ctx []) in
  let main =
    EIr.Ir.func "main" [] []
      [ buf; c0; c9; free1; uaf; free2; leaked; st; k2; k3; dead; call; mret ]
  in
  EIr.Ir.modul "seeded" [ k_proc; orphan; secrets; main ]

(* Lowered example workflows (the shapes of examples/): these must lint
   cleanly — CI fails the build otherwise. *)
let example_graphs () =
  let quickstart =
    let g = Sdk.workflow "quickstart" in
    let src =
      Dsl.Dataflow.source g "sensor" ~bytes:(1 lsl 16)
        ~annots:[ Dsl.Annot.Access Dsl.Annot.Streaming ]
    in
    let x = TE.input "x" [ 64; 64 ] in
    let smooth =
      Dsl.Dataflow.task g "smooth"
        (Dsl.Dataflow.Tensor_kernel (TE.scale 0.25 (TE.add x x)))
        ~deps:[ src ]
    in
    let w = TE.input "w" [ 64; 64 ] in
    let project =
      Dsl.Dataflow.task g "project"
        (Dsl.Dataflow.Tensor_kernel (TE.relu (TE.matmul w w)))
        ~deps:[ smooth ]
        ~annots:[ Dsl.Annot.Security EIr.Dialect_sec.Confidential ]
    in
    Dsl.Dataflow.sink g "result" project;
    g
  in
  let forecast =
    let g = Sdk.workflow "forecast" in
    let src = Dsl.Dataflow.source g "meters" ~bytes:(1 lsl 20) in
    let x = TE.input "x" [ 128; 128 ] in
    let model =
      Dsl.Dataflow.task g "model"
        (Dsl.Dataflow.Tensor_kernel (TE.matmul x x))
        ~deps:[ src ]
        ~annots:[ Dsl.Annot.Locality "cloud" ]
    in
    Dsl.Dataflow.sink g "forecast" model;
    g
  in
  [ ("quickstart", quickstart); ("forecast", forecast);
    ("demo", demo_graph 64) ]

let lint_cmd =
  let files =
    Arg.(
      value & pos_all file []
      & info [] ~docv:"FILE" ~doc:"Textual IR module to lint.")
  in
  let demo =
    Arg.(
      value & flag
      & info [ "demo" ]
          ~doc:"Lint a module seeded with one defect per rule family.")
  in
  let examples =
    Arg.(
      value & flag
      & info [ "examples" ]
          ~doc:"Lint the lowered example workflow modules (must be clean).")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~doc:"Output format: text, json.")
  in
  let run files demo examples format =
    EIr.Registry.register_all ();
    let read_file f =
      let ic = open_in_bin f in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    let mods =
      List.map
        (fun f ->
          let ctx = EIr.Ir.ctx () in
          (f, EIr.Parser.parse_module ctx (read_file f)))
        files
      @ (if demo then [ ("seeded", seeded_module ()) ] else [])
      @
      if examples then
        List.map
          (fun (name, g) ->
            let ctx = EIr.Ir.ctx () in
            (name, Dsl.Lower.lower_graph ctx g))
          (example_graphs ())
      else []
    in
    if mods = [] then (
      prerr_endline
        "lint: nothing to check (pass FILE arguments, --demo or --examples)";
      exit 2);
    let results = List.map (fun (name, m) -> (name, Lint.run m)) mods in
    (match format with
    | `Text ->
        List.iter
          (fun (name, ds) ->
            Format.printf "== %s ==@.%s@." name (Lint.render_text ds))
          results
    | `Json ->
        let items =
          List.map
            (fun (name, ds) ->
              Printf.sprintf "{\"module\": \"%s\", \"report\": %s}" name
                (String.trim (Lint.render_json ds)))
            results
        in
        print_string ("[" ^ String.concat ",\n" items ^ "]\n"));
    if List.exists (fun (_, ds) -> Lint.has_errors ds) results then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Run the static-analysis rules (EV0xx) over IR modules.")
    Term.(const run $ files $ demo $ examples $ format)

let () =
  let doc = "EVEREST SDK: compile, run and adapt HPDA applications." in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "everest_cli" ~doc)
          [ compile_cmd; run_cmd; serve_cmd; hls_cmd; telemetry_cmd; lint_cmd ]))
