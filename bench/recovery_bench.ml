(* E19: crash-consistent checkpoint/restore cost on the serving fabric.

     dune exec bench/recovery_bench.exe              # full sweep, writes BENCH_e19.json
     dune exec bench/recovery_bench.exe -- --quick   # reduced sweep for CI

   Write-ahead journaling is only worth having if the fault-free run
   barely notices it, so the headline gate is the CPU-time overhead of
   a journaled+snapshotted e16-scale serving run over the identical
   unjournaled run — <5% in the full sweep.  The second question is the
   operational trade the snapshot interval buys: snapshotting more often
   costs more snapshot bytes during the run but leaves a shorter journal
   tail to replay after a crash, so recovery time falls.  The sweep
   crashes the fabric halfway through the journal at each interval,
   restores, and reports recovery time plus the replayed-tail length —
   and byte-compares every resumed report against the uninterrupted run,
   so the bench doubles as an end-to-end identity check at bench scale. *)

module Srv = Everest_serving
module Res = Everest_resilience
module Rec = Everest_recovery
module Tel = Everest_telemetry

(* Measuring a 5% effect on a shared host is the hard part of this
   bench: identical back-to-back runs drift by ±15-30% in CPU time
   (frequency scaling and co-tenant contention change the cycles a fixed
   workload costs), so an A-vs-B comparison of separately timed runs
   cannot resolve the gate.  The gated overhead is therefore measured by
   ATTRIBUTION: the fabric clocks its recovery code paths (payload
   encoding, journal appends, served-log encoding, snapshot writes) into
   [Store.work_s], and the fraction work/(total-work) comes from a
   single run — numerator and denominator share whatever noise
   multiplier the host applied, so it cancels.  The A/B median over
   interleaved pairs is still reported per row as a sanity cross-check,
   but it carries the host noise. *)
let now () = Sys.time ()

let time_one f =
  let t0 = now () in
  let r = f () in
  (now () -. t0, r)

type row = {
  r_interval_s : float;
  r_run_s : float;  (* best journaled run CPU time *)
  r_overhead : float;  (* median attributed work/(total-work) fraction *)
  r_ab_overhead : float;  (* median interleaved-pair A/B ratio - 1 (noisy) *)
  r_records : int;
  r_journal_kib : float;
  r_snapshots : int;
  r_snapshot_kib : float;
  r_resume_s : float;  (* restore + replay-to-front CPU after a mid-run kill *)
  r_replayed : int;  (* journal tail re-applied on restore *)
  r_identical : bool;  (* resumed report == uninterrupted report *)
}

let row_json r =
  Printf.sprintf
    "{\"snapshot_every_s\": %.3f, \"run_s\": %.6f, \"overhead_frac\": %.4f, \
     \"ab_overhead_frac\": %.4f, \
     \"journal_records\": %d, \"journal_kib\": %.1f, \"snapshots\": %d, \
     \"snapshot_kib\": %.1f, \"resume_s\": %.6f, \"replayed_records\": %d, \
     \"byte_identical\": %b}"
    r.r_interval_s r.r_run_s r.r_overhead r.r_ab_overhead r.r_records
    r.r_journal_kib r.r_snapshots r.r_snapshot_kib r.r_resume_s r.r_replayed
    r.r_identical

let () =
  let quick = Array.exists (String.equal "--quick") Sys.argv in
  (* Full mode runs at e16 scale: E16's headline sweep peaks at 16
     shards, and 800 req/s per shard sits on its sustained-rate ladder.
     The scale matters for the gate — balancer, batching and monitor
     work per request grows with fleet size and load while the journal
     writes the same bytes per event, so this is the configuration whose
     overhead fraction the <5% budget is defined against. *)
  let shards = if quick then 2 else 16 in
  let rate = if quick then 2000.0 else 12800.0 in
  let horizon = if quick then 0.3 else 1.0 in
  let reps = if quick then 2 else 3 in
  let intervals = if quick then [ 0.05; 0.1 ] else [ 0.05; 0.1; 0.2; 0.5 ] in
  let seed = 19 in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "everest-bench-e19" in
  let tenants =
    [ Srv.Workload.open_tenant ~name:"acme" ~kernel:"mm" ~rate_rps:rate
        ~diurnal_amplitude:0.3 ~diurnal_period_s:1.0
        ~features:(fun seq ->
          [ ("size", float_of_int (1024 + (64 * (seq mod 4)))) ])
        ();
      Srv.Workload.closed_tenant ~name:"globex" ~kernel:"mm" ~users:4
        ~think_s:0.05 () ]
  in
  let config =
    { (Srv.Fabric.default_config ~n_shards:shards) with
      Srv.Fabric.seed;
      faults =
        Res.Faults.plan ~seed ~transient_prob:0.02 ~fpga_transient_prob:0.05
          () }
  in
  let fp = Srv.Fabric.fingerprint config ~tenants ~horizon in
  let render r =
    Srv.Fabric.render_log r ^ "\n" ^ Srv.Fabric.render_slos r ^ "\n"
    ^ Srv.Fabric.render_summary r
  in
  let run ?recovery () =
    Srv.Fabric.run ~registry:(Tel.Metrics.create_registry ()) ?recovery config
      ~deploy:(Srv.Fabric.demo_deploy ()) ~tenants ~horizon
  in

  Printf.printf
    "E19: recovery overhead + snapshot-interval sweep (%d shards, %.0f \
     req/s, %.1fs horizon%s)\n\n\
     %!"
    shards rate horizon
    (if quick then ", quick" else "");

  (* ---- baseline reference output (also warms the process) ---- *)
  let plain_r = run () in
  let plain = render plain_r in
  Printf.printf "unjournaled run: %d requests\n%!"
    (List.length plain_r.Srv.Fabric.f_log);
  let global_plain = ref infinity in

  (* ---- sweep: journaled run + mid-run kill per snapshot interval ---- *)
  let rows =
    List.map
      (fun interval ->
        let recovery store =
          { Srv.Fabric.rv_store = store; rv_snapshot_every_s = interval }
        in
        (* interleaved pairs: plain rep, journaled rep, plain rep, ...
           per journaled rep the gated estimate is the attributed
           work/(total-work) fraction; the per-pair A/B ratio rides
           along as the noisy cross-check. *)
        let plain_best = ref infinity and j_best = ref infinity in
        let ratios = ref [] and attrs = ref [] in
        let j_out = ref None in
        for _ = 1 to reps do
          let tp, _ = time_one (fun () -> run ()) in
          if tp < !plain_best then plain_best := tp;
          let tj, (out, work_s) =
            time_one (fun () ->
                let store =
                  Rec.Store.open_store ~fresh:true ~dir ~fingerprint:fp ()
                in
                let r = run ~recovery:(recovery store) () in
                let out =
                  ( render r,
                    store.Rec.Store.records_written,
                    store.Rec.Store.snapshots_written,
                    store.Rec.Store.journal_bytes,
                    store.Rec.Store.snapshot_bytes )
                in
                let work_s = store.Rec.Store.work_s in
                Rec.Store.close store;
                (out, work_s))
          in
          if tj < !j_best then j_best := tj;
          ratios := (tj /. tp) :: !ratios;
          attrs := (work_s /. Float.max 1e-9 (tj -. work_s)) :: !attrs;
          j_out := Some out
        done;
        let plain_s = !plain_best and run_s = !j_best in
        if plain_s < !global_plain then global_plain := plain_s;
        let median xs =
          let sorted = List.sort compare xs in
          List.nth sorted (List.length sorted / 2)
        in
        let attr_frac = median !attrs in
        let ab_ratio = median !ratios in
        let journaled, records, snapshots, jbytes, sbytes =
          Option.get !j_out
        in
        (* kill halfway through the journal, then restore *)
        let store = Rec.Store.open_store ~fresh:true ~dir ~fingerprint:fp () in
        Rec.Store.arm_crash store ~after_records:(max 1 (records / 2));
        (try ignore (run ~recovery:(recovery store) ())
         with Rec.Journal.Crashed -> ());
        Rec.Store.close store;
        let resume_s, (resumed, report) =
          time_one (fun () ->
              let store = Rec.Store.open_store ~dir ~fingerprint:fp () in
              let r, rep =
                Srv.Fabric.resume ~registry:(Tel.Metrics.create_registry ())
                  ~recovery:(recovery store) config
                  ~deploy:(Srv.Fabric.demo_deploy ()) ~tenants ~horizon
              in
              Rec.Store.close store;
              (render r, rep))
        in
        let identical =
          String.equal plain journaled && String.equal plain resumed
        in
        let r =
          { r_interval_s = interval;
            r_run_s = run_s;
            r_overhead = attr_frac;
            r_ab_overhead = ab_ratio -. 1.0;
            r_records = records;
            r_journal_kib = float_of_int jbytes /. 1024.0;
            r_snapshots = snapshots;
            r_snapshot_kib = float_of_int sbytes /. 1024.0;
            r_resume_s = resume_s;
            r_replayed = report.Srv.Fabric.rr_replayed;
            r_identical = identical }
        in
        Printf.printf
          "  every %.3fs: plain %s, run %s, attributed %+.2f%% (A/B median \
           %+.1f%%), %d records / %d snapshots, resume %s replaying %d, \
           identical=%b\n\
           %!"
          interval (Util.time_str plain_s) (Util.time_str run_s)
          (100.0 *. r.r_overhead)
          (100.0 *. r.r_ab_overhead)
          records snapshots (Util.time_str resume_s) r.r_replayed identical;
        r)
      intervals
  in
  let plain_s = !global_plain in

  print_newline ();
  Util.table
    ~cols:
      [ "snapshot every"; "run"; "overhead"; "A/B"; "records"; "journal";
        "snapshots"; "snap KiB"; "resume"; "replayed" ]
    (List.map
       (fun r ->
         [ Printf.sprintf "%.3fs" r.r_interval_s; Util.time_str r.r_run_s;
           Printf.sprintf "%+.2f%%" (100.0 *. r.r_overhead);
           Printf.sprintf "%+.1f%%" (100.0 *. r.r_ab_overhead);
           string_of_int r.r_records;
           Printf.sprintf "%.0f KiB" r.r_journal_kib;
           string_of_int r.r_snapshots;
           Printf.sprintf "%.0f" r.r_snapshot_kib;
           Util.time_str r.r_resume_s; string_of_int r.r_replayed ])
       rows);

  (* ---- verdict ---- *)
  (* the gate reads the widest interval: that is the configuration where
     journaling itself (not snapshot serialization) dominates, i.e. the
     steady-state tax every fault-free run pays.  Quick CI runs at a
     fraction of e16 scale, where the per-event baseline is much lighter,
     so they only sanity-bound the fraction. *)
  let overhead_budget = if quick then 0.5 else 0.05 in
  let steady =
    List.fold_left
      (fun acc r -> if r.r_interval_s > acc.r_interval_s then r else acc)
      (List.hd rows) rows
  in
  let overhead_ok = steady.r_overhead < overhead_budget in
  let identity_ok = List.for_all (fun r -> r.r_identical) rows in
  (* shorter interval must not replay a longer tail than the longest one *)
  let shortest = List.hd rows in
  let longest = List.nth rows (List.length rows - 1) in
  let tail_ok = shortest.r_replayed <= longest.r_replayed in
  let passed = overhead_ok && identity_ok && tail_ok in
  let json =
    Printf.sprintf
      "{\n\
      \  \"shards\": %d,\n\
      \  \"rate_rps\": %.0f,\n\
      \  \"horizon_s\": %.2f,\n\
      \  \"unjournaled_s\": %.6f,\n\
      \  \"sweep\": [\n    %s\n  ],\n\
      \  \"steady_state_overhead_frac\": %.4f,\n\
      \  \"overhead_budget\": %.2f,\n\
      \  \"byte_identity\": %b,\n\
      \  \"quick\": %b,\n\
      \  \"passed\": %b\n\
       }\n"
      shards rate horizon plain_s
      (String.concat ",\n    " (List.map row_json rows))
      steady.r_overhead overhead_budget identity_ok quick passed
  in
  let oc = open_out "BENCH_e19.json" in
  output_string oc json;
  close_out oc;
  Printf.printf
    "\nwrote BENCH_e19.json\n\
     Expected shape: journaling + snapshotting tax the fault-free run by\n\
     a few percent (gated <%.0f%%), snapshotting more often trades\n\
     snapshot bytes for a shorter replay tail (so recovery gets faster),\n\
     and every resumed report is byte-identical to the uninterrupted\n\
     same-seed run.\n"
    (100.0 *. overhead_budget);
  if not passed then begin
    Printf.eprintf
      "E19 FAILED: overhead_ok=%b (%.3f at %.3fs interval) identity_ok=%b \
       tail_ok=%b\n"
      overhead_ok steady.r_overhead steady.r_interval_s identity_ok tail_ok;
    exit 1
  end
