(* E17: Estee-style DAG scheduling benchmark (million-task engine).

     dune exec bench/estee.exe              # full sweep, writes BENCH_e17.json
     dune exec bench/estee.exe -- --quick   # reduced sweep (<= 10^4 tasks)

   Beránek et al. benchmark task schedulers with generated DAG families at
   increasing scale, reporting scheduled-tasks/second and the
   makespan-quality-vs-decision-time frontier.  This driver runs that
   methodology over the repository's production scheduler/executor stack:

   - throughput sweep: {layered, fork-join, ensemble} x {10^3..10^5(..10^6)}
     x every policy, planning wall-clock and simulated makespan;
   - quadratic baseline: the pre-memoization HEFT ([heft-reference]) on the
     layered family, giving the naive-vs-indexed speedup curve;
   - delta reschedule: [Scheduler.heft_delta] cone repair vs a full
     reschedule after node death, decision time and resulting makespan;
   - telemetry forcing: a traced ~10^6-span execution and the wall cost of
     forcing the lazy Observe report.

   Results land in BENCH_e17.json; EXPERIMENTS.md section E17 narrates a
   committed run. *)

module Wf = Everest_workflow
module Sb = Wf.Scalebench

let policies = [ "round-robin"; "min-load"; "heft"; "heft-locality" ]
let families = [ Sb.Layered; Sb.Fork_join; Sb.Ensemble ]

let () =
  let quick = Array.exists (fun a -> a = "--quick") Sys.argv in
  Util.header
    (if quick then "E17: Estee-style scheduling scale sweep (quick)"
     else "E17: Estee-style scheduling scale sweep");

  (* ---- throughput sweep ---- *)
  let scales = if quick then [ 1_000; 10_000 ] else [ 1_000; 10_000; 100_000 ] in
  let sweep =
    List.concat_map
      (fun family ->
        List.concat_map
          (fun tasks ->
            List.map
              (fun policy ->
                (* simulated execution everywhere except the very largest
                   fork-join instances, where a 10^5-way join is a
                   degenerate shape we only plan *)
                let execute =
                  tasks <= 10_000
                  || (family = Sb.Layered && policy = "heft")
                in
                Sb.run_policy ~execute family ~tasks ~policy)
              policies)
          scales)
      families
  in
  Util.table
    ~cols:[ "family"; "tasks"; "policy"; "plan"; "tasks/s"; "makespan" ]
    (List.map
       (fun (s : Sb.sample) ->
         [ s.Sb.sb_family; string_of_int s.Sb.sb_tasks; s.Sb.sb_policy;
           Util.time_str s.Sb.sb_plan_wall_s; Util.si s.Sb.sb_tasks_per_s;
           (if s.Sb.sb_makespan_s < 0.0 then "-"
            else Printf.sprintf "%.1fs" s.Sb.sb_makespan_s) ])
       sweep);

  (* ---- scaling headroom: 10^6-task layered planning ---- *)
  let headroom =
    if quick then []
    else begin
      Printf.printf "\nplanning a 10^6-task layered DAG (HEFT)...\n%!";
      [ Sb.run_policy ~execute:false Sb.Layered ~tasks:1_000_000 ~policy:"heft" ]
    end
  in
  List.iter
    (fun (s : Sb.sample) ->
      Printf.printf "  %d tasks planned in %s (%s tasks/s)\n"
        s.Sb.sb_tasks
        (Util.time_str s.Sb.sb_plan_wall_s)
        (Util.si s.Sb.sb_tasks_per_s))
    headroom;

  (* ---- quadratic baseline: pre-PR HEFT on the layered family ---- *)
  let naive_scales = if quick then [ 1_000; 10_000 ] else [ 1_000; 10_000; 100_000 ] in
  Printf.printf "\nquadratic baseline (pre-memoization HEFT, layered):\n%!";
  let naive =
    List.map
      (fun tasks ->
        let s =
          Sb.run_policy ~execute:false Sb.Layered ~tasks ~policy:"heft-reference"
        in
        Printf.printf "  %6d tasks: %s (%s tasks/s)\n%!" s.Sb.sb_tasks
          (Util.time_str s.Sb.sb_plan_wall_s)
          (Util.si s.Sb.sb_tasks_per_s);
        s)
      naive_scales
  in
  let top = List.hd (List.rev naive_scales) in
  let find_layered_heft samples tasks =
    List.find_opt
      (fun (s : Sb.sample) ->
        s.Sb.sb_family = "layered" && s.Sb.sb_policy = "heft"
        && abs (s.Sb.sb_tasks - tasks) * 10 < tasks)
      samples
  in
  let speedup =
    match
      ( find_layered_heft sweep top,
        List.find_opt (fun (s : Sb.sample) -> abs (s.Sb.sb_tasks - top) * 10 < top) naive )
    with
    | Some fast, Some slow -> fast.Sb.sb_tasks_per_s /. slow.Sb.sb_tasks_per_s
    | _ -> 0.0
  in
  Printf.printf "\nHEFT speedup over pre-PR at %d tasks: %.1fx\n" top speedup;

  (* ---- delta vs full reschedule after node death ---- *)
  (* The repair cone is the dead node's tasks closed under consumers, so
     the DAG family decides how far death propagates: ensemble chains are
     independent, keeping the cone to the chain tails actually touching
     the dead node, while on a densely-wired layered DAG any seed set's
     cone swallows most of the graph within a few layers — delta repair
     then rightly degrades toward a full replan.  One case of each
     brackets the spectrum. *)
  let delta_scales = if quick then [ 10_000 ] else [ 10_000; 100_000 ] in
  Printf.printf "\ndelta (cone) reschedule vs full after node 'cf0' death:\n%!";
  let deltas =
    List.concat_map
      (fun tasks ->
        List.map
          (fun (family, dead) ->
            let d = Sb.run_delta ~execute:true family ~tasks ~dead in
            Printf.printf
              "  %6d tasks (%s): full %s, delta %s (%.1fx; %.1f%% of \
               tasks moved; makespan %.1fs vs %.1fs)\n%!"
              d.Sb.ds_tasks (Sb.family_name family)
              (Util.time_str d.Sb.ds_full_wall_s)
              (Util.time_str d.Sb.ds_delta_wall_s)
              (d.Sb.ds_full_wall_s /. d.Sb.ds_delta_wall_s)
              (100.0 *. d.Sb.ds_moved_frac)
              d.Sb.ds_full_makespan_s d.Sb.ds_delta_makespan_s;
            d)
          [ (Sb.Ensemble, "cf0"); (Sb.Layered, "cf0") ])
      delta_scales
  in

  (* ---- telemetry forcing on a ~10^6-span log ---- *)
  let tel_tasks = if quick then 20_000 else 440_000 in
  Printf.printf "\ntraced execution + report forcing (%d tasks)...\n%!" tel_tasks;
  let tel = Sb.run_telemetry ~repeats:(if quick then 3 else 5) ~tasks:tel_tasks () in
  Printf.printf
    "  %d spans; run %s, report forcing %s (%.2f%% of run)\n"
    tel.Sb.ts_spans
    (Util.time_str tel.Sb.ts_run_wall_s)
    (Util.time_str tel.Sb.ts_report_wall_s)
    (100.0 *. tel.Sb.ts_report_frac);

  (* ---- verdict + JSON ---- *)
  let speedup_ok = quick || speedup >= 50.0 in
  (* the <5% budget is a property of ~10^6-span logs; at quick scale fixed
     report costs dominate, so the smoke run only sanity-bounds it *)
  let telemetry_ok =
    tel.Sb.ts_report_frac < if quick then 0.25 else 0.05
  in
  let passed = speedup_ok && telemetry_ok in
  let json =
    Printf.sprintf
      "{\n\
      \  \"sweep\": [\n    %s\n  ],\n\
      \  \"headroom\": [\n    %s\n  ],\n\
      \  \"naive_baseline\": [\n    %s\n  ],\n\
      \  \"heft_speedup_at_top_scale\": %.2f,\n\
      \  \"delta\": [\n    %s\n  ],\n\
      \  \"telemetry\": %s,\n\
      \  \"quick\": %b,\n\
      \  \"passed\": %b\n\
       }\n"
      (String.concat ",\n    " (List.map Sb.sample_json sweep))
      (String.concat ",\n    " (List.map Sb.sample_json headroom))
      (String.concat ",\n    " (List.map Sb.sample_json naive))
      speedup
      (String.concat ",\n    " (List.map Sb.delta_json deltas))
      (Sb.telemetry_json tel)
      quick passed
  in
  let oc = open_out "BENCH_e17.json" in
  output_string oc json;
  close_out oc;
  Printf.printf
    "\nwrote BENCH_e17.json\n\
     Expected shape: planning throughput holds in the 10^5-10^6 tasks/s\n\
     range across families and scales (the pre-PR quadratic HEFT collapses\n\
     with n); cone repair after node death costs a small fraction of a full\n\
     reschedule at equal makespan; and forcing the report on a ~10^6-span\n\
     log stays under 5%% of the traced run.\n";
  if not passed then begin
    Printf.eprintf "E17 FAILED: speedup_ok=%b telemetry_ok=%b\n" speedup_ok
      telemetry_ok;
    exit 1
  end
