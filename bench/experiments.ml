(* Experiments E1-E10: the executable counterpart of every figure and claim
   of the EVEREST paper (see DESIGN.md section 3 for the mapping, and
   EXPERIMENTS.md for recorded results). *)

open Util
module TE = Everest_dsl.Tensor_expr
module Dsl = Everest_dsl
module Comp = Everest_compiler
module Hls = Everest_hls
module Plat = Everest_platform
module Wf = Everest_workflow
module Rt = Everest_runtime
module At = Everest_autotune
module Sec = Everest_security

let matmul_expr n = TE.matmul (TE.input "a" [ n; n ]) (TE.input "b" [ n; n ])

(* ================================================================== E1 == *)
(* Fig. 1: the data-driven compilation flow end to end. *)

let e1 () =
  header "E1 (Fig. 1): data-driven compilation flow — DSE cost and results";
  let rows =
    List.concat_map
      (fun n ->
        let e = matmul_expr n in
        let oracle = Comp.Dse.exhaustive e in
        let sampled = Comp.Dse.sampled ~budget:12 e in
        let greedy = Comp.Dse.greedy e in
        List.map
          (fun (name, (r : Comp.Dse.result)) ->
            [ Printf.sprintf "matmul %dx%d" n n; name;
              string_of_int r.Comp.Dse.explored;
              string_of_int (List.length r.Comp.Dse.variants);
              (match r.Comp.Dse.best_time with
              | Some v -> time_str v.Comp.Variants.time_s
              | None -> "-");
              f2 (Comp.Dse.quality r oracle) ])
          [ ("exhaustive", oracle); ("sampled-12", sampled); ("greedy", greedy) ])
      [ 64; 256 ]
  in
  table
    ~cols:[ "kernel"; "strategy"; "evals"; "pareto"; "best time"; "quality" ]
    rows;
  (* compilation pipeline statistics on the quickstart-like app *)
  let g = Dsl.Dataflow.create "e1app" in
  let src = Dsl.Dataflow.source g "in" ~bytes:65536 in
  let t1 =
    Dsl.Dataflow.task g "k1" (Dsl.Dataflow.Tensor_kernel (matmul_expr 64))
      ~deps:[ src ]
  in
  let _ =
    Dsl.Dataflow.task g "k2"
      (Dsl.Dataflow.Tensor_kernel (TE.relu (TE.input "x" [ 64; 64 ])))
      ~deps:[ t1 ]
  in
  let app = Comp.Pipeline.compile g in
  Printf.printf "\ncompile pipeline: %d kernels, %d total Pareto variants, %d IR ops\n"
    (List.length app.Comp.Pipeline.kernels)
    (Comp.Pipeline.total_variants app)
    (Everest_ir.Ir.module_op_count app.Comp.Pipeline.ir);
  List.iter
    (fun r -> Printf.printf "  pass %s\n" (Fmt.str "%a" Everest_ir.Pass.pp_report r))
    app.Comp.Pipeline.pass_reports;
  (* middle-end pipeline on deliberately redundant IR: lowered matmul with a
     dead duplicate chain, then unroll+canonicalize the inner loop *)
  Printf.printf "\nmiddle-end passes on a lowered 16x16 matmul kernel:\n";
  Everest_ir.Registry.register_all ();
  let ctx = Everest_ir.Ir.ctx () in
  let e = matmul_expr 16 in
  let f0 = Comp.Loops.lower_func ctx (Dsl.Lower.lower_expr ctx e) in
  let m0 = Everest_ir.Ir.modul "k" [ f0 ] in
  let m1, reports =
    Everest_ir.Pass.run_pipeline ctx
      (Everest_ir.Transforms.standard_pipeline @ [ Comp.Loop_fusion.pass ])
      m0
  in
  List.iter
    (fun r -> Printf.printf "  pass %s\n" (Fmt.str "%a" Everest_ir.Pass.pp_report r))
    reports;
  let f1 = List.hd m1.Everest_ir.Ir.funcs in
  let f2 = Everest_ir.Loop_transforms.unroll_by ctx ~factor:4 f1 in
  let m2, reports2 =
    Everest_ir.Pass.run_pipeline ctx Everest_ir.Transforms.standard_pipeline
      (Everest_ir.Ir.modul "k" [ f2 ])
  in
  Printf.printf "  after unroll-by-4 of the reduction loop:\n";
  List.iter
    (fun r -> Printf.printf "  pass %s\n" (Fmt.str "%a" Everest_ir.Pass.pp_report r))
    reports2;
  ignore m2

(* ================================================================== E2 == *)
(* Variant space: who wins where (software layouts/tiling/threads vs FPGA). *)

let e2 () =
  header "E2: SW/HW variant crossover vs problem size (matmul chain)";
  let target = Comp.Variants.default_target in
  let rows =
    List.map
      (fun n ->
        let e = matmul_expr n in
        let vs = Comp.Variants.generate ~target e in
        let best_of pred =
          List.fold_left
            (fun acc v ->
              if pred v then
                match acc with
                | Some (b : Comp.Variants.variant) when b.Comp.Variants.time_s <= v.Comp.Variants.time_s -> acc
                | _ -> Some v
              else acc)
            None vs
        in
        let naive =
          List.find_opt
            (fun v -> v.Comp.Variants.vname = "sw-aos-t1")
            vs
        in
        let best_sw =
          best_of (fun v ->
              match v.Comp.Variants.impl with Comp.Variants.Sw _ -> true | _ -> false)
        in
        let best_hw =
          best_of (fun v ->
              match v.Comp.Variants.impl with Comp.Variants.Hw _ -> true | _ -> false)
        in
        let t v = Option.fold ~none:"-" ~some:(fun (x : Comp.Variants.variant) -> time_str x.Comp.Variants.time_s) v in
        let en v =
          Option.fold ~none:"-"
            ~some:(fun (x : Comp.Variants.variant) ->
              Printf.sprintf "%.2e" x.Comp.Variants.energy_j)
            v
        in
        let energy_winner =
          match (best_sw, best_hw) with
          | Some s, Some h ->
              if h.Comp.Variants.energy_j < s.Comp.Variants.energy_j then "HW" else "SW"
          | _ -> "-"
        in
        let time_winner =
          match (best_sw, best_hw) with
          | Some s, Some h ->
              if h.Comp.Variants.time_s < s.Comp.Variants.time_s then "HW" else "SW"
          | _ -> "-"
        in
        [ string_of_int n; t naive; t best_sw; t best_hw; en best_sw; en best_hw;
          time_winner; energy_winner ])
      [ 16; 32; 64; 128; 256; 512 ]
  in
  table
    ~cols:
      [ "size"; "sw naive"; "sw best"; "hw best"; "E sw (J)"; "E hw (J)";
        "time win"; "energy win" ]
    rows;
  Printf.printf
    "\nExpected shape: SW wins latency on small/medium sizes (multicore peak),\n\
     HW wins energy at scale — the paper's energy-efficiency claim (SVI-D).\n";

  (* the particle layout axis: "layouts of particles as array-of-structures
     or structure-of-arrays" (SIII-B) *)
  Printf.printf "\nparticle layout variants (8-field particles, 100k particles):\n\n";
  let s = Dsl.Particles.create ~n:100_000 Dsl.Particles.standard_attrs in
  let rows =
    List.map
      (fun (label, reads, writes) ->
        let aos =
          Dsl.Particles.map_traffic_bytes
            { s with Dsl.Particles.layout = Dsl.Particles.Aos } ~reads ~writes
        in
        let soa =
          Dsl.Particles.map_traffic_bytes
            { s with Dsl.Particles.layout = Dsl.Particles.Soa } ~reads ~writes
        in
        [ label; si (float_of_int aos); si (float_of_int soa);
          Printf.sprintf "%.1fx" (float_of_int aos /. float_of_int soa);
          (match Dsl.Particles.recommend_layout s ~reads ~writes with
          | Dsl.Particles.Soa -> "SoA"
          | Dsl.Particles.Aos -> "AoS") ])
      [ ("position update (4/8 fields)", [ "x"; "y"; "vx"; "vy" ], [ "x"; "y" ]);
        ("charge scaling (1/8 fields)", [ "charge" ], [ "charge" ]);
        ("full-record kernel (8/8)", Dsl.Particles.standard_attrs,
         Dsl.Particles.standard_attrs) ]
  in
  table ~cols:[ "kernel"; "AoS bytes"; "SoA bytes"; "ratio"; "pick" ] rows;
  Printf.printf
    "\nExpected shape: SoA wins whenever kernels touch a minority of fields —\n\
     the particle-layout variant axis of SIII-B.\n"

(* ================================================================== E3 == *)
(* HLS quality: schedule latency vs resources; banking vs II. *)

let e3 () =
  header "E3: HLS scheduling and memory partitioning";
  let g = Hls.Cdfg.random ~seed:9 ~n:200 ~load_frac:0.25 ~mul_frac:0.35 () in
  let asap = (Hls.Schedule.asap g).Hls.Schedule.makespan in
  let rows =
    List.map
      (fun units ->
        let res =
          { Hls.Schedule.default_resources with
            Hls.Schedule.adders = units; multipliers = units; mem_ports = units }
        in
        let s = Hls.Schedule.list_schedule ~res g in
        let b = Hls.Bind.bind g s in
        [ string_of_int units;
          string_of_int s.Hls.Schedule.makespan;
          Printf.sprintf "%.2fx" (float_of_int s.Hls.Schedule.makespan /. float_of_int asap);
          string_of_int (List.length b.Hls.Bind.fus);
          string_of_int b.Hls.Bind.registers ])
      [ 1; 2; 4; 8; 16 ]
  in
  Printf.printf "200-node random DFG, ASAP latency (unbounded) = %d cycles\n\n" asap;
  table ~cols:[ "units/class"; "cycles"; "vs ASAP"; "FUs"; "regs" ] rows;
  (* banking *)
  Printf.printf "\nmemory banking vs initiation interval (stride-1, unroll 8, 1 port):\n\n";
  let accesses = [ Hls.Cdfg.Affine { coeff = 1; offset = 0 } ] in
  let rows =
    List.concat_map
      (fun banks ->
        List.map
          (fun scheme ->
            let cfg = { Hls.Mem_partition.scheme; banks } in
            let ii =
              Hls.Mem_partition.ii_for cfg ~ports:1 ~array_size:1024 ~unroll:8
                accesses
            in
            [ string_of_int banks; Hls.Mem_partition.scheme_name scheme;
              string_of_int ii ])
          [ Hls.Mem_partition.Cyclic; Hls.Mem_partition.Block;
            Hls.Mem_partition.Block_cyclic 2 ])
      [ 1; 2; 4; 8 ]
  in
  table ~cols:[ "banks"; "scheme"; "II" ] rows;
  Printf.printf
    "\nExpected shape: cyclic banking reaches II=1 at 8 banks for stride-1;\n\
     block banking cannot (adjacent accesses share a bank) — ref [28].\n";

  (* fusion ablation: loop count and memory traffic of an elementwise chain
     before/after producer-consumer fusion, measured by interpretation *)
  Printf.printf "\nloop fusion on an elementwise chain (sigmoid(2*relu(x+y)), 1024 elems):\n\n";
  let x = TE.input "x" [ 1024 ] in
  let y = TE.input "y" [ 1024 ] in
  let e = TE.sigmoid (TE.scale 2.0 (TE.relu (TE.add x y))) in
  let ctx = Everest_ir.Ir.ctx () in
  let f = Comp.Loops.lower_func ctx (Dsl.Lower.lower_expr ctx e) in
  let f' = Comp.Loop_fusion.fuse_func ctx f in
  let profile_of f =
    let m = Everest_ir.Ir.modul "m" [ f ] in
    let arr = Everest_ir.Interp.tensor_of_array [ 1024 ] (Array.init 1024 float_of_int) in
    let _, p = Everest_ir.Interp.run_func ctx m f.Everest_ir.Ir.fname [ arr; arr ] in
    p
  in
  let p0 = profile_of f and p1 = profile_of { f' with Everest_ir.Ir.fname = "fused" } in
  table
    ~cols:[ "version"; "loops"; "loads"; "stores" ]
    [ [ "lowered"; string_of_int (Comp.Loop_fusion.count_loops f);
        string_of_int p0.Everest_ir.Interp.loads;
        string_of_int p0.Everest_ir.Interp.stores ];
      [ "fused"; string_of_int (Comp.Loop_fusion.count_loops f');
        string_of_int p1.Everest_ir.Interp.loads;
        string_of_int p1.Everest_ir.Interp.stores ] ];
  Printf.printf
    "\nExpected shape: fusion collapses the chain to one loop and removes the\n\
     intermediate-buffer traffic (co-optimizing computation and storage).\n"

(* ================================================================== E4 == *)
(* Security: crypto cost, DIFT overhead, monitor quality. *)

let e4 () =
  header "E4: security — crypto acceleration, DIFT overhead, monitors";
  (* crypto throughput: measured software vs modeled accelerator *)
  let key = Sec.Aes.key_of_string "0123456789abcdef" in
  let nonce = Bytes.make 8 'n' in
  let buf = Bytes.make 65536 'x' in
  let t0 = Sys.time () in
  let iters = 20 in
  for _ = 1 to iters do
    ignore (Sec.Aes.ctr_transform key ~nonce buf)
  done;
  let dt = (Sys.time () -. t0) /. float_of_int iters in
  let sw_mbs = float_of_int (Bytes.length buf) /. dt /. 1e6 in
  let hw_time =
    Sec.Cipher.encryption_time_s ~bytes:(Bytes.length buf) ~accelerated:true
      ~clock_hz:2.5e8
  in
  let hw_mbs = float_of_int (Bytes.length buf) /. hw_time /. 1e6 in
  table
    ~cols:[ "crypto path"; "MB/s"; "note" ]
    [ [ "AES-CTR software (measured)"; f1 sw_mbs; "this OCaml implementation" ];
      [ "AES-CTR HLS accelerator (model)"; f1 hw_mbs; "II=1 on 16B blocks @250MHz" ];
      [ "speedup"; f1 (hw_mbs /. sw_mbs); "" ] ];
  (* DIFT overhead on kernels of growing size *)
  Printf.printf "\nTaintHLS-style DIFT overhead (area; latency unchanged):\n\n";
  let rows =
    List.map
      (fun n ->
        let g = Hls.Cdfg.random ~seed:(n * 3) ~n ~load_frac:0.25 ~mul_frac:0.3 () in
        let base = Hls.Hls.synthesize ~name:"k" g in
        let sec =
          Hls.Hls.synthesize
            ~c:{ Hls.Hls.default_constraints with Hls.Hls.dift = true }
            ~name:"k" g
        in
        let bl = base.Hls.Hls.estimate.Hls.Estimate.area.Hls.Estimate.luts in
        let sl = sec.Hls.Hls.estimate.Hls.Estimate.area.Hls.Estimate.luts in
        [ string_of_int n; string_of_int bl; string_of_int sl;
          Printf.sprintf "%.1f%%" (100.0 *. float_of_int (sl - bl) /. float_of_int bl);
          string_of_int base.Hls.Hls.estimate.Hls.Estimate.cycles;
          string_of_int sec.Hls.Hls.estimate.Hls.Estimate.cycles ])
      [ 50; 100; 200; 400 ]
  in
  table
    ~cols:[ "DFG nodes"; "LUT base"; "LUT +DIFT"; "overhead"; "cyc base"; "cyc +DIFT" ]
    rows;
  (* monitors: detection and false positives *)
  Printf.printf "\nanomaly monitors (trained on 500 clean samples, then 200 clean + 50 attacks):\n\n";
  let rng = Everest_ml.Rng.create 99 in
  let mon_row name train check inject =
    train ();
    let fp = ref 0 in
    for _ = 1 to 200 do
      if check (Everest_ml.Rng.gaussian ~mu:10.0 ~sigma:1.0 rng) then incr fp
    done;
    let tp = ref 0 in
    for _ = 1 to 50 do
      if check (inject ()) then incr tp
    done;
    [ name;
      Printf.sprintf "%.0f%%" (float_of_int !tp *. 2.0);
      Printf.sprintf "%.1f%%" (float_of_int !fp /. 2.0) ]
  in
  let timing = Sec.Monitor.timing ~threshold_sigma:4.0 () in
  let range = Sec.Monitor.range () in
  let rows =
    [ mon_row "timing (z-score)"
        (fun () ->
          for _ = 1 to 500 do
            Sec.Monitor.timing_train timing
              (Everest_ml.Rng.gaussian ~mu:10.0 ~sigma:1.0 rng)
          done;
          Sec.Monitor.timing_finalize timing)
        (fun x -> Sec.Monitor.timing_check timing x <> Sec.Monitor.Normal)
        (fun () -> 10.0 +. Everest_ml.Rng.uniform rng 8.0 20.0);
      mon_row "range"
        (fun () ->
          for _ = 1 to 500 do
            Sec.Monitor.range_train range
              (Everest_ml.Rng.gaussian ~mu:10.0 ~sigma:1.0 rng)
          done;
          Sec.Monitor.range_finalize range)
        (fun x -> Sec.Monitor.range_check range x <> Sec.Monitor.Normal)
        (fun () -> 10.0 +. Everest_ml.Rng.uniform rng 10.0 30.0) ]
  in
  table ~cols:[ "monitor"; "detection"; "false-pos" ] rows

(* ================================================================== E5 == *)
(* Fig. 2: dynamic adaptation versus static variant selection. *)

let e5 () =
  header "E5 (Fig. 2): mARGOt adaptation under workload/resource shifts";
  let est cycles =
    { Hls.Estimate.area = Hls.Estimate.zero_area; cycles; ii = 1;
      clock_mhz = 250.0; dynamic_power_w = 8.0 }
  in
  let impls =
    [ ("sw-fast", Rt.Orchestrator.Sw { flops = 5e8; bytes = 1e5; threads = 4 });
      ("sw-safe", Rt.Orchestrator.Sw { flops = 1.5e9; bytes = 1e5; threads = 2 });
      ("hw", Rt.Orchestrator.Hw { bitstream = "k"; estimate = est 100_000;
                                  in_bytes = 4096; out_bytes = 4096 }) ]
  in
  let knowledge () =
    At.Knowledge.create "k"
      [ { At.Knowledge.variant = "sw-fast"; features = []; metrics = [ ("time_s", 0.005) ] };
        { At.Knowledge.variant = "sw-safe"; features = []; metrics = [ ("time_s", 0.02) ] };
        { At.Knowledge.variant = "hw"; features = []; metrics = [ ("time_s", 0.0006) ] } ]
  in
  (* phase schedule: FPGA contended in [25, 75); CPU contended in [100, 140) *)
  let slowdown req variant =
    if req >= 25 && req < 75 && String.equal variant "hw" then 80.0
    else if req >= 100 && req < 140 && String.length variant >= 2
            && String.sub variant 0 2 = "sw" then 6.0
    else 1.0
  in
  let n = 160 in
  let run policy =
    let cluster = Plat.Cluster.create [ Plat.Cluster.power9_node "p9" ] in
    let orch = Rt.Orchestrator.create cluster ~host_name:"p9" in
    let dk =
      Rt.Orchestrator.deploy orch ~kname:"k" ~impls ~knowledge:(knowledge ())
        ~goal:(At.Goal.make (At.Goal.Minimize "time_s"))
    in
    let log = Rt.Orchestrator.serve orch ~kernel:"k" ~n ~policy ~slowdown () in
    (Rt.Orchestrator.total_latency log, dk.Rt.Orchestrator.tuner.At.Tuner.switches,
     Rt.Orchestrator.variant_histogram log)
  in
  let rows =
    List.map
      (fun (name, policy) ->
        let total, switches, hist = run policy in
        [ name; time_str total;
          string_of_int switches;
          String.concat " "
            (List.map (fun (v, c) -> Printf.sprintf "%s:%d" v c) hist) ])
      [ ("adaptive (mARGOt)", Rt.Orchestrator.Adaptive);
        ("fixed hw", Rt.Orchestrator.Fixed "hw");
        ("fixed sw-fast", Rt.Orchestrator.Fixed "sw-fast");
        ("random", Rt.Orchestrator.Random 3) ]
  in
  table ~cols:[ "policy"; "total latency"; "switches"; "variant histogram" ] rows;
  Printf.printf
    "\nExpected shape: adaptive tracks the best variant through both contention\n\
     phases and beats every static policy (SIV: dynamic adaptation).\n";

  (* ablation: data-feature-aware vs feature-blind selection.  Requests
     alternate between small and large inputs; the best variant differs per
     size class (offload only amortizes on large inputs). *)
  Printf.printf "\nablation: data-feature-aware selection (requests alternate small/large):\n\n";
  let sizes req = if req mod 2 = 0 then 1e3 else 1e6 in
  let size_slowdown req variant =
    let small = sizes req < 1e4 in
    match (variant, small) with
    | "sw", true -> 0.1  (* small inputs: software is nearly free *)
    | "sw", false -> 10.0  (* large inputs: software 10x slower *)
    | _, true -> 1.0  (* offload overhead dominates small inputs *)
    | _, false -> 1.0
  in
  let feature_knowledge () =
    At.Knowledge.create "k"
      [ { At.Knowledge.variant = "sw"; features = [ ("size", 1e3) ];
          metrics = [ ("time_s", 0.0005) ] };
        { At.Knowledge.variant = "hw"; features = [ ("size", 1e3) ];
          metrics = [ ("time_s", 0.0007) ] };
        { At.Knowledge.variant = "sw"; features = [ ("size", 1e6) ];
          metrics = [ ("time_s", 0.05) ] };
        { At.Knowledge.variant = "hw"; features = [ ("size", 1e6) ];
          metrics = [ ("time_s", 0.0007) ] } ]
  in
  let ab_impls =
    [ ("sw", Rt.Orchestrator.Sw { flops = 5e8; bytes = 1e5; threads = 4 });
      ("hw", Rt.Orchestrator.Hw { bitstream = "k"; estimate = est 100_000;
                                  in_bytes = 65536; out_bytes = 4096 }) ]
  in
  let run_features label features =
    let cluster = Plat.Cluster.create [ Plat.Cluster.power9_node "p9" ] in
    let orch = Rt.Orchestrator.create cluster ~host_name:"p9" in
    let _ =
      Rt.Orchestrator.deploy orch ~kname:"k" ~impls:ab_impls
        ~knowledge:(feature_knowledge ())
        ~goal:(At.Goal.make (At.Goal.Minimize "time_s"))
    in
    let log =
      Rt.Orchestrator.serve orch ~kernel:"k" ~n:80 ~policy:Rt.Orchestrator.Adaptive
        ~slowdown:size_slowdown ~features ()
    in
    [ label; time_str (Rt.Orchestrator.total_latency log);
      String.concat " "
        (List.map (fun (v, c) -> Printf.sprintf "%s:%d" v c)
           (Rt.Orchestrator.variant_histogram log)) ]
  in
  table
    ~cols:[ "selection"; "total latency"; "variant histogram" ]
    [ run_features "feature-aware" (fun req -> [ ("size", sizes req) ]);
      run_features "feature-blind" (fun _ -> []) ];
  Printf.printf
    "\nExpected shape: knowing the input size lets the tuner switch per\n\
     request (sw for small, hw for large); the blind tuner settles on one\n\
     variant and pays for it on the other size class.\n"

(* ================================================================== E6 == *)
(* Fig. 3/4: scale-up (bus FPGA) vs scale-out (network FPGAs) vs CPU. *)

let e6 () =
  header "E6 (Fig. 3/4): attachment and scale-out on the EVEREST demonstrator";
  (* coherent vs network attachment across message sizes *)
  Printf.printf "attachment latency for one kernel call (in+out transfer only):\n\n";
  let rows =
    List.map
      (fun kb ->
        let bytes = kb * 1024 in
        let oc = 2.0 *. Plat.Spec.transfer_time Plat.Spec.opencapi ~bytes in
        let tcp = 2.0 *. Plat.Spec.transfer_time Plat.Spec.eth100_tcp ~bytes in
        [ string_of_int kb; time_str oc; time_str tcp; f1 (tcp /. oc) ])
      [ 1; 16; 256; 4096; 65536 ]
  in
  table ~cols:[ "payload KB"; "OpenCAPI"; "100GbE TCP"; "ratio" ] rows;
  (* scale-out: ensemble of independent FPGA kernels *)
  Printf.printf "\nensemble of 32 accelerated tasks: makespan vs platform:\n\n";
  let est =
    { Hls.Estimate.area = Hls.Estimate.zero_area; cycles = 2_500_000; ii = 1;
      clock_mhz = 250.0; dynamic_power_w = 12.0 }
  in
  let mk_dag () =
    Wf.Dag.create "ensemble"
      (Wf.Dag.task ~id:0 ~name:"scatter" ~inputs:[] ~out_bytes:(32 * 1_000_000)
         ~impls:[ Wf.Dag.Cpu { flops = 1e7; bytes = 3.2e7; threads = 1 } ]
         ()
      :: List.init 32 (fun i ->
             Wf.Dag.task ~id:(i + 1)
               ~name:(Printf.sprintf "member%d" i)
               ~inputs:[ 0 ] ~out_bytes:100_000
               ~impls:
                 [ Wf.Dag.Cpu { flops = 5e9; bytes = 1e6; threads = 1 };
                   Wf.Dag.Fpga { bitstream = "member"; estimate = est;
                                 in_bytes = 1_000_000; out_bytes = 100_000 } ]
               ()))
  in
  let rows =
    List.map
      (fun (name, cloud_fpgas, strip_fpga) ->
        let dag = mk_dag () in
        let dag =
          if strip_fpga then
            { dag with
              Wf.Dag.tasks =
                Array.map
                  (fun (t : Wf.Dag.task) ->
                    { t with
                      Wf.Dag.impls =
                        List.filter
                          (function Wf.Dag.Cpu _ -> true | _ -> false)
                          t.Wf.Dag.impls })
                  dag.Wf.Dag.tasks }
          else dag
        in
        let _, stats =
          Wf.Executor.run_on_demonstrator ~cloud_fpgas ~edges:0 ~endpoints:0
            ~policy:"heft-locality" dag
        in
        [ name; time_str stats.Wf.Executor.makespan;
          Printf.sprintf "%.1f" stats.Wf.Executor.energy_j ])
      [ ("CPU only (POWER9)", 0, true);
        ("P9 + 2 bus FPGAs", 0, false);
        ("P9 + 2 bus + 2 cloudFPGA", 2, false);
        ("P9 + 2 bus + 4 cloudFPGA", 4, false);
        ("P9 + 2 bus + 8 cloudFPGA", 8, false) ]
  in
  table ~cols:[ "platform"; "makespan"; "energy J" ] rows;
  Printf.printf
    "\nExpected shape: bus FPGAs accelerate; adding disaggregated network\n\
     FPGAs scales out further (cloudFPGA claim, SV).\n"

(* ================================================================== E7 == *)
(* Use case A: ensemble resolution vs forecast quality vs compute. *)

let e7 () =
  header "E7 (SVI-A): wind-power forecast quality vs ensemble resolution";
  let p = { Everest_energy.Weather.default_params with
            Everest_energy.Weather.days = 30; seed = 12 } in
  let rows =
    List.map
      (fun (r, mae, imb, flops) ->
        (* 10-member ensemble: stencil codes reach ~8% of CPU peak; the two
           bus FPGAs stream the stencil at ~64 Gflops each *)
        let member = flops in
        let cpu_t =
          10.0 *. member /. (Plat.Spec.cpu_peak_flops Plat.Spec.power9 *. 0.08)
        in
        let fpga_t = 10.0 *. member /. (2.0 *. 64e9) in
        [ f1 r; f1 mae; f1 imb; si flops;
          time_str cpu_t; time_str fpga_t ])
      (Everest_energy.Forecast.resolution_sweep
         ~resolutions:[ 25.0; 12.5; 5.0; 2.5 ] p)
  in
  table
    ~cols:
      [ "res km"; "MAE kW"; "imbalance EUR"; "flop/member"; "t(CPU)"; "t(2 FPGA)" ]
    rows;
  (* the ensemble dimension: more members stabilize the forecast *)
  Printf.printf "\nensemble size at 5 km (members vs skill):\n\n";
  let rows =
    List.map
      (fun members ->
        let cfg = { Everest_energy.Forecast.default_config with
                    Everest_energy.Forecast.resolution_km = 5.0;
                    n_members = members } in
        let e, _, _ = Everest_energy.Forecast.evaluate ~cfg p in
        [ string_of_int members; f1 e.Everest_energy.Forecast.mae_kw;
          f1 e.Everest_energy.Forecast.imbalance_eur ])
      [ 2; 5; 10; 20 ]
  in
  table ~cols:[ "members"; "MAE kW"; "imbalance EUR" ] rows;
  let cfg = { Everest_energy.Forecast.default_config with
              Everest_energy.Forecast.resolution_km = 5.0 } in
  let model, pers, climo = Everest_energy.Forecast.evaluate ~cfg p in
  Printf.printf "\nday-ahead skill at 5 km vs baselines:\n\n";
  table
    ~cols:[ "forecaster"; "MAE kW"; "RMSE kW"; "imbalance EUR"; "ramp recall" ]
    (List.map
       (fun (n, (e : Everest_energy.Forecast.eval)) ->
         [ n; f1 e.Everest_energy.Forecast.mae_kw;
           f1 e.Everest_energy.Forecast.rmse_kw;
           f1 e.Everest_energy.Forecast.imbalance_eur;
           f2 e.Everest_energy.Forecast.ramp_recall ])
       [ ("mlp-model", model); ("persistence", pers); ("climatology", climo) ]);
  Printf.printf
    "\nExpected shape: finer ensembles cut MAE and imbalance cost with steeply\n\
     growing compute — the acceleration motivation of SVI-A.\n"

(* ================================================================== E8 == *)
(* Use case B: abatement decision quality vs grid resolution and time. *)

let e8 () =
  header "E8 (SVI-B): air-quality decisions vs plume grid resolution";
  let rows =
    List.map
      (fun (cells, res) ->
        let e = Everest_airq.Airq_forecast.evaluate ~hours:72 ~cells ~resolution_km:res () in
        (* hourly budget = 20 ensemble members x 24 lead hours; exp-heavy
           plume math reaches ~10% of the ARM peak, while the edge FPGA
           pipeline streams it at ~38 Gflops *)
        let fl = e.Everest_airq.Airq_forecast.flops_per_hour *. 20.0 *. 24.0 in
        let cpu_t = fl /. (Plat.Spec.cpu_peak_flops Plat.Spec.arm_edge *. 0.10) in
        let fpga_t = fl /. 38.4e9 in
        [ Printf.sprintf "%dx%d" cells cells; f1 res;
          f2 e.Everest_airq.Airq_forecast.precision;
          f2 e.Everest_airq.Airq_forecast.recall;
          f2 e.Everest_airq.Airq_forecast.f1;
          time_str cpu_t; time_str fpga_t ])
      [ (16, 25.0); (32, 12.5); (48, 5.0); (64, 2.5) ]
  in
  table
    ~cols:[ "grid"; "wx res km"; "precision"; "recall"; "F1"; "t/h edge CPU"; "t/h edge FPGA" ]
    rows;
  Printf.printf
    "\nExpected shape: decision quality rises with resolution; edge FPGA keeps\n\
     the fine grid within the hourly real-time budget (SVI-B).\n"

(* ================================================================== E9 == *)
(* Use case C: PTDR convergence and traffic pipeline throughput. *)

let e9 () =
  header "E9 (SVI-C): probabilistic time-dependent routing";
  let city = Everest_traffic.Roadnet.grid_city ~rows:8 ~cols:8 () in
  let od =
    Everest_traffic.Od.gravity ~n_zones:64 ~total_trips_per_hour:60_000.0
      ~cols:8 ()
  in
  let st = Everest_traffic.Simulator.run city od ~periods:24 in
  let pings = Everest_traffic.Fcd.generate st ~n_vehicles:1500 in
  let prof = Everest_traffic.Profiles.learn city ~periods:24 pings in
  Printf.printf "pipeline: %d FCD pings -> %.0f%% profile coverage, RMSE %.2f m/s\n\n"
    (Everest_traffic.Fcd.count pings)
    (100.0 *. Everest_traffic.Profiles.coverage prof)
    (Everest_traffic.Profiles.prediction_rmse prof st);
  let route =
    Option.get (Everest_traffic.Routing.free_flow city ~src:0 ~dst:63)
  in
  let depart = 8.0 *. 3600.0 in
  let rows =
    List.map
      (fun (n, mean, ci) ->
        (* measured throughput of the MC kernel *)
        let t0 = Sys.time () in
        ignore
          (Everest_traffic.Ptdr.monte_carlo city prof route ~depart ~n_samples:n);
        let dt = Sys.time () -. t0 in
        let sps = float_of_int n /. Float.max 1e-9 dt in
        [ string_of_int n; f2 (mean /. 60.0); Printf.sprintf "%.3f" (ci /. 60.0);
          si sps ])
      (Everest_traffic.Ptdr.convergence city prof route ~depart
         ~sample_counts:[ 10; 100; 1000; 10000 ])
  in
  table ~cols:[ "samples"; "mean min"; "95% CI min"; "samples/s (measured)" ] rows;
  Printf.printf
    "\nExpected shape: CI shrinks as 1/sqrt(n); thousands of samples per query\n\
     motivate the server-side acceleration of PTDR (refs [37][41]).\n";

  (* the traffic prediction model: next-period speed forecasting *)
  Printf.printf "\nnext-period speed prediction (train day 1, test day 2):\n\n";
  let st2 = Everest_traffic.Simulator.run city od ~periods:48 in
  let m = Everest_traffic.Predictor.train ~epochs:40 st2 ~train_periods:24 in
  let e = Everest_traffic.Predictor.evaluate m st2 ~from_period:24 ~to_period:47 in
  table
    ~cols:[ "predictor"; "RMSE m/s" ]
    [ [ "mlp-model"; f2 e.Everest_traffic.Predictor.model_rmse ];
      [ "persistence"; f2 e.Everest_traffic.Predictor.persistence_rmse ];
      [ "free-flow"; f2 e.Everest_traffic.Predictor.freeflow_rmse ] ];
  Printf.printf
    "\nExpected shape: the learned model beats the free-flow assumption and\n\
     at least matches persistence across the congestion transitions.\n"

(* ================================================================= E10 == *)
(* HyperLoom claim: locality-aware scheduling of use-case-shaped DAGs. *)

let e10 () =
  header "E10 (SIII-A): workflow scheduling policies on use-case DAGs";
  let dags =
    [ ("fork-join ensemble",
       Wf.Dag.fork_join ~width:16 ~worker_flops:2e9 ~worker_bytes:1e6
         ~chunk_bytes:2_000_000 ());
      ("layered heavy-data",
       Wf.Dag.layered ~seed:5 ~layers:6 ~width:5 ~flops:5e8 ~bytes:2e8 ());
      ("layered compute-heavy",
       Wf.Dag.layered ~seed:6 ~layers:6 ~width:5 ~flops:2e10 ~bytes:1e5 ()) ]
  in
  let policies = [ "round-robin"; "min-load"; "heft"; "heft-locality" ] in
  let rows =
    List.concat_map
      (fun (name, dag) ->
        List.map
          (fun policy ->
            let _, stats = Wf.Executor.run_on_demonstrator ~policy dag in
            [ name; policy; time_str stats.Wf.Executor.makespan;
              si (float_of_int stats.Wf.Executor.bytes_moved);
              f1 stats.Wf.Executor.energy_j ])
          policies)
      dags
  in
  table ~cols:[ "workflow"; "policy"; "makespan"; "bytes moved"; "energy J" ] rows;
  Printf.printf
    "\nExpected shape: locality-aware HEFT minimizes data movement and makespan\n\
     on data-heavy workflows (the HyperLoom claim).\n";

  (* distributed allocation: replication decisions per shared data object *)
  Printf.printf "\ndistributed data allocation on the heavy-data workflow:\n\n";
  let dag = Wf.Dag.layered ~seed:5 ~layers:6 ~width:5 ~flops:5e8 ~bytes:2e8 () in
  let rows =
    List.map
      (fun policy ->
        let c = Plat.Cluster.everest_demonstrator () in
        let plan = (Option.get (Wf.Scheduler.by_name policy)) c dag in
        let allocs = Wf.Placement.optimize c plan in
        let count d =
          List.length
            (List.filter
               (fun (a : Wf.Placement.allocation) -> a.Wf.Placement.decision = d)
               allocs)
        in
        let hubs =
          List.length
            (List.filter
               (fun (a : Wf.Placement.allocation) ->
                 match a.Wf.Placement.decision with
                 | Wf.Placement.Hub _ -> true
                 | _ -> false)
               allocs)
        in
        [ policy; string_of_int (List.length allocs);
          string_of_int (count Wf.Placement.Keep_at_producer);
          string_of_int hubs;
          string_of_int (count Wf.Placement.Replicate_to_consumers);
          Printf.sprintf "%.0f%%" (100.0 *. Wf.Placement.saving allocs) ])
      [ "round-robin"; "heft-locality" ]
  in
  table ~cols:[ "plan"; "objects"; "keep"; "hub"; "replicate"; "saving" ] rows;
  Printf.printf
    "\nExpected shape: the two mechanisms are complementary — either move the\n\
     computation to the data (heft-locality leaves nothing to replicate) or\n\
     move the data smartly (replication recovers much of a naive plan's\n\
     transfer cost) — SII/SIV: distributed allocation.\n"

(* ================================================================= E11 == *)
(* everest_telemetry claim: always-on instrumentation is cheap enough to
   leave enabled.  Same executor run with and without a sim-clock tracer
   plus a private metrics registry; the delta is the telemetry cost. *)

let e11 () =
  header "E11 (telemetry): span/metric overhead on the workflow executor";
  let module Tel = Everest_telemetry in
  let dag = Wf.Dag.layered ~seed:5 ~layers:6 ~width:5 ~flops:5e8 ~bytes:1e6 () in
  let plain () =
    ignore (Wf.Executor.run_on_demonstrator ~policy:"heft-locality" dag)
  in
  (* one long-lived registry per configuration, as a deployment would have *)
  let registry = Tel.Metrics.create_registry () in
  let traced () =
    ignore
      (Wf.Executor.run_on_demonstrator ~policy:"heft-locality" ~tracer:`Sim
         ~registry dag)
  in
  (* Interleaved batches, minimum batch time per configuration: the minimum
     is the run least disturbed by the OS, so the difference isolates the
     telemetry cost from scheduler noise. *)
  let reps = 50 and batches = 20 in
  let batch f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do f () done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  for _ = 1 to 20 do plain (); traced () done;
  let best_plain = ref infinity and best_traced = ref infinity in
  for _ = 1 to batches do
    best_plain := Float.min !best_plain (batch plain);
    best_traced := Float.min !best_traced (batch traced)
  done;
  let t_plain = !best_plain and t_traced = !best_traced in
  let overhead = 100.0 *. (t_traced -. t_plain) /. t_plain in
  let spans =
    let _, stats =
      Wf.Executor.run_on_demonstrator ~policy:"heft-locality" ~tracer:`Sim
        ~registry dag
    in
    List.length stats.Wf.Executor.span_log
  in
  table
    ~cols:[ "configuration"; "per-run"; "spans"; "overhead" ]
    [ [ "executor, telemetry off"; time_str t_plain; "0"; "-" ];
      [ "executor, spans+metrics"; time_str t_traced; string_of_int spans;
        Printf.sprintf "%+.1f%%" overhead ] ];
  Printf.printf
    "\nExpected shape: the noop-tracer fast path keeps the uninstrumented run\n\
     at baseline, and full span+metric recording stays under ~5%% overhead,\n\
     cheap enough to leave on in production runs.\n"

(* ================================================================= E12 == *)
(* everest_parallel claim: the DSE middle-end scales across domains and the
   shared estimation cache makes repeated explorations nearly free.  Cold
   wall-time per pool size (fresh pool + cache per run, best of 2), warm
   re-run speedup on a shared cache, and cross-strategy reuse; results also
   land in BENCH_e12.json for machines. *)

let e12 () =
  header "E12 (parallel DSE): domain-pool scaling and estimation-cache reuse";
  let module Par = Everest_parallel in
  let expr = matmul_expr 256 in
  let cores = Domain.recommended_domain_count () in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let pareto_equal (a : Comp.Dse.result) (b : Comp.Dse.result) =
    List.length a.Comp.Dse.variants = List.length b.Comp.Dse.variants
    && List.for_all2
         (fun (x : Comp.Variants.variant) (y : Comp.Variants.variant) ->
           String.equal x.Comp.Variants.vname y.Comp.Variants.vname
           && x.Comp.Variants.time_s = y.Comp.Variants.time_s
           && x.Comp.Variants.energy_j = y.Comp.Variants.energy_j
           && x.Comp.Variants.area_luts = y.Comp.Variants.area_luts)
         a.Comp.Dse.variants b.Comp.Dse.variants
  in
  (* cold scaling: fresh pool and cache per run so nothing leaks between
     configurations; best of 2 runs absorbs warmup noise *)
  let cold domains =
    let best = ref infinity and result = ref None in
    for _ = 1 to 2 do
      let cache = Comp.Estimate_cache.create () in
      Par.Pool.with_pool ~domains (fun pool ->
          let r, dt = wall (fun () -> Comp.Dse.exhaustive ~pool ~cache expr) in
          if dt < !best then begin best := dt; result := Some r end)
    done;
    (Option.get !result, !best)
  in
  let base_r, base_t = cold 1 in
  let scaling =
    List.map
      (fun domains ->
        let r, t = cold domains in
        (domains, t, base_t /. t, pareto_equal r base_r))
      [ 1; 2; 4; 8 ]
  in
  Printf.printf "host cores: %d (flat scaling expected on a 1-core host)\n\n"
    cores;
  table
    ~cols:[ "domains"; "cold DSE"; "speedup"; "pareto = 1-domain" ]
    (List.map
       (fun (d, t, s, same) ->
         [ string_of_int d; time_str t; Printf.sprintf "%.2fx" s;
           (if same then "yes" else "NO") ])
       scaling);
  (* cache warmth: same expression re-explored against a shared cache *)
  let cache = Comp.Estimate_cache.create () in
  let pool = Par.Pool.create ~domains:1 () in
  let cold_r, cold_t = wall (fun () -> Comp.Dse.exhaustive ~pool ~cache expr) in
  let warm_r, warm_t = wall (fun () -> Comp.Dse.exhaustive ~pool ~cache expr) in
  if not (pareto_equal cold_r warm_r) then
    failwith "E12: warm Pareto set differs from cold";
  let warm_speedup = cold_t /. warm_t in
  (* cross-strategy reuse: sampled and greedy on the already-warm cache *)
  let strategy_reuse =
    List.map
      (fun (name, run) ->
        let before = Par.Cache.stats cache in
        let (_ : Comp.Dse.result), t = wall run in
        let after = Par.Cache.stats cache in
        let hits = after.Par.Cache.hits - before.Par.Cache.hits in
        let misses = after.Par.Cache.misses - before.Par.Cache.misses in
        let rate =
          if hits + misses = 0 then 0.0
          else float_of_int hits /. float_of_int (hits + misses)
        in
        (name, t, hits, misses, rate))
      [ ("sampled-12", fun () -> Comp.Dse.sampled ~pool ~cache ~budget:12 expr);
        ("greedy", fun () -> Comp.Dse.greedy ~pool ~cache expr) ]
  in
  Par.Pool.shutdown pool;
  Printf.printf "\nestimation-cache reuse (matmul 256x256, shared cache):\n\n";
  table
    ~cols:[ "exploration"; "wall"; "hits"; "misses"; "hit rate" ]
    ([ [ "exhaustive cold"; time_str cold_t; "0";
         string_of_int (Par.Cache.stats cache).Par.Cache.entries; "0%" ];
       [ "exhaustive warm"; time_str warm_t; "-"; "-";
         Printf.sprintf "%.1fx faster" warm_speedup ] ]
    @ List.map
        (fun (name, t, hits, misses, rate) ->
          [ name ^ " (warm)"; time_str t; string_of_int hits;
            string_of_int misses; Printf.sprintf "%.0f%%" (100.0 *. rate) ])
        strategy_reuse);
  (* machine-readable record for CI and EXPERIMENTS.md *)
  let json =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf (Printf.sprintf "  \"host_cores\": %d,\n" cores);
    Buffer.add_string buf "  \"workload\": \"matmul-256x256-exhaustive\",\n";
    Buffer.add_string buf "  \"cold_scaling\": [\n";
    List.iteri
      (fun i (d, t, s, same) ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"domains\": %d, \"wall_s\": %.6f, \"speedup\": %.3f, \
              \"pareto_identical\": %b}%s\n"
             d t s same
             (if i = List.length scaling - 1 then "" else ",")))
      scaling;
    Buffer.add_string buf "  ],\n";
    Buffer.add_string buf
      (Printf.sprintf
         "  \"cache\": {\"cold_s\": %.6f, \"warm_s\": %.6f, \
          \"warm_speedup\": %.2f},\n"
         cold_t warm_t warm_speedup);
    Buffer.add_string buf "  \"strategy_reuse\": [\n";
    List.iteri
      (fun i (name, t, hits, misses, rate) ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"strategy\": %S, \"wall_s\": %.6f, \"hits\": %d, \
              \"misses\": %d, \"hit_rate\": %.3f}%s\n"
             name t hits misses rate
             (if i = List.length strategy_reuse - 1 then "" else ",")))
      strategy_reuse;
    Buffer.add_string buf "  ]\n}\n";
    Buffer.contents buf
  in
  let oc = open_out "BENCH_e12.json" in
  output_string oc json;
  close_out oc;
  Printf.printf
    "\nwrote BENCH_e12.json\n\
     Expected shape: near-linear cold speedup up to the core count (flat on\n\
     a 1-core host), identical Pareto sets at every pool size, and a warm\n\
     cache collapsing re-exploration to hash lookups (>=5x).\n"

(* ================================================================= E13 == *)
(* everest_analysis claim: the monotone-framework analyses sweep the IR at
   high op throughput, and the pipeline's pre-flight lint gate stays well
   inside a 5% compile-time budget.  Results also land in BENCH_e13.json. *)

let e13 () =
  header "E13 (static analysis): analysis throughput and lint pre-flight overhead";
  let module An = Everest_analysis in
  let module EIr = Everest_ir in
  let ctx = EIr.Ir.ctx () in
  let r = EIr.Ir.result in
  (* a large synthetic kernel mixing straight-line arithmetic, buffer
     traffic and loops — the op mix the analyses see in lowered modules *)
  let synth blocks =
    let ops = ref [] in
    let emit o = ops := o :: !ops; r o in
    let acc0 = emit (EIr.Dialect_arith.const_f ctx 0.0) in
    let acc = ref acc0 in
    for i = 1 to blocks do
      let c1 = emit (EIr.Dialect_arith.const_f ctx (float_of_int i)) in
      let s = emit (EIr.Dialect_arith.addf ctx !acc c1) in
      let p = emit (EIr.Dialect_arith.mulf ctx s s) in
      let buf = emit (EIr.Dialect_memref.alloc ctx EIr.Types.F64 [ 8 ]) in
      let idx = emit (EIr.Dialect_arith.const_index ctx (i mod 8)) in
      ops := EIr.Dialect_memref.store ctx p buf [ idx ] :: !ops;
      let ld = emit (EIr.Dialect_memref.load ctx buf [ idx ]) in
      ops := EIr.Dialect_memref.dealloc ctx buf :: !ops;
      let lo = emit (EIr.Dialect_arith.const_index ctx 0) in
      let hi = emit (EIr.Dialect_arith.const_index ctx 4) in
      let st = emit (EIr.Dialect_arith.const_index ctx 1) in
      let loop =
        EIr.Dialect_scf.for_ ~iter_args:[ ld ] ctx lo hi st
          (fun ctx _iv iters ->
            let a = List.hd iters in
            let d = EIr.Dialect_arith.addf ctx a a in
            ([ d ], [ EIr.Ir.result d ]))
      in
      ops := loop :: !ops;
      acc := r loop
    done;
    ops := EIr.Dialect_func.return ctx [ !acc ] :: !ops;
    EIr.Ir.func "synth" [] [ EIr.Types.f64 ] (List.rev !ops)
  in
  let f = synth 400 in
  let m = EIr.Ir.modul "synth" [ f ] in
  let nops = EIr.Ir.module_op_count m in
  let wall g =
    let t0 = Unix.gettimeofday () in
    g ();
    Unix.gettimeofday () -. t0
  in
  (* run each analysis repeatedly until >=50ms of wall time accumulates *)
  let throughput run =
    run ();  (* warmup *)
    let iters = ref 0 and spent = ref 0.0 in
    while !spent < 0.05 do
      spent := !spent +. wall run;
      incr iters
    done;
    let per_run = !spent /. float_of_int !iters in
    (per_run, float_of_int nops /. per_run)
  in
  let analyses =
    [ ("liveness", fun () -> ignore (An.Liveness.live_in f));
      ("dead-ops", fun () -> ignore (An.Liveness.dead_ops f));
      ("reaching", fun () -> ignore (An.Reaching.undominated_uses f));
      ("constprop", fun () -> ignore (An.Constprop.analyze f));
      ("memlife", fun () -> ignore (An.Memlife.analyze f));
      ("lint (all rules)", fun () -> ignore (An.Lint.run m)) ]
  in
  let rows = List.map (fun (name, run) -> (name, throughput run)) analyses in
  Printf.printf "synthetic module: %d ops\n\n" nops;
  table
    ~cols:[ "analysis"; "per run"; "ops/sec" ]
    (List.map
       (fun (name, (per_run, ops_s)) ->
         [ name; time_str per_run; Printf.sprintf "%.2fM" (ops_s /. 1e6) ])
       rows);
  (* pre-flight overhead with two denominators: a cold-cache compile
     (every kernel variant estimated — the realistic first-compile cost
     the 5% budget is stated against) and a warm-cache recompile (DSE
     collapses to hash lookups, the hardest possible denominator — its
     delta is the absolute pre-flight cost itself) *)
  let g = Dsl.Dataflow.create "e13app" in
  let src = Dsl.Dataflow.source g "in" ~bytes:65536 in
  let t1 =
    Dsl.Dataflow.task g "k1" (Dsl.Dataflow.Tensor_kernel (matmul_expr 64))
      ~deps:[ src ]
  in
  let t2 =
    Dsl.Dataflow.task g "k2"
      (Dsl.Dataflow.Tensor_kernel (TE.relu (TE.input "x" [ 64; 64 ])))
      ~deps:[ t1 ]
  in
  Dsl.Dataflow.sink g "out" t2;
  let best run =
    let b = ref infinity in
    for _ = 1 to 5 do
      b := Float.min !b (wall run)
    done;
    !b
  in
  let cold lint () =
    ignore
      (Comp.Pipeline.compile ~cache:(Comp.Estimate_cache.create ()) ~lint g)
  in
  let cache = Comp.Estimate_cache.create () in
  ignore (Comp.Pipeline.compile ~cache g);
  let warm lint () = ignore (Comp.Pipeline.compile ~cache ~lint g) in
  let t_cold_off = best (cold false) in
  let t_cold_on = best (cold true) in
  let t_warm_off = best (warm false) in
  let t_warm_on = best (warm true) in
  let pct off on = 100.0 *. (on -. off) /. off in
  let overhead = pct t_cold_off t_cold_on in
  Printf.printf "\n";
  table
    ~cols:[ "configuration"; "cold compile"; "warm recompile" ]
    [ [ "lint off"; time_str t_cold_off; time_str t_warm_off ];
      [ "lint on (pre-flight)"; time_str t_cold_on; time_str t_warm_on ];
      [ "overhead";
        Printf.sprintf "%+.2f%%" overhead;
        Printf.sprintf "%+.1f%% (%s abs)"
          (pct t_warm_off t_warm_on)
          (time_str (t_warm_on -. t_warm_off)) ] ];
  let json =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf
      (Printf.sprintf "  \"synthetic_ops\": %d,\n" nops);
    Buffer.add_string buf "  \"analysis_throughput\": [\n";
    List.iteri
      (fun i (name, (per_run, ops_s)) ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"analysis\": %S, \"per_run_s\": %.6f, \"ops_per_sec\": \
              %.0f}%s\n"
             name per_run ops_s
             (if i = List.length rows - 1 then "" else ",")))
      rows;
    Buffer.add_string buf "  ],\n";
    Buffer.add_string buf
      (Printf.sprintf
         "  \"compile_overhead\": {\"cold_lint_off_s\": %.6f, \
          \"cold_lint_on_s\": %.6f, \"overhead_pct\": %.2f, \
          \"warm_lint_off_s\": %.6f, \"warm_lint_on_s\": %.6f, \
          \"budget_pct\": 5.0}\n"
         t_cold_off t_cold_on overhead t_warm_off t_warm_on);
    Buffer.add_string buf "}\n";
    Buffer.contents buf
  in
  let oc = open_out "BENCH_e13.json" in
  output_string oc json;
  close_out oc;
  Printf.printf
    "\nwrote BENCH_e13.json\n\
     Expected shape: every analysis sweeps the module in the millions of\n\
     ops per second, and the pre-flight lint gate stays under the 5%%\n\
     budget on a cold-cache compile (on a fully warm-cache recompile the\n\
     gate's fixed tens-of-microsecond cost is the whole delta).\n"

(* ================================================================= E14 == *)
(* everest_resilience claim: under seeded chaos, the recovery policy keeps
   the demonstrator workflow completing across fault rates, at a bounded
   makespan/energy overhead, and every run is bit-reproducible in its seed.
   Results also land in BENCH_e14.json. *)

let e14 () =
  header "E14 (resilience): makespan, availability and energy vs node fault rate";
  let module Res = Everest_resilience in
  let dag = Wf.Dag.layered ~seed:11 ~layers:5 ~width:4 ~flops:2e9 ~bytes:1e6 () in
  let n_tasks = Wf.Dag.size dag in
  let nodes =
    List.map
      (fun (n : Plat.Node.t) -> n.Plat.Node.name)
      (Plat.Cluster.everest_demonstrator ()).Plat.Cluster.nodes
  in
  let _, clean = Wf.Executor.run_on_demonstrator ~policy:"heft-locality" dag in
  let clean_ms = clean.Wf.Executor.makespan in
  let clean_j = clean.Wf.Executor.energy_j in
  let seeds = List.init 10 (fun i -> 100 + i) in
  let slos = [ 1.5; 2.0; 4.0 ] in
  let run_rate rate =
    let runs =
      List.map
        (fun seed ->
          (* the fault rate is the single chaos dial: transient
             probabilities scale with it so rate 0 is a true control *)
          let faults =
            Res.Faults.random_plan ~seed ~fault_rate:rate
              ~mean_downtime:(0.25 *. clean_ms)
              ~transient_prob:(0.25 *. rate)
              ~fpga_transient_prob:(0.1 *. rate) ~nodes ~horizon:clean_ms ()
          in
          match
            Wf.Executor.run_on_demonstrator ~policy:"heft-locality" ~faults
              ~exec_policy:Res.Policy.chaos dag
          with
          | _, s -> Ok s
          | exception Wf.Executor.Execution_failed { partial; _ } ->
              Error partial)
        seeds
    in
    let n_runs = float_of_int (List.length runs) in
    let done_tasks s =
      Array.fold_left
        (fun acc f -> if f >= 0.0 then acc + 1 else acc)
        0 s.Wf.Executor.task_finish
    in
    let completed =
      List.length (List.filter (function Ok _ -> true | Error _ -> false) runs)
    in
    let stats_of = function Ok s -> s | Error p -> p in
    let mean f =
      List.fold_left (fun acc r -> acc +. f (stats_of r)) 0.0 runs /. n_runs
    in
    let availability =
      mean (fun s -> float_of_int (done_tasks s) /. float_of_int n_tasks)
    in
    let mean_ms = mean (fun s -> s.Wf.Executor.makespan) in
    let mean_j = mean (fun s -> s.Wf.Executor.energy_j) in
    let sum f =
      List.fold_left (fun acc r -> acc + f (stats_of r)) 0 runs
    in
    let slo_hit factor =
      float_of_int
        (List.length
           (List.filter
              (function
                | Ok s -> s.Wf.Executor.makespan <= factor *. clean_ms
                | Error _ -> false)
              runs))
      /. n_runs
    in
    ( rate, completed, availability, mean_ms, mean_j,
      sum (fun s -> s.Wf.Executor.retries),
      sum (fun s -> s.Wf.Executor.timeouts),
      sum (fun s -> s.Wf.Executor.speculative),
      sum (fun s -> s.Wf.Executor.recomputed),
      List.map slo_hit slos )
  in
  let rates = [ 0.0; 0.1; 0.2; 0.3 ] in
  let rows = List.map run_rate rates in
  Printf.printf
    "workflow: layered 5x4 (%d tasks), clean makespan %s, %d seeds per rate\n\n"
    n_tasks (time_str clean_ms) (List.length seeds);
  table
    ~cols:
      [ "fault rate"; "runs done"; "avail"; "makespan"; "overhead"; "energy";
        "retries"; "timeouts"; "spec"; "recomp" ]
    (List.map
       (fun (rate, completed, avail, ms, j, re, ti, sp, rc, _) ->
         [ f2 rate;
           Printf.sprintf "%d/%d" completed (List.length seeds);
           Printf.sprintf "%.1f%%" (100.0 *. avail);
           time_str ms;
           Printf.sprintf "%+.0f%%" (100.0 *. (ms /. clean_ms -. 1.0));
           Printf.sprintf "%.1fJ" j;
           string_of_int re; string_of_int ti; string_of_int sp;
           string_of_int rc ])
       rows);
  Printf.printf "\nSLO attainment (fraction of runs within k x clean makespan):\n\n";
  table
    ~cols:("fault rate" :: List.map (fun k -> Printf.sprintf "<= %.1fx" k) slos)
    (List.map
       (fun (rate, _, _, _, _, _, _, _, _, hits) ->
         f2 rate :: List.map (fun h -> Printf.sprintf "%.0f%%" (100.0 *. h)) hits)
       rows);
  let json =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf
      (Printf.sprintf
         "  \"workflow\": {\"tasks\": %d, \"clean_makespan_s\": %.9g, \
          \"clean_energy_j\": %.9g},\n"
         n_tasks clean_ms clean_j);
    Buffer.add_string buf
      (Printf.sprintf "  \"seeds_per_rate\": %d,\n" (List.length seeds));
    Buffer.add_string buf "  \"rates\": [\n";
    List.iteri
      (fun i (rate, completed, avail, ms, j, re, ti, sp, rc, hits) ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"fault_rate\": %g, \"runs_completed\": %d, \
              \"availability\": %.4f, \"mean_makespan_s\": %.9g, \
              \"makespan_overhead_pct\": %.1f, \"mean_energy_j\": %.9g, \
              \"retries\": %d, \"timeouts\": %d, \"speculative\": %d, \
              \"recomputed\": %d, \"slo\": {%s}}%s\n"
             rate completed avail ms
             (100.0 *. (ms /. clean_ms -. 1.0))
             j re ti sp rc
             (String.concat ", "
                (List.map2
                   (fun k h -> Printf.sprintf "\"%.1fx\": %.2f" k h)
                   slos hits))
             (if i = List.length rows - 1 then "" else ",")))
      rows;
    Buffer.add_string buf "  ]\n}\n";
    Buffer.contents buf
  in
  let oc = open_out "BENCH_e14.json" in
  output_string oc json;
  close_out oc;
  Printf.printf
    "\nwrote BENCH_e14.json\n\
     Expected shape: at fault rate 0 the overhead is exactly 0%% (the\n\
     resilience plumbing is free when nothing fails); at 10-30%% node\n\
     failure the workflow still completes on every seed via retries,\n\
     speculation and lineage recomputation, with makespan overhead\n\
     growing with the fault rate and energy tracking the re-executed work.\n"

(* ================================================================= E15 == *)
(* everest_observe claim: run analytics are pull-only and cheap — building
   the full report (span index, critical path, utilization, quantiles,
   SLOs) from a traced chaos run costs under 5% of the run it describes,
   and diffing two report JSONs is cheaper still.  Results also land in
   BENCH_e15.json. *)

let e15 () =
  header "E15 (observe): report generation cost vs the run it analyzes";
  let module Res = Everest_resilience in
  let module Obs = Everest_observe in
  let module Tel = Everest_telemetry in
  let dag = Wf.Dag.layered ~seed:7 ~layers:5 ~width:4 ~flops:2e9 ~bytes:1e6 () in
  let nodes =
    List.map
      (fun (n : Plat.Node.t) -> n.Plat.Node.name)
      (Plat.Cluster.everest_demonstrator ()).Plat.Cluster.nodes
  in
  let _, clean = Wf.Executor.run_on_demonstrator ~policy:"heft-locality" dag in
  let clean_ms = clean.Wf.Executor.makespan in
  let faults =
    Res.Faults.random_plan ~seed:7 ~fault_rate:0.2
      ~mean_downtime:(0.25 *. clean_ms) ~transient_prob:0.05
      ~fpga_transient_prob:0.02 ~nodes ~horizon:clean_ms ()
  in
  let run () =
    let registry = Tel.Metrics.create_registry () in
    let _, stats =
      Wf.Executor.run_on_demonstrator ~policy:"heft-locality" ~faults
        ~exec_policy:Res.Policy.chaos ~tracer:`Sim ~registry dag
    in
    stats
  in
  (* Interleaved batches, minimum batch time per phase: the minimum is the
     pass least disturbed by the OS.  Reports are lazy and memoized, so
     each timed force gets a fresh (untimed) run behind it. *)
  let reps = 20 and batches = 10 in
  for _ = 1 to 5 do ignore (Lazy.force (run ()).Wf.Executor.report) done;
  let best_run = ref infinity and best_report = ref infinity in
  for _ = 1 to batches do
    let t0 = Unix.gettimeofday () in
    let stats = Array.init reps (fun _ -> run ()) in
    let t1 = Unix.gettimeofday () in
    Array.iter (fun s -> ignore (Lazy.force s.Wf.Executor.report)) stats;
    let t2 = Unix.gettimeofday () in
    best_run := Float.min !best_run ((t1 -. t0) /. float_of_int reps);
    best_report := Float.min !best_report ((t2 -. t1) /. float_of_int reps)
  done;
  let t_run = !best_run and t_report = !best_report in
  let report_pct = 100.0 *. t_report /. t_run in
  (* one representative report for the shape numbers and the diff cost *)
  let stats = run () in
  let report = Lazy.force stats.Wf.Executor.report in
  let js = Obs.Report.to_json report in
  let t_diff =
    let n = 100 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do ignore (Obs.Regress.diff ~before:js ~after:js ()) done;
    (Unix.gettimeofday () -. t0) /. float_of_int n
  in
  let cp_steps, cp_dur =
    match report.Obs.Report.r_cp with
    | Some cp ->
        (List.length cp.Obs.Critical_path.steps, cp.Obs.Critical_path.duration_s)
    | None -> (0, 0.0)
  in
  let budget_pct = 5.0 in
  table
    ~cols:[ "phase"; "per-run"; "share of run" ]
    [ [ "traced chaos run (executor)"; time_str t_run; "100%" ];
      [ "force report (index+cp+util+slo)"; time_str t_report;
        Printf.sprintf "%.2f%%" report_pct ];
      [ "regress diff (report vs self)"; time_str t_diff;
        Printf.sprintf "%.2f%%" (100.0 *. t_diff /. t_run) ] ];
  Printf.printf
    "\nreport: %d spans -> %d critical-path steps (%s of %s makespan), %d nodes\n"
    report.Obs.Report.r_spans cp_steps (time_str cp_dur)
    (time_str report.Obs.Report.r_makespan_s)
    (match report.Obs.Report.r_util with
    | Some u -> List.length u.Obs.Utilization.u_nodes
    | None -> 0);
  let json =
    Printf.sprintf
      "{\n\
      \  \"run_s\": %.9g,\n\
      \  \"report_s\": %.9g,\n\
      \  \"report_pct_of_run\": %.3f,\n\
      \  \"diff_s\": %.9g,\n\
      \  \"spans\": %d,\n\
      \  \"cp_steps\": %d,\n\
      \  \"cp_duration_s\": %.9g,\n\
      \  \"makespan_s\": %.9g,\n\
      \  \"budget_pct\": %.1f,\n\
      \  \"within_budget\": %b\n\
       }\n"
      t_run t_report report_pct t_diff report.Obs.Report.r_spans cp_steps
      cp_dur report.Obs.Report.r_makespan_s budget_pct
      (report_pct < budget_pct)
  in
  let oc = open_out "BENCH_e15.json" in
  output_string oc json;
  close_out oc;
  Printf.printf
    "\nwrote BENCH_e15.json\n\
     Expected shape: the analytics are pull-only, so the run itself pays\n\
     nothing; forcing the report (span index, critical path with self/wait\n\
     split, per-node utilization, quantiles, completion SLO) stays under\n\
     the %.0f%%-of-run budget, and the report-vs-report diff is cheaper\n\
     than the report itself.\n"
    budget_pct

(* everest_serving claim: the serving fabric scales — aggregate sustained
   throughput at a fixed p99 latency SLO grows from 1 to 16 shards, and
   under the e14-style 20% fault plan the fleet keeps >= 99% availability
   with worker auto-allocation absorbing the displaced load.  Results also
   land in BENCH_e16.json. *)

let e16 () =
  header
    "E16 (serving): sustained req/s at the p99 SLO and availability under \
     faults, 1 -> 16 shards";
  let module Srv = Everest_serving in
  let module Res = Everest_resilience in
  let module Tel = Everest_telemetry in
  let horizon = 0.3 in
  let p99_limit_s = 0.05 in
  let shard_counts = [ 1; 4; 16 ] in
  let tenants rate =
    [ Srv.Workload.open_tenant ~name:"acme" ~kernel:"mm" ~rate_rps:rate
        ~diurnal_amplitude:0.3 ~diurnal_period_s:1.0
        ~burst:
          { Srv.Workload.burst_factor = 3.0; mean_calm_s = 0.1;
            mean_burst_s = 0.05 }
        ();
      Srv.Workload.closed_tenant ~name:"globex" ~kernel:"mm" ~users:4
        ~think_s:0.05 () ]
  in
  let run_at ?(faults = Res.Faults.none) n_shards rate =
    let config =
      { (Srv.Fabric.default_config ~n_shards) with Srv.Fabric.seed = 7; faults }
    in
    Srv.Fabric.run ~registry:(Tel.Metrics.create_registry ()) config
      ~deploy:(Srv.Fabric.demo_deploy ()) ~tenants:(tenants rate) ~horizon
  in
  (* sustained = the highest rung of a per-shard offered-load ladder the
     fleet absorbs with p99 within the SLO and nothing shed or failed *)
  let ladder = [ 100.0; 200.0; 400.0; 800.0; 1600.0 ] in
  let sustain n_shards =
    List.fold_left
      (fun best per_shard ->
        let rate = per_shard *. float_of_int n_shards in
        let r = run_at n_shards rate in
        let p99 = Srv.Fabric.latency_quantile r 0.99 in
        if
          p99 <= p99_limit_s
          && Srv.Fabric.shed r = 0
          && Srv.Fabric.availability r >= 1.0
        then Some (rate, Srv.Fabric.throughput_rps r, p99, r)
        else best)
      None ladder
  in
  let sustained = List.map (fun n -> (n, sustain n)) shard_counts in
  let tput n =
    match List.assoc n sustained with Some (_, t, _, _) -> t | None -> 0.0
  in
  (* availability under the e14-style fault plan: 20% per-shard crash
     probability, downtime a quarter of the horizon, autoscale on *)
  let fault_runs =
    List.map
      (fun n ->
        let faults =
          Res.Faults.random_plan ~seed:7 ~fault_rate:0.2
            ~mean_downtime:(0.25 *. horizon)
            ~nodes:(List.init n (Printf.sprintf "shard%d"))
            ~horizon ()
        in
        (n, run_at ~faults n (200.0 *. float_of_int n)))
      shard_counts
  in
  table
    ~cols:
      [ "shards"; "sustained req/s"; "p99"; "workers spawned";
        "avail @ 20% faults" ]
    (List.map
       (fun n ->
         let sus = List.assoc n sustained in
         let fr = List.assoc n fault_runs in
         [ string_of_int n;
           (match sus with
           | Some (_, t, _, _) -> Printf.sprintf "%.0f" t
           | None -> "-");
           (match sus with
           | Some (_, _, p, _) -> time_str p
           | None -> "-");
           (match sus with
           | Some (_, _, _, r) -> string_of_int r.Srv.Fabric.f_spawned
           | None -> "-");
           Printf.sprintf "%.2f%%" (100.0 *. Srv.Fabric.availability fr) ])
       shard_counts);
  let scaling = if tput 1 > 0.0 then tput 16 /. tput 1 else 0.0 in
  let avail16 = Srv.Fabric.availability (List.assoc 16 fault_runs) in
  let fr16 = List.assoc 16 fault_runs in
  Printf.printf
    "\nscaling 1 -> 16 shards: %.2fx aggregate sustained throughput\n\
     under faults (16 shards): availability %.2f%%, %d reroutes, %d workers \
     spawned\n"
    scaling (100.0 *. avail16) fr16.Srv.Fabric.f_reroutes
    fr16.Srv.Fabric.f_spawned;
  let passed = scaling > 1.0 && avail16 >= 0.99 in
  let json =
    Printf.sprintf
      "{\n\
      \  \"horizon_s\": %.9g,\n\
      \  \"p99_limit_s\": %.9g,\n\
      \  \"shards\": [%s],\n\
      \  \"sustained_rps\": [%s],\n\
      \  \"p99_s\": [%s],\n\
      \  \"availability_at_20pct_faults\": [%s],\n\
      \  \"scaling_1_to_16\": %.4f,\n\
      \  \"availability_16_shards\": %.6f,\n\
      \  \"passed\": %b\n\
       }\n"
      horizon p99_limit_s
      (String.concat ", " (List.map string_of_int shard_counts))
      (String.concat ", "
         (List.map (fun n -> Printf.sprintf "%.3f" (tput n)) shard_counts))
      (String.concat ", "
         (List.map
            (fun n ->
              match List.assoc n sustained with
              | Some (_, _, p, _) -> Printf.sprintf "%.9g" p
              | None -> "-1")
            shard_counts))
      (String.concat ", "
         (List.map
            (fun (_, fr) -> Printf.sprintf "%.6f" (Srv.Fabric.availability fr))
            fault_runs))
      scaling avail16 passed
  in
  let oc = open_out "BENCH_e16.json" in
  output_string oc json;
  close_out oc;
  Printf.printf
    "\nwrote BENCH_e16.json\n\
     Expected shape: one shard saturates low on the offered-load ladder;\n\
     adding shards raises the highest rung served inside the %.0fms p99 SLO\n\
     (>1x aggregate from 1 to 16), and the 20%% fault plan costs the fleet\n\
     little availability because breaker-draining shards hand queued work\n\
     to siblings and auto-allocation re-absorbs the displaced load.\n"
    (1000.0 *. p99_limit_s)

(* ---- micro-benchmarks (Bechamel) ---------------------------------------------- *)

let micro ?(quota = 0.5) () =
  let open Bechamel in
  let aes_key = Sec.Aes.key_of_string "0123456789abcdef" in
  let block = Bytes.make 16 'b' in
  let sha_buf = Bytes.make 1024 's' in
  let dfg = Hls.Cdfg.random ~seed:4 ~n:100 ~load_frac:0.25 ~mul_frac:0.3 () in
  let ctx = Everest_ir.Ir.ctx () in
  let a = TE.input "a" [ 32; 32 ] in
  let kernel_f = Dsl.Lower.lower_expr ctx (TE.matmul a a) in
  let av =
    TE.tensor [ 32; 32 ] (Array.init 1024 (fun i -> float_of_int (i mod 7)))
  in
  let city = Everest_traffic.Roadnet.grid_city ~rows:8 ~cols:8 () in
  let prof = Everest_traffic.Profiles.create city ~periods:24 in
  let route = Option.get (Everest_traffic.Routing.free_flow city ~src:0 ~dst:63) in
  let rng = Everest_ml.Rng.create 1 in
  let tests =
    [ Test.make ~name:"aes128-encrypt-block"
        (Staged.stage (fun () -> Sec.Aes.encrypt_block aes_key block));
      Test.make ~name:"sha256-1KiB"
        (Staged.stage (fun () -> Sec.Sha256.digest_bytes sha_buf));
      Test.make ~name:"hls-list-schedule-100n"
        (Staged.stage (fun () -> Hls.Schedule.list_schedule dfg));
      Test.make ~name:"ir-interp-matmul-32x32"
        (Staged.stage (fun () -> Dsl.Lower.run_lowered ctx kernel_f [ av ]));
      Test.make ~name:"plume-field-32x32"
        (Staged.stage (fun () ->
             Everest_airq.Plume.field ~cells:32
               ~sources:
                 [ { Everest_airq.Plume.sx = 0.0; sy = 0.0; height_m = 30.0;
                     emission_gs = 100.0 } ]
               ~wind_ms:5.0 ~wind_dir_rad:0.3 ~cls:Everest_airq.Plume.D ()));
      Test.make ~name:"ptdr-mc-rollout"
        (Staged.stage (fun () ->
             Everest_traffic.Ptdr.rollout rng city prof route.Everest_traffic.Routing.links
               ~depart:0.0));
      Test.make ~name:"dijkstra-8x8-city"
        (Staged.stage (fun () -> Everest_traffic.Routing.free_flow city ~src:0 ~dst:63))
    ]
  in
  print_benchmarks ~quota "Micro-benchmarks (Bechamel)" tests

let all () =
  e1 (); e2 (); e3 (); e4 (); e5 (); e6 (); e7 (); e8 (); e9 (); e10 ();
  e11 (); e12 (); e13 (); e14 (); e15 (); e16 (); micro ()

let by_name = function
  | "e1" -> Some e1 | "e2" -> Some e2 | "e3" -> Some e3 | "e4" -> Some e4
  | "e5" -> Some e5 | "e6" -> Some e6 | "e7" -> Some e7 | "e8" -> Some e8
  | "e9" -> Some e9 | "e10" -> Some e10 | "e11" -> Some e11
  | "e12" -> Some e12 | "e13" -> Some e13 | "e14" -> Some e14
  | "e15" -> Some e15 | "e16" -> Some e16
  | "micro" -> Some (fun () -> micro ())
  | "all" -> Some all
  | _ -> None
