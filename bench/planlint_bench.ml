(* E18: static plan sanitization at million-task scale.

     dune exec bench/planlint_bench.exe              # full sweep, writes BENCH_e18.json
     dune exec bench/planlint_bench.exe -- --quick   # reduced sweep (<= 10^4 tasks)

   The planlint analyzer is a pre-run gate: every executed plan pays for
   it, so its cost must stay a small fraction of what producing the plan
   cost.  This driver measures, over the estee DAG families:

   - reachability index: build wall and query throughput at 10^3..10^6
     tasks (the O(n·chains) labeling that carries the happens-before
     proof);
   - full lint vs HEFT planning: analyzer wall as a fraction of
     [Scheduler.heft] wall at each scale — gated at <5% at the top scale;
   - defect detection: the seeded defect classes of `plan-lint --demo`
     re-checked here so the bench fails loudly if the analyzer ever stops
     seeing one.

   Results land in BENCH_e18.json; EXPERIMENTS.md section E18 narrates a
   committed run. *)

module Wf = Everest_workflow
module Sb = Wf.Scalebench
module Pl = Wf.Planlint
module Sched = Wf.Scheduler
module Dag = Wf.Dag
module Lint = Everest_analysis.Lint
module Cluster = Everest_platform.Cluster

let now () = Unix.gettimeofday ()

type row = {
  r_family : string;
  r_tasks : int;
  r_heft_s : float;
  r_lint_s : float;
  r_frac : float;  (* lint / heft *)
  r_reach_build_s : float;
  r_query_per_s : float;
  r_chains : int;
  r_diags : int;
}

let row_json r =
  Printf.sprintf
    "{\"family\": \"%s\", \"tasks\": %d, \"heft_s\": %.6f, \"lint_s\": \
     %.6f, \"lint_frac\": %.4f, \"reach_build_s\": %.6f, \"reach_query_per_s\": \
     %.0f, \"chains\": %d, \"diags\": %d}"
    r.r_family r.r_tasks r.r_heft_s r.r_lint_s r.r_frac r.r_reach_build_s
    r.r_query_per_s r.r_chains r.r_diags

(* walls are minima over repeated runs: on a shared single-core host a
   single sample aliases GC major slices and scheduler preemption, and the
   minimum is the closest observable to the actual cost of a pass *)
let time_min reps f =
  let best = ref infinity and result = ref None in
  for _ = 1 to reps do
    let t0 = now () in
    let r = f () in
    let dt = now () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (!best, Option.get !result)

let bench_scale family tasks =
  let c = Cluster.everest_demonstrator () in
  let d = Sb.make_dag family ~tasks in
  let heft_s, plan = time_min 2 (fun () -> Sched.heft c d) in
  let lint_s, summary = time_min 3 (fun () -> Pl.analyze c plan) in
  let t0 = now () in
  let r = Pl.Reach.build plan in
  let reach_build_s = now () -. t0 in
  (* query throughput over a deterministic pseudo-random pair stream *)
  let n = Pl.Reach.tasks r in
  let queries = 1_000_000 in
  let hits = ref 0 in
  let state = ref 123456789 in
  let next () =
    state := (!state * 1103515245) + 12345;
    (!state lsr 7) land max_int
  in
  let t0 = now () in
  for _ = 1 to queries do
    let u = next () mod n and v = next () mod n in
    if Pl.Reach.reaches r u v then incr hits
  done;
  let query_s = now () -. t0 in
  ignore !hits;
  { r_family = Sb.family_name family;
    r_tasks = Dag.size d;
    r_heft_s = heft_s;
    r_lint_s = lint_s;
    r_frac = lint_s /. heft_s;
    r_reach_build_s = reach_build_s;
    r_query_per_s = float_of_int queries /. query_s;
    r_chains = summary.Pl.pl_chains;
    r_diags = List.length summary.Pl.pl_diags }

(* the CLI demo's defect classes, re-verified here so the scale bench also
   guards detection (a fast analyzer that stops seeing defects is worse
   than a slow one) *)
let defects_caught () =
  let c = Cluster.everest_demonstrator () in
  let cpu = Dag.Cpu { flops = 1e9; bytes = 4096.0; threads = 1 } in
  let est =
    { Everest_hls.Estimate.area = Everest_hls.Estimate.zero_area;
      cycles = 100_000; ii = 1; clock_mhz = 250.0; dynamic_power_w = 5.0 }
  in
  let fpga b =
    Dag.Fpga { bitstream = b; estimate = est; in_bytes = 4096; out_bytes = 1024 }
  in
  let has code ds = List.exists (fun d -> String.equal d.Lint.code code) ds in
  let chain =
    Dag.create "chain"
      (List.init 3 (fun i ->
           Dag.task ~id:i ~name:(Printf.sprintf "c%d" i)
             ~inputs:(if i = 0 then [] else [ i - 1 ])
             ~out_bytes:4096 ~impls:[ cpu ] ()))
  in
  let rr d =
    match Sched.by_name "round-robin" with
    | Some f -> f c d
    | None -> assert false
  in
  let edge_drop =
    let tasks = Array.copy chain.Dag.tasks in
    tasks.(2) <- { (tasks.(2)) with Dag.inputs = [] };
    let cut = { chain with Dag.tasks = tasks } in
    let ds = Pl.check ~dag:chain c (rr cut) in
    has "EV110" ds && has "EV111" ds
  in
  let off_pin =
    let d =
      Dag.create "pinned"
        [ Dag.task ~id:0 ~name:"src" ~pinned:(Some "ep0") ~inputs:[]
            ~out_bytes:4096 ~impls:[ cpu ] ();
          Dag.task ~id:1 ~name:"sink" ~inputs:[ 0 ] ~out_bytes:64
            ~impls:[ cpu ] () ]
    in
    let plan = Sched.heft c d in
    let assignments = Array.copy plan.Sched.assignments in
    assignments.(0) <- { (assignments.(0)) with Sched.node = "cf0" };
    has "EV120" (Pl.check c { plan with Sched.assignments })
  in
  let capability =
    let d =
      Dag.create "cap"
        [ Dag.task ~id:0 ~name:"k" ~inputs:[] ~out_bytes:1024
            ~impls:[ fpga "k" ] () ]
    in
    let plan =
      { Sched.dag = d;
        assignments = [| { Sched.node = "ep0"; impl = fpga "k" } |];
        policy = "manual" }
    in
    has "EV122" (Pl.check c plan)
  in
  let oversubscription =
    let width = 8 in
    let d =
      Dag.create "wide"
        (Dag.task ~id:0 ~name:"src" ~inputs:[] ~out_bytes:4096 ~impls:[ cpu ]
           ()
        :: List.init width (fun i ->
               Dag.task ~id:(i + 1)
                 ~name:(Printf.sprintf "w%d" i)
                 ~inputs:[ 0 ] ~out_bytes:1024
                 ~impls:[ fpga (Printf.sprintf "bit%d" i) ]
                 ()))
    in
    let assignments =
      Array.init (width + 1) (fun i ->
          if i = 0 then { Sched.node = "ep0"; impl = cpu }
          else
            { Sched.node = "cf0"; impl = fpga (Printf.sprintf "bit%d" (i - 1)) })
    in
    let ds = Pl.check c { Sched.dag = d; assignments; policy = "manual" } in
    has "EV130" ds && has "EV131" ds
  in
  let infeasible_slo =
    has "EV140" (Pl.check ~deadline_s:1e-6 c (Sched.heft c chain))
  in
  [ ("precedence-break", edge_drop); ("off-pin", off_pin);
    ("capability-mismatch", capability);
    ("slot-oversubscription", oversubscription);
    ("infeasible-slo", infeasible_slo) ]

let () =
  let quick = Array.exists (fun a -> a = "--quick") Sys.argv in
  Util.header
    (if quick then "E18: plan sanitization scale sweep (quick)"
     else "E18: plan sanitization scale sweep");

  (* ---- lint-vs-plan sweep ---- *)
  let scales =
    if quick then [ 1_000; 10_000 ]
    else [ 1_000; 10_000; 100_000; 1_000_000 ]
  in
  let rows =
    List.concat_map
      (fun tasks ->
        List.map
          (fun family ->
            let r = bench_scale family tasks in
            Printf.printf
              "  %-9s %7d tasks: heft %s, lint %s (%.1f%%), reach build \
               %s, %s queries/s\n%!"
              r.r_family r.r_tasks (Util.time_str r.r_heft_s)
              (Util.time_str r.r_lint_s)
              (100.0 *. r.r_frac)
              (Util.time_str r.r_reach_build_s)
              (Util.si r.r_query_per_s);
            r)
          [ Sb.Layered; Sb.Fork_join; Sb.Ensemble ])
      scales
  in
  Util.table
    ~cols:
      [ "family"; "tasks"; "heft"; "lint"; "lint/heft"; "reach build";
        "queries/s"; "chains"; "diags" ]
    (List.map
       (fun r ->
         [ r.r_family; string_of_int r.r_tasks; Util.time_str r.r_heft_s;
           Util.time_str r.r_lint_s;
           Printf.sprintf "%.1f%%" (100.0 *. r.r_frac);
           Util.time_str r.r_reach_build_s; Util.si r.r_query_per_s;
           string_of_int r.r_chains; string_of_int r.r_diags ])
       rows);

  (* ---- defect detection ---- *)
  Printf.printf "\nseeded defect classes:\n";
  let defects = defects_caught () in
  List.iter
    (fun (name, ok) ->
      Printf.printf "  %-22s %s\n" name (if ok then "caught" else "MISSED"))
    defects;

  (* ---- verdict + JSON ---- *)
  let top = List.fold_left (fun acc r -> max acc r.r_tasks) 0 rows in
  let top_rows = List.filter (fun r -> r.r_tasks >= top * 9 / 10) rows in
  (* at quick scale fixed costs (cluster probes, allocation) dominate the
     tiny HEFT wall, so the smoke run only sanity-bounds the fraction *)
  let frac_budget = if quick then 0.5 else 0.05 in
  (* the gate is the top-scale fraction aggregated over the families: a
     single family's ratio on one run moves +-30% with host noise (the
     numerator is ~100ms on a shared core), while the pooled ratio is
     stable; per-family fractions are still reported above *)
  let agg_frac =
    let lint = List.fold_left (fun a r -> a +. r.r_lint_s) 0.0 top_rows in
    let heft = List.fold_left (fun a r -> a +. r.r_heft_s) 0.0 top_rows in
    lint /. heft
  in
  let worst_frac =
    List.fold_left (fun acc r -> Float.max acc r.r_frac) 0.0 top_rows
  in
  let frac_ok = agg_frac < frac_budget in
  let clean_ok = List.for_all (fun r -> r.r_diags = 0) rows in
  let defects_ok = List.for_all snd defects in
  let passed = frac_ok && clean_ok && defects_ok in
  let json =
    Printf.sprintf
      "{\n\
      \  \"sweep\": [\n    %s\n  ],\n\
      \  \"lint_frac_at_top_scale\": %.4f,\n\
      \  \"worst_family_frac_at_top_scale\": %.4f,\n\
      \  \"frac_budget\": %.2f,\n\
      \  \"defects\": {%s},\n\
      \  \"quick\": %b,\n\
      \  \"passed\": %b\n\
       }\n"
      (String.concat ",\n    " (List.map row_json rows))
      agg_frac worst_frac frac_budget
      (String.concat ", "
         (List.map
            (fun (name, ok) -> Printf.sprintf "\"%s\": %b" name ok)
            defects))
      quick passed
  in
  let oc = open_out "BENCH_e18.json" in
  output_string oc json;
  close_out oc;
  Printf.printf
    "\nwrote BENCH_e18.json\n\
     Expected shape: linting a plan costs a few percent of producing it\n\
     at every scale (gated <%.0f%% at %s tasks), the reachability index\n\
     builds in O(n*chains) and answers ~10^7 queries/s, every shipped\n\
     plan is clean, and every seeded defect class is caught.\n"
    (100.0 *. frac_budget)
    (Util.si (float_of_int top));
  if not passed then begin
    Printf.eprintf
      "E18 FAILED: frac_ok=%b (aggregate %.3f, worst family %.3f) \
       clean_ok=%b defects_ok=%b\n"
      frac_ok agg_frac worst_frac clean_ok defects_ok;
    exit 1
  end
