(* Benchmark/experiment driver.

     dune exec bench/main.exe            # every experiment E1-E16 + micro
     dune exec bench/main.exe -- e5      # one experiment
     dune exec bench/main.exe -- micro   # Bechamel micro-benchmarks only

   E17 (Estee-style scheduler scale) lives in its own driver,
   bench/estee.exe (--quick for the CI-sized sweep), because its full
   sweep plans million-task DAGs and should not slow `all` down.

   Each experiment regenerates one figure/claim of the paper; the mapping is
   documented in DESIGN.md section 3 and the measured results in
   EXPERIMENTS.md. *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] -> Experiments.all ()
  | names ->
      List.iter
        (fun n ->
          match Experiments.by_name (String.lowercase_ascii n) with
          | Some f -> f ()
          | None ->
              Printf.eprintf
                "unknown experiment %S (expected e1..e16, micro, all; e17 \
                 lives in bench/estee.exe)\n"
                n;
              exit 1)
        names
