(* E20: watch overhead, determinism and detection on the serving fabric.

     dune exec bench/watch_bench.exe              # full sweep, writes BENCH_e20.json
     dune exec bench/watch_bench.exe -- --quick   # reduced sweep for CI

   A monitoring layer earns its keep only if watching costs almost
   nothing and changes nothing.  Three claims are gated here, at the same
   e16 scale the recovery bench uses (16 shards, 12800 req/s, 1 s):

     1. Overhead: scraping + sketch feeds + rule evaluation tax the
        watched run by <5% CPU (full mode).
     2. Nothing changes: the watched run's served log / SLO verdicts /
        summary are byte-identical to the unwatched same-seed run, and
        two watched runs render byte-identical dashboards.
     3. It actually detects: a capacity cliff (all but one shard killed
        mid-run) must trip the CUSUM latency alert, while the clean run
        must raise zero alerts — sensitivity without false positives. *)

module Srv = Everest_serving
module Res = Everest_resilience
module Tel = Everest_telemetry
module W = Everest_watch

(* Same rationale as E19: a <5% effect cannot be resolved by A/B-timing
   separate runs on a shared host (±15-30% drift), so the gated number is
   ATTRIBUTED — the watch clocks its own code paths (scrape ticks, rule
   evaluation, sketch observes) into [Watch.work_s], and the fraction
   work/(total-work) comes out of a single run where the host's noise
   multiplier cancels. *)
let now () = Sys.time ()

let time_one f =
  let t0 = now () in
  let r = f () in
  (now () -. t0, r)

type row = {
  r_interval_s : float;
  r_run_s : float;  (* best watched run CPU time *)
  r_overhead : float;  (* median attributed work/(total-work) fraction *)
  r_ticks : int;
  r_series : int;
  r_sketch_samples : int;
  r_log_identical : bool;  (* watched fabric output == unwatched *)
  r_dash_identical : bool;  (* two watched runs render the same dashboard *)
}

let row_json r =
  Printf.sprintf
    "{\"interval_s\": %.3f, \"run_s\": %.6f, \"overhead_frac\": %.4f, \
     \"ticks\": %d, \"series\": %d, \"sketch_samples\": %d, \
     \"log_identical\": %b, \"dashboard_identical\": %b}"
    r.r_interval_s r.r_run_s r.r_overhead r.r_ticks r.r_series
    r.r_sketch_samples r.r_log_identical r.r_dash_identical

let () =
  let quick = Array.exists (String.equal "--quick") Sys.argv in
  (* e16 scale in full mode, for the same reason as E19: per-request
     fabric work grows with fleet size and load while a scrape tick costs
     the same, so this is the configuration the <5% budget is defined
     against. *)
  let shards = if quick then 2 else 16 in
  let rate = if quick then 2000.0 else 12800.0 in
  let horizon = if quick then 0.3 else 1.0 in
  let reps = if quick then 2 else 3 in
  let intervals = if quick then [ 0.01; 0.05 ] else [ 0.005; 0.01; 0.02; 0.05 ] in
  let seed = 20 in
  let tenants =
    [ Srv.Workload.open_tenant ~name:"acme" ~kernel:"mm" ~rate_rps:rate
        ~diurnal_amplitude:0.3 ~diurnal_period_s:1.0
        ~features:(fun seq ->
          [ ("size", float_of_int (1024 + (64 * (seq mod 4)))) ])
        ();
      Srv.Workload.closed_tenant ~name:"globex" ~kernel:"mm" ~users:4
        ~think_s:0.05 () ]
  in
  let config ~faults =
    { (Srv.Fabric.default_config ~n_shards:shards) with Srv.Fabric.seed; faults }
  in
  let rules ~n_shards () =
    let p99 =
      W.Rules.Quantile_over ("latency", [ ("tenant", "acme") ], 0.99, 0.2)
    in
    [ W.Rules.record "latency:p99" p99;
      W.Rules.alert "latency-step" p99
        (W.Rules.Detector (W.Detect.cusum ~drift:0.5 ~threshold:5.0 ()));
      W.Rules.alert "fleet-degraded"
        (W.Rules.Last ("fabric:alive_shards", []))
        (W.Rules.Below (float_of_int n_shards)) ]
  in
  let mk_watch interval =
    W.Watch.create
      ~config:{ W.Watch.default_config with W.Watch.wc_interval_s = interval }
      ~rules:(rules ~n_shards:shards ()) ()
  in
  let render r =
    Srv.Fabric.render_log r ^ "\n" ^ Srv.Fabric.render_slos r ^ "\n"
    ^ Srv.Fabric.render_summary r
  in
  let run ?watch ?(tenants = tenants) ~faults () =
    Srv.Fabric.run ~registry:(Tel.Metrics.create_registry ()) ?watch
      (config ~faults) ~deploy:(Srv.Fabric.demo_deploy ()) ~tenants ~horizon
  in

  Printf.printf
    "E20: watch overhead + determinism + detection (%d shards, %.0f req/s, \
     %.1fs horizon%s)\n\n\
     %!"
    shards rate horizon
    (if quick then ", quick" else "");

  (* ---- baseline reference output (also warms the process) ---- *)
  let plain_r = run ~faults:Res.Faults.none () in
  let plain = render plain_r in
  Printf.printf "unwatched run: %d requests\n%!"
    (List.length plain_r.Srv.Fabric.f_log);

  (* ---- sweep: watched run per scrape interval ---- *)
  let rows =
    List.map
      (fun interval ->
        let best = ref infinity and attrs = ref [] in
        let last = ref None in
        for _ = 1 to reps do
          let w = mk_watch interval in
          let t, r = time_one (fun () -> run ~watch:w ~faults:Res.Faults.none ()) in
          if t < !best then best := t;
          let work = W.Watch.work_s w in
          attrs := (work /. Float.max 1e-9 (t -. work)) :: !attrs;
          last := Some (r, w)
        done;
        let r1, w1 = Option.get !last in
        (* a second watched run: same-seed dashboards must render
           byte-identically *)
        let w2 = mk_watch interval in
        ignore (run ~watch:w2 ~faults:Res.Faults.none ());
        let dash w = W.Live.render w ~now:horizon ^ W.Live.render_json w ~now:horizon in
        let median xs =
          let sorted = List.sort compare xs in
          List.nth sorted (List.length sorted / 2)
        in
        let row =
          { r_interval_s = interval;
            r_run_s = !best;
            r_overhead = median !attrs;
            r_ticks = W.Watch.ticks w1;
            r_series = W.Series.Store.size (W.Watch.store w1);
            r_sketch_samples = W.Watch.samples w1;
            r_log_identical = String.equal plain (render r1);
            r_dash_identical = String.equal (dash w1) (dash w2) }
        in
        Printf.printf
          "  every %.3fs: run %s, attributed %+.2f%%, %d ticks, %d series, \
           %d sketch samples, log_identical=%b dash_identical=%b\n\
           %!"
          interval (Util.time_str row.r_run_s)
          (100.0 *. row.r_overhead)
          row.r_ticks row.r_series row.r_sketch_samples row.r_log_identical
          row.r_dash_identical;
        row)
      intervals
  in

  (* ---- detection: capacity cliff must trip CUSUM, clean run must not ---- *)
  (* This half of the bench asks a correctness question, not a scale one,
     so it always runs the same moderate configuration as the CLI [top]
     drill: 4 shards at 400 req/s with a stationary arrival process.  At
     the saturated e16 sweep scale above the p99 genuinely drifts with
     load (a real signal a drift detector should see), which would make
     "the clean run trips nothing" a statement about the workload rather
     than about the detector. *)
  let d_shards = 4 and d_rate = 400.0 and d_horizon = 0.4 in
  let detect_tenants =
    [ Srv.Workload.open_tenant ~name:"acme" ~kernel:"mm" ~rate_rps:d_rate
        ~features:(fun seq ->
          [ ("size", float_of_int (1024 + (64 * (seq mod 4)))) ])
        () ]
  in
  let detect_run ~watch ~faults =
    let config =
      { (Srv.Fabric.default_config ~n_shards:d_shards) with
        Srv.Fabric.seed;
        faults }
    in
    ignore
      (Srv.Fabric.run ~registry:(Tel.Metrics.create_registry ()) ~watch config
         ~deploy:(Srv.Fabric.demo_deploy ()) ~tenants:detect_tenants
         ~horizon:d_horizon)
  in
  let kill_faults =
    Res.Faults.of_failures
      (List.init (d_shards - 1) (fun i ->
           (Printf.sprintf "shard%d" (i + 1), 0.5 *. d_horizon)))
  in
  let mk_detect_watch () =
    W.Watch.create
      ~config:{ W.Watch.default_config with W.Watch.wc_interval_s = 0.01 }
      ~rules:(rules ~n_shards:d_shards ()) ()
  in
  let w_clean = mk_detect_watch () in
  detect_run ~watch:w_clean ~faults:Res.Faults.none;
  let w_fault = mk_detect_watch () in
  detect_run ~watch:w_fault ~faults:kill_faults;
  let edges w name =
    List.fold_left
      (fun acc (a : W.Rules.alert_state) ->
        if String.equal a.W.Rules.as_name name then acc + a.W.Rules.as_edges
        else acc)
      0
      (W.Watch.alert_states w)
  in
  let clean_edges = W.Watch.alerts_total w_clean in
  let fault_cusum = edges w_fault "latency-step" in
  Printf.printf
    "\ndetection: clean run %d alert edges, capacity-cliff run CUSUM edges \
     %d (fleet-degraded %d)\n\
     %!"
    clean_edges fault_cusum
    (edges w_fault "fleet-degraded");

  print_newline ();
  Util.table
    ~cols:
      [ "interval"; "run"; "overhead"; "ticks"; "series"; "sketch obs";
        "log id"; "dash id" ]
    (List.map
       (fun r ->
         [ Printf.sprintf "%.3fs" r.r_interval_s; Util.time_str r.r_run_s;
           Printf.sprintf "%+.2f%%" (100.0 *. r.r_overhead);
           string_of_int r.r_ticks; string_of_int r.r_series;
           string_of_int r.r_sketch_samples;
           string_of_bool r.r_log_identical;
           string_of_bool r.r_dash_identical ])
       rows);

  (* ---- verdict ---- *)
  (* The gate reads the densest interval: that is where scraping costs
     the most, i.e. the worst tax a watched fault-free run pays.  Quick
     CI runs far below e16 scale, where the fabric baseline is much
     lighter per tick, so they only sanity-bound the fraction. *)
  let overhead_budget = if quick then 0.5 else 0.05 in
  let densest =
    List.fold_left
      (fun acc r -> if r.r_interval_s < acc.r_interval_s then r else acc)
      (List.hd rows) rows
  in
  let overhead_ok = densest.r_overhead < overhead_budget in
  let identity_ok =
    List.for_all (fun r -> r.r_log_identical && r.r_dash_identical) rows
  in
  let detect_ok = clean_edges = 0 && fault_cusum > 0 in
  let passed = overhead_ok && identity_ok && detect_ok in
  let json =
    Printf.sprintf
      "{\n\
      \  \"shards\": %d,\n\
      \  \"rate_rps\": %.0f,\n\
      \  \"horizon_s\": %.2f,\n\
      \  \"sweep\": [\n    %s\n  ],\n\
      \  \"densest_overhead_frac\": %.4f,\n\
      \  \"overhead_budget\": %.2f,\n\
      \  \"byte_identity\": %b,\n\
      \  \"clean_alert_edges\": %d,\n\
      \  \"cliff_cusum_edges\": %d,\n\
      \  \"quick\": %b,\n\
      \  \"passed\": %b\n\
       }\n"
      shards rate horizon
      (String.concat ",\n    " (List.map row_json rows))
      densest.r_overhead overhead_budget identity_ok clean_edges fault_cusum
      quick passed
  in
  let oc = open_out "BENCH_e20.json" in
  output_string oc json;
  close_out oc;
  Printf.printf
    "\nwrote BENCH_e20.json\n\
     Expected shape: watching taxes the fault-free run by well under\n\
     %.0f%% even at the densest scrape interval, the watched run's output\n\
     and two watched runs' dashboards are byte-identical, the capacity\n\
     cliff trips the CUSUM latency alert and the clean run trips nothing.\n"
    (100.0 *. overhead_budget);
  if not passed then begin
    Printf.eprintf
      "E20 FAILED: overhead_ok=%b (%.3f at %.3fs interval) identity_ok=%b \
       detect_ok=%b (clean=%d cliff=%d)\n"
      overhead_ok densest.r_overhead densest.r_interval_s identity_ok
      detect_ok clean_edges fault_cusum;
    exit 1
  end
