(* Typed tensor-expression eDSL (the CFDlang / TeIL lineage of EVEREST).

   Expressions are built with smart constructors that perform shape
   inference eagerly, so ill-shaped programs are rejected at construction
   time — the "provably safe execution" the paper attributes to typed
   tensor languages.  An expression can be evaluated directly (reference
   semantics), cost-analyzed, or lowered to the tensor dialect of the IR. *)

exception Shape_error of string

let shape_err fmt = Fmt.kstr (fun s -> raise (Shape_error s)) fmt

type binop = Add | Sub | Mul | Div | Max | Min
type unop = Relu | Sigmoid | Tanh | Exp | Neg | Sqrt
type reduction = Sum | Prod | Rmax | Rmin

type expr = { node : node; shape : int list }

and node =
  | Input of string
  | Const of float
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Scale of float * expr
  | Matmul of expr * expr
  | Transpose of expr
  | Reshape of expr
  | Reduce of reduction * expr
  | Contract of string * expr list

let shape e = e.shape
let num_elems s = List.fold_left ( * ) 1 s

let input name shape = { node = Input name; shape }
let const ?(shape = []) v = { node = Const v; shape }
let scalar v = const v

let binop op a b =
  if a.shape <> b.shape then
    shape_err "elementwise %s: shapes %a vs %a"
      (match op with Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div"
       | Max -> "max" | Min -> "min")
      Fmt.(Dump.list int) a.shape Fmt.(Dump.list int) b.shape;
  { node = Binop (op, a, b); shape = a.shape }

let add = binop Add
let sub = binop Sub
let mul = binop Mul
let div = binop Div
let max_ a b = binop Max a b
let min_ a b = binop Min a b

(* Infix operators, in a submodule so arithmetic inside this file and in
   client code stays unambiguous unless explicitly opened. *)
module O = struct
  let ( + ) a b = binop Add a b
  let ( - ) a b = binop Sub a b
  let ( * ) a b = binop Mul a b
  let ( / ) a b = binop Div a b
end

let unop op a = { node = Unop (op, a); shape = a.shape }
let relu a = unop Relu a
let sigmoid a = unop Sigmoid a
let tanh_ a = unop Tanh a
let exp_ a = unop Exp a
let neg a = unop Neg a
let sqrt_ a = unop Sqrt a

let scale k a = { node = Scale (k, a); shape = a.shape }

let matmul a b =
  match (a.shape, b.shape) with
  | [ m; k ], [ k'; n ] when k = k' -> { node = Matmul (a, b); shape = [ m; n ] }
  | _ ->
      shape_err "matmul: %a x %a" Fmt.(Dump.list int) a.shape
        Fmt.(Dump.list int) b.shape

let transpose a =
  match a.shape with
  | [ m; n ] -> { node = Transpose a; shape = [ n; m ] }
  | _ -> shape_err "transpose: rank-2 required"

let reshape new_shape a =
  if num_elems new_shape <> num_elems a.shape then
    shape_err "reshape: %d elements into %d" (num_elems a.shape)
      (num_elems new_shape);
  { node = Reshape a; shape = new_shape }

let reduce r a = { node = Reduce (r, a); shape = [] }
let sum a = reduce Sum a

(* Einsum-style contraction.  The spec fixes operand ranks and output
   shape; extents are checked for consistency across operands. *)
let contract spec operands =
  let lhs, rhs =
    match String.index_opt spec '>' with
    | Some i when Stdlib.( > ) i 0 && spec.[i - 1] = '-' ->
        ( String.sub spec 0 (i - 1),
          String.sub spec Stdlib.(i + 1) Stdlib.(String.length spec - i - 1) )
    | _ -> shape_err "contract: bad spec %S" spec
  in
  let in_specs = String.split_on_char ',' lhs in
  if List.length in_specs <> List.length operands then
    shape_err "contract: %d specs for %d operands" (List.length in_specs)
      (List.length operands);
  let extents = Hashtbl.create 8 in
  List.iter2
    (fun s (e : expr) ->
      if String.length s <> List.length e.shape then
        shape_err "contract: spec %S does not match rank %d" s
          (List.length e.shape);
      List.iteri
        (fun i d ->
          let l = s.[i] in
          match Hashtbl.find_opt extents l with
          | Some d' when d' <> d ->
              shape_err "contract: label %c has extents %d and %d" l d' d
          | _ -> Hashtbl.replace extents l d)
        e.shape)
    in_specs operands;
  let out_shape =
    List.init (String.length rhs) (fun i ->
        match Hashtbl.find_opt extents rhs.[i] with
        | Some d -> d
        | None -> shape_err "contract: output label %c unbound" rhs.[i])
  in
  { node = Contract (spec, operands); shape = out_shape }

(* ---- free inputs ----------------------------------------------------------- *)

let rec inputs_of e acc =
  match e.node with
  | Input n -> if List.mem_assoc n acc then acc else (n, e.shape) :: acc
  | Const _ -> acc
  | Binop (_, a, b) | Matmul (a, b) -> inputs_of b (inputs_of a acc)
  | Unop (_, a) | Scale (_, a) | Transpose a | Reshape a | Reduce (_, a) ->
      inputs_of a acc
  | Contract (_, es) -> List.fold_left (fun acc e -> inputs_of e acc) acc es

let inputs e = List.rev (inputs_of e [])

(* ---- reference evaluation --------------------------------------------------- *)

type tensor = { dims : int list; data : float array }

let tensor dims data =
  if num_elems dims <> Array.length data then invalid_arg "tensor: size mismatch";
  { dims; data }

let tensor_scalar v = { dims = []; data = [| v |] }

let binop_fun = function
  | Add -> ( +. ) | Sub -> ( -. ) | Mul -> ( *. ) | Div -> ( /. )
  | Max -> Float.max | Min -> Float.min

let unop_fun = function
  | Relu -> fun x -> Float.max 0.0 x
  | Sigmoid -> fun x -> 1.0 /. (1.0 +. exp (-.x))
  | Tanh -> Float.tanh
  | Exp -> exp
  | Neg -> fun x -> -.x
  | Sqrt -> sqrt

let rec eval (env : (string * tensor) list) (e : expr) : tensor =
  match e.node with
  | Input n -> (
      match List.assoc_opt n env with
      | Some t ->
          if t.dims <> e.shape then
            shape_err "eval: input %S has shape %a, expected %a" n
              Fmt.(Dump.list int) t.dims Fmt.(Dump.list int) e.shape;
          t
      | None -> shape_err "eval: missing input %S" n)
  | Const v -> { dims = e.shape; data = Array.make (num_elems e.shape) v }
  | Binop (op, a, b) ->
      let ta = eval env a and tb = eval env b in
      { dims = ta.dims; data = Array.map2 (binop_fun op) ta.data tb.data }
  | Unop (op, a) ->
      let ta = eval env a in
      { dims = ta.dims; data = Array.map (unop_fun op) ta.data }
  | Scale (k, a) ->
      let ta = eval env a in
      { dims = ta.dims; data = Array.map (fun x -> k *. x) ta.data }
  | Matmul (a, b) -> (
      let ta = eval env a and tb = eval env b in
      match (ta.dims, tb.dims) with
      | [ m; k ], [ _; n ] ->
          let out = Array.make Stdlib.(m * n) 0.0 in
          for i = 0 to Stdlib.(m - 1) do
            for j = 0 to Stdlib.(n - 1) do
              let acc = ref 0.0 in
              for l = 0 to Stdlib.(k - 1) do
                acc :=
                  !acc
                  +. Stdlib.( *. )
                       ta.data.(Stdlib.((i * k) + l))
                       tb.data.(Stdlib.((l * n) + j))
              done;
              out.(Stdlib.((i * n) + j)) <- !acc
            done
          done;
          { dims = [ m; n ]; data = out }
      | _ -> assert false)
  | Transpose a -> (
      let ta = eval env a in
      match ta.dims with
      | [ m; n ] ->
          let out = Array.make Stdlib.(m * n) 0.0 in
          for i = 0 to Stdlib.(m - 1) do
            for j = 0 to Stdlib.(n - 1) do
              out.(Stdlib.((j * m) + i)) <- ta.data.(Stdlib.((i * n) + j))
            done
          done;
          { dims = [ n; m ]; data = out }
      | _ -> assert false)
  | Reshape a ->
      let ta = eval env a in
      { dims = e.shape; data = ta.data }
  | Reduce (r, a) ->
      let ta = eval env a in
      let f, init =
        match r with
        | Sum -> (( +. ), 0.0)
        | Prod -> (( *. ), 1.0)
        | Rmax -> (Float.max, neg_infinity)
        | Rmin -> (Float.min, infinity)
      in
      tensor_scalar (Array.fold_left f init ta.data)
  | Contract (spec, operands) ->
      let ts = List.map (eval env) operands in
      let bufs =
        List.map
          (fun (t : tensor) ->
            { Everest_ir.Interp.shape = t.dims; data = t.data;
              space = Everest_ir.Types.Host })
          ts
      in
      let out = Everest_ir.Interp.einsum spec bufs in
      { dims = out.Everest_ir.Interp.shape; data = out.Everest_ir.Interp.data }

(* ---- cost model -------------------------------------------------------------- *)

(* Floating-point operations needed by a single evaluation. *)
let rec flops e =
  let open Stdlib in
  match e.node with
  | Input _ | Const _ -> 0
  | Binop (_, a, b) -> num_elems e.shape + flops a + flops b
  | Unop (_, a) | Scale (_, a) -> num_elems e.shape + flops a
  | Matmul (a, b) -> (
      match (a.shape, b.shape) with
      | [ m; k ], [ _; n ] -> (2 * m * n * k) + flops a + flops b
      | _ -> assert false)
  | Transpose a | Reshape a -> flops a
  | Reduce (_, a) -> num_elems a.shape + flops a
  | Contract (spec, operands) ->
      (* index-space size = product of distinct label extents *)
      let all_labels = Hashtbl.create 8 in
      let lhs =
        match String.index_opt spec '-' with
        | Some i -> String.sub spec 0 i
        | None -> spec
      in
      let in_specs = String.split_on_char ',' lhs in
      List.iter2
        (fun s (o : expr) ->
          List.iteri (fun i d -> Hashtbl.replace all_labels s.[i] d) o.shape)
        in_specs operands;
      let space = Hashtbl.fold (fun _ d acc -> acc * d) all_labels 1 in
      (2 * space) + List.fold_left (fun acc o -> acc + flops o) 0 operands

(* Bytes touched, assuming each input is read once and output written once. *)
let bytes_moved e =
  let open Stdlib in
  let ins = inputs e in
  let in_bytes =
    List.fold_left (fun acc (_, s) -> acc + (8 * num_elems s)) 0 ins
  in
  in_bytes + (8 * num_elems e.shape)

(* Arithmetic intensity: flops per byte (key driver of HW/SW partitioning). *)
let intensity e =
  let b = bytes_moved e in
  if Stdlib.( = ) b 0 then 0.0 else float_of_int (flops e) /. float_of_int b

let rec depth e =
  let open Stdlib in
  match e.node with
  | Input _ | Const _ -> 0
  | Binop (_, a, b) | Matmul (a, b) -> 1 + max (depth a) (depth b)
  | Unop (_, a) | Scale (_, a) | Transpose a | Reshape a | Reduce (_, a) ->
      1 + depth a
  | Contract (_, es) -> 1 + List.fold_left (fun m x -> max m (depth x)) 0 es

let rec node_count e =
  let open Stdlib in
  match e.node with
  | Input _ | Const _ -> 1
  | Binop (_, a, b) | Matmul (a, b) -> 1 + node_count a + node_count b
  | Unop (_, a) | Scale (_, a) | Transpose a | Reshape a | Reduce (_, a) ->
      1 + node_count a
  | Contract (_, es) -> List.fold_left (fun n x -> Stdlib.( + ) n (node_count x)) 1 es

(* ---- structural fingerprint --------------------------------------------------- *)

(* Compact serialization of the full structure — node kinds, operator
   payloads, input names and every shape — used as the expression half of
   the compiler's estimation-cache keys.  Two expressions share a
   fingerprint iff they are structurally identical, so cached cost/HLS
   results keyed on it are safe to reuse across DSE strategies and
   compilation runs. *)
let fingerprint e =
  let buf = Buffer.create 128 in
  let dims s =
    Buffer.add_char buf '[';
    List.iter
      (fun d ->
        Buffer.add_string buf (string_of_int d);
        Buffer.add_char buf ',')
      s;
    Buffer.add_char buf ']'
  in
  let rec go e =
    Buffer.add_char buf '(';
    (match e.node with
    | Input n ->
        Buffer.add_string buf "in:";
        Buffer.add_string buf n
    | Const v -> Buffer.add_string buf (Printf.sprintf "c:%h" v)
    | Binop (op, a, b) ->
        Buffer.add_string buf "bin:";
        Buffer.add_string buf
          (match op with
          | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div"
          | Max -> "max" | Min -> "min");
        go a;
        go b
    | Unop (op, a) ->
        Buffer.add_string buf "un:";
        Buffer.add_string buf
          (match op with
          | Relu -> "relu" | Sigmoid -> "sigmoid" | Tanh -> "tanh"
          | Exp -> "exp" | Neg -> "neg" | Sqrt -> "sqrt");
        go a
    | Scale (k, a) ->
        Buffer.add_string buf (Printf.sprintf "scale:%h" k);
        go a
    | Matmul (a, b) ->
        Buffer.add_string buf "mm:";
        go a;
        go b
    | Transpose a ->
        Buffer.add_string buf "tr:";
        go a
    | Reshape a ->
        Buffer.add_string buf "rs:";
        go a
    | Reduce (r, a) ->
        Buffer.add_string buf "red:";
        Buffer.add_string buf
          (match r with
          | Sum -> "sum" | Prod -> "prod" | Rmax -> "rmax" | Rmin -> "rmin");
        go a
    | Contract (spec, es) ->
        Buffer.add_string buf "ein:";
        Buffer.add_string buf spec;
        List.iter go es);
    dims e.shape;
    Buffer.add_char buf ')'
  in
  go e;
  Buffer.contents buf

(* ---- pretty-printing ---------------------------------------------------------- *)

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Max -> "max" | Min -> "min"

let unop_name = function
  | Relu -> "relu" | Sigmoid -> "sigmoid" | Tanh -> "tanh" | Exp -> "exp"
  | Neg -> "neg" | Sqrt -> "sqrt"

let rec pp ppf e =
  match e.node with
  | Input n -> Fmt.pf ppf "%s" n
  | Const v -> Fmt.pf ppf "%g" v
  | Binop (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp a (binop_name op) pp b
  | Unop (op, a) -> Fmt.pf ppf "%s(%a)" (unop_name op) pp a
  | Scale (k, a) -> Fmt.pf ppf "(%g . %a)" k pp a
  | Matmul (a, b) -> Fmt.pf ppf "(%a @ %a)" pp a pp b
  | Transpose a -> Fmt.pf ppf "%a^T" pp a
  | Reshape a -> Fmt.pf ppf "reshape(%a)" pp a
  | Reduce (Sum, a) -> Fmt.pf ppf "sum(%a)" pp a
  | Reduce (Prod, a) -> Fmt.pf ppf "prod(%a)" pp a
  | Reduce (Rmax, a) -> Fmt.pf ppf "rmax(%a)" pp a
  | Reduce (Rmin, a) -> Fmt.pf ppf "rmin(%a)" pp a
  | Contract (spec, es) ->
      Fmt.pf ppf "einsum[%s](%a)" spec Fmt.(list ~sep:(any ", ") pp) es

let to_string e = Fmt.str "%a" pp e
