(** Typed tensor-expression eDSL (the CFDlang / TeIL lineage of EVEREST).

    Expressions are built with smart constructors that perform shape
    inference eagerly, so ill-shaped programs are rejected at construction
    time — the "provably safe execution" the paper attributes to typed
    tensor languages.  An expression can be evaluated directly (reference
    semantics), cost-analyzed, or lowered to the tensor dialect of the IR
    ({!Lower}). *)

exception Shape_error of string

type binop = Add | Sub | Mul | Div | Max | Min
type unop = Relu | Sigmoid | Tanh | Exp | Neg | Sqrt
type reduction = Sum | Prod | Rmax | Rmin

(** An expression together with its inferred shape ([[]] = scalar). *)
type expr = { node : node; shape : int list }

and node =
  | Input of string
  | Const of float
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Scale of float * expr
  | Matmul of expr * expr
  | Transpose of expr
  | Reshape of expr
  | Reduce of reduction * expr
  | Contract of string * expr list  (** Einsum spec, e.g. ["ij,jk->ik"]. *)

val shape : expr -> int list
val num_elems : int list -> int

(** {2 Constructors} — all raise {!Shape_error} on shape mismatches. *)

val input : string -> int list -> expr
val const : ?shape:int list -> float -> expr
val scalar : float -> expr
val binop : binop -> expr -> expr -> expr
val add : expr -> expr -> expr
val sub : expr -> expr -> expr
val mul : expr -> expr -> expr
val div : expr -> expr -> expr
val max_ : expr -> expr -> expr
val min_ : expr -> expr -> expr

(** Infix elementwise operators. *)
module O : sig
  val ( + ) : expr -> expr -> expr
  val ( - ) : expr -> expr -> expr
  val ( * ) : expr -> expr -> expr
  val ( / ) : expr -> expr -> expr
end

val unop : unop -> expr -> expr
val relu : expr -> expr
val sigmoid : expr -> expr
val tanh_ : expr -> expr
val exp_ : expr -> expr
val neg : expr -> expr
val sqrt_ : expr -> expr
val scale : float -> expr -> expr
val matmul : expr -> expr -> expr
val transpose : expr -> expr
val reshape : int list -> expr -> expr
val reduce : reduction -> expr -> expr
val sum : expr -> expr

(** [contract spec operands] is an einsum-style contraction; extents are
    checked for consistency across operands. *)
val contract : string -> expr list -> expr

(** Free inputs with their shapes, in first-occurrence order, deduplicated. *)
val inputs : expr -> (string * int list) list

(** {2 Reference evaluation} *)

type tensor = { dims : int list; data : float array }

val tensor : int list -> float array -> tensor
val tensor_scalar : float -> tensor

(** [eval env e] evaluates [e] with named inputs from [env].
    @raise Shape_error on missing or ill-shaped inputs. *)
val eval : (string * tensor) list -> expr -> tensor

(** {2 Cost model} *)

(** Floating-point operations of one evaluation. *)
val flops : expr -> int

(** Bytes touched assuming each input read once and the output written once. *)
val bytes_moved : expr -> int

(** Arithmetic intensity (flops per byte): the key HW/SW partitioning driver. *)
val intensity : expr -> float

val depth : expr -> int
val node_count : expr -> int

(** Compact structural serialization (node kinds, operator payloads, input
    names, every shape): two expressions share a fingerprint iff they are
    structurally identical.  Used as the expression half of the compiler's
    estimation-cache keys. *)
val fingerprint : expr -> string

val pp : Format.formatter -> expr -> unit
val to_string : expr -> string
