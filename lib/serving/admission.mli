(** Per-tenant admission control: token buckets plus an SLO burn-rate
    gate.

    Every arrival first pays one token from its tenant's bucket (refilled
    continuously at [rate_rps], capped at [burst]); with no tokens left
    the request is rejected as [Rate_limited] instead of queueing forever.
    Admitted arrivals then pass the burn gate: when any of the tenant's
    {!Everest_observe.Slo} monitors is burning its error budget faster
    than [burn_threshold] on *both* the fast and slow windows — the same
    two-window rule the orchestrator alerts on — new arrivals are shed as
    [Slo_burning] until the windows recover.  The gate is pull-based
    (burn rates are recomputed against [~now] at every decision), so a
    throttled tenant is re-admitted as soon as the bad events age out of
    the slow window, even if it sent nothing in between. *)

type reason =
  | Rate_limited  (** Token bucket empty. *)
  | Slo_burning  (** Burn-rate gate closed for this tenant. *)
  | Overloaded  (** Every routable shard is at its queue bound. *)
  | Unavailable  (** No healthy shard (crashed or draining). *)

val reason_name : reason -> string

(** Every reason, in declaration order (e.g. for decoding a persisted
    {!reason_name} back to its constructor). *)
val all_reasons : reason list

type decision = Admit | Reject of reason

type bucket_config = {
  rate_rps : float;  (** Sustained admitted requests per second. *)
  burst : float;  (** Bucket capacity (maximum burst size). *)
}

(** Effectively unlimited; the default for tenants without a bucket. *)
val unlimited : bucket_config

type config = {
  buckets : (string * bucket_config) list;  (** Per-tenant overrides. *)
  default_bucket : bucket_config;
  burn_threshold : float;
      (** Shed when both burn-rate windows exceed this; <= 0 disables the
          gate. *)
}

val default_config : config

type t

(** [create config ~tenants ~monitors] readies one bucket per tenant;
    [monitors tenant] returns the SLO monitors whose burn rates gate that
    tenant (typically the fabric's per-tenant monitors). *)
val create :
  config ->
  tenants:string list ->
  monitors:(string -> Everest_observe.Slo.monitor list) ->
  t

(** Decide one arrival at [now]; [Admit] consumes a token. *)
val decide : t -> tenant:string -> now:float -> decision

val admitted : t -> tenant:string -> int
val rejected : t -> tenant:string -> int

(** Rejections recorded by {!decide}, plus any routing-stage rejections
    reported through {!note_rejection}. *)
val note_rejection : t -> tenant:string -> reason -> unit

(** (reason, count) pairs for one tenant, in declaration order of
    {!reason}; zero-count reasons included. *)
val rejections_by_reason : t -> tenant:string -> (reason * int) list

(** {2 Checkpoint / restore} *)

(** Per-tenant bucket fill and decision counters.  Monitors are shared
    with the fabric and restored there. *)
type tenant_persisted = {
  tp_tenant : string;
  tp_tokens : float;
  tp_last : float;
  tp_admitted : int;
  tp_rejected : (reason * int) list;
}

val export : t -> tenant_persisted list
val import : t -> tenant_persisted list -> unit
