(* Per-key pending queues in insertion order (association list: key counts
   are tiny and deterministic iteration matters for reproducibility). *)

type config = {
  max_batch : int;
  max_delay_s : float;
  marginal_cost : float;
}

let default_config = { max_batch = 8; max_delay_s = 0.005; marginal_cost = 0.25 }

type batch = {
  b_key : string;
  b_requests : Workload.request list;
  b_formed_s : float;
}

let size b = List.length b.b_requests

let service_time config ~single_s ~size =
  single_s *. (1.0 +. (config.marginal_cost *. float_of_int (size - 1)))

type pending = {
  mutable p_requests : Workload.request list;  (* newest first *)
  mutable p_oldest_s : float;  (* arrival of the oldest member *)
}

type t = {
  t_config : config;
  mutable t_keys : (string * pending) list;  (* insertion order *)
  mutable t_pending : int;
}

let create config =
  if config.max_batch <= 0 then invalid_arg "Batcher.create: max_batch <= 0";
  if config.max_delay_s < 0.0 then invalid_arg "Batcher.create: max_delay_s < 0";
  if config.marginal_cost < 0.0 || config.marginal_cost > 1.0 then
    invalid_arg "Batcher.create: marginal_cost outside [0, 1]";
  { t_config = config; t_keys = []; t_pending = 0 }

let pending t = t.t_pending

let take t key p ~now =
  t.t_keys <- List.filter (fun (k, _) -> not (String.equal k key)) t.t_keys;
  t.t_pending <- t.t_pending - List.length p.p_requests;
  { b_key = key; b_requests = List.rev p.p_requests; b_formed_s = now }

let add t ~now (rq : Workload.request) =
  let key = rq.Workload.rq_kernel in
  let p =
    match List.assoc_opt key t.t_keys with
    | Some p -> p
    | None ->
        let p = { p_requests = []; p_oldest_s = now } in
        t.t_keys <- t.t_keys @ [ (key, p) ];
        p
  in
  if p.p_requests = [] then p.p_oldest_s <- now;
  p.p_requests <- rq :: p.p_requests;
  t.t_pending <- t.t_pending + 1;
  if List.length p.p_requests >= t.t_config.max_batch then
    Some (take t key p ~now)
  else None

let flush_due t ~now =
  let due, keep =
    List.partition
      (fun (_, p) -> now -. p.p_oldest_s >= t.t_config.max_delay_s)
      t.t_keys
  in
  ignore keep;
  List.map
    (fun (key, p) -> take t key p ~now)
    due

let flush_oldest t ~now =
  match t.t_keys with
  | [] -> None
  | keys ->
      let key, p =
        List.fold_left
          (fun (bk, bp) (k, p) ->
            if p.p_oldest_s < bp.p_oldest_s then (k, p) else (bk, bp))
          (List.hd keys) (List.tl keys)
      in
      Some (take t key p ~now)

let oldest_age t ~now =
  List.fold_left
    (fun acc (_, p) -> Float.max acc (now -. p.p_oldest_s))
    0.0 t.t_keys

let next_deadline t =
  List.fold_left
    (fun acc (_, p) ->
      let d = p.p_oldest_s +. t.t_config.max_delay_s in
      match acc with Some a when a <= d -> acc | _ -> Some d)
    None t.t_keys

(* Checkpoint/restore: per-key accumulators exactly as stored (requests
   newest first, keys in insertion order) so a restored batcher forms the
   same batches in the same order. *)
let export t =
  List.map
    (fun (key, p) -> (key, p.p_oldest_s, p.p_requests))
    t.t_keys

let import t entries =
  t.t_keys <-
    List.map
      (fun (key, oldest, requests) ->
        (key, { p_requests = requests; p_oldest_s = oldest }))
      entries;
  t.t_pending <-
    List.fold_left (fun acc (_, _, rs) -> acc + List.length rs) 0 entries
