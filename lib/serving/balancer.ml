(* Routing policies over shard ids [0, n).  The consistent-hash ring is
   materialized once at creation: [vnodes] points per shard, sorted by the
   stable hash of "shard<i>@<v>"; lookup walks the ring clockwise from the
   tenant's hash to the first routable shard. *)

type policy =
  | Round_robin
  | Least_outstanding
  | Tenant_affinity of { vnodes : int }

let policy_name = function
  | Round_robin -> "round-robin"
  | Least_outstanding -> "least-outstanding"
  | Tenant_affinity _ -> "tenant-affinity"

let policy_of_string = function
  | "rr" | "round-robin" -> Some Round_robin
  | "lo" | "least-outstanding" -> Some Least_outstanding
  | "affinity" | "tenant-affinity" -> Some (Tenant_affinity { vnodes = 64 })
  | _ -> None

type t = {
  b_policy : policy;
  b_n : int;
  mutable b_cursor : int;  (* round-robin position *)
  b_ring : (int * int) array;  (* (point, shard), sorted by point *)
}

let create policy ~n_shards =
  if n_shards <= 0 then invalid_arg "Balancer.create: n_shards <= 0";
  let ring =
    match policy with
    | Tenant_affinity { vnodes } ->
        if vnodes <= 0 then invalid_arg "Balancer.create: vnodes <= 0";
        let pts =
          Array.init (n_shards * vnodes) (fun i ->
              let shard = i / vnodes and v = i mod vnodes in
              ( Workload.stable_hash
                  (Printf.sprintf "shard%d@%d" shard v),
                shard ))
        in
        Array.sort compare pts;
        pts
    | _ -> [||]
  in
  { b_policy = policy; b_n = n_shards; b_cursor = 0; b_ring = ring }

let n_shards t = t.b_n

(* First ring index whose point is >= h (binary search, wrapping to 0). *)
let ring_start ring h =
  let n = Array.length ring in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst ring.(mid) < h then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let ring_route t ~tenant ~routable =
  let n = Array.length t.b_ring in
  if n = 0 then None
  else begin
    let start = ring_start t.b_ring (Workload.stable_hash tenant) in
    let rec walk i seen =
      if seen >= n then None
      else
        let shard = snd t.b_ring.((start + i) mod n) in
        if routable shard then Some shard else walk (i + 1) (seen + 1)
    in
    walk 0 0
  end

let route t ~tenant ~routable ~outstanding =
  match t.b_policy with
  | Round_robin ->
      let rec scan i =
        if i >= t.b_n then None
        else
          let shard = (t.b_cursor + i) mod t.b_n in
          if routable shard then begin
            t.b_cursor <- (shard + 1) mod t.b_n;
            Some shard
          end
          else scan (i + 1)
      in
      scan 0
  | Least_outstanding ->
      let best = ref None in
      for s = 0 to t.b_n - 1 do
        if routable s then
          match !best with
          | Some b when outstanding s >= outstanding b -> ()
          | _ -> best := Some s
      done;
      !best
  | Tenant_affinity _ -> ring_route t ~tenant ~routable

(* Checkpoint/restore: the round-robin cursor is the only mutable state;
   the ring is rebuilt deterministically from the policy. *)
let cursor t = t.b_cursor
let set_cursor t c = t.b_cursor <- if t.b_n > 0 then ((c mod t.b_n) + t.b_n) mod t.b_n else 0

let affinity_home t ~tenant =
  match t.b_policy with
  | Tenant_affinity _ -> ring_route t ~tenant ~routable:(fun _ -> true)
  | _ -> None
