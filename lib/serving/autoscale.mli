(** HyperQueue-style worker auto-allocation for one shard.

    A worker is one concurrent execution slot against the shard's
    orchestrator.  A periodic control tick compares the shard's backlog
    (queued requests and the age of the oldest one) against the worker
    pool and decides to spawn or retire:

    - spawn when backlog per effective worker (live + already requested)
      exceeds [target_queue_per_worker], or the oldest queued request has
      waited past [max_backlog_age_s] — enough workers are requested to
      bring backlog per worker back to target, capped at [max_workers].
      Spawns take [spawn_delay_s] to come up, modelling cluster
      allocation, so the controller counts in-flight requests and does
      not over-spawn while waiting.
    - retire one worker after [retire_idle_ticks] consecutive idle ticks
      (no backlog and spare capacity), down to [min_workers] — capacity
      tracks demand in both directions. *)

type config = {
  min_workers : int;
  max_workers : int;
  target_queue_per_worker : float;
  max_backlog_age_s : float;
  spawn_delay_s : float;
  retire_idle_ticks : int;
  tick_s : float;  (** Control-loop period on the fabric clock. *)
}

val default_config : config

(** [fixed n]: autoscaling disabled, exactly [n] workers. *)
val fixed : int -> config

type action = Spawn of int | Retire | Hold

type t

val create : config -> t

(** Live workers (spawned and not retired). *)
val workers : t -> int

(** Live + requested-but-not-yet-up. *)
val effective_workers : t -> int

val spawned_total : t -> int
val retired_total : t -> int

(** One control tick.  [Spawn n] means the caller must arrange for
    {!worker_up} to run [n] times after [spawn_delay_s]; [Retire] has
    already taken effect. *)
val tick : t -> depth:int -> busy:int -> backlog_age_s:float -> action

(** A requested worker came up. *)
val worker_up : t -> unit

(** {2 Checkpoint / restore} *)

(** The controller's five mutable counters.  [p_requested] must stay
    consistent with the Spawn events the fabric re-inserts at restore. *)
type persisted = {
  p_workers : int;
  p_requested : int;
  p_idle_ticks : int;
  p_spawned : int;
  p_retired : int;
}

val export : t -> persisted
val import : t -> persisted -> unit
