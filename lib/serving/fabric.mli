(** The serving fabric: N orchestrator shards behind admission control, a
    balancer, per-shard batchers and auto-allocated worker pools, driven
    by a seeded workload on one fabric-level simulated clock.

    The fabric owns a {!Everest_platform.Desim} clock for arrivals,
    queueing and concurrency; each shard's orchestrator (with its private
    cluster clock) acts as the service-time oracle — a batch executes
    there once and the measured latency, scaled by the batcher's
    amortization model, becomes the batch's service time on the fabric
    clock.  Every decision — workload sample paths, admission, routing,
    batching, scaling, fault verdicts — derives from the config seed and
    plan, so same-seed runs produce byte-identical request logs
    ({!render_log}) and SLO outcomes.

    Resilience wiring: [faults] is a fault plan over shard names
    ([shard0], [shard1], …) evaluated on the fabric clock.  Requests are
    never routed to a dead or breaker-draining shard; queued work on such
    a shard drains to its siblings at the next control tick, and work
    in flight when a shard dies fails and is re-routed (bounded by
    [max_reroutes]). *)

module Slo = Everest_observe.Slo
module Orch = Everest_runtime.Orchestrator

type config = {
  n_shards : int;
  seed : int;  (** Workload seed (fault verdicts come from [faults]). *)
  balancer : Balancer.policy;
  admission : Admission.config;
  batcher : Batcher.config;
  autoscale : Autoscale.config;
  faults : Everest_resilience.Faults.t;  (** Over shard names, fabric time. *)
  max_reroutes : int;  (** Cross-shard retries after a failed execution. *)
  max_queue : int;  (** Per-shard backpressure bound (queued requests). *)
  tenant_slos : Slo.spec list;
      (** Objective template instantiated per tenant (names prefixed with
          the tenant). *)
  alert : Slo.alert_config;
  orch_policy : Orch.policy;  (** Variant selection inside each shard. *)
  orch_max_attempts : int;  (** In-shard retry budget per execution. *)
}

val default_config : n_shards:int -> config

type outcome = Served | Rejected of Admission.reason | Failed of string

type served_request = {
  sr_id : int;
  sr_tenant : string;
  sr_kernel : string;
  sr_shard : int;  (** Shard that resolved it; -1 when rejected. *)
  sr_arrival_s : float;
  sr_done_s : float;
  sr_latency_s : float;  (** done - arrival; 0 for rejections. *)
  sr_outcome : outcome;
  sr_batch : int;  (** Size of the batch that served it (0 if none). *)
  sr_attempts : int;  (** Times routed (1 + re-routes). *)
  sr_variant : string;  (** Variant that served it; "-" otherwise. *)
  sr_degraded : bool;  (** Orchestrator degraded the pick to software. *)
}

type tenant_report = {
  tr_tenant : string;
  tr_requests : int;
  tr_served : int;
  tr_failed : int;
  tr_shed : (Admission.reason * int) list;
  tr_slos : Slo.result list;  (** Batch verdicts over the tenant's log. *)
  tr_alerts : int;  (** Burn-rate alert rising edges during the run. *)
}

type shard_report = {
  sh_id : int;
  sh_served : int;
  sh_failed : int;
  sh_batches : int;
  sh_batched_requests : int;
  sh_workers : int;  (** Final worker count. *)
  sh_peak_workers : int;
}

type result = {
  f_config : config;
  f_horizon_s : float;
  f_makespan_s : float;  (** Last resolution time. *)
  f_log : served_request list;  (** Sorted by request id. *)
  f_tenants : tenant_report list;
  f_shards : shard_report list;
  f_spawned : int;
  f_retired : int;
  f_reroutes : int;
}

(** {2 Crash recovery}

    With recovery enabled, the fabric write-ahead journals every event it
    fires and snapshots its complete resumable state at control-tick
    boundaries.  After a crash, {!resume} restores the newest valid
    snapshot, replay-verifies the journal tail (each re-derived event is
    byte-compared against its journaled record) and finishes the run —
    producing a result byte-identical ({!render_log}, {!render_slos},
    {!render_summary}) to the uninterrupted same-seed run. *)

type recovery = {
  rv_store : Everest_recovery.Store.t;
  rv_snapshot_every_s : float;
      (** Minimum simulated time between snapshots (taken at the first
          control tick past due). *)
}

(** What {!resume} restored: which snapshot anchored the resume, how many
    newer snapshots were rejected (and why), and how much journal tail
    was replay-verified. *)
type restore_report = {
  rr_snapshot_index : int;
  rr_fallbacks : int;
  rr_skipped : (int * string) list;
  rr_replayed : int;
  rr_torn_tail : bool;
}

(** Identity of a run for store compatibility checks: a digest of
    (config, tenant names/kernels/arrival processes, horizon).  Tenant
    feature functions are code, not state, and are excluded. *)
val fingerprint : config -> tenants:Workload.tenant list -> horizon:float -> string

(** Run the workload through the fleet.  [deploy] installs kernels on
    every shard's orchestrator; [registry] receives the [serving_*]
    fabric metrics (default {!Everest_telemetry.Metrics.default}).
    [recovery] enables journaling + snapshotting into the given store;
    {!Everest_recovery.Journal.Crashed} escapes if a crash was armed with
    {!Everest_recovery.Store.arm_crash}.

    [watch] attaches a strictly read-only observer: the metrics registry
    and live fabric gauges (queue depth, busy workers, alive shards,
    outstanding) are scraped on control ticks, per-request latencies feed
    its ["latency"] windowed sketch, and a final scrape follows the run.
    Watching never schedules events or feeds back, so a watched run is
    byte-identical to the unwatched same-seed run. *)
val run :
  ?registry:Everest_telemetry.Metrics.registry ->
  ?recovery:recovery ->
  ?watch:Everest_watch.Watch.t ->
  config ->
  deploy:(Orch.t -> unit) ->
  tenants:Workload.tenant list ->
  horizon:float ->
  result

(** Restore from the newest valid snapshot in [recovery.rv_store],
    replay-verify the journal tail and finish the run.  The store must
    have been written by {!run} under the same (config, tenants, deploy,
    horizon).
    @raise Everest_recovery.Store.Recovery_error when no valid snapshot
    survives, the snapshot does not match the freshly built fabric, or
    replay diverges from the journal. *)
val resume :
  ?registry:Everest_telemetry.Metrics.registry ->
  ?watch:Everest_watch.Watch.t ->
  recovery:recovery ->
  config ->
  deploy:(Orch.t -> unit) ->
  tenants:Workload.tenant list ->
  horizon:float ->
  result * restore_report

(** {2 Summary accessors} *)

val served_ok : result -> int
val failed : result -> int
val shed : result -> int

(** Served / (served + failed): success over admitted traffic. *)
val availability : result -> float

(** Served requests per second of horizon. *)
val throughput_rps : result -> float

(** Latencies of served requests, in completion order. *)
val latencies : result -> float list

(** Exact empirical quantile (nearest rank) of served latencies. *)
val latency_quantile : result -> float -> float

(** Requests that shared a batch with at least one other request. *)
val batched_requests : result -> int

(** {2 Deterministic rendering (byte-identity checks)} *)

(** One line per request, by id, with fixed-precision times — two
    same-seed runs must render identically. *)
val render_log : result -> string

(** Per-tenant SLO verdicts in a deterministic textual form. *)
val render_slos : result -> string

(** Human-readable run summary (CLI/bench). *)
val render_summary : result -> string

(** A demo deployment for drills and tests: each kernel gets a fast
    hardware variant and a software fallback with seeded tuner
    knowledge, mirroring the chaos/observe drill kernel. *)
val demo_deploy :
  ?kernels:string list ->
  ?breaker:Everest_resilience.Breaker.config ->
  unit ->
  Orch.t ->
  unit
