(* Allocation controller state; the fabric owns the clock and schedules
   both the periodic ticks and the delayed [worker_up] callbacks. *)

type config = {
  min_workers : int;
  max_workers : int;
  target_queue_per_worker : float;
  max_backlog_age_s : float;
  spawn_delay_s : float;
  retire_idle_ticks : int;
  tick_s : float;
}

let default_config =
  { min_workers = 1; max_workers = 8; target_queue_per_worker = 4.0;
    max_backlog_age_s = 0.02; spawn_delay_s = 0.05; retire_idle_ticks = 5;
    tick_s = 0.01 }

let fixed n =
  if n <= 0 then invalid_arg "Autoscale.fixed: n <= 0";
  { default_config with min_workers = n; max_workers = n }

type action = Spawn of int | Retire | Hold

type t = {
  t_config : config;
  mutable t_workers : int;
  mutable t_requested : int;  (* spawns in flight *)
  mutable t_idle_ticks : int;
  mutable t_spawned : int;
  mutable t_retired : int;
}

let create config =
  if config.min_workers <= 0 || config.max_workers < config.min_workers then
    invalid_arg "Autoscale.create: bad worker bounds";
  if config.target_queue_per_worker <= 0.0 then
    invalid_arg "Autoscale.create: target_queue_per_worker <= 0";
  { t_config = config; t_workers = config.min_workers; t_requested = 0;
    t_idle_ticks = 0; t_spawned = 0; t_retired = 0 }

let workers t = t.t_workers
let effective_workers t = t.t_workers + t.t_requested
let spawned_total t = t.t_spawned
let retired_total t = t.t_retired

let tick t ~depth ~busy ~backlog_age_s =
  let c = t.t_config in
  let effective = effective_workers t in
  let overloaded =
    float_of_int depth > c.target_queue_per_worker *. float_of_int effective
    || (depth > 0 && backlog_age_s > c.max_backlog_age_s)
  in
  if overloaded && effective < c.max_workers then begin
    t.t_idle_ticks <- 0;
    let wanted =
      int_of_float
        (Float.ceil (float_of_int depth /. c.target_queue_per_worker))
    in
    let n = min (c.max_workers - effective) (max 1 (wanted - effective)) in
    t.t_requested <- t.t_requested + n;
    Spawn n
  end
  else if depth = 0 && busy < t.t_workers && t.t_requested = 0 then begin
    t.t_idle_ticks <- t.t_idle_ticks + 1;
    if t.t_idle_ticks >= c.retire_idle_ticks && t.t_workers > c.min_workers
    then begin
      t.t_idle_ticks <- 0;
      t.t_workers <- t.t_workers - 1;
      t.t_retired <- t.t_retired + 1;
      Retire
    end
    else Hold
  end
  else begin
    t.t_idle_ticks <- 0;
    Hold
  end

let worker_up t =
  if t.t_requested <= 0 then invalid_arg "Autoscale.worker_up: none requested";
  t.t_requested <- t.t_requested - 1;
  t.t_workers <- min t.t_config.max_workers (t.t_workers + 1);
  t.t_spawned <- t.t_spawned + 1

(* Checkpoint/restore: the five mutable counters.  [t_requested] must be
   restored consistently with the pending Spawn events the fabric
   re-inserts, which the snapshot guarantees by capturing both at the
   same instant. *)
type persisted = {
  p_workers : int;
  p_requested : int;
  p_idle_ticks : int;
  p_spawned : int;
  p_retired : int;
}

let export t =
  { p_workers = t.t_workers; p_requested = t.t_requested;
    p_idle_ticks = t.t_idle_ticks; p_spawned = t.t_spawned;
    p_retired = t.t_retired }

let import t p =
  t.t_workers <- p.p_workers;
  t.t_requested <- p.p_requested;
  t.t_idle_ticks <- p.p_idle_ticks;
  t.t_spawned <- p.p_spawned;
  t.t_retired <- p.p_retired
