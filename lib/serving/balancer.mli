(** Pluggable request routing over N orchestrator shards.

    Policies:
    - [Round_robin] — cycle a cursor, skipping unroutable shards.
    - [Least_outstanding] — fewest queued + in-flight requests (lowest
      shard id on ties), the classic join-shortest-queue heuristic.
    - [Tenant_affinity] — consistent hashing of the tenant name onto a
      ring of [vnodes] virtual points per shard, so a tenant keeps
      hitting the same shard (its tuner knowledge and [Estimate_cache]
      entries stay shard-local) and adding or removing shards only remaps
      the tenants adjacent to the moved ring points.  Unroutable shards
      are passed over by walking the ring, so affinity degrades to
      next-on-ring during incidents instead of failing.

    The balancer itself is stateless apart from the round-robin cursor;
    health and load are supplied per decision so routing always sees the
    current fabric state. *)

type policy =
  | Round_robin
  | Least_outstanding
  | Tenant_affinity of { vnodes : int }

val policy_name : policy -> string

(** Parse ["rr" | "round-robin" | "lo" | "least-outstanding" |
    "affinity"]. *)
val policy_of_string : string -> policy option

type t

val create : policy -> n_shards:int -> t
val n_shards : t -> int

(** Pick a shard for [tenant]; [routable] filters shards (healthy and
    below their queue bound), [outstanding] reports queued + in-flight
    load.  [None] when no shard is routable. *)
val route :
  t ->
  tenant:string ->
  routable:(int -> bool) ->
  outstanding:(int -> int) ->
  int option

(** The shard a tenant maps to on an all-healthy ring ([Tenant_affinity]
    only); exposed for remap analysis in tests. *)
val affinity_home : t -> tenant:string -> int option

(** {2 Checkpoint / restore} *)

(** Round-robin cursor — the only mutable routing state; the hash ring
    is rebuilt deterministically from the policy. *)
val cursor : t -> int

val set_cursor : t -> int -> unit
