(* Token buckets + SLO burn-rate gate; see the interface for the model.

   State is an association list keyed by tenant name (tenant counts are
   small and iteration order must be deterministic for the byte-identity
   checks, which rules out hash tables). *)

module Slo = Everest_observe.Slo

type reason = Rate_limited | Slo_burning | Overloaded | Unavailable

let reason_name = function
  | Rate_limited -> "rate-limited"
  | Slo_burning -> "slo-burning"
  | Overloaded -> "overloaded"
  | Unavailable -> "unavailable"

let all_reasons = [ Rate_limited; Slo_burning; Overloaded; Unavailable ]

type decision = Admit | Reject of reason

type bucket_config = { rate_rps : float; burst : float }

let unlimited = { rate_rps = infinity; burst = infinity }

type config = {
  buckets : (string * bucket_config) list;
  default_bucket : bucket_config;
  burn_threshold : float;
}

let default_config =
  { buckets = []; default_bucket = unlimited; burn_threshold = 2.0 }

type bucket = {
  b_config : bucket_config;
  mutable b_tokens : float;
  mutable b_last : float;
}

type tenant_state = {
  ts_bucket : bucket;
  ts_monitors : Slo.monitor list;
  mutable ts_admitted : int;
  mutable ts_rejected : (reason * int) list;
}

type t = { a_config : config; a_tenants : (string * tenant_state) list }

let create config ~tenants ~monitors =
  let mk name =
    let bc =
      match List.assoc_opt name config.buckets with
      | Some b -> b
      | None -> config.default_bucket
    in
    if bc.rate_rps <= 0.0 || bc.burst <= 0.0 then
      invalid_arg ("Admission.create: non-positive bucket for " ^ name);
    ( name,
      { ts_bucket = { b_config = bc; b_tokens = bc.burst; b_last = 0.0 };
        ts_monitors = monitors name;
        ts_admitted = 0;
        ts_rejected = List.map (fun r -> (r, 0)) all_reasons } )
  in
  { a_config = config; a_tenants = List.map mk tenants }

let state t tenant =
  match List.assoc_opt tenant t.a_tenants with
  | Some s -> s
  | None -> invalid_arg ("Admission: unknown tenant " ^ tenant)

let refill b ~now =
  let dt = Float.max 0.0 (now -. b.b_last) in
  b.b_last <- Float.max b.b_last now;
  if Float.is_finite b.b_config.burst then
    b.b_tokens <-
      Float.min b.b_config.burst (b.b_tokens +. (dt *. b.b_config.rate_rps))

let take_token b ~now =
  refill b ~now;
  if not (Float.is_finite b.b_config.burst) then true
  else if b.b_tokens >= 1.0 then begin
    b.b_tokens <- b.b_tokens -. 1.0;
    true
  end
  else false

(* The gate closes only when some monitor burns on both windows, mirroring
   the alerting rule — a short blip throttles nobody. *)
let burning t ts ~now =
  t.a_config.burn_threshold > 0.0
  && List.exists
       (fun m ->
         let fast, slow = Slo.burn_rates m ~now in
         fast >= t.a_config.burn_threshold
         && slow >= t.a_config.burn_threshold)
       ts.ts_monitors

let bump ts reason =
  ts.ts_rejected <-
    List.map
      (fun (r, n) -> if r = reason then (r, n + 1) else (r, n))
      ts.ts_rejected

let decide t ~tenant ~now =
  let ts = state t tenant in
  if not (take_token ts.ts_bucket ~now) then begin
    bump ts Rate_limited;
    Reject Rate_limited
  end
  else if burning t ts ~now then begin
    bump ts Slo_burning;
    Reject Slo_burning
  end
  else begin
    ts.ts_admitted <- ts.ts_admitted + 1;
    Admit
  end

let admitted t ~tenant = (state t tenant).ts_admitted

let rejected t ~tenant =
  List.fold_left (fun acc (_, n) -> acc + n) 0 (state t tenant).ts_rejected

let note_rejection t ~tenant reason = bump (state t tenant) reason
let rejections_by_reason t ~tenant = (state t tenant).ts_rejected

(* Checkpoint/restore: per-tenant bucket fill and decision counters, in
   [a_tenants] order.  Monitors are shared with the fabric and restored
   there. *)
type tenant_persisted = {
  tp_tenant : string;
  tp_tokens : float;
  tp_last : float;
  tp_admitted : int;
  tp_rejected : (reason * int) list;
}

let export t =
  List.map
    (fun (name, ts) ->
      { tp_tenant = name; tp_tokens = ts.ts_bucket.b_tokens;
        tp_last = ts.ts_bucket.b_last; tp_admitted = ts.ts_admitted;
        tp_rejected = ts.ts_rejected })
    t.a_tenants

let import t persisted =
  List.iter
    (fun tp ->
      let ts = state t tp.tp_tenant in
      ts.ts_bucket.b_tokens <- tp.tp_tokens;
      ts.ts_bucket.b_last <- tp.tp_last;
      ts.ts_admitted <- tp.tp_admitted;
      ts.ts_rejected <- tp.tp_rejected)
    persisted
