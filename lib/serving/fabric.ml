(* The serving fabric's event loop.  See the interface for the model; the
   implementation notes here cover the invariants:

   - Fabric time is one Desim engine: arrival events (pre-generated
     open-loop requests, closed-loop continuations), batch completions,
     deadline flushes, autoscale ticks and delayed worker spawns all
     queue there.  Desim breaks ties by insertion order, so the whole
     run is a deterministic function of (config, tenants, horizon).
   - [outstanding] counts admitted-but-unresolved requests and
     [arrivals_pending] counts scheduled-but-unhandled arrival events;
     the autoscale tick re-arms only while either is positive, which is
     what lets the simulation drain and terminate.
   - Every request resolves exactly once ([resolve]), which also drives
     the per-tenant SLO monitors and the closed-loop continuation. *)

module Slo = Everest_observe.Slo
module Orch = Everest_runtime.Orchestrator
module Desim = Everest_platform.Desim
module Faults = Everest_resilience.Faults
module Metrics = Everest_telemetry.Metrics

type config = {
  n_shards : int;
  seed : int;
  balancer : Balancer.policy;
  admission : Admission.config;
  batcher : Batcher.config;
  autoscale : Autoscale.config;
  faults : Faults.t;
  max_reroutes : int;
  max_queue : int;
  tenant_slos : Slo.spec list;
  alert : Slo.alert_config;
  orch_policy : Orch.policy;
  orch_max_attempts : int;
}

let default_config ~n_shards =
  { n_shards; seed = 7; balancer = Balancer.Least_outstanding;
    admission = Admission.default_config;
    batcher = Batcher.default_config;
    autoscale = Autoscale.default_config;
    faults = Faults.none; max_reroutes = 3; max_queue = 64;
    tenant_slos =
      [ Slo.availability "availability" 0.99;
        Slo.latency "p99-latency" ~q:0.99 ~limit_s:0.05 ];
    alert = Slo.default_alert; orch_policy = Orch.Adaptive;
    orch_max_attempts = 3 }

type outcome = Served | Rejected of Admission.reason | Failed of string

type served_request = {
  sr_id : int;
  sr_tenant : string;
  sr_kernel : string;
  sr_shard : int;
  sr_arrival_s : float;
  sr_done_s : float;
  sr_latency_s : float;
  sr_outcome : outcome;
  sr_batch : int;
  sr_attempts : int;
  sr_variant : string;
  sr_degraded : bool;
}

type tenant_report = {
  tr_tenant : string;
  tr_requests : int;
  tr_served : int;
  tr_failed : int;
  tr_shed : (Admission.reason * int) list;
  tr_slos : Slo.result list;
  tr_alerts : int;
}

type shard_report = {
  sh_id : int;
  sh_served : int;
  sh_failed : int;
  sh_batches : int;
  sh_batched_requests : int;
  sh_workers : int;
  sh_peak_workers : int;
}

type result = {
  f_config : config;
  f_horizon_s : float;
  f_makespan_s : float;
  f_log : served_request list;
  f_tenants : tenant_report list;
  f_shards : shard_report list;
  f_spawned : int;
  f_retired : int;
  f_reroutes : int;
}

(* ---- run ------------------------------------------------------------------------ *)

type state = {
  st_config : config;
  st_sim : Desim.t;
  st_shards : Shard.t array;
  st_balancer : Balancer.t;
  st_admission : Admission.t;
  st_monitors : (string * Slo.monitor list) list;  (* per tenant *)
  st_users : Workload.closed_user list;
  st_horizon : float;
  st_registry : Metrics.registry;
  mutable st_log : served_request list;  (* newest first *)
  mutable st_outstanding : int;  (* admitted, not yet resolved *)
  mutable st_arrivals_pending : int;  (* scheduled arrival events *)
  mutable st_next_id : int;
  mutable st_reroutes : int;
  st_failures : (int, int) Hashtbl.t;  (* request id -> failed executions *)
}

let shard_alive st sid ~now =
  not
    (Faults.node_dead st.st_config.faults
       ~node:st.st_shards.(sid).Shard.s_name ~now)

let routable st sid ~now =
  let shard = st.st_shards.(sid) in
  shard_alive st sid ~now
  && (not (Shard.draining shard))
  && Shard.depth shard < st.st_config.max_queue

let tenant_monitors st tenant =
  Option.value ~default:[] (List.assoc_opt tenant st.st_monitors)

let counter st ?labels name = Metrics.counter ~registry:st.st_registry ?labels name

(* Resolve one request exactly once: log it, feed the tenant's SLO
   monitors (service outcomes only — rejections are accounted at the
   door, not against the service SLOs), keep the closed-loop user going. *)
let rec resolve st (rq : Workload.request) ~shard ~outcome ~batch ~variant
    ~degraded =
  let now = Desim.now st.st_sim in
  let attempts = 1 + Option.value ~default:0 (Hashtbl.find_opt st.st_failures rq.Workload.rq_id) in
  let latency =
    match outcome with
    | Rejected _ -> 0.0
    | Served | Failed _ -> now -. rq.Workload.rq_arrival_s
  in
  st.st_log <-
    { sr_id = rq.Workload.rq_id; sr_tenant = rq.Workload.rq_tenant;
      sr_kernel = rq.Workload.rq_kernel; sr_shard = shard;
      sr_arrival_s = rq.Workload.rq_arrival_s; sr_done_s = now;
      sr_latency_s = latency; sr_outcome = outcome; sr_batch = batch;
      sr_attempts = attempts; sr_variant = variant; sr_degraded = degraded }
    :: st.st_log;
  (match outcome with
  | Served ->
      Metrics.inc
        (counter st ~labels:[ ("tenant", rq.Workload.rq_tenant) ]
           "serving_served_total");
      Metrics.observe
        (Metrics.histogram ~registry:st.st_registry
           ~labels:[ ("tenant", rq.Workload.rq_tenant) ]
           "serving_latency_s")
        latency;
      List.iter
        (fun m -> Slo.observe m ~now ~latency_s:latency ~ok:true ())
        (tenant_monitors st rq.Workload.rq_tenant);
      st.st_outstanding <- st.st_outstanding - 1
  | Failed _ ->
      Metrics.inc
        (counter st ~labels:[ ("tenant", rq.Workload.rq_tenant) ]
           "serving_failed_total");
      List.iter
        (fun m -> Slo.observe m ~now ~latency_s:latency ~ok:false ())
        (tenant_monitors st rq.Workload.rq_tenant);
      st.st_outstanding <- st.st_outstanding - 1
  | Rejected reason ->
      Metrics.inc
        (counter st
           ~labels:
             [ ("tenant", rq.Workload.rq_tenant);
               ("reason", Admission.reason_name reason) ]
           "serving_shed_total"));
  (* closed-loop continuation: the user thinks, then asks again *)
  if rq.Workload.rq_user >= 0 then
    match
      List.find_opt
        (fun u ->
          String.equal (Workload.user_tenant u) rq.Workload.rq_tenant
          && Workload.user_index u = rq.Workload.rq_user)
        st.st_users
    with
    | None -> ()
    | Some u ->
        let t_next = now +. Workload.next_think u in
        if t_next < st.st_horizon then begin
          let seq = rq.Workload.rq_seq + 1 in
          let next =
            { Workload.rq_id = st.st_next_id;
              rq_tenant = rq.Workload.rq_tenant;
              rq_kernel = rq.Workload.rq_kernel;
              rq_user = rq.Workload.rq_user; rq_seq = seq;
              rq_arrival_s = t_next;
              rq_features = Workload.user_features u seq }
          in
          st.st_next_id <- st.st_next_id + 1;
          st.st_arrivals_pending <- st.st_arrivals_pending + 1;
          Desim.at st.st_sim t_next (fun () -> handle_arrival st next ~fresh:true)
        end

(* Route and enqueue one request.  [fresh] arrivals pass admission;
   re-routed requests were already admitted.  Unroutable re-routes fail
   (they hold no queue slot anywhere), unroutable fresh arrivals are shed
   with a typed reason. *)
and handle_arrival st (rq : Workload.request) ~fresh =
  let now = Desim.now st.st_sim in
  if fresh then begin
    st.st_arrivals_pending <- st.st_arrivals_pending - 1;
    Metrics.inc
      (counter st ~labels:[ ("tenant", rq.Workload.rq_tenant) ]
         "serving_requests_total")
  end;
  let admitted =
    if not fresh then true
    else
      match Admission.decide st.st_admission ~tenant:rq.Workload.rq_tenant ~now with
      | Admission.Admit ->
          st.st_outstanding <- st.st_outstanding + 1;
          true
      | Admission.Reject reason ->
          resolve st rq ~shard:(-1) ~outcome:(Rejected reason) ~batch:0
            ~variant:"-" ~degraded:false;
          false
  in
  if admitted then begin
    match
      Balancer.route st.st_balancer ~tenant:rq.Workload.rq_tenant
        ~routable:(fun sid -> routable st sid ~now)
        ~outstanding:(fun sid -> Shard.outstanding st.st_shards.(sid))
    with
    | Some sid -> enqueue st sid rq
    | None ->
        let any_healthy =
          let ok = ref false in
          for sid = 0 to st.st_config.n_shards - 1 do
            if
              shard_alive st sid ~now
              && not (Shard.draining st.st_shards.(sid))
            then ok := true
          done;
          !ok
        in
        let reason =
          if any_healthy then Admission.Overloaded else Admission.Unavailable
        in
        if fresh then begin
          (* hand the slot back: the request never entered a queue *)
          Admission.note_rejection st.st_admission
            ~tenant:rq.Workload.rq_tenant reason;
          st.st_outstanding <- st.st_outstanding - 1;
          resolve st rq ~shard:(-1) ~outcome:(Rejected reason) ~batch:0
            ~variant:"-" ~degraded:false
        end
        else
          resolve st rq ~shard:(-1)
            ~outcome:(Failed (Admission.reason_name reason)) ~batch:0
            ~variant:"-" ~degraded:false
  end

and enqueue st sid (rq : Workload.request) =
  let shard = st.st_shards.(sid) in
  let now = Desim.now st.st_sim in
  (match Batcher.add shard.Shard.s_batcher ~now rq with
  | Some batch -> Queue.push batch shard.Shard.s_queue
  | None ->
      (* arm the deadline flush for this arrival; [flush_due] is
         idempotent so over-arming is harmless *)
      if st.st_config.batcher.Batcher.max_delay_s > 0.0 then
        Desim.schedule st.st_sim st.st_config.batcher.Batcher.max_delay_s
          (fun () -> deadline_flush st sid));
  dispatch st sid

and deadline_flush st sid =
  let shard = st.st_shards.(sid) in
  let now = Desim.now st.st_sim in
  List.iter
    (fun b -> Queue.push b shard.Shard.s_queue)
    (Batcher.flush_due shard.Shard.s_batcher ~now);
  dispatch st sid

(* Start batches while the shard has free workers.  An idle worker drains
   the batcher greedily (no point waiting for a deadline with capacity to
   spare). *)
and dispatch st sid =
  let shard = st.st_shards.(sid) in
  let now = Desim.now st.st_sim in
  if shard_alive st sid ~now then begin
    let continue = ref true in
    while !continue && shard.Shard.s_busy < Autoscale.workers shard.Shard.s_scaler do
      let next =
        if not (Queue.is_empty shard.Shard.s_queue) then
          Some (Queue.pop shard.Shard.s_queue)
        else Batcher.flush_oldest shard.Shard.s_batcher ~now
      in
      match next with
      | None -> continue := false
      | Some batch -> execute st sid batch
    done
  end

(* Execute one batch: the shard's orchestrator measures the
   single-request service time (fault verdicts and breaker feedback
   included), the batcher's amortization model scales it to the batch,
   and the completion lands back on the fabric clock. *)
and execute st sid (batch : Batcher.batch) =
  let shard = st.st_shards.(sid) in
  let size = Batcher.size batch in
  shard.Shard.s_busy <- shard.Shard.s_busy + 1;
  shard.Shard.s_inflight <- shard.Shard.s_inflight + size;
  let start = Desim.now st.st_sim in
  let r0 = List.hd batch.Batcher.b_requests in
  let orch = shard.Shard.s_orch in
  let dk = Orch.find_kernel orch r0.Workload.rq_kernel in
  let fault_key = r0.Workload.rq_id + (sid * 1_000_003) in
  let fail ~req:_ ~variant ~attempt =
    Faults.transient st.st_config.faults ~task:fault_key ~attempt
    || (List.mem_assoc variant dk.Orch.breakers
       && Faults.fpga_transient st.st_config.faults ~task:fault_key ~attempt)
  in
  let entry =
    match
      Orch.serve orch ~kernel:r0.Workload.rq_kernel ~n:1
        ~policy:st.st_config.orch_policy
        ~features:(fun _ -> r0.Workload.rq_features)
        ~fail ~max_attempts:st.st_config.orch_max_attempts ()
    with
    | [ e ] -> e
    | _ -> assert false
  in
  let t_batch =
    Batcher.service_time st.st_config.batcher
      ~single_s:entry.Orch.latency_s ~size
  in
  Desim.schedule st.st_sim t_batch (fun () ->
      complete st sid batch ~start entry)

and complete st sid (batch : Batcher.batch) ~start (entry : Orch.request_log) =
  let shard = st.st_shards.(sid) in
  let now = Desim.now st.st_sim in
  let size = Batcher.size batch in
  shard.Shard.s_busy <- shard.Shard.s_busy - 1;
  shard.Shard.s_inflight <- shard.Shard.s_inflight - size;
  shard.Shard.s_batches <- shard.Shard.s_batches + 1;
  if size > 1 then
    shard.Shard.s_batched_requests <- shard.Shard.s_batched_requests + size;
  let crashed =
    Faults.down_between st.st_config.faults ~node:shard.Shard.s_name ~t0:start
      ~t1:now
  in
  let ok = entry.Orch.ok && not crashed in
  if ok then begin
    shard.Shard.s_served <- shard.Shard.s_served + size;
    List.iter
      (fun rq ->
        resolve st rq ~shard:sid ~outcome:Served ~batch:size
          ~variant:entry.Orch.variant ~degraded:entry.Orch.degraded)
      batch.Batcher.b_requests
  end
  else begin
    shard.Shard.s_failed <- shard.Shard.s_failed + size;
    let reason = if crashed then "shard-crash" else "execution-failed" in
    List.iter
      (fun (rq : Workload.request) ->
        let failures =
          1 + Option.value ~default:0 (Hashtbl.find_opt st.st_failures rq.Workload.rq_id)
        in
        Hashtbl.replace st.st_failures rq.Workload.rq_id failures;
        if failures <= st.st_config.max_reroutes then begin
          st.st_reroutes <- st.st_reroutes + 1;
          handle_arrival st rq ~fresh:false
        end
        else
          resolve st rq ~shard:sid ~outcome:(Failed reason) ~batch:size
            ~variant:entry.Orch.variant ~degraded:entry.Orch.degraded)
      batch.Batcher.b_requests
  end;
  dispatch st sid

(* One control tick: drain dead/draining shards to their siblings, apply
   the allocation controller, re-arm while the run is live. *)
let rec tick st =
  let now = Desim.now st.st_sim in
  Array.iteri
    (fun sid shard ->
      if (not (shard_alive st sid ~now)) || Shard.draining shard then begin
        (* evacuate queued work; in-flight batches fail on their own *)
        let evacuees = ref [] in
        Queue.iter
          (fun (b : Batcher.batch) ->
            evacuees := List.rev_append b.Batcher.b_requests !evacuees)
          shard.Shard.s_queue;
        Queue.clear shard.Shard.s_queue;
        let rec drain_batcher () =
          match Batcher.flush_oldest shard.Shard.s_batcher ~now with
          | Some b ->
              evacuees := List.rev_append b.Batcher.b_requests !evacuees;
              drain_batcher ()
          | None -> ()
        in
        drain_batcher ();
        List.iter
          (fun rq -> handle_arrival st rq ~fresh:false)
          (List.rev !evacuees)
      end
      else begin
        match
          Autoscale.tick shard.Shard.s_scaler ~depth:(Shard.depth shard)
            ~busy:shard.Shard.s_busy
            ~backlog_age_s:(Shard.backlog_age shard ~now)
        with
        | Autoscale.Spawn n ->
            for _ = 1 to n do
              Desim.schedule st.st_sim
                st.st_config.autoscale.Autoscale.spawn_delay_s (fun () ->
                  Autoscale.worker_up shard.Shard.s_scaler;
                  shard.Shard.s_peak_workers <-
                    max shard.Shard.s_peak_workers
                      (Autoscale.workers shard.Shard.s_scaler);
                  dispatch st sid)
            done
        | Autoscale.Retire | Autoscale.Hold -> ()
      end)
    st.st_shards;
  if st.st_outstanding > 0 || st.st_arrivals_pending > 0 then
    Desim.schedule st.st_sim st.st_config.autoscale.Autoscale.tick_s (fun () ->
        tick st)

let instantiate_slos config tenant =
  List.map
    (fun (s : Slo.spec) ->
      { s with Slo.slo_name = tenant ^ "/" ^ s.Slo.slo_name })
    config.tenant_slos

let run ?(registry = Metrics.default) config ~deploy ~tenants ~horizon =
  if config.n_shards <= 0 then invalid_arg "Fabric.run: n_shards <= 0";
  if config.max_reroutes < 0 then invalid_arg "Fabric.run: max_reroutes < 0";
  let sim = Desim.create () in
  let shards =
    Array.init config.n_shards (fun id ->
        Shard.create ~id ~batcher:config.batcher ~autoscale:config.autoscale
          ~deploy ())
  in
  let tenant_names =
    List.map (fun t -> t.Workload.t_name) tenants
  in
  let monitors =
    List.map
      (fun name ->
        ( name,
          List.map (Slo.monitor ~alert:config.alert)
            (instantiate_slos config name) ))
      tenant_names
  in
  let admission =
    Admission.create config.admission ~tenants:tenant_names
      ~monitors:(fun name ->
        Option.value ~default:[] (List.assoc_opt name monitors))
  in
  let open_requests = Workload.generate ~seed:config.seed ~horizon tenants in
  let users = Workload.closed_users ~seed:config.seed tenants in
  let st =
    { st_config = config; st_sim = sim; st_shards = shards;
      st_balancer = Balancer.create config.balancer ~n_shards:config.n_shards;
      st_admission = admission; st_monitors = monitors; st_users = users;
      st_horizon = horizon; st_registry = registry; st_log = [];
      st_outstanding = 0; st_arrivals_pending = 0;
      st_next_id = List.length open_requests; st_reroutes = 0;
      st_failures = Hashtbl.create 64 }
  in
  List.iter
    (fun (rq : Workload.request) ->
      st.st_arrivals_pending <- st.st_arrivals_pending + 1;
      Desim.at sim rq.Workload.rq_arrival_s (fun () ->
          handle_arrival st rq ~fresh:true))
    open_requests;
  List.iteri
    (fun i u ->
      let rq =
        { Workload.rq_id = st.st_next_id + i;
          rq_tenant = Workload.user_tenant u;
          rq_kernel = Workload.user_kernel u;
          rq_user = Workload.user_index u; rq_seq = 0;
          rq_arrival_s = Workload.first_arrival u;
          rq_features = Workload.user_features u 0 }
      in
      st.st_arrivals_pending <- st.st_arrivals_pending + 1;
      Desim.at sim (Workload.first_arrival u) (fun () ->
          handle_arrival st rq ~fresh:true))
    users;
  st.st_next_id <- st.st_next_id + List.length users;
  tick st;
  Desim.run sim;
  (* ---- assemble the result ---------------------------------------------------- *)
  let log =
    List.sort (fun a b -> compare a.sr_id b.sr_id) (List.rev st.st_log)
  in
  let makespan =
    List.fold_left (fun acc r -> Float.max acc r.sr_done_s) 0.0 log
  in
  let tenant_report name =
    let mine = List.filter (fun r -> String.equal r.sr_tenant name) log in
    let outcomes =
      List.filter_map
        (fun r ->
          match r.sr_outcome with
          | Served ->
              Some
                { Slo.o_t_s = r.sr_done_s; o_ok = true;
                  o_latency_s = r.sr_latency_s }
          | Failed _ ->
              Some
                { Slo.o_t_s = r.sr_done_s; o_ok = false;
                  o_latency_s = r.sr_latency_s }
          | Rejected _ -> None)
        mine
    in
    let count p = List.length (List.filter p mine) in
    { tr_tenant = name;
      tr_requests = List.length mine;
      tr_served = count (fun r -> r.sr_outcome = Served);
      tr_failed =
        count (fun r -> match r.sr_outcome with Failed _ -> true | _ -> false);
      tr_shed = Admission.rejections_by_reason st.st_admission ~tenant:name;
      tr_slos = Slo.evaluate_all (instantiate_slos config name) outcomes;
      tr_alerts =
        List.fold_left
          (fun acc m -> acc + Slo.alerts m)
          0
          (tenant_monitors st name) }
  in
  let shard_report (s : Shard.t) =
    { sh_id = s.Shard.s_id; sh_served = s.Shard.s_served;
      sh_failed = s.Shard.s_failed; sh_batches = s.Shard.s_batches;
      sh_batched_requests = s.Shard.s_batched_requests;
      sh_workers = Autoscale.workers s.Shard.s_scaler;
      sh_peak_workers = s.Shard.s_peak_workers }
  in
  let spawned =
    Array.fold_left
      (fun acc s -> acc + Autoscale.spawned_total s.Shard.s_scaler)
      0 shards
  and retired =
    Array.fold_left
      (fun acc s -> acc + Autoscale.retired_total s.Shard.s_scaler)
      0 shards
  in
  (* end-of-run fabric gauges *)
  Array.iter
    (fun (s : Shard.t) ->
      let labels = [ ("shard", s.Shard.s_name) ] in
      let g name v = Metrics.set (Metrics.gauge ~registry ~labels name) v in
      g "serving_workers" (float_of_int (Autoscale.workers s.Shard.s_scaler));
      g "serving_peak_workers" (float_of_int s.Shard.s_peak_workers);
      g "serving_shard_served" (float_of_int s.Shard.s_served);
      g "serving_shard_failed" (float_of_int s.Shard.s_failed);
      g "serving_shard_batches" (float_of_int s.Shard.s_batches))
    shards;
  { f_config = config; f_horizon_s = horizon; f_makespan_s = makespan;
    f_log = log; f_tenants = List.map tenant_report tenant_names;
    f_shards = Array.to_list (Array.map shard_report shards);
    f_spawned = spawned; f_retired = retired; f_reroutes = st.st_reroutes }

(* ---- summary accessors ---------------------------------------------------------- *)

let served_ok r =
  List.length (List.filter (fun x -> x.sr_outcome = Served) r.f_log)

let failed r =
  List.length
    (List.filter
       (fun x -> match x.sr_outcome with Failed _ -> true | _ -> false)
       r.f_log)

let shed r =
  List.length
    (List.filter
       (fun x -> match x.sr_outcome with Rejected _ -> true | _ -> false)
       r.f_log)

let availability r =
  let ok = served_ok r and bad = failed r in
  if ok + bad = 0 then 1.0
  else float_of_int ok /. float_of_int (ok + bad)

let throughput_rps r =
  if r.f_horizon_s <= 0.0 then 0.0
  else float_of_int (served_ok r) /. r.f_horizon_s

let latencies r =
  List.filter_map
    (fun x -> if x.sr_outcome = Served then Some x.sr_latency_s else None)
    (List.sort (fun a b -> compare a.sr_done_s b.sr_done_s) r.f_log)

let latency_quantile r q = Slo.exact_quantile (latencies r) q

let batched_requests r =
  List.fold_left
    (fun acc s -> acc + s.sh_batched_requests)
    0 r.f_shards

(* ---- deterministic rendering ---------------------------------------------------- *)

let outcome_name = function
  | Served -> "served"
  | Rejected reason -> "rejected:" ^ Admission.reason_name reason
  | Failed why -> "failed:" ^ why

let render_log r =
  let buf = Buffer.create (64 * List.length r.f_log) in
  List.iter
    (fun x ->
      Buffer.add_string buf
        (Printf.sprintf
           "#%06d t=%s k=%s shard=%d arr=%.9f done=%.9f lat=%.9f batch=%d \
            att=%d var=%s deg=%b %s\n"
           x.sr_id x.sr_tenant x.sr_kernel x.sr_shard x.sr_arrival_s
           x.sr_done_s x.sr_latency_s x.sr_batch x.sr_attempts x.sr_variant
           x.sr_degraded (outcome_name x.sr_outcome)))
    r.f_log;
  Buffer.contents buf

let render_slos r =
  let buf = Buffer.create 512 in
  List.iter
    (fun tr ->
      List.iter
        (fun (res : Slo.result) ->
          Buffer.add_string buf
            (Printf.sprintf "%s kind=%s attained=%.9f target=%.9f met=%b \
                             total=%d bad=%d\n"
               res.Slo.res_name res.Slo.res_kind res.Slo.attained
               res.Slo.target res.Slo.met res.Slo.total res.Slo.bad))
        tr.tr_slos;
      Buffer.add_string buf
        (Printf.sprintf "%s alerts=%d\n" tr.tr_tenant tr.tr_alerts))
    r.f_tenants;
  Buffer.contents buf

let render_summary r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "fabric: %d shard(s), balancer=%s, horizon %.3gs, makespan %.3gs\n"
       r.f_config.n_shards
       (Balancer.policy_name r.f_config.balancer)
       r.f_horizon_s r.f_makespan_s);
  Buffer.add_string buf
    (Printf.sprintf
       "requests: %d total = %d served + %d failed + %d shed | availability \
        %.2f%% | %.0f req/s | p99 %.4gs | %d batched | %d reroutes\n"
       (List.length r.f_log) (served_ok r) (failed r) (shed r)
       (100.0 *. availability r)
       (throughput_rps r)
       (latency_quantile r 0.99)
       (batched_requests r) r.f_reroutes);
  Buffer.add_string buf
    (Printf.sprintf "autoscale: %d spawned, %d retired\n" r.f_spawned
       r.f_retired);
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf
           "  shard%d: served=%d failed=%d batches=%d workers=%d (peak %d)\n"
           s.sh_id s.sh_served s.sh_failed s.sh_batches s.sh_workers
           s.sh_peak_workers))
    r.f_shards;
  List.iter
    (fun tr ->
      let shed_total =
        List.fold_left (fun acc (_, n) -> acc + n) 0 tr.tr_shed
      in
      Buffer.add_string buf
        (Printf.sprintf
           "  %-12s requests=%d served=%d failed=%d shed=%d alerts=%d\n"
           tr.tr_tenant tr.tr_requests tr.tr_served tr.tr_failed shed_total
           tr.tr_alerts);
      List.iter
        (fun (res : Slo.result) ->
          Buffer.add_string buf (Fmt.str "    %a\n" Slo.pp_result res))
        tr.tr_slos)
    r.f_tenants;
  Buffer.contents buf

(* ---- demo deployment ------------------------------------------------------------ *)

let demo_deploy ?(kernels = [ "mm" ]) ?breaker () orch =
  let estimate =
    { Everest_hls.Estimate.area = Everest_hls.Estimate.zero_area;
      cycles = 100_000; ii = 1; clock_mhz = 250.0; dynamic_power_w = 8.0 }
  in
  List.iter
    (fun kname ->
      ignore
        (Orch.deploy ?breaker orch ~kname
           ~impls:
             [ ("sw", Orch.Sw { flops = 5e8; bytes = 1e5; threads = 2 });
               ("hw",
                Orch.Hw
                  { bitstream = kname; estimate; in_bytes = 4096;
                    out_bytes = 4096 }) ]
           ~knowledge:
             (Everest_autotune.Knowledge.create kname
                [ { Everest_autotune.Knowledge.variant = "sw"; features = [];
                    metrics = [ ("time_s", 0.01) ] };
                  { Everest_autotune.Knowledge.variant = "hw"; features = [];
                    metrics = [ ("time_s", 0.001) ] } ])
           ~goal:
             (Everest_autotune.Goal.make
                (Everest_autotune.Goal.Minimize "time_s"))))
    kernels
