(* The serving fabric's event loop.  See the interface for the model; the
   implementation notes here cover the invariants:

   - Fabric time is one Desim engine: arrival events (pre-generated
     open-loop requests, closed-loop continuations), batch completions,
     deadline flushes, autoscale ticks and delayed worker spawns all
     queue there.  Desim breaks ties by insertion order, so the whole
     run is a deterministic function of (config, tenants, horizon).
   - [outstanding] counts admitted-but-unresolved requests and
     [arrivals_pending] counts scheduled-but-unhandled arrival events;
     the autoscale tick re-arms only while either is positive, which is
     what lets the simulation drain and terminate.
   - Every request resolves exactly once ([resolve]), which also drives
     the per-tenant SLO monitors and the closed-loop continuation.

   Crash consistency: every scheduled continuation is a *typed event*
   ([ev]) — plain data, no closures — registered in [st_pending] under a
   monotonically increasing id until it fires.  That design carries the
   whole recovery story:

   - Journal: when recovery is on, firing an event first appends its
     encoded form to the write-ahead journal, then performs it.  Replay
     after a crash re-derives each event and byte-compares it against
     the journaled record (divergence is a typed error, not a wrong
     answer).
   - Snapshot: at tick boundaries the complete resumable state —
     shard queues and batcher accumulators, admission buckets, SLO
     monitor windows, breaker/tuner state inside each shard's
     orchestrator, closed-loop RNG positions, and the pending event
     set — serializes byte-deterministically.  Restore = decode the
     newest valid snapshot into a freshly built fabric, warp the clock,
     re-insert pending events in id order (id order equals original
     insertion order, so Desim tie-breaking is preserved), then replay
     the journal tail in verify mode until it is exhausted and the run
     continues live. *)

module Slo = Everest_observe.Slo
module Orch = Everest_runtime.Orchestrator
module Desim = Everest_platform.Desim
module Faults = Everest_resilience.Faults
module Metrics = Everest_telemetry.Metrics
module Codec = Everest_recovery.Codec
module Store = Everest_recovery.Store
module Watch = Everest_watch.Watch
module Scrape = Everest_watch.Scrape

type config = {
  n_shards : int;
  seed : int;
  balancer : Balancer.policy;
  admission : Admission.config;
  batcher : Batcher.config;
  autoscale : Autoscale.config;
  faults : Faults.t;
  max_reroutes : int;
  max_queue : int;
  tenant_slos : Slo.spec list;
  alert : Slo.alert_config;
  orch_policy : Orch.policy;
  orch_max_attempts : int;
}

let default_config ~n_shards =
  { n_shards; seed = 7; balancer = Balancer.Least_outstanding;
    admission = Admission.default_config;
    batcher = Batcher.default_config;
    autoscale = Autoscale.default_config;
    faults = Faults.none; max_reroutes = 3; max_queue = 64;
    tenant_slos =
      [ Slo.availability "availability" 0.99;
        Slo.latency "p99-latency" ~q:0.99 ~limit_s:0.05 ];
    alert = Slo.default_alert; orch_policy = Orch.Adaptive;
    orch_max_attempts = 3 }

type outcome = Served | Rejected of Admission.reason | Failed of string

type served_request = {
  sr_id : int;
  sr_tenant : string;
  sr_kernel : string;
  sr_shard : int;
  sr_arrival_s : float;
  sr_done_s : float;
  sr_latency_s : float;
  sr_outcome : outcome;
  sr_batch : int;
  sr_attempts : int;
  sr_variant : string;
  sr_degraded : bool;
}

type tenant_report = {
  tr_tenant : string;
  tr_requests : int;
  tr_served : int;
  tr_failed : int;
  tr_shed : (Admission.reason * int) list;
  tr_slos : Slo.result list;
  tr_alerts : int;
}

type shard_report = {
  sh_id : int;
  sh_served : int;
  sh_failed : int;
  sh_batches : int;
  sh_batched_requests : int;
  sh_workers : int;
  sh_peak_workers : int;
}

type result = {
  f_config : config;
  f_horizon_s : float;
  f_makespan_s : float;
  f_log : served_request list;
  f_tenants : tenant_report list;
  f_shards : shard_report list;
  f_spawned : int;
  f_retired : int;
  f_reroutes : int;
}

(* ---- recovery plumbing ---------------------------------------------------------- *)

type recovery = {
  rv_store : Store.t;
  rv_snapshot_every_s : float;
}

(* Off = recovery disabled; Live = journaling ahead of every event;
   Replay = verifying re-derived events against the journal tail. *)
type rmode = R_off | R_live | R_replay of string list ref

type restore_report = {
  rr_snapshot_index : int;  (* snapshot the resume anchored on *)
  rr_fallbacks : int;  (* newer snapshots rejected as invalid *)
  rr_skipped : (int * string) list;  (* index, why it was rejected *)
  rr_replayed : int;  (* journal records replay-verified *)
  rr_torn_tail : bool;  (* a half-written record was truncated *)
}

(* The run is a deterministic function of (config, tenants, horizon); a
   store written under one configuration must never be resumed under
   another.  Tenant feature functions are code, not data, and are
   excluded — swapping them while keeping the same names is on the
   caller. *)
let fingerprint (config : config) ~tenants ~horizon =
  let tenant_sig =
    List.map
      (fun (t : Workload.tenant) ->
        (t.Workload.t_name, t.Workload.t_kernel, t.Workload.t_arrival))
      tenants
  in
  Digest.to_hex (Digest.string (Marshal.to_string (config, tenant_sig, horizon) []))

(* ---- run state ------------------------------------------------------------------ *)

(* Typed fabric events.  Everything Desim will ever run on the fabric
   clock is one of these — plain data, so the pending set can be
   snapshotted and a restored run can re-create the closures. *)
type ev =
  | Ev_arrival of Workload.request  (* fresh arrival passing admission *)
  | Ev_complete of {
      c_sid : int;
      c_start : float;
      c_batch : Batcher.batch;
      c_entry : Orch.request_log;
    }
  | Ev_flush of int  (* batcher deadline flush on one shard *)
  | Ev_spawn of int  (* delayed autoscale worker-up on one shard *)
  | Ev_tick  (* fabric control tick *)

type state = {
  st_config : config;
  st_sim : Desim.t;
  st_shards : Shard.t array;
  st_balancer : Balancer.t;
  st_admission : Admission.t;
  st_monitors : (string * Slo.monitor list) list;  (* per tenant *)
  st_users : Workload.closed_user list;
  st_horizon : float;
  st_registry : Metrics.registry;
  mutable st_log : served_request list;  (* newest first *)
  st_log_enc : Buffer.t;
      (* the same log, codec-encoded incrementally (oldest first): each
         entry is encoded exactly once when resolved, so a snapshot
         splices these bytes instead of re-encoding the whole log —
         snapshot cost stays O(live state), not O(run length) *)
  mutable st_outstanding : int;  (* admitted, not yet resolved *)
  mutable st_arrivals_pending : int;  (* scheduled arrival events *)
  mutable st_next_id : int;
  mutable st_reroutes : int;
  st_failures : (int, int) Hashtbl.t;  (* request id -> failed executions *)
  (* recovery *)
  st_recovery : recovery option;
  mutable st_rmode : rmode;
  mutable st_ev_seq : int;  (* next event id *)
  st_scratch : Codec.writer;  (* reused for per-event record encoding *)
  st_pending : (int, float * ev * string) Hashtbl.t;
      (* scheduled, not yet fired: fire time, event, and (when recovery is
         on) the event's journal payload, encoded once at schedule time —
         fired events append it to the journal, snapshots splice it, so
         neither path re-encodes.  Sound because Desim fires an event at
         exactly its scheduled time and events are immutable data. *)
  mutable st_last_snap : float;
  mutable st_snap_index : int;
  mutable st_replayed : int;
  st_watch : Watch.t option;
      (* strictly read-only observer: scraped on control ticks, fed
         latencies at resolve — never schedules events or feeds back, so
         a watched run stays byte-identical to the unwatched one *)
}

let shard_alive st sid ~now =
  not
    (Faults.node_dead st.st_config.faults
       ~node:st.st_shards.(sid).Shard.s_name ~now)

let routable st sid ~now =
  let shard = st.st_shards.(sid) in
  shard_alive st sid ~now
  && (not (Shard.draining shard))
  && Shard.depth shard < st.st_config.max_queue

let tenant_monitors st tenant =
  Option.value ~default:[] (List.assoc_opt tenant st.st_monitors)

let counter st ?labels name = Metrics.counter ~registry:st.st_registry ?labels name

(* ---- event and state codec ------------------------------------------------------ *)

let encode_request w (rq : Workload.request) =
  Codec.int w rq.Workload.rq_id;
  Codec.str w rq.Workload.rq_tenant;
  Codec.str w rq.Workload.rq_kernel;
  Codec.int w rq.Workload.rq_user;
  Codec.int w rq.Workload.rq_seq;
  Codec.float w rq.Workload.rq_arrival_s;
  Codec.assoc_floats w rq.Workload.rq_features

let decode_request r =
  let rq_id = Codec.r_int r in
  let rq_tenant = Codec.r_str r in
  let rq_kernel = Codec.r_str r in
  let rq_user = Codec.r_int r in
  let rq_seq = Codec.r_int r in
  let rq_arrival_s = Codec.r_float r in
  let rq_features = Codec.r_assoc_floats r in
  { Workload.rq_id; rq_tenant; rq_kernel; rq_user; rq_seq; rq_arrival_s;
    rq_features }

let encode_entry w (e : Orch.request_log) =
  Codec.int w e.Orch.req;
  Codec.str w e.Orch.requested;
  Codec.str w e.Orch.variant;
  Codec.float w e.Orch.latency_s;
  Codec.int w e.Orch.attempts;
  Codec.bool w e.Orch.degraded;
  Codec.bool w e.Orch.ok;
  Codec.float w e.Orch.t_done

let decode_entry r =
  let req = Codec.r_int r in
  let requested = Codec.r_str r in
  let variant = Codec.r_str r in
  let latency_s = Codec.r_float r in
  let attempts = Codec.r_int r in
  let degraded = Codec.r_bool r in
  let ok = Codec.r_bool r in
  let t_done = Codec.r_float r in
  { Orch.req; requested; variant; latency_s; attempts; degraded; ok; t_done }

let encode_batch w (b : Batcher.batch) =
  Codec.str w b.Batcher.b_key;
  Codec.float w b.Batcher.b_formed_s;
  Codec.list w b.Batcher.b_requests ~item:encode_request

let decode_batch r =
  let b_key = Codec.r_str r in
  let b_formed_s = Codec.r_float r in
  let b_requests = Codec.r_list r ~item:decode_request in
  { Batcher.b_key; b_requests; b_formed_s }

let encode_ev w = function
  | Ev_arrival rq ->
      Codec.str w "A";
      encode_request w rq
  | Ev_complete { c_sid; c_start; c_batch; c_entry } ->
      Codec.str w "C";
      Codec.int w c_sid;
      Codec.float w c_start;
      encode_batch w c_batch;
      encode_entry w c_entry
  | Ev_flush sid ->
      Codec.str w "F";
      Codec.int w sid
  | Ev_spawn sid ->
      Codec.str w "S";
      Codec.int w sid
  | Ev_tick -> Codec.str w "T"

let decode_ev r =
  match Codec.r_str r with
  | "A" -> Ev_arrival (decode_request r)
  | "C" ->
      let c_sid = Codec.r_int r in
      let c_start = Codec.r_float r in
      let c_batch = decode_batch r in
      let c_entry = decode_entry r in
      Ev_complete { c_sid; c_start; c_batch; c_entry }
  | "F" -> Ev_flush (Codec.r_int r)
  | "S" -> Ev_spawn (Codec.r_int r)
  | "T" -> Ev_tick
  | t -> raise (Codec.Decode ("unknown event tag " ^ t))

(* One journal record: event id, fire time, event body.  Replay
   re-derives this payload and byte-compares it against the journal. *)
let pending_payload w id ~at ev =
  Codec.reset w;
  Codec.int w id;
  Codec.float w at;
  encode_ev w ev;
  Codec.contents w

let encode_outcome w = function
  | Served -> Codec.str w "ok"
  | Rejected reason ->
      Codec.str w "rej";
      Codec.str w (Admission.reason_name reason)
  | Failed why ->
      Codec.str w "fail";
      Codec.str w why

let decode_reason name =
  match
    List.find_opt
      (fun x -> String.equal (Admission.reason_name x) name)
      Admission.all_reasons
  with
  | Some x -> x
  | None -> raise (Codec.Decode ("unknown rejection reason " ^ name))

let decode_outcome r =
  match Codec.r_str r with
  | "ok" -> Served
  | "rej" -> Rejected (decode_reason (Codec.r_str r))
  | "fail" -> Failed (Codec.r_str r)
  | t -> raise (Codec.Decode ("unknown outcome tag " ^ t))

let encode_served w x =
  Codec.int w x.sr_id;
  Codec.str w x.sr_tenant;
  Codec.str w x.sr_kernel;
  Codec.int w x.sr_shard;
  Codec.float w x.sr_arrival_s;
  Codec.float w x.sr_done_s;
  Codec.float w x.sr_latency_s;
  encode_outcome w x.sr_outcome;
  Codec.int w x.sr_batch;
  Codec.int w x.sr_attempts;
  Codec.str w x.sr_variant;
  Codec.bool w x.sr_degraded

let decode_served r =
  let sr_id = Codec.r_int r in
  let sr_tenant = Codec.r_str r in
  let sr_kernel = Codec.r_str r in
  let sr_shard = Codec.r_int r in
  let sr_arrival_s = Codec.r_float r in
  let sr_done_s = Codec.r_float r in
  let sr_latency_s = Codec.r_float r in
  let sr_outcome = decode_outcome r in
  let sr_batch = Codec.r_int r in
  let sr_attempts = Codec.r_int r in
  let sr_variant = Codec.r_str r in
  let sr_degraded = Codec.r_bool r in
  { sr_id; sr_tenant; sr_kernel; sr_shard; sr_arrival_s; sr_done_s;
    sr_latency_s; sr_outcome; sr_batch; sr_attempts; sr_variant; sr_degraded }

(* Append one entry to the incrementally-encoded served log. *)
let log_enc_add st entry =
  let w = st.st_scratch in
  Codec.reset w;
  encode_served w entry;
  if Buffer.length st.st_log_enc > 0 then Buffer.add_char st.st_log_enc ' ';
  Codec.blit_into w st.st_log_enc

let breaker_state_of_name = function
  | "closed" -> Everest_resilience.Breaker.Closed
  | "open" -> Everest_resilience.Breaker.Open
  | "half-open" -> Everest_resilience.Breaker.Half_open
  | s -> raise (Codec.Decode ("unknown breaker state " ^ s))

let encode_breaker w (p : Everest_resilience.Breaker.persisted) =
  Codec.str w (Everest_resilience.Breaker.state_name p.p_state);
  Codec.int w p.p_failures;
  Codec.float w p.p_opened_at;
  Codec.int w p.p_probes;
  Codec.int w p.p_opens;
  Codec.list w p.p_transitions ~item:(fun w (t, s) ->
      Codec.float w t;
      Codec.str w (Everest_resilience.Breaker.state_name s))

let decode_breaker r =
  let p_state = breaker_state_of_name (Codec.r_str r) in
  let p_failures = Codec.r_int r in
  let p_opened_at = Codec.r_float r in
  let p_probes = Codec.r_int r in
  let p_opens = Codec.r_int r in
  let p_transitions =
    Codec.r_list r ~item:(fun r ->
        let t = Codec.r_float r in
        let s = breaker_state_of_name (Codec.r_str r) in
        (t, s))
  in
  { Everest_resilience.Breaker.p_state; p_failures; p_opened_at; p_probes;
    p_opens; p_transitions }

let encode_tuner w (p : Everest_autotune.Tuner.persisted) =
  Codec.list w p.Everest_autotune.Tuner.p_points ~item:(fun w pt ->
      Codec.str w pt.Everest_autotune.Knowledge.variant;
      Codec.assoc_floats w pt.Everest_autotune.Knowledge.features;
      Codec.assoc_floats w pt.Everest_autotune.Knowledge.metrics);
  (match p.Everest_autotune.Tuner.p_last_variant with
  | Some v ->
      Codec.bool w true;
      Codec.str w v
  | None -> Codec.bool w false);
  Codec.int w p.Everest_autotune.Tuner.p_selections;
  Codec.int w p.Everest_autotune.Tuner.p_switches

let decode_tuner r =
  let p_points =
    Codec.r_list r ~item:(fun r ->
        let variant = Codec.r_str r in
        let features = Codec.r_assoc_floats r in
        let metrics = Codec.r_assoc_floats r in
        { Everest_autotune.Knowledge.variant; features; metrics })
  in
  let p_last_variant =
    if Codec.r_bool r then Some (Codec.r_str r) else None
  in
  let p_selections = Codec.r_int r in
  let p_switches = Codec.r_int r in
  { Everest_autotune.Tuner.p_points; p_last_variant; p_selections; p_switches }

let encode_orch w (p : Orch.persisted_state) =
  Codec.float w p.Orch.ps_clock;
  Codec.list w p.Orch.ps_fpgas ~item:(fun w (dev_id, next_slot, loaded) ->
      Codec.int w dev_id;
      Codec.int w next_slot;
      Codec.list w loaded ~item:(fun w (slot, bs) ->
          Codec.int w slot;
          Codec.str w bs));
  Codec.list w p.Orch.ps_kernels ~item:(fun w (kname, tuner, breakers) ->
      Codec.str w kname;
      encode_tuner w tuner;
      Codec.list w breakers ~item:(fun w (variant, bp) ->
          Codec.str w variant;
          encode_breaker w bp))

let decode_orch r =
  let ps_clock = Codec.r_float r in
  let ps_fpgas =
    Codec.r_list r ~item:(fun r ->
        let dev_id = Codec.r_int r in
        let next_slot = Codec.r_int r in
        let loaded =
          Codec.r_list r ~item:(fun r ->
              let slot = Codec.r_int r in
              let bs = Codec.r_str r in
              (slot, bs))
        in
        (dev_id, next_slot, loaded))
  in
  let ps_kernels =
    Codec.r_list r ~item:(fun r ->
        let kname = Codec.r_str r in
        let tuner = decode_tuner r in
        let breakers =
          Codec.r_list r ~item:(fun r ->
              let variant = Codec.r_str r in
              let bp = decode_breaker r in
              (variant, bp))
        in
        (kname, tuner, breakers))
  in
  { Orch.ps_clock; ps_fpgas; ps_kernels }

let encode_shard w (s : Shard.t) =
  Codec.int w s.Shard.s_busy;
  Codec.int w s.Shard.s_inflight;
  Codec.int w s.Shard.s_served;
  Codec.int w s.Shard.s_failed;
  Codec.int w s.Shard.s_batches;
  Codec.int w s.Shard.s_batched_requests;
  Codec.int w s.Shard.s_peak_workers;
  let a = Autoscale.export s.Shard.s_scaler in
  Codec.int w a.Autoscale.p_workers;
  Codec.int w a.Autoscale.p_requested;
  Codec.int w a.Autoscale.p_idle_ticks;
  Codec.int w a.Autoscale.p_spawned;
  Codec.int w a.Autoscale.p_retired;
  Codec.list w (Batcher.export s.Shard.s_batcher)
    ~item:(fun w (key, oldest, requests) ->
      Codec.str w key;
      Codec.float w oldest;
      Codec.list w requests ~item:encode_request);
  Codec.list w
    (Queue.fold (fun acc b -> b :: acc) [] s.Shard.s_queue |> List.rev)
    ~item:encode_batch;
  encode_orch w (Orch.export_state s.Shard.s_orch)

let decode_shard r (s : Shard.t) =
  s.Shard.s_busy <- Codec.r_int r;
  s.Shard.s_inflight <- Codec.r_int r;
  s.Shard.s_served <- Codec.r_int r;
  s.Shard.s_failed <- Codec.r_int r;
  s.Shard.s_batches <- Codec.r_int r;
  s.Shard.s_batched_requests <- Codec.r_int r;
  s.Shard.s_peak_workers <- Codec.r_int r;
  let p_workers = Codec.r_int r in
  let p_requested = Codec.r_int r in
  let p_idle_ticks = Codec.r_int r in
  let p_spawned = Codec.r_int r in
  let p_retired = Codec.r_int r in
  Autoscale.import s.Shard.s_scaler
    { Autoscale.p_workers; p_requested; p_idle_ticks; p_spawned; p_retired };
  Batcher.import s.Shard.s_batcher
    (Codec.r_list r ~item:(fun r ->
         let key = Codec.r_str r in
         let oldest = Codec.r_float r in
         let requests = Codec.r_list r ~item:decode_request in
         (key, oldest, requests)));
  Queue.clear s.Shard.s_queue;
  List.iter
    (fun b -> Queue.push b s.Shard.s_queue)
    (Codec.r_list r ~item:decode_batch);
  Orch.restore_state s.Shard.s_orch (decode_orch r)

let encode_monitor w m =
  let s = Slo.monitor_export m in
  Codec.list w s.Slo.ms_events ~item:(fun w (t, bad) ->
      Codec.float w t;
      Codec.bool w bad);
  Codec.int w s.Slo.ms_total;
  Codec.int w s.Slo.ms_bad;
  Codec.float w s.Slo.ms_last_t;
  Codec.bool w s.Slo.ms_firing;
  Codec.int w s.Slo.ms_alerts

let decode_monitor r m =
  let ms_events =
    Codec.r_list r ~item:(fun r ->
        let t = Codec.r_float r in
        let bad = Codec.r_bool r in
        (t, bad))
  in
  let ms_total = Codec.r_int r in
  let ms_bad = Codec.r_int r in
  let ms_last_t = Codec.r_float r in
  let ms_firing = Codec.r_bool r in
  let ms_alerts = Codec.r_int r in
  Slo.monitor_import m
    { Slo.ms_events; ms_total; ms_bad; ms_last_t; ms_firing; ms_alerts }

(* The complete resumable fabric state, as one byte-deterministic
   record body (the Snapshot envelope adds version + checksum). *)
let encode_state st =
  let w = Codec.writer () in
  Codec.str w "fabric";
  Codec.float w (Desim.now st.st_sim);
  Codec.int w st.st_ev_seq;
  Codec.int w st.st_outstanding;
  Codec.int w st.st_arrivals_pending;
  Codec.int w st.st_next_id;
  Codec.int w st.st_reroutes;
  Codec.list w
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.st_failures []
    |> List.sort compare)
    ~item:(fun w (k, v) ->
      Codec.int w k;
      Codec.int w v);
  Codec.int w (Balancer.cursor st.st_balancer);
  (* served log: count, then the pre-encoded entries (oldest first) *)
  Codec.int w (List.length st.st_log);
  Codec.splice w st.st_log_enc;
  Codec.list w (Admission.export st.st_admission) ~item:(fun w tp ->
      Codec.str w tp.Admission.tp_tenant;
      Codec.float w tp.Admission.tp_tokens;
      Codec.float w tp.Admission.tp_last;
      Codec.int w tp.Admission.tp_admitted;
      Codec.list w tp.Admission.tp_rejected ~item:(fun w (reason, n) ->
          Codec.str w (Admission.reason_name reason);
          Codec.int w n));
  Codec.list w st.st_monitors ~item:(fun w (name, ms) ->
      Codec.str w name;
      Codec.list w ms ~item:encode_monitor);
  Codec.list w st.st_users ~item:(fun w u ->
      Codec.int w (Workload.user_rng_state u));
  Codec.list w (Array.to_list st.st_shards) ~item:encode_shard;
  (* pending events: count, then each one's pre-encoded journal payload
     (already "id at ev…"), spliced byte-for-byte in id order *)
  let pend =
    Hashtbl.fold (fun id (_, _, enc) acc -> (id, enc) :: acc) st.st_pending []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Codec.int w (List.length pend);
  List.iter (fun (_, enc) -> Codec.splice_str w enc) pend;
  Codec.contents w

(* Decode a snapshot body into a freshly built state (same config /
   tenants / deploy).  Returns the pending events, which the caller
   re-inserts once the handlers exist. *)
let decode_state st r =
  Codec.expect r "fabric";
  let now = Codec.r_float r in
  Desim.warp st.st_sim now;
  st.st_ev_seq <- Codec.r_int r;
  st.st_outstanding <- Codec.r_int r;
  st.st_arrivals_pending <- Codec.r_int r;
  st.st_next_id <- Codec.r_int r;
  st.st_reroutes <- Codec.r_int r;
  Hashtbl.reset st.st_failures;
  List.iter
    (fun (k, v) -> Hashtbl.replace st.st_failures k v)
    (Codec.r_list r ~item:(fun r ->
         let k = Codec.r_int r in
         let v = Codec.r_int r in
         (k, v)));
  Balancer.set_cursor st.st_balancer (Codec.r_int r);
  let served = Codec.r_list r ~item:decode_served in  (* oldest first *)
  st.st_log <- List.rev served;
  Buffer.clear st.st_log_enc;
  List.iter (fun e -> log_enc_add st e) served;
  Admission.import st.st_admission
    (Codec.r_list r ~item:(fun r ->
         let tp_tenant = Codec.r_str r in
         let tp_tokens = Codec.r_float r in
         let tp_last = Codec.r_float r in
         let tp_admitted = Codec.r_int r in
         let tp_rejected =
           Codec.r_list r ~item:(fun r ->
               let reason = decode_reason (Codec.r_str r) in
               let n = Codec.r_int r in
               (reason, n))
         in
         { Admission.tp_tenant; tp_tokens; tp_last; tp_admitted; tp_rejected }));
  let n_tenants = Codec.r_int r in
  if n_tenants <> List.length st.st_monitors then
    raise (Codec.Decode "tenant/monitor population mismatch");
  List.iter
    (fun (name, ms) ->
      let got = Codec.r_str r in
      if not (String.equal got name) then
        raise (Codec.Decode ("monitor tenant mismatch: " ^ got));
      let n = Codec.r_int r in
      if n <> List.length ms then
        raise (Codec.Decode "monitor count mismatch");
      List.iter (fun m -> decode_monitor r m) ms)
    st.st_monitors;
  let user_states = Codec.r_list r ~item:Codec.r_int in
  (try List.iter2 Workload.set_user_rng_state st.st_users user_states
   with Invalid_argument _ ->
     raise (Codec.Decode "closed-user population mismatch"));
  let n_shards = Codec.r_int r in
  if n_shards <> Array.length st.st_shards then
    raise (Codec.Decode "shard count mismatch");
  Array.iter (fun s -> decode_shard r s) st.st_shards;
  Codec.r_list r ~item:(fun r ->
      let id = Codec.r_int r in
      let at = Codec.r_float r in
      let ev = decode_ev r in
      (* re-derive the payload so the restored pending set journals and
         snapshots the exact bytes the uninterrupted run would *)
      (id, at, ev, pending_payload st.st_scratch id ~at ev))

(* ---- the event loop ------------------------------------------------------------- *)

(* Resolve one request exactly once: log it, feed the tenant's SLO
   monitors (service outcomes only — rejections are accounted at the
   door, not against the service SLOs), keep the closed-loop user going. *)
let rec resolve st (rq : Workload.request) ~shard ~outcome ~batch ~variant
    ~degraded =
  let now = Desim.now st.st_sim in
  let attempts = 1 + Option.value ~default:0 (Hashtbl.find_opt st.st_failures rq.Workload.rq_id) in
  let latency =
    match outcome with
    | Rejected _ -> 0.0
    | Served | Failed _ -> now -. rq.Workload.rq_arrival_s
  in
  let entry =
    { sr_id = rq.Workload.rq_id; sr_tenant = rq.Workload.rq_tenant;
      sr_kernel = rq.Workload.rq_kernel; sr_shard = shard;
      sr_arrival_s = rq.Workload.rq_arrival_s; sr_done_s = now;
      sr_latency_s = latency; sr_outcome = outcome; sr_batch = batch;
      sr_attempts = attempts; sr_variant = variant; sr_degraded = degraded }
  in
  st.st_log <- entry :: st.st_log;
  (match st.st_recovery with
  | None -> ()
  | Some rv ->
      let t0 = Unix.gettimeofday () in
      log_enc_add st entry;
      let s = rv.rv_store in
      s.Store.work_s <- s.Store.work_s +. (Unix.gettimeofday () -. t0));
  (match outcome with
  | Served ->
      Metrics.inc
        (counter st ~labels:[ ("tenant", rq.Workload.rq_tenant) ]
           "serving_served_total");
      Metrics.observe
        (Metrics.histogram ~registry:st.st_registry
           ~labels:[ ("tenant", rq.Workload.rq_tenant) ]
           "serving_latency_s")
        latency;
      List.iter
        (fun m -> Slo.observe m ~now ~latency_s:latency ~ok:true ())
        (tenant_monitors st rq.Workload.rq_tenant);
      (match st.st_watch with
      | Some w ->
          Watch.observe w ~now
            ~labels:[ ("tenant", rq.Workload.rq_tenant) ]
            "latency" latency
      | None -> ());
      st.st_outstanding <- st.st_outstanding - 1
  | Failed _ ->
      Metrics.inc
        (counter st ~labels:[ ("tenant", rq.Workload.rq_tenant) ]
           "serving_failed_total");
      List.iter
        (fun m -> Slo.observe m ~now ~latency_s:latency ~ok:false ())
        (tenant_monitors st rq.Workload.rq_tenant);
      st.st_outstanding <- st.st_outstanding - 1
  | Rejected reason ->
      Metrics.inc
        (counter st
           ~labels:
             [ ("tenant", rq.Workload.rq_tenant);
               ("reason", Admission.reason_name reason) ]
           "serving_shed_total"));
  (* closed-loop continuation: the user thinks, then asks again *)
  if rq.Workload.rq_user >= 0 then
    match
      List.find_opt
        (fun u ->
          String.equal (Workload.user_tenant u) rq.Workload.rq_tenant
          && Workload.user_index u = rq.Workload.rq_user)
        st.st_users
    with
    | None -> ()
    | Some u ->
        let t_next = now +. Workload.next_think u in
        if t_next < st.st_horizon then begin
          let seq = rq.Workload.rq_seq + 1 in
          let next =
            { Workload.rq_id = st.st_next_id;
              rq_tenant = rq.Workload.rq_tenant;
              rq_kernel = rq.Workload.rq_kernel;
              rq_user = rq.Workload.rq_user; rq_seq = seq;
              rq_arrival_s = t_next;
              rq_features = Workload.user_features u seq }
          in
          st.st_next_id <- st.st_next_id + 1;
          st.st_arrivals_pending <- st.st_arrivals_pending + 1;
          sched st ~at:t_next (Ev_arrival next)
        end

(* Route and enqueue one request.  [fresh] arrivals pass admission;
   re-routed requests were already admitted.  Unroutable re-routes fail
   (they hold no queue slot anywhere), unroutable fresh arrivals are shed
   with a typed reason. *)
and handle_arrival st (rq : Workload.request) ~fresh =
  let now = Desim.now st.st_sim in
  if fresh then begin
    st.st_arrivals_pending <- st.st_arrivals_pending - 1;
    Metrics.inc
      (counter st ~labels:[ ("tenant", rq.Workload.rq_tenant) ]
         "serving_requests_total")
  end;
  let admitted =
    if not fresh then true
    else
      match Admission.decide st.st_admission ~tenant:rq.Workload.rq_tenant ~now with
      | Admission.Admit ->
          st.st_outstanding <- st.st_outstanding + 1;
          true
      | Admission.Reject reason ->
          resolve st rq ~shard:(-1) ~outcome:(Rejected reason) ~batch:0
            ~variant:"-" ~degraded:false;
          false
  in
  if admitted then begin
    match
      Balancer.route st.st_balancer ~tenant:rq.Workload.rq_tenant
        ~routable:(fun sid -> routable st sid ~now)
        ~outstanding:(fun sid -> Shard.outstanding st.st_shards.(sid))
    with
    | Some sid -> enqueue st sid rq
    | None ->
        let any_healthy =
          let ok = ref false in
          for sid = 0 to st.st_config.n_shards - 1 do
            if
              shard_alive st sid ~now
              && not (Shard.draining st.st_shards.(sid))
            then ok := true
          done;
          !ok
        in
        let reason =
          if any_healthy then Admission.Overloaded else Admission.Unavailable
        in
        if fresh then begin
          (* hand the slot back: the request never entered a queue *)
          Admission.note_rejection st.st_admission
            ~tenant:rq.Workload.rq_tenant reason;
          st.st_outstanding <- st.st_outstanding - 1;
          resolve st rq ~shard:(-1) ~outcome:(Rejected reason) ~batch:0
            ~variant:"-" ~degraded:false
        end
        else
          resolve st rq ~shard:(-1)
            ~outcome:(Failed (Admission.reason_name reason)) ~batch:0
            ~variant:"-" ~degraded:false
  end

and enqueue st sid (rq : Workload.request) =
  let shard = st.st_shards.(sid) in
  let now = Desim.now st.st_sim in
  (match Batcher.add shard.Shard.s_batcher ~now rq with
  | Some batch -> Queue.push batch shard.Shard.s_queue
  | None ->
      (* arm the deadline flush for this arrival; [flush_due] is
         idempotent so over-arming is harmless *)
      if st.st_config.batcher.Batcher.max_delay_s > 0.0 then
        sched st
          ~at:(now +. st.st_config.batcher.Batcher.max_delay_s)
          (Ev_flush sid));
  dispatch st sid

and deadline_flush st sid =
  let shard = st.st_shards.(sid) in
  let now = Desim.now st.st_sim in
  List.iter
    (fun b -> Queue.push b shard.Shard.s_queue)
    (Batcher.flush_due shard.Shard.s_batcher ~now);
  dispatch st sid

(* Start batches while the shard has free workers.  An idle worker drains
   the batcher greedily (no point waiting for a deadline with capacity to
   spare). *)
and dispatch st sid =
  let shard = st.st_shards.(sid) in
  let now = Desim.now st.st_sim in
  if shard_alive st sid ~now then begin
    let continue = ref true in
    while !continue && shard.Shard.s_busy < Autoscale.workers shard.Shard.s_scaler do
      let next =
        if not (Queue.is_empty shard.Shard.s_queue) then
          Some (Queue.pop shard.Shard.s_queue)
        else Batcher.flush_oldest shard.Shard.s_batcher ~now
      in
      match next with
      | None -> continue := false
      | Some batch -> execute st sid batch
    done
  end

(* Execute one batch: the shard's orchestrator measures the
   single-request service time (fault verdicts and breaker feedback
   included), the batcher's amortization model scales it to the batch,
   and the completion lands back on the fabric clock. *)
and execute st sid (batch : Batcher.batch) =
  let shard = st.st_shards.(sid) in
  let size = Batcher.size batch in
  shard.Shard.s_busy <- shard.Shard.s_busy + 1;
  shard.Shard.s_inflight <- shard.Shard.s_inflight + size;
  let start = Desim.now st.st_sim in
  let r0 = List.hd batch.Batcher.b_requests in
  let orch = shard.Shard.s_orch in
  let dk = Orch.find_kernel orch r0.Workload.rq_kernel in
  let fault_key = r0.Workload.rq_id + (sid * 1_000_003) in
  let fail ~req:_ ~variant ~attempt =
    Faults.transient st.st_config.faults ~task:fault_key ~attempt
    || (List.mem_assoc variant dk.Orch.breakers
       && Faults.fpga_transient st.st_config.faults ~task:fault_key ~attempt)
  in
  let entry =
    match
      Orch.serve orch ~kernel:r0.Workload.rq_kernel ~n:1
        ~policy:st.st_config.orch_policy
        ~features:(fun _ -> r0.Workload.rq_features)
        ~fail ~max_attempts:st.st_config.orch_max_attempts ()
    with
    | [ e ] -> e
    | _ -> assert false
  in
  let t_batch =
    Batcher.service_time st.st_config.batcher
      ~single_s:entry.Orch.latency_s ~size
  in
  sched st ~at:(start +. t_batch)
    (Ev_complete { c_sid = sid; c_start = start; c_batch = batch;
                   c_entry = entry })

and complete st sid (batch : Batcher.batch) ~start (entry : Orch.request_log) =
  let shard = st.st_shards.(sid) in
  let now = Desim.now st.st_sim in
  let size = Batcher.size batch in
  shard.Shard.s_busy <- shard.Shard.s_busy - 1;
  shard.Shard.s_inflight <- shard.Shard.s_inflight - size;
  shard.Shard.s_batches <- shard.Shard.s_batches + 1;
  if size > 1 then
    shard.Shard.s_batched_requests <- shard.Shard.s_batched_requests + size;
  let crashed =
    Faults.down_between st.st_config.faults ~node:shard.Shard.s_name ~t0:start
      ~t1:now
  in
  let ok = entry.Orch.ok && not crashed in
  if ok then begin
    shard.Shard.s_served <- shard.Shard.s_served + size;
    List.iter
      (fun rq ->
        resolve st rq ~shard:sid ~outcome:Served ~batch:size
          ~variant:entry.Orch.variant ~degraded:entry.Orch.degraded)
      batch.Batcher.b_requests
  end
  else begin
    shard.Shard.s_failed <- shard.Shard.s_failed + size;
    let reason = if crashed then "shard-crash" else "execution-failed" in
    List.iter
      (fun (rq : Workload.request) ->
        let failures =
          1 + Option.value ~default:0 (Hashtbl.find_opt st.st_failures rq.Workload.rq_id)
        in
        Hashtbl.replace st.st_failures rq.Workload.rq_id failures;
        if failures <= st.st_config.max_reroutes then begin
          st.st_reroutes <- st.st_reroutes + 1;
          handle_arrival st rq ~fresh:false
        end
        else
          resolve st rq ~shard:sid ~outcome:(Failed reason) ~batch:size
            ~variant:entry.Orch.variant ~degraded:entry.Orch.degraded)
      batch.Batcher.b_requests
  end;
  dispatch st sid

(* One control tick: drain dead/draining shards to their siblings, apply
   the allocation controller, re-arm while the run is live, and take a
   snapshot at the boundary (pending events then include the next tick,
   so a restored run keeps ticking). *)
and tick st =
  let now = Desim.now st.st_sim in
  Array.iteri
    (fun sid shard ->
      if (not (shard_alive st sid ~now)) || Shard.draining shard then begin
        (* evacuate queued work; in-flight batches fail on their own *)
        let evacuees = ref [] in
        Queue.iter
          (fun (b : Batcher.batch) ->
            evacuees := List.rev_append b.Batcher.b_requests !evacuees)
          shard.Shard.s_queue;
        Queue.clear shard.Shard.s_queue;
        let rec drain_batcher () =
          match Batcher.flush_oldest shard.Shard.s_batcher ~now with
          | Some b ->
              evacuees := List.rev_append b.Batcher.b_requests !evacuees;
              drain_batcher ()
          | None -> ()
        in
        drain_batcher ();
        List.iter
          (fun rq -> handle_arrival st rq ~fresh:false)
          (List.rev !evacuees)
      end
      else begin
        match
          Autoscale.tick shard.Shard.s_scaler ~depth:(Shard.depth shard)
            ~busy:shard.Shard.s_busy
            ~backlog_age_s:(Shard.backlog_age shard ~now)
        with
        | Autoscale.Spawn n ->
            for _ = 1 to n do
              sched st
                ~at:(now +. st.st_config.autoscale.Autoscale.spawn_delay_s)
                (Ev_spawn sid)
            done
        | Autoscale.Retire | Autoscale.Hold -> ()
      end)
    st.st_shards;
  if st.st_outstanding > 0 || st.st_arrivals_pending > 0 then
    sched st ~at:(now +. st.st_config.autoscale.Autoscale.tick_s) Ev_tick;
  (* piggyback the watch scrape on the control tick: no new event types,
     no schedule perturbation — the journal and the run are unchanged *)
  (match st.st_watch with
  | Some w -> Watch.maybe_tick w ~now
  | None -> ());
  maybe_snapshot st

and worker_up st sid =
  let shard = st.st_shards.(sid) in
  Autoscale.worker_up shard.Shard.s_scaler;
  shard.Shard.s_peak_workers <-
    max shard.Shard.s_peak_workers (Autoscale.workers shard.Shard.s_scaler);
  dispatch st sid

and perform st = function
  | Ev_arrival rq -> handle_arrival st rq ~fresh:true
  | Ev_complete { c_sid; c_start; c_batch; c_entry } ->
      complete st c_sid c_batch ~start:c_start c_entry
  | Ev_flush sid -> deadline_flush st sid
  | Ev_spawn sid -> worker_up st sid
  | Ev_tick -> tick st

(* WAL discipline: the journal record is durable before the event's
   effects happen.  In replay mode the re-derived record must match the
   journaled one byte for byte; when the tail runs dry the run switches
   to live journaling (appending to the same on-disk segment the tail
   came from). *)
and journal st payload =
  match st.st_rmode with
  | R_off -> ()
  | R_live ->
      let rv = Option.get st.st_recovery in
      let t0 = Unix.gettimeofday () in
      Store.append rv.rv_store payload;
      let s = rv.rv_store in
      s.Store.work_s <- s.Store.work_s +. (Unix.gettimeofday () -. t0)
  | R_replay q -> (
      match !q with
      | [] ->
          st.st_rmode <- R_live;
          let rv = Option.get st.st_recovery in
          Store.append rv.rv_store payload
      | expected :: rest ->
          if not (String.equal expected payload) then
            raise
              (Store.Recovery_error
                 (Store.Replay_divergence { expected; got = payload }));
          st.st_replayed <- st.st_replayed + 1;
          q := rest;
          if rest = [] then st.st_rmode <- R_live)

and fire st id ev =
  let enc =
    match Hashtbl.find_opt st.st_pending id with
    | Some (_, _, enc) -> enc
    | None -> ""
  in
  Hashtbl.remove st.st_pending id;
  journal st enc;
  perform st ev

and sched st ~at ev =
  let id = st.st_ev_seq in
  st.st_ev_seq <- id + 1;
  let enc =
    match st.st_recovery with
    | None -> ""
    | Some rv ->
        let t0 = Unix.gettimeofday () in
        let e = pending_payload st.st_scratch id ~at ev in
        let s = rv.rv_store in
        s.Store.work_s <- s.Store.work_s +. (Unix.gettimeofday () -. t0);
        e
  in
  Hashtbl.replace st.st_pending id (at, ev, enc);
  Desim.at st.st_sim at (fun () -> fire st id ev)

and maybe_snapshot st =
  match st.st_recovery with
  | None -> ()
  | Some rv ->
      let now = Desim.now st.st_sim in
      if now -. st.st_last_snap >= rv.rv_snapshot_every_s then begin
        st.st_last_snap <- now;
        match st.st_rmode with
        | R_live ->
            st.st_snap_index <- st.st_snap_index + 1;
            let t0 = Unix.gettimeofday () in
            Store.write_snapshot rv.rv_store ~index:st.st_snap_index
              (encode_state st);
            let s = rv.rv_store in
            s.Store.work_s <- s.Store.work_s +. (Unix.gettimeofday () -. t0)
        | R_off | R_replay _ -> ()
      end

let instantiate_slos config tenant =
  List.map
    (fun (s : Slo.spec) ->
      { s with Slo.slo_name = tenant ^ "/" ^ s.Slo.slo_name })
    config.tenant_slos

(* Build a fresh fabric — shards deployed, monitors and admission wired,
   nothing scheduled yet.  [run] populates it with the workload;
   [resume] overwrites it from a snapshot. *)
let mk_state ~registry config ~deploy ~tenants ~horizon ~recovery ~watch =
  if config.n_shards <= 0 then invalid_arg "Fabric.run: n_shards <= 0";
  if config.max_reroutes < 0 then invalid_arg "Fabric.run: max_reroutes < 0";
  let sim = Desim.create () in
  let shards =
    Array.init config.n_shards (fun id ->
        Shard.create ~id ~batcher:config.batcher ~autoscale:config.autoscale
          ~deploy ())
  in
  let tenant_names = List.map (fun t -> t.Workload.t_name) tenants in
  let monitors =
    List.map
      (fun name ->
        ( name,
          List.map (Slo.monitor ~alert:config.alert)
            (instantiate_slos config name) ))
      tenant_names
  in
  let admission =
    Admission.create config.admission ~tenants:tenant_names
      ~monitors:(fun name ->
        Option.value ~default:[] (List.assoc_opt name monitors))
  in
  let users = Workload.closed_users ~seed:config.seed tenants in
  { st_config = config; st_sim = sim; st_shards = shards;
    st_balancer = Balancer.create config.balancer ~n_shards:config.n_shards;
    st_admission = admission; st_monitors = monitors; st_users = users;
    st_horizon = horizon; st_registry = registry; st_log = [];
    st_log_enc = Buffer.create 4096;
    st_outstanding = 0; st_arrivals_pending = 0; st_next_id = 0;
    st_reroutes = 0; st_failures = Hashtbl.create 64;
    st_recovery = recovery;
    st_rmode = (match recovery with None -> R_off | Some _ -> R_live);
    st_ev_seq = 0; st_scratch = Codec.writer ();
    st_pending = Hashtbl.create 64; st_last_snap = 0.0;
    st_snap_index = 0; st_replayed = 0; st_watch = watch }

(* Register what the fabric exposes to a watch: the whole metrics
   registry plus live control-state gauges (queue depth, busy workers,
   outstanding, live shards) sampled at scrape time.  Read-only by
   construction — the closures only inspect [st]. *)
let attach_watch st w =
  Watch.add_source w (Scrape.of_registry st.st_registry);
  Watch.add_source w
    (Scrape.of_fn ~name:"fabric" (fun ~now ->
         let depth = ref 0 and busy = ref 0 and alive = ref 0 in
         Array.iteri
           (fun sid shard ->
             depth := !depth + Shard.depth shard;
             busy := !busy + shard.Shard.s_busy;
             if shard_alive st sid ~now then incr alive)
           st.st_shards;
         [ ("fabric:queue_depth", [], float_of_int !depth);
           ("fabric:busy_workers", [], float_of_int !busy);
           ("fabric:alive_shards", [], float_of_int !alive);
           ("fabric:outstanding", [], float_of_int st.st_outstanding) ]))

(* Assemble the result after the simulation drains. *)
let finish st =
  let config = st.st_config in
  let registry = st.st_registry in
  let shards = st.st_shards in
  let horizon = st.st_horizon in
  let tenant_names = List.map fst st.st_monitors in
  let log =
    List.sort (fun a b -> compare a.sr_id b.sr_id) (List.rev st.st_log)
  in
  let makespan =
    List.fold_left (fun acc r -> Float.max acc r.sr_done_s) 0.0 log
  in
  let tenant_report name =
    let mine = List.filter (fun r -> String.equal r.sr_tenant name) log in
    let outcomes =
      List.filter_map
        (fun r ->
          match r.sr_outcome with
          | Served ->
              Some
                { Slo.o_t_s = r.sr_done_s; o_ok = true;
                  o_latency_s = r.sr_latency_s }
          | Failed _ ->
              Some
                { Slo.o_t_s = r.sr_done_s; o_ok = false;
                  o_latency_s = r.sr_latency_s }
          | Rejected _ -> None)
        mine
    in
    let count p = List.length (List.filter p mine) in
    { tr_tenant = name;
      tr_requests = List.length mine;
      tr_served = count (fun r -> r.sr_outcome = Served);
      tr_failed =
        count (fun r -> match r.sr_outcome with Failed _ -> true | _ -> false);
      tr_shed = Admission.rejections_by_reason st.st_admission ~tenant:name;
      tr_slos = Slo.evaluate_all (instantiate_slos config name) outcomes;
      tr_alerts =
        List.fold_left
          (fun acc m -> acc + Slo.alerts m)
          0
          (tenant_monitors st name) }
  in
  let shard_report (s : Shard.t) =
    { sh_id = s.Shard.s_id; sh_served = s.Shard.s_served;
      sh_failed = s.Shard.s_failed; sh_batches = s.Shard.s_batches;
      sh_batched_requests = s.Shard.s_batched_requests;
      sh_workers = Autoscale.workers s.Shard.s_scaler;
      sh_peak_workers = s.Shard.s_peak_workers }
  in
  let spawned =
    Array.fold_left
      (fun acc s -> acc + Autoscale.spawned_total s.Shard.s_scaler)
      0 shards
  and retired =
    Array.fold_left
      (fun acc s -> acc + Autoscale.retired_total s.Shard.s_scaler)
      0 shards
  in
  (* end-of-run fabric gauges *)
  Array.iter
    (fun (s : Shard.t) ->
      let labels = [ ("shard", s.Shard.s_name) ] in
      let g name v = Metrics.set (Metrics.gauge ~registry ~labels name) v in
      g "serving_workers" (float_of_int (Autoscale.workers s.Shard.s_scaler));
      g "serving_peak_workers" (float_of_int s.Shard.s_peak_workers);
      g "serving_shard_served" (float_of_int s.Shard.s_served);
      g "serving_shard_failed" (float_of_int s.Shard.s_failed);
      g "serving_shard_batches" (float_of_int s.Shard.s_batches))
    shards;
  (* recovery cost/health gauges; lost work and restore cost land from
     [resume] itself *)
  (match st.st_recovery with
  | None -> ()
  | Some rv ->
      Store.flush rv.rv_store;
      let g name v = Metrics.set (Metrics.gauge ~registry name) v in
      g "recovery_journal_records"
        (float_of_int rv.rv_store.Store.records_written);
      g "recovery_journal_bytes" (float_of_int rv.rv_store.Store.journal_bytes);
      g "recovery_snapshots" (float_of_int rv.rv_store.Store.snapshots_written);
      g "recovery_snapshot_bytes"
        (float_of_int rv.rv_store.Store.snapshot_bytes);
      g "recovery_replayed_events" (float_of_int st.st_replayed));
  { f_config = config; f_horizon_s = horizon; f_makespan_s = makespan;
    f_log = log; f_tenants = List.map tenant_report tenant_names;
    f_shards = Array.to_list (Array.map shard_report shards);
    f_spawned = spawned; f_retired = retired; f_reroutes = st.st_reroutes }

let run ?(registry = Metrics.default) ?recovery ?watch config ~deploy ~tenants
    ~horizon =
  let st = mk_state ~registry config ~deploy ~tenants ~horizon ~recovery ~watch in
  (match watch with Some w -> attach_watch st w | None -> ());
  (* the genesis tick is event 0, so a tick at t=0 still precedes any
     t=0 arrivals, matching the historical synchronous first tick *)
  sched st ~at:0.0 Ev_tick;
  let open_requests = Workload.generate ~seed:config.seed ~horizon tenants in
  st.st_next_id <- List.length open_requests;
  List.iter
    (fun (rq : Workload.request) ->
      st.st_arrivals_pending <- st.st_arrivals_pending + 1;
      sched st ~at:rq.Workload.rq_arrival_s (Ev_arrival rq))
    open_requests;
  List.iteri
    (fun i u ->
      let rq =
        { Workload.rq_id = st.st_next_id + i;
          rq_tenant = Workload.user_tenant u;
          rq_kernel = Workload.user_kernel u;
          rq_user = Workload.user_index u; rq_seq = 0;
          rq_arrival_s = Workload.first_arrival u;
          rq_features = Workload.user_features u 0 }
      in
      st.st_arrivals_pending <- st.st_arrivals_pending + 1;
      sched st ~at:(Workload.first_arrival u) (Ev_arrival rq))
    st.st_users;
  st.st_next_id <- st.st_next_id + List.length st.st_users;
  (* genesis snapshot: even a crash before the first tick boundary can
     restore (and will replay the journal from t=0) *)
  (match recovery with
  | Some rv ->
      let t0 = Unix.gettimeofday () in
      Store.write_snapshot rv.rv_store ~index:0 (encode_state st);
      let s = rv.rv_store in
      s.Store.work_s <- s.Store.work_s +. (Unix.gettimeofday () -. t0)
  | None -> ());
  Desim.run st.st_sim;
  let result = finish st in
  (* one last scrape after [finish] so the end-of-run gauges reach the
     dashboard *)
  (match watch with
  | Some w -> ignore (Watch.tick w ~now:(Desim.now st.st_sim))
  | None -> ());
  result

(* Restore from the newest valid snapshot in the store and drive the run
   to completion: replay-verify the journal tail, then continue live.
   The result must be byte-identical (render_log / render_slos /
   render_summary) to the same-seed uninterrupted run. *)
let resume ?(registry = Metrics.default) ?watch ~recovery config ~deploy
    ~tenants ~horizon =
  let t0_wall = Sys.time () in
  let st =
    mk_state ~registry config ~deploy ~tenants ~horizon
      ~recovery:(Some recovery) ~watch
  in
  (match watch with Some w -> attach_watch st w | None -> ());
  let plan = Store.plan_resume recovery.rv_store in
  let pending =
    try decode_state st (Codec.reader plan.Store.r_state)
    with Codec.Decode why ->
      raise (Store.Recovery_error (Store.Corrupt ("snapshot schema: " ^ why)))
  in
  st.st_snap_index <- plan.Store.r_next_snapshot_index - 1;
  st.st_last_snap <- Desim.now st.st_sim;
  st.st_rmode <-
    (match plan.Store.r_tail with
    | [] -> R_live
    | tail -> R_replay (ref tail));
  (* re-insert pending events ascending by id: id order is original
     insertion order, so Desim's (time, seq) tie-breaking is preserved *)
  List.iter
    (fun (id, at, ev, enc) ->
      Hashtbl.replace st.st_pending id (at, ev, enc);
      Desim.at st.st_sim at (fun () -> fire st id ev))
    pending;
  Desim.run st.st_sim;
  let result = finish st in
  (match watch with
  | Some w -> ignore (Watch.tick w ~now:(Desim.now st.st_sim))
  | None -> ());
  let g name v = Metrics.set (Metrics.gauge ~registry name) v in
  g "recovery_restore_cpu_s" (Sys.time () -. t0_wall);
  g "recovery_resume_snapshot" (float_of_int plan.Store.r_index);
  g "recovery_fallback_snapshots" (float_of_int plan.Store.r_fallbacks);
  g "recovery_lost_records" (if plan.Store.r_torn then 1.0 else 0.0);
  ( result,
    { rr_snapshot_index = plan.Store.r_index;
      rr_fallbacks = plan.Store.r_fallbacks;
      rr_skipped =
        List.map
          (fun (i, e) -> (i, Store.error_to_string e))
          plan.Store.r_skipped;
      rr_replayed = st.st_replayed;
      rr_torn_tail = plan.Store.r_torn } )

(* ---- summary accessors ---------------------------------------------------------- *)

let served_ok r =
  List.length (List.filter (fun x -> x.sr_outcome = Served) r.f_log)

let failed r =
  List.length
    (List.filter
       (fun x -> match x.sr_outcome with Failed _ -> true | _ -> false)
       r.f_log)

let shed r =
  List.length
    (List.filter
       (fun x -> match x.sr_outcome with Rejected _ -> true | _ -> false)
       r.f_log)

let availability r =
  let ok = served_ok r and bad = failed r in
  if ok + bad = 0 then 1.0
  else float_of_int ok /. float_of_int (ok + bad)

let throughput_rps r =
  if r.f_horizon_s <= 0.0 then 0.0
  else float_of_int (served_ok r) /. r.f_horizon_s

let latencies r =
  List.filter_map
    (fun x -> if x.sr_outcome = Served then Some x.sr_latency_s else None)
    (List.sort (fun a b -> compare a.sr_done_s b.sr_done_s) r.f_log)

let latency_quantile r q = Slo.exact_quantile (latencies r) q

let batched_requests r =
  List.fold_left
    (fun acc s -> acc + s.sh_batched_requests)
    0 r.f_shards

(* ---- deterministic rendering ---------------------------------------------------- *)

let outcome_name = function
  | Served -> "served"
  | Rejected reason -> "rejected:" ^ Admission.reason_name reason
  | Failed why -> "failed:" ^ why

let render_log r =
  let buf = Buffer.create (64 * List.length r.f_log) in
  List.iter
    (fun x ->
      Buffer.add_string buf
        (Printf.sprintf
           "#%06d t=%s k=%s shard=%d arr=%.9f done=%.9f lat=%.9f batch=%d \
            att=%d var=%s deg=%b %s\n"
           x.sr_id x.sr_tenant x.sr_kernel x.sr_shard x.sr_arrival_s
           x.sr_done_s x.sr_latency_s x.sr_batch x.sr_attempts x.sr_variant
           x.sr_degraded (outcome_name x.sr_outcome)))
    r.f_log;
  Buffer.contents buf

let render_slos r =
  let buf = Buffer.create 512 in
  List.iter
    (fun tr ->
      List.iter
        (fun (res : Slo.result) ->
          Buffer.add_string buf
            (Printf.sprintf "%s kind=%s attained=%.9f target=%.9f met=%b \
                             total=%d bad=%d\n"
               res.Slo.res_name res.Slo.res_kind res.Slo.attained
               res.Slo.target res.Slo.met res.Slo.total res.Slo.bad))
        tr.tr_slos;
      Buffer.add_string buf
        (Printf.sprintf "%s alerts=%d\n" tr.tr_tenant tr.tr_alerts))
    r.f_tenants;
  Buffer.contents buf

let render_summary r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "fabric: %d shard(s), balancer=%s, horizon %.3gs, makespan %.3gs\n"
       r.f_config.n_shards
       (Balancer.policy_name r.f_config.balancer)
       r.f_horizon_s r.f_makespan_s);
  Buffer.add_string buf
    (Printf.sprintf
       "requests: %d total = %d served + %d failed + %d shed | availability \
        %.2f%% | %.0f req/s | p99 %.4gs | %d batched | %d reroutes\n"
       (List.length r.f_log) (served_ok r) (failed r) (shed r)
       (100.0 *. availability r)
       (throughput_rps r)
       (latency_quantile r 0.99)
       (batched_requests r) r.f_reroutes);
  Buffer.add_string buf
    (Printf.sprintf "autoscale: %d spawned, %d retired\n" r.f_spawned
       r.f_retired);
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf
           "  shard%d: served=%d failed=%d batches=%d workers=%d (peak %d)\n"
           s.sh_id s.sh_served s.sh_failed s.sh_batches s.sh_workers
           s.sh_peak_workers))
    r.f_shards;
  List.iter
    (fun tr ->
      let shed_total =
        List.fold_left (fun acc (_, n) -> acc + n) 0 tr.tr_shed
      in
      Buffer.add_string buf
        (Printf.sprintf
           "  %-12s requests=%d served=%d failed=%d shed=%d alerts=%d\n"
           tr.tr_tenant tr.tr_requests tr.tr_served tr.tr_failed shed_total
           tr.tr_alerts);
      List.iter
        (fun (res : Slo.result) ->
          Buffer.add_string buf (Fmt.str "    %a\n" Slo.pp_result res))
        tr.tr_slos)
    r.f_tenants;
  Buffer.contents buf

(* ---- demo deployment ------------------------------------------------------------ *)

let demo_deploy ?(kernels = [ "mm" ]) ?breaker () orch =
  let estimate =
    { Everest_hls.Estimate.area = Everest_hls.Estimate.zero_area;
      cycles = 100_000; ii = 1; clock_mhz = 250.0; dynamic_power_w = 8.0 }
  in
  List.iter
    (fun kname ->
      ignore
        (Orch.deploy ?breaker orch ~kname
           ~impls:
             [ ("sw", Orch.Sw { flops = 5e8; bytes = 1e5; threads = 2 });
               ("hw",
                Orch.Hw
                  { bitstream = kname; estimate; in_bytes = 4096;
                    out_bytes = 4096 }) ]
           ~knowledge:
             (Everest_autotune.Knowledge.create kname
                [ { Everest_autotune.Knowledge.variant = "sw"; features = [];
                    metrics = [ ("time_s", 0.01) ] };
                  { Everest_autotune.Knowledge.variant = "hw"; features = [];
                    metrics = [ ("time_s", 0.001) ] } ])
           ~goal:
             (Everest_autotune.Goal.make
                (Everest_autotune.Goal.Minimize "time_s"))))
    kernels
