(** Seeded request generators: the traffic layer's model of "millions of
    users".

    A tenant owns one arrival process over one kernel.  Open-loop tenants
    emit a Poisson stream whose instantaneous rate is modulated by a
    diurnal sinusoid and, optionally, a two-state Markov-modulated burst
    overlay (calm/burst sojourns are exponential, the burst state
    multiplies the rate).  Closed-loop tenants model a fixed user
    population with exponential think times: the next request of a user
    exists only once the previous one resolved, so the fabric materializes
    them during the run via {!next_think}.

    Everything is drawn from per-tenant Park–Miller streams derived from
    the plan seed, so the same (seed, tenants, horizon) always yields the
    identical request list — the property the serving determinism checks
    pin down. *)

type burst = {
  burst_factor : float;  (** Rate multiplier while in the burst state (>= 1). *)
  mean_calm_s : float;  (** Mean sojourn in the calm state. *)
  mean_burst_s : float;  (** Mean sojourn in the burst state. *)
}

type arrival =
  | Open of {
      rate_rps : float;  (** Base mean arrival rate. *)
      diurnal_amplitude : float;  (** Sinusoidal modulation in [0, 1]. *)
      diurnal_period_s : float;
      burst : burst option;
    }
  | Closed of { users : int; think_s : float  (** Mean think time. *) }

type tenant = {
  t_name : string;
  t_kernel : string;  (** The deployed kernel this tenant's requests hit. *)
  t_arrival : arrival;
  t_features : int -> (string * float) list;
      (** Per-request data features for the tuner (keyed by request
          sequence number within the tenant); must be pure. *)
}

(** An open-loop tenant with optional diurnal/burst modulation. *)
val open_tenant :
  ?diurnal_amplitude:float ->
  ?diurnal_period_s:float ->
  ?burst:burst ->
  ?features:(int -> (string * float) list) ->
  name:string ->
  kernel:string ->
  rate_rps:float ->
  unit ->
  tenant

(** A closed-loop tenant: [users] clients with mean [think_s] think time. *)
val closed_tenant :
  ?features:(int -> (string * float) list) ->
  name:string ->
  kernel:string ->
  users:int ->
  think_s:float ->
  unit ->
  tenant

type request = {
  rq_id : int;  (** Dense ids in arrival order for pre-generated requests. *)
  rq_tenant : string;
  rq_kernel : string;
  rq_user : int;  (** Closed-loop user index; -1 for open-loop arrivals. *)
  rq_seq : int;  (** Sequence number within the tenant. *)
  rq_arrival_s : float;
  rq_features : (string * float) list;
}

(** All open-loop arrivals in [0, horizon), merged across tenants, sorted
    by arrival time (ties break by tenant order then sequence) and
    numbered densely from 0.  Closed-loop tenants contribute nothing here;
    see {!closed_users}. *)
val generate : ?seed:int -> horizon:float -> tenant list -> request list

(** Live state of one closed-loop user; mutable only through its private
    PRNG stream. *)
type closed_user

val closed_users : ?seed:int -> tenant list -> closed_user list

val user_tenant : closed_user -> string
val user_kernel : closed_user -> string
val user_index : closed_user -> int

(** First arrival of this user, uniformly staggered over one think time. *)
val first_arrival : closed_user -> float

(** Draw the next think time (advances the user's stream). *)
val next_think : closed_user -> float

(** Features for the user's [n]-th request. *)
val user_features : closed_user -> int -> (string * float) list

(** Think-time stream position, for checkpoint/restore: a restored run
    re-derives the user population via {!closed_users} (same seed, same
    order) and overwrites each stream position. *)
val user_rng_state : closed_user -> int

val set_user_rng_state : closed_user -> int -> unit

(** Instantaneous arrival rate of an open-loop tenant at time [t]
    (ignoring the burst overlay); 0 for closed-loop tenants. *)
val rate_at : tenant -> float -> float

(** Stable, platform-independent string hash used to derive per-tenant
    streams (also used by the balancer's hash ring). *)
val stable_hash : string -> int
