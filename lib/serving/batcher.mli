(** Size/deadline-triggered request coalescing.

    Compatible requests (same kernel, hence the same deployed variants)
    queue per key and leave as one batch when (a) the key reaches
    [max_batch], (b) the oldest member has waited [max_delay_s] — the
    fabric schedules a flush at that deadline — or (c) a worker goes idle
    and greedily drains the oldest pending key, so batching only delays
    requests when the shard is actually busy.

    A batch executes as one orchestrator request: the data transfer and
    FPGA pipeline fill are paid once and each extra member adds only
    [marginal_cost] of the single-request service time (the fabric's
    amortization model for sharing a configured variant). *)

type config = {
  max_batch : int;  (** Size trigger; 1 disables coalescing. *)
  max_delay_s : float;  (** Deadline trigger (oldest-member age). *)
  marginal_cost : float;
      (** Fraction of the single-request time each extra member costs,
          in [0, 1]; 1 = no batching benefit. *)
}

val default_config : config

type batch = {
  b_key : string;  (** The shared kernel. *)
  b_requests : Workload.request list;  (** Oldest first; never empty. *)
  b_formed_s : float;
}

val size : batch -> int

(** Batch service time from the measured single-request time. *)
val service_time : config -> single_s:float -> size:int -> float

type t

val create : config -> t

(** Queue one request at [now]; returns the full batch when this arrival
    hits the size trigger. *)
val add : t -> now:float -> Workload.request -> batch option

(** Batches whose oldest member has aged past the deadline. *)
val flush_due : t -> now:float -> batch list

(** Greedily form a batch from the key with the oldest member (for an
    idle worker); [None] when nothing is pending. *)
val flush_oldest : t -> now:float -> batch option

(** Requests currently pending across all keys. *)
val pending : t -> int

(** Age of the oldest pending request; 0 when empty. *)
val oldest_age : t -> now:float -> float

(** Earliest pending deadline (oldest member's arrival + max_delay_s). *)
val next_deadline : t -> float option

(** {2 Checkpoint / restore} *)

(** Per-key accumulators [(key, oldest_arrival_s, requests)] with
    requests newest first and keys in insertion order, exactly as
    stored, so a restored batcher forms identical batches. *)
val export : t -> (string * float * Workload.request list) list

val import : t -> (string * float * Workload.request list) list -> unit
