(** One serving shard: a private single-node cluster (POWER9 with bus
    FPGAs) running its own {!Everest_runtime.Orchestrator}, fronted by a
    batcher, a run queue of formed batches and an auto-allocated worker
    pool.  The orchestrator's simulated clock is the shard's *service
    oracle* — each batch executes there to measure its service time —
    while queueing, concurrency and arrivals live on the fabric clock.

    A shard is [draining] while any deployed hardware variant's circuit
    breaker is open: the balancer routes new requests to siblings until a
    half-open probe on the shard's orchestrator recovers the variant. *)

type t = {
  s_id : int;
  s_name : string;
  s_orch : Everest_runtime.Orchestrator.t;
  s_batcher : Batcher.t;
  s_scaler : Autoscale.t;
  s_queue : Batcher.batch Queue.t;  (** Formed batches awaiting a worker. *)
  mutable s_busy : int;  (** Workers currently executing a batch. *)
  mutable s_inflight : int;  (** Requests inside executing batches. *)
  mutable s_served : int;
  mutable s_failed : int;
  mutable s_batches : int;  (** Batches executed. *)
  mutable s_batched_requests : int;  (** Requests that shared a batch (size > 1). *)
  mutable s_peak_workers : int;
}

(** Build the shard's cluster and orchestrator and deploy kernels through
    [deploy] (a per-shard registry keeps orchestrator metrics from
    colliding across shards). *)
val create :
  id:int ->
  batcher:Batcher.config ->
  autoscale:Autoscale.config ->
  deploy:(Everest_runtime.Orchestrator.t -> unit) ->
  unit ->
  t

(** Requests queued (batcher + run queue), excluding in-flight. *)
val depth : t -> int

(** Queued + in-flight requests — the balancer's load signal. *)
val outstanding : t -> int

(** Age of the oldest queued request (batcher or run queue). *)
val backlog_age : t -> now:float -> float

(** Any deployed hardware variant's breaker currently open? *)
val draining : t -> bool

(** Names of kernels deployed on this shard. *)
val kernels : t -> string list
