(* Seeded request generators for the serving fabric.

   Open-loop tenants are non-homogeneous Poisson processes realized by
   thinning: gaps are drawn at the tenant's peak rate and each candidate
   arrival is accepted with probability rate(t)/peak, where rate(t) folds
   in the diurnal sinusoid and the Markov-modulated burst overlay.  The
   burst overlay is a two-state chain whose calm/burst sojourns are
   exponential draws from the same per-tenant stream, so one seed fixes
   the whole sample path.

   Closed-loop tenants cannot be pre-generated (a user's next arrival
   depends on when the previous request resolved), so they are exposed as
   [closed_user] values whose think times the fabric draws as requests
   complete — again from private per-user streams, keeping the full run
   deterministic. *)

module Rng = Everest_parallel.Rng

type burst = {
  burst_factor : float;
  mean_calm_s : float;
  mean_burst_s : float;
}

type arrival =
  | Open of {
      rate_rps : float;
      diurnal_amplitude : float;
      diurnal_period_s : float;
      burst : burst option;
    }
  | Closed of { users : int; think_s : float }

type tenant = {
  t_name : string;
  t_kernel : string;
  t_arrival : arrival;
  t_features : int -> (string * float) list;
}

let no_features _ = []

let open_tenant ?(diurnal_amplitude = 0.0) ?(diurnal_period_s = 1.0) ?burst
    ?(features = no_features) ~name ~kernel ~rate_rps () =
  if rate_rps <= 0.0 then invalid_arg "Workload.open_tenant: rate_rps <= 0";
  if diurnal_amplitude < 0.0 || diurnal_amplitude > 1.0 then
    invalid_arg "Workload.open_tenant: diurnal_amplitude outside [0, 1]";
  (match burst with
  | Some b when b.burst_factor < 1.0 || b.mean_calm_s <= 0.0 || b.mean_burst_s <= 0.0
    ->
      invalid_arg "Workload.open_tenant: malformed burst overlay"
  | _ -> ());
  { t_name = name; t_kernel = kernel; t_features = features;
    t_arrival =
      Open
        { rate_rps; diurnal_amplitude; diurnal_period_s = diurnal_period_s;
          burst } }

let closed_tenant ?(features = no_features) ~name ~kernel ~users ~think_s () =
  if users <= 0 then invalid_arg "Workload.closed_tenant: users <= 0";
  if think_s <= 0.0 then invalid_arg "Workload.closed_tenant: think_s <= 0";
  { t_name = name; t_kernel = kernel; t_features = features;
    t_arrival = Closed { users; think_s } }

type request = {
  rq_id : int;
  rq_tenant : string;
  rq_kernel : string;
  rq_user : int;
  rq_seq : int;
  rq_arrival_s : float;
  rq_features : (string * float) list;
}

(* Stable across runs and platforms, unlike [Hashtbl.hash] whose contract
   does not promise cross-version stability. *)
let stable_hash s =
  let h = ref 17 in
  String.iter (fun c -> h := ((!h * 131) + Char.code c) land 0x3FFFFFFF) s;
  (* avalanche finalizer: the polynomial fold alone leaves near-identical
     strings (tenant0, tenant1, ...) clustered, which would pile them into
     one gap of the balancer's hash ring *)
  let x = !h in
  let x = (x lxor (x lsr 15)) * 0x2C1B3C6D land 0x3FFFFFFF in
  let x = (x lxor (x lsr 12)) * 0x297A2D39 land 0x3FFFFFFF in
  x lxor (x lsr 15)

let tenant_rng ~seed t = Rng.create ((seed * 0x9E3779B1) lxor stable_hash t.t_name)

(* Exponential draw with the given rate; [Rng.float] is in [0, 1) so the
   log argument stays positive. *)
let exp_draw rng ~rate = -.Float.log (1.0 -. Rng.float rng) /. rate

let two_pi = 8.0 *. Float.atan 1.0

let diurnal_factor ~amplitude ~period_s t =
  1.0 +. (amplitude *. Float.sin (two_pi *. t /. period_s))

let rate_at t at =
  match t.t_arrival with
  | Closed _ -> 0.0
  | Open { rate_rps; diurnal_amplitude; diurnal_period_s; _ } ->
      rate_rps
      *. diurnal_factor ~amplitude:diurnal_amplitude ~period_s:diurnal_period_s
           at

(* One tenant's arrivals in [0, horizon) as (t, seq) pairs. *)
let open_arrivals ~seed ~horizon tenant =
  match tenant.t_arrival with
  | Closed _ -> []
  | Open { rate_rps; diurnal_amplitude; burst; _ } ->
      let rng = tenant_rng ~seed tenant in
      let peak_burst =
        match burst with Some b -> b.burst_factor | None -> 1.0
      in
      let peak = rate_rps *. (1.0 +. diurnal_amplitude) *. peak_burst in
      (* burst-state path: [switch_at] is the next state flip *)
      let bursting = ref false in
      let switch_at =
        ref
          (match burst with
          | Some b -> exp_draw rng ~rate:(1.0 /. b.mean_calm_s)
          | None -> infinity)
      in
      let advance_state t =
        match burst with
        | None -> ()
        | Some b ->
            while !switch_at <= t do
              bursting := not !bursting;
              let mean =
                if !bursting then b.mean_burst_s else b.mean_calm_s
              in
              switch_at := !switch_at +. exp_draw rng ~rate:(1.0 /. mean)
            done
      in
      let rec loop t seq acc =
        let t = t +. exp_draw rng ~rate:peak in
        if t >= horizon then List.rev acc
        else begin
          advance_state t;
          let inst =
            rate_at tenant t
            *. (if !bursting then peak_burst else 1.0)
          in
          if Rng.float rng < inst /. peak then
            loop t (seq + 1) ((t, seq) :: acc)
          else loop t seq acc
        end
      in
      loop 0.0 0 []

let generate ?(seed = 0) ~horizon tenants =
  if horizon <= 0.0 then invalid_arg "Workload.generate: horizon <= 0";
  let tagged =
    List.concat
      (List.mapi
         (fun ti t ->
           List.map (fun (at, seq) -> (at, ti, seq, t)) (open_arrivals ~seed ~horizon t))
         tenants)
  in
  let sorted =
    List.sort
      (fun (a, ti, sa, _) (b, tj, sb, _) ->
        match compare a b with
        | 0 -> ( match compare ti tj with 0 -> compare sa sb | c -> c)
        | c -> c)
      tagged
  in
  List.mapi
    (fun id (at, _, seq, t) ->
      { rq_id = id; rq_tenant = t.t_name; rq_kernel = t.t_kernel;
        rq_user = -1; rq_seq = seq; rq_arrival_s = at;
        rq_features = t.t_features seq })
    sorted

type closed_user = {
  cu_tenant : tenant;
  cu_user : int;
  cu_think_s : float;
  cu_rng : Rng.t;
  cu_first : float;
}

let closed_users ?(seed = 0) tenants =
  List.concat_map
    (fun t ->
      match t.t_arrival with
      | Open _ -> []
      | Closed { users; think_s } ->
          List.init users (fun u ->
              let rng =
                Rng.create
                  ((seed * 0x9E3779B1)
                  lxor stable_hash (t.t_name ^ "#" ^ string_of_int u))
              in
              let first = Rng.float rng *. think_s in
              { cu_tenant = t; cu_user = u; cu_think_s = think_s;
                cu_rng = rng; cu_first = first }))
    tenants

let user_tenant u = u.cu_tenant.t_name
let user_kernel u = u.cu_tenant.t_kernel
let user_index u = u.cu_user
let first_arrival u = u.cu_first
let next_think u = exp_draw u.cu_rng ~rate:(1.0 /. u.cu_think_s)
let user_features u n = u.cu_tenant.t_features n

(* Checkpoint/restore: a restored run re-derives the user population via
   [closed_users] (same seed, same order) and overwrites each think-time
   stream position. *)
let user_rng_state u = Rng.state u.cu_rng
let set_user_rng_state u s = Rng.set_state u.cu_rng s
