(* Per-shard state; see the interface for the model. *)

module Orch = Everest_runtime.Orchestrator
module Cluster = Everest_platform.Cluster
module Metrics = Everest_telemetry.Metrics

type t = {
  s_id : int;
  s_name : string;
  s_orch : Orch.t;
  s_batcher : Batcher.t;
  s_scaler : Autoscale.t;
  s_queue : Batcher.batch Queue.t;
  mutable s_busy : int;
  mutable s_inflight : int;
  mutable s_served : int;
  mutable s_failed : int;
  mutable s_batches : int;
  mutable s_batched_requests : int;
  mutable s_peak_workers : int;
}

let create ~id ~batcher ~autoscale ~deploy () =
  let name = "shard" ^ string_of_int id in
  let cluster = Cluster.create [ Cluster.power9_node name ] in
  let orch =
    Orch.create ~registry:(Metrics.create_registry ()) cluster ~host_name:name
  in
  deploy orch;
  let scaler = Autoscale.create autoscale in
  { s_id = id; s_name = name; s_orch = orch;
    s_batcher = Batcher.create batcher; s_scaler = scaler;
    s_queue = Queue.create (); s_busy = 0; s_inflight = 0; s_served = 0;
    s_failed = 0; s_batches = 0; s_batched_requests = 0;
    s_peak_workers = Autoscale.workers scaler }

let queued_requests t =
  Queue.fold (fun acc b -> acc + Batcher.size b) 0 t.s_queue

let depth t = Batcher.pending t.s_batcher + queued_requests t
let outstanding t = depth t + t.s_inflight

let backlog_age t ~now =
  let from_queue =
    Queue.fold
      (fun acc (b : Batcher.batch) ->
        match b.Batcher.b_requests with
        | r :: _ -> Float.max acc (now -. r.Workload.rq_arrival_s)
        | [] -> acc)
      0.0 t.s_queue
  in
  Float.max (Batcher.oldest_age t.s_batcher ~now) from_queue

let draining t =
  List.exists
    (fun (dk : Orch.deployed_kernel) ->
      List.exists
        (fun (variant, _) ->
          Orch.breaker_state t.s_orch dk ~variant
          = Some Everest_resilience.Breaker.Open)
        dk.Orch.breakers)
    t.s_orch.Orch.kernels

let kernels t =
  List.rev_map (fun (dk : Orch.deployed_kernel) -> dk.Orch.kname)
    t.s_orch.Orch.kernels
