(** Fixed-capacity time series with staircase downsampling.

    A series keeps one ring of aggregate points per resolution tier:
    tier 0 holds every observed sample, tier [i] one point per
    [res_s * factor^i] seconds, all bounded by [capacity] points per
    tier.  Time is caller-supplied, so series built over a simulated
    clock are deterministic. *)

type point = {
  pt_t : float;  (** Window start (tier 0: the sample time). *)
  pt_last : float;  (** Last raw value observed in the window. *)
  pt_count : int;
  pt_sum : float;
  pt_min : float;
  pt_max : float;
}

val pt_mean : point -> float

type t

val create :
  ?capacity:int ->
  ?tiers:int ->
  ?factor:int ->
  ?res_s:float ->
  name:string ->
  labels:(string * string) list ->
  unit ->
  t

val name : t -> string

(** Sorted by key, duplicates dropped. *)
val labels : t -> (string * string) list

(** Raw observations ever recorded (not bounded by capacity). *)
val samples : t -> int

val n_tiers : t -> int

(** Resolution of tier [i] in seconds; 0 for the raw tier. *)
val tier_res : t -> int -> float

val observe : t -> t:float -> float -> unit

(** Points of one tier, oldest first, the still-open coarse window
    included last. *)
val points : t -> tier:int -> point list

(** The newest point, when any sample was ever observed. *)
val latest : t -> point option

(** Points with [pt_t] in [[t0, t1]], read from the finest tier whose
    ring still reaches back to [t0]. *)
val between : t -> t0:float -> t1:float -> point list

(** A collection of series keyed by (name × labels) with deterministic
    sorted iteration. *)
module Store : sig
  type series = t
  type t

  (** Ring parameters apply to every series the store creates. *)
  val create :
    ?capacity:int -> ?tiers:int -> ?factor:int -> ?res_s:float -> unit -> t

  (** Get or create. *)
  val series : t -> name:string -> labels:(string * string) list -> series

  val find : t -> name:string -> labels:(string * string) list -> series option
  val observe :
    t -> now:float -> name:string -> labels:(string * string) list -> float -> unit

  (** All series, sorted by (name, labels). *)
  val to_list : t -> series list

  val size : t -> int
end
