(** Declarative recording and alert rules evaluated once per scrape tick
    on caller-supplied time.

    Rules evaluate in declaration order; a recording rule's derived series
    is visible to every rule after it in the same tick.  Alert firing is
    level-triggered with [for_s] hold-down and rising-edge counting — the
    same semantics as {!Everest_observe.Slo} burn-rate alerts.  An
    expression over a series with no data yet is undefined for the tick:
    the rule is skipped and alert state is untouched. *)

type labels = (string * string) list

type expr =
  | Const of float
  | Last of string * labels  (** Newest value of a series. *)
  | Mean_over of string * labels * float  (** Trailing window, seconds. *)
  | Max_over of string * labels * float
  | Min_over of string * labels * float
  | Rate_over of string * labels * float
      (** (last - first) / (t_last - t_first) over the window: the
          counter-increase rate. *)
  | Quantile_over of string * labels * float * float  (** q, window_s. *)
  | Count_over of string * labels * float  (** Sketch samples in window. *)
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr  (** Undefined on a zero divisor. *)

type cond =
  | Above of float
  | Below of float
  | Outside of float * float  (** Inclusive band [lo, hi]. *)
  | Detector of Detect.t  (** Stepped once per evaluated tick. *)

type rule

val record : ?labels:labels -> string -> expr -> rule
val alert : ?for_s:float -> string -> expr -> cond -> rule

(** What expressions read: the series store plus a sketch lookup. *)
type ctx = {
  ctx_store : Series.Store.t;
  ctx_sketch : string -> labels -> Sketch.Windowed.t option;
}

type alert_state = {
  as_name : string;
  mutable as_pending_since : float;  (** nan = condition not holding. *)
  mutable as_firing : bool;
  mutable as_edges : int;  (** Rising edges. *)
  mutable as_since : float;  (** When it started firing; nan otherwise. *)
  mutable as_value : float;  (** Last evaluated expression value. *)
}

type t

val engine : rule list -> t

(** One evaluation pass; returns the alerts that newly fired this tick. *)
val eval : t -> ctx -> now:float -> alert_state list

(** One state per alert rule, in declaration order. *)
val alert_states : t -> alert_state list

val firing : t -> alert_state list
val edges_total : t -> int
