(* Declarative recording and alert rules, evaluated once per scrape tick
   on caller-supplied time.

   A recording rule names an expression and writes its value back into the
   store as a derived series, so later rules (and the dashboard) can read
   it like any scraped signal; rules evaluate in declaration order, so a
   recording rule's output is visible to everything after it in the same
   tick.  An alert rule tests an expression against a condition — a static
   threshold or an online change detector — with [for_s] hold-down: the
   condition must hold continuously that long before the alert fires.
   Firing is level-triggered and [edges] counts rising edges, the same
   semantics as the Slo two-window burn alerts, so both kinds of alert
   aggregate uniformly.

   Expressions read the store (latest value / window aggregates over the
   staircase rings) and the windowed sketches (quantiles in O(buckets)).
   An expression over a series with no data yet is undefined: the rule is
   skipped for the tick and alert hold-down state is left untouched. *)

type labels = (string * string) list

type expr =
  | Const of float
  | Last of string * labels  (* newest value of a series *)
  | Mean_over of string * labels * float  (* trailing window, seconds *)
  | Max_over of string * labels * float
  | Min_over of string * labels * float
  | Rate_over of string * labels * float
      (* (last - first) / (t_last - t_first) over the window: the
         counter-increase rate *)
  | Quantile_over of string * labels * float * float  (* q, window_s *)
  | Count_over of string * labels * float  (* sketch samples in window *)
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr

type cond =
  | Above of float
  | Below of float
  | Outside of float * float  (* inclusive band [lo, hi] *)
  | Detector of Detect.t  (* stepped once per evaluated tick *)

type rule =
  | Record of { rc_name : string; rc_labels : labels; rc_expr : expr }
  | Alert of {
      al_name : string;
      al_expr : expr;
      al_cond : cond;
      al_for_s : float;
    }

let record ?(labels = []) name expr =
  Record { rc_name = name; rc_labels = labels; rc_expr = expr }

let alert ?(for_s = 0.0) name expr cond =
  Alert { al_name = name; al_expr = expr; al_cond = cond; al_for_s = for_s }

(* What expressions read: the series store plus a sketch lookup (the watch
   facade wires its windowed sketches in; bare engines can pass a lookup
   that always misses). *)
type ctx = {
  ctx_store : Series.Store.t;
  ctx_sketch : string -> labels -> Sketch.Windowed.t option;
}

type alert_state = {
  as_name : string;
  mutable as_pending_since : float;  (* nan = condition not holding *)
  mutable as_firing : bool;
  mutable as_edges : int;
  mutable as_since : float;  (* when it started firing; nan otherwise *)
  mutable as_value : float;  (* last evaluated expression value *)
}

type t = {
  e_rules : rule list;
  e_alerts : (string * alert_state) list;  (* one per alert rule, in order *)
  mutable e_evals : int;
}

let engine rules =
  { e_rules = rules;
    e_alerts =
      List.filter_map
        (function
          | Record _ -> None
          | Alert a ->
              Some
                ( a.al_name,
                  { as_name = a.al_name; as_pending_since = Float.nan;
                    as_firing = false; as_edges = 0; as_since = Float.nan;
                    as_value = 0.0 } ))
        rules;
    e_evals = 0 }

let alert_states t = List.map snd t.e_alerts
let firing t = List.filter (fun s -> s.as_firing) (alert_states t)

let edges_total t =
  List.fold_left (fun acc s -> acc + s.as_edges) 0 (alert_states t)

let rec eval_expr ctx ~now = function
  | Const v -> Some v
  | Last (name, labels) -> (
      match Series.Store.find ctx.ctx_store ~name ~labels with
      | None -> None
      | Some s -> Option.map (fun p -> p.Series.pt_last) (Series.latest s))
  | Mean_over (name, labels, w) ->
      window_agg ctx ~now name labels w (fun ps ->
          let n = List.fold_left (fun a p -> a + p.Series.pt_count) 0 ps in
          let sum = List.fold_left (fun a p -> a +. p.Series.pt_sum) 0.0 ps in
          if n = 0 then None else Some (sum /. float_of_int n))
  | Max_over (name, labels, w) ->
      window_agg ctx ~now name labels w (fun ps ->
          Some
            (List.fold_left
               (fun a p -> Float.max a p.Series.pt_max)
               neg_infinity ps))
  | Min_over (name, labels, w) ->
      window_agg ctx ~now name labels w (fun ps ->
          Some
            (List.fold_left (fun a p -> Float.min a p.Series.pt_min) infinity ps))
  | Rate_over (name, labels, w) ->
      window_agg ctx ~now name labels w (fun ps ->
          match ps with
          | [] | [ _ ] -> None
          | first :: _ ->
              let last = List.nth ps (List.length ps - 1) in
              let dt = last.Series.pt_t -. first.Series.pt_t in
              if dt <= 0.0 then None
              else Some ((last.Series.pt_last -. first.Series.pt_last) /. dt))
  | Quantile_over (name, labels, q, w) -> (
      match ctx.ctx_sketch name labels with
      | None -> None
      | Some wd ->
          let sk = Sketch.Windowed.query wd ~now ~window_s:w in
          if Sketch.count sk = 0 then None else Some (Sketch.quantile sk q))
  | Count_over (name, labels, w) -> (
      match ctx.ctx_sketch name labels with
      | None -> None
      | Some wd ->
          Some
            (float_of_int
               (Sketch.count (Sketch.Windowed.query wd ~now ~window_s:w))))
  | Add (a, b) -> lift2 ctx ~now ( +. ) a b
  | Sub (a, b) -> lift2 ctx ~now ( -. ) a b
  | Mul (a, b) -> lift2 ctx ~now ( *. ) a b
  | Div (a, b) -> (
      match (eval_expr ctx ~now a, eval_expr ctx ~now b) with
      | Some x, Some y when y <> 0.0 -> Some (x /. y)
      | _ -> None)

and lift2 ctx ~now op a b =
  match (eval_expr ctx ~now a, eval_expr ctx ~now b) with
  | Some x, Some y -> Some (op x y)
  | _ -> None

and window_agg ctx ~now name labels w f =
  match Series.Store.find ctx.ctx_store ~name ~labels with
  | None -> None
  | Some s -> (
      match Series.between s ~t0:(now -. w) ~t1:now with
      | [] -> None
      | ps -> f ps)

(* One evaluation pass.  Returns the alerts that newly fired this tick
   (rising edges), in rule order. *)
let eval t ctx ~now =
  t.e_evals <- t.e_evals + 1;
  let fired = ref [] in
  List.iter
    (fun rule ->
      match rule with
      | Record { rc_name; rc_labels; rc_expr } -> (
          match eval_expr ctx ~now rc_expr with
          | None -> ()
          | Some v ->
              Series.Store.observe ctx.ctx_store ~now ~name:rc_name
                ~labels:rc_labels v)
      | Alert { al_name; al_expr; al_cond; al_for_s } -> (
          match eval_expr ctx ~now al_expr with
          | None -> ()
          | Some v ->
              let st = List.assoc al_name t.e_alerts in
              st.as_value <- v;
              let holds =
                match al_cond with
                | Above x -> v > x
                | Below x -> v < x
                | Outside (lo, hi) -> v < lo || v > hi
                | Detector d -> Detect.step d v = Detect.Alarm
              in
              if holds then begin
                if Float.is_nan st.as_pending_since then
                  st.as_pending_since <- now;
                let held_s = now -. st.as_pending_since in
                if held_s >= al_for_s && not st.as_firing then begin
                  st.as_firing <- true;
                  st.as_since <- now;
                  st.as_edges <- st.as_edges + 1;
                  fired := st :: !fired
                end
              end
              else begin
                st.as_pending_since <- Float.nan;
                if st.as_firing then begin
                  st.as_firing <- false;
                  st.as_since <- Float.nan
                end
              end))
    t.e_rules;
  List.rev !fired
