(* Deterministic dashboard rendering over a watch.

   Everything here is a pure function of watch state and the caller's
   [now]: series iterate in sorted store order, sketches in
   first-observation order, floats print at fixed precision, and the
   sparkline ramp is plain ASCII — so two same-seed runs (or a run and
   its resume) render byte-identical dashboards, which is exactly what
   the CI byte-identity check diffs.  [render] is the text form shown by
   [everest_cli top]; [to_json] is the machine form behind [--json]. *)

module Json = Everest_observe.Json

let ramp = " .:-=+*#%@"

(* Sparkline over the newest [width] tier-0 points, normalized to their
   own min..max (a flat series renders as all-middle). *)
let sparkline ?(width = 16) (s : Series.t) =
  let pts = Series.points s ~tier:0 in
  let n = List.length pts in
  let pts = if n > width then List.filteri (fun i _ -> i >= n - width) pts else pts in
  match pts with
  | [] -> ""
  | pts ->
      let vs = List.map Series.pt_mean pts in
      let lo = List.fold_left Float.min Float.infinity vs in
      let hi = List.fold_left Float.max Float.neg_infinity vs in
      let span = hi -. lo in
      let glyph v =
        let idx =
          if span <= 0.0 then (String.length ramp - 1) / 2
          else
            int_of_float
              (Float.round
                 ((v -. lo) /. span *. float_of_int (String.length ramp - 1)))
        in
        ramp.[max 0 (min (String.length ramp - 1) idx)]
      in
      String.init (List.length vs) (fun i -> glyph (List.nth vs i))

let fmt_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)
      ^ "}"

let fmt_f v = if Float.is_nan v then "-" else Printf.sprintf "%.6f" v

(* ---- text ------------------------------------------------------------------------ *)

let render ?(spark_width = 16) ?(quantiles = [ 0.5; 0.99 ]) (w : Watch.t)
    ~now =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let firing = Watch.firing w in
  line "everest top  t=%s  ticks=%d  series=%d  sketch_samples=%d  firing=%d"
    (fmt_f now) (Watch.ticks w)
    (Series.Store.size (Watch.store w))
    (Watch.samples w) (List.length firing);
  let series = Series.Store.to_list (Watch.store w) in
  if series <> [] then begin
    line "";
    line "%-44s %12s %12s %12s  %s" "SERIES" "LAST" "MEAN" "MAX" "TREND";
    List.iter
      (fun s ->
        let id = Series.name s ^ fmt_labels (Series.labels s) in
        match Series.latest s with
        | None -> line "%-44s %12s %12s %12s" id "-" "-" "-"
        | Some _ ->
            let pts = Series.points s ~tier:0 in
            let last = List.nth pts (List.length pts - 1) in
            let sum, mx =
              List.fold_left
                (fun (sum, mx) p ->
                  (sum +. Series.pt_mean p, Float.max mx p.Series.pt_max))
                (0.0, Float.neg_infinity) pts
            in
            line "%-44s %12s %12s %12s  %s" id
              (fmt_f last.Series.pt_last)
              (fmt_f (sum /. float_of_int (List.length pts)))
              (fmt_f mx)
              (sparkline ~width:spark_width s))
      series
  end;
  let sketches = Watch.sketch_list w in
  if sketches <> [] then begin
    line "";
    let qhdr =
      String.concat ""
        (List.map (fun q -> Printf.sprintf " %12s" (Printf.sprintf "p%g" (100.0 *. q))) quantiles)
    in
    line "%-44s %12s%s" "SKETCH (window)" "COUNT" qhdr;
    List.iter
      (fun (name, labels, wd) ->
        let sk =
          Sketch.Windowed.query wd ~now ~window_s:(Sketch.Windowed.span_s wd)
        in
        let qs =
          String.concat ""
            (List.map
               (fun q -> Printf.sprintf " %12s" (fmt_f (Sketch.quantile sk q)))
               quantiles)
        in
        line "%-44s %12d%s" (name ^ fmt_labels labels) (Sketch.count sk) qs)
      sketches
  end;
  let alerts = Watch.alert_states w in
  if alerts <> [] then begin
    line "";
    line "%-32s %8s %12s %6s %12s" "ALERT" "STATE" "VALUE" "EDGES" "SINCE";
    List.iter
      (fun (a : Rules.alert_state) ->
        line "%-32s %8s %12s %6d %12s" a.Rules.as_name
          (if a.Rules.as_firing then "FIRING" else "ok")
          (fmt_f a.Rules.as_value) a.Rules.as_edges
          (fmt_f a.Rules.as_since))
      alerts
  end;
  Buffer.contents buf

(* ---- json ------------------------------------------------------------------------ *)

let num v = if Float.is_nan v then Json.Null else Json.Num v
let labels_json labels = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let to_json ?(quantiles = [ 0.5; 0.99 ]) (w : Watch.t) ~now =
  let series_json s =
    let pts = Series.points s ~tier:0 in
    let last = Series.latest s in
    Json.Obj
      [ ("name", Json.Str (Series.name s));
        ("labels", labels_json (Series.labels s));
        ("samples", Json.Num (float_of_int (Series.samples s)));
        ( "last",
          match last with
          | None -> Json.Null
          | Some p -> num p.Series.pt_last );
        ( "mean",
          if pts = [] then Json.Null
          else
            num
              (List.fold_left (fun acc p -> acc +. Series.pt_mean p) 0.0 pts
              /. float_of_int (List.length pts)) );
        ( "max",
          if pts = [] then Json.Null
          else
            num
              (List.fold_left
                 (fun acc p -> Float.max acc p.Series.pt_max)
                 Float.neg_infinity pts) ) ]
  in
  let sketch_json (name, labels, wd) =
    let sk =
      Sketch.Windowed.query wd ~now ~window_s:(Sketch.Windowed.span_s wd)
    in
    Json.Obj
      ([ ("name", Json.Str name);
         ("labels", labels_json labels);
         ("count", Json.Num (float_of_int (Sketch.count sk))) ]
      @ List.map
          (fun q ->
            ( Printf.sprintf "p%g" (100.0 *. q),
              num (Sketch.quantile sk q) ))
          quantiles)
  in
  let alert_json (a : Rules.alert_state) =
    Json.Obj
      [ ("name", Json.Str a.Rules.as_name);
        ("firing", Json.Bool a.Rules.as_firing);
        ("value", num a.Rules.as_value);
        ("edges", Json.Num (float_of_int a.Rules.as_edges));
        ("since", num a.Rules.as_since) ]
  in
  Json.Obj
    [ ("now_s", Json.Num now);
      ("ticks", Json.Num (float_of_int (Watch.ticks w)));
      ("sketch_samples", Json.Num (float_of_int (Watch.samples w)));
      ("alert_edges_total", Json.Num (float_of_int (Watch.alerts_total w)));
      ("firing", Json.Arr (List.map (fun n -> Json.Str n) (Watch.firing w)));
      ( "series",
        Json.Arr (List.map series_json (Series.Store.to_list (Watch.store w)))
      );
      ("sketches", Json.Arr (List.map sketch_json (Watch.sketch_list w)));
      ("alerts", Json.Arr (List.map alert_json (Watch.alert_states w))) ]

let render_json ?quantiles w ~now =
  Json.to_string ~pretty:true (to_json ?quantiles w ~now)
