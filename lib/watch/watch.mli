(** The watch facade: the series store, windowed sketches, scrape sources
    and rules engine behind one value, ticked from the watched system's
    own control loop.

    A watch only {e reads} the system: sources are pull functions,
    {!observe} is fed values the system computed anyway, and nothing here
    schedules events or draws randomness — which is why a watched run
    stays byte-identical to the unwatched same-seed run. *)

type config = {
  wc_interval_s : float;  (** Scrape cadence on the watched clock. *)
  wc_capacity : int;  (** Ring points per series tier. *)
  wc_tiers : int;
  wc_factor : int;  (** Resolution step between tiers. *)
  wc_sketch_bucket_s : float;  (** Windowed-sketch time bucket. *)
  wc_sketch_slots : int;
}

val default_config : config

type t

val create : ?config:config -> ?rules:Rules.rule list -> unit -> t
val store : t -> Series.Store.t
val rules : t -> Rules.t
val config : t -> config
val interval_s : t -> float

(** Scrape ticks performed. *)
val ticks : t -> int

(** Sketch observations recorded. *)
val samples : t -> int

(** Host CPU seconds attributed to watching (scrapes, rule evaluation,
    sketch feeds) — the numerator of the E20 overhead gate. *)
val work_s : t -> float

(** Register a scrape source.  A source with the same name replaces the
    existing one, so re-attaching a watch never double-samples. *)
val add_source : t -> Scrape.t -> unit

(** Called after every completed tick (dashboard followers). *)
val on_tick : t -> (t -> now:float -> unit) -> unit

(** Get or create the named windowed sketch. *)
val sketch :
  t -> name:string -> labels:(string * string) list -> Sketch.Windowed.t

val find_sketch :
  t -> name:string -> labels:(string * string) list -> Sketch.Windowed.t option

(** Sketches in first-observation order (deterministic). *)
val sketch_list :
  t -> (string * (string * string) list * Sketch.Windowed.t) list

(** Feed one sample into the named windowed sketch. *)
val observe :
  t -> now:float -> ?labels:(string * string) list -> string -> float -> unit

(** Force a scrape tick now; returns the alerts that newly fired. *)
val tick : t -> now:float -> Rules.alert_state list

(** Tick when the scrape interval has elapsed since the last tick (always
    ticks on the first call). *)
val maybe_tick : t -> now:float -> unit

(** Alert rising edges across every rule. *)
val alerts_total : t -> int

(** Names of currently firing alerts. *)
val firing : t -> string list

val alert_states : t -> Rules.alert_state list
