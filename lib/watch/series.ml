(* Fixed-capacity time series with staircase downsampling.

   One series holds the samples of one (name × labels) signal in a ring of
   aggregate points per resolution tier: tier 0 keeps every observed sample
   verbatim, tier i keeps one aggregate point per [res_s * factor^i] of
   time, so the recent past is dense and the distant past is coarse — the
   classic staircase layout — at a fixed memory bound of
   [tiers * capacity] points however long the run gets.

   Every tier aggregates straight from the raw observations (not from the
   tier below), so a coarse point's count/sum/min/max are exact over its
   window regardless of what the finer ring has already evicted.  Time
   comes from the caller, so the whole structure is deterministic on a
   simulated clock. *)

type point = {
  pt_t : float;  (* window start (tier 0: the sample time) *)
  pt_last : float;  (* last raw value in the window *)
  pt_count : int;
  pt_sum : float;
  pt_min : float;
  pt_max : float;
}

let pt_mean p =
  if p.pt_count = 0 then 0.0 else p.pt_sum /. float_of_int p.pt_count

(* One resolution tier: a ring of closed points plus the open
   (still-accumulating) window. *)
type tier = {
  tr_res_s : float;  (* 0.0 on tier 0: every sample is its own point *)
  tr_buf : point option array;
  mutable tr_head : int;  (* next write position *)
  mutable tr_len : int;
  (* open window accumulation (tiers >= 1) *)
  mutable tr_open_key : int;  (* floor (t / res); min_int = none *)
  mutable tr_acc : point option;
}

type t = {
  s_name : string;
  s_labels : (string * string) list;  (* sorted by key *)
  s_tiers : tier array;
  mutable s_samples : int;  (* raw observations ever *)
  mutable s_last_t : float;
}

let mk_tier ~res_s ~capacity =
  { tr_res_s = res_s; tr_buf = Array.make capacity None; tr_head = 0;
    tr_len = 0; tr_open_key = min_int; tr_acc = None }

let create ?(capacity = 256) ?(tiers = 3) ?(factor = 10) ?(res_s = 0.01)
    ~name ~labels () =
  if capacity <= 0 then invalid_arg "Series.create: capacity <= 0";
  if tiers <= 0 then invalid_arg "Series.create: tiers <= 0";
  if factor < 2 then invalid_arg "Series.create: factor < 2";
  if res_s <= 0.0 then invalid_arg "Series.create: res_s <= 0";
  let labels = List.sort_uniq (fun (a, _) (b, _) -> compare a b) labels in
  { s_name = name; s_labels = labels;
    s_tiers =
      Array.init tiers (fun i ->
          let res =
            if i = 0 then 0.0
            else res_s *. (float_of_int factor ** float_of_int i)
          in
          mk_tier ~res_s:res ~capacity);
    s_samples = 0; s_last_t = neg_infinity }

let name s = s.s_name
let labels s = s.s_labels
let samples s = s.s_samples
let n_tiers s = Array.length s.s_tiers
let tier_res s i = s.s_tiers.(i).tr_res_s

let push tier p =
  tier.tr_buf.(tier.tr_head) <- Some p;
  tier.tr_head <- (tier.tr_head + 1) mod Array.length tier.tr_buf;
  if tier.tr_len < Array.length tier.tr_buf then tier.tr_len <- tier.tr_len + 1

let observe s ~t v =
  s.s_samples <- s.s_samples + 1;
  s.s_last_t <- Float.max s.s_last_t t;
  let raw =
    { pt_t = t; pt_last = v; pt_count = 1; pt_sum = v; pt_min = v; pt_max = v }
  in
  Array.iter
    (fun tier ->
      if tier.tr_res_s = 0.0 then push tier raw
      else begin
        let key = int_of_float (Float.floor (t /. tier.tr_res_s)) in
        if key <> tier.tr_open_key then begin
          (match tier.tr_acc with Some p -> push tier p | None -> ());
          tier.tr_open_key <- key;
          tier.tr_acc <-
            Some { raw with pt_t = float_of_int key *. tier.tr_res_s }
        end
        else
          match tier.tr_acc with
          | None -> assert false
          | Some p ->
              tier.tr_acc <-
                Some
                  { p with
                    pt_last = v; pt_count = p.pt_count + 1;
                    pt_sum = p.pt_sum +. v; pt_min = Float.min p.pt_min v;
                    pt_max = Float.max p.pt_max v }
      end)
    s.s_tiers

(* Closed points of one tier, oldest first, with the open window appended
   (a query must see the freshest data even before its window closes). *)
let points s ~tier =
  let tr = s.s_tiers.(tier) in
  let cap = Array.length tr.tr_buf in
  let acc = ref [] in
  (match tr.tr_acc with Some p -> acc := [ p ] | None -> ());
  for i = 1 to tr.tr_len do
    let idx = (tr.tr_head - i + (2 * cap)) mod cap in
    match tr.tr_buf.(idx) with Some p -> acc := p :: !acc | None -> ()
  done;
  !acc

let latest s =
  let rec from_tier i =
    if i >= Array.length s.s_tiers then None
    else
      match points s ~tier:i with
      | [] -> from_tier (i + 1)
      | ps -> Some (List.nth ps (List.length ps - 1))
  in
  from_tier 0

(* Points with pt_t in [t0, t1], from the finest tier that still reaches
   back to t0 (or the coarsest available when none does). *)
let between s ~t0 ~t1 =
  let n = Array.length s.s_tiers in
  let covering =
    let rec pick i =
      if i >= n then n - 1
      else
        match points s ~tier:i with
        | { pt_t; _ } :: _ when pt_t <= t0 -> i
        | _ -> pick (i + 1)
    in
    pick 0
  in
  List.filter (fun p -> p.pt_t >= t0 && p.pt_t <= t1) (points s ~tier:covering)

(* ---- store ----------------------------------------------------------------------- *)

(* A collection of series keyed by (name × labels); the scraper writes
   here, rules and the dashboard read.  Iteration order is always sorted
   by (name, labels), so anything rendered from a store is deterministic
   whatever order the signals first appeared in. *)
module Store = struct
  type series = t

  (* the outer constructor, before [create] below shadows it *)
  let mk_series = create

  type t = {
    tbl : (string * (string * string) list, series) Hashtbl.t;
    capacity : int;
    tiers : int;
    factor : int;
    res_s : float;
  }

  let create ?(capacity = 256) ?(tiers = 3) ?(factor = 10) ?(res_s = 0.01) ()
      =
    { tbl = Hashtbl.create 64; capacity; tiers; factor; res_s }

  let norm labels = List.sort_uniq (fun (a, _) (b, _) -> compare a b) labels

  let series st ~name ~labels =
    let labels = norm labels in
    match Hashtbl.find_opt st.tbl (name, labels) with
    | Some s -> s
    | None ->
        let s =
          mk_series ~capacity:st.capacity ~tiers:st.tiers ~factor:st.factor
            ~res_s:st.res_s ~name ~labels ()
        in
        Hashtbl.replace st.tbl (name, labels) s;
        s

  let find st ~name ~labels = Hashtbl.find_opt st.tbl (name, norm labels)

  let observe st ~now ~name ~labels v = observe (series st ~name ~labels) ~t:now v

  let to_list st =
    Hashtbl.fold (fun _ s acc -> s :: acc) st.tbl []
    |> List.sort (fun a b ->
           match compare a.s_name b.s_name with
           | 0 -> compare a.s_labels b.s_labels
           | c -> c)

  let size st = Hashtbl.length st.tbl
end
