(* Online change detection over scalar sample streams.

   All three detectors share one lifecycle: a warmup phase of [warmup]
   samples estimates the baseline mean and standard deviation (Welford),
   the baseline is frozen at warmup end, and detection then scores each
   sample against it.  Working in baseline-sigma units makes the knobs
   scale-free: the same (k, h) works on a 4 ms latency series and a 40%
   utilization series.  A zero-variance baseline (constant series) gets a
   tiny sigma floor, so an exactly constant stream can never alarm while
   any real step still registers as a huge z-score.

   Alarm state is level-triggered ([firing] while the condition holds) and
   [alarms] counts rising edges — the same semantics as the Slo burn-rate
   monitors, so the rules layer can treat both uniformly.

     - EWMA band: an exponentially weighted mean tracks the signal; alarm
       while |x - ewma| > k·sigma.  Reacts in one sample to big steps,
       un-fires once the mean catches up — good for spikes.
     - CUSUM: two one-sided cumulative sums with allowance [drift]·sigma
       alarm when either exceeds [threshold]·sigma.  Integrates small
       sustained shifts a band test misses; stays firing while the shift
       persists.
     - Page–Hinkley: the classic sequential test — cumulative deviation
       from the running mean minus [delta]·sigma, alarmed when it leaves
       its historical extremum by more than [lambda]·sigma. *)

type verdict = Ok | Alarm

type core = {
  d_warmup : int;
  mutable d_n : int;  (* samples seen *)
  (* Welford accumulation during warmup *)
  mutable d_wmean : float;
  mutable d_wm2 : float;
  (* frozen baseline *)
  mutable d_mean0 : float;
  mutable d_sigma0 : float;
  mutable d_firing : bool;
  mutable d_alarms : int;
}

type algo =
  | Ewma of { alpha : float; k : float; mutable ewma : float }
  | Cusum of {
      drift : float;
      threshold : float;
      mutable g_up : float;
      mutable g_down : float;
    }
  | Page_hinkley of {
      delta : float;
      lambda : float;
      mutable ph_mean : float;  (* running mean over detection samples *)
      mutable ph_n : int;
      mutable u_up : float;  (* cumulative (x - mean - delta) *)
      mutable u_up_min : float;
      mutable u_down : float;  (* cumulative (x - mean + delta) *)
      mutable u_down_max : float;
    }

type t = { core : core; mutable algo : algo }

let mk_core warmup =
  if warmup < 2 then invalid_arg "Detect: warmup < 2";
  { d_warmup = warmup; d_n = 0; d_wmean = 0.0; d_wm2 = 0.0; d_mean0 = 0.0;
    d_sigma0 = 0.0; d_firing = false; d_alarms = 0 }

let ewma ?(alpha = 0.2) ?(k = 4.0) ?(warmup = 8) () =
  { core = mk_core warmup; algo = Ewma { alpha; k; ewma = 0.0 } }

let cusum ?(drift = 0.5) ?(threshold = 5.0) ?(warmup = 8) () =
  { core = mk_core warmup;
    algo = Cusum { drift; threshold; g_up = 0.0; g_down = 0.0 } }

let page_hinkley ?(delta = 0.25) ?(lambda = 8.0) ?(warmup = 8) () =
  { core = mk_core warmup;
    algo =
      Page_hinkley
        { delta; lambda; ph_mean = 0.0; ph_n = 0; u_up = 0.0; u_up_min = 0.0;
          u_down = 0.0; u_down_max = 0.0 } }

let kind d =
  match d.algo with
  | Ewma _ -> "ewma"
  | Cusum _ -> "cusum"
  | Page_hinkley _ -> "page-hinkley"

let firing d = d.core.d_firing
let alarms d = d.core.d_alarms
let samples d = d.core.d_n
let warmed d = d.core.d_n >= d.core.d_warmup

(* Floor keeps a zero-variance baseline from dividing by zero while
   staying far below any real signal's dispersion: an exactly constant
   series scores z = 0 forever, and any genuine step scores astronomically. *)
let sigma_floor mean0 sigma0 =
  Float.max sigma0 (1e-12 +. (1e-9 *. Float.abs mean0))

let step d x =
  let c = d.core in
  c.d_n <- c.d_n + 1;
  if c.d_n <= c.d_warmup then begin
    (* Welford update *)
    let delta = x -. c.d_wmean in
    c.d_wmean <- c.d_wmean +. (delta /. float_of_int c.d_n);
    c.d_wm2 <- c.d_wm2 +. (delta *. (x -. c.d_wmean));
    if c.d_n = c.d_warmup then begin
      c.d_mean0 <- c.d_wmean;
      c.d_sigma0 <-
        sqrt (Float.max 0.0 (c.d_wm2 /. float_of_int (c.d_warmup - 1)));
      (match d.algo with
      | Ewma e -> e.ewma <- c.d_mean0
      | Cusum _ -> ()
      | Page_hinkley p -> p.ph_mean <- 0.0)
    end;
    Ok
  end
  else begin
    let sigma = sigma_floor c.d_mean0 c.d_sigma0 in
    let alarmed =
      match d.algo with
      | Ewma e ->
          let dev = Float.abs (x -. e.ewma) in
          let out = dev > e.k *. sigma in
          (* the mean keeps tracking, so a persistent shift re-centers the
             band and the alarm clears — spikes fire, new normals settle *)
          e.ewma <- e.ewma +. (e.alpha *. (x -. e.ewma));
          out
      | Cusum cu ->
          let z = (x -. c.d_mean0) /. sigma in
          cu.g_up <- Float.max 0.0 (cu.g_up +. z -. cu.drift);
          cu.g_down <- Float.max 0.0 (cu.g_down -. z -. cu.drift);
          cu.g_up > cu.threshold || cu.g_down > cu.threshold
      | Page_hinkley p ->
          p.ph_n <- p.ph_n + 1;
          p.ph_mean <- p.ph_mean +. ((x -. p.ph_mean) /. float_of_int p.ph_n);
          let dev = x -. p.ph_mean in
          p.u_up <- p.u_up +. dev -. (p.delta *. sigma);
          p.u_up_min <- Float.min p.u_up_min p.u_up;
          p.u_down <- p.u_down +. dev +. (p.delta *. sigma);
          p.u_down_max <- Float.max p.u_down_max p.u_down;
          p.u_up -. p.u_up_min > p.lambda *. sigma
          || p.u_down_max -. p.u_down > p.lambda *. sigma
    in
    let was = c.d_firing in
    c.d_firing <- alarmed;
    if alarmed && not was then c.d_alarms <- c.d_alarms + 1;
    if alarmed then Alarm else Ok
  end

let reset d =
  let c = d.core in
  c.d_n <- 0;
  c.d_wmean <- 0.0;
  c.d_wm2 <- 0.0;
  c.d_mean0 <- 0.0;
  c.d_sigma0 <- 0.0;
  c.d_firing <- false;
  c.d_alarms <- 0;
  match d.algo with
  | Ewma e -> e.ewma <- 0.0
  | Cusum cu ->
      cu.g_up <- 0.0;
      cu.g_down <- 0.0
  | Page_hinkley p ->
      p.ph_mean <- 0.0;
      p.ph_n <- 0;
      p.u_up <- 0.0;
      p.u_up_min <- 0.0;
      p.u_down <- 0.0;
      p.u_down_max <- 0.0

(* ---- phase detection ------------------------------------------------------------- *)

(* Segmenting a (t, value) timeline into stable phases: greedy growth — a
   sample within [abs_tol + rel_tol·|mean|] of the current phase's running
   mean extends it, anything else opens a new phase — followed by a merge
   pass that folds adjacent phases whose means ended up within tolerance
   (the greedy split is order-sensitive at boundaries; the merge makes the
   result depend only on the data) and absorbs fragments shorter than
   [min_samples] into their nearer-mean neighbour. *)

type phase = {
  ph_start_s : float;
  ph_end_s : float;
  ph_mean : float;
  ph_samples : int;
}

let close ~start ~last ~sum ~n =
  { ph_start_s = start; ph_end_s = last;
    ph_mean = (if n = 0 then 0.0 else sum /. float_of_int n);
    ph_samples = n }

let within ~abs_tol ~rel_tol mean v =
  Float.abs (v -. mean) <= abs_tol +. (rel_tol *. Float.abs mean)

let phases ?(abs_tol = 0.05) ?(rel_tol = 0.1) ?(min_samples = 2) samples =
  let merge2 a b =
    let n = a.ph_samples + b.ph_samples in
    { ph_start_s = a.ph_start_s; ph_end_s = b.ph_end_s;
      ph_mean =
        ((a.ph_mean *. float_of_int a.ph_samples)
        +. (b.ph_mean *. float_of_int b.ph_samples))
        /. float_of_int (max 1 n);
      ph_samples = n }
  in
  (* The greedy split is order-sensitive at boundaries; this pass makes
     the result depend only on the data: adjacent phases within tolerance
     fold together, and a fragment shorter than [min_samples] is a
     transient — when its neighbours agree it bridges them (so a
     one-sample blip never splits a stable phase), otherwise it folds
     into the nearer-mean side. *)
  let merge_pass ps =
    let rec pass = function
      | [] -> []
      | [ p ] -> [ p ]
      | a :: b :: rest when a.ph_samples < min_samples ->
          pass (merge2 a b :: rest)
      | a :: b :: rest when b.ph_samples < min_samples -> (
          match rest with
          | c :: rest' when within ~abs_tol ~rel_tol a.ph_mean c.ph_mean ->
              pass (merge2 (merge2 a b) c :: rest')
          | c :: rest'
            when Float.abs (b.ph_mean -. c.ph_mean)
                 < Float.abs (b.ph_mean -. a.ph_mean) ->
              a :: pass (merge2 b c :: rest')
          | _ -> pass (merge2 a b :: rest))
      | a :: b :: rest when within ~abs_tol ~rel_tol a.ph_mean b.ph_mean ->
          pass (merge2 a b :: rest)
      | a :: rest -> a :: pass rest
    in
    pass ps
  in
  match samples with
  | [] -> []
  | (t0, v0) :: rest ->
      let raw =
        let rec go acc ~start ~last ~sum ~n ~mean = function
          | [] -> List.rev (close ~start ~last ~sum ~n :: acc)
          | (t, v) :: tl ->
              if within ~abs_tol ~rel_tol mean v then
                let n' = n + 1 in
                go acc ~start ~last:t ~sum:(sum +. v) ~n:n'
                  ~mean:((sum +. v) /. float_of_int n')
                  tl
              else
                go
                  (close ~start ~last ~sum ~n :: acc)
                  ~start:t ~last:t ~sum:v ~n:1 ~mean:v tl
        in
        go [] ~start:t0 ~last:t0 ~sum:v0 ~n:1 ~mean:v0 rest
      in
      merge_pass raw

(* The ROADMAP-item-3 hook: per-window busy fractions of one node's track
   in a span log, segmented into utilization phases. *)
let phases_of_track ?(windows = 32) ?abs_tol ?rel_tol ?min_samples dag ~track
    =
  let timeline =
    Everest_observe.Utilization.busy_timeline ~windows dag ~track
  in
  phases ?abs_tol ?rel_tol ?min_samples (Array.to_list timeline)
