(* Scrape adapters: where the series store's data comes from.

   A source is a pull function sampled once per watch tick; it returns
   (name, labels, value) triples to append at the tick's time.  The
   registry adapter turns a whole [Metrics] registry into signals —
   counters and gauges become their value (rules compute rates), a
   histogram becomes its count/sum plus the p50/p90/p99 estimates, so the
   dashboard sees quantile timelines without keeping samples.  Custom
   sources wrap any accessor — fabric shard depths, orchestrator breaker
   states, Desim resource queues — as long as the accessor only *reads*:
   a source must never perturb the run it watches. *)

module Metrics = Everest_telemetry.Metrics

type sample = string * (string * string) list * float

type t = { src_name : string; src_sample : now:float -> sample list }

let name s = s.src_name
let sample s ~now = s.src_sample ~now

let of_fn ~name f = { src_name = name; src_sample = f }

let of_registry ?(prefix = "") ?(quantiles = [ 0.5; 0.9; 0.99 ])
    (registry : Metrics.registry) =
  { src_name = "registry";
    src_sample =
      (fun ~now:_ ->
        List.concat_map
          (fun (m : Metrics.metric) ->
            let n = prefix ^ m.Metrics.mname in
            let labels = m.Metrics.labels in
            match m.Metrics.value with
            | Metrics.Counter c -> [ (n, labels, !c) ]
            | Metrics.Gauge g -> [ (n, labels, !g) ]
            | Metrics.Histogram h ->
                (n ^ ":count", labels, float_of_int (Metrics.hist_count h))
                :: (n ^ ":sum", labels, Metrics.hist_sum h)
                :: List.map
                     (fun q ->
                       ( Printf.sprintf "%s:p%g" n (100.0 *. q),
                         labels,
                         Metrics.quantile h q ))
                     quantiles)
          (Metrics.metrics registry)) }
