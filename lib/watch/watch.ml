(* The watch facade: one value owning the series store, the windowed
   sketches, the scrape sources and the rules engine, ticked from the
   watched system's own control loop.

   The contract that keeps watched runs byte-identical to unwatched ones:
   a watch only ever *reads* the system (sources are pull functions,
   [observe] is fed values the system computed anyway) and never schedules
   events, draws randomness or feeds decisions back.  Everything it stores
   is keyed on caller-supplied simulated time, so two same-seed runs build
   identical watch state and render identical dashboards.

   Cost accounting: every scrape tick and every sketch observation is
   clocked (host time) into [work_s], so a bench can attribute the watch's
   overhead from a single run the way the recovery layer does — the
   noise multiplier of the host cancels in work/(total-work). *)

type config = {
  wc_interval_s : float;  (* scrape cadence on the watched clock *)
  wc_capacity : int;  (* ring points per tier *)
  wc_tiers : int;
  wc_factor : int;  (* resolution step between tiers *)
  wc_sketch_bucket_s : float;  (* windowed-sketch time bucket *)
  wc_sketch_slots : int;
}

let default_config =
  { wc_interval_s = 0.01; wc_capacity = 256; wc_tiers = 3; wc_factor = 10;
    wc_sketch_bucket_s = 0.05; wc_sketch_slots = 20 }

type t = {
  w_config : config;
  w_store : Series.Store.t;
  w_sketches : (string * (string * string) list, Sketch.Windowed.t) Hashtbl.t;
  mutable w_sketch_keys : (string * (string * string) list) list;
      (* insertion-ordered keys for deterministic iteration *)
  w_rules : Rules.t;
  mutable w_sources : Scrape.t list;  (* in registration order *)
  mutable w_last_tick : float;  (* nan = never ticked *)
  mutable w_ticks : int;
  mutable w_samples : int;  (* sketch observations *)
  mutable w_work_s : float;  (* host CPU attributed to watching *)
  mutable w_on_tick : (t -> now:float -> unit) option;
}

let create ?(config = default_config) ?(rules = []) () =
  if config.wc_interval_s <= 0.0 then invalid_arg "Watch.create: interval <= 0";
  { w_config = config;
    w_store =
      Series.Store.create ~capacity:config.wc_capacity ~tiers:config.wc_tiers
        ~factor:config.wc_factor ~res_s:config.wc_interval_s ();
    w_sketches = Hashtbl.create 16;
    w_sketch_keys = [];
    w_rules = Rules.engine rules;
    w_sources = [];
    w_last_tick = Float.nan;
    w_ticks = 0;
    w_samples = 0;
    w_work_s = 0.0;
    w_on_tick = None }

let store w = w.w_store
let rules w = w.w_rules
let config w = w.w_config
let ticks w = w.w_ticks
let samples w = w.w_samples
let work_s w = w.w_work_s
let interval_s w = w.w_config.wc_interval_s

(* Replace-by-name: re-attaching a watch (e.g. a second [execute] run
   over the same registry) swaps the source instead of double-sampling. *)
let add_source w src =
  let n = Scrape.name src in
  if List.exists (fun s -> String.equal (Scrape.name s) n) w.w_sources then
    w.w_sources <-
      List.map
        (fun s -> if String.equal (Scrape.name s) n then src else s)
        w.w_sources
  else w.w_sources <- w.w_sources @ [ src ]
let on_tick w f = w.w_on_tick <- Some f

let norm labels = List.sort_uniq (fun (a, _) (b, _) -> compare a b) labels

let sketch w ~name ~labels =
  let key = (name, norm labels) in
  match Hashtbl.find_opt w.w_sketches key with
  | Some wd -> wd
  | None ->
      let wd =
        Sketch.Windowed.create ~bucket_s:w.w_config.wc_sketch_bucket_s
          ~slots:w.w_config.wc_sketch_slots ()
      in
      Hashtbl.replace w.w_sketches key wd;
      w.w_sketch_keys <- w.w_sketch_keys @ [ key ];
      wd

let find_sketch w ~name ~labels =
  Hashtbl.find_opt w.w_sketches (name, norm labels)

(* Sketch keys in first-observation order (deterministic across same-seed
   runs, unlike hashtable order). *)
let sketch_list w =
  List.map (fun (n, l) -> (n, l, Hashtbl.find w.w_sketches (n, l))) w.w_sketch_keys

(* Feed one sample into the named windowed sketch — the push half of the
   pipeline (the pull half is the scrape).  Cheap enough for per-request
   call sites: one bucket update plus two clock reads. *)
let observe w ~now ?(labels = []) name v =
  let t0 = Unix.gettimeofday () in
  Sketch.Windowed.observe (sketch w ~name ~labels) ~now v;
  w.w_samples <- w.w_samples + 1;
  w.w_work_s <- w.w_work_s +. (Unix.gettimeofday () -. t0)

let ctx w =
  { Rules.ctx_store = w.w_store;
    ctx_sketch = (fun name labels -> find_sketch w ~name ~labels) }

(* One scrape tick: pull every source into the store, evaluate the rules,
   notify the follower.  Returns the alerts that newly fired. *)
let tick w ~now =
  let t0 = Unix.gettimeofday () in
  w.w_ticks <- w.w_ticks + 1;
  w.w_last_tick <- now;
  List.iter
    (fun src ->
      List.iter
        (fun (name, labels, v) ->
          Series.Store.observe w.w_store ~now ~name ~labels v)
        (Scrape.sample src ~now))
    w.w_sources;
  let fired = Rules.eval w.w_rules (ctx w) ~now in
  w.w_work_s <- w.w_work_s +. (Unix.gettimeofday () -. t0);
  (match w.w_on_tick with Some f -> f w ~now | None -> ());
  fired

(* Tick when the scrape interval has elapsed (or on the first call).
   The watched system calls this from its own control loop; the watch
   never schedules anything itself. *)
let maybe_tick w ~now =
  if
    Float.is_nan w.w_last_tick
    || now -. w.w_last_tick >= w.w_config.wc_interval_s -. 1e-12
  then ignore (tick w ~now)

let alerts_total w = Rules.edges_total w.w_rules
let firing w = List.map (fun s -> s.Rules.as_name) (Rules.firing w.w_rules)
let alert_states w = Rules.alert_states w.w_rules
