(** Online change detection over scalar sample streams.

    All detectors share one lifecycle: [warmup] samples estimate the
    baseline mean and standard deviation, the baseline freezes, and
    detection then scores each sample in baseline-sigma units — the same
    (k, threshold) knobs work on a 4 ms latency series and a 40%%
    utilization series.  An exactly constant stream can never alarm;
    any real step scores a huge z.

    Alarm state is level-triggered and {!alarms} counts rising edges,
    matching the [Slo] burn-rate monitors so the rules layer treats both
    uniformly. *)

type verdict = Ok | Alarm
type t

(** Band test: alarm while |x − ewma| > k·sigma.  Reacts in one sample,
    re-centers on persistent shifts (spikes fire, new normals settle). *)
val ewma : ?alpha:float -> ?k:float -> ?warmup:int -> unit -> t

(** Two-sided cumulative sums with allowance [drift]·sigma, alarm when
    either sum exceeds [threshold]·sigma.  Integrates small sustained
    shifts a band test misses. *)
val cusum : ?drift:float -> ?threshold:float -> ?warmup:int -> unit -> t

(** Page–Hinkley sequential test: cumulative deviation from the running
    mean (minus [delta]·sigma allowance) leaving its historical extremum
    by more than [lambda]·sigma. *)
val page_hinkley : ?delta:float -> ?lambda:float -> ?warmup:int -> unit -> t

val kind : t -> string

(** Feed one sample.  Always [Ok] during warmup. *)
val step : t -> float -> verdict

val firing : t -> bool

(** Rising edges so far. *)
val alarms : t -> int

val samples : t -> int
val warmed : t -> bool
val reset : t -> unit

(** {1 Phase segmentation} *)

type phase = {
  ph_start_s : float;
  ph_end_s : float;
  ph_mean : float;
  ph_samples : int;
}

(** Segment a (t, value) timeline into stable phases: greedy growth
    within [abs_tol + rel_tol·|mean|] of the running mean, then a merge
    pass folding adjacent phases within tolerance and absorbing fragments
    shorter than [min_samples]. *)
val phases :
  ?abs_tol:float ->
  ?rel_tol:float ->
  ?min_samples:int ->
  (float * float) list ->
  phase list

(** Utilization phases of one node's track in a span log, via
    [Everest_observe.Utilization.busy_timeline]. *)
val phases_of_track :
  ?windows:int ->
  ?abs_tol:float ->
  ?rel_tol:float ->
  ?min_samples:int ->
  Everest_observe.Span_dag.t ->
  track:int ->
  phase list
