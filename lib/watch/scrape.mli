(** Scrape adapters: pull functions sampled once per watch tick.

    A source returns (name, labels, value) triples recorded into the
    series store at the tick's time.  Sources must only {e read} the
    system they sample — a scrape must never perturb the run it
    watches. *)

type sample = string * (string * string) list * float
type t

val name : t -> string
val sample : t -> now:float -> sample list
val of_fn : name:string -> (now:float -> sample list) -> t

(** Every metric of a registry as signals: counters and gauges become
    their value; a histogram becomes [name:count], [name:sum] and one
    [name:pQ] series per requested quantile. *)
val of_registry :
  ?prefix:string ->
  ?quantiles:float list ->
  Everest_telemetry.Metrics.registry ->
  t
