(* Mergeable windowed aggregates.

   A sketch is the DDSketch-style summary of a sample set: count, sum,
   min, max, and a log-bucketed histogram reusing the exact bucket layout
   of [Everest_telemetry.Metrics] (factor 10^(1/10) per bucket from 1 ns),
   so quantile estimates here and in the metrics registry agree bucket for
   bucket.  Merging two sketches adds their buckets — associative and
   commutative by construction, which is what lets a windowed collector
   answer "p99 over the last W seconds" by merging a handful of
   time-bucket sketches instead of rescanning samples: O(buckets), not
   O(samples), at query time. *)

module Metrics = Everest_telemetry.Metrics

type t = {
  mutable k_count : int;
  mutable k_sum : float;
  mutable k_min : float;
  mutable k_max : float;
  k_buckets : int array;
}

let create () =
  { k_count = 0; k_sum = 0.0; k_min = infinity; k_max = neg_infinity;
    k_buckets = Array.make Metrics.n_buckets 0 }

let observe sk x =
  let x = Float.max 0.0 x in
  let i = Metrics.bucket_index x in
  sk.k_buckets.(i) <- sk.k_buckets.(i) + 1;
  sk.k_count <- sk.k_count + 1;
  sk.k_sum <- sk.k_sum +. x;
  sk.k_min <- Float.min sk.k_min x;
  sk.k_max <- Float.max sk.k_max x

let count sk = sk.k_count
let sum sk = sk.k_sum
let mean sk = if sk.k_count = 0 then 0.0 else sk.k_sum /. float_of_int sk.k_count
let min_v sk = if sk.k_count = 0 then 0.0 else sk.k_min
let max_v sk = if sk.k_count = 0 then 0.0 else sk.k_max

let reset sk =
  sk.k_count <- 0;
  sk.k_sum <- 0.0;
  sk.k_min <- infinity;
  sk.k_max <- neg_infinity;
  Array.fill sk.k_buckets 0 (Array.length sk.k_buckets) 0

let merge_into ~into src =
  into.k_count <- into.k_count + src.k_count;
  into.k_sum <- into.k_sum +. src.k_sum;
  into.k_min <- Float.min into.k_min src.k_min;
  into.k_max <- Float.max into.k_max src.k_max;
  Array.iteri (fun i c -> into.k_buckets.(i) <- into.k_buckets.(i) + c) src.k_buckets

let merge a b =
  let sk = create () in
  merge_into ~into:sk a;
  merge_into ~into:sk b;
  sk

(* Geometric interpolation inside the crossing bucket — the same estimator
   [Metrics.quantile] uses, so a sketch and the registry histogram that saw
   the same samples answer identically. *)
let quantile sk q =
  if sk.k_count = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = q *. float_of_int sk.k_count in
    let upper = Metrics.bucket_upper in
    let rec scan i cum =
      if i >= Metrics.n_buckets then sk.k_max
      else
        let cum' = cum + sk.k_buckets.(i) in
        if float_of_int cum' >= rank && sk.k_buckets.(i) > 0 then begin
          let lower = if i = 0 then 0.0 else upper.(i - 1) in
          let frac = (rank -. float_of_int cum) /. float_of_int sk.k_buckets.(i) in
          let lo = Float.max lower (Metrics.bucket_min /. Metrics.bucket_ratio) in
          let v = lo *. ((upper.(i) /. lo) ** frac) in
          Float.min (Float.min v sk.k_max) upper.(i)
        end
        else scan (i + 1) cum'
    in
    scan 0 0
  end

(* ---- windowed collector --------------------------------------------------------- *)

(* A ring of [slots] sketches, one per [bucket_s] of time.  Observing at
   time [t] lands in slot [floor(t/bucket_s) mod slots]; a slot whose
   stored epoch differs from the current one is stale and is reset before
   reuse, so the ring always covers the trailing [slots * bucket_s]
   seconds exactly.  Queries merge the slots inside the asked window. *)
module Windowed = struct
  type sketch = t

  (* the outer constructor, before [create] below shadows it *)
  let mk_sketch = create

  type t = {
    wd_bucket_s : float;
    wd_slots : sketch array;
    wd_epoch : int array;  (* floor(t/bucket_s) the slot holds; -1 empty *)
    mutable wd_samples : int;
  }

  let create ?(bucket_s = 0.05) ?(slots = 20) () =
    if bucket_s <= 0.0 then invalid_arg "Sketch.Windowed.create: bucket_s <= 0";
    if slots <= 0 then invalid_arg "Sketch.Windowed.create: slots <= 0";
    { wd_bucket_s = bucket_s;
      wd_slots = Array.init slots (fun _ -> create ());
      wd_epoch = Array.make slots (-1);
      wd_samples = 0 }

  let span_s w = w.wd_bucket_s *. float_of_int (Array.length w.wd_slots)
  let samples w = w.wd_samples

  let epoch_of w t = int_of_float (Float.floor (t /. w.wd_bucket_s))

  let observe w ~now v =
    let epoch = max 0 (epoch_of w now) in
    let slot = epoch mod Array.length w.wd_slots in
    if w.wd_epoch.(slot) <> epoch then begin
      reset w.wd_slots.(slot);
      w.wd_epoch.(slot) <- epoch
    end;
    w.wd_samples <- w.wd_samples + 1;
    observe w.wd_slots.(slot) v

  (* Merge of the slots covering [now - window_s, now].  [into] is reset
     first and receives the union, so callers can reuse one scratch
     sketch across queries and allocate nothing per tick. *)
  let query_into ~into w ~now ~window_s =
    reset into;
    let hi = epoch_of w now in
    let lo = epoch_of w (Float.max 0.0 (now -. window_s)) in
    let n = Array.length w.wd_slots in
    let lo = max lo (hi - n + 1) in
    for e = lo to hi do
      if e >= 0 then begin
        let slot = e mod n in
        if w.wd_epoch.(slot) = e then merge_into ~into w.wd_slots.(slot)
      end
    done

  let query w ~now ~window_s =
    let sk = mk_sketch () in
    query_into ~into:sk w ~now ~window_s;
    sk
end
