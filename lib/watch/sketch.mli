(** Mergeable aggregate sketches (count/sum/min/max + log-bucketed
    quantiles on the {!Everest_telemetry.Metrics} bucket layout) and a
    windowed collector answering trailing-window quantile queries in
    O(buckets) — independent of how many samples the window saw. *)

type t

val create : unit -> t

(** Negative samples are clamped to 0 (the metrics layer does the same). *)
val observe : t -> float -> unit

val count : t -> int
val sum : t -> float
val mean : t -> float

(** 0 on an empty sketch. *)
val min_v : t -> float

val max_v : t -> float
val reset : t -> unit

(** Bucket-wise sum: associative and commutative. *)
val merge : t -> t -> t

val merge_into : into:t -> t -> unit

(** Same estimator as [Metrics.quantile]: geometric interpolation inside
    the bucket crossing the rank. *)
val quantile : t -> float -> float

module Windowed : sig
  type sketch = t

  (** A ring of [slots] sketches, one per [bucket_s] of caller time,
      covering the trailing [slots * bucket_s] seconds. *)
  type t

  val create : ?bucket_s:float -> ?slots:int -> unit -> t

  (** Total coverage in seconds. *)
  val span_s : t -> float

  (** Samples ever observed (including ones already rotated out). *)
  val samples : t -> int

  val observe : t -> now:float -> float -> unit

  (** Merged sketch of the slots covering [now - window_s, now]. *)
  val query : t -> now:float -> window_s:float -> sketch

  (** Allocation-free variant: [into] is reset, then receives the merge. *)
  val query_into : into:sketch -> t -> now:float -> window_s:float -> unit
end
