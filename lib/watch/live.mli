(** Deterministic dashboard rendering over a watch.

    Pure functions of watch state and the caller's [now]: sorted series
    order, first-observation sketch order, fixed-precision floats and an
    ASCII sparkline ramp — two same-seed runs render byte-identical
    dashboards. *)

(** Sparkline over the newest [width] tier-0 points, normalized to their
    own min..max. *)
val sparkline : ?width:int -> Series.t -> string

(** The text dashboard shown by [everest_cli top]. *)
val render : ?spark_width:int -> ?quantiles:float list -> Watch.t -> now:float -> string

val to_json : ?quantiles:float list -> Watch.t -> now:float -> Everest_observe.Json.t

(** [to_json] pretty-printed. *)
val render_json : ?quantiles:float list -> Watch.t -> now:float -> string
