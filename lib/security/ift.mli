(** Static information-flow tracking over the IR.

    Values carry confidentiality levels (the [sec] dialect lattice); the
    analysis propagates levels through a function body and reports flows
    where higher-level data reaches a sink with lower clearance.
    [sec.encrypt] declassifies: ciphertext is Public. *)

type level = Everest_ir.Dialect_sec.level

type flow_violation = {
  op_name : string;
  source_level : level;
  sink_level : level;
  detail : string;
  vloc : Everest_ir.Loc.t;  (** Location of the sink op. *)
}

val pp_violation : Format.formatter -> flow_violation -> unit

(** Lattice join (maximum). *)
val join : level -> level -> level

(** Violations of one function.  [arg_levels] assigns levels to the formal
    arguments positionally; arguments it does not cover take the
    function's ["everest.security"] attribute when present (the DSL
    front-end attaches it from [Annot.Security]), and Public otherwise.
    Ops with regions join the levels yielded by their region terminators
    into their results. *)
val analyze_func : ?arg_levels:level list -> Everest_ir.Ir.func -> flow_violation list

(** Violations across the module, tagged with the containing function. *)
val analyze_module :
  ?arg_levels:level list ->
  Everest_ir.Ir.modul ->
  (string * flow_violation) list
