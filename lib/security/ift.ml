(* Static information-flow tracking over the IR.

   Values carry confidentiality levels (the sec dialect lattice); this
   analysis propagates levels through a function body and reports flows
   where data of a higher level reaches a sink whose clearance is lower
   (df.sink, memref.store to a lower-level buffer, or an explicit
   sec.check).  [sec.encrypt] declassifies: ciphertext is Public.

   Argument levels come from the positional [arg_levels] list when given;
   remaining arguments take the function's "everest.security" attribute
   (attached by the DSL front-end from [Annot.Security]), so annotated
   kernels are analyzed correctly without a caller-supplied list.
   Classification applied inside the body ([sec.classify] as the first
   ops on the arguments) works as before.

   Ops with regions join the levels yielded by their region terminators
   into their results, so a value classified inside an [scf.if] branch
   keeps its level when it flows out through [scf.yield]. *)

open Everest_ir

type level = Dialect_sec.level

type flow_violation = {
  op_name : string;
  source_level : level;
  sink_level : level;
  detail : string;
  vloc : Loc.t;
}

let pp_violation ppf v =
  Fmt.pf ppf "%s: %s data reaches %s sink (%s)%a" v.op_name
    (Dialect_sec.level_name v.source_level)
    (Dialect_sec.level_name v.sink_level)
    v.detail
    (fun ppf -> function
      | Loc.Unknown -> ()
      | l -> Fmt.pf ppf " at %a" Loc.pp l)
    v.vloc

let join (a : level) (b : level) = if Dialect_sec.level_leq a b then b else a

(* Level of a value: max over sources flowing into it. *)
let analyze_func ?(arg_levels = []) (f : Ir.func) : flow_violation list =
  let levels : (int, level) Hashtbl.t = Hashtbl.create 64 in
  let level_of (v : Ir.value) =
    Option.value ~default:Dialect_sec.Public (Hashtbl.find_opt levels v.Ir.vid)
  in
  let func_level =
    Option.bind
      (Attr.find_str "everest.security" f.Ir.fattrs)
      Dialect_sec.level_of_name
  in
  List.iteri
    (fun i (v : Ir.value) ->
      match (List.nth_opt arg_levels i, func_level) with
      | Some l, _ -> Hashtbl.replace levels v.Ir.vid l
      | None, Some l -> Hashtbl.replace levels v.Ir.vid l
      | None, None -> ())
    f.Ir.fargs;
  let violations = ref [] in
  let violation (o : Ir.op) ~source ~sink detail =
    violations :=
      { op_name = o.Ir.name; source_level = source; sink_level = sink;
        detail; vloc = o.Ir.loc }
      :: !violations
  in
  let sink_clearance (o : Ir.op) =
    match Ir.attr_str "everest.security" o with
    | Some s -> Option.value ~default:Dialect_sec.Public (Dialect_sec.level_of_name s)
    | None -> Dialect_sec.Public
  in
  let rec walk ops = List.iter step ops
  and step (o : Ir.op) =
    let in_level =
      List.fold_left (fun acc v -> join acc (level_of v)) Dialect_sec.Public
        o.Ir.operands
    in
    (* regions first: block args inherit the op input level, and the
       levels of the region terminators feed the op results below *)
    List.iter
      (fun region ->
        List.iter
          (fun (b : Ir.block) ->
            List.iter
              (fun (v : Ir.value) -> Hashtbl.replace levels v.Ir.vid in_level)
              b.Ir.bargs;
            walk b.Ir.body)
          region)
      o.Ir.regions;
    let yield_level =
      List.fold_left
        (fun acc (region : Ir.region) ->
          List.fold_left
            (fun acc (b : Ir.block) ->
              match List.rev b.Ir.body with
              | (t : Ir.op) :: _
                when String.equal t.Ir.name "scf.yield"
                     || String.equal t.Ir.name "hw.yield" ->
                  List.fold_left
                    (fun acc v -> join acc (level_of v))
                    acc t.Ir.operands
              | _ -> acc)
            acc region)
        Dialect_sec.Public o.Ir.regions
    in
    let out_level = join in_level yield_level in
    match o.Ir.name with
    | "sec.classify" -> (
        match
          Option.bind (Ir.attr_str "level" o) Dialect_sec.level_of_name
        with
        | Some l ->
            List.iter
              (fun (r : Ir.value) -> Hashtbl.replace levels r.Ir.vid (join l in_level))
              o.Ir.results
        | None -> ())
    | "sec.encrypt" | "sec.mac" ->
        (* ciphertext / tags are public *)
        List.iter
          (fun (r : Ir.value) ->
            Hashtbl.replace levels r.Ir.vid Dialect_sec.Public)
          o.Ir.results
    | "sec.decrypt" ->
        List.iter
          (fun (r : Ir.value) ->
            Hashtbl.replace levels r.Ir.vid Dialect_sec.Confidential)
          o.Ir.results
    | "sec.taint" ->
        (* tainted data is at least Confidential until checked *)
        List.iter
          (fun (r : Ir.value) ->
            Hashtbl.replace levels r.Ir.vid
              (join in_level Dialect_sec.Confidential))
          o.Ir.results
    | "sec.check" ->
        (* explicit check point: a sink whose clearance comes from the
           everest.security attribute (default Public) *)
        let clearance = sink_clearance o in
        if not (Dialect_sec.level_leq in_level clearance) then
          violation o ~source:in_level ~sink:clearance "sec.check point";
        List.iter
          (fun (r : Ir.value) -> Hashtbl.replace levels r.Ir.vid in_level)
          o.Ir.results
    | "df.sink" ->
        let clearance = sink_clearance o in
        if not (Dialect_sec.level_leq in_level clearance) then
          violation o ~source:in_level ~sink:clearance
            (Option.value ~default:"?" (Ir.attr_str "name" o))
    | "memref.store" ->
        let dst = List.nth o.Ir.operands 1 in
        let clearance = level_of dst in
        let data_level = level_of (List.hd o.Ir.operands) in
        if not (Dialect_sec.level_leq data_level (join clearance Dialect_sec.Internal))
           && clearance = Dialect_sec.Public
        then
          violation o ~source:data_level ~sink:clearance
            "store to public buffer";
        List.iter
          (fun (r : Ir.value) -> Hashtbl.replace levels r.Ir.vid in_level)
          o.Ir.results
    | _ ->
        List.iter
          (fun (r : Ir.value) -> Hashtbl.replace levels r.Ir.vid out_level)
          o.Ir.results
  in
  walk f.Ir.fbody;
  List.rev !violations

let analyze_module ?arg_levels (m : Ir.modul) =
  List.concat_map
    (fun f -> List.map (fun v -> (f.Ir.fname, v)) (analyze_func ?arg_levels f))
    m.Ir.funcs
