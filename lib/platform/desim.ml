(* Discrete-event simulation engine.

   Event-scheduling style: callbacks are queued at absolute times in a
   binary min-heap; FIFO resources model contention (CPU cores, FPGA role
   slots, link capacity).  All platform and runtime behaviour in EVEREST's
   simulated target system runs on top of this engine. *)

type event_state = Pending | Fired | Cancelled

type event = {
  at : float;
  seq : int;
  mutable erun : unit -> unit;
  mutable st : event_state;
}

type handle = event

(* Shared filler for empty heap slots: popped and shrunk slots are reset to
   it so the heap never retains dead closures. *)
let null_event = { at = 0.; seq = 0; erun = ignore; st = Fired }

type t = {
  mutable now : float;
  mutable heap : event array;
  mutable size : int;
  mutable cancelled_pending : int;  (* cancelled events still in the heap *)
  mutable next_seq : int;
  mutable executed : int;
}

let create () =
  { now = 0.0; heap = Array.make 256 null_event; size = 0;
    cancelled_pending = 0; next_seq = 0; executed = 0 }

let now sim = sim.now

(* Jump the clock forward without executing anything — recovery restores
   a simulation into a fresh engine at the snapshot's timestamp before
   re-inserting its pending events.  Forward-only: rewinding would break
   the monotonicity every scheduled callback relies on. *)
let warp sim t =
  if t < sim.now then invalid_arg "Desim.warp: cannot warp backwards";
  sim.now <- t

let lt a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

let sift_up heap i0 =
  let i = ref i0 in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    lt heap.(!i) heap.(p)
  do
    let p = (!i - 1) / 2 in
    let tmp = heap.(p) in
    heap.(p) <- heap.(!i);
    heap.(!i) <- tmp;
    i := p
  done

let sift_down heap size i0 =
  let i = ref i0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < size && lt heap.(l) heap.(!smallest) then smallest := l;
    if r < size && lt heap.(r) heap.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = heap.(!smallest) in
      heap.(!smallest) <- heap.(!i);
      heap.(!i) <- tmp;
      i := !smallest
    end
    else continue := false
  done

let push sim e =
  if sim.size = Array.length sim.heap then begin
    let bigger = Array.make (2 * sim.size) null_event in
    Array.blit sim.heap 0 bigger 0 sim.size;
    sim.heap <- bigger
  end;
  sim.heap.(sim.size) <- e;
  sim.size <- sim.size + 1;
  sift_up sim.heap (sim.size - 1)

let pop sim =
  if sim.size = 0 then None
  else begin
    let top = sim.heap.(0) in
    sim.size <- sim.size - 1;
    sim.heap.(0) <- sim.heap.(sim.size);
    sim.heap.(sim.size) <- null_event;
    sift_down sim.heap sim.size 0;
    (* a long-lived engine shrinks back after bursts instead of pinning its
       high-water mark forever *)
    let cap = Array.length sim.heap in
    if cap > 256 && sim.size < cap / 4 then begin
      let smaller = Array.make (cap / 2) null_event in
      Array.blit sim.heap 0 smaller 0 sim.size;
      sim.heap <- smaller
    end;
    Some top
  end

(* Rebuild the heap without its cancelled events (Floyd heapify, O(n)) —
   triggered when the dead outnumber the living, so 10⁶-task runs that arm
   and cancel rescue timers don't retain O(n) stale entries. *)
let compact sim =
  let live = Array.make (max 256 sim.size) null_event in
  let k = ref 0 in
  for i = 0 to sim.size - 1 do
    let e = sim.heap.(i) in
    if e.st <> Cancelled then begin
      live.(!k) <- e;
      incr k
    end
  done;
  sim.heap <- live;
  sim.size <- !k;
  sim.cancelled_pending <- 0;
  for i = (!k / 2) - 1 downto 0 do
    sift_down sim.heap sim.size i
  done

let schedule_cancellable sim delay f =
  if delay < 0.0 then invalid_arg "schedule: negative delay";
  let e = { at = sim.now +. delay; seq = sim.next_seq; erun = f; st = Pending } in
  sim.next_seq <- sim.next_seq + 1;
  push sim e;
  e

let schedule sim delay f = ignore (schedule_cancellable sim delay f)

let cancel sim h =
  if h.st = Pending then begin
    h.st <- Cancelled;
    h.erun <- ignore;  (* free the closure now, not when the slot drains *)
    sim.cancelled_pending <- sim.cancelled_pending + 1;
    if sim.cancelled_pending > 64 && 2 * sim.cancelled_pending > sim.size then
      compact sim
  end

let cancelled h = h.st = Cancelled

let at sim time f =
  if time < sim.now then invalid_arg "at: time in the past";
  push sim { at = time; seq = sim.next_seq; erun = f; st = Pending };
  sim.next_seq <- sim.next_seq + 1

let run ?(until = infinity) sim =
  let continue = ref true in
  while !continue do
    match pop sim with
    | None -> continue := false
    | Some e ->
        if e.st = Cancelled then
          (* skip without advancing the clock: a cancelled event has no
             observable behaviour left *)
          sim.cancelled_pending <- sim.cancelled_pending - 1
        else if e.at > until then begin
          (* push back and stop *)
          push sim e;
          sim.now <- until;
          continue := false
        end
        else begin
          sim.now <- e.at;
          e.st <- Fired;
          sim.executed <- sim.executed + 1;
          e.erun ()
        end
  done

let executed sim = sim.executed
let pending sim = sim.size - sim.cancelled_pending

(* ---- FIFO resource ------------------------------------------------------------- *)

type resource = {
  rname : string;
  capacity : int;
  mutable in_use : int;
  waiting : (float * (unit -> unit)) Queue.t;  (* enqueue time, continuation *)
  mutable peak : int;
  mutable total_wait_starts : int;
  mutable total_wait_s : float;  (* summed queue time of granted waiters *)
}

let resource name capacity =
  if capacity <= 0 then invalid_arg "resource: capacity must be positive";
  { rname = name; capacity; in_use = 0; waiting = Queue.create (); peak = 0;
    total_wait_starts = 0; total_wait_s = 0.0 }

(* [acquire sim r k] runs [k] as soon as a unit of [r] is free. *)
let acquire sim r k =
  if r.in_use < r.capacity then begin
    r.in_use <- r.in_use + 1;
    r.peak <- max r.peak r.in_use;
    k ()
  end
  else begin
    r.total_wait_starts <- r.total_wait_starts + 1;
    Queue.push (sim.now, k) r.waiting
  end

let release sim r =
  if r.in_use <= 0 then invalid_arg (r.rname ^ ": release without acquire");
  if Queue.is_empty r.waiting then r.in_use <- r.in_use - 1
  else begin
    let queued_at, k = Queue.pop r.waiting in
    r.total_wait_s <- r.total_wait_s +. (sim.now -. queued_at);
    (* hand the unit directly to the next waiter *)
    k ()
  end

(* Run [work] while holding one unit: acquire, execute for [duration]
   simulated seconds, then release and continue with [k]. *)
let with_resource sim r ~duration k =
  acquire sim r (fun () ->
      schedule sim duration (fun () ->
          release sim r;
          k ()))

let resource_name r = r.rname
let capacity r = r.capacity
let in_use r = r.in_use
let queue_length r = Queue.length r.waiting
let utilization_now r = float_of_int r.in_use /. float_of_int r.capacity

(* ---- contention statistics ------------------------------------------------------ *)

(* Observability accessors: consumers read these, not the mutable fields, so
   the accounting representation stays free to change. *)

type wait_stats = {
  ws_name : string;
  ws_capacity : int;
  ws_peak : int;  (* highest concurrent occupancy seen *)
  ws_waits : int;  (* acquisitions that had to queue *)
  ws_total_wait_s : float;  (* summed simulated queue time *)
  ws_mean_wait_s : float;  (* over queued acquisitions only *)
}

let peak r = r.peak
let wait_count r = r.total_wait_starts
let total_wait_s r = r.total_wait_s

let mean_wait_s r =
  (* waiters still queued have not accrued a grant time yet; average over
     the granted ones *)
  let granted = r.total_wait_starts - Queue.length r.waiting in
  if granted <= 0 then 0.0 else r.total_wait_s /. float_of_int granted

let wait_stats r =
  { ws_name = r.rname; ws_capacity = r.capacity; ws_peak = r.peak;
    ws_waits = r.total_wait_starts; ws_total_wait_s = r.total_wait_s;
    ws_mean_wait_s = mean_wait_s r }

(* Publish the engine and resource state into telemetry gauges/histograms of
   [registry] — the monitoring feed of the self-adaptive loop. *)
let publish_resource ?registry r =
  let module M = Everest_telemetry.Metrics in
  let labels = [ ("resource", r.rname) ] in
  M.set (M.gauge ?registry ~labels "desim_resource_peak")
    (float_of_int r.peak);
  M.set (M.gauge ?registry ~labels "desim_resource_waits")
    (float_of_int r.total_wait_starts);
  M.set (M.gauge ?registry ~labels "desim_resource_mean_wait_s")
    (mean_wait_s r);
  if r.total_wait_s > 0.0 then
    M.observe
      (M.histogram ?registry "desim_resource_wait_s")
      (mean_wait_s r)

let publish ?registry sim =
  let module M = Everest_telemetry.Metrics in
  M.set (M.gauge ?registry "desim_events_executed") (float_of_int sim.executed);
  M.set (M.gauge ?registry "desim_events_pending") (float_of_int (pending sim));
  M.set (M.gauge ?registry "desim_now_s") sim.now
