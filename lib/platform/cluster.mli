(** A distributed EVEREST system: nodes in edge/inner-edge/cloud tiers
    joined by heterogeneous links (Fig. 3), with data transfers and the
    canonical demonstrator topologies (Fig. 4). *)

type t = {
  sim : Desim.t;
  nodes : Node.t list;
  node_tbl : (string, Node.t) Hashtbl.t;
      (** Name index built at [create]; use [find_node]. *)
  mutable links : (string * string * Spec.link) list;
  mutable bytes_moved : int;
  mutable transfers : int;
}

val create : ?links:(string * string * Spec.link) list -> Node.t list -> t

(** O(1) name lookup. @raise Invalid_argument on unknown names. *)
val find_node : t -> string -> Node.t

val add_link : t -> string -> string -> Spec.link -> unit

(** Tier-based default link when no explicit topology entry exists. *)
val default_link : Node.t -> Node.t -> Spec.link

val link_between : t -> Node.t -> Node.t -> Spec.link

(** Move bytes between nodes (free on the same node); the continuation runs
    at arrival. *)
val transfer : t -> src:Node.t -> dst:Node.t -> bytes:int -> (unit -> unit) -> unit

val transfer_time : t -> src:Node.t -> dst:Node.t -> bytes:int -> float
val run : ?until:float -> t -> unit
val elapsed : t -> float

(** Total energy of all nodes including idle floors over the elapsed time. *)
val total_energy : t -> float

(** Snapshot the whole system — engine counters, per-resource contention,
    transfer totals — into telemetry gauges. *)
val publish_metrics : ?registry:Everest_telemetry.Metrics.registry -> t -> unit

(** {2 Canonical EVEREST systems (Fig. 4)} *)

(** POWER9 node with [n_fpgas] bus-attached (OpenCAPI) FPGAs. *)
val power9_node : ?n_fpgas:int -> string -> Node.t

(** A disaggregated network-attached cloudFPGA as a standalone node. *)
val cloudfpga_node : string -> Node.t

val edge_node : ?with_fpga:bool -> string -> Node.t
val endpoint_node : string -> Node.t

(** The full demonstrator: one POWER9 with bus FPGAs, a cloudFPGA rack on
    the DC network, edge nodes and endpoints. *)
val everest_demonstrator :
  ?cloud_fpgas:int -> ?edges:int -> ?endpoints:int -> unit -> t

val pp : Format.formatter -> t -> unit
