(* Simulated compute nodes: CPUs with core contention, FPGAs with shell-role
   slots and partial reconfiguration, and per-node energy accounting. *)

type fpga_dev = {
  fspec : Spec.fpga;
  dev_id : int;
  slots : Desim.resource;
  mutable loaded : (int * string) list;  (* slot index -> bitstream name *)
  mutable next_slot : int;
  mutable reconfigs : int;
  mutable f_busy_s : float;
}

type t = {
  name : string;
  tier : Spec.tier;
  cpu : Spec.cpu;
  cores : Desim.resource;
  fpgas : fpga_dev list;
  mutable cpu_busy_core_s : float;  (* core-seconds of CPU work *)
  mutable energy_j : float;  (* active energy; idle added at teardown *)
  mutable tasks_run : int;
}

let create ?(fpgas = []) ~name ~tier (cpu : Spec.cpu) : t =
  {
    name; tier; cpu;
    cores = Desim.resource (name ^ ".cores") cpu.Spec.cores;
    fpgas =
      List.mapi
        (fun i (f : Spec.fpga) ->
          { fspec = f; dev_id = i;
            slots = Desim.resource (Printf.sprintf "%s.fpga%d" name i) f.Spec.role_slots;
            loaded = []; next_slot = 0; reconfigs = 0; f_busy_s = 0.0 })
        fpgas;
    cpu_busy_core_s = 0.0; energy_j = 0.0; tasks_run = 0;
  }

let has_fpga n = n.fpgas <> []

(* Acquire [n] units of a resource, then run [k]; releases are the caller's
   responsibility via [release_n]. *)
let rec acquire_n sim r n k =
  if n <= 0 then k ()
  else Desim.acquire sim r (fun () -> acquire_n sim r (n - 1) k)

let rec release_n sim r n =
  if n > 0 then begin
    Desim.release sim r;
    release_n sim r (n - 1)
  end

(* Run a software kernel on [threads] cores; calls [k] at completion. *)
let run_cpu sim (node : t) ~flops ~bytes ?(threads = 1) k =
  let threads = max 1 (min threads node.cpu.Spec.cores) in
  acquire_n sim node.cores threads (fun () ->
      let dt = Spec.cpu_time node.cpu ~flops ~bytes ~threads in
      Desim.schedule sim dt (fun () ->
          node.cpu_busy_core_s <- node.cpu_busy_core_s +. (dt *. float_of_int threads);
          node.energy_j <-
            node.energy_j
            +. dt *. float_of_int threads *. node.cpu.Spec.active_w_per_core;
          node.tasks_run <- node.tasks_run + 1;
          release_n sim node.cores threads;
          k ()))

(* Ensure [bitstream] occupies a role slot of [dev]; reconfigures (evicting
   round-robin) when absent.  Continues with [k] once resident. *)
let ensure_loaded sim (dev : fpga_dev) ~bitstream k =
  if List.exists (fun (_, b) -> String.equal b bitstream) dev.loaded then k ()
  else begin
    let slot = dev.next_slot mod dev.fspec.Spec.role_slots in
    dev.next_slot <- dev.next_slot + 1;
    dev.loaded <-
      (slot, bitstream) :: List.remove_assoc slot dev.loaded;
    dev.reconfigs <- dev.reconfigs + 1;
    Desim.schedule sim dev.fspec.Spec.reconfig_s k
  end

(* Least-busy FPGA device of a node (fewest slots in use or queued). *)
let pick_device (node : t) =
  match node.fpgas with
  | [] -> None
  | d :: rest ->
      Some
        (List.fold_left
           (fun best dev ->
             let load (d : fpga_dev) =
               Desim.in_use d.slots + Desim.queue_length d.slots
             in
             if load dev < load best then dev else best)
           d rest)

(* Install [bitstream] into a role slot without simulated delay: deployment-
   time configuration of pre-defined hardware resources. *)
let preload (dev : fpga_dev) ~bitstream =
  if not (List.exists (fun (_, b) -> String.equal b bitstream) dev.loaded) then begin
    let slot = dev.next_slot mod dev.fspec.Spec.role_slots in
    dev.next_slot <- dev.next_slot + 1;
    dev.loaded <- (slot, bitstream) :: List.remove_assoc slot dev.loaded
  end

(* Execute a synthesized kernel on an FPGA device.  [host_link] is the
   attachment used for data movement (OpenCAPI for bus FPGAs, Ethernet for
   cloudFPGA).  Input/output transfers bracket the kernel execution. *)
let run_fpga sim (node : t) (dev : fpga_dev) ~bitstream
    ~(estimate : Everest_hls.Estimate.t) ~host_link ~in_bytes ~out_bytes k =
  Desim.acquire sim dev.slots (fun () ->
      ensure_loaded sim dev ~bitstream (fun () ->
          let t_in = Spec.transfer_time host_link ~bytes:in_bytes in
          let t_exec = Spec.fpga_kernel_time dev.fspec estimate in
          let t_out = Spec.transfer_time host_link ~bytes:out_bytes in
          let dt = t_in +. t_exec +. t_out in
          Desim.schedule sim dt (fun () ->
              dev.f_busy_s <- dev.f_busy_s +. dt;
              node.energy_j <-
                node.energy_j
                +. (t_exec *. estimate.Everest_hls.Estimate.dynamic_power_w)
                +. ((t_in +. t_out) *. 0.2 *. dev.fspec.Spec.active_w);
              node.tasks_run <- node.tasks_run + 1;
              Desim.release sim dev.slots;
              k ())))

(* Total energy including idle floor over [elapsed] seconds. *)
let total_energy (node : t) ~elapsed =
  let idle =
    (node.cpu.Spec.idle_w *. elapsed)
    +. List.fold_left
         (fun acc d -> acc +. (d.fspec.Spec.idle_w *. elapsed))
         0.0 node.fpgas
  in
  node.energy_j +. idle

let cpu_utilization (node : t) ~elapsed =
  if elapsed <= 0.0 then 0.0
  else node.cpu_busy_core_s /. (elapsed *. float_of_int node.cpu.Spec.cores)

let pp ppf (n : t) =
  Fmt.pf ppf "%s[%s] %s cores=%d fpgas=%d" n.name (Spec.tier_name n.tier)
    n.cpu.Spec.cpu_name n.cpu.Spec.cores (List.length n.fpgas)
