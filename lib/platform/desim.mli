(** Discrete-event simulation engine.

    Event-scheduling style: callbacks queue at absolute times in a binary
    min-heap; FIFO resources model contention (CPU cores, FPGA role slots).
    All platform and runtime behaviour in EVEREST's simulated target system
    runs on this engine. *)

type t

val create : unit -> t

(** Current simulated time in seconds. *)
val now : t -> float

(** [warp sim t] jumps the clock forward to absolute time [t] without
    executing anything — used by recovery to rebuild a simulation at a
    snapshot's timestamp before re-inserting its pending events.
    @raise Invalid_argument for times in the past. *)
val warp : t -> float -> unit

(** [schedule sim delay f] runs [f] at [now + delay].
    @raise Invalid_argument on negative delays. *)
val schedule : t -> float -> (unit -> unit) -> unit

(** A scheduled event that can still be revoked.  Handles exist so rescue
    timers (timeout/speculation watchdogs armed per task) can be cancelled
    when the task completes first, instead of sitting in the heap as dead
    closures until their fire time — at 10⁶ tasks that retention is O(n). *)
type handle

(** Like [schedule], returning a cancellation handle. *)
val schedule_cancellable : t -> float -> (unit -> unit) -> handle

(** Revoke the event: its closure is released immediately, the pop loop
    skips it without running it or advancing the clock, and when cancelled
    events outnumber live ones the heap is compacted in place.  No-op once
    the event has fired or was already cancelled. *)
val cancel : t -> handle -> unit

val cancelled : handle -> bool

(** [at sim time f] runs [f] at the absolute [time].
    @raise Invalid_argument for times in the past. *)
val at : t -> float -> (unit -> unit) -> unit

(** Run until the queue drains, or until the horizon [until]; ties execute
    in insertion order. *)
val run : ?until:float -> t -> unit

(** Number of events executed so far. *)
val executed : t -> int

(** Live (non-cancelled) events still queued. *)
val pending : t -> int

(** Snapshot engine counters (events executed/pending, simulated now) into
    telemetry gauges. *)
val publish : ?registry:Everest_telemetry.Metrics.registry -> t -> unit

(** {2 FIFO resources} *)

(** Contention state is internal; read it through the accessors below so the
    accounting representation can evolve. *)
type resource

(** [resource name capacity] models [capacity] interchangeable units. *)
val resource : string -> int -> resource

(** [acquire sim r k] runs [k] as soon as a unit is free (immediately when
    available, else FIFO). *)
val acquire : t -> resource -> (unit -> unit) -> unit

(** Release one unit; hands it directly to the next waiter if any.
    @raise Invalid_argument when nothing is held. *)
val release : t -> resource -> unit

(** Hold one unit for [duration] simulated seconds, then continue with the
    callback. *)
val with_resource : t -> resource -> duration:float -> (unit -> unit) -> unit

val resource_name : resource -> string
val capacity : resource -> int

(** Units currently held. *)
val in_use : resource -> int

val queue_length : resource -> int
val utilization_now : resource -> float

(** {2 Contention statistics} *)

type wait_stats = {
  ws_name : string;
  ws_capacity : int;
  ws_peak : int;  (** highest concurrent occupancy seen *)
  ws_waits : int;  (** acquisitions that had to queue *)
  ws_total_wait_s : float;  (** summed simulated queue time *)
  ws_mean_wait_s : float;  (** over queued-and-granted acquisitions *)
}

val peak : resource -> int
val wait_count : resource -> int
val total_wait_s : resource -> float
val mean_wait_s : resource -> float
val wait_stats : resource -> wait_stats

(** Snapshot one resource's contention state into telemetry gauges labeled
    [resource=<name>]. *)
val publish_resource :
  ?registry:Everest_telemetry.Metrics.registry -> resource -> unit
