(* A distributed EVEREST system: nodes in edge/inner-edge/cloud tiers joined
   by heterogeneous links (Fig. 3), with data transfer and placement.

   Link selection: an explicit entry in the topology wins; otherwise the
   default tier-to-tier links apply (endpoint<->inner-edge over 10GbE,
   inner-edge<->cloud over WAN, intra-cloud over 100GbE). *)

type t = {
  sim : Desim.t;
  nodes : Node.t list;
  node_tbl : (string, Node.t) Hashtbl.t;
  mutable links : (string * string * Spec.link) list;
  mutable bytes_moved : int;
  mutable transfers : int;
}

let create ?(links = []) nodes =
  (* name -> node index built once: [find_node] sits on the executor's
     per-task hot path, where the historical list scan was O(|nodes|) per
     lookup.  First binding wins, matching the old [List.find_opt]. *)
  let node_tbl = Hashtbl.create (max 16 (List.length nodes)) in
  List.iter
    (fun (n : Node.t) ->
      if not (Hashtbl.mem node_tbl n.Node.name) then
        Hashtbl.add node_tbl n.Node.name n)
    nodes;
  { sim = Desim.create (); nodes; node_tbl; links; bytes_moved = 0;
    transfers = 0 }

let find_node c name =
  match Hashtbl.find_opt c.node_tbl name with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "cluster: unknown node %S" name)

let add_link c a b link = c.links <- (a, b, link) :: c.links

let default_link (a : Node.t) (b : Node.t) =
  match (a.Node.tier, b.Node.tier) with
  | Spec.Cloud, Spec.Cloud -> Spec.eth100_tcp
  | Spec.Endpoint, Spec.Inner_edge | Spec.Inner_edge, Spec.Endpoint ->
      Spec.eth10_udp
  | Spec.Endpoint, Spec.Endpoint -> Spec.eth10_udp
  | Spec.Inner_edge, Spec.Inner_edge -> Spec.eth10_tcp
  | Spec.Cloud, _ | _, Spec.Cloud -> Spec.wan

let link_between c (a : Node.t) (b : Node.t) =
  let pair (x, y, _) =
    (String.equal x a.Node.name && String.equal y b.Node.name)
    || (String.equal x b.Node.name && String.equal y a.Node.name)
  in
  match List.find_opt pair c.links with
  | Some (_, _, l) -> l
  | None -> default_link a b

(* Move [bytes] from [src] to [dst]; zero-cost when same node. *)
let transfer c ~(src : Node.t) ~(dst : Node.t) ~bytes k =
  if src == dst || String.equal src.Node.name dst.Node.name then k ()
  else begin
    let l = link_between c src dst in
    let dt = Spec.transfer_time l ~bytes in
    c.bytes_moved <- c.bytes_moved + bytes;
    c.transfers <- c.transfers + 1;
    Desim.schedule c.sim dt k
  end

let transfer_time c ~(src : Node.t) ~(dst : Node.t) ~bytes =
  if src == dst then 0.0
  else Spec.transfer_time (link_between c src dst) ~bytes

let run ?until c = Desim.run ?until c.sim
let elapsed c = Desim.now c.sim

let total_energy c =
  let e = elapsed c in
  List.fold_left (fun acc n -> acc +. Node.total_energy n ~elapsed:e) 0.0 c.nodes

(* Snapshot the whole system — engine counters, per-resource contention,
   transfer totals — into telemetry gauges. *)
let publish_metrics ?registry c =
  let module M = Everest_telemetry.Metrics in
  Desim.publish ?registry c.sim;
  List.iter
    (fun (n : Node.t) ->
      Desim.publish_resource ?registry n.Node.cores;
      List.iter
        (fun (d : Node.fpga_dev) -> Desim.publish_resource ?registry d.Node.slots)
        n.Node.fpgas)
    c.nodes;
  M.set (M.gauge ?registry "cluster_bytes_moved") (float_of_int c.bytes_moved);
  M.set (M.gauge ?registry "cluster_transfers") (float_of_int c.transfers)

(* ---- canonical EVEREST systems (Fig. 4) ----------------------------------------- *)

(* POWER9 node with [n] bus-attached (OpenCAPI) FPGAs. *)
let power9_node ?(n_fpgas = 2) name =
  Node.create ~name ~tier:Spec.Cloud
    ~fpgas:(List.init n_fpgas (fun _ -> Spec.bus_fpga))
    Spec.power9

(* A rack of disaggregated network-attached cloudFPGAs: each is a standalone
   node whose "CPU" is a negligible management core. *)
let cloudfpga_node name =
  Node.create ~name ~tier:Spec.Cloud ~fpgas:[ Spec.cloud_fpga ]
    { Spec.riscv_endpoint with Spec.cpu_name = "cFDK-shell" }

let edge_node ?(with_fpga = true) name =
  Node.create ~name ~tier:Spec.Inner_edge
    ~fpgas:(if with_fpga then [ Spec.edge_fpga ] else [])
    Spec.arm_edge

let endpoint_node name =
  Node.create ~name ~tier:Spec.Endpoint Spec.riscv_endpoint

(* The full EVEREST demonstrator: one POWER9 + bus FPGAs, a cloudFPGA rack,
   edge nodes and endpoints. *)
let everest_demonstrator ?(cloud_fpgas = 4) ?(edges = 2) ?(endpoints = 4) () =
  let p9 = power9_node "p9" in
  let cfs = List.init cloud_fpgas (fun i -> cloudfpga_node (Printf.sprintf "cf%d" i)) in
  let eds = List.init edges (fun i -> edge_node (Printf.sprintf "edge%d" i)) in
  let eps = List.init endpoints (fun i -> endpoint_node (Printf.sprintf "ep%d" i)) in
  let c = create ((p9 :: cfs) @ eds @ eps) in
  (* cloudFPGAs sit on the DC network close to the POWER9 host *)
  List.iter (fun (cf : Node.t) -> add_link c "p9" cf.Node.name Spec.eth100_tcp) cfs;
  c

let pp ppf c =
  Fmt.pf ppf "cluster: %a" Fmt.(list ~sep:(any "; ") Node.pp) c.nodes
