(** The adaptive orchestrator: closes the loop between the mARGOt tuner,
    the virtualized execution layers and the simulated platform (Fig. 2,
    item 2: "dynamic hardware-software adaptation strategy").

    A kernel is deployed with its compile-time variants; requests arrive in
    closed loop; per request the policy picks the variant, the runtime
    executes it (guest compute for software, vFPGA launches for hardware)
    and the measured latency feeds back into the tuner. *)

open Everest_platform
open Everest_autotune

type variant_impl =
  | Sw of { flops : float; bytes : float; threads : int }
  | Hw of {
      bitstream : string;
      estimate : Everest_hls.Estimate.t;
      in_bytes : int;
      out_bytes : int;
    }

type deployed_kernel = {
  kname : string;
  impls : (string * variant_impl) list;
  tuner : Tuner.t;
  breakers : (string * Everest_resilience.Breaker.t) list;
      (** One circuit breaker per hardware variant: repeated failures trip
          it and requests degrade to software until a half-open probe
          succeeds. *)
}

type t = {
  cluster : Cluster.t;
  host : Node.t;
  hyper : Vm.hypervisor;
  vm : Vm.t;
  vfpga_mgr : Vfpga.t;
  vctx : Vfpga.vctx option;
  protection : Protection.t;
  tracer : Everest_telemetry.Trace.t;
      (** Request-loop spans in simulated time (no-op by default). *)
  registry : Everest_telemetry.Metrics.registry;
  mutable kernels : deployed_kernel list;
}

(** Stand up the runtime on a cluster node: spawns the application VM and,
    when the host has FPGAs, a vFPGA context.  Pass [tracer] (usually
    {!sim_tracer} on the same cluster) to record per-request spans;
    [registry] (default {!Everest_telemetry.Metrics.default}) receives the
    [orchestrator_*], [tuner_*] and [protection_*] metrics. *)
val create :
  ?vcpus:int ->
  ?tracer:Everest_telemetry.Trace.t ->
  ?registry:Everest_telemetry.Metrics.registry ->
  Cluster.t ->
  host_name:string ->
  t

(** A tracer driven by the cluster's simulated clock. *)
val sim_tracer : ?capacity:int -> Cluster.t -> Everest_telemetry.Trace.t

(** Snapshot the runtime layers — tuner decisions, vFPGA activity, the data
    protection monitors — into telemetry gauges (also called at the end of
    every [serve]). *)
val publish_metrics : t -> unit

(** Deploy a kernel with its variants; hardware bitstreams are preloaded
    (deployment-time configuration) and every hardware variant gets a
    circuit breaker ([breaker] overrides the default configuration). *)
val deploy :
  ?breaker:Everest_resilience.Breaker.config ->
  t ->
  kname:string ->
  impls:(string * variant_impl) list ->
  knowledge:Knowledge.t ->
  goal:Goal.t ->
  deployed_kernel

val find_kernel : t -> string -> deployed_kernel

(** {2 Checkpoint / restore} *)

(** The behavioural cross-request state: simulated clock, FPGA slot
    contents (whether the next invocation pays reconfiguration), and per
    deployed kernel the tuner knowledge plus breaker states.  Telemetry
    counters are deliberately excluded — they never feed back into
    scheduling. *)
type persisted_state = {
  ps_clock : float;
  ps_fpgas : (int * int * (int * string) list) list;
      (** dev_id, next_slot, slot -> bitstream *)
  ps_kernels :
    (string * Everest_autotune.Tuner.persisted
    * (string * Everest_resilience.Breaker.persisted) list)
    list;
}

val export_state : t -> persisted_state

(** Restore into a freshly created-and-deployed orchestrator: kernels and
    variants must already exist (deployment is code, not state).
    @raise Invalid_argument on unknown devices/kernels/variants. *)
val restore_state : t -> persisted_state -> unit

(** Breaker state of a hardware variant at the current simulated time;
    [None] for software variants. *)
val breaker_state :
  t -> deployed_kernel -> variant:string -> Everest_resilience.Breaker.state option

(** Execute one variant; the continuation receives the measured simulated
    latency.  [slowdown] injects contention per variant. *)
val execute :
  t ->
  deployed_kernel ->
  variant:string ->
  ?slowdown:(string -> float) ->
  (float -> unit) ->
  unit

type policy = Adaptive | Fixed of string | Random of int

type request_log = {
  req : int;
  requested : string;  (** What the policy picked. *)
  variant : string;  (** What actually served the request. *)
  latency_s : float;  (** Across all attempts, including backoff. *)
  attempts : int;
  degraded : bool;  (** A breaker diverted a hardware pick to software. *)
  ok : bool;
  t_done : float;  (** Simulated completion time, for SLO windows. *)
}

(** Serve [n] closed-loop requests.  [slowdown req variant] injects
    time-varying contention; [features req] supplies per-request data
    features to the tuner.

    [fail ~req ~variant ~attempt] injects a deterministic per-attempt
    failure verdict; failures feed the variant's circuit breaker and are
    retried with backoff up to [max_attempts] (default 3).  While a
    hardware variant's breaker is open, requests for it are served by the
    first software variant (graceful degradation), recorded per request in
    [degraded] and in the [orchestrator_degraded_total] counter.

    [slos] are online {!Everest_observe.Slo} monitors fed as each request
    completes (simulated completion time, final latency, outcome); their
    end-of-run verdicts land in [orchestrator_slo_*] gauges labelled by
    monitor name.  Without monitors no extra metrics are touched. *)
val serve :
  t ->
  kernel:string ->
  n:int ->
  policy:policy ->
  ?slowdown:(int -> string -> float) ->
  ?features:(int -> (string * float) list) ->
  ?fail:(req:int -> variant:string -> attempt:int -> bool) ->
  ?max_attempts:int ->
  ?slos:Everest_observe.Slo.monitor list ->
  unit ->
  request_log list

val total_latency : request_log list -> float
val mean_latency : request_log list -> float

(** Fraction of requests that ultimately succeeded (1.0 on an empty log). *)
val availability : request_log list -> float

(** Requests that were served degraded. *)
val degraded_requests : request_log list -> int

val variant_histogram : request_log list -> (string * int) list

(** The request log as batch SLO outcomes, for
    {!Everest_observe.Slo.evaluate_all} over a finished run. *)
val slo_outcomes : request_log list -> Everest_observe.Slo.outcome list
