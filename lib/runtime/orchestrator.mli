(** The adaptive orchestrator: closes the loop between the mARGOt tuner,
    the virtualized execution layers and the simulated platform (Fig. 2,
    item 2: "dynamic hardware-software adaptation strategy").

    A kernel is deployed with its compile-time variants; requests arrive in
    closed loop; per request the policy picks the variant, the runtime
    executes it (guest compute for software, vFPGA launches for hardware)
    and the measured latency feeds back into the tuner. *)

open Everest_platform
open Everest_autotune

type variant_impl =
  | Sw of { flops : float; bytes : float; threads : int }
  | Hw of {
      bitstream : string;
      estimate : Everest_hls.Estimate.t;
      in_bytes : int;
      out_bytes : int;
    }

type deployed_kernel = {
  kname : string;
  impls : (string * variant_impl) list;
  tuner : Tuner.t;
}

type t = {
  cluster : Cluster.t;
  host : Node.t;
  hyper : Vm.hypervisor;
  vm : Vm.t;
  vfpga_mgr : Vfpga.t;
  vctx : Vfpga.vctx option;
  protection : Protection.t;
  tracer : Everest_telemetry.Trace.t;
      (** Request-loop spans in simulated time (no-op by default). *)
  registry : Everest_telemetry.Metrics.registry;
  mutable kernels : deployed_kernel list;
}

(** Stand up the runtime on a cluster node: spawns the application VM and,
    when the host has FPGAs, a vFPGA context.  Pass [tracer] (usually
    {!sim_tracer} on the same cluster) to record per-request spans;
    [registry] (default {!Everest_telemetry.Metrics.default}) receives the
    [orchestrator_*], [tuner_*] and [protection_*] metrics. *)
val create :
  ?vcpus:int ->
  ?tracer:Everest_telemetry.Trace.t ->
  ?registry:Everest_telemetry.Metrics.registry ->
  Cluster.t ->
  host_name:string ->
  t

(** A tracer driven by the cluster's simulated clock. *)
val sim_tracer : ?capacity:int -> Cluster.t -> Everest_telemetry.Trace.t

(** Snapshot the runtime layers — tuner decisions, vFPGA activity, the data
    protection monitors — into telemetry gauges (also called at the end of
    every [serve]). *)
val publish_metrics : t -> unit

(** Deploy a kernel with its variants; hardware bitstreams are preloaded
    (deployment-time configuration). *)
val deploy :
  t ->
  kname:string ->
  impls:(string * variant_impl) list ->
  knowledge:Knowledge.t ->
  goal:Goal.t ->
  deployed_kernel

val find_kernel : t -> string -> deployed_kernel

(** Execute one variant; the continuation receives the measured simulated
    latency.  [slowdown] injects contention per variant. *)
val execute :
  t ->
  deployed_kernel ->
  variant:string ->
  ?slowdown:(string -> float) ->
  (float -> unit) ->
  unit

type policy = Adaptive | Fixed of string | Random of int

type request_log = { req : int; variant : string; latency_s : float }

(** Serve [n] closed-loop requests.  [slowdown req variant] injects
    time-varying contention; [features req] supplies per-request data
    features to the tuner. *)
val serve :
  t ->
  kernel:string ->
  n:int ->
  policy:policy ->
  ?slowdown:(int -> string -> float) ->
  ?features:(int -> (string * float) list) ->
  unit ->
  request_log list

val total_latency : request_log list -> float
val mean_latency : request_log list -> float
val variant_histogram : request_log list -> (string * int) list
