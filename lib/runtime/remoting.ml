(* API remoting: guests reach accelerators through a paravirtual transport
   instead of direct device assignment ("API remoting techniques will
   improve data exchanges", paper §IV).

   Each remote call pays a fixed guest-host crossing cost; batching several
   calls amortizes it.  The model exposes the trade-off the runtime
   optimizes when it groups kernel invocations. *)

type transport = {
  per_call_s : float;  (* vmexit + marshalling *)
  per_kb_s : float;  (* shared-memory copy cost *)
  batch_limit : int;
}

let virtio_default = { per_call_s = 12e-6; per_kb_s = 0.08e-6; batch_limit = 64 }

let passthrough = { per_call_s = 1.5e-6; per_kb_s = 0.0; batch_limit = 1 }

(* Cost of issuing [calls] invocations carrying [bytes_per_call] each,
   batching up to [t.batch_limit] per crossing. *)
let cost t ~calls ~bytes_per_call =
  let crossings = (calls + t.batch_limit - 1) / t.batch_limit in
  (float_of_int crossings *. t.per_call_s)
  +. (float_of_int calls *. float_of_int bytes_per_call /. 1024.0 *. t.per_kb_s)

let amortization t ~calls ~bytes_per_call =
  let unbatched =
    float_of_int calls *. (t.per_call_s +. (float_of_int bytes_per_call /. 1024.0 *. t.per_kb_s))
  in
  let batched = cost t ~calls ~bytes_per_call in
  if batched = 0.0 then 1.0 else unbatched /. batched

exception Call_failed of { attempts : int }

(* Issue a remoted accelerator invocation inside the simulation.

   [fail] is a deterministic fault hook: called with the 1-based attempt
   number when the crossing completes, [true] means the transport dropped
   the call.  Failed attempts are retried up to [retries] times with
   exponential backoff on the simulated clock; when the budget runs out the
   continuation is abandoned and [on_give_up] fires (default: raise
   [Call_failed] from inside the simulation). *)
let invoke ?(fail = fun ~attempt:_ -> false) ?(retries = 0)
    ?(backoff = Everest_resilience.Policy.default_backoff) ?on_give_up sim t
    ~calls ~bytes_per_call k =
  let c = cost t ~calls ~bytes_per_call in
  let give_up =
    match on_give_up with
    | Some f -> f
    | None -> fun ~attempts -> raise (Call_failed { attempts })
  in
  let rec go ~attempt ~prev_delay =
    Everest_platform.Desim.schedule sim c (fun () ->
        if not (fail ~attempt) then k ()
        else if attempt > retries then give_up ~attempts:attempt
        else
          let delay =
            (* keyed off the attempt number so repeat invocations draw the
               same jitter: remoted retries stay reproducible *)
            let rng = Everest_parallel.Rng.create (attempt * 7919) in
            Everest_resilience.Policy.next_delay backoff ~rng ~prev:prev_delay
          in
          Everest_platform.Desim.schedule sim delay (fun () ->
              go ~attempt:(attempt + 1) ~prev_delay:delay))
  in
  go ~attempt:1 ~prev_delay:0.0
