(* The adaptive orchestrator: closes the loop between the mARGOt tuner, the
   virtualized execution layers and the simulated platform (Fig. 2, item 2:
   "dynamic hardware-software adaptation strategy").

   A kernel is deployed with its compile-time variants; requests arrive in
   closed loop; for every request the policy picks the variant, the runtime
   executes it (guest compute for software variants, vFPGA launches for
   hardware ones) and the measured latency is fed back to the tuner. *)

open Everest_platform
open Everest_autotune
module Trace = Everest_telemetry.Trace
module Metrics = Everest_telemetry.Metrics

type variant_impl =
  | Sw of { flops : float; bytes : float; threads : int }
  | Hw of {
      bitstream : string;
      estimate : Everest_hls.Estimate.t;
      in_bytes : int;
      out_bytes : int;
    }

type deployed_kernel = {
  kname : string;
  impls : (string * variant_impl) list;
  tuner : Tuner.t;
  breakers : (string * Everest_resilience.Breaker.t) list;
      (* one per hardware variant: trips when the variant keeps failing,
         degrading requests to software until a half-open probe succeeds *)
}

type t = {
  cluster : Cluster.t;
  host : Node.t;
  hyper : Vm.hypervisor;
  vm : Vm.t;
  vfpga_mgr : Vfpga.t;
  vctx : Vfpga.vctx option;
  protection : Protection.t;
  tracer : Trace.t;  (* simulated-clock spans of the request loop *)
  registry : Metrics.registry;
  mutable kernels : deployed_kernel list;
}

let create ?(vcpus = 4) ?tracer ?(registry = Metrics.default)
    (cluster : Cluster.t) ~host_name =
  let host = Cluster.find_node cluster host_name in
  let hyper = Vm.hypervisor host in
  let vm = Vm.spawn hyper ~name:"everest-app" ~vcpus in
  let vfpga_mgr = Vfpga.create () in
  let vctx =
    if Node.has_fpga host then Some (Vfpga.allocate vfpga_mgr ~vm) else None
  in
  let tracer = Option.value ~default:Trace.noop tracer in
  { cluster; host; hyper; vm; vfpga_mgr; vctx;
    protection = Protection.create (); tracer; registry; kernels = [] }

(* Tracer on the cluster's simulated clock, for [?tracer] at [create]. *)
let sim_tracer ?capacity (cluster : Cluster.t) =
  Trace.create ?capacity ~clock:(fun () -> Desim.now cluster.Cluster.sim) ()

let deploy ?breaker orch ~kname ~impls ~(knowledge : Knowledge.t)
    ~(goal : Goal.t) =
  (* deployment-time configuration: preload every hardware variant's
     bitstream so first invocations do not pay reconfiguration *)
  (match orch.vctx with
  | Some ctx ->
      List.iter
        (fun (_, impl) ->
          match impl with
          | Hw { bitstream; _ } -> Node.preload ctx.Vfpga.dev ~bitstream
          | Sw _ -> ())
        impls
  | None -> ());
  let breakers =
    List.filter_map
      (fun (name, impl) ->
        match impl with
        | Hw _ ->
            Some
              (name, Everest_resilience.Breaker.create ?config:breaker ())
        | Sw _ -> None)
      impls
  in
  let k = { kname; impls; tuner = Tuner.create knowledge goal; breakers } in
  orch.kernels <- k :: orch.kernels;
  k

let breaker_state orch dk ~variant =
  let now = Desim.now orch.cluster.Cluster.sim in
  Option.map
    (fun b -> Everest_resilience.Breaker.state b ~now)
    (List.assoc_opt variant dk.breakers)

let find_kernel orch name =
  List.find (fun k -> String.equal k.kname name) orch.kernels

(* Checkpoint/restore.  The behavioural cross-request state of an
   orchestrator is: its simulated clock (breaker cooldowns and retry
   backoffs are measured on it), which bitstreams each FPGA device holds
   in which slot (whether the next invocation pays reconfiguration), and
   per deployed kernel the tuner knowledge plus breaker states.  Energy,
   utilization and counter telemetry is deliberately left out — it never
   feeds back into scheduling decisions. *)
type persisted_state = {
  ps_clock : float;
  ps_fpgas : (int * int * (int * string) list) list;
      (* dev_id, next_slot, slot -> bitstream *)
  ps_kernels :
    (string * Tuner.persisted
    * (string * Everest_resilience.Breaker.persisted) list)
    list;
}

let export_state orch =
  {
    ps_clock = Desim.now orch.cluster.Cluster.sim;
    ps_fpgas =
      List.map
        (fun d -> (d.Node.dev_id, d.Node.next_slot, d.Node.loaded))
        orch.host.Node.fpgas;
    ps_kernels =
      List.map
        (fun dk ->
          ( dk.kname,
            Tuner.export dk.tuner,
            List.map
              (fun (v, b) -> (v, Everest_resilience.Breaker.export b))
              dk.breakers ))
        orch.kernels;
  }

(* Restore into a freshly created-and-deployed orchestrator: kernels and
   variants must already exist (the deployment is code, not state). *)
let restore_state orch ps =
  Desim.warp orch.cluster.Cluster.sim ps.ps_clock;
  List.iter
    (fun (dev_id, next_slot, loaded) ->
      match
        List.find_opt (fun d -> d.Node.dev_id = dev_id) orch.host.Node.fpgas
      with
      | Some d ->
          d.Node.next_slot <- next_slot;
          d.Node.loaded <- loaded
      | None -> invalid_arg "Orchestrator.restore_state: unknown FPGA device")
    ps.ps_fpgas;
  List.iter
    (fun (kname, tuner_p, breakers_p) ->
      let dk = find_kernel orch kname in
      Tuner.import dk.tuner tuner_p;
      List.iter
        (fun (variant, bp) ->
          match List.assoc_opt variant dk.breakers with
          | Some b -> Everest_resilience.Breaker.import b bp
          | None ->
              invalid_arg "Orchestrator.restore_state: unknown breaker")
        breakers_p)
    ps.ps_kernels

(* Snapshot the runtime layers — tuner decisions, vFPGA activity, the data
   protection monitors — into telemetry gauges of the orchestrator's
   registry. *)
let publish_metrics orch =
  let registry = orch.registry in
  let g ?labels name v = Metrics.set (Metrics.gauge ~registry ?labels name) v in
  List.iter
    (fun dk ->
      let labels = [ ("kernel", dk.kname) ] in
      g ~labels "tuner_selections" (float_of_int dk.tuner.Tuner.selections);
      g ~labels "tuner_switches" (float_of_int dk.tuner.Tuner.switches);
      let now = Desim.now orch.cluster.Cluster.sim in
      List.iter
        (fun (variant, b) ->
          let labels = ("variant", variant) :: labels in
          (* 0 closed, 0.5 half-open, 1 open *)
          g ~labels "orchestrator_breaker_open"
            (match Everest_resilience.Breaker.state b ~now with
            | Everest_resilience.Breaker.Closed -> 0.0
            | Everest_resilience.Breaker.Half_open -> 0.5
            | Everest_resilience.Breaker.Open -> 1.0);
          g ~labels "orchestrator_breaker_opens"
            (float_of_int (Everest_resilience.Breaker.opens b)))
        dk.breakers)
    orch.kernels;
  g "protection_alerts" (float_of_int orch.protection.Protection.total_alerts);
  g "protection_dropped_batches"
    (float_of_int orch.protection.Protection.dropped_batches);
  g "vfpga_active_contexts"
    (float_of_int (Vfpga.active_contexts orch.vfpga_mgr));
  g "vfpga_denied" (float_of_int orch.vfpga_mgr.Vfpga.denied);
  Cluster.publish_metrics ~registry orch.cluster

(* Execute one variant; [k] receives the measured latency (simulated). *)
let execute orch (dk : deployed_kernel) ~variant
    ?(slowdown = fun _ -> 1.0) k =
  let sim = orch.cluster.Cluster.sim in
  let t0 = Desim.now sim in
  let impl =
    match List.assoc_opt variant dk.impls with
    | Some i -> i
    | None -> invalid_arg (dk.kname ^ ": unknown variant " ^ variant)
  in
  let factor = slowdown variant in
  match impl with
  | Sw { flops; bytes; threads } ->
      Vm.run_guest sim orch.vm ~flops:(flops *. factor) ~bytes ~threads
        (fun () -> k (Desim.now sim -. t0))
  | Hw { bitstream; estimate; in_bytes; out_bytes } -> (
      match orch.vctx with
      | None ->
          (* no FPGA: emulate on CPU, very slow *)
          Vm.run_guest sim orch.vm
            ~flops:(float_of_int estimate.Everest_hls.Estimate.cycles *. 50.0 *. factor)
            ~bytes:(float_of_int (in_bytes + out_bytes))
            ~threads:1
            (fun () -> k (Desim.now sim -. t0))
      | Some ctx ->
          let estimate =
            { estimate with
              Everest_hls.Estimate.cycles =
                int_of_float (float_of_int estimate.Everest_hls.Estimate.cycles *. factor) }
          in
          Vfpga.launch orch.vfpga_mgr sim ~vm:orch.vm ~ctx ~bitstream ~estimate
            ~in_bytes ~out_bytes (fun () -> k (Desim.now sim -. t0)))

type policy = Adaptive | Fixed of string | Random of int  (* seed *)

type request_log = {
  req : int;
  requested : string;  (* what the policy picked *)
  variant : string;  (* what actually served the request *)
  latency_s : float;  (* across all attempts *)
  attempts : int;
  degraded : bool;  (* breaker diverted a hardware pick to software *)
  ok : bool;
  t_done : float;  (* simulated completion time, for SLO windows *)
}

(* Serve [n] closed-loop requests under [policy].  [slowdown req variant]
   injects time-varying contention (the workload/resource shifts the runtime
   must react to).  [features req] supplies per-request data features.

   [fail ~req ~variant ~attempt] injects a deterministic per-attempt
   failure verdict.  Failures feed the variant's circuit breaker and are
   retried (with backoff) up to [max_attempts]; while a hardware variant's
   breaker is open, requests for it degrade to the first software variant
   until a half-open probe succeeds.

   [slos] are online SLO monitors fed as each request completes (simulated
   completion time, final latency and outcome); burn-rate gauges are
   published per monitor — only when monitors were passed, so default runs
   touch no extra metrics. *)
let serve orch ~kernel ~n ~policy
    ?(slowdown = fun _req _variant -> 1.0)
    ?(features = fun _req -> [])
    ?(fail = fun ~req:_ ~variant:_ ~attempt:_ -> false)
    ?(max_attempts = 3) ?(slos = []) () =
  let dk = find_kernel orch kernel in
  let registry = orch.registry in
  let labels = [ ("kernel", kernel) ] in
  let m_requests =
    Metrics.counter ~registry ~labels "orchestrator_requests_total"
  and m_switches =
    Metrics.counter ~registry ~labels "orchestrator_variant_switches_total"
  and m_faults =
    Metrics.counter ~registry ~labels "orchestrator_protection_faults_total"
  and m_retries =
    Metrics.counter ~registry ~labels "orchestrator_retries_total"
  and m_failures =
    Metrics.counter ~registry ~labels "orchestrator_failures_total"
  and m_degraded =
    Metrics.counter ~registry ~labels "orchestrator_degraded_total"
  and h_latency =
    Metrics.histogram ~registry ~labels "orchestrator_request_latency_s"
  in
  let trace_on = not (Trace.is_noop orch.tracer) in
  let last_variant = ref None in
  let alerts_before = ref orch.protection.Protection.total_alerts in
  let log = ref [] in
  let rng = Everest_parallel.Rng.create 123 in
  let pick_random seed_variants =
    List.nth seed_variants
      (Everest_parallel.Rng.int rng (List.length seed_variants))
  in
  let sim = orch.cluster.Cluster.sim in
  let backoff_rng = Everest_parallel.Rng.create 0xB0FF in
  let sw_fallback () =
    List.find_map
      (fun (name, impl) ->
        match impl with Sw _ -> Some name | Hw _ -> None)
      dk.impls
  in
  let rec loop req =
    if req >= n then ()
    else begin
      let rspan =
        if trace_on then
          Some
            (Trace.start orch.tracer ~attrs:[ ("req", Trace.I req) ]
               ("request:" ^ kernel))
        else None
      in
      let parent = Option.map (fun s -> s.Trace.id) rspan in
      let requested =
        (* selection is instantaneous in simulated time; record it as a
           zero-width child so the decision is visible in the trace *)
        let sspan =
          if trace_on then
            Some (Trace.start orch.tracer ?parent "select")
          else None
        in
        let v =
          match policy with
          | Fixed v -> v
          | Random _ -> pick_random (List.map fst dk.impls)
          | Adaptive -> (
              match Tuner.select dk.tuner ~features:(features req) with
              | Some d -> d.Selector.point.Knowledge.variant
              | None -> fst (List.hd dk.impls))
        in
        Option.iter
          (fun s ->
            Trace.finish orch.tracer ~attrs:[ ("variant", Trace.S v) ] s)
          sspan;
        v
      in
      let t_req = Desim.now sim in
      let rec attempt_loop ~attempt ~prev_delay ~degraded_sofar =
        (* route through the variant's breaker: an open breaker on a
           hardware pick degrades the request to software instead of
           hammering a failing accelerator *)
        let variant, degraded_now =
          match List.assoc_opt requested dk.breakers with
          | Some b
            when not
                   (Everest_resilience.Breaker.allow b
                      ~now:(Desim.now sim)) -> (
              match sw_fallback () with
              | Some s -> (s, true)
              | None -> (requested, false))
          | _ -> (requested, false)
        in
        let degraded = degraded_sofar || degraded_now in
        if degraded_now then Metrics.inc m_degraded;
        let espan =
          if trace_on then
            Some
              (Trace.start orch.tracer ?parent
                 ~attrs:
                   [ ("variant", Trace.S variant);
                     ("attempt", Trace.I attempt) ]
                 ("execute:" ^ variant))
          else None
        in
        execute orch dk ~variant ~slowdown:(slowdown req) (fun measured ->
            let now = Desim.now sim in
            let failed = fail ~req ~variant ~attempt in
            Option.iter
              (fun s ->
                Trace.finish orch.tracer
                  ~attrs:
                    [ ("status", Trace.S (if failed then "failed" else "ok")) ]
                  s)
              espan;
            (match List.assoc_opt variant dk.breakers with
            | Some b ->
                Everest_resilience.Breaker.record b ~now ~ok:(not failed)
            | None -> ());
            if failed && attempt < max_attempts then begin
              Metrics.inc m_retries;
              let delay =
                Everest_resilience.Policy.next_delay
                  Everest_resilience.Policy.default_backoff ~rng:backoff_rng
                  ~prev:prev_delay
              in
              Desim.schedule sim delay (fun () ->
                  attempt_loop ~attempt:(attempt + 1) ~prev_delay:delay
                    ~degraded_sofar:degraded)
            end
            else begin
              let ok = not failed in
              if failed then Metrics.inc m_failures;
              let latency = now -. t_req in
              (match !last_variant with
              | Some prev when not (String.equal prev variant) ->
                  Metrics.inc m_switches
              | _ -> ());
              last_variant := Some variant;
              log :=
                { req; requested; variant; latency_s = latency;
                  attempts = attempt; degraded; ok; t_done = now }
                :: !log;
              List.iter
                (fun m ->
                  Everest_observe.Slo.observe m ~now ~latency_s:latency ~ok ())
                slos;
              Metrics.inc m_requests;
              Metrics.observe h_latency latency;
              let faults = orch.protection.Protection.total_alerts in
              if faults > !alerts_before then begin
                Metrics.inc
                  ~by:(float_of_int (faults - !alerts_before))
                  m_faults;
                alerts_before := faults
              end;
              (match policy with
              | Adaptive when ok ->
                  let ospan =
                    if trace_on then
                      Some (Trace.start orch.tracer ?parent "observe")
                    else None
                  in
                  (* feed the tuner the measured execution time, not the
                     retry-inflated request latency *)
                  Tuner.observe dk.tuner ~variant ~features:(features req)
                    ~measured:[ ("time_s", measured) ];
                  Option.iter (fun s -> Trace.finish orch.tracer s) ospan
              | _ -> ());
              Option.iter
                (fun s ->
                  Trace.finish orch.tracer
                    ~attrs:
                      [ ("variant", Trace.S variant);
                        ("latency_s", Trace.F latency);
                        ("ok", Trace.B ok) ]
                    s)
                rspan;
              loop (req + 1)
            end)
      in
      attempt_loop ~attempt:1 ~prev_delay:0.0 ~degraded_sofar:false
    end
  in
  loop 0;
  Cluster.run orch.cluster;
  publish_metrics orch;
  (* end-of-run SLO gauges, one set per monitor (skipped entirely when no
     monitors were passed, keeping default runs byte-identical) *)
  List.iter
    (fun m ->
      let module Slo = Everest_observe.Slo in
      let slo_labels = labels @ [ ("slo", Slo.monitor_name m) ] in
      let r = Slo.snapshot m in
      Metrics.set
        (Metrics.gauge ~registry ~labels:slo_labels
           "orchestrator_slo_budget_used")
        r.Slo.budget_used;
      Metrics.set
        (Metrics.gauge ~registry ~labels:slo_labels "orchestrator_slo_met")
        (if r.Slo.met then 1.0 else 0.0);
      Metrics.set
        (Metrics.gauge ~registry ~labels:slo_labels
           "orchestrator_slo_alerts")
        (float_of_int (Slo.alerts m)))
    slos;
  List.rev !log

let total_latency log =
  List.fold_left (fun acc r -> acc +. r.latency_s) 0.0 log

let mean_latency log =
  match log with
  | [] -> 0.0
  | _ -> total_latency log /. float_of_int (List.length log)

(* Fraction of requests that ultimately succeeded. *)
let availability log =
  match log with
  | [] -> 1.0
  | _ ->
      let ok = List.length (List.filter (fun r -> r.ok) log) in
      float_of_int ok /. float_of_int (List.length log)

let degraded_requests log = List.length (List.filter (fun r -> r.degraded) log)

let slo_outcomes log =
  List.map
    (fun r ->
      { Everest_observe.Slo.o_t_s = r.t_done; o_ok = r.ok;
        o_latency_s = r.latency_s })
    log

let variant_histogram log =
  List.fold_left
    (fun acc r ->
      let c = Option.value ~default:0 (List.assoc_opt r.variant acc) in
      (r.variant, c + 1) :: List.remove_assoc r.variant acc)
    [] log
