(** API remoting: guests reach accelerators through a paravirtual transport
    instead of direct device assignment ("API remoting techniques will
    improve data exchanges", paper §IV).

    Each remote call pays a fixed guest-host crossing cost; batching
    amortizes it. *)

type transport = {
  per_call_s : float;  (** vmexit + marshalling. *)
  per_kb_s : float;  (** Shared-memory copy cost. *)
  batch_limit : int;
}

val virtio_default : transport
val passthrough : transport

(** Cost of [calls] invocations carrying [bytes_per_call] each, batched up
    to [batch_limit] per crossing. *)
val cost : transport -> calls:int -> bytes_per_call:int -> float

(** Unbatched-to-batched cost ratio. *)
val amortization : transport -> calls:int -> bytes_per_call:int -> float

(** Raised (inside the simulation) when a remoted call fails on every
    attempt and no [on_give_up] handler was installed. *)
exception Call_failed of { attempts : int }

(** Issue a remoted invocation inside the simulation.

    [fail ~attempt] is a deterministic fault hook evaluated when the
    crossing completes ([true] = the transport dropped the call); failed
    attempts are retried up to [retries] times with exponential backoff on
    the simulated clock.  When the budget runs out, [on_give_up] fires with
    the attempt count (default: raise {!Call_failed}). *)
val invoke :
  ?fail:(attempt:int -> bool) ->
  ?retries:int ->
  ?backoff:Everest_resilience.Policy.backoff ->
  ?on_give_up:(attempts:int -> unit) ->
  Everest_platform.Desim.t ->
  transport ->
  calls:int ->
  bytes_per_call:int ->
  (unit -> unit) ->
  unit
