(* The EVEREST System Development Kit facade.

   One entry point for the full flow the paper describes: describe the
   application as an annotated workflow (§III-A), compile it into hardware
   and software variants (§III-B), deploy it on the (simulated) target
   system (§V) and run it under the virtualized adaptive runtime (§IV).

   The heavy lifting lives in the per-subsystem libraries; this module
   wires them together and is what the examples and the CLI use. *)

module Dsl = Everest_dsl
module Ir = Everest_ir
module Compiler = Everest_compiler
module Platform = Everest_platform
module Workflow = Everest_workflow
module Runtime = Everest_runtime
module Autotune = Everest_autotune

type app = Compiler.Pipeline.compiled_app

(* ---- describe -------------------------------------------------------------------- *)

let workflow name = Dsl.Dataflow.create name

(* ---- compile --------------------------------------------------------------------- *)

let compile ?target (g : Dsl.Dataflow.graph) : app =
  Compiler.Pipeline.compile ?target g

(* Security audit results of the compiled IR. *)
let security_report (app : app) = app.Compiler.Pipeline.violations

(* ---- deploy & run on the distributed platform ------------------------------------- *)

type run_stats = {
  makespan_s : float;
  energy_j : float;
  bytes_moved : int;
  policy : string;
}

let run ?(policy = "heft-locality") ?(cloud_fpgas = 4) ?(edges = 2)
    ?(endpoints = 4) ?faults ?exec_policy (app : app) : run_stats =
  let plan, stats =
    Workflow.Executor.run_on_demonstrator ~cloud_fpgas ~edges ~endpoints
      ?faults ?exec_policy ~policy app.Compiler.Pipeline.dag
  in
  {
    makespan_s = stats.Workflow.Executor.makespan;
    energy_j = stats.Workflow.Executor.energy_j;
    bytes_moved = stats.Workflow.Executor.bytes_moved;
    policy = plan.Workflow.Scheduler.policy;
  }

(* Compare scheduling policies on the same application. *)
let compare_policies ?(policies = [ "round-robin"; "min-load"; "heft"; "heft-locality" ])
    (app : app) =
  List.map (fun p -> (p, run ~policy:p app)) policies

(* ---- serve one kernel adaptively (the Fig. 2 loop) -------------------------------- *)

type served = {
  kernel : string;
  requests : int;
  mean_latency_s : float;
  variant_histogram : (string * int) list;
  switches : int;
  span_log : Everest_telemetry.Trace.span list;
}

let serve ?(n = 100) ?(goal = Autotune.Goal.make (Autotune.Goal.Minimize "time_s"))
    ?slowdown ?(telemetry = false) (app : app) ~kernel : served =
  let ck =
    match
      List.find_opt
        (fun k -> String.equal k.Compiler.Pipeline.ck_name kernel)
        app.Compiler.Pipeline.kernels
    with
    | Some k -> k
    | None -> invalid_arg ("serve: unknown kernel " ^ kernel)
  in
  let cluster = Platform.Cluster.create [ Platform.Cluster.power9_node "p9" ] in
  let tracer =
    if telemetry then Some (Runtime.Orchestrator.sim_tracer cluster) else None
  in
  let orch = Runtime.Orchestrator.create ?tracer cluster ~host_name:"p9" in
  let impls =
    List.map
      (fun (v : Compiler.Variants.variant) ->
        let impl =
          match Compiler.Variants.to_dag_impl ck.Compiler.Pipeline.expr v with
          | Workflow.Dag.Cpu { flops; bytes; threads } ->
              Runtime.Orchestrator.Sw { flops; bytes; threads }
          | Workflow.Dag.Fpga { bitstream; estimate; in_bytes; out_bytes } ->
              Runtime.Orchestrator.Hw { bitstream; estimate; in_bytes; out_bytes }
        in
        (v.Compiler.Variants.vname, impl))
      ck.Compiler.Pipeline.dse.Compiler.Dse.variants
  in
  let dk =
    Runtime.Orchestrator.deploy orch ~kname:kernel ~impls
      ~knowledge:ck.Compiler.Pipeline.knowledge ~goal
  in
  let log =
    Runtime.Orchestrator.serve orch ~kernel ~n
      ~policy:Runtime.Orchestrator.Adaptive ?slowdown ()
  in
  {
    kernel;
    requests = List.length log;
    mean_latency_s = Runtime.Orchestrator.mean_latency log;
    variant_histogram = Runtime.Orchestrator.variant_histogram log;
    switches = dk.Runtime.Orchestrator.tuner.Autotune.Tuner.switches;
    span_log =
      (match tracer with
      | Some t -> Everest_telemetry.Trace.spans t
      | None -> []);
  }

let pp_run ppf (r : run_stats) =
  Fmt.pf ppf "policy=%s makespan=%.3gs energy=%.3gJ moved=%dB" r.policy
    r.makespan_s r.energy_j r.bytes_moved

let pp_served ppf (s : served) =
  Fmt.pf ppf "kernel=%s n=%d mean=%.2gs switches=%d variants=[%a]" s.kernel
    s.requests s.mean_latency_s s.switches
    Fmt.(list ~sep:(any ", ") (pair ~sep:(any ":") string int))
    s.variant_histogram
