(** The EVEREST System Development Kit facade.

    One entry point for the full flow the paper describes: describe the
    application as an annotated workflow (§III-A), compile it into hardware
    and software variants (§III-B), deploy it on the simulated target
    system (§V) and run it under the virtualized adaptive runtime (§IV). *)

(** Convenience aliases to the subsystem libraries. *)
module Dsl = Everest_dsl

module Ir = Everest_ir
module Compiler = Everest_compiler
module Platform = Everest_platform
module Workflow = Everest_workflow
module Runtime = Everest_runtime
module Autotune = Everest_autotune

type app = Compiler.Pipeline.compiled_app

(** {2 Describe} *)

(** Start a new workflow graph. *)
val workflow : string -> Dsl.Dataflow.graph

(** {2 Compile} *)

(** Front-end + middle-end + back-end; see {!Everest_compiler.Pipeline}.
    @raise Everest_compiler.Pipeline.Compile_error on invalid inputs. *)
val compile : ?target:Compiler.Variants.target -> Dsl.Dataflow.graph -> app

(** Static information-flow audit results of the compiled IR. *)
val security_report :
  app -> (string * Everest_security.Ift.flow_violation) list

(** {2 Deploy and run} *)

type run_stats = {
  makespan_s : float;
  energy_j : float;
  bytes_moved : int;
  policy : string;
}

(** Execute the compiled workflow on a fresh EVEREST demonstrator.
    [faults] injects a deterministic fault plan and [exec_policy] sets the
    recovery policy (defaults: no faults, {!Everest_resilience.Policy.default}).
    @raise Everest_workflow.Executor.Execution_failed when recovery is
    exhausted; the exception carries the partial stats. *)
val run :
  ?policy:string -> ?cloud_fpgas:int -> ?edges:int -> ?endpoints:int ->
  ?faults:Everest_resilience.Faults.t ->
  ?exec_policy:Everest_resilience.Policy.t -> app ->
  run_stats

(** Run the same application under several scheduling policies. *)
val compare_policies : ?policies:string list -> app -> (string * run_stats) list

(** {2 Adaptive serving (the Fig. 2 loop)} *)

type served = {
  kernel : string;
  requests : int;
  mean_latency_s : float;
  variant_histogram : (string * int) list;
  switches : int;
  span_log : Everest_telemetry.Trace.span list;
      (** Per-request orchestrator spans in simulated time when
          [~telemetry:true] was passed to {!serve}; empty otherwise. *)
}

(** Serve [n] closed-loop requests of one compiled kernel through the
    virtualized runtime with mARGOt selection.  [slowdown req variant]
    injects contention.  [telemetry] records per-request spans into
    [span_log] (metrics always accumulate in
    {!Everest_telemetry.Metrics.default}).
    @raise Invalid_argument on unknown kernels. *)
val serve :
  ?n:int ->
  ?goal:Autotune.Goal.t ->
  ?slowdown:(int -> string -> float) ->
  ?telemetry:bool ->
  app ->
  kernel:string ->
  served

val pp_run : Format.formatter -> run_stats -> unit
val pp_served : Format.formatter -> served -> unit
