(* Memref lifetime checking.

   Each memref-typed value carries a small state machine through a
   forward dataflow walk: Alive after its producer, Freed after
   memref.dealloc, MaybeFreed when paths disagree (e.g. a dealloc inside
   one branch of an scf.if, or inside a loop body — the loop fixpoint
   joins Alive with Freed).  Uses of Freed buffers are definite errors;
   uses of MaybeFreed buffers are "possible" findings.

   Constant out-of-bounds indices are checked against static memref
   shapes with the facts of {!Constprop}, and allocations that are never
   freed and never escape the function (returned, yielded, or passed to
   anything but load/store/copy/dealloc) are reported as leaks. *)

open Everest_ir
module IntSet = Lattice.IntSet

module BufState = struct
  type t = Bot | Alive | Freed | MaybeFreed

  let bottom = Bot
  let equal = ( = )

  let join a b =
    match (a, b) with
    | Bot, x | x, Bot -> x
    | x, y when x = y -> x
    | _ -> MaybeFreed

  let pp ppf s =
    Fmt.string ppf
      (match s with
      | Bot -> "bot"
      | Alive -> "alive"
      | Freed -> "freed"
      | MaybeFreed -> "maybe-freed")
end

module M = Lattice.Int_map (BufState)
module E = Dataflow.Make (M)

type kind =
  | Use_after_free of { definite : bool }
  | Double_free of { definite : bool }
  | Leak
  | Out_of_bounds of { index : int; axis : int; dim : int }

type issue = { i_op : Ir.op; i_vid : int; kind : kind }

let is_memref (v : Ir.value) = Types.is_memref v.Ir.vty

(* Ops whose memref operands do not let the buffer escape the function. *)
let non_escaping_use = function
  | "memref.load" | "memref.store" | "memref.copy" | "memref.dealloc" -> true
  | _ -> false

let escaping_vids (f : Ir.func) : IntSet.t =
  Ir.fold_ops
    (fun acc (o : Ir.op) ->
      if non_escaping_use o.Ir.name then acc
      else
        List.fold_left
          (fun acc (v : Ir.value) ->
            if is_memref v then IntSet.add v.Ir.vid acc else acc)
          acc o.Ir.operands)
    IntSet.empty f.Ir.fbody

let static_dims (v : Ir.value) : int list option =
  match v.Ir.vty with
  | Types.Memref { shape; _ } ->
      let rec go = function
        | [] -> Some []
        | Types.Static d :: rest -> Option.map (fun l -> d :: l) (go rest)
        | Types.Dyn :: _ -> None
      in
      go shape
  | _ -> None

let analyze (f : Ir.func) : issue list =
  let consts = Constprop.analyze f in
  let escaping = escaping_vids f in
  let issues = ref [] in
  let seen = Hashtbl.create 8 in
  let allocs = ref [] in
  let report (o : Ir.op) (v : Ir.value) kind =
    let key = (o.Ir.name, v.Ir.vid, kind) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      issues := { i_op = o; i_vid = v.Ir.vid; kind } :: !issues
    end
  in
  let check_use s (o : Ir.op) (v : Ir.value) =
    match M.find v.Ir.vid s with
    | BufState.Freed -> report o v (Use_after_free { definite = true })
    | BufState.MaybeFreed -> report o v (Use_after_free { definite = false })
    | _ -> ()
  in
  let check_indices (o : Ir.op) (m : Ir.value) (idxs : Ir.value list) =
    match static_dims m with
    | None -> ()
    | Some dims ->
        List.iteri
          (fun axis (idx : Ir.value) ->
            match (Constprop.fact consts idx, List.nth_opt dims axis) with
            | Constprop.Known (Constprop.CInt i), Some d ->
                if i < 0 || i >= d then
                  report o m (Out_of_bounds { index = i; axis; dim = d })
            | _ -> ())
          idxs
  in
  let alive_results s (o : Ir.op) =
    List.fold_left
      (fun s (r : Ir.value) ->
        if is_memref r then M.add r.Ir.vid BufState.Alive s else s)
      s o.Ir.results
  in
  let transfer s (o : Ir.op) =
    match o.Ir.name with
    | "memref.alloc" ->
        let r = Ir.result o in
        if not (List.exists (fun (v, _) -> v = r.Ir.vid) !allocs) then
          allocs := (r.Ir.vid, o) :: !allocs;
        M.add r.Ir.vid BufState.Alive s
    | "memref.dealloc" -> (
        match o.Ir.operands with
        | m :: _ ->
            (match M.find m.Ir.vid s with
            | BufState.Freed -> report o m (Double_free { definite = true })
            | BufState.MaybeFreed ->
                report o m (Double_free { definite = false })
            | _ -> ());
            M.add m.Ir.vid BufState.Freed s
        | [] -> s)
    | "memref.load" -> (
        match o.Ir.operands with
        | m :: idxs ->
            check_use s o m;
            check_indices o m idxs;
            s
        | [] -> s)
    | "memref.store" -> (
        match o.Ir.operands with
        | _ :: m :: idxs ->
            check_use s o m;
            check_indices o m idxs;
            s
        | _ -> s)
    | _ ->
        (* any other op consuming a freed buffer is a use after free; any
           memref it produces is a fresh live buffer *)
        List.iter
          (fun (v : Ir.value) -> if is_memref v then check_use s o v)
          o.Ir.operands;
        alive_results s o
  in
  let enter_block s _o (b : Ir.block) =
    List.fold_left
      (fun s (v : Ir.value) ->
        if is_memref v then M.add v.Ir.vid BufState.Alive s else s)
      s b.Ir.bargs
  in
  let init =
    List.fold_left
      (fun s (v : Ir.value) ->
        if is_memref v then M.add v.Ir.vid BufState.Alive s else s)
      M.bottom f.Ir.fargs
  in
  let final =
    E.forward (E.hooks ~enter_block transfer) init f.Ir.fbody
  in
  (* local allocations still definitely alive at exit, with no escaping
     use: leaked *)
  List.iter
    (fun (vid, (o : Ir.op)) ->
      if M.find vid final = BufState.Alive && not (IntSet.mem vid escaping)
      then report o (Ir.result o) Leak)
    (List.rev !allocs);
  List.rev !issues
