(** Backward liveness over SSA value ids, plus dead-op detection. *)

open Everest_ir

(** Value ids live on entry to the function.  For a well-formed function
    this is a subset of the formal-argument ids. *)
val live_in : Ir.func -> Lattice.IntSet.t

(** Every value id used as an operand anywhere in the function. *)
val used : Ir.func -> Lattice.IntSet.t

(** Pure region-free ops all of whose results are (transitively) unused —
    exactly the ops DCE would delete — in program order. *)
val dead_ops : Ir.func -> Ir.op list
