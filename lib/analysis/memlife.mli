(** Memref lifetime checking: use-after-dealloc, double-dealloc, leaked
    allocations, and constant out-of-bounds indices against static
    shapes.  Findings on paths that only may free a buffer are reported
    with [definite = false]. *)

open Everest_ir

type kind =
  | Use_after_free of { definite : bool }
  | Double_free of { definite : bool }
  | Leak
  | Out_of_bounds of { index : int; axis : int; dim : int }

type issue = { i_op : Ir.op; i_vid : int; kind : kind }

val analyze : Ir.func -> issue list
