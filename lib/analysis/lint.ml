(* Lint: diagnostic rules over IR modules.

   Every rule has a stable EV0xx code, a default severity and a check
   over the whole module; diagnostics share their shape with Verify.diag
   (function, op, message, Loc span) plus the code and severity.  The
   registry is extensible — register () replaces by code — and runs are
   deterministic: rules execute in code order and each rule reports in
   program order.

   Rule catalog:
     EV001 structural verification (Verify) ............ error
     EV010 dead pure op ................................ warning
     EV011 unused function ............................. warning
     EV012 unreachable function ........................ warning
     EV013 constant-foldable arith op .................. info
     EV020 definition does not dominate use ............ error
     EV030 use after dealloc ........................... error (possible: warning)
     EV031 double dealloc .............................. error (possible: warning)
     EV032 leaked allocation ........................... warning
     EV033 constant index out of bounds ................ error
     EV040 insecure information flow (Ift) ............. error
     EV041 security/placement clearance conflict ....... error *)

open Everest_ir
module Sec = Dialect_sec
module Ift = Everest_security.Ift

type severity = Error | Warning | Info

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

type diag = {
  code : string;
  severity : severity;
  in_func : string;
  op_name : string;
  message : string;
  loc : Loc.t;
}

let of_verify (d : Verify.diag) =
  { code = "EV001"; severity = Error; in_func = d.Verify.in_func;
    op_name = d.Verify.op_name; message = d.Verify.message;
    loc = d.Verify.loc }

(* Context for cross-layer rules: clearance of named platform nodes, used
   when a locality annotation pins data to "node:NAME". *)
type ctx = { node_clearance : string -> Sec.level option }

let default_ctx = { node_clearance = (fun _ -> None) }

(* Clearance implied by a locality string, mirroring the platform tiers:
   cloud nodes are trusted up to Confidential, the (inner) edge up to
   Internal, endpoints/sensors only with Public data.  "node:NAME" defers
   to the context; unknown localities are skipped. *)
let clearance_of_locality ctx s =
  let has_prefix p =
    String.length s >= String.length p && String.sub s 0 (String.length p) = p
  in
  if has_prefix "node:" then
    ctx.node_clearance (String.sub s 5 (String.length s - 5))
  else if has_prefix "cloud" then Some Sec.Confidential
  else if has_prefix "edge" || has_prefix "inner-edge" || has_prefix "fog" then
    Some Sec.Internal
  else if has_prefix "endpoint" || has_prefix "sensor" || has_prefix "device"
  then Some Sec.Public
  else None

type rule = {
  rule_code : string;
  rule_name : string;
  rule_severity : severity;
  rule_doc : string;
  rule_check : ctx -> Ir.modul -> diag list;
}

let mk (r : rule) ?severity ~in_func ~op_name ~loc message =
  { code = r.rule_code;
    severity = Option.value ~default:r.rule_severity severity;
    in_func; op_name; message; loc }

let op_diag r ?severity ~in_func (o : Ir.op) message =
  mk r ?severity ~in_func ~op_name:o.Ir.name ~loc:o.Ir.loc message

let per_func m f = List.concat_map (fun (fn : Ir.func) -> f fn) m.Ir.funcs

(* ---- the builtin rules ----------------------------------------------- *)

let rec r_verify =
  { rule_code = "EV001"; rule_name = "verify"; rule_severity = Error;
    rule_doc = "structural verification (SSA form, dialect invariants, \
                call-graph integrity)";
    rule_check = (fun _ m -> List.map of_verify (Verify.verify_module m)) }

and r_dead_op =
  { rule_code = "EV010"; rule_name = "dead-op"; rule_severity = Warning;
    rule_doc = "pure op whose results are never used";
    rule_check =
      (fun _ m ->
        per_func m (fun f ->
            List.map
              (fun (o : Ir.op) ->
                op_diag r_dead_op ~in_func:f.Ir.fname o
                  (Fmt.str "results of this pure op are never used (%s)"
                     (String.concat ", "
                        (List.map
                           (fun (v : Ir.value) -> Fmt.str "%%%d" v.Ir.vid)
                           o.Ir.results))))
              (Liveness.dead_ops f))) }

and r_unused_func =
  { rule_code = "EV011"; rule_name = "unused-function"; rule_severity = Warning;
    rule_doc = "function never referenced by any call, offload or task";
    rule_check =
      (fun _ m ->
        List.map
          (fun (f : Ir.func) ->
            mk r_unused_func ~in_func:f.Ir.fname ~op_name:"func"
              ~loc:(Loc.name ("@" ^ f.Ir.fname))
              "function is never referenced")
          (Callgraph.unused m)) }

and r_unreachable_func =
  { rule_code = "EV012"; rule_name = "unreachable-function";
    rule_severity = Warning;
    rule_doc = "function referenced only from code unreachable from any root";
    rule_check =
      (fun _ m ->
        List.map
          (fun (f : Ir.func) ->
            mk r_unreachable_func ~in_func:f.Ir.fname ~op_name:"func"
              ~loc:(Loc.name ("@" ^ f.Ir.fname))
              "function is unreachable from main / entry points")
          (Callgraph.unreachable m)) }

and r_foldable =
  { rule_code = "EV013"; rule_name = "constant-foldable";
    rule_severity = Info;
    rule_doc = "pure arith op whose result is a compile-time constant";
    rule_check =
      (fun _ m ->
        per_func m (fun f ->
            List.map
              (fun ((o : Ir.op), c) ->
                op_diag r_foldable ~in_func:f.Ir.fname o
                  (Fmt.str "always evaluates to %a" Constprop.pp_const c))
              (Constprop.foldable f))) }

and r_dominance =
  { rule_code = "EV020"; rule_name = "undominated-use"; rule_severity = Error;
    rule_doc = "use of a value whose definition does not dominate it";
    rule_check =
      (fun _ m ->
        per_func m (fun f ->
            List.map
              (fun (u : Reaching.undominated) ->
                op_diag r_dominance ~in_func:f.Ir.fname u.Reaching.u_op
                  (Fmt.str
                     "operand %%%d is not defined on every path to this use"
                     u.Reaching.u_vid))
              (Reaching.undominated_uses f))) }

and r_memlife =
  { rule_code = "EV030"; rule_name = "memref-lifetime"; rule_severity = Error;
    rule_doc = "memref lifetime family: EV030 use-after-dealloc, EV031 \
                double-dealloc, EV032 leaked alloc, EV033 constant index \
                out of bounds";
    rule_check =
      (fun _ m ->
        per_func m (fun f ->
            List.map
              (fun (i : Memlife.issue) ->
                let base ?severity code message =
                  { (op_diag r_memlife ?severity ~in_func:f.Ir.fname i.Memlife.i_op
                       message)
                    with code }
                in
                match i.Memlife.kind with
                | Memlife.Use_after_free { definite = true } ->
                    base "EV030"
                      (Fmt.str "use of %%%d after dealloc" i.Memlife.i_vid)
                | Memlife.Use_after_free { definite = false } ->
                    base ~severity:Warning "EV030"
                      (Fmt.str "possible use of %%%d after dealloc"
                         i.Memlife.i_vid)
                | Memlife.Double_free { definite = true } ->
                    base "EV031"
                      (Fmt.str "double dealloc of %%%d" i.Memlife.i_vid)
                | Memlife.Double_free { definite = false } ->
                    base ~severity:Warning "EV031"
                      (Fmt.str "possible double dealloc of %%%d"
                         i.Memlife.i_vid)
                | Memlife.Leak ->
                    base ~severity:Warning "EV032"
                      (Fmt.str "allocation %%%d is never deallocated"
                         i.Memlife.i_vid)
                | Memlife.Out_of_bounds { index; axis; dim } ->
                    base "EV033"
                      (Fmt.str
                         "index %d on axis %d is out of bounds for dimension \
                          %d of %%%d"
                         index axis dim i.Memlife.i_vid))
              (Memlife.analyze f))) }

and r_insecure_flow =
  { rule_code = "EV040"; rule_name = "insecure-flow"; rule_severity = Error;
    rule_doc = "information-flow violation (Ift): classified data reaches a \
                sink with lower clearance";
    rule_check =
      (fun _ m ->
        List.map
          (fun (fname, (v : Ift.flow_violation)) ->
            { code = "EV040"; severity = Error; in_func = fname;
              op_name = v.Ift.op_name;
              message =
                Fmt.str "%s data reaches %s sink (%s)"
                  (Sec.level_name v.Ift.source_level)
                  (Sec.level_name v.Ift.sink_level)
                  v.Ift.detail;
              loc = v.Ift.vloc })
          (Ift.analyze_module m)) }

and r_clearance =
  { rule_code = "EV041"; rule_name = "clearance-conflict";
    rule_severity = Error;
    rule_doc = "Annot.Security vs. locality/placement: classified data \
                pinned to a node whose tier clearance is lower";
    rule_check =
      (fun ctx m ->
        let check_pair ~in_func ~op_name ~loc attrs =
          match
            ( Option.bind (Attr.find_str "everest.security" attrs)
                Sec.level_of_name,
              Attr.find_str "everest.locality" attrs )
          with
          | Some level, Some locality -> (
              match clearance_of_locality ctx locality with
              | Some clearance when not (Sec.level_leq level clearance) ->
                  [ { code = "EV041"; severity = Error; in_func; op_name;
                      message =
                        Fmt.str
                          "%s data is placed at %S whose clearance is only %s"
                          (Sec.level_name level) locality
                          (Sec.level_name clearance);
                      loc } ]
              | _ -> [])
          | _ -> []
        in
        per_func m (fun f ->
            check_pair ~in_func:f.Ir.fname ~op_name:"func"
              ~loc:(Loc.name ("@" ^ f.Ir.fname))
              f.Ir.fattrs
            @ Ir.fold_ops
                (fun acc (o : Ir.op) ->
                  match o.Ir.name with
                  | "df.task" | "df.source" ->
                      acc
                      @ check_pair ~in_func:f.Ir.fname ~op_name:o.Ir.name
                          ~loc:o.Ir.loc o.Ir.attrs
                  | _ -> acc)
                [] f.Ir.fbody)) }

let builtin_rules =
  [ r_verify; r_dead_op; r_unused_func; r_unreachable_func; r_foldable;
    r_dominance; r_memlife; r_insecure_flow; r_clearance ]

(* ---- registry ---------------------------------------------------------- *)

let registry : (string, rule) Hashtbl.t = Hashtbl.create 16
let register r = Hashtbl.replace registry r.rule_code r
let () = List.iter register builtin_rules

let all_rules () =
  Hashtbl.fold (fun _ r acc -> r :: acc) registry []
  |> List.sort (fun a b -> compare a.rule_code b.rule_code)

let find_rule code = Hashtbl.find_opt registry code

(* ---- running ----------------------------------------------------------- *)

let run ?(ctx = default_ctx) ?only (m : Ir.modul) : diag list =
  let rules =
    match only with
    | None -> all_rules ()
    | Some codes ->
        List.filter
          (fun r ->
            List.exists
              (fun c -> String.equal c r.rule_code || String.equal c r.rule_name)
              codes)
          (all_rules ())
  in
  List.concat_map (fun r -> r.rule_check ctx m) rules

let errors ds = List.filter (fun d -> d.severity = Error) ds
let warnings ds = List.filter (fun d -> d.severity = Warning) ds
let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let promote_warnings ds =
  List.map
    (fun d -> if d.severity = Warning then { d with severity = Error } else d)
    ds

(* ---- rendering --------------------------------------------------------- *)

let pp_diag ppf d =
  Fmt.pf ppf "%s[%s] [%s] %s: %s" (severity_name d.severity) d.code d.in_func
    d.op_name d.message;
  match d.loc with
  | Loc.Unknown -> ()
  | l -> Fmt.pf ppf " (%a)" Loc.pp l

let render_text ds =
  let lines = List.map (Fmt.str "%a" pp_diag) ds in
  let summary =
    Fmt.str "%d error(s), %d warning(s), %d info(s)"
      (List.length (errors ds))
      (List.length (warnings ds))
      (List.length (List.filter (fun d -> d.severity = Info) ds))
  in
  String.concat "\n" (lines @ [ summary ])

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render_json ds =
  let diag d =
    Printf.sprintf
      "    {\"code\": \"%s\", \"severity\": \"%s\", \"func\": \"%s\", \
       \"op\": \"%s\", \"message\": \"%s\", \"loc\": \"%s\"}"
      (json_escape d.code)
      (severity_name d.severity)
      (json_escape d.in_func) (json_escape d.op_name) (json_escape d.message)
      (json_escape (Loc.to_string d.loc))
  in
  Printf.sprintf
    "{\n  \"diagnostics\": [\n%s\n  ],\n  \"errors\": %d,\n  \"warnings\": \
     %d\n}\n"
    (String.concat ",\n" (List.map diag ds))
    (List.length (errors ds))
    (List.length (warnings ds))
