(* Sparse conditional constant propagation over the structured IR.

   State is a map from value id to a flat constant lattice.  The analysis
   is "conditional": when the condition of an [scf.if] is a known constant
   only the taken region is walked (via the engine's [branch_filter]) and
   only its yield contributes to the op results; [scf.for] iteration
   arguments are joined with the facts of the body yield, so loop-carried
   constants survive and varying ones go to Top within two engine
   iterations.

   Folding mirrors [Interp] exactly (division by zero stays Top, [shri]
   is a logical shift), which is what the QCheck agreement property in
   test_analysis.ml checks. *)

open Everest_ir

type const = CInt of int | CFloat of float

let const_equal a b =
  match (a, b) with
  | CInt x, CInt y -> x = y
  | CFloat x, CFloat y -> Float.equal x y
  | _ -> false

let pp_const ppf = function
  | CInt i -> Fmt.int ppf i
  | CFloat f -> Fmt.float ppf f

module FlatC = Lattice.Flat (struct
  type t = const

  let equal = const_equal
  let pp = pp_const
end)

(* Engine state is a version stamp over one shared mutable fact table:
   the table only ever moves up the flat lattice (SSA values have a
   single defining op, and [record] joins), so "no stamp change across a
   body re-walk" is exactly the loop-fixpoint criterion.  This keeps a
   loop iteration O(body) instead of O(function) — joining whole
   persistent maps per loop made large functions quadratic. *)
module Stamp = struct
  type t = int

  let bottom = 0
  let equal = Int.equal
  let join = Int.max
  let pp = Fmt.int
end

module E = Dataflow.Make (Stamp)

let int_fold name a b =
  match name with
  | "arith.addi" -> Some (a + b)
  | "arith.subi" -> Some (a - b)
  | "arith.muli" -> Some (a * b)
  | "arith.divi" -> if b = 0 then None else Some (a / b)
  | "arith.remi" -> if b = 0 then None else Some (a mod b)
  | "arith.andi" -> Some (a land b)
  | "arith.ori" -> Some (a lor b)
  | "arith.xori" -> Some (a lxor b)
  | "arith.shli" -> Some (a lsl b)
  | "arith.shri" -> Some (a lsr b)
  | _ -> None

let float_fold name a b =
  match name with
  | "arith.addf" -> Some (a +. b)
  | "arith.subf" -> Some (a -. b)
  | "arith.mulf" -> Some (a *. b)
  | "arith.divf" -> Some (a /. b)
  | "arith.maxf" -> Some (Float.max a b)
  | "arith.minf" -> Some (Float.min a b)
  | _ -> None

let float_unary_fold name a =
  match name with
  | "arith.negf" -> Some (-.a)
  | "arith.sqrtf" -> Some (sqrt a)
  | "arith.expf" -> Some (exp a)
  | _ -> None

let cmp_fold (pred : Dialect_arith.cmp_pred) c =
  match pred with
  | Dialect_arith.Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let is_int_binop n = List.mem n Dialect_arith.int_binops
let is_float_binop n = List.mem n Dialect_arith.float_binops

(* Result of the analysis: final fact per value id (join over every
   binding the walk produced, so loop re-walks stay monotone). *)
type result = { facts : (int, FlatC.t) Hashtbl.t }

(* Public view of the internal flat lattice. *)
type fact = Unknown | Known of const | Varying

let to_fact = function
  | FlatC.Bot -> Unknown
  | FlatC.Const c -> Known c
  | FlatC.Top -> Varying

let fact_vid (r : result) vid =
  to_fact (Option.value ~default:FlatC.Bot (Hashtbl.find_opt r.facts vid))

let fact (r : result) (v : Ir.value) = fact_vid r v.Ir.vid

(* Terminator operands of each region of [o] ("scf.yield" by convention);
   [None] for regions without one. *)
let region_yields (o : Ir.op) : Ir.value list option list =
  List.map
    (fun (r : Ir.region) ->
      match List.rev r with
      | (b : Ir.block) :: _ -> (
          match List.rev b.Ir.body with
          | (t : Ir.op) :: _ when String.equal t.Ir.name "scf.yield" ->
              Some t.Ir.operands
          | _ -> None)
      | [] -> None)
    o.Ir.regions

(* Feasible regions of a branch op given the current facts. *)
let feasible_of lookup (o : Ir.op) =
  match (o.Ir.name, o.Ir.operands) with
  | "scf.if", (cond : Ir.value) :: _ -> (
      let n = List.length o.Ir.regions in
      let all = List.init n Fun.id in
      match lookup cond.Ir.vid with
      | FlatC.Const (CInt 0) -> if n > 1 then [ 1 ] else []
      | FlatC.Const (CInt _) -> [ 0 ]
      | _ -> all)
  | _ -> List.init (List.length o.Ir.regions) Fun.id

let analyze (f : Ir.func) : result =
  let facts = Hashtbl.create 64 in
  let stamp = ref 0 in
  let lookup vid =
    Option.value ~default:FlatC.Bot (Hashtbl.find_opt facts vid)
  in
  let record vid fact =
    let old = lookup vid in
    let joined = FlatC.join old fact in
    if not (FlatC.equal joined old) then begin
      Hashtbl.replace facts vid joined;
      incr stamp
    end
  in
  let set s (v : Ir.value) fact =
    record v.Ir.vid fact;
    Stamp.join s !stamp
  in
  let set_all s vs fact = List.fold_left (fun s v -> set s v fact) s vs in
  let get _s (v : Ir.value) = lookup v.Ir.vid in
  let feasible _s o = feasible_of lookup o in
  let binary fold wrap s (o : Ir.op) =
    match o.Ir.operands with
    | [ a; b ] -> (
        match (get s a, get s b) with
        | FlatC.Const x, FlatC.Const y -> (
            match fold x y with
            | Some r -> set s (Ir.result o) (FlatC.const (wrap r))
            | None -> set s (Ir.result o) FlatC.top)
        | FlatC.Bot, _ | _, FlatC.Bot -> set s (Ir.result o) FlatC.Bot
        | _ -> set s (Ir.result o) FlatC.top)
    | _ -> set_all s o.Ir.results FlatC.top
  in
  let transfer s (o : Ir.op) =
    match o.Ir.name with
    | "arith.constant" -> (
        match Ir.attr "value" o with
        | Some (Attr.Int i) -> set s (Ir.result o) (FlatC.const (CInt i))
        | Some (Attr.Float v) -> set s (Ir.result o) (FlatC.const (CFloat v))
        | Some (Attr.Bool b) ->
            set s (Ir.result o) (FlatC.const (CInt (if b then 1 else 0)))
        | _ -> set s (Ir.result o) FlatC.top)
    | n when is_int_binop n ->
        binary
          (fun x y ->
            match (x, y) with
            | CInt a, CInt b -> Option.map (fun r -> CInt r) (int_fold n a b)
            | _ -> None)
          Fun.id s o
    | n when is_float_binop n ->
        binary
          (fun x y ->
            match (x, y) with
            | CFloat a, CFloat b ->
                Option.map (fun r -> CFloat r) (float_fold n a b)
            | _ -> None)
          Fun.id s o
    | "arith.negf" | "arith.sqrtf" | "arith.expf" -> (
        match o.Ir.operands with
        | [ a ] -> (
            match get s a with
            | FlatC.Const (CFloat x) -> (
                match float_unary_fold o.Ir.name x with
                | Some r -> set s (Ir.result o) (FlatC.const (CFloat r))
                | None -> set s (Ir.result o) FlatC.top)
            | FlatC.Bot -> set s (Ir.result o) FlatC.Bot
            | _ -> set s (Ir.result o) FlatC.top)
        | _ -> set_all s o.Ir.results FlatC.top)
    | "arith.cmpi" | "arith.cmpf" -> (
        let pred =
          Option.bind (Ir.attr_str "predicate" o) Dialect_arith.cmp_pred_of_name
        in
        match (pred, o.Ir.operands) with
        | Some pred, [ a; b ] -> (
            match (get s a, get s b) with
            | FlatC.Const x, FlatC.Const y ->
                let c =
                  match (x, y) with
                  | CInt u, CInt v -> Some (compare u v)
                  | CFloat u, CFloat v -> Some (compare u v)
                  | _ -> None
                in
                (match c with
                | Some c ->
                    set s (Ir.result o)
                      (FlatC.const (CInt (if cmp_fold pred c then 1 else 0)))
                | None -> set s (Ir.result o) FlatC.top)
            | _ -> set s (Ir.result o) FlatC.top)
        | _ -> set_all s o.Ir.results FlatC.top)
    | "arith.select" -> (
        match o.Ir.operands with
        | [ c; a; b ] -> (
            match get s c with
            | FlatC.Const (CInt 0) -> set s (Ir.result o) (get s b)
            | FlatC.Const (CInt _) -> set s (Ir.result o) (get s a)
            | _ -> set s (Ir.result o) (FlatC.join (get s a) (get s b)))
        | _ -> set_all s o.Ir.results FlatC.top)
    | "scf.if" | "scf.for" -> (
        (* results come from the yields of the feasible regions *)
        let taken = feasible s o in
        let yields =
          List.concat
            (List.mapi
               (fun i y -> if List.mem i taken then [ y ] else [])
               (region_yields o))
        in
        let n = List.length o.Ir.results in
        let joined =
          List.fold_left
            (fun acc y ->
              match y with
              | Some vs when List.length vs = n ->
                  List.map2 (fun a v -> FlatC.join a (get s v)) acc vs
              | _ -> List.map (fun _ -> FlatC.top) acc)
            (List.map (fun _ -> FlatC.Bot) o.Ir.results)
            yields
        in
        match o.Ir.results with
        | [] -> s
        | rs -> List.fold_left2 set s rs joined)
    | _ -> set_all s o.Ir.results FlatC.top
  in
  let enter_block s (o : Ir.op) (b : Ir.block) =
    match (o.Ir.name, b.Ir.bargs) with
    | "scf.for", iv :: iters ->
        (* operands: lo :: hi :: step :: inits; the body yield feeds the
           iter args on later iterations (its facts accumulate in s). *)
        let inits =
          match o.Ir.operands with _ :: _ :: _ :: inits -> inits | _ -> []
        in
        let yield =
          match region_yields o with [ Some vs ] -> Some vs | _ -> None
        in
        let s = set s iv FlatC.top in
        List.fold_left
          (fun s (i, iter) ->
            let from_init =
              match List.nth_opt inits i with
              | Some v -> get s v
              | None -> FlatC.top
            in
            let from_yield =
              match yield with
              | Some vs -> (
                  match List.nth_opt vs i with
                  | Some v -> get s v
                  | None -> FlatC.top)
              | None -> FlatC.top
            in
            set s iter (FlatC.join from_init from_yield))
          s
          (List.mapi (fun i v -> (i, v)) iters)
    | _ ->
        (* unknown block arguments are Top *)
        List.fold_left (fun s v -> set s v FlatC.top) s b.Ir.bargs
  in
  let branch_filter s o =
    match o.Ir.name with "scf.if" -> Some (feasible s o) | _ -> None
  in
  let hooks = E.hooks ~enter_block ~branch_filter transfer in
  List.iter (fun (v : Ir.value) -> record v.Ir.vid FlatC.top) f.Ir.fargs;
  ignore (E.forward hooks !stamp f.Ir.fbody);
  { facts }

(* Pure arith ops (other than arith.constant itself) whose single result
   is a known constant: candidates for folding. *)
let foldable (f : Ir.func) : (Ir.op * const) list =
  let r = analyze f in
  let out = ref [] in
  Ir.iter_ops
    (fun (o : Ir.op) ->
      if
        String.length o.Ir.name > 6
        && String.sub o.Ir.name 0 6 = "arith."
        && (not (String.equal o.Ir.name "arith.constant"))
        && Dialect.is_pure o
      then
        match o.Ir.results with
        | [ res ] -> (
            match fact_vid r res.Ir.vid with
            | Known c -> out := (o, c) :: !out
            | _ -> ())
        | _ -> ())
    f.Ir.fbody;
  List.rev !out
