(** Lattices for the monotone dataflow framework.

    An analysis instantiates {!Dataflow.Make} with a join-semilattice:
    [bottom] is the identity of [join] and transfer functions must be
    monotone, so fixpoint iteration terminates on lattices of finite
    height.  Must-analyses ("holds on every path") use dual lattices whose
    [join] is intersection. *)

module type LATTICE = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
  val pp : Format.formatter -> t -> unit
end

module IntSet : Set.S with type elt = int
module IntMap : Map.S with type key = int

(** Flat (constant-propagation) lattice: [Bot < Const x < Top]. *)
module Flat (X : sig
  type t

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end) : sig
  type elt = X.t
  type t = Bot | Const of elt | Top

  include LATTICE with type t := t

  val top : t
  val const : elt -> t
end

(** May-powerset over value ids; [join] is union. *)
module Int_set : LATTICE with type t = IntSet.t

(** Must-powerset (the dual of {!Int_set}): [All] is bottom and [join] is
    intersection, so a forward fixpoint computes "definitely holds on
    every path". *)
module Int_set_must : sig
  type t = All | Only of IntSet.t

  include LATTICE with type t := t

  val of_set : IntSet.t -> t
  val mem : int -> t -> bool
  val add : int -> t -> t
end

(** Pointwise lift of [L] to maps keyed by value id; absent keys are
    [L.bottom]. *)
module Int_map (L : LATTICE) : sig
  type t = L.t IntMap.t

  include LATTICE with type t := t

  val find : int -> t -> L.t
  val add : int -> L.t -> t -> t
end
