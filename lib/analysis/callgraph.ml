(* Call graph over module functions.

   Edges come from every symbol reference an op can carry: [func.call]
   @callee, [hw.offload] @kernel and [df.task] @kernel.  Roots are [main]
   plus any function carrying an [everest.entry] attribute; when a module
   has no root at all (a kernel library), reachability-based rules are
   skipped rather than flagging everything. *)

open Everest_ir
module SSet = Set.Make (String)

type reference = { ref_from : string; ref_op : Ir.op; ref_to : string }

let op_callee (o : Ir.op) =
  match o.Ir.name with
  | "func.call" -> Ir.attr_sym "callee" o
  | "hw.offload" | "df.task" -> Ir.attr_sym "kernel" o
  | _ -> None

let references (m : Ir.modul) : reference list =
  let out = ref [] in
  List.iter
    (fun (f : Ir.func) ->
      Ir.iter_ops
        (fun o ->
          match op_callee o with
          | Some callee ->
              out := { ref_from = f.Ir.fname; ref_op = o; ref_to = callee } :: !out
          | None -> ())
        f.Ir.fbody)
    m.Ir.funcs;
  List.rev !out

let roots (m : Ir.modul) : string list =
  List.filter_map
    (fun (f : Ir.func) ->
      if
        String.equal f.Ir.fname "main"
        || Option.is_some (Attr.find "everest.entry" f.Ir.fattrs)
      then Some f.Ir.fname
      else None)
    m.Ir.funcs

let reachable (m : Ir.modul) ~(roots : string list) : SSet.t =
  let refs = references m in
  let rec go seen frontier =
    match frontier with
    | [] -> seen
    | name :: rest ->
        if SSet.mem name seen then go seen rest
        else
          let seen = SSet.add name seen in
          let next =
            List.filter_map
              (fun r ->
                if String.equal r.ref_from name then Some r.ref_to else None)
              refs
          in
          go seen (next @ rest)
  in
  go SSet.empty roots

(* Functions that are not roots and have no reference to them at all. *)
let unused (m : Ir.modul) : Ir.func list =
  match roots m with
  | [] -> []
  | rs ->
      let root_set = SSet.of_list rs in
      let referenced =
        List.fold_left
          (fun s r -> SSet.add r.ref_to s)
          SSet.empty (references m)
      in
      List.filter
        (fun (f : Ir.func) ->
          (not (SSet.mem f.Ir.fname root_set))
          && not (SSet.mem f.Ir.fname referenced))
        m.Ir.funcs

(* Functions that are referenced somewhere yet cannot be reached from any
   root (their only callers are themselves dead). *)
let unreachable (m : Ir.modul) : Ir.func list =
  match roots m with
  | [] -> []
  | rs ->
      let live = reachable m ~roots:rs in
      let referenced =
        List.fold_left
          (fun s r -> SSet.add r.ref_to s)
          SSet.empty (references m)
      in
      List.filter
        (fun (f : Ir.func) ->
          (not (SSet.mem f.Ir.fname live)) && SSet.mem f.Ir.fname referenced)
        m.Ir.funcs
