(* Reaching definitions and the dominance-of-definition check.

   Two instantiations of the same forward walk:

   - [may_defs]: union-join powerset — a definition reaches if it reaches
     along some path;
   - [analyze]: the dual (intersection-join) lattice — a value is
     "definitely defined" only if every feasible path defines it.  A use
     whose operand is not definitely defined means the definition does not
     dominate the use (e.g. a value defined in one branch of an [scf.if]
     and consumed after it). *)

open Everest_ir
module IntSet = Lattice.IntSet
module Must = Lattice.Int_set_must
module MustE = Dataflow.Make (Lattice.Int_set_must)
module MayE = Dataflow.Make (Lattice.Int_set)

type undominated = { u_op : Ir.op; u_vid : int }

let arg_set (f : Ir.func) =
  List.fold_left
    (fun s (v : Ir.value) -> IntSet.add v.Ir.vid s)
    IntSet.empty f.Ir.fargs

(* Definitely-defined set at function exit, plus every use whose
   definition does not dominate it (deduplicated, program order). *)
let analyze (f : Ir.func) : Must.t * undominated list =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let transfer s (o : Ir.op) =
    List.iter
      (fun (v : Ir.value) ->
        if not (Must.mem v.Ir.vid s) then begin
          let key = (o.Ir.name, v.Ir.vid) in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            out := { u_op = o; u_vid = v.Ir.vid } :: !out
          end
        end)
      o.Ir.operands;
    List.fold_left (fun s (r : Ir.value) -> Must.add r.Ir.vid s) s o.Ir.results
  in
  let enter_block s _o (b : Ir.block) =
    List.fold_left (fun s (v : Ir.value) -> Must.add v.Ir.vid s) s b.Ir.bargs
  in
  let hooks = MustE.hooks ~enter_block transfer in
  let final = MustE.forward hooks (Must.of_set (arg_set f)) f.Ir.fbody in
  (final, List.rev !out)

(* Fast path for the lint gate.  In this structured SSA IR dominance is
   syntactic scoping: a definition dominates a use iff it appears earlier
   in the same block or in an enclosing one.  Straight regions (df.graph,
   hw.kernel bodies) run exactly once, so their definitions behave like
   the enclosing block's; Loop and Branch region definitions go out of
   scope when the op ends — exactly the intersection-join of [analyze].
   A single walk with a scoped symbol table therefore yields the same
   offending-use list in O(ops), where the must engine re-joins the whole
   (growing) set at every loop and turns large functions quadratic. *)
let undominated_uses (f : Ir.func) : undominated list =
  let defined = Hashtbl.create 64 in
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let define scope (v : Ir.value) =
    Hashtbl.replace defined v.Ir.vid ();
    match scope with Some l -> l := v.Ir.vid :: !l | None -> ()
  in
  let check (o : Ir.op) =
    List.iter
      (fun (v : Ir.value) ->
        if not (Hashtbl.mem defined v.Ir.vid) then begin
          let key = (o.Ir.name, v.Ir.vid) in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            out := { u_op = o; u_vid = v.Ir.vid } :: !out
          end
        end)
      o.Ir.operands
  in
  let rec walk_op scope (o : Ir.op) =
    check o;
    (match (Dataflow.region_kind o, o.Ir.regions) with
    | _, [] -> ()
    | Dataflow.Straight, regions -> List.iter (walk_region scope) regions
    | _, regions ->
        (* each region is its own scope: an scf.if arm must not see the
           other arm's definitions, and nothing escapes the op *)
        List.iter
          (fun r ->
            let inner = ref [] in
            walk_region (Some inner) r;
            List.iter (Hashtbl.remove defined) !inner)
          regions);
    List.iter (define scope) o.Ir.results
  and walk_region scope r = List.iter (walk_block scope) r
  and walk_block scope (b : Ir.block) =
    List.iter (define scope) b.Ir.bargs;
    List.iter (walk_op scope) b.Ir.body
  in
  List.iter (define None) f.Ir.fargs;
  List.iter (walk_op None) f.Ir.fbody;
  List.rev !out

(* Union-join variant: ids defined along at least one path to the exit. *)
let may_defs (f : Ir.func) : IntSet.t =
  let transfer s (o : Ir.op) =
    List.fold_left
      (fun s (r : Ir.value) -> IntSet.add r.Ir.vid s)
      s o.Ir.results
  in
  let enter_block s _o (b : Ir.block) =
    List.fold_left (fun s (v : Ir.value) -> IntSet.add v.Ir.vid s) s b.Ir.bargs
  in
  MayE.forward (MayE.hooks ~enter_block transfer) (arg_set f) f.Ir.fbody
