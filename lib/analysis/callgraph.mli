(** Call graph over module functions.

    Edges come from [func.call] @callee, [hw.offload] @kernel and
    [df.task] @kernel references.  Roots are [main] plus functions with an
    [everest.entry] attribute; modules with no root (kernel libraries)
    skip reachability-based classification. *)

open Everest_ir
module SSet : Set.S with type elt = string

type reference = { ref_from : string; ref_op : Ir.op; ref_to : string }

(** Symbol an op references, if any. *)
val op_callee : Ir.op -> string option

val references : Ir.modul -> reference list
val roots : Ir.modul -> string list
val reachable : Ir.modul -> roots:string list -> SSet.t

(** Non-root functions with no reference to them at all. *)
val unused : Ir.modul -> Ir.func list

(** Referenced functions that are still unreachable from every root. *)
val unreachable : Ir.modul -> Ir.func list
