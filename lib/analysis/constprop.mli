(** Sparse conditional constant propagation over the structured IR.

    When the condition of an [scf.if] is a known constant only the taken
    region is analyzed and only its yield feeds the op results;
    [scf.for] iteration arguments join the facts of the body yield, so
    loop-invariant constants survive the loop.  Folding mirrors
    {!Everest_ir.Interp} exactly (division by zero stays varying,
    [arith.shri] is a logical shift). *)

open Everest_ir

type const = CInt of int | CFloat of float

val const_equal : const -> const -> bool
val pp_const : Format.formatter -> const -> unit

(** Final fact per value id. *)
type result

(** What the analysis knows about a value: never computed ([Unknown]), a
    single compile-time constant ([Known]), or path/input dependent
    ([Varying]). *)
type fact = Unknown | Known of const | Varying

val analyze : Ir.func -> result
val fact : result -> Ir.value -> fact
val fact_vid : result -> int -> fact

(** Pure [arith.*] ops (other than constants) whose single result is a
    known constant, in program order. *)
val foldable : Ir.func -> (Ir.op * const) list
