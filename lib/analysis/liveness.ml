(* Backward liveness over SSA value ids, plus iterated dead-op detection.

   Liveness runs through the generic engine: the transfer kills results
   and gens operands; block arguments are killed when their block is left
   (in backward order, after its body).  For a well-formed function the
   values live on entry are a subset of the formal arguments — anything
   else is a use of an undefined value. *)

open Everest_ir
module IntSet = Lattice.IntSet
module E = Dataflow.Make (Lattice.Int_set)

let transfer s (o : Ir.op) =
  let s =
    List.fold_left
      (fun s (r : Ir.value) -> IntSet.remove r.Ir.vid s)
      s o.Ir.results
  in
  List.fold_left (fun s (v : Ir.value) -> IntSet.add v.Ir.vid s) s o.Ir.operands

let leave_block s _o (b : Ir.block) =
  List.fold_left (fun s (v : Ir.value) -> IntSet.remove v.Ir.vid s) s b.Ir.bargs

let hooks = E.hooks ~leave_block transfer

(* Values live on entry to [f]. *)
let live_in (f : Ir.func) : IntSet.t = E.backward hooks IntSet.empty f.Ir.fbody

(* Every value id used as an operand anywhere in [f]. *)
let used (f : Ir.func) : IntSet.t =
  Ir.fold_ops
    (fun acc (o : Ir.op) ->
      List.fold_left
        (fun acc (v : Ir.value) -> IntSet.add v.Ir.vid acc)
        acc o.Ir.operands)
    IntSet.empty f.Ir.fbody

(* Iterated dead-op set: pure region-free ops all of whose results are
   unused, including chains that become dead once their consumers are
   condemned (exactly what DCE would delete). *)
let dead_ops (f : Ir.func) : Ir.op list =
  let condemned (dead : IntSet.t) (o : Ir.op) =
    Dialect.is_pure o && o.Ir.regions = [] && o.Ir.results <> []
    && List.for_all (fun (r : Ir.value) -> IntSet.mem r.Ir.vid dead) o.Ir.results
  in
  let rec go dead =
    (* uses, not counting operands of already-condemned ops *)
    let used =
      Ir.fold_ops
        (fun acc (o : Ir.op) ->
          if condemned dead o then acc
          else
            List.fold_left
              (fun acc (v : Ir.value) -> IntSet.add v.Ir.vid acc)
              acc o.Ir.operands)
        IntSet.empty f.Ir.fbody
    in
    let dead' =
      Ir.fold_ops
        (fun acc (o : Ir.op) ->
          if
            Dialect.is_pure o && o.Ir.regions = [] && o.Ir.results <> []
            && List.for_all
                 (fun (r : Ir.value) -> not (IntSet.mem r.Ir.vid used))
                 o.Ir.results
          then
            List.fold_left
              (fun acc (r : Ir.value) -> IntSet.add r.Ir.vid acc)
              acc o.Ir.results
          else acc)
        dead f.Ir.fbody
    in
    if IntSet.equal dead' dead then dead else go dead'
  in
  let dead = go IntSet.empty in
  let out = ref [] in
  Ir.iter_ops
    (fun (o : Ir.op) -> if condemned dead o then out := o :: !out)
    f.Ir.fbody;
  List.rev !out
