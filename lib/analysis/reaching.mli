(** Reaching definitions and the dominance-of-definition check. *)

open Everest_ir

type undominated = { u_op : Ir.op; u_vid : int }

(** Definitely-defined set at function exit (intersection across paths),
    plus every use whose definition does not dominate it. *)
val analyze : Ir.func -> Lattice.Int_set_must.t * undominated list

(** The offending uses of {!analyze}, in program order, computed by a
    single scoped walk (dominance is syntactic in the structured IR) so
    the lint gate stays linear in the number of ops. *)
val undominated_uses : Ir.func -> undominated list

(** Ids defined along at least one path to the exit (union across
    paths); a superset of the definitely-defined set. *)
val may_defs : Ir.func -> Lattice.IntSet.t
