(* Lattices for the monotone dataflow framework.

   Every analysis instantiates the engine with a join-semilattice: [bottom]
   is the identity of [join], and transfer functions must be monotone so
   the fixpoint iteration in [Dataflow] terminates on lattices of finite
   height.  Must-analyses ("holds on every path") are expressed with dual
   lattices whose [join] is set intersection, so the same forward solver
   serves both directions of approximation. *)

module type LATTICE = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
  val pp : Format.formatter -> t -> unit
end

module IntSet = Set.Make (Int)
module IntMap = Map.Make (Int)

(* Flat (constant-propagation style) lattice: Bot < Const x < Top. *)
module Flat (X : sig
  type t

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end) =
struct
  type elt = X.t
  type t = Bot | Const of elt | Top

  let bottom = Bot
  let top = Top
  let const x = Const x

  let equal a b =
    match (a, b) with
    | Bot, Bot | Top, Top -> true
    | Const x, Const y -> X.equal x y
    | _ -> false

  let join a b =
    match (a, b) with
    | Bot, x | x, Bot -> x
    | Top, _ | _, Top -> Top
    | Const x, Const y -> if X.equal x y then a else Top

  let pp ppf = function
    | Bot -> Fmt.string ppf "bot"
    | Const x -> X.pp ppf x
    | Top -> Fmt.string ppf "top"
end

(* May-powerset over value ids: join is union.  Used by liveness and
   may-reaching definitions. *)
module Int_set = struct
  type t = IntSet.t

  let bottom = IntSet.empty
  let equal = IntSet.equal
  let join = IntSet.union

  let pp ppf s =
    Fmt.pf ppf "{%a}"
      Fmt.(list ~sep:(any ",") int)
      (IntSet.elements s)
end

(* Must-powerset: the dual of {!Int_set}.  [All] (the full universe) is
   the bottom element, so [join] is set intersection and a forward
   fixpoint computes "definitely defined on every path" — the basis of the
   dominance-of-definition check. *)
module Int_set_must = struct
  type t = All | Only of IntSet.t

  let bottom = All
  let of_set s = Only s

  let equal a b =
    match (a, b) with
    | All, All -> true
    | Only x, Only y -> IntSet.equal x y
    | _ -> false

  let join a b =
    match (a, b) with
    | All, x | x, All -> x
    | Only x, Only y -> Only (IntSet.inter x y)

  let mem i = function All -> true | Only s -> IntSet.mem i s
  let add i = function All -> All | Only s -> Only (IntSet.add i s)

  let pp ppf = function
    | All -> Fmt.string ppf "all"
    | Only s -> Int_set.pp ppf s
end

(* Pointwise lift of [L] to finite maps keyed by value id; absent keys are
   [L.bottom]. *)
module Int_map (L : LATTICE) = struct
  type t = L.t IntMap.t

  let bottom = IntMap.empty

  let find i m =
    match IntMap.find_opt i m with Some x -> x | None -> L.bottom

  let add = IntMap.add
  let equal = IntMap.equal L.equal
  let join a b = IntMap.union (fun _ x y -> Some (L.join x y)) a b

  let pp ppf m =
    Fmt.pf ppf "{%a}"
      Fmt.(
        list ~sep:(any "; ")
          (pair ~sep:(any "->") int L.pp))
      (IntMap.bindings m)
end
