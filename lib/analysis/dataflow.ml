(* Generic monotone dataflow engine over the structured IR.

   The IR has no CFG edges: control flow is expressed by ops carrying
   regions (scf.for, scf.if, df.graph, ...).  The engine therefore walks
   op chains and interprets each region by kind:

   - [Straight]: the region body runs exactly once (df.graph, hw.kernel);
   - [Loop]: the body may run any number of times (scf.for, scf.parallel,
     scf.while); the engine iterates the body to a fixpoint, joining the
     loop-entry state with each body exit so loop-carried facts stabilise;
   - [Branch]: exactly one region runs (scf.if); exit states of the
     feasible regions are joined, plus the fall-through state when the
     else region is missing.

   Transfer functions receive the whole operation, so clients can record
   per-op facts (diagnostics, value tables) in closures while the engine
   drives iteration order.  [branch_filter] lets a client prune infeasible
   regions — this is what makes the constant propagation in {!Constprop}
   "sparse conditional". *)

open Everest_ir

type region_kind = Straight | Loop | Branch

let region_kind (o : Ir.op) =
  match o.Ir.name with
  | "scf.if" -> Branch
  | "scf.for" | "scf.parallel" | "scf.while" -> Loop
  | _ -> Straight

let default_max_iter = 64

module Make (L : Lattice.LATTICE) = struct
  type hooks = {
    transfer : L.t -> Ir.op -> L.t;
    enter_block : L.t -> Ir.op -> Ir.block -> L.t;
    leave_block : L.t -> Ir.op -> Ir.block -> L.t;
    branch_filter : L.t -> Ir.op -> int list option;
  }

  let hooks ?(enter_block = fun s _ _ -> s) ?(leave_block = fun s _ _ -> s)
      ?(branch_filter = fun _ _ -> None) transfer =
    { transfer; enter_block; leave_block; branch_filter }

  let taken_indices h s o regions =
    match h.branch_filter s o with
    | None -> List.mapi (fun i _ -> i) regions
    | Some l -> l

  (* ---- forward ---------------------------------------------------------- *)

  let rec fwd h max_iter s ops = List.fold_left (fwd_op h max_iter) s ops

  and fwd_region h max_iter s o (r : Ir.region) =
    List.fold_left
      (fun s (b : Ir.block) ->
        let s = h.enter_block s o b in
        let s = fwd h max_iter s b.Ir.body in
        h.leave_block s o b)
      s r

  and fwd_op h max_iter s (o : Ir.op) =
    match o.Ir.regions with
    | [] -> h.transfer s o
    | regions -> (
        match region_kind o with
        | Straight ->
            let s =
              List.fold_left (fun s r -> fwd_region h max_iter s o r) s regions
            in
            h.transfer s o
        | Loop ->
            let rec iterate s n =
              let out =
                List.fold_left
                  (fun acc r -> fwd_region h max_iter acc o r)
                  s regions
              in
              let s' = L.join s out in
              if L.equal s' s || n >= max_iter then s' else iterate s' (n + 1)
            in
            h.transfer (iterate s 0) o
        | Branch ->
            let taken = taken_indices h s o regions in
            let outs =
              List.concat
                (List.mapi
                   (fun i r ->
                     if List.mem i taken then [ fwd_region h max_iter s o r ]
                     else [])
                   regions)
            in
            (* A single-region scf.if may be skipped entirely; likewise when
               every region is pruned the entry state falls through. *)
            let states =
              if List.length regions < 2 || outs = [] then s :: outs else outs
            in
            let joined =
              List.fold_left L.join (List.hd states) (List.tl states)
            in
            h.transfer joined o)

  let forward ?(max_iter = default_max_iter) h init ops = fwd h max_iter init ops

  (* ---- backward --------------------------------------------------------- *)

  (* The op's own transfer is applied to the state flowing in from below
     before its regions are walked: the regions are "inside" the op, so in
     reverse execution order they come after it. *)

  let rec bwd h max_iter s ops =
    List.fold_left (fun s o -> bwd_op h max_iter s o) s (List.rev ops)

  and bwd_region h max_iter s o (r : Ir.region) =
    List.fold_left
      (fun s (b : Ir.block) ->
        let s = h.enter_block s o b in
        let s = bwd h max_iter s b.Ir.body in
        h.leave_block s o b)
      s (List.rev r)

  and bwd_op h max_iter s (o : Ir.op) =
    let s1 = h.transfer s o in
    match o.Ir.regions with
    | [] -> s1
    | regions -> (
        match region_kind o with
        | Straight ->
            List.fold_left
              (fun s r -> bwd_region h max_iter s o r)
              s1 (List.rev regions)
        | Loop ->
            let rec iterate s n =
              let out =
                List.fold_left
                  (fun acc r -> bwd_region h max_iter acc o r)
                  s regions
              in
              let s' = L.join s out in
              if L.equal s' s || n >= max_iter then s' else iterate s' (n + 1)
            in
            iterate s1 0
        | Branch ->
            (* join every region exit with the fall-through state [s1]; a
               pruning filter is rarely useful backwards, so all regions are
               considered. *)
            let outs = List.map (fun r -> bwd_region h max_iter s1 o r) regions in
            List.fold_left L.join s1 outs)

  let backward ?(max_iter = default_max_iter) h init ops =
    bwd h max_iter init ops
end
