(** Lint: diagnostic rules over IR modules.

    Every rule has a stable EV0xx code, a default severity and a check
    over the whole module.  Diagnostics share their shape with
    {!Everest_ir.Verify.diag} (function, op, message, {!Everest_ir.Loc}
    span) plus code and severity.  Runs are deterministic: rules execute
    in code order and report in program order.

    Rule catalog: EV001 structural verify (error), EV010 dead op
    (warning), EV011 unused function (warning), EV012 unreachable
    function (warning), EV013 constant-foldable arith op (info), EV020
    undominated use (error), EV030 use-after-dealloc (error), EV031
    double-dealloc (error), EV032 leaked alloc (warning), EV033 constant
    index out of bounds (error), EV040 insecure information flow (error),
    EV041 security/placement clearance conflict (error). *)

open Everest_ir

type severity = Error | Warning | Info

val severity_name : severity -> string

type diag = {
  code : string;  (** Stable rule code, e.g. ["EV030"]. *)
  severity : severity;
  in_func : string;
  op_name : string;
  message : string;
  loc : Loc.t;
}

(** Bridge a structural-verification diagnostic (code EV001). *)
val of_verify : Verify.diag -> diag

(** Context for cross-layer rules: clearance of named platform nodes
    (consulted for ["node:NAME"] localities). *)
type ctx = { node_clearance : string -> Dialect_sec.level option }

val default_ctx : ctx

(** Clearance implied by a locality string ("cloud*" => Confidential,
    "edge*"/"fog*" => Internal, "endpoint*"/"sensor*"/"device*" =>
    Public, "node:N" => [ctx.node_clearance N]); [None] when unknown. *)
val clearance_of_locality : ctx -> string -> Dialect_sec.level option

type rule = {
  rule_code : string;
  rule_name : string;
  rule_severity : severity;
  rule_doc : string;
  rule_check : ctx -> Ir.modul -> diag list;
}

val builtin_rules : rule list

(** Add or replace a rule (keyed by code). *)
val register : rule -> unit

(** All registered rules, sorted by code. *)
val all_rules : unit -> rule list

val find_rule : string -> rule option

(** Run the registered rules over a module.  [only] restricts the run to
    rules matching the given codes or names; [ctx] defaults to
    {!default_ctx}. *)
val run : ?ctx:ctx -> ?only:string list -> Ir.modul -> diag list

val errors : diag list -> diag list
val warnings : diag list -> diag list
val has_errors : diag list -> bool

(** Promote every warning to an error (infos are untouched) — the [--strict]
    mode of the CLI lint commands, letting CI enforce a warning-free tree. *)
val promote_warnings : diag list -> diag list
val pp_diag : Format.formatter -> diag -> unit

(** Human-readable listing with a trailing summary line. *)
val render_text : diag list -> string

(** JSON object with a [diagnostics] array and error/warning counts. *)
val render_json : diag list -> string
