(** Generic monotone dataflow engine over the structured IR.

    The IR has no CFG edges: control flow is expressed by ops carrying
    regions.  The engine walks op chains and interprets each region by
    kind — [Straight] regions run once, [Loop] regions are iterated to a
    fixpoint (joining entry and exit states), and [Branch] regions have
    their exit states joined.  Transfer functions receive the whole op so
    clients can record per-op facts in closures. *)

open Everest_ir

type region_kind = Straight | Loop | Branch

(** Kind of the regions of an op: [scf.if] branches, [scf.for] /
    [scf.parallel] / [scf.while] loop, everything else runs straight
    through. *)
val region_kind : Ir.op -> region_kind

val default_max_iter : int

module Make (L : Lattice.LATTICE) : sig
  type hooks = {
    transfer : L.t -> Ir.op -> L.t;  (** Per-op state update. *)
    enter_block : L.t -> Ir.op -> Ir.block -> L.t;
        (** Bind block arguments when a region block is entered. *)
    leave_block : L.t -> Ir.op -> Ir.block -> L.t;
        (** Unbind block-local facts when a block is left. *)
    branch_filter : L.t -> Ir.op -> int list option;
        (** Indices of the feasible regions of a [Branch] op ([None] = all);
            used for sparse conditional analyses. *)
  }

  (** Smart constructor: [enter_block]/[leave_block] default to identity,
      [branch_filter] to "all feasible". *)
  val hooks :
    ?enter_block:(L.t -> Ir.op -> Ir.block -> L.t) ->
    ?leave_block:(L.t -> Ir.op -> Ir.block -> L.t) ->
    ?branch_filter:(L.t -> Ir.op -> int list option) ->
    (L.t -> Ir.op -> L.t) ->
    hooks

  (** [forward h init ops] runs the ops in program order; loop regions are
      iterated at most [max_iter] times past the fixpoint check. *)
  val forward : ?max_iter:int -> hooks -> L.t -> Ir.op list -> L.t

  (** [backward h init ops] runs the ops in reverse program order (the op
      transfer fires before its regions are walked). *)
  val backward : ?max_iter:int -> hooks -> L.t -> Ir.op list -> L.t
end
