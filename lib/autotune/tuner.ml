(* The runtime autotuner: selection + online adaptation.

   Wraps the selector with an observation loop: after every execution the
   measured metrics update the knowledge (EMA), so sustained drifts in the
   system state (contention, input changes, degraded links) move future
   selections — the "dynamic hardware-software adaptation strategy" of
   Fig. 2. *)

type t = {
  knowledge : Knowledge.t;
  goal : Goal.t;
  alpha : float;
  hysteresis : float;  (* keep the current variant unless the challenger is
                          better by more than this relative margin *)
  mutable last : Selector.decision option;
  mutable selections : int;
  mutable switches : int;
  history : (string * Knowledge.metrics) Queue.t;
  select_memo : Selector.decision option Everest_parallel.Cache.t;
      (* memoizes [Selector.select] per feature vector; flushed on every
         observation, since observations move the knowledge *)
}

let create ?(alpha = 0.3) ?(hysteresis = 0.1) knowledge goal =
  { knowledge; goal; alpha; hysteresis; last = None; selections = 0;
    switches = 0; history = Queue.create ();
    select_memo = Everest_parallel.Cache.create ~name:"tuner_select" () }

(* Selection depends only on the feature vector (and the knowledge, which
   invalidates the memo when it changes), so key on the sorted features. *)
let features_key features =
  List.sort (fun (a, _) (b, _) -> compare a b) features
  |> List.map (fun (k, v) -> Printf.sprintf "%s=%h" k v)
  |> String.concat ";"

(* With hysteresis: if the previously selected variant is still feasible and
   within (1 + hysteresis) of the challenger's score, stick with it —
   avoids thrashing between statistically indistinguishable variants. *)
let select (t : t) ~features =
  let fresh =
    Everest_parallel.Cache.find_or_compute t.select_memo
      ~key:(features_key features) (fun () ->
        Selector.select t.knowledge t.goal ~features)
  in
  let d =
    match (t.last, fresh) with
    | Some prev, Some next
      when not
             (String.equal prev.Selector.point.Knowledge.variant
                next.Selector.point.Knowledge.variant) -> (
        let prev_name = prev.Selector.point.Knowledge.variant in
        let cluster = Knowledge.nearest_cluster t.knowledge ~features in
        match
          List.find_opt
            (fun p -> String.equal p.Knowledge.variant prev_name)
            cluster
        with
        | Some prev_point
          when List.for_all (Goal.satisfies prev_point)
                 (List.filter
                    (fun c -> not (List.memq c next.Selector.relaxed))
                    t.goal.Goal.constraints)
               && (let s_prev = Goal.score t.goal prev_point in
                   let s_next = Goal.score t.goal next.Selector.point in
                   s_prev <= s_next +. (t.hysteresis *. Float.abs s_next)) ->
            Some { next with Selector.point = prev_point }
        | _ -> fresh)
    | _ -> fresh
  in
  t.selections <- t.selections + 1;
  let kernel_labels = [ ("kernel", t.knowledge.Knowledge.kernel) ] in
  Everest_telemetry.Probe.count ~labels:kernel_labels "tuner_selections_total";
  (match (t.last, d) with
  | Some prev, Some next
    when not
           (String.equal prev.Selector.point.Knowledge.variant
              next.Selector.point.Knowledge.variant) ->
      t.switches <- t.switches + 1;
      Everest_telemetry.Probe.count ~labels:kernel_labels
        "tuner_switches_total"
  | _ -> ());
  t.last <- d;
  d

let observe (t : t) ~variant ~features ~measured =
  Queue.push (variant, measured) t.history;
  if Queue.length t.history > 1000 then ignore (Queue.pop t.history);
  (* observed-metric distributions per variant: the monitoring feed of the
     adaptation loop (latency under the default "time_s" goal) *)
  List.iter
    (fun (metric, v) ->
      Everest_telemetry.Probe.observe
        ~labels:
          [ ("kernel", t.knowledge.Knowledge.kernel);
            ("variant", variant) ]
        ("tuner_observed_" ^ metric) v)
    measured;
  Knowledge.observe ~alpha:t.alpha t.knowledge ~variant ~features ~measured;
  (* the knowledge just moved: memoized selections are stale *)
  Everest_parallel.Cache.clear t.select_memo

(* Checkpoint/restore.  The behavioural core of a tuner is its knowledge
   points (EMA state), the identity of the last-selected variant (the
   hysteresis anchor — only its name is ever consulted) and the
   selection/switch counters.  History is a bounded telemetry buffer and
   the memo a pure cache; both restart empty. *)
type persisted = {
  p_points : Knowledge.point list;
  p_last_variant : string option;
  p_selections : int;
  p_switches : int;
}

let export (t : t) =
  {
    p_points = t.knowledge.Knowledge.points;
    p_last_variant =
      Option.map (fun d -> d.Selector.point.Knowledge.variant) t.last;
    p_selections = t.selections;
    p_switches = t.switches;
  }

let import (t : t) p =
  t.knowledge.Knowledge.points <- p.p_points;
  (t.last <-
     Option.map
       (fun variant ->
         (* Synthetic decision: [select] only reads the variant name and
            re-resolves the point from the live knowledge. *)
         { Selector.point = { Knowledge.variant; features = []; metrics = [] };
           relaxed = [] })
       p.p_last_variant);
  t.selections <- p.p_selections;
  t.switches <- p.p_switches;
  Queue.clear t.history;
  Everest_parallel.Cache.clear t.select_memo

(* One closed-loop step: select, execute via [run], feed the measurement
   back.  [run] returns the measured metrics of the chosen variant. *)
let step (t : t) ~features ~run =
  match select t ~features with
  | None -> None
  | Some d ->
      let variant = d.Selector.point.Knowledge.variant in
      let measured = run variant in
      observe t ~variant ~features ~measured;
      Some (variant, measured)

(* Cumulative regret of the tuner's choices versus an oracle that knows the
   true per-step cost of every variant.  [true_costs step variant] gives the
   ground truth at that step. *)
let regret ~steps ~variants ~true_costs ~chosen =
  let total = ref 0.0 in
  for s = 0 to steps - 1 do
    let best =
      List.fold_left (fun m v -> Float.min m (true_costs s v)) infinity variants
    in
    total := !total +. (true_costs s (chosen s) -. best)
  done;
  !total
