(** The runtime autotuner: selection plus online adaptation.

    Wraps the selector with an observation loop: after every execution the
    measured metrics update the knowledge (EMA), so sustained drifts in the
    system state move future selections — the "dynamic hardware-software
    adaptation strategy" of Fig. 2.  Hysteresis keeps the current variant
    unless a challenger is decisively better, preventing thrashing between
    statistically indistinguishable variants. *)

type t = {
  knowledge : Knowledge.t;
  goal : Goal.t;
  alpha : float;  (** EMA factor for observations. *)
  hysteresis : float;  (** Relative margin a challenger must beat. *)
  mutable last : Selector.decision option;
  mutable selections : int;
  mutable switches : int;
  history : (string * Knowledge.metrics) Queue.t;
  select_memo : Selector.decision option Everest_parallel.Cache.t;
      (** Memoized [Selector.select] results per feature vector; flushed by
          [observe] since observations move the knowledge. *)
}

val create : ?alpha:float -> ?hysteresis:float -> Knowledge.t -> Goal.t -> t

(** Select the variant for the current [features], applying hysteresis
    against the previous choice. *)
val select : t -> features:(string * float) list -> Selector.decision option

(** Feed a measurement back into the knowledge. *)
val observe :
  t ->
  variant:string ->
  features:(string * float) list ->
  measured:Knowledge.metrics ->
  unit

(** {2 Checkpoint / restore} *)

(** Knowledge points, hysteresis anchor (last variant name) and counters.
    History and the selection memo restart empty — both are
    non-behavioural. *)
type persisted = {
  p_points : Knowledge.point list;
  p_last_variant : string option;
  p_selections : int;
  p_switches : int;
}

val export : t -> persisted
val import : t -> persisted -> unit

(** One closed-loop step: select, execute via [run] (returning measured
    metrics), observe. *)
val step :
  t ->
  features:(string * float) list ->
  run:(string -> Knowledge.metrics) ->
  (string * Knowledge.metrics) option

(** Cumulative regret of [chosen] versus the per-step best variant under
    ground-truth costs. *)
val regret :
  steps:int ->
  variants:string list ->
  true_costs:(int -> string -> float) ->
  chosen:(int -> string) ->
  float
