(** Structural verification of functions and modules.

    Checks SSA form (each value defined once, defined before use, region
    bodies see enclosing definitions), per-op dialect verifiers, and
    call-graph integrity (callee symbols resolve, arities match). *)

(** A structured diagnostic; [loc] is the location of the offending op
    (shared shape with the [everest_analysis] lint layer). *)
type diag = { in_func : string; op_name : string; message : string; loc : Loc.t }

(** Prints "[func] op: message", appending the location when known. *)
val pp_diag : Format.formatter -> diag -> unit

(** All diagnostics of one function.  [allow_unregistered] suppresses the
    "operation not registered" diagnostic. *)
val verify_func : ?allow_unregistered:bool -> Ir.func -> diag list

(** Per-function diagnostics plus call-graph checks. *)
val verify_module : ?allow_unregistered:bool -> Ir.modul -> diag list

(** [Ok ()] when the module is clean. *)
val check_module :
  ?allow_unregistered:bool -> Ir.modul -> (unit, diag list) result

val errors_to_string : diag list -> string
