(* Structural verification of functions and modules.

   Checks SSA form (each value defined once, defined before use, region
   operands visible from enclosing scopes), per-op dialect verifiers, and
   call-graph integrity (callee symbols resolve, arities match). *)

type diag = { in_func : string; op_name : string; message : string; loc : Loc.t }

let pp_diag ppf d =
  match d.loc with
  | Loc.Unknown -> Fmt.pf ppf "[%s] %s: %s" d.in_func d.op_name d.message
  | l -> Fmt.pf ppf "[%s] %s: %s (%a)" d.in_func d.op_name d.message Loc.pp l

module IntSet = Set.Make (Int)

let verify_func ?(allow_unregistered = false) (f : Ir.func) : diag list =
  let diags = ref [] in
  let report (o : Ir.op) msg =
    diags :=
      { in_func = f.Ir.fname; op_name = o.name; message = msg; loc = o.loc }
      :: !diags
  in
  let rec check_ops scope ops =
    List.fold_left
      (fun scope (o : Ir.op) ->
        List.iter
          (fun (v : Ir.value) ->
            if not (IntSet.mem v.vid scope) then
              report o (Fmt.str "operand %%%d used before definition" v.vid))
          o.operands;
        (match Dialect.lookup o.name with
        | Some def -> (
            match def.verify o with Ok () -> () | Error m -> report o m)
        | None ->
            if not allow_unregistered then
              report o "operation not registered in any dialect");
        List.iter
          (fun region ->
            List.iter
              (fun (b : Ir.block) ->
                let scope' =
                  List.fold_left
                    (fun s (v : Ir.value) -> IntSet.add v.vid s)
                    scope b.bargs
                in
                ignore (check_ops scope' b.body))
              region)
          o.regions;
        List.fold_left
          (fun s (v : Ir.value) ->
            if IntSet.mem v.vid s then
              report o (Fmt.str "value %%%d redefined" v.vid);
            IntSet.add v.vid s)
          scope o.results)
      scope ops
  in
  let scope0 =
    List.fold_left (fun s (v : Ir.value) -> IntSet.add v.vid s) IntSet.empty
      f.Ir.fargs
  in
  ignore (check_ops scope0 f.Ir.fbody);
  List.rev !diags

let verify_module ?(allow_unregistered = false) (m : Ir.modul) : diag list =
  let per_func =
    List.concat_map (verify_func ~allow_unregistered) m.Ir.funcs
  in
  let calls = ref [] in
  List.iter
    (fun (f : Ir.func) ->
      Ir.iter_ops
        (fun o ->
          match
            ( o.Ir.name,
              Ir.attr_sym "callee" o,
              Ir.attr_sym "kernel" o )
          with
          | "func.call", Some callee, _ -> calls := (f.Ir.fname, o, callee) :: !calls
          | "hw.offload", _, Some callee -> calls := (f.Ir.fname, o, callee) :: !calls
          | _ -> ())
        f.Ir.fbody)
    m.Ir.funcs;
  let call_diags =
    List.filter_map
      (fun (fname, (o : Ir.op), callee) ->
        match Ir.find_func m callee with
        | None ->
            Some
              { in_func = fname; op_name = o.name;
                message = Fmt.str "callee @%s not found" callee; loc = o.loc }
        | Some g ->
            if
              String.equal o.name "func.call"
              && List.length o.operands <> List.length g.Ir.fargs
            then
              Some
                { in_func = fname; op_name = o.name;
                  message = Fmt.str "call to @%s: arity mismatch" callee;
                  loc = o.loc }
            else None)
      !calls
  in
  per_func @ call_diags

let check_module ?allow_unregistered m =
  match verify_module ?allow_unregistered m with
  | [] -> Ok ()
  | ds -> Error ds

let errors_to_string ds = String.concat "\n" (List.map (Fmt.str "%a" pp_diag) ds)
