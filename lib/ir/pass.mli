(** Pass manager: named module-to-module transformations with optional
    inter-pass verification and timing. *)

type t = { pass_name : string; run : Ir.ctx -> Ir.modul -> Ir.modul }

val make : string -> (Ir.ctx -> Ir.modul -> Ir.modul) -> t

(** Per-pass execution report. *)
type report = { name : string; seconds : float; ops_before : int; ops_after : int }

val pp_report : Format.formatter -> report -> unit

exception Verification_failed of string * Verify.diag list

(** Run the pipeline in order.  With [verify_each], {!Verify.check_module}
    runs after every pass and failures raise {!Verification_failed}.
    [lint_each], when given, is called after every pass (and after its
    verification) with the pass name and the resulting module — the
    [everest_analysis] lint gate is wired through here; it aborts the
    pipeline by raising. *)
val run_pipeline :
  ?verify_each:bool ->
  ?lint_each:(string -> Ir.modul -> unit) ->
  Ir.ctx -> t list -> Ir.modul -> Ir.modul * report list
