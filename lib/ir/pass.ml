(* Pass manager: named module-to-module transformations with optional
   inter-pass verification and timing, like MLIR's pass pipeline. *)

type t = { pass_name : string; run : Ir.ctx -> Ir.modul -> Ir.modul }

let make pass_name run = { pass_name; run }

type report = { name : string; seconds : float; ops_before : int; ops_after : int }

let pp_report ppf r =
  Fmt.pf ppf "%-24s %8.4fs  ops %d -> %d" r.name r.seconds r.ops_before
    r.ops_after

exception Verification_failed of string * Verify.diag list

(* [lint_each] receives the pass name and the module after every pass; it
   is a callback (rather than a direct call into the lint engine) because
   the analysis library layers above the IR.  It aborts by raising. *)
let run_pipeline ?(verify_each = false) ?lint_each ctx passes m =
  let reports = ref [] in
  let m =
    List.fold_left
      (fun m (p : t) ->
        let before = Ir.module_op_count m in
        let t0 = Sys.time () in
        let m' = p.run ctx m in
        let dt = Sys.time () -. t0 in
        reports :=
          { name = p.pass_name; seconds = dt; ops_before = before;
            ops_after = Ir.module_op_count m' }
          :: !reports;
        if verify_each then begin
          match Verify.check_module m' with
          | Ok () -> ()
          | Error ds -> raise (Verification_failed (p.pass_name, ds))
        end;
        (match lint_each with Some f -> f p.pass_name m' | None -> ());
        m')
      m passes
  in
  (m, List.rev !reports)
