(** Planlint: static sanitization of execution plans before they run.

    A plan is a [(Dag.t, Scheduler.plan, Cluster.t)] triple; by the time it
    reaches the executor it may have been repaired ([Scheduler.heft_delta]),
    functionally updated ([{ dag with tasks = … }]) or hand-assembled, and a
    defect is otherwise only discovered when the run crashes or silently
    degrades.  Planlint proves the plan safe in milliseconds, reusing the
    {!Everest_analysis.Lint} diagnostic engine (severities, rendering) with
    a plan-level EV1xx code block:

    - {b structural} (EV100–EV103): dangling/duplicate inputs, dependency
      cycles on functionally-updated task arrays, stale [rev_adj] caches;
    - {b happens-before} (EV110–EV112): every consumer of the reference DAG
      is ordered after its producers by the plan — its data edges (what the
      executor enforces, including cross-node transfer edges) plus the
      per-node serialization of the plan's static timeline — proved through
      a reachability index (topological labeling + chain decomposition,
      O(n·chains) build, O(1) queries), so [heft_delta] cone repairs are
      verified rather than trusted;
    - {b capability/placement} (EV120–EV123, EV130–EV131): FPGA tasks on
      FPGA-less nodes, pinned sources placed off-pin, references to
      unknown/excluded nodes, per-node FPGA role-slot oversubscription and
      reconfiguration thrash read off the plan's static timeline;
    - {b SLO feasibility} (EV140): critical-path lower bound of the static
      timeline vs declared {!Everest_observe.Slo} latency deadlines.

    Diagnostics are deterministic (task order within each rule, rules in
    code order) and capped per code so a corrupt million-task plan cannot
    flood the report.  Per the issue this analyzer is the plan-level
    counterpart of [Everest_analysis.Lint]; it lives in [everest_workflow]
    because it consumes [Dag]/[Scheduler]/[Cluster] and gates [Executor]
    (the analysis library sits below the platform layer). *)

(** Raised by {!gate} (and the executor's pre-run gate) when a plan has
    error-severity diagnostics. *)
exception Plan_invalid of {
  plan : string;  (** ["<dag>/<policy>"] of the offending plan. *)
  diags : Everest_analysis.Lint.diag list;  (** The full diagnostic list. *)
}

(** The EV1xx catalog: code, default severity, one-line doc. *)
val codes : (string * Everest_analysis.Lint.severity * string) list

(** {2 Happens-before reachability index}

    Chains are the plan's per-node serialization sequences in topological
    order; together with the DAG's data edges they form the plan-order
    graph.  The index stores, per vertex and chain, the earliest chain
    position reachable from the vertex — O(tasks·chains) ints, built in one
    reverse-topological pass, answering [reaches] in O(1). *)
module Reach : sig
  type t

  (** Build the index for [plan] (over [dag]'s edges, default
      [plan.dag]).  @raise Invalid_argument on cyclic or malformed DAGs —
      run {!check} first when the input is untrusted. *)
  val build : ?dag:Dag.t -> Scheduler.plan -> t

  val tasks : t -> int

  (** Number of chains (distinct assigned nodes). *)
  val chains : t -> int

  (** [reaches idx u v] is true iff the plan orders task [u] (strictly)
      before task [v], directly or transitively. *)
  val reaches : t -> int -> int -> bool
end

type summary = {
  pl_diags : Everest_analysis.Lint.diag list;
  pl_tasks : int;
  pl_edges : int;  (** Deduplicated data edges of the plan's DAG. *)
  pl_chains : int;
  pl_cp_lower_s : float;
      (** Critical-path lower bound of the plan's static timeline
          (transfer-aware, contention-free); 0 when the DAG is cyclic. *)
}

(** Run every EV1xx rule.

    [dag] is the reference DAG whose precedence edges the plan must
    enforce; it defaults to [plan.dag].  Pass the pre-mutation DAG to
    verify a repaired or functionally-updated plan against the original
    dependences (a dropped edge then raises EV110/EV111).  [excluded]
    names nodes the plan must not use (dead or administratively drained);
    pins onto excluded nodes demote EV120 to a warning (the repair had no
    choice).  [slos] / [deadline_s] declare latency deadlines for the
    EV140 feasibility check. *)
val analyze :
  ?dag:Dag.t ->
  ?excluded:string list ->
  ?slos:Everest_observe.Slo.spec list ->
  ?deadline_s:float ->
  Everest_platform.Cluster.t ->
  Scheduler.plan ->
  summary

(** [analyze] returning only the diagnostics. *)
val check :
  ?dag:Dag.t ->
  ?excluded:string list ->
  ?slos:Everest_observe.Slo.spec list ->
  ?deadline_s:float ->
  Everest_platform.Cluster.t ->
  Scheduler.plan ->
  Everest_analysis.Lint.diag list

(** Pre-run gate: {!check}, then raise on errors (warnings pass).
    @raise Plan_invalid when any diagnostic has error severity. *)
val gate :
  ?dag:Dag.t ->
  ?excluded:string list ->
  ?slos:Everest_observe.Slo.spec list ->
  ?deadline_s:float ->
  Everest_platform.Cluster.t ->
  Scheduler.plan ->
  unit
