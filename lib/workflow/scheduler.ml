(* Workflow schedulers: assignment of tasks to nodes (and implementation
   choice).  Baselines (round-robin, min-load) plus HEFT and the
   locality-aware scheduler that models HyperLoom's data-aware placement
   ("improve resource utilization and reduce the overall workflow processing
   time", paper §III-A).

   Scale engineering (e17): all policies run over a per-call memo that
   caches [exec_estimate] per (implementation × node) — the historical
   code recomputed it inside [eligible_nodes], [avg_exec] and [eft_on] for
   every candidate node of every task — and the HEFT internals are
   array-based (node-indexed ready times, rank-sorted index array with an
   explicit id tie-break reproducing the old stable [List.sort]).  Every
   plan is bit-identical to the pre-memo implementation, which is kept as
   [heft_reference] and property-tested against.  [heft_delta] re-places
   only the downward cone of tasks hit by node death instead of recomputing
   the whole plan. *)

open Everest_platform

type assignment = { node : string; impl : Dag.impl }

type plan = {
  dag : Dag.t;
  assignments : assignment array;  (* indexed by task id *)
  policy : string;
}

(* Estimated execution time of [impl] on [node], ignoring queuing. *)
let exec_estimate (node : Node.t) (impl : Dag.impl) =
  match impl with
  | Dag.Cpu { flops; bytes; threads } ->
      Spec.cpu_time node.Node.cpu ~flops ~bytes ~threads
  | Dag.Fpga { estimate; in_bytes; out_bytes; _ } -> (
      match node.Node.fpgas with
      | [] -> infinity
      | dev :: _ ->
          let link =
            match dev.Node.fspec.Spec.attach with
            | Spec.Bus_coherent -> Spec.opencapi
            | Spec.Network_attached -> Spec.eth100_tcp
          in
          Spec.fpga_kernel_time dev.Node.fspec estimate
          +. Spec.transfer_time link ~bytes:in_bytes
          +. Spec.transfer_time link ~bytes:out_bytes)

(* Best implementation for a node: fastest feasible. *)
let best_impl (node : Node.t) (t : Dag.task) =
  List.fold_left
    (fun acc impl ->
      let c = exec_estimate node impl in
      match acc with
      | Some (_, best) when best <= c -> acc
      | _ when c = infinity -> acc
      | _ -> Some (impl, c))
    None t.Dag.impls

let eligible_nodes (c : Cluster.t) (t : Dag.task) =
  match t.Dag.pinned with
  | Some n -> [ Cluster.find_node c n ]
  | None ->
      List.filter (fun n -> best_impl n t <> None) c.Cluster.nodes

let assign_or_fail t node =
  match best_impl node t with
  | Some (impl, _) -> { node = node.Node.name; impl }
  | None ->
      (* pinned node without a feasible impl: fall back to first impl *)
      { node = node.Node.name; impl = List.hd t.Dag.impls }

(* ---- estimate memo ---------------------------------------------------------------- *)

(* One per scheduling call: node array in cluster order, a name -> index
   table, and per-implementation cost rows (cost on every node, computed by
   the same [exec_estimate], so memoized plans are bit-identical). *)
type memo = {
  mm_cluster : Cluster.t;
  mm_nodes : Node.t array;
  mm_index : (string, int) Hashtbl.t;
  mm_costs : (Dag.impl, float array) Hashtbl.t;
}

let memo_of_nodes c nodes =
  let mm_nodes = Array.of_list nodes in
  let mm_index = Hashtbl.create (max 16 (Array.length mm_nodes)) in
  Array.iteri
    (fun i (n : Node.t) ->
      if not (Hashtbl.mem mm_index n.Node.name) then
        Hashtbl.add mm_index n.Node.name i)
    mm_nodes;
  { mm_cluster = c; mm_nodes; mm_index; mm_costs = Hashtbl.create 64 }

let memo_of_cluster (c : Cluster.t) = memo_of_nodes c c.Cluster.nodes

let impl_costs mm impl =
  match Hashtbl.find_opt mm.mm_costs impl with
  | Some row -> row
  | None ->
      let row = Array.map (fun n -> exec_estimate n impl) mm.mm_nodes in
      Hashtbl.add mm.mm_costs impl row;
      row

(* The task's impls paired with their cost rows — one memo lookup per impl
   per task instead of one [exec_estimate] per impl per candidate node. *)
let cost_rows mm (t : Dag.task) =
  List.map (fun impl -> (impl, impl_costs mm impl)) t.Dag.impls

(* Same fold as [best_impl], reading the memoized row. *)
let best_of_rows rows ni =
  List.fold_left
    (fun acc (impl, row) ->
      let c = row.(ni) in
      match acc with
      | Some (_, best) when best <= c -> acc
      | _ when c = infinity -> acc
      | _ -> Some (impl, c))
    None rows

let assign_of_rows mm rows ni (t : Dag.task) =
  let name = mm.mm_nodes.(ni).Node.name in
  match best_of_rows rows ni with
  | Some (impl, _) -> { node = name; impl }
  | None -> { node = name; impl = List.hd t.Dag.impls }

(* Pinned-node index; raises the cluster's own unknown-node error. *)
let pinned_index mm name =
  match Hashtbl.find_opt mm.mm_index name with
  | Some i -> i
  | None -> ignore (Cluster.find_node mm.mm_cluster name); -1

(* ---- round robin ------------------------------------------------------------------ *)

let round_robin (c : Cluster.t) (dag : Dag.t) : plan =
  let mm = memo_of_cluster c in
  let n_nodes = Array.length mm.mm_nodes in
  let all = Array.init n_nodes Fun.id in
  let scratch = Array.make (max 1 n_nodes) 0 in
  let counter = ref 0 in
  let assignments =
    Array.map
      (fun (t : Dag.task) ->
        let rows = cost_rows mm t in
        (* eligible node indices, in cluster order (the order the
           historical [List.filter] produced) *)
        let eligible, n_eligible =
          match t.Dag.pinned with
          | Some n ->
              scratch.(0) <- pinned_index mm n;
              (scratch, 1)
          | None ->
              let k = ref 0 in
              for ni = 0 to n_nodes - 1 do
                if best_of_rows rows ni <> None then begin
                  scratch.(!k) <- ni;
                  incr k
                end
              done;
              if !k = 0 then (all, n_nodes) else (scratch, !k)
        in
        let ni = eligible.(!counter mod n_eligible) in
        incr counter;
        assign_of_rows mm rows ni t)
      dag.Dag.tasks
  in
  { dag; assignments; policy = "round-robin" }

(* ---- min-load --------------------------------------------------------------------- *)

let min_load (c : Cluster.t) (dag : Dag.t) : plan =
  let mm = memo_of_cluster c in
  let n_nodes = Array.length mm.mm_nodes in
  let load = Array.make (max 1 n_nodes) 0.0 in
  let assignments =
    Array.map
      (fun (t : Dag.task) ->
        let rows = cost_rows mm t in
        let best = ref (-1) in
        (match t.Dag.pinned with
        | Some n -> best := pinned_index mm n
        | None ->
            for ni = 0 to n_nodes - 1 do
              if best_of_rows rows ni <> None then
                if !best < 0 || load.(ni) < load.(!best) then best := ni
            done;
            (* no feasible node anywhere: least-loaded of the whole
               cluster, like the historical fallback to [c.nodes] *)
            if !best < 0 then begin
              best := 0;
              for ni = 1 to n_nodes - 1 do
                if load.(ni) < load.(!best) then best := ni
              done
            end);
        let ni = !best in
        let a = assign_of_rows mm rows ni t in
        let cost =
          match best_of_rows rows ni with
          | Some (_, cost) -> cost
          | None -> (impl_costs mm a.impl).(ni)
        in
        load.(ni) <- load.(ni) +. cost;
        a)
      dag.Dag.tasks
  in
  { dag; assignments; policy = "min-load" }

(* ---- HEFT ------------------------------------------------------------------------- *)

(* representative DC link for the rank's average transfer cost *)
let avg_bw () = Spec.eth100_tcp.Spec.bandwidth_gbs *. 1e9

(* Mean best-impl cost across feasible nodes, summed in node order so the
   float result matches the historical [List.filter_map] + fold. *)
let avg_exec_of_rows n_nodes rows =
  let sum = ref 0.0 and k = ref 0 in
  for ni = 0 to n_nodes - 1 do
    match best_of_rows rows ni with
    | Some (_, cost) ->
        sum := !sum +. cost;
        incr k
    | None -> ()
  done;
  if !k = 0 then 1.0 else !sum /. float_of_int !k

(* Upward ranks: O(tasks + edges) over the cached reverse adjacency. *)
let upward_ranks mm (dag : Dag.t) =
  let n_tasks = Dag.size dag in
  let n_nodes = Array.length mm.mm_nodes in
  let avg_bw = avg_bw () in
  let rank = Array.make n_tasks 0.0 in
  for i = n_tasks - 1 downto 0 do
    let t = dag.Dag.tasks.(i) in
    let succ_part = ref 0.0 in
    let comm = float_of_int t.Dag.out_bytes /. avg_bw in
    Dag.iter_consumers dag i (fun s ->
        let v = comm +. rank.(s) in
        if v > !succ_part then succ_part := v);
    rank.(i) <- avg_exec_of_rows n_nodes (cost_rows mm t) +. !succ_part
  done;
  rank

(* Task ids by descending rank; ids break ties, reproducing the order the
   historical stable [List.sort] gave an ascending-id input. *)
let rank_order rank =
  let order = Array.init (Array.length rank) Fun.id in
  Array.sort
    (fun a b ->
      let c = compare rank.(b) rank.(a) in
      if c <> 0 then c else compare a b)
    order;
  order

let heft ?(locality_aware = false) ?(exclude = []) (c : Cluster.t)
    (dag : Dag.t) : plan =
  let nodes =
    if exclude = [] then c.Cluster.nodes
    else
      List.filter
        (fun (n : Node.t) -> not (List.mem n.Node.name exclude))
        c.Cluster.nodes
  in
  if nodes = [] then invalid_arg "heft: every node excluded";
  let mm = memo_of_nodes c nodes in
  let nodes = mm.mm_nodes in
  let n_nodes = Array.length nodes in
  let n_tasks = Dag.size dag in
  let avg_bw = avg_bw () in
  let rank = upward_ranks mm dag in
  let order = rank_order rank in
  let node_ready = Array.make n_nodes 0.0 in
  let task_finish = Array.make n_tasks 0.0 in
  let task_node = Array.make n_tasks (-1) in
  let assignments =
    Array.make n_tasks
      { node = ""; impl = Dag.Cpu { flops = 0.; bytes = 0.; threads = 1 } }
  in
  (* schedule in rank order, but dependencies always rank higher, so inputs
     are placed before consumers *)
  Array.iter
    (fun i ->
      let t = dag.Dag.tasks.(i) in
      let rows = cost_rows mm t in
      let eft_on ni =
        match best_of_rows rows ni with
        | None -> None
        | Some (impl, exec) ->
            let ready_node = node_ready.(ni) in
            let ready_data =
              List.fold_left
                (fun m d ->
                  let src = nodes.(task_node.(d)) in
                  let comm =
                    if locality_aware then
                      Cluster.transfer_time c ~src ~dst:nodes.(ni)
                        ~bytes:dag.Dag.tasks.(d).Dag.out_bytes
                    else if task_node.(d) = ni then 0.0
                    else
                      float_of_int dag.Dag.tasks.(d).Dag.out_bytes /. avg_bw
                  in
                  Float.max m (task_finish.(d) +. comm))
                0.0 t.Dag.inputs
            in
            let start = Float.max ready_node ready_data in
            Some (impl, start +. exec)
      in
      let best = ref None in
      (let consider ni =
         match eft_on ni with
         | None -> ()
         | Some (impl, eft) -> (
             match !best with
             | Some (_, _, best_eft) when best_eft <= eft -> ()
             | _ -> best := Some (ni, impl, eft))
       in
       match t.Dag.pinned with
       | Some n -> consider (pinned_index mm n)
       | None ->
           for ni = 0 to n_nodes - 1 do
             consider ni
           done);
      match !best with
      | Some (ni, impl, eft) ->
          assignments.(i) <- { node = nodes.(ni).Node.name; impl };
          task_finish.(i) <- eft;
          task_node.(i) <- ni;
          node_ready.(ni) <- eft
      | None ->
          assignments.(i) <- assign_of_rows mm rows 0 t;
          task_node.(i) <- 0)
    order;
  { dag; assignments;
    policy = (if locality_aware then "heft-locality" else "heft") }

let locality (c : Cluster.t) (dag : Dag.t) : plan = heft ~locality_aware:true c dag

(* ---- incremental (delta) HEFT ----------------------------------------------------- *)

(* On node death, re-place only the affected downward cone: every task
   assigned to a dead node plus its transitive consumers (their input data
   moved, so their placement may no longer be best).  Unaffected tasks keep
   their assignment and are only replayed to rebuild node-ready/finish
   state in O(1) per task — the per-node EFT search runs for cone tasks
   only.  This is what lineage recovery needs at scale: node death touches
   a cone, not the whole 10⁶-task plan. *)
let heft_delta ?locality_aware (c : Cluster.t) (plan : plan)
    ~(dead : string list) : plan =
  let locality_aware =
    match locality_aware with
    | Some b -> b
    | None -> String.equal plan.policy "heft-locality"
  in
  let dag = plan.dag in
  let n_tasks = Dag.size dag in
  let is_dead name = List.exists (String.equal name) dead in
  let alive =
    List.filter (fun (n : Node.t) -> not (is_dead n.Node.name)) c.Cluster.nodes
  in
  if alive = [] then invalid_arg "heft_delta: every node dead";
  let mm = memo_of_nodes c alive in
  let nodes = mm.mm_nodes in
  let n_nodes = Array.length nodes in
  let avg_bw = avg_bw () in
  (* the cone: dead-node tasks, closed under consumers (edges only point
     forward, so one ascending pass suffices) *)
  let affected = Array.make n_tasks false in
  for i = 0 to n_tasks - 1 do
    if is_dead plan.assignments.(i).node then affected.(i) <- true;
    if affected.(i) then
      Dag.iter_consumers dag i (fun s -> affected.(s) <- true)
  done;
  let rank = upward_ranks mm dag in
  let order = rank_order rank in
  let node_ready = Array.make n_nodes 0.0 in
  let task_finish = Array.make n_tasks 0.0 in
  let task_node = Array.make n_tasks (-1) in
  let assignments = Array.copy plan.assignments in
  let moved = ref 0 in
  Array.iter
    (fun i ->
      let t = dag.Dag.tasks.(i) in
      let ready_data ni =
        List.fold_left
          (fun m d ->
            let comm =
              if locality_aware then
                Cluster.transfer_time c ~src:nodes.(task_node.(d))
                  ~dst:nodes.(ni)
                  ~bytes:dag.Dag.tasks.(d).Dag.out_bytes
              else if task_node.(d) = ni then 0.0
              else float_of_int dag.Dag.tasks.(d).Dag.out_bytes /. avg_bw
            in
            Float.max m (task_finish.(d) +. comm))
          0.0 t.Dag.inputs
      in
      let place ni impl exec =
        let eft = Float.max node_ready.(ni) (ready_data ni) +. exec in
        assignments.(i) <- { node = nodes.(ni).Node.name; impl };
        task_finish.(i) <- eft;
        task_node.(i) <- ni;
        node_ready.(ni) <- eft
      in
      if not affected.(i) then begin
        (* keep the assignment; replay to rebuild planner state *)
        let a = assignments.(i) in
        let ni =
          match Hashtbl.find_opt mm.mm_index a.node with
          | Some ni -> ni
          | None -> invalid_arg "heft_delta: unaffected task on a dead node"
        in
        place ni a.impl (impl_costs mm a.impl).(ni)
      end
      else begin
        incr moved;
        let rows = cost_rows mm t in
        let best = ref None in
        let consider ni =
          match best_of_rows rows ni with
          | None -> ()
          | Some (impl, exec) -> (
              let eft = Float.max node_ready.(ni) (ready_data ni) +. exec in
              match !best with
              | Some (_, _, _, best_eft) when best_eft <= eft -> ()
              | _ -> best := Some (ni, impl, exec, eft))
        in
        (match t.Dag.pinned with
        | Some n when not (is_dead n) -> consider (pinned_index mm n)
        | _ ->
            for ni = 0 to n_nodes - 1 do
              consider ni
            done);
        match !best with
        | Some (ni, impl, exec, _) -> place ni impl exec
        | None ->
            (* no feasible impl on any survivor: first alive node, first
               impl — the same last resort as full HEFT *)
            place 0 (List.hd t.Dag.impls) (impl_costs mm (List.hd t.Dag.impls)).(0)
      end)
    order;
  ignore !moved;
  { dag; assignments; policy = plan.policy ^ "+delta" }

(* ---- pre-PR reference ------------------------------------------------------------- *)

(* The historical HEFT, verbatim: [Dag.consumers_naive] rebuilt per rank
   step (Θ(n²·deg)), [exec_estimate] recomputed per candidate node, list
   sort over [List.init].  Kept as the oracle the memoized scheduler is
   property-tested against, and as the quadratic baseline bench e17
   measures its speedup over. *)
let heft_reference ?(locality_aware = false) (c : Cluster.t) (dag : Dag.t) :
    plan =
  let nodes = c.Cluster.nodes in
  let n_tasks = Dag.size dag in
  let avg_exec (t : Dag.task) =
    let costs =
      List.filter_map (fun n -> Option.map snd (best_impl n t)) nodes
    in
    if costs = [] then 1.0
    else List.fold_left ( +. ) 0.0 costs /. float_of_int (List.length costs)
  in
  let avg_bw = Spec.eth100_tcp.Spec.bandwidth_gbs *. 1e9 in
  let rank = Array.make n_tasks 0.0 in
  for i = n_tasks - 1 downto 0 do
    let t = dag.Dag.tasks.(i) in
    let succ_part =
      List.fold_left
        (fun m s ->
          let comm = float_of_int t.Dag.out_bytes /. avg_bw in
          Float.max m (comm +. rank.(s)))
        0.0
        (Dag.consumers_naive dag i)
    in
    rank.(i) <- avg_exec t +. succ_part
  done;
  let order =
    List.sort (fun a b -> compare rank.(b) rank.(a)) (List.init n_tasks Fun.id)
  in
  let node_ready : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let task_finish = Array.make n_tasks 0.0 in
  let task_node = Array.make n_tasks "" in
  let assignments =
    Array.make n_tasks
      { node = ""; impl = Dag.Cpu { flops = 0.; bytes = 0.; threads = 1 } }
  in
  List.iter
    (fun i ->
      let t = dag.Dag.tasks.(i) in
      let candidates =
        match t.Dag.pinned with
        | Some n -> [ Cluster.find_node c n ]
        | None -> nodes
      in
      let eft_on (n : Node.t) =
        match best_impl n t with
        | None -> None
        | Some (impl, exec) ->
            let ready_node =
              Option.value ~default:0.0 (Hashtbl.find_opt node_ready n.Node.name)
            in
            let ready_data =
              List.fold_left
                (fun m d ->
                  let src = Cluster.find_node c task_node.(d) in
                  let comm =
                    if locality_aware then
                      Cluster.transfer_time c ~src ~dst:n
                        ~bytes:dag.Dag.tasks.(d).Dag.out_bytes
                    else if String.equal task_node.(d) n.Node.name then 0.0
                    else
                      float_of_int dag.Dag.tasks.(d).Dag.out_bytes /. avg_bw
                  in
                  Float.max m (task_finish.(d) +. comm))
                0.0 t.Dag.inputs
            in
            let start = Float.max ready_node ready_data in
            Some (impl, start +. exec)
      in
      let best =
        List.fold_left
          (fun acc n ->
            match eft_on n with
            | None -> acc
            | Some (impl, eft) -> (
                match acc with
                | Some (_, _, best_eft) when best_eft <= eft -> acc
                | _ -> Some (n, impl, eft)))
          None candidates
      in
      match best with
      | Some (n, impl, eft) ->
          assignments.(i) <- { node = n.Node.name; impl };
          task_finish.(i) <- eft;
          task_node.(i) <- n.Node.name;
          Hashtbl.replace node_ready n.Node.name eft
      | None ->
          let n = List.hd nodes in
          assignments.(i) <- assign_or_fail t n;
          task_node.(i) <- n.Node.name)
    order;
  { dag; assignments;
    policy = (if locality_aware then "heft-locality" else "heft") }

let by_name = function
  | "round-robin" -> Some round_robin
  | "min-load" -> Some min_load
  | "heft" -> Some (fun c dag -> heft ~locality_aware:false c dag)
  | "heft-locality" | "locality" -> Some locality
  | _ -> None
