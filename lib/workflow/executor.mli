(** Plan execution on the simulated platform.

    Each task waits for its inputs, pulls them from a node holding a valid
    copy over the cluster links, runs its chosen implementation on its
    assigned node, and signals completion — the measurable counterpart of
    HyperLoom's distributed executor.  Planned bitstreams are preloaded at
    deployment (cloudFPGA configures roles at allocation).

    Resilience: an {!Everest_resilience.Faults.t} plan injects node
    crash/restart windows, transient failures and link degradation, all
    deterministic in the plan seed; an {!Everest_resilience.Policy.t}
    governs recovery (retry budgets with backoff, plan-relative timeouts,
    speculative re-execution, heartbeat death detection).  Outputs lost
    with a dead node are recomputed from lineage. *)

type stats = {
  makespan : float;
  task_finish : float array;
  bytes_moved : int;
  transfers : int;
  energy_j : float;
  per_node_tasks : (string * int) list;
  retries : int;  (** Re-executions caused by node or transient failures. *)
  timeouts : int;  (** Attempts cancelled by the per-task deadline. *)
  speculative : int;  (** Speculative backup launches. *)
  recomputed : int;  (** Lost outputs recomputed from lineage. *)
  span_log : Everest_telemetry.Trace.span list;
      (** Completed spans of the run when a tracer was passed (one
          ["task:…"] span per execution attempt, one ["xfer:…"] span per
          transfer), newest first; empty under the default no-op tracer.
          The headline counters are derivable from it — see
          {!trace_retries} and friends. *)
  report : Everest_observe.Report.t Lazy.t;
      (** Analytics over the run — critical path with self/wait
          attribution, per-node utilization reconciled against Desim wait
          stats, latency quantiles, a completion SLO — computed only when
          forced.  Untraced runs get a report with counters and quantiles
          but no critical path or utilization (those need the span log). *)
}

(** Raised when recovery can no longer make progress (every node dead, or a
    task's retry budget exhausted with no attempt left in flight); carries
    the stats accumulated up to the failure point. *)
exception Execution_failed of { reason : string; partial : stats }

(** Execute the plan.

    [failures] is the historical shim: a list of [(node, time)] pairs, each
    becoming a permanent node death at the given simulated time.  [faults]
    is the full fault plan and wins over [failures] when both are given.
    [policy] (default {!Everest_resilience.Policy.default}) sets retry
    budget, backoff, timeouts, speculation and heartbeat; the default is
    inert beyond retries, so zero-fault runs behave exactly like the
    pre-resilience executor.

    [tracer] (default {!Everest_telemetry.Trace.noop}) records per-attempt
    task spans and per-transfer spans in simulated time, one track per
    node; [registry] (default {!Everest_telemetry.Metrics.default})
    accumulates [workflow_*] counters and task/transfer histograms.

    [plan_lint] (default [true]) runs {!Planlint.gate} before deployment —
    the pre-run counterpart of [Pipeline.compile ?lint]; pass [false] to
    execute a plan the analyzer rejects (e.g. to reproduce a failure).
    [checkpoint] write-ahead journals every first completion and snapshots
    the executor's resumable digest at {!Checkpoint} boundaries (also
    pruning lineage there, bounding replica-tracking memory and reported by
    the [workflow_lineage_copies] gauge); a {!Checkpoint.resume}d value
    replay-verifies the whole run against the journal.
    @raise Planlint.Plan_invalid when the gate finds error diagnostics.
    @raise Execution_failed when recovery is exhausted.
    @raise Everest_recovery.Journal.Crashed when a crash armed on the
    checkpoint store triggers.
    @raise Everest_recovery.Store.Recovery_error when replay diverges from
    the journal or a snapshot anchor.

    [watch] attaches a strictly read-only observer: the registry is
    scraped on the watch's interval (gated on task completions), and each
    first completion feeds its ["task_duration"] windowed sketch.
    Watching never perturbs the simulated run. *)
val execute :
  ?failures:(string * float) list ->
  ?faults:Everest_resilience.Faults.t ->
  ?policy:Everest_resilience.Policy.t ->
  ?tracer:Everest_telemetry.Trace.t ->
  ?registry:Everest_telemetry.Metrics.registry ->
  ?plan_lint:bool ->
  ?checkpoint:Checkpoint.t ->
  ?watch:Everest_watch.Watch.t ->
  Everest_platform.Cluster.t ->
  Scheduler.plan ->
  stats

(** Build a fresh demonstrator, schedule with the named policy, execute.
    [exec_policy] is the recovery policy (the [~policy] argument names the
    scheduler).  When [tracer] is [`Sim] a tracer on the fresh cluster's
    simulated clock is created and its spans land in [stats.span_log].
    @raise Invalid_argument on unknown policy names. *)
val run_on_demonstrator :
  ?cloud_fpgas:int ->
  ?edges:int ->
  ?endpoints:int ->
  ?failures:(string * float) list ->
  ?faults:Everest_resilience.Faults.t ->
  ?exec_policy:Everest_resilience.Policy.t ->
  ?tracer:[ `Noop | `Sim ] ->
  ?registry:Everest_telemetry.Metrics.registry ->
  policy:string ->
  Dag.t ->
  Scheduler.plan * stats

(** {2 Trace/stats agreement}

    The span log is an alternative account of the run; these fold it back
    into the headline numbers so tests can assert both stories match. *)

(** Task-execution attempts that were abandoned and re-executed because
    their node died or the attempt failed transiently (spans with
    [status="retried"]). *)
val trace_retries : Everest_telemetry.Trace.span list -> int

(** Attempts cancelled by the per-task deadline ([status="timeout"]). *)
val trace_timeouts : Everest_telemetry.Trace.span list -> int

(** Speculative backup launches (spans born with [speculative=true]). *)
val trace_speculative : Everest_telemetry.Trace.span list -> int

(** Completed recomputations of lost outputs ([status="recomputed"]). *)
val trace_recomputed : Everest_telemetry.Trace.span list -> int

(** Total bytes carried by ["xfer:…"] spans. *)
val trace_bytes_moved : Everest_telemetry.Trace.span list -> int

(** Successful first completions (spans with [status="ok"]). *)
val trace_tasks_completed : Everest_telemetry.Trace.span list -> int
