(** Plan execution on the simulated platform.

    Each task waits for its inputs, pulls them from the producers' nodes
    over the cluster links, runs its chosen implementation on its assigned
    node, and signals completion — the measurable counterpart of
    HyperLoom's distributed executor.  Planned bitstreams are preloaded at
    deployment (cloudFPGA configures roles at allocation). *)

type stats = {
  makespan : float;
  task_finish : float array;
  bytes_moved : int;
  transfers : int;
  energy_j : float;
  per_node_tasks : (string * int) list;
  retries : int;  (** Re-executions caused by node failures. *)
  span_log : Everest_telemetry.Trace.span list;
      (** Completed spans of the run when a tracer was passed (one
          ["task:…"] span per execution attempt, one ["xfer:…"] span per
          transfer), newest first; empty under the default no-op tracer.
          [retries] and [bytes_moved] are derivable from it — see
          {!trace_retries} and {!trace_bytes_moved}. *)
}

(** Execute the plan.  [failures] is a list of [(node, time)] pairs: the
    node dies at the simulated time; tasks divert or re-execute on a
    fallback node (HyperLoom-style recovery).

    [tracer] (default {!Everest_telemetry.Trace.noop}) records per-attempt
    task spans and per-transfer spans in simulated time, one track per
    node; [registry] (default {!Everest_telemetry.Metrics.default})
    accumulates [workflow_*] counters and task/transfer histograms.
    @raise Invalid_argument if a task never completes or every node fails. *)
val execute :
  ?failures:(string * float) list ->
  ?tracer:Everest_telemetry.Trace.t ->
  ?registry:Everest_telemetry.Metrics.registry ->
  Everest_platform.Cluster.t ->
  Scheduler.plan ->
  stats

(** Build a fresh demonstrator, schedule with the named policy, execute.
    When [tracer] is [`Sim] a tracer on the fresh cluster's simulated clock
    is created and its spans land in [stats.span_log].
    @raise Invalid_argument on unknown policy names. *)
val run_on_demonstrator :
  ?cloud_fpgas:int ->
  ?edges:int ->
  ?endpoints:int ->
  ?failures:(string * float) list ->
  ?tracer:[ `Noop | `Sim ] ->
  ?registry:Everest_telemetry.Metrics.registry ->
  policy:string ->
  Dag.t ->
  Scheduler.plan * stats

(** {2 Trace/stats agreement}

    The span log is an alternative account of the run; these fold it back
    into the headline numbers so tests can assert both stories match. *)

(** Task-execution attempts that were abandoned because their node died
    (spans with [status="retried"]). *)
val trace_retries : Everest_telemetry.Trace.span list -> int

(** Total bytes carried by ["xfer:…"] spans. *)
val trace_bytes_moved : Everest_telemetry.Trace.span list -> int

(** Successful task completions (spans with [status="ok"]). *)
val trace_tasks_completed : Everest_telemetry.Trace.span list -> int
