(* Workflow task graphs (the HyperLoom execution plan).

   A task carries one or more implementations (the compiler's variants):
   software on some number of threads, or a synthesized FPGA kernel.  The
   scheduler picks a node and an implementation per task; the executor
   replays the plan on the simulated platform.

   Scale: the reverse adjacency (consumers) is precomputed once at
   construction as an array of arrays, so [consumers]/[iter_consumers] are
   O(out-degree) instead of the historical O(n) rebuild per call — at 10⁵+
   tasks that rebuild made every downstream walk (HEFT ranks, executor
   completions) quadratic.  The cache is keyed on the physical identity of
   the task array, so functional updates ([{ dag with tasks = … }]) get a
   fresh index lazily instead of a stale one. *)

type impl =
  | Cpu of { flops : float; bytes : float; threads : int }
  | Fpga of {
      bitstream : string;
      estimate : Everest_hls.Estimate.t;
      in_bytes : int;
      out_bytes : int;
    }

let impl_name = function
  | Cpu { threads; _ } -> Printf.sprintf "cpu<%d>" threads
  | Fpga { bitstream; _ } -> Printf.sprintf "fpga<%s>" bitstream

type task = {
  id : int;
  name : string;
  impls : impl list;  (* non-empty *)
  inputs : int list;  (* producer task ids *)
  out_bytes : int;
  pinned : string option;  (* sources pinned to a node (data origin) *)
}

type t = {
  dag_name : string;
  tasks : task array;
  mutable rev_adj : (task array * int array array) option;
}

let task ?(pinned = None) ?(impls = []) ~id ~name ~inputs ~out_bytes () =
  { id; name; impls; inputs; out_bytes; pinned }

(* Reverse adjacency in one O(tasks + edges) pass; consumer lists come out
   in ascending task id (the order the historical scan produced).  Duplicate
   inputs collapse to one edge, matching the old [List.mem] semantics. *)
let build_rev_adj tasks =
  let n = Array.length tasks in
  let deg = Array.make n 0 in
  let each_input t f =
    match t.inputs with
    | [] -> ()
    | [ d ] -> f d
    | ds -> List.iter f (List.sort_uniq compare ds)
  in
  Array.iter (fun t -> each_input t (fun d -> deg.(d) <- deg.(d) + 1)) tasks;
  let adj = Array.init n (fun i -> Array.make deg.(i) 0) in
  let fill = Array.make n 0 in
  Array.iter
    (fun t ->
      each_input t (fun d ->
          adj.(d).(fill.(d)) <- t.id;
          fill.(d) <- fill.(d) + 1))
    tasks;
  adj

let of_tasks dag_name tasks =
  Array.iteri
    (fun i t ->
      let fail fmt =
        Printf.ksprintf
          (fun msg ->
            invalid_arg
              (Printf.sprintf "dag %S: task %d (%S): %s" dag_name t.id t.name
                 msg))
          fmt
      in
      if t.id <> i then fail "ids must be consecutive (expected id %d)" i;
      List.iter
        (fun d ->
          if d < 0 then fail "input %d is negative" d
          else if d >= i then
            fail "input %d does not precede the task (inputs must be < %d)" d
              i)
        t.inputs;
      (* duplicate inputs deadlock the executor: it counts raw inputs but
         producers signal deduplicated consumers *)
      match t.inputs with
      | [] | [ _ ] -> ()
      | ds ->
          let rec dups = function
            | a :: (b :: _ as rest) ->
                if a = b then fail "input %d is listed more than once" a
                else dups rest
            | _ -> ()
          in
          dups (List.sort compare ds))
    tasks;
  { dag_name; tasks; rev_adj = Some (tasks, build_rev_adj tasks) }

let create dag_name tasks = of_tasks dag_name (Array.of_list tasks)

let size d = Array.length d.tasks
let find d id = d.tasks.(id)

let rev_adj d =
  match d.rev_adj with
  | Some (arr, adj) when arr == d.tasks -> adj
  | _ ->
      let adj = build_rev_adj d.tasks in
      d.rev_adj <- Some (d.tasks, adj);
      adj

let consumers_array d id = (rev_adj d).(id)
let consumers d id = Array.to_list (rev_adj d).(id)
let iter_consumers d id f = Array.iter f (rev_adj d).(id)
let out_degree d id = Array.length (rev_adj d).(id)

(* The historical O(n·deg) rebuild, kept as the reference the cached index
   is property-tested against (and as the quadratic baseline in e17). *)
let consumers_naive d id =
  Array.to_list d.tasks
  |> List.filter_map (fun t -> if List.mem id t.inputs then Some t.id else None)

let total_flops d =
  Array.fold_left
    (fun acc t ->
      match t.impls with
      | Cpu { flops; _ } :: _ -> acc +. flops
      | _ -> acc)
    0.0 d.tasks

(* ---- generators ------------------------------------------------------------------ *)

(* Layered random DAG: [layers] layers of [width] tasks, each consuming 1-2
   tasks from the previous layer.  Deterministic in [seed]; emits exactly
   the task array of the historical list-based generator (which kept the
   previous layer newest-first, so draw [k] named id [l·width - 1 - k]) but
   in O(n) instead of O(n·width) [List.nth] walks. *)
let layered ?(seed = 1) ~layers ~width ~flops ~bytes () =
  let rng = Everest_parallel.Rng.create seed in
  let rand m = Everest_parallel.Rng.int rng m in
  let n = layers * width in
  let out_bytes = int_of_float bytes in
  let impls = [ Cpu { flops; bytes; threads = 1 } ] in
  let tasks =
    Array.init n (fun _ ->
        { id = 0; name = ""; impls = []; inputs = []; out_bytes = 0;
          pinned = None })
  in
  let id = ref 0 in
  for l = 0 to layers - 1 do
    for w = 0 to width - 1 do
      let inputs =
        if l = 0 then []
        else
          let p = (l * width) - 1 - rand width in
          let q = (l * width) - 1 - rand width in
          List.sort_uniq compare [ p; q ]
      in
      tasks.(!id) <-
        task ~id:!id ~name:(Printf.sprintf "t%d_%d" l w) ~inputs ~out_bytes
          ~impls ();
      incr id
    done
  done;
  of_tasks "layered" tasks

(* Fork-join: one source fans out to [width] parallel workers, joined by a
   reducer — the shape of ensemble weather processing. *)
let fork_join ?(name = "fork-join") ~width ~worker_flops ~worker_bytes
    ~chunk_bytes () =
  let src =
    task ~id:0 ~name:"source" ~inputs:[] ~out_bytes:(width * chunk_bytes)
      ~impls:[ Cpu { flops = 1e6; bytes = float_of_int (width * chunk_bytes); threads = 1 } ]
      ()
  in
  let workers =
    List.init width (fun i ->
        task ~id:(i + 1)
          ~name:(Printf.sprintf "worker%d" i)
          ~inputs:[ 0 ] ~out_bytes:chunk_bytes
          ~impls:[ Cpu { flops = worker_flops; bytes = worker_bytes; threads = 1 } ]
          ())
  in
  let join =
    task ~id:(width + 1) ~name:"reduce"
      ~inputs:(List.init width (fun i -> i + 1))
      ~out_bytes:chunk_bytes
      ~impls:[ Cpu { flops = 1e7; bytes = float_of_int (width * chunk_bytes); threads = 1 } ]
      ()
  in
  create name ((src :: workers) @ [ join ])

(* Ensemble: [members] independent [stages]-deep chains fed by one source
   and joined by a reducer — the Estee "ensemble of simulations" family.
   Per-member work is jittered by up to 2x (deterministic in [seed]) so
   members straggle like real ensembles do. *)
let ensemble ?(seed = 1) ~members ~stages ~stage_flops ~stage_bytes () =
  if members < 1 || stages < 1 then
    invalid_arg "ensemble: members and stages must be positive";
  let rng = Everest_parallel.Rng.create seed in
  let n = 2 + (members * stages) in
  let out_bytes = int_of_float stage_bytes in
  let tasks =
    Array.init n (fun _ ->
        { id = 0; name = ""; impls = []; inputs = []; out_bytes = 0;
          pinned = None })
  in
  tasks.(0) <-
    task ~id:0 ~name:"source" ~inputs:[] ~out_bytes:(members * out_bytes)
      ~impls:
        [ Cpu { flops = 1e6; bytes = float_of_int members *. stage_bytes;
                threads = 1 } ]
      ();
  for m = 0 to members - 1 do
    (* member-level straggle factor in [1, 2) *)
    let jitter = 1.0 +. Everest_parallel.Rng.float rng in
    for s = 0 to stages - 1 do
      let id = 1 + (m * stages) + s in
      tasks.(id) <-
        task ~id
          ~name:(Printf.sprintf "m%d_s%d" m s)
          ~inputs:[ (if s = 0 then 0 else id - 1) ]
          ~out_bytes
          ~impls:
            [ Cpu { flops = stage_flops *. jitter; bytes = stage_bytes;
                    threads = 1 } ]
          ()
    done
  done;
  let last = n - 1 in
  tasks.(last) <-
    task ~id:last ~name:"reduce"
      ~inputs:(List.init members (fun m -> (m * stages) + stages))
      ~out_bytes
      ~impls:
        [ Cpu { flops = 1e7; bytes = float_of_int members *. stage_bytes;
                threads = 1 } ]
      ();
  of_tasks "ensemble" tasks
