(* Workflow task graphs (the HyperLoom execution plan).

   A task carries one or more implementations (the compiler's variants):
   software on some number of threads, or a synthesized FPGA kernel.  The
   scheduler picks a node and an implementation per task; the executor
   replays the plan on the simulated platform. *)

type impl =
  | Cpu of { flops : float; bytes : float; threads : int }
  | Fpga of {
      bitstream : string;
      estimate : Everest_hls.Estimate.t;
      in_bytes : int;
      out_bytes : int;
    }

let impl_name = function
  | Cpu { threads; _ } -> Printf.sprintf "cpu<%d>" threads
  | Fpga { bitstream; _ } -> Printf.sprintf "fpga<%s>" bitstream

type task = {
  id : int;
  name : string;
  impls : impl list;  (* non-empty *)
  inputs : int list;  (* producer task ids *)
  out_bytes : int;
  pinned : string option;  (* sources pinned to a node (data origin) *)
}

type t = { dag_name : string; tasks : task array }

let task ?(pinned = None) ?(impls = []) ~id ~name ~inputs ~out_bytes () =
  { id; name; impls; inputs; out_bytes; pinned }

let create dag_name tasks =
  let arr = Array.of_list tasks in
  Array.iteri
    (fun i t ->
      if t.id <> i then invalid_arg "dag: ids must be consecutive";
      List.iter
        (fun d -> if d >= i then invalid_arg "dag: inputs must precede tasks")
        t.inputs)
    arr;
  { dag_name; tasks = arr }

let size d = Array.length d.tasks
let find d id = d.tasks.(id)

let consumers d id =
  Array.to_list d.tasks
  |> List.filter_map (fun t -> if List.mem id t.inputs then Some t.id else None)

let total_flops d =
  Array.fold_left
    (fun acc t ->
      match t.impls with
      | Cpu { flops; _ } :: _ -> acc +. flops
      | _ -> acc)
    0.0 d.tasks

(* ---- generators ------------------------------------------------------------------ *)

(* Layered random DAG: [layers] layers of [width] tasks, each consuming 1-2
   tasks from the previous layer.  Deterministic in [seed]. *)
let layered ?(seed = 1) ~layers ~width ~flops ~bytes () =
  let rng = Everest_parallel.Rng.create seed in
  let rand m = Everest_parallel.Rng.int rng m in
  let tasks = ref [] in
  let id = ref 0 in
  let prev = ref [] in
  for l = 0 to layers - 1 do
    let this = ref [] in
    for w = 0 to width - 1 do
      let inputs =
        if l = 0 then []
        else
          let p = List.nth !prev (rand (List.length !prev)) in
          let q = List.nth !prev (rand (List.length !prev)) in
          List.sort_uniq compare [ p; q ]
      in
      let t =
        task ~id:!id ~name:(Printf.sprintf "t%d_%d" l w) ~inputs
          ~out_bytes:(int_of_float bytes)
          ~impls:[ Cpu { flops; bytes; threads = 1 } ]
          ()
      in
      this := !id :: !this;
      incr id;
      tasks := t :: !tasks
    done;
    prev := !this
  done;
  create "layered" (List.rev !tasks)

(* Fork-join: one source fans out to [width] parallel workers, joined by a
   reducer — the shape of ensemble weather processing. *)
let fork_join ?(name = "fork-join") ~width ~worker_flops ~worker_bytes
    ~chunk_bytes () =
  let src =
    task ~id:0 ~name:"source" ~inputs:[] ~out_bytes:(width * chunk_bytes)
      ~impls:[ Cpu { flops = 1e6; bytes = float_of_int (width * chunk_bytes); threads = 1 } ]
      ()
  in
  let workers =
    List.init width (fun i ->
        task ~id:(i + 1)
          ~name:(Printf.sprintf "worker%d" i)
          ~inputs:[ 0 ] ~out_bytes:chunk_bytes
          ~impls:[ Cpu { flops = worker_flops; bytes = worker_bytes; threads = 1 } ]
          ())
  in
  let join =
    task ~id:(width + 1) ~name:"reduce"
      ~inputs:(List.init width (fun i -> i + 1))
      ~out_bytes:chunk_bytes
      ~impls:[ Cpu { flops = 1e7; bytes = float_of_int (width * chunk_bytes); threads = 1 } ]
      ()
  in
  create name ((src :: workers) @ [ join ])
