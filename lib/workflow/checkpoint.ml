(* Crash-consistent checkpointing for the workflow executor.

   The executor is a deterministic function of (cluster, plan, faults,
   policy), so its recovery model is journaled replay: every first
   completion of a task is one write-ahead record, and a restarted run
   re-executes the plan from t=0 while *verifying* each re-derived
   completion against the journal — any divergence is a typed error, not
   a silently different answer.  Snapshots are not restore points here
   (there is no state to warp into a half-built Desim heap); they are
   integrity anchors: every [every] completions the executor's resumable
   digest — completion counts, finish times, lineage, RNG position — is
   written, and replay byte-compares the re-derived digest when it passes
   the same completion count.  Snapshot boundaries are also where lineage
   is pruned, which is what bounds replica-tracking memory on long runs
   (and, because pruning happens at the same counts in the original and
   the replayed run, never perturbs byte-identity). *)

module Store = Everest_recovery.Store
module Codec = Everest_recovery.Codec

type mode = Live | Replay of string list ref

type t = {
  ck_store : Store.t;
  ck_every : int;
  mutable ck_mode : mode;
  mutable ck_completions : int;
  mutable ck_replayed : int;
  mutable ck_next_snap : int;
  (* integrity anchor carried by the resume plan: the digest the original
     run wrote at [ck_anchor_count] completions *)
  mutable ck_anchor : (int * string) option;
}

let snapshot_body ~completions state =
  let w = Codec.writer () in
  Codec.int w completions;
  Codec.str w state;
  Codec.contents w

let decode_snapshot raw =
  let r = Codec.reader raw in
  let completions = Codec.r_int r in
  let state = Codec.r_str r in
  (completions, state)

let create ~store ~every =
  if every <= 0 then invalid_arg "Checkpoint.create: every <= 0";
  { ck_store = store; ck_every = every; ck_mode = Live; ck_completions = 0;
    ck_replayed = 0; ck_next_snap = 0; ck_anchor = None }

let resume ~store ~every =
  if every <= 0 then invalid_arg "Checkpoint.resume: every <= 0";
  let plan = Store.plan_resume ~genesis:true store in
  let anchor =
    try decode_snapshot plan.Store.r_state
    with Codec.Decode why ->
      raise (Store.Recovery_error (Store.Corrupt ("snapshot schema: " ^ why)))
  in
  { ck_store = store; ck_every = every;
    ck_mode =
      (match plan.Store.r_tail with [] -> Live | tail -> Replay (ref tail));
    ck_completions = 0; ck_replayed = 0;
    ck_next_snap = plan.Store.r_next_snapshot_index;
    ck_anchor = Some anchor }

let resumed t = t.ck_anchor <> None
let replayed t = t.ck_replayed
let completions t = t.ck_completions

(* Genesis: executed before the first task launches.  A fresh run anchors
   snapshot 0 at zero completions; a resumed run whose anchor *is* the
   genesis snapshot verifies the zero-state digest immediately. *)
let start t ~state =
  match t.ck_anchor with
  | None ->
      Store.write_snapshot t.ck_store ~index:0 (snapshot_body ~completions:0 (state ()));
      t.ck_next_snap <- 1
  | Some (0, anchor) ->
      let got = state () in
      if not (String.equal anchor got) then
        raise
          (Store.Recovery_error
             (Store.Replay_divergence { expected = anchor; got }))
  | Some _ -> ()

let verify_anchor t =
  match t.ck_anchor with
  | Some (count, anchor) when count = t.ck_completions ->
      fun got ->
        if not (String.equal anchor got) then
          raise
            (Store.Recovery_error
               (Store.Replay_divergence { expected = anchor; got }))
  | _ -> fun _ -> ()

(* One first-completion: WAL record (live) or replay verification, then,
   at [every]-completion boundaries, prune + snapshot (live) / anchor
   check (replay).  [state] must be a pure digest of the resumable state;
   [prune] runs at boundaries in *both* modes so pruning never makes the
   replayed run diverge. *)
let on_complete t ~task ~now ~node ~state ~prune =
  let payload =
    let w = Codec.writer () in
    Codec.int w task;
    Codec.float w now;
    Codec.str w node;
    Codec.contents w
  in
  (match t.ck_mode with
  | Live -> Store.append t.ck_store payload
  | Replay q -> (
      match !q with
      | [] ->
          t.ck_mode <- Live;
          Store.append t.ck_store payload
      | expected :: rest ->
          if not (String.equal expected payload) then
            raise
              (Store.Recovery_error
                 (Store.Replay_divergence { expected; got = payload }));
          t.ck_replayed <- t.ck_replayed + 1;
          q := rest;
          if rest = [] then t.ck_mode <- Live));
  t.ck_completions <- t.ck_completions + 1;
  if t.ck_completions mod t.ck_every = 0 then begin
    ignore (prune () : int);
    match t.ck_mode with
    | Live ->
        Store.write_snapshot t.ck_store ~index:t.ck_next_snap
          (snapshot_body ~completions:t.ck_completions (state ()));
        t.ck_next_snap <- t.ck_next_snap + 1
    | Replay _ -> verify_anchor t (state ())
  end
