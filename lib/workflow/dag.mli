(** Workflow task graphs (the HyperLoom execution plan).

    A task carries one or more implementations (the compiler's variants):
    software on some number of threads, or a synthesized FPGA kernel.  The
    scheduler picks a node and an implementation per task; the executor
    replays the plan on the simulated platform. *)

type impl =
  | Cpu of { flops : float; bytes : float; threads : int }
  | Fpga of {
      bitstream : string;
      estimate : Everest_hls.Estimate.t;
      in_bytes : int;
      out_bytes : int;
    }

val impl_name : impl -> string

type task = {
  id : int;
  name : string;
  impls : impl list;  (** Non-empty. *)
  inputs : int list;  (** Producer task ids (must precede this task). *)
  out_bytes : int;
  pinned : string option;  (** Sources pinned to a node (data origin). *)
}

type t = {
  dag_name : string;
  tasks : task array;
  mutable rev_adj : (task array * int array array) option;
      (** Cached reverse adjacency (consumer ids per producer), built once
          at construction; valid while its first component is physically
          the current [tasks] array, so functional updates of [tasks] get
          a fresh index lazily rather than a stale one.  Use the accessors
          below, not this field. *)
}

val task :
  ?pinned:string option ->
  ?impls:impl list ->
  id:int ->
  name:string ->
  inputs:int list ->
  out_bytes:int ->
  unit ->
  task

(** @raise Invalid_argument unless ids are consecutive, every input precedes
    its task, and no task lists an input twice (duplicates would deadlock
    the executor: it counts raw inputs but producers signal deduplicated
    consumers).  Messages name the dag, the offending task id and name, and
    the bad input id. *)
val create : string -> task list -> t

val size : t -> int
val find : t -> int -> task

(** Consumer task ids of [id] in ascending order, O(out-degree) from the
    cached reverse adjacency (duplicate inputs collapse to one edge). *)
val consumers : t -> int -> int list

(** Same consumers without the list copy (do not mutate the array). *)
val consumers_array : t -> int -> int array

val iter_consumers : t -> int -> (int -> unit) -> unit
val out_degree : t -> int -> int

(** The historical O(n·deg) scan — the reference [consumers] is
    property-tested against, and the quadratic baseline of bench e17. *)
val consumers_naive : t -> int -> int list

val total_flops : t -> float

(** {2 Generators} *)

(** Layered random DAG (deterministic in [seed]): [layers] layers of [width]
    tasks, each consuming one or two tasks of the previous layer. *)
val layered :
  ?seed:int -> layers:int -> width:int -> flops:float -> bytes:float -> unit -> t

(** One source fanning out to [width] workers joined by a reducer — the
    shape of ensemble weather processing. *)
val fork_join :
  ?name:string ->
  width:int ->
  worker_flops:float ->
  worker_bytes:float ->
  chunk_bytes:int ->
  unit ->
  t

(** [members] independent [stages]-deep chains fed by one source and joined
    by a reducer — the Estee "ensemble of simulations" family.  Per-member
    work is jittered by up to 2x, deterministic in [seed], so members
    straggle like real ensembles. *)
val ensemble :
  ?seed:int ->
  members:int ->
  stages:int ->
  stage_flops:float ->
  stage_bytes:float ->
  unit ->
  t
