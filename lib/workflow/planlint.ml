(* Planlint: static sanitization of execution plans before they run.

   The analyzer re-derives everything it asserts from first principles —
   it never trusts the DAG's construction-time invariants (functional
   updates and in-place mutation can break them) nor the cached reverse
   adjacency (it cross-checks it instead, EV103).  The expensive part, the
   happens-before proof, runs over a chain-decomposition reachability
   index: chains are the plan's per-node serialization sequences in
   topological order, so with k assigned nodes the index is n·k ints built
   in one reverse-topological pass and every "is the producer ordered
   before this consumer" query is an O(1) array compare.  A million-task
   plan lints in a small fraction of the time HEFT took to produce it
   (bench e18 gates <5%).

   Diagnostics reuse the Everest_analysis.Lint shapes so the CLI renders
   plan reports and IR reports identically; emission is capped per code so
   a corrupt 10⁶-task plan reports the first few dozen instances and a
   tally, not a million lines. *)

open Everest_platform
module Lint = Everest_analysis.Lint
module Loc = Everest_ir.Loc
module Slo = Everest_observe.Slo

exception Plan_invalid of { plan : string; diags : Lint.diag list }

let codes =
  [ ("EV100", Lint.Error,
     "dangling input: input id outside the task array (or task id \
      disagreeing with its index)");
    ("EV101", Lint.Error,
     "duplicate input: the executor counts raw inputs but producers signal \
      deduplicated consumers, so the task can never launch");
    ("EV102", Lint.Error, "dependency cycle among tasks");
    ("EV103", Lint.Error,
     "stale reverse-adjacency cache: tasks mutated in place after \
      construction (a superseded cache from a functional update is Info — \
      it is rebuilt lazily by design)");
    ("EV110", Lint.Error,
     "precedence edge of the reference DAG missing from the plan's DAG: \
      the executor will not wait for the producer");
    ("EV111", Lint.Error,
     "happens-before violation: nothing in the plan (data edges + per-node \
      serialization) orders the consumer after the producer");
    ("EV112", Lint.Error,
     "plan shape mismatch: assignments do not cover the task array");
    ("EV120", Lint.Error,
     "pinned task placed off its pin (warning when the pin is \
      excluded/dead)");
    ("EV121", Lint.Error, "plan references an unknown or excluded node");
    ("EV122", Lint.Error,
     "FPGA implementation on a node without an FPGA (warning when no node \
      has one, or a pin forces it: the executor degrades to CPU)");
    ("EV123", Lint.Error,
     "assigned implementation is not one of the task's implementations");
    ("EV130", Lint.Warning,
     "peak concurrent FPGA demand exceeds the node's role slots (the run \
      will serialize on slot contention)");
    ("EV131", Lint.Warning,
     "distinct bitstreams exceed role slots: plan order forces repeated \
      partial reconfiguration");
    ("EV140", Lint.Error,
     "SLO deadline below the plan's critical-path lower bound: unmeetable \
      before any contention") ]

let severity_of code =
  let rec find = function
    | [] -> Lint.Error
    | (c, s, _) :: rest -> if String.equal c code then s else find rest
  in
  find codes

(* ---- capped diagnostic emitter ----------------------------------------------------- *)

let max_per_code = 50

type emitter = {
  em_func : string;  (* the dag name *)
  em_loc : Loc.t;  (* plan:<policy> *)
  mutable em_rev : Lint.diag list;
  em_counts : (string, int) Hashtbl.t;
}

let emitter (plan : Scheduler.plan) =
  { em_func = plan.Scheduler.dag.Dag.dag_name;
    em_loc = Loc.name ("plan:" ^ plan.Scheduler.policy);
    em_rev = [];
    em_counts = Hashtbl.create 16 }

let emit em ?severity ~code ~op message =
  let n = Option.value ~default:0 (Hashtbl.find_opt em.em_counts code) in
  Hashtbl.replace em.em_counts code (n + 1);
  if n < max_per_code then
    em.em_rev <-
      { Lint.code;
        severity = Option.value ~default:(severity_of code) severity;
        in_func = em.em_func; op_name = op; message; loc = em.em_loc }
      :: em.em_rev

let drain em =
  (* overflow tallies ride at severity Info: the capped instances already
     carried the rule's severity, the tally just records the magnitude *)
  let overflow =
    Hashtbl.fold
      (fun code n acc ->
        if n > max_per_code then
          { Lint.code; severity = Lint.Info; in_func = em.em_func;
            op_name = "…";
            message =
              Printf.sprintf "%d further %s diagnostic(s) suppressed"
                (n - max_per_code) code;
            loc = em.em_loc }
          :: acc
        else acc)
      em.em_counts []
  in
  List.rev em.em_rev
  @ List.sort (fun a b -> compare a.Lint.code b.Lint.code) overflow

let task_op (t : Dag.task) i =
  if String.length t.Dag.name = 0 then Printf.sprintf "task %d" i
  else Printf.sprintf "task %d (%s)" i t.Dag.name

(* ---- structure: deduped edges + topological order ---------------------------------- *)

(* Per-task deduplicated producer lists in CSR form ([st_off]/[st_src],
   producers of task t at [st_off.(t) .. st_off.(t+1))], ascending), plus a
   topological order.  When construction-time ordering (inputs < id = index)
   holds, ascending ids ARE a topological order and [st_order] is [None];
   otherwise a Kahn pass orders (and detects cycles in) the graph. *)
type structure = {
  st_n : int;
  st_off : int array;
  st_src : int array;
  st_order : int array option;  (* None = ascending ids *)
  st_rank : int array option;  (* topological rank when st_order <> None *)
  st_cyclic : int;  (* number of tasks trapped in cycles; 0 = acyclic *)
}

let st_edges st = st.st_off.(st.st_n)

let iter_order st f =
  match st.st_order with
  | None -> for i = 0 to st.st_n - 1 do f i done
  | Some o -> Array.iter f o

let iter_order_rev st f =
  match st.st_order with
  | None -> for i = st.st_n - 1 downto 0 do f i done
  | Some o -> for k = Array.length o - 1 downto 0 do f o.(k) done

(* Deduped, validity-filtered producers.  [report] sees (consumer, input,
   kind) for every defect; kind is [`Dangling] or [`Duplicate]. *)
let build_structure ?report (tasks : Dag.task array) =
  let n = Array.length tasks in
  let report k t d = match report with Some f -> f k t d | None -> () in
  let off = Array.make (n + 1) 0 in
  let ordered = ref true in
  (* pass 1: count valid deduped inputs per task *)
  let count_valid t inputs =
    match inputs with
    | [] -> 0
    | [ d ] ->
        if d < 0 || d >= n then (report `Dangling t d; 0)
        else begin
          if d >= t then ordered := false;
          1
        end
    | ds ->
        (* fast path: strictly ascending and in range (how [Dag.create]
           leaves them) — no sort, no allocation *)
        let rec asc prev cnt = function
          | [] -> cnt
          | d :: rest ->
              if d > prev && d < n then begin
                if d >= t then ordered := false;
                asc d (cnt + 1) rest
              end
              else -1
        in
        let fast = asc (-1) 0 ds in
        if fast >= 0 then fast
        else begin
          let sorted = List.sort compare ds in
          let k = ref 0 and prev = ref min_int and first = ref true in
          List.iter
            (fun d ->
              if d < 0 || d >= n then report `Dangling t d
              else if (not !first) && d = !prev then report `Duplicate t d
              else begin
                if d >= t then ordered := false;
                incr k
              end;
              prev := d;
              first := false)
            sorted;
          !k
        end
  in
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i) + count_valid i tasks.(i).Dag.inputs
  done;
  let m = off.(n) in
  let src = Array.make (max 1 m) 0 in
  let fill = Array.copy off in
  for i = 0 to n - 1 do
    match tasks.(i).Dag.inputs with
    | [] -> ()
    | [ d ] ->
        if d >= 0 && d < n then begin
          src.(fill.(i)) <- d;
          fill.(i) <- fill.(i) + 1
        end
    | ds ->
        let rec asc prev = function
          | [] -> true
          | d :: rest -> d > prev && d < n && asc d rest
        in
        if asc (-1) ds then
          List.iter
            (fun d ->
              src.(fill.(i)) <- d;
              fill.(i) <- fill.(i) + 1)
            ds
        else
          List.iter
            (fun d ->
              if d >= 0 && d < n then begin
                src.(fill.(i)) <- d;
                fill.(i) <- fill.(i) + 1
              end)
            (List.sort_uniq compare ds)
  done;
  if !ordered then
    { st_n = n; st_off = off; st_src = src; st_order = None; st_rank = None;
      st_cyclic = 0 }
  else begin
    (* Kahn over the filtered edges; out-edges come from a local transpose
       (the dag's cached adjacency cannot be trusted here) *)
    let outdeg = Array.make n 0 in
    Array.iter (fun d -> outdeg.(d) <- outdeg.(d) + 1) src;
    let aoff = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      aoff.(i + 1) <- aoff.(i) + outdeg.(i)
    done;
    let adst = Array.make (max 1 m) 0 in
    let afill = Array.copy aoff in
    for t = 0 to n - 1 do
      for e = off.(t) to off.(t + 1) - 1 do
        let d = src.(e) in
        adst.(afill.(d)) <- t;
        afill.(d) <- afill.(d) + 1
      done
    done;
    let indeg = Array.make n 0 in
    for t = 0 to n - 1 do
      indeg.(t) <- off.(t + 1) - off.(t)
    done;
    let order = Array.make n 0 in
    let head = ref 0 and tail = ref 0 in
    for i = 0 to n - 1 do
      if indeg.(i) = 0 then begin
        order.(!tail) <- i;
        incr tail
      end
    done;
    while !head < !tail do
      let v = order.(!head) in
      incr head;
      for e = aoff.(v) to aoff.(v + 1) - 1 do
        let w = adst.(e) in
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then begin
          order.(!tail) <- w;
          incr tail
        end
      done
    done;
    let cyclic = n - !tail in
    let order = if cyclic = 0 then order else Array.sub order 0 !tail in
    let rank = Array.make n max_int in
    Array.iteri (fun k v -> rank.(v) <- k) order;
    { st_n = n; st_off = off; st_src = src; st_order = Some order;
      st_rank = Some rank; st_cyclic = cyclic }
  end

(* ---- chains + reachability index --------------------------------------------------- *)

(* Chains: tasks grouped by assigned node, ordered topologically inside
   each group (the order any serialization of the plan's static timeline
   executes them in).  The index row of vertex v stores, per chain c, the
   smallest position in c among vertices reachable from v through plan
   order (data edges + chain succession); membership of w's chain position
   then answers reaches(v, w) in O(1). *)
type reach = {
  r_n : int;
  r_k : int;
  r_chain : int array;  (* task -> chain id *)
  r_pos : int array;  (* task -> position within its chain *)
  r_label : int array;  (* n·k, min reachable position per chain *)
}

let build_reach st (assignments : Scheduler.assignment array)
    ~(consumers : int -> int array) =
  let n = st.st_n in
  let chain = Array.make (max 1 n) 0 in
  let tbl = Hashtbl.create 32 in
  let k = ref 0 in
  Array.iteri
    (fun i (a : Scheduler.assignment) ->
      let c =
        match Hashtbl.find_opt tbl a.Scheduler.node with
        | Some c -> c
        | None ->
            let c = !k in
            Hashtbl.add tbl a.Scheduler.node c;
            incr k;
            c
      in
      chain.(i) <- c)
    assignments;
  let k = max 1 !k in
  let pos = Array.make (max 1 n) 0 in
  let chain_next = Array.make (max 1 n) (-1) in
  let last = Array.make k (-1) in
  let counts = Array.make k 0 in
  iter_order st (fun v ->
      let c = chain.(v) in
      pos.(v) <- counts.(c);
      counts.(c) <- counts.(c) + 1;
      if last.(c) >= 0 then chain_next.(last.(c)) <- v;
      last.(c) <- v);
  let label = Array.make (max 1 (n * k)) max_int in
  let merge_from v w =
    let bv = v * k and bw = w * k in
    for c = 0 to k - 1 do
      let x = Array.unsafe_get label (bw + c) in
      if x < Array.unsafe_get label (bv + c) then
        Array.unsafe_set label (bv + c) x
    done
  in
  iter_order_rev st (fun v ->
      if chain_next.(v) >= 0 then merge_from v chain_next.(v);
      Array.iter (fun w -> merge_from v w) (consumers v);
      let own = (v * k) + chain.(v) in
      if pos.(v) < label.(own) then label.(own) <- pos.(v));
  { r_n = n; r_k = k; r_chain = chain; r_pos = pos; r_label = label }

(* Strict ordering: v's own label includes itself, so a strict query on the
   same chain needs pos(w) > pos(v); across chains the label is already
   strictly "reachable through at least the recording vertex". *)
let reach_query r u v =
  if u < 0 || v < 0 || u >= r.r_n || v >= r.r_n || u = v then false
  else
    let cu = r.r_chain.(u) and cv = r.r_chain.(v) in
    let lbl = r.r_label.((u * r.r_k) + cv) in
    if cu = cv then lbl <= r.r_pos.(v) && r.r_pos.(u) < r.r_pos.(v)
    else lbl <= r.r_pos.(v)

module Reach = struct
  type t = reach

  let build ?dag (plan : Scheduler.plan) =
    let dag = Option.value ~default:plan.Scheduler.dag dag in
    let bad = ref false in
    let st =
      build_structure ~report:(fun _ _ _ -> bad := true) dag.Dag.tasks
    in
    if !bad then invalid_arg "Planlint.Reach.build: malformed inputs";
    if st.st_cyclic > 0 then invalid_arg "Planlint.Reach.build: cyclic DAG";
    if Array.length plan.Scheduler.assignments <> st.st_n then
      invalid_arg "Planlint.Reach.build: plan does not cover the DAG";
    (* consumers come from a local transpose: build must not force (or
       trust) the dag's cached adjacency *)
    let outdeg = Array.make (max 1 st.st_n) 0 in
    Array.iter (fun d -> outdeg.(d) <- outdeg.(d) + 1) st.st_src;
    let adj = Array.init st.st_n (fun i -> Array.make outdeg.(i) 0) in
    let fill = Array.make (max 1 st.st_n) 0 in
    for t = 0 to st.st_n - 1 do
      for e = st.st_off.(t) to st.st_off.(t + 1) - 1 do
        let d = st.st_src.(e) in
        adj.(d).(fill.(d)) <- t;
        fill.(d) <- fill.(d) + 1
      done
    done;
    build_reach st plan.Scheduler.assignments ~consumers:(fun v -> adj.(v))

  let tasks r = r.r_n
  let chains r = r.r_k
  let reaches = reach_query
end

(* ---- the analyzer ------------------------------------------------------------------ *)

type summary = {
  pl_diags : Lint.diag list;
  pl_tasks : int;
  pl_edges : int;
  pl_chains : int;
  pl_cp_lower_s : float;
}

(* binary search for [x] in the ascending slice [a.(lo..hi)) *)
let rec mem_sorted a x lo hi =
  if lo >= hi then false
  else
    let mid = (lo + hi) / 2 in
    let v = a.(mid) in
    if v = x then true
    else if v < x then mem_sorted a x (mid + 1) hi
    else mem_sorted a x lo mid

(* Raised by the single-pass analyzer when the plan is not in the clean
   construction-ordered shape; the general analyzer takes over and names
   the defect precisely.  Never escapes [analyze]. *)
exception Slow_path

(* ---- shared late passes (identical in the fast and general analyzers) ---- *)

(* FPGA slot pressure (EV130) + reconfiguration thrash (EV131) per node,
   over the per-chain (start, finish, bitstream) lists collected during the
   timeline replay *)
let slot_sweep em ~k ~(chain_node : Node.t option array) fpga_tasks =
  for ci = 0 to k - 1 do
    match chain_node.(ci) with
    | Some node when fpga_tasks.(ci) <> [] ->
        let slots =
          List.fold_left
            (fun acc (d : Node.fpga_dev) ->
              acc + d.Node.fspec.Spec.role_slots)
            0 node.Node.fpgas
        in
        let ftasks =
          List.sort
            (fun (s1, f1, _) (s2, f2, _) ->
              if s1 <> s2 then compare s1 s2 else compare f1 f2)
            fpga_tasks.(ci)
        in
        if slots > 0 then begin
          (* peak concurrent demand: sweep starts against the sorted
             finish times *)
          let finishes =
            List.sort compare (List.map (fun (_, f, _) -> f) ftasks)
          in
          let farr = Array.of_list finishes in
          let live = ref 0 and peak = ref 0 and fi = ref 0 in
          List.iter
            (fun (s, _, _) ->
              while !fi < Array.length farr && farr.(!fi) <= s do
                incr fi;
                decr live
              done;
              incr live;
              if !live > !peak then peak := !live)
            ftasks;
          if !peak > slots then
            emit em ~code:"EV130" ~op:("node " ^ node.Node.name)
              (Printf.sprintf
                 "peak concurrent FPGA demand %d exceeds %d role slot(s): \
                  the timeline will serialize on slot contention"
                 !peak slots);
          (* thrash: LRU over the role slots in plan order; every miss
             beyond the initial fills is a forced reconfiguration *)
          let distinct =
            List.sort_uniq compare (List.map (fun (_, _, b) -> b) ftasks)
          in
          if List.length distinct > slots then begin
            let cache = ref [] and misses = ref 0 in
            List.iter
              (fun (_, _, b) ->
                if List.mem b !cache then
                  cache := b :: List.filter (fun x -> x <> b) !cache
                else begin
                  incr misses;
                  cache :=
                    b
                    :: (if List.length !cache >= slots then
                          List.filteri
                            (fun i _ -> i < List.length !cache - 1)
                            !cache
                        else !cache)
                end)
              ftasks;
            let forced = !misses - slots in
            if forced > 0 then
              let reconfig_s =
                match node.Node.fpgas with
                | d :: _ -> d.Node.fspec.Spec.reconfig_s
                | [] -> 0.0
              in
              emit em ~code:"EV131" ~op:("node " ^ node.Node.name)
                (Printf.sprintf
                   "%d distinct bitstream(s) over %d role slot(s) force \
                    >=%d reconfiguration(s) in plan order (~%.3f s of \
                    thrash)"
                   (List.length distinct) slots forced
                   (float_of_int forced *. reconfig_s))
          end
        end
    | _ -> ()
  done

(* SLO feasibility (EV140): the contention-free critical path already
   exceeds a deadline *)
let slo_checks em cp_lb deadline_s slos =
  let deadline name limit =
    if cp_lb > limit then
      emit em ~code:"EV140" ~op:"plan"
        (Printf.sprintf
           "critical-path lower bound %.3fs exceeds %s deadline %.3fs \
            (unmeetable before any contention)"
           cp_lb name limit)
  in
  (match deadline_s with
  | Some limit -> deadline "the declared" limit
  | None -> ());
  List.iter
    (fun (s : Slo.spec) ->
      match s.Slo.objective with
      | Slo.Latency_quantile { limit_s; _ } ->
          deadline (Printf.sprintf "SLO %S" s.Slo.slo_name) limit_s
      | Slo.Availability _ | Slo.Completion_ratio _ -> ())
    slos

let analyze_general ?dag ?(excluded = []) ?(slos = []) ?deadline_s
    (c : Cluster.t) (plan : Scheduler.plan) : summary =
  let pdag = plan.Scheduler.dag in
  let tasks = pdag.Dag.tasks in
  let n = Array.length tasks in
  let em = emitter plan in
  let finish st chains cp =
    { pl_diags = drain em; pl_tasks = n;
      pl_edges = (match st with Some st -> st_edges st | None -> 0);
      pl_chains = chains; pl_cp_lower_s = cp }
  in
  (* EV112: shape — nothing else is meaningful if the plan doesn't cover
     the task array *)
  if Array.length plan.Scheduler.assignments <> n then begin
    emit em ~code:"EV112" ~op:"plan"
      (Printf.sprintf "%d assignment(s) for %d task(s)"
         (Array.length plan.Scheduler.assignments)
         n);
    finish None 0 0.0
  end
  else begin
    (* EV100/EV101 + structure (deduped edges, topological order, cycles) *)
    let st =
      build_structure
        ~report:(fun kind t d ->
          match kind with
          | `Dangling ->
              if tasks.(t).Dag.id <> t then ()  (* reported below *)
              else
                emit em ~code:"EV100" ~op:(task_op tasks.(t) t)
                  (Printf.sprintf
                     "input %d is outside the task array [0, %d)" d n)
          | `Duplicate ->
              emit em ~code:"EV101" ~op:(task_op tasks.(t) t)
                (Printf.sprintf
                   "input %d listed more than once: the executor counts \
                    raw inputs but the producer signals once, so this task \
                    can never launch"
                   d))
        tasks
    in
    (* ids must agree with indexes (everything downstream identifies tasks
       by index, as the executor does) *)
    Array.iteri
      (fun i (t : Dag.task) ->
        if t.Dag.id <> i then
          emit em ~code:"EV100" ~op:(task_op t i)
            (Printf.sprintf "task at index %d carries id %d" i t.Dag.id))
      tasks;
    if st.st_cyclic > 0 then begin
      (* smallest trapped id makes the report deterministic and gives a
         place to start untangling *)
      let example = ref (-1) in
      (match st.st_rank with
      | Some rank ->
          for i = n - 1 downto 0 do
            if rank.(i) = max_int then example := i
          done
      | None -> ());
      emit em ~code:"EV102" ~op:"plan"
        (Printf.sprintf
           "%d task(s) trapped in dependency cycles (e.g. task %d)"
           st.st_cyclic !example)
    end;
    (* EV103: the cached reverse adjacency.  A cache keyed on a previous
       tasks array is benign (rebuilt lazily on next access) — Info.  A
       cache keyed on THIS array must agree with the actual inputs; if the
       tasks were mutated in place it will not, and every consumer walk in
       the executor follows the stale edges — Error. *)
    let adj_checked =
      match pdag.Dag.rev_adj with
      | None -> None
      | Some (arr, _) when arr != tasks ->
          emit em ~code:"EV103" ~severity:Lint.Info ~op:"plan"
            "reverse-adjacency cache refers to a superseded tasks array \
             (functional update); it will be rebuilt lazily";
          None
      | Some (_, adj) ->
          let total = ref 0 and stale = ref (Array.length adj <> n) in
          if not !stale then begin
            Array.iter (fun a -> total := !total + Array.length a) adj;
            if !total <> st_edges st then stale := true
            else begin
              (* both sides list each producer's consumers in ascending
                 order, so a positional cursor per row checks exact
                 equality in O(edges) — no per-edge binary search *)
              let cursor = Array.make (max 1 n) 0 in
              (try
                 for t = 0 to n - 1 do
                   for e = st.st_off.(t) to st.st_off.(t + 1) - 1 do
                     let d = Array.unsafe_get st.st_src e in
                     let row = adj.(d) in
                     let cu = Array.unsafe_get cursor d in
                     if cu >= Array.length row || row.(cu) <> t then
                       raise Exit;
                     Array.unsafe_set cursor d (cu + 1)
                   done
                 done
               with Exit -> stale := true)
            end
          end;
          if !stale then begin
            emit em ~code:"EV103" ~op:"plan"
              "reverse-adjacency cache disagrees with the task inputs: the \
               tasks array was mutated in place after construction (the \
               executor would follow the stale edges)";
            None
          end
          else Some adj
    in
    let acyclic = st.st_cyclic = 0 in
    (* ---- chains: one per distinct assigned node ---- *)
    (* Node names in a real plan are physically shared (the scheduler hands
       out the node's own string), so resolve each task's chain by a
       pointer scan over the few known chains before falling back to
       string comparison — no per-task hashing. *)
    let assignments = plan.Scheduler.assignments in
    let chain = Array.make (max 1 n) 0 in
    let chain_names = ref [] and chain_count = ref 0 in
    let rec resolve name = function
      | (nm, id) :: rest ->
          if nm == name || String.equal nm name then id
          else resolve name rest
      | [] ->
          let id = !chain_count in
          incr chain_count;
          chain_names := (name, id) :: !chain_names;
          id
    in
    Array.iteri
      (fun i (a : Scheduler.assignment) ->
        chain.(i) <- resolve a.Scheduler.node !chain_names)
      assignments;
    let k = !chain_count in
    let chain_node = Array.make (max 1 k) None in
    let chain_excluded = Array.make (max 1 k) false in
    let chain_fpga = Array.make (max 1 k) false in
    List.iter
      (fun (name, id) ->
        let node = Hashtbl.find_opt c.Cluster.node_tbl name in
        chain_node.(id) <- node;
        chain_excluded.(id) <- List.exists (String.equal name) excluded;
        chain_fpga.(id) <-
          (match node with Some nd -> Node.has_fpga nd | None -> false))
      !chain_names;
    let is_excluded name = List.exists (String.equal name) excluded in
    let cluster_has_fpga = List.exists Node.has_fpga c.Cluster.nodes in
    (* ---- capability / placement checks for one task ---- *)
    let cap_check i (a : Scheduler.assignment) (t : Dag.task) ci =
      match chain_node.(ci) with
      | None ->
          emit em ~code:"EV121" ~op:(task_op t i)
            (Printf.sprintf "assigned to unknown node %S" a.Scheduler.node)
      | Some _ ->
          if chain_excluded.(ci) then
            emit em ~code:"EV121" ~op:(task_op t i)
              (Printf.sprintf "assigned to excluded node %S"
                 a.Scheduler.node);
          (match t.Dag.pinned with
          | Some p when not (String.equal p a.Scheduler.node) ->
              if is_excluded p then
                emit em ~code:"EV120" ~severity:Lint.Warning
                  ~op:(task_op t i)
                  (Printf.sprintf
                     "pinned to excluded node %S, placed on %S (repair \
                      had no choice)"
                     p a.Scheduler.node)
              else
                emit em ~code:"EV120" ~op:(task_op t i)
                  (Printf.sprintf "pinned to %S but placed on %S" p
                     a.Scheduler.node)
          | _ -> ());
          (if t.Dag.impls <> [] then
             (* scheduler-produced plans share the impl value physically
                with the task's own list, so try pointer equality first *)
             let offered =
               List.exists (fun impl -> impl == a.Scheduler.impl) t.Dag.impls
               || List.exists (fun impl -> impl = a.Scheduler.impl) t.Dag.impls
             in
             if not offered then
               emit em ~code:"EV123" ~op:(task_op t i)
                 (Printf.sprintf
                    "assigned implementation %s is not offered by the \
                     task (offers: %s)"
                    (Dag.impl_name a.Scheduler.impl)
                    (String.concat ", "
                       (List.map Dag.impl_name t.Dag.impls))));
          (match a.Scheduler.impl with
          | Dag.Fpga { bitstream; _ } when not chain_fpga.(ci) ->
              let pinned_here =
                match t.Dag.pinned with
                | Some p -> String.equal p a.Scheduler.node
                | None -> false
              in
              let severity =
                (* misrouting (an FPGA-capable node exists, nothing forced
                   this placement) is an error; designed degradation
                   (FPGA-less cluster, or the pin wins) is a warning *)
                if cluster_has_fpga && not pinned_here then Lint.Error
                else Lint.Warning
              in
              emit em ~code:"EV122" ~severity ~op:(task_op t i)
                (Printf.sprintf
                   "FPGA implementation %S on FPGA-less node %S%s: the \
                    executor will degrade it to CPU"
                   bitstream a.Scheduler.node
                   (if cluster_has_fpga && not pinned_here then
                      " while FPGA-capable nodes exist"
                    else ""))
          | _ -> ())
    in
    if not acyclic then begin
      (* no usable order: still run the per-task placement checks *)
      Array.iteri
        (fun i (a : Scheduler.assignment) ->
          cap_check i a tasks.(i) chain.(i))
        assignments;
      finish (Some st) k 0.0
    end
    else begin
      (* ---- happens-before ----
         The executor enforces exactly the plan DAG's data edges, and every
         one of those edges is by construction an edge of the plan-order
         graph — so when the plan is checked against its own DAG the proof
         is vacuous and the reachability index is not built at all.  The
         index (and the EV110/EV111 obligations) only come into play when a
         *different* reference DAG is supplied: then each of its precedence
         edges must be found in the plan's DAG (EV110) and ordered by the
         plan (EV111), which verifies cone repairs and functional updates
         instead of trusting them. *)
      (match dag with
      | Some rdag when rdag.Dag.tasks != tasks ->
          let consumers =
            match adj_checked with
            | Some adj -> fun v -> adj.(v)
            | None ->
                (* cross-checked cache unavailable: local transpose *)
                let outdeg = Array.make (max 1 n) 0 in
                Array.iter (fun d -> outdeg.(d) <- outdeg.(d) + 1) st.st_src;
                let adj = Array.init n (fun i -> Array.make outdeg.(i) 0) in
                let fill = Array.make (max 1 n) 0 in
                for t = 0 to n - 1 do
                  for e = st.st_off.(t) to st.st_off.(t + 1) - 1 do
                    let d = st.st_src.(e) in
                    adj.(d).(fill.(d)) <- t;
                    fill.(d) <- fill.(d) + 1
                  done
                done;
                fun v -> adj.(v)
          in
          let r = build_reach st assignments ~consumers in
          let rtasks = rdag.Dag.tasks in
          let rn = min (Array.length rtasks) n in
          if Array.length rtasks <> n then
            emit em ~code:"EV112" ~op:"plan"
              (Printf.sprintf
                 "reference DAG has %d task(s), the plan's DAG %d"
                 (Array.length rtasks) n);
          for t = 0 to rn - 1 do
            (* task records are shared between a dag and its functional
               update except where edited — skip untouched tasks *)
            if rtasks.(t) != tasks.(t) then
              List.iter
                (fun d ->
                  if d >= 0 && d < n && d <> t then begin
                    let lo = st.st_off.(t) and hi = st.st_off.(t + 1) in
                    if not (mem_sorted st.st_src d lo hi) then
                      emit em ~code:"EV110" ~op:(task_op rtasks.(t) t)
                        (Printf.sprintf
                           "dependence on task %d (%s) was dropped from \
                            the plan's DAG"
                           d rtasks.(d).Dag.name);
                    if not (reach_query r d t) then
                      emit em ~code:"EV111" ~op:(task_op rtasks.(t) t)
                        (Printf.sprintf
                           "no plan ordering places producer %d (%s) \
                            before this consumer"
                           d rtasks.(d).Dag.name)
                  end)
                (List.sort_uniq compare rtasks.(t).Dag.inputs)
          done
      | _ -> ());
      (* ---- fused hot loop: capability + ASAP timeline + FPGA collection ----
         One pass in topological order.  Each task record is loaded exactly
         once and feeds the placement checks, the contention-free timeline
         replay (producers already finished by topological order), and the
         per-chain FPGA task lists for the slot-pressure sweep — at 10^6
         tasks the analyzer is memory-bound, so the passes are fused. *)
      (* transfer times are affine in bytes per node pair; memoize the two
         coefficients per (src chain, dst chain) *)
      let x_base = Array.make (k * k) nan in
      let x_per = Array.make (k * k) 0.0 in
      (* cold path: probe the platform model once per node pair *)
      let fill_xfer slot cs cd =
        (match (chain_node.(cs), chain_node.(cd)) with
        | Some src, Some dst ->
            let t0 = Cluster.transfer_time c ~src ~dst ~bytes:0 in
            let t1 = Cluster.transfer_time c ~src ~dst ~bytes:1_000_000 in
            x_base.(slot) <- t0;
            x_per.(slot) <- (t1 -. t0) /. 1_000_000.0
        | _ ->
            x_base.(slot) <- 0.0;
            x_per.(slot) <- 0.0);
        x_base.(slot)
      in
      let exec_est (a : Scheduler.assignment) ci =
        match chain_node.(ci) with
        | None -> 0.0
        | Some node -> (
            let est = Scheduler.exec_estimate node a.Scheduler.impl in
            if Float.is_finite est then est
            else
              (* the executor's explicit degradation path for an FPGA impl
                 on an FPGA-less node: estimate cycles on the host CPU *)
              match a.Scheduler.impl with
              | Dag.Fpga { estimate; in_bytes; out_bytes; _ } ->
                  Spec.cpu_time node.Node.cpu
                    ~flops:
                      (float_of_int estimate.Everest_hls.Estimate.cycles
                      *. 10.0)
                    ~bytes:(float_of_int (in_bytes + out_bytes))
                    ~threads:1
              | Dag.Cpu _ -> 0.0)
      in
      let start = Array.make (max 1 n) 0.0 in
      let fin = Array.make (max 1 n) 0.0 in
      let outb = Array.make (max 1 n) 0.0 in
      let fpga_tasks = Array.make (max 1 k) [] in
      iter_order st (fun i ->
          let a = assignments.(i) in
          let t = tasks.(i) in
          let ci = chain.(i) in
          Array.unsafe_set outb i (float_of_int t.Dag.out_bytes);
          cap_check i a t ci;
          let ready = ref 0.0 in
          for e = st.st_off.(i) to st.st_off.(i + 1) - 1 do
            let d = Array.unsafe_get st.st_src e in
            let cd = Array.unsafe_get chain d in
            let arr =
              if ci = cd then Array.unsafe_get fin d
              else begin
                let slot = (cd * k) + ci in
                let base = Array.unsafe_get x_base slot in
                let base =
                  if Float.is_nan base then fill_xfer slot cd ci else base
                in
                Array.unsafe_get fin d +. base
                +. (Array.unsafe_get x_per slot *. Array.unsafe_get outb d)
              end
            in
            if arr > !ready then ready := arr
          done;
          Array.unsafe_set start i !ready;
          Array.unsafe_set fin i (!ready +. exec_est a ci);
          match a.Scheduler.impl with
          | Dag.Fpga { bitstream; _ } when chain_fpga.(ci) ->
              fpga_tasks.(ci) <-
                (start.(i), fin.(i), bitstream) :: fpga_tasks.(ci)
          | _ -> ());
      let cp_lb = Array.fold_left Float.max 0.0 (if n = 0 then [| 0.0 |] else fin) in
      slot_sweep em ~k ~chain_node fpga_tasks;
      slo_checks em cp_lb deadline_s slos;
      finish (Some st) k cp_lb
    end
  end

(* ---- single-pass fast path --------------------------------------------------------- *)

(* Chain capacity of the fast path: a plan using more distinct nodes than
   this (none of the shipped clusters comes close) falls back to the
   general analyzer rather than growing the tables. *)
let max_fast_chains = 64

(* mixes one edge into a commutative multiset hash (summed per edge); the
   two multiplies are independent so the mix pipelines — this guards
   against accidental cache staleness, not an adversary, so no final
   avalanche is needed *)
let edge_hash d t = (d * 0x9E3779B9) lxor (t * 0x85EBCA6B)

(* The overwhelmingly common case: the plan is checked against its own DAG
   and the DAG is in construction-ordered shape (ids = indexes, inputs
   strictly ascending below the task, as [Dag.create] guarantees).  Then a
   SINGLE walk over the tasks — the analyzer is memory-bound at 10^6 tasks,
   so pass count is what matters — performs the structural validation, the
   placement checks, the ASAP timeline and the FPGA collection, and the
   cached reverse adjacency is cross-checked against the inputs by a
   sequential multiset hash over the edges instead of a random-access
   positional compare.  The first structural anomaly raises [Slow_path]:
   defective plans go back through the general analyzer, which can name the
   defect precisely and does not need to be fast. *)
let analyze_fast ~excluded ~slos ?deadline_s (c : Cluster.t)
    (plan : Scheduler.plan) : summary =
  let pdag = plan.Scheduler.dag in
  let tasks = pdag.Dag.tasks in
  let n = Array.length tasks in
  let assignments = plan.Scheduler.assignments in
  let em = emitter plan in
  let adj_to_hash =
    match pdag.Dag.rev_adj with
    | Some (arr, adj) when arr == tasks ->
        if Array.length adj <> n then raise Slow_path;
        Some adj
    | Some _ ->
        emit em ~code:"EV103" ~severity:Lint.Info ~op:"plan"
          "reverse-adjacency cache refers to a superseded tasks array \
           (functional update); it will be rebuilt lazily";
        None
    | None -> None
  in
  let do_hash = adj_to_hash <> None in
  (* chains: one per distinct assigned node, tables filled at discovery *)
  let cap = max_fast_chains in
  (* chain ids fit a byte (cap = 64): a Bytes chain map keeps the per-task
     working set small *)
  let chain = Bytes.make (max 1 n) '\000' in
  let chain_names = ref [] and chain_count = ref 0 in
  let chain_node = Array.make cap None in
  let chain_excluded = Array.make cap false in
  let chain_fpga = Array.make cap false in
  let chain_cores = Array.make cap 1 in
  let chain_inv_fc = Array.make cap 0.0 in  (* 1 / (flops/s at one thread) *)
  let chain_inv_bw = Array.make cap 0.0 in  (* 1 / (bytes/s) *)
  let add_chain name =
    let id = !chain_count in
    if id >= cap then raise Slow_path;
    incr chain_count;
    chain_names := (name, id) :: !chain_names;
    (match Hashtbl.find_opt c.Cluster.node_tbl name with
    | Some node ->
        chain_node.(id) <- Some node;
        chain_fpga.(id) <- Node.has_fpga node;
        let cpu = node.Node.cpu in
        chain_cores.(id) <- cpu.Spec.cores;
        chain_inv_fc.(id) <-
          1.0 /. (cpu.Spec.freq_ghz *. 1e9 *. cpu.Spec.flops_per_cycle);
        chain_inv_bw.(id) <- 1.0 /. (cpu.Spec.mem_bw_gbs *. 1e9)
    | None -> ());
    chain_excluded.(id) <- List.exists (String.equal name) excluded;
    id
  in
  (* node names in a real plan are physically shared with the node's own
     string, so a pointer scan over the few known chains beats hashing *)
  let rec scan_chains name = function
    | (nm, id) :: rest ->
        if nm == name || String.equal nm name then id
        else scan_chains name rest
    | [] -> add_chain name
  in
  (* direct-mapped memo over a cheap shape hash: after warmup a lookup is
     three character loads and one pointer compare *)
  let memo_names = Array.make 256 "" in
  let memo_ci = Array.make 256 0 in
  let resolve name =
    let len = String.length name in
    if len = 0 then scan_chains name !chain_names
    else begin
      let s =
        ((len * 31)
        + (Char.code (String.unsafe_get name 0) * 7)
        + Char.code (String.unsafe_get name (len - 1)))
        land 255
      in
      if Array.unsafe_get memo_names s == name then Array.unsafe_get memo_ci s
      else begin
        let ci = scan_chains name !chain_names in
        memo_names.(s) <- name;
        memo_ci.(s) <- ci;
        ci
      end
    end
  in
  let is_excluded name = List.exists (String.equal name) excluded in
  let cluster_has_fpga = List.exists Node.has_fpga c.Cluster.nodes in
  (* transfer times are affine in bytes per node pair; memoized coefficients *)
  let x_base = Array.make (cap * cap) nan in
  let x_per = Array.make (cap * cap) 0.0 in
  let fill_xfer slot cs cd =
    (match (chain_node.(cs), chain_node.(cd)) with
    | Some src, Some dst ->
        let t0 = Cluster.transfer_time c ~src ~dst ~bytes:0 in
        let t1 = Cluster.transfer_time c ~src ~dst ~bytes:1_000_000 in
        x_base.(slot) <- t0;
        x_per.(slot) <- (t1 -. t0) /. 1_000_000.0
    | _ ->
        x_base.(slot) <- 0.0;
        x_per.(slot) <- 0.0);
    x_base.(slot)
  in
  let hash_adj adj =
    let total = ref 0 and h = ref 0 in
    for d = 0 to n - 1 do
      let row = Array.unsafe_get adj d in
      let len = Array.length row in
      total := !total + len;
      for j = 0 to len - 1 do
        h := !h + edge_hash d (Array.unsafe_get row j)
      done
    done;
    (!total, !h)
  in
  let fin = Array.make (max 1 n) 0.0 in
  let outb = Array.make (max 1 n) 0.0 in
  let fpga_tasks = Array.make cap [] in
  let edges = ref 0 and h_inputs = ref 0 in
  (* impl-offered membership, pointer equality first (no per-task closures) *)
  let rec impl_mem_phys x = function
    | [] -> false
    | y :: rest -> y == x || impl_mem_phys x rest
  in
  let rec impl_mem_struct x = function
    | [] -> false
    | y :: rest -> y = x || impl_mem_struct x rest
  in
  (* the per-task input walk, defined once: validates strict ascent, mixes
     the edge hash, and accumulates ASAP readiness into [fin.(i)] (float
     array cells stay unboxed; a captured [ref] would box every update —
     cell [i] is free as the accumulator because producers are all < i) *)
  let rec walk i ci prev = function
    | [] -> ()
    | d :: rest ->
        if d <= prev || d >= i then raise Slow_path;
        if do_hash then h_inputs := !h_inputs + edge_hash d i;
        incr edges;
        let cd = Char.code (Bytes.unsafe_get chain d) in
        let arr =
          if ci = cd then Array.unsafe_get fin d
          else begin
            let slot = (cd * max_fast_chains) + ci in
            let base = Array.unsafe_get x_base slot in
            let base =
              if Float.is_nan base then fill_xfer slot cd ci else base
            in
            Array.unsafe_get fin d +. base
            +. (Array.unsafe_get x_per slot *. Array.unsafe_get outb d)
          end
        in
        if arr > Array.unsafe_get fin i then Array.unsafe_set fin i arr;
        walk i ci d rest
  in
  (* look-ahead: the per-task loads form a dependent miss chain
     (assignment -> impl record -> boxed floats; task -> inputs/impls
     cells).  Touching task [i + pf_dist] here issues those misses early
     and independent of the current task, so they overlap instead of
     serializing — the analyzer is latency-bound, not bandwidth-bound. *)
  let pf_dist = 16 in
  let pf_sink = ref 0 in
  let touch j =
    let tp = Array.unsafe_get tasks j in
    let ap = Array.unsafe_get assignments j in
    let x =
      tp.Dag.out_bytes
      lxor (match tp.Dag.inputs with [] -> 0 | d :: _ -> d)
      lxor (match tp.Dag.impls with [] -> 0 | _ :: _ -> 1)
      lxor
      (match ap.Scheduler.impl with
      | Dag.Cpu { flops; bytes; threads } ->
          threads
          lxor (if flops > 0.0 then 1 else 0)
          lxor if bytes > 0.0 then 2 else 0
      | Dag.Fpga _ -> 0)
    in
    pf_sink := !pf_sink lxor x
  in
  for i = 0 to n - 1 do
    if i + pf_dist < n then touch (i + pf_dist);
    let a = Array.unsafe_get assignments i in
    let t = Array.unsafe_get tasks i in
    if t.Dag.id <> i then raise Slow_path;
    let ci = resolve a.Scheduler.node in
    Bytes.unsafe_set chain i (Char.unsafe_chr ci);
    Array.unsafe_set outb i (float_of_int t.Dag.out_bytes);
    (* placement checks (defects emit; they do not force the slow path) *)
    (match chain_node.(ci) with
    | None ->
        emit em ~code:"EV121" ~op:(task_op t i)
          (Printf.sprintf "assigned to unknown node %S" a.Scheduler.node)
    | Some _ ->
        if chain_excluded.(ci) then
          emit em ~code:"EV121" ~op:(task_op t i)
            (Printf.sprintf "assigned to excluded node %S" a.Scheduler.node);
        (match t.Dag.pinned with
        | Some p when not (String.equal p a.Scheduler.node) ->
            if is_excluded p then
              emit em ~code:"EV120" ~severity:Lint.Warning ~op:(task_op t i)
                (Printf.sprintf
                   "pinned to excluded node %S, placed on %S (repair had \
                    no choice)"
                   p a.Scheduler.node)
            else
              emit em ~code:"EV120" ~op:(task_op t i)
                (Printf.sprintf "pinned to %S but placed on %S" p
                   a.Scheduler.node)
        | _ -> ());
        (match t.Dag.impls with
        | [] -> ()
        | impls ->
            if
              (not (impl_mem_phys a.Scheduler.impl impls))
              && not (impl_mem_struct a.Scheduler.impl impls)
            then
              emit em ~code:"EV123" ~op:(task_op t i)
                (Printf.sprintf
                   "assigned implementation %s is not offered by the task \
                    (offers: %s)"
                   (Dag.impl_name a.Scheduler.impl)
                   (String.concat ", " (List.map Dag.impl_name impls))));
        (match a.Scheduler.impl with
        | Dag.Fpga { bitstream; _ } when not chain_fpga.(ci) ->
            let pinned_here =
              match t.Dag.pinned with
              | Some p -> String.equal p a.Scheduler.node
              | None -> false
            in
            let severity =
              if cluster_has_fpga && not pinned_here then Lint.Error
              else Lint.Warning
            in
            emit em ~code:"EV122" ~severity ~op:(task_op t i)
              (Printf.sprintf
                 "FPGA implementation %S on FPGA-less node %S%s: the \
                  executor will degrade it to CPU"
                 bitstream a.Scheduler.node
                 (if cluster_has_fpga && not pinned_here then
                    " while FPGA-capable nodes exist"
                  else ""))
        | _ -> ()));
    (* structure + ASAP readiness over the raw inputs: strictly ascending
       below the task, or bail (ids are topological, producers finished) *)
    walk i ci (-1) t.Dag.inputs;
    (* execution estimate, added to the readiness already in fin.(i); each
       branch stores directly so the float never crosses a match join *)
    match chain_node.(ci) with
    | None -> ()  (* unknown node (EV121 above): estimate 0 *)
    | Some node -> (
        match a.Scheduler.impl with
        | Dag.Cpu { flops; bytes; threads } ->
            (* [Spec.cpu_time] with per-chain reciprocals *)
            let comp =
              if threads <= 1 then flops *. Array.unsafe_get chain_inv_fc ci
              else
                flops *. Array.unsafe_get chain_inv_fc ci
                /. float_of_int (min threads chain_cores.(ci))
            in
            let mem = bytes *. Array.unsafe_get chain_inv_bw ci in
            Array.unsafe_set fin i
              (Array.unsafe_get fin i +. (if comp > mem then comp else mem))
        | Dag.Fpga { bitstream; estimate; in_bytes; out_bytes } ->
            let ready = Array.unsafe_get fin i in
            let e = Scheduler.exec_estimate node a.Scheduler.impl in
            let e =
              if Float.is_finite e then e
              else
                (* the executor's degradation path: cycles on the host CPU *)
                Spec.cpu_time node.Node.cpu
                  ~flops:
                    (float_of_int estimate.Everest_hls.Estimate.cycles
                    *. 10.0)
                  ~bytes:(float_of_int (in_bytes + out_bytes))
                  ~threads:1
            in
            Array.unsafe_set fin i (ready +. e);
            if chain_fpga.(ci) then
              fpga_tasks.(ci) <- (ready, ready +. e, bitstream) :: fpga_tasks.(ci))
  done;
  (* EV103: the cached reverse adjacency must carry exactly the edge
     multiset of the inputs — compared by commutative hash so both walks
     stay sequential.  A mismatch is re-diagnosed by the general path. *)
  (match adj_to_hash with
  | None -> ()
  | Some adj ->
      let total, h = hash_adj adj in
      if total <> !edges || h <> !h_inputs then raise Slow_path);
  let cp_lb =
    Array.fold_left Float.max 0.0 (if n = 0 then [| 0.0 |] else fin)
  in
  let k = max 1 !chain_count in
  slot_sweep em ~k ~chain_node fpga_tasks;
  slo_checks em cp_lb deadline_s slos;
  { pl_diags = drain em; pl_tasks = n; pl_edges = !edges;
    pl_chains = !chain_count; pl_cp_lower_s = cp_lb }

let analyze ?dag ?(excluded = []) ?(slos = []) ?deadline_s (c : Cluster.t)
    (plan : Scheduler.plan) : summary =
  let own_dag =
    match dag with
    | None -> true
    | Some d -> d.Dag.tasks == plan.Scheduler.dag.Dag.tasks
  in
  if
    own_dag
    && Array.length plan.Scheduler.assignments
       = Array.length plan.Scheduler.dag.Dag.tasks
  then
    try analyze_fast ~excluded ~slos ?deadline_s c plan
    with Slow_path -> analyze_general ~excluded ~slos ?deadline_s c plan
  else analyze_general ?dag ~excluded ~slos ?deadline_s c plan

let check ?dag ?excluded ?slos ?deadline_s c plan =
  (analyze ?dag ?excluded ?slos ?deadline_s c plan).pl_diags

let gate ?dag ?excluded ?slos ?deadline_s c plan =
  let diags = check ?dag ?excluded ?slos ?deadline_s c plan in
  if Lint.has_errors diags then
    raise
      (Plan_invalid
         { plan =
             plan.Scheduler.dag.Dag.dag_name ^ "/" ^ plan.Scheduler.policy;
           diags })
