(* Estee-style scheduler scale harness (experiment e17).

   Beránek et al.'s Estee benchmarks task schedulers by generating DAG
   families at increasing scale and measuring scheduled-tasks/second and
   the makespan-quality-vs-decision-time frontier.  This module is the
   repository's equivalent: seeded generators for three DAG families
   (layered, fork-join, ensemble), wall-clock-timed planning and simulated
   execution on the demonstrator cluster, the naive pre-memoization HEFT as
   the quadratic baseline, delta-vs-full rescheduling after node death, and
   the cost of forcing the telemetry report on million-span logs.

   Everything here measures the production code paths in [Scheduler],
   [Executor], [Dag] and [Everest_telemetry.Trace]; the harness itself adds
   only clock reads. *)

open Everest_platform

type family = Layered | Fork_join | Ensemble

let family_name = function
  | Layered -> "layered"
  | Fork_join -> "fork-join"
  | Ensemble -> "ensemble"

let family_of_string = function
  | "layered" -> Some Layered
  | "fork-join" | "fork_join" | "forkjoin" -> Some Fork_join
  | "ensemble" -> Some Ensemble
  | _ -> None

(* A family instance of approximately [tasks] tasks (exact size depends on
   the family shape; read it back from the DAG). *)
let make_dag ?(seed = 17) family ~tasks =
  let tasks = max 4 tasks in
  match family with
  | Layered ->
      let width = max 2 (int_of_float (sqrt (float_of_int tasks))) in
      let layers = max 2 (tasks / width) in
      Dag.layered ~seed ~layers ~width ~flops:2e9 ~bytes:1e6 ()
  | Fork_join ->
      Dag.fork_join ~width:(tasks - 2) ~worker_flops:2e9 ~worker_bytes:1e6
        ~chunk_bytes:65536 ()
  | Ensemble ->
      let stages = 8 in
      let members = max 1 ((tasks - 2) / stages) in
      Dag.ensemble ~seed ~members ~stages ~stage_flops:2e9 ~stage_bytes:1e5 ()

(* The planners under measurement: [Scheduler.by_name] plus the quadratic
   pre-PR reference kept for speedup baselines. *)
let planner_of_string = function
  | "heft-reference" ->
      Some (fun c dag -> Scheduler.heft_reference ~locality_aware:false c dag)
  | name -> Scheduler.by_name name

type sample = {
  sb_family : string;
  sb_tasks : int;  (* actual task count of the generated DAG *)
  sb_policy : string;
  sb_plan_wall_s : float;  (* wall-clock planning time *)
  sb_tasks_per_s : float;  (* sb_tasks / sb_plan_wall_s *)
  sb_exec_wall_s : float;  (* wall-clock of simulated execution; <0 if skipped *)
  sb_makespan_s : float;  (* simulated makespan; <0 if execution skipped *)
}

let wall = Unix.gettimeofday

(* Plan (and optionally execute) one family instance under [policy] on a
   fresh demonstrator cluster. *)
let run_policy ?(seed = 17) ?(execute = false) family ~tasks ~policy =
  let planner =
    match planner_of_string policy with
    | Some p -> p
    | None -> invalid_arg ("scalebench: unknown policy " ^ policy)
  in
  let dag = make_dag ~seed family ~tasks in
  let n = Dag.size dag in
  let c = Cluster.everest_demonstrator () in
  let t0 = wall () in
  let plan = planner c dag in
  let t1 = wall () in
  let plan_wall = Float.max 1e-9 (t1 -. t0) in
  let exec_wall, makespan =
    if not execute then (-1.0, -1.0)
    else begin
      let t2 = wall () in
      let stats = Executor.execute c plan in
      (Float.max 1e-9 (wall () -. t2), stats.Executor.makespan)
    end
  in
  { sb_family = family_name family;
    sb_tasks = n;
    sb_policy = policy;
    sb_plan_wall_s = plan_wall;
    sb_tasks_per_s = float_of_int n /. plan_wall;
    sb_exec_wall_s = exec_wall;
    sb_makespan_s = makespan }

(* ---- delta vs full reschedule --------------------------------------------------- *)

type delta_sample = {
  ds_tasks : int;
  ds_dead : string;
  ds_moved_frac : float;  (* affected cone / tasks *)
  ds_full_wall_s : float;  (* full reschedule over survivors *)
  ds_delta_wall_s : float;  (* cone-local repair *)
  ds_full_makespan_s : float;  (* simulated, replanned plan *)
  ds_delta_makespan_s : float;  (* simulated, repaired plan *)
}

let run_delta ?(seed = 17) ?(execute = true) family ~tasks ~dead =
  let dag = make_dag ~seed family ~tasks in
  let n = Dag.size dag in
  let c = Cluster.everest_demonstrator () in
  let base = Scheduler.heft c dag in
  let t0 = wall () in
  let full = Scheduler.heft ~exclude:[ dead ] c dag in
  let t1 = wall () in
  let delta = Scheduler.heft_delta c base ~dead:[ dead ] in
  let t2 = wall () in
  let moved = ref 0 in
  Array.iteri
    (fun i (a : Scheduler.assignment) ->
      if
        not
          (String.equal a.Scheduler.node
             base.Scheduler.assignments.(i).Scheduler.node)
      then incr moved)
    delta.Scheduler.assignments;
  let simulate plan =
    if not execute then -1.0
    else
      let c' = Cluster.everest_demonstrator () in
      (Executor.execute c' plan).Executor.makespan
  in
  { ds_tasks = n;
    ds_dead = dead;
    ds_moved_frac = float_of_int !moved /. float_of_int n;
    ds_full_wall_s = Float.max 1e-9 (t1 -. t0);
    ds_delta_wall_s = Float.max 1e-9 (t2 -. t1);
    ds_full_makespan_s = simulate full;
    ds_delta_makespan_s = simulate delta }

(* ---- telemetry forcing cost ------------------------------------------------------ *)

type telemetry_sample = {
  ts_tasks : int;
  ts_spans : int;  (* spans recorded by the traced run *)
  ts_run_wall_s : float;  (* plan + simulated execution, tracing on *)
  ts_report_wall_s : float;  (* forcing the lazy Observe report *)
  ts_report_frac : float;  (* ts_report_wall_s / ts_run_wall_s *)
}

(* Execute a layered instance with tracing on and force the full report.
   The sink capacity is sized to the run so nothing is dropped — the point
   is to price the report on a maximal log.

   The whole pipeline runs [repeats] times and each wall is the minimum
   across repeats: on a shared machine single-shot walls vary by 2-3x from
   GC pacing and scheduler noise, and min-of-N is the standard low-noise
   estimator for deterministic work (both phases replay identical events,
   so the minimum is the run with the least interference). *)
let run_telemetry ?(seed = 17) ?(repeats = 3) ~tasks () =
  let min_run = ref infinity and min_report = ref infinity in
  let n_tasks = ref 0 and n_spans = ref 0 in
  for _ = 1 to max 1 repeats do
    let dag = make_dag ~seed Layered ~tasks in
    let n = Dag.size dag in
    let c = Cluster.everest_demonstrator () in
    let tracer =
      Everest_telemetry.Trace.create ~capacity:(8 * n)
        ~clock:(fun () -> Desim.now c.Cluster.sim)
        ()
    in
    let registry = Everest_telemetry.Metrics.create_registry () in
    let t0 = wall () in
    let plan = Scheduler.heft c dag in
    let stats = Executor.execute ~tracer ~registry c plan in
    let t1 = wall () in
    let report = Lazy.force stats.Executor.report in
    let t2 = wall () in
    ignore report;
    n_tasks := n;
    n_spans := Everest_telemetry.Trace.span_count tracer;
    if t1 -. t0 < !min_run then min_run := t1 -. t0;
    if t2 -. t1 < !min_report then min_report := t2 -. t1
  done;
  let run_wall = Float.max 1e-9 !min_run in
  let report_wall = Float.max 1e-9 !min_report in
  { ts_tasks = !n_tasks;
    ts_spans = !n_spans;
    ts_run_wall_s = run_wall;
    ts_report_wall_s = report_wall;
    ts_report_frac = report_wall /. run_wall }

(* ---- JSON rendering -------------------------------------------------------------- *)

let sample_json s =
  Printf.sprintf
    "{\"family\": %S, \"tasks\": %d, \"policy\": %S, \"plan_wall_s\": %.6f, \
     \"tasks_per_s\": %.1f, \"exec_wall_s\": %.6f, \"makespan_s\": %.6f}"
    s.sb_family s.sb_tasks s.sb_policy s.sb_plan_wall_s s.sb_tasks_per_s
    s.sb_exec_wall_s s.sb_makespan_s

let delta_json d =
  Printf.sprintf
    "{\"tasks\": %d, \"dead\": %S, \"moved_frac\": %.4f, \"full_wall_s\": \
     %.6f, \"delta_wall_s\": %.6f, \"full_makespan_s\": %.6f, \
     \"delta_makespan_s\": %.6f}"
    d.ds_tasks d.ds_dead d.ds_moved_frac d.ds_full_wall_s d.ds_delta_wall_s
    d.ds_full_makespan_s d.ds_delta_makespan_s

let telemetry_json t =
  Printf.sprintf
    "{\"tasks\": %d, \"spans\": %d, \"run_wall_s\": %.6f, \"report_wall_s\": \
     %.6f, \"report_frac\": %.6f}"
    t.ts_tasks t.ts_spans t.ts_run_wall_s t.ts_report_wall_s t.ts_report_frac
