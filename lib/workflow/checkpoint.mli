(** Crash-consistent checkpointing for the workflow executor.

    The executor is deterministic in (cluster, plan, faults, policy), so
    recovery is journaled replay: each first completion of a task is one
    write-ahead record; a restarted run re-executes from t=0, verifying
    every re-derived completion byte-for-byte against the journal.
    Snapshots act as integrity anchors (the resumable-state digest every
    [every] completions, re-checked during replay) and as the points where
    {!Everest_resilience.Lineage.prune} bounds replica-tracking memory —
    pruning happens at the same completion counts in the original and the
    replayed run, so it never perturbs byte-identity. *)

type t

(** A fresh checkpointed run over [store] (snapshot every [every] first
    completions).  @raise Invalid_argument when [every <= 0]. *)
val create : store:Everest_recovery.Store.t -> every:int -> t

(** Resume a crashed run: loads the newest valid snapshot as the
    verification anchor and the whole journal (from t=0) as the replay
    tail.  [every] must match the original run.
    @raise Everest_recovery.Store.Recovery_error when no valid snapshot
    survives or the snapshot body is malformed. *)
val resume : store:Everest_recovery.Store.t -> every:int -> t

(** Was this checkpoint created by {!resume}? *)
val resumed : t -> bool

(** Journal records replay-verified so far. *)
val replayed : t -> int

(** First completions observed so far. *)
val completions : t -> int

(** Called by the executor before the first task launches; [state] is the
    zero-state digest.  Writes the genesis snapshot (fresh run) or
    verifies it (resumed run anchored on genesis).
    @raise Everest_recovery.Store.Recovery_error on anchor divergence. *)
val start : t -> state:(unit -> string) -> unit

(** Called by the executor on each first completion.  [state] digests the
    resumable state; [prune] bounds lineage and returns the dropped-copy
    count.  May raise {!Everest_recovery.Journal.Crashed} when a crash was
    armed on the store, or
    {!Everest_recovery.Store.Recovery_error} ([Replay_divergence]) when
    the re-derived record or a snapshot anchor does not match the
    journal. *)
val on_complete :
  t ->
  task:int ->
  now:float ->
  node:string ->
  state:(unit -> string) ->
  prune:(unit -> int) ->
  unit
