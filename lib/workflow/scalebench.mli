(** Estee-style scheduler scale harness (experiment e17).

    Seeded DAG-family generators at 10³–10⁶ tasks, wall-clock-timed
    planning and simulated execution on the demonstrator cluster,
    delta-vs-full rescheduling after node death, and the cost of forcing
    the telemetry report on million-span logs.  Used by [bench/estee.ml]
    and the [everest_cli estee] smoke check. *)

type family = Layered | Fork_join | Ensemble

val family_name : family -> string
val family_of_string : string -> family option

(** A family instance of approximately [tasks] tasks; read the exact size
    back with [Dag.size]. *)
val make_dag : ?seed:int -> family -> tasks:int -> Dag.t

(** [Scheduler.by_name] plus ["heft-reference"], the quadratic pre-PR HEFT
    kept as the speedup baseline. *)
val planner_of_string :
  string -> (Everest_platform.Cluster.t -> Dag.t -> Scheduler.plan) option

type sample = {
  sb_family : string;
  sb_tasks : int;  (** actual task count of the generated DAG *)
  sb_policy : string;
  sb_plan_wall_s : float;  (** wall-clock planning time *)
  sb_tasks_per_s : float;  (** [sb_tasks /. sb_plan_wall_s] *)
  sb_exec_wall_s : float;  (** wall-clock of simulated execution; <0 if skipped *)
  sb_makespan_s : float;  (** simulated makespan; <0 if execution skipped *)
}

(** Plan (and with [execute], run through the simulator) one family
    instance under [policy] on a fresh demonstrator cluster.
    @raise Invalid_argument on unknown policies. *)
val run_policy :
  ?seed:int -> ?execute:bool -> family -> tasks:int -> policy:string -> sample

type delta_sample = {
  ds_tasks : int;
  ds_dead : string;
  ds_moved_frac : float;  (** re-placed assignments / tasks *)
  ds_full_wall_s : float;  (** full reschedule over survivors *)
  ds_delta_wall_s : float;  (** cone-local repair *)
  ds_full_makespan_s : float;
  ds_delta_makespan_s : float;
}

(** Time [Scheduler.heft ~exclude] against [Scheduler.heft_delta] for the
    death of node [dead], then simulate both repaired plans. *)
val run_delta :
  ?seed:int -> ?execute:bool -> family -> tasks:int -> dead:string -> delta_sample

type telemetry_sample = {
  ts_tasks : int;
  ts_spans : int;  (** spans recorded by the traced run *)
  ts_run_wall_s : float;  (** plan + simulated execution, tracing on *)
  ts_report_wall_s : float;  (** forcing the lazy Observe report *)
  ts_report_frac : float;  (** report / run *)
}

(** Execute a layered instance with tracing on (sink sized so nothing
    drops) and force the full Observe report.  Both walls are minima over
    [repeats] identical pipelines (default 3) — min-of-N is the low-noise
    estimator for deterministic replay on a shared machine. *)
val run_telemetry :
  ?seed:int -> ?repeats:int -> tasks:int -> unit -> telemetry_sample

(** One-line JSON objects for the BENCH_e17.json emitter. *)
val sample_json : sample -> string

val delta_json : delta_sample -> string
val telemetry_json : telemetry_sample -> string
