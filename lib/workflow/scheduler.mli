(** Workflow schedulers: assignment of tasks to nodes and implementation
    choice.  Baselines (round-robin, min-load) plus HEFT and the
    locality-aware HEFT that models HyperLoom's data-aware placement. *)

open Everest_platform

type assignment = { node : string; impl : Dag.impl }

type plan = {
  dag : Dag.t;
  assignments : assignment array;  (** Indexed by task id. *)
  policy : string;
}

(** Estimated execution time of [impl] on a node, ignoring queuing;
    [infinity] for FPGA implementations on FPGA-less nodes. *)
val exec_estimate : Node.t -> Dag.impl -> float

(** Fastest feasible implementation of a task on a node. *)
val best_impl : Node.t -> Dag.task -> (Dag.impl * float) option

val eligible_nodes : Cluster.t -> Dag.task -> Node.t list

(** Spread tasks across eligible nodes in turn. *)
val round_robin : Cluster.t -> Dag.t -> plan

(** Greedy least-accumulated-work placement. *)
val min_load : Cluster.t -> Dag.t -> plan

(** Heterogeneous earliest-finish-time list scheduling.  With
    [locality_aware], communication costs use the actual cluster links and
    current data placement instead of an average bandwidth.  [exclude]
    removes nodes (by name) from consideration, e.g. after node death.

    Internally the scheduler memoizes [exec_estimate] per
    (implementation × node) and runs array-based rank ordering and EFT
    search; the plan is bit-identical to [heft_reference].
    @raise Invalid_argument when [exclude] covers every node. *)
val heft : ?locality_aware:bool -> ?exclude:string list -> Cluster.t -> Dag.t -> plan

(** [heft ~locality_aware:true]. *)
val locality : Cluster.t -> Dag.t -> plan

(** [heft_delta c plan ~dead] repairs [plan] after the nodes in [dead]
    fail: tasks assigned to dead nodes and their transitive consumers (the
    downward cone) are re-placed with the HEFT earliest-finish-time rule
    over the surviving nodes; every other task keeps its assignment.
    Decision time scales with the cone, not the DAG.  The result's policy
    is [plan.policy ^ "+delta"].  [locality_aware] defaults to matching
    [plan.policy].
    @raise Invalid_argument when every node is dead. *)
val heft_delta :
  ?locality_aware:bool -> Cluster.t -> plan -> dead:string list -> plan

(** The historical (pre-memoization) HEFT: per-task [Dag.consumers_naive]
    rebuilds and per-candidate [exec_estimate] recomputation — Θ(n²·deg).
    Kept as the oracle for plan-equivalence properties and as the baseline
    benchmark e17 measures speedup against.  Produces bit-identical plans
    to [heft]. *)
val heft_reference : ?locality_aware:bool -> Cluster.t -> Dag.t -> plan

(** Look up a policy by name: "round-robin", "min-load", "heft",
    "heft-locality"/"locality". *)
val by_name : string -> (Cluster.t -> Dag.t -> plan) option
