(* Plan execution on the simulated platform.

   Each task waits for its inputs, pulls them from a node holding a valid
   copy over the cluster links, runs its chosen implementation on its
   assigned node, and signals completion — the measurable counterpart of
   HyperLoom's distributed executor.

   Fault tolerance (everest_resilience): a [Faults.t] plan injects node
   crash/restart windows, per-attempt transient failures, FPGA transient
   errors and link degradation, all deterministic in the plan seed; a
   [Policy.t] governs recovery — retry budgets with decorrelated-jitter
   backoff, plan-relative timeouts, speculative re-execution of stragglers
   and heartbeat-based death detection.  Outputs lost with a dead node are
   recomputed from lineage.  The historical [~failures:(node, time) list]
   argument remains as a shim over permanent-death windows.

   Telemetry: every execution attempt opens a span on the tracer (simulated
   clock, one track per node) and every transfer nests a span under the
   pulling task, so the span log is a second, independent account of the run
   that stats can be checked against. *)

open Everest_platform
module Trace = Everest_telemetry.Trace
module Metrics = Everest_telemetry.Metrics
module Faults = Everest_resilience.Faults
module Policy = Everest_resilience.Policy
module Health = Everest_resilience.Health
module Lineage = Everest_resilience.Lineage
module Rng = Everest_parallel.Rng
module Observe = Everest_observe
module Watch = Everest_watch.Watch

type stats = {
  makespan : float;
  task_finish : float array;
  bytes_moved : int;
  transfers : int;
  energy_j : float;
  per_node_tasks : (string * int) list;
  retries : int;
  timeouts : int;
  speculative : int;
  recomputed : int;
  span_log : Trace.span list;
  report : Observe.Report.t Lazy.t;
}

exception Execution_failed of { reason : string; partial : stats }

(* ---- trace/stats agreement ------------------------------------------------------ *)

let count_status status spans =
  List.length
    (List.filter
       (fun s -> Trace.attr_string s "status" = Some status)
       spans)

let trace_retries spans = count_status "retried" spans
let trace_timeouts spans = count_status "timeout" spans
let trace_recomputed spans = count_status "recomputed" spans
let trace_tasks_completed spans = count_status "ok" spans

(* Speculative backup launches carry the attribute from birth (their final
   status depends on who wins the race). *)
let trace_speculative spans =
  List.length
    (List.filter
       (fun s -> Trace.attr s "speculative" = Some (Trace.B true))
       spans)

let trace_bytes_moved spans =
  List.fold_left
    (fun acc s ->
      match Trace.attr_int s "bytes" with
      | Some b when String.length s.Trace.name >= 5
                    && String.sub s.Trace.name 0 5 = "xfer:" -> acc + b
      | _ -> acc)
    0 spans

(* ---- run report ----------------------------------------------------------------- *)

(* Closure-free prefix test for the span-classification hot loop:
   [String.starts_with] builds an inner closure per call (non-flambda), and
   at ~1.6M classification calls on a 10⁶-span log that closure garbage
   alone was megawords. *)
let rec prefix_matches s p i n =
  i >= n
  || (String.unsafe_get s i = String.unsafe_get p i
     && prefix_matches s p (i + 1) n)

let has_prefix s p =
  let n = String.length p in
  String.length s >= n && prefix_matches s p 0 n

(* The analytics hook on [stats]: a lazy report so runs that never ask for
   one pay nothing.  Everything it needs is captured when the stats record
   is built (the run is over by then, so [finish] and the span log are
   final); forcing it indexes the span log, joins it with the DAG into
   critical-path activities and reconciles per-node utilization against the
   engine's queueing counters. *)
let build_report ~(plan : Scheduler.plan) ~tracer ~registry ~labels
    ~(cluster : Cluster.t) ~finish ~makespan ~retries ~timeouts ~speculative
    ~recomputed ~bytes_moved ~transfers ~energy_j =
  let dag = plan.Scheduler.dag in
  lazy
    begin
      let trace_on = not (Trace.is_noop tracer) in
      let n_recorded = if trace_on then Trace.span_count tracer else 0 in
      let tasks_total = Array.length dag.Dag.tasks in
      let tasks_done =
        Array.fold_left (fun n f -> if f >= 0.0 then n + 1 else n) 0 finish
      in
      (* Critical path and utilization come out of ONE fused pass over the
         pooled span sink (start order), with flat task-id / track-id /
         span-id indexed accumulators — no Span_dag, no per-task span
         lists, no hashtables.  At 10⁶ spans the historical per-track
         grouping + interval lists alone blew the report's <5%-of-run
         budget (E17); the semantics here replicate
         [Utilization.of_span_dag] and the old per-task join exactly. *)
      let cp, util =
        if n_recorded = 0 then (None, None)
        else begin
          let max_track = ref 0 in
          Trace.iter tracer (fun s ->
              if s.Trace.track > !max_track then max_track := s.Trace.track);
          let n_tracks = !max_track + 1 in
          (* per-track utilization accumulators *)
          let tr_tasks = Array.make n_tracks 0 in
          let tr_attempts = Array.make n_tracks 0 in
          let tr_span = Array.make n_tracks 0.0 in
          let tr_xfer = Array.make n_tracks 0.0 in
          let tr_busy = Array.make n_tracks 0.0 in
          let tr_cursor = Array.make n_tracks 0.0 in
          let tr_node = Array.make n_tracks None in
          (* top idle gaps per track, kept sorted by length (ties keep
             arrival = start order, matching the stable sort in
             [Utilization.of_span_dag]) *)
          let max_gaps = 3 in
          let g_start = Array.make (n_tracks * max_gaps) 0.0 in
          let g_len = Array.make (n_tracks * max_gaps) 0.0 in
          let g_count = Array.make n_tracks 0 in
          (* the gap start/length travel through an unboxed scratch slot
             instead of function arguments: float parameters to a
             non-inlined call are boxed (uniform representation), and gaps
             are frequent enough on a 10⁶-span log for that to show up *)
          let g_tmp = Array.make 2 0.0 in
          let add_gap t =
            let gs = Array.unsafe_get g_tmp 0
            and gl = Array.unsafe_get g_tmp 1 in
            let base = t * max_gaps in
            let k = ref 0 in
            while !k < g_count.(t) && gl <= g_len.(base + !k) do incr k done;
            if !k < max_gaps then begin
              let last = min g_count.(t) (max_gaps - 1) in
              for j = last downto !k + 1 do
                g_start.(base + j) <- g_start.(base + j - 1);
                g_len.(base + j) <- g_len.(base + j - 1)
              done;
              g_start.(base + !k) <- gs;
              g_len.(base + !k) <- gl;
              if g_count.(t) < max_gaps then g_count.(t) <- g_count.(t) + 1
            end
          in
          (* per-task winner tracking (span ids are dense within a tracer
             generation, so transfer-under-attempt is a flat array) *)
          let max_id = Trace.next_span_id tracer in
          let xfer_under = Array.make max_id 0.0 in
          let t_start = Array.make tasks_total infinity in
          (* per-task winner, all unboxed (span id for the nested-transfer
             lookup, duration, track, and 0/1/2 = none/finished/ok): the
             last-started ok attempt wins, else the last-started finished
             one — as in the old start-descending per-task span list *)
          let w_id = Array.make tasks_total (-1) in
          let w_dur = Array.make tasks_total 0.0 in
          let w_trk = Array.make tasks_total 0 in
          let w_stat = Array.make tasks_total 0 in
          (* Index safety in the unsafe accesses below: [t] is a span
             track, bounded by the max-track scan over the same log above;
             [i] and [p] are range-checked explicitly before use.  With
             ~15 array touches per span, bounds checks alone are a
             measurable slice of the 10⁶-span walk. *)
          Trace.iter tracer
            (fun (s : Trace.span) ->
              if has_prefix s.Trace.name "task:" then begin
                let t = s.Trace.track in
                Array.unsafe_set tr_attempts t
                  (Array.unsafe_get tr_attempts t + 1);
                let ok = Trace.attr_is s "status" "ok" in
                if ok then
                  Array.unsafe_set tr_tasks t (Array.unsafe_get tr_tasks t + 1);
                (match Array.unsafe_get tr_node t with
                | None -> Array.unsafe_set tr_node t (Trace.attr_string s "node")
                | Some _ -> ());
                let fin = s.Trace.end_s >= s.Trace.start_s in
                let dur =
                  if fin then s.Trace.end_s -. s.Trace.start_s else 0.0
                in
                if fin then begin
                  Array.unsafe_set tr_span t
                    (Array.unsafe_get tr_span t +. dur);
                  (* online interval merge, clamped to [0, horizon]: spans
                     arrive in start order per track, so one cursor per
                     track replaces the sorted interval list (and inline
                     comparisons replace Float.min/max, whose boxed
                     returns dominated allocation at 1e6 spans) *)
                  let s0 = s.Trace.start_s in
                  let s0 =
                    if s0 < 0.0 then 0.0
                    else if s0 > makespan then makespan
                    else s0
                  in
                  let e0 = s.Trace.end_s in
                  let e0 =
                    if e0 < 0.0 then 0.0
                    else if e0 > makespan then makespan
                    else e0
                  in
                  let cursor = Array.unsafe_get tr_cursor t in
                  if e0 <= cursor then ()
                  else if s0 > cursor then begin
                    Array.unsafe_set tr_busy t
                      (Array.unsafe_get tr_busy t +. (e0 -. s0));
                    Array.unsafe_set g_tmp 0 cursor;
                    Array.unsafe_set g_tmp 1 (s0 -. cursor);
                    add_gap t;
                    Array.unsafe_set tr_cursor t e0
                  end
                  else begin
                    Array.unsafe_set tr_busy t
                      (Array.unsafe_get tr_busy t +. (e0 -. cursor));
                    Array.unsafe_set tr_cursor t e0
                  end
                end;
                let i = Trace.attr_int_def s "task" ~default:(-1) in
                if i >= 0 && i < tasks_total then begin
                  if s.Trace.start_s < Array.unsafe_get t_start i then
                    Array.unsafe_set t_start i s.Trace.start_s;
                  if ok || (fin && Array.unsafe_get w_stat i < 2) then begin
                    Array.unsafe_set w_id i s.Trace.id;
                    Array.unsafe_set w_dur i dur;
                    Array.unsafe_set w_trk i t;
                    Array.unsafe_set w_stat i (if ok then 2 else 1)
                  end
                end
              end
              else if has_prefix s.Trace.name "xfer:" then begin
                let t = s.Trace.track in
                let d =
                  if s.Trace.end_s >= s.Trace.start_s then
                    s.Trace.end_s -. s.Trace.start_s
                  else 0.0
                in
                Array.unsafe_set tr_xfer t (Array.unsafe_get tr_xfer t +. d);
                match s.Trace.parent with
                | Some p when p >= 0 && p < max_id ->
                    (* pull time nested under an attempt reads as wait on
                       the critical path, not work *)
                    Array.unsafe_set xfer_under p
                      (Array.unsafe_get xfer_under p +. d)
                | _ -> ()
              end);
          (* flat per-task activity arrays for the critical-path walk: the
             winner's self time with nested pull time subtracted (so
             transfers read as wait on the path, not work), absent tasks
             marked by a negative finish *)
          let act_finish = Array.make tasks_total (-1.0) in
          let act_work = Array.make tasks_total 0.0 in
          for i = 0 to tasks_total - 1 do
            if finish.(i) >= 0.0 && t_start.(i) < infinity then begin
              act_finish.(i) <- finish.(i);
              if w_id.(i) >= 0 then begin
                let xfer =
                  if w_id.(i) < max_id then xfer_under.(w_id.(i)) else 0.0
                in
                let w = w_dur.(i) -. xfer in
                act_work.(i) <- (if w > 0.0 then w else 0.0)
              end
            end
          done;
          let cp =
            Observe.Critical_path.extract_flat ~start:t_start
              ~finish:act_finish ~work:act_work
              ~deps:(fun i -> dag.Dag.tasks.(i).Dag.inputs)
              ~name:(fun i -> dag.Dag.tasks.(i).Dag.name)
              ~node:(fun i ->
                (* every attempt span on a track carries that track's node
                   attribute, so the track's cached attribute stands in
                   for the winner's own *)
                if w_id.(i) < 0 then
                  plan.Scheduler.assignments.(i).Scheduler.node
                else
                  match tr_node.(w_trk.(i)) with
                  | Some n -> n
                  | None -> plan.Scheduler.assignments.(i).Scheduler.node)
          in
          let waits =
            List.map
              (fun (n : Node.t) ->
                let w r = (Desim.wait_stats r).Desim.ws_total_wait_s in
                ( n.Node.name,
                  w n.Node.cores
                  +. List.fold_left
                       (fun acc (f : Node.fpga_dev) -> acc +. w f.Node.slots)
                       0.0 n.Node.fpgas ))
              cluster.Cluster.nodes
          in
          let track_names = Trace.named_tracks tracer in
          let nodes = ref [] in
          for t = n_tracks - 1 downto 0 do
            if tr_attempts.(t) > 0 then begin
              if makespan -. tr_cursor.(t) > 0.0 then begin
                g_tmp.(0) <- tr_cursor.(t);
                g_tmp.(1) <- makespan -. tr_cursor.(t);
                add_gap t
              end;
              let gaps = ref [] in
              for k = g_count.(t) - 1 downto 0 do
                gaps :=
                  (g_start.((t * max_gaps) + k), g_len.((t * max_gaps) + k))
                  :: !gaps
              done;
              let node =
                match List.assoc_opt t track_names with
                | Some n -> n
                | None -> (
                    match tr_node.(t) with
                    | Some n -> n
                    | None -> Printf.sprintf "track%d" t)
              in
              let busy = tr_busy.(t) in
              nodes :=
                { Observe.Utilization.nu_node = node; nu_track = t;
                  nu_tasks = tr_tasks.(t); nu_attempts = tr_attempts.(t);
                  nu_busy_s = busy; nu_span_s = tr_span.(t);
                  nu_xfer_s = tr_xfer.(t);
                  nu_wait_s =
                    Option.value ~default:0.0 (List.assoc_opt node waits);
                  nu_util = (if makespan > 0.0 then busy /. makespan else 0.0);
                  nu_idle_s = Float.max 0.0 (makespan -. busy);
                  nu_gaps = !gaps }
                :: !nodes
            end
          done;
          ( cp,
            Some
              { Observe.Utilization.u_horizon_s = makespan;
                u_nodes = !nodes } )
        end
      in
      let quantiles =
        match Metrics.find ~registry ~labels "workflow_task_duration_s" with
        | Some { Metrics.value = Metrics.Histogram h; _ }
          when Metrics.hist_count h > 0 ->
            [ ("p50_s", Metrics.quantile h 0.5);
              ("p90_s", Metrics.quantile h 0.9);
              ("p99_s", Metrics.quantile h 0.99) ]
        | _ -> []
      in
      let counters =
        [ ("retries", float_of_int retries);
          ("timeouts", float_of_int timeouts);
          ("speculative", float_of_int speculative);
          ("recomputed", float_of_int recomputed);
          ("transfers", float_of_int transfers);
          ("bytes_moved", float_of_int bytes_moved);
          ("energy_j", energy_j) ]
      in
      let slos =
        [ Observe.Slo.evaluate_counts
            (Observe.Slo.completion "tasks_completed" 1.0)
            ~total:tasks_total ~bad:(tasks_total - tasks_done) ]
      in
      Observe.Report.make ~name:dag.Dag.dag_name ~policy:plan.Scheduler.policy
        ~tasks_done ~tasks_total ~spans:n_recorded
        ~dropped:(Trace.dropped tracer) ~makespan_s:makespan ?cp ?util
        ~quantiles ~counters ~slos ()
    end

(* ---- execution ------------------------------------------------------------------ *)

(* Shared attribute lists so the per-span hot path allocates nothing for
   the common cases. *)
let ok_attrs = [ ("status", Trace.S "ok") ]
let recomputed_attrs = [ ("status", Trace.S "recomputed") ]
let timeout_attrs = [ ("status", Trace.S "timeout") ]
let speculative_attrs = [ ("status", Trace.S "speculative") ]

(* Raised inside the event loop when recovery can no longer make progress;
   caught by [execute] and rethrown as [Execution_failed] with the partial
   stats of the run so far. *)
exception Exhausted of string

(* One execution attempt in flight.  Cancellation is cooperative: the Desim
   events of a cancelled attempt still fire but find the token cancelled and
   stop advancing the task.  The rescue timers (timeout/speculation
   watchdogs) are the exception: they are armed cancellable and revoked the
   moment the attempt terminates, so a 10⁶-task run doesn't retain 2n dead
   watchdog closures in the heap until their fire times. *)
type token = {
  tk_task : int;
  tk_node : Node.t;
  tk_span : Trace.span option;
  mutable tk_cancelled : bool;
  mutable tk_timers : Desim.handle list;
}

let execute ?(failures = []) ?faults ?(policy = Policy.default)
    ?(tracer = Trace.noop) ?(registry = Metrics.default) ?(plan_lint = true)
    ?checkpoint ?watch (c : Cluster.t) (plan : Scheduler.plan) : stats =
  if plan_lint then Planlint.gate c plan;
  let faults =
    match faults with Some f -> f | None -> Faults.of_failures failures
  in
  let dag = plan.Scheduler.dag in
  let sim = c.Cluster.sim in
  let labels = [ ("workflow", dag.Dag.dag_name) ] in
  let m_tasks =
    Metrics.counter ~registry ~labels "workflow_tasks_completed_total"
  and m_retries =
    Metrics.counter ~registry ~labels "workflow_task_retries_total"
  and m_timeouts = Metrics.counter ~registry ~labels "workflow_timeouts_total"
  and m_spec = Metrics.counter ~registry ~labels "workflow_speculative_total"
  and m_recomputed =
    Metrics.counter ~registry ~labels "workflow_recomputed_total"
  and m_bytes = Metrics.counter ~registry ~labels "workflow_bytes_moved_total"
  and m_transfers = Metrics.counter ~registry ~labels "workflow_transfers_total"
  and h_task = Metrics.histogram ~registry ~labels "workflow_task_duration_s"
  and h_xfer = Metrics.histogram ~registry ~labels "workflow_transfer_s" in
  (match watch with
  | Some w -> Watch.add_source w (Everest_watch.Scrape.of_registry registry)
  | None -> ());
  let trace_on = not (Trace.is_noop tracer) in
  (* one render track per node, in cluster order, with the node's constant
     span attributes precomputed alongside *)
  let track_info =
    let tracks = Hashtbl.create 16 in
    List.iteri
      (fun i (n : Node.t) ->
        Hashtbl.replace tracks n.Node.name
          (i + 1, [ ("node", Trace.S n.Node.name) ]);
        if trace_on then Trace.name_track tracer (i + 1) n.Node.name)
      c.Cluster.nodes;
    fun name ->
      match Hashtbl.find_opt tracks name with
      | Some info -> info
      | None -> (0, [])
  in
  let dead (node : Node.t) =
    Faults.node_dead faults ~node:node.Node.name ~now:(Desim.now sim)
  in
  (* Capability-aware fallback: a diverted FPGA task prefers a surviving
     FPGA-capable node (paying reconfiguration there) over silently landing
     on a CPU-only one; [exclude] avoids bouncing straight back onto the
     node that just failed when any alternative survives. *)
  let fallback ?(want_fpga = false) ?(exclude = []) () =
    let alive n = not (dead n) in
    let not_ex (n : Node.t) = not (List.mem n.Node.name exclude) in
    let pick p = List.find_opt p c.Cluster.nodes in
    let order =
      if want_fpga then
        [ (fun n -> alive n && not_ex n && Node.has_fpga n);
          (fun n -> alive n && not_ex n);
          (fun n -> alive n && Node.has_fpga n);
          alive ]
      else [ (fun n -> alive n && not_ex n); alive ]
    in
    match List.find_map pick order with
    | Some n -> n
    | None -> raise (Exhausted "every node failed")
  in
  (* Deployment-time configuration: install every planned bitstream on the
     FPGAs of its assigned node (the cloudFPGA shell configures roles when
     resources are allocated, not lazily at first launch). *)
  Array.iter
    (fun (a : Scheduler.assignment) ->
      match a.Scheduler.impl with
      | Dag.Fpga { bitstream; _ } ->
          let node = Cluster.find_node c a.Scheduler.node in
          List.iter (fun dev -> Node.preload dev ~bitstream) node.Node.fpgas
      | Dag.Cpu _ -> ())
    plan.Scheduler.assignments;
  let n = Dag.size dag in
  let finish = Array.make n (-1.0) in
  let remaining_deps =
    Array.map (fun t -> List.length t.Dag.inputs) dag.Dag.tasks
  in
  let attempts = Array.make n 0 in
  let retries_left = Array.make n policy.Policy.max_retries in
  let inflight : token list array = Array.make n [] in
  let prev_delay = Array.make n 0.0 in
  let recomputing = Array.make n false in
  let waiters : (unit -> unit) list array = Array.make n [] in
  let lineage = Lineage.create faults in
  (* Plan-relative deadline base: the planned node's execution estimate is
     the SLA whatever node an attempt actually landed on. *)
  let planned_est =
    lazy
      (Array.map
         (fun (a : Scheduler.assignment) ->
           Scheduler.exec_estimate
             (Cluster.find_node c a.Scheduler.node)
             a.Scheduler.impl)
         plan.Scheduler.assignments)
  in
  let retries = ref 0 in
  let timeouts = ref 0 in
  let speculative = ref 0 in
  let recomputed = ref 0 in
  let spec_budget =
    ref
      (match policy.Policy.speculation with
      | Some s -> s.Policy.max_speculative
      | None -> 0)
  in
  let n_done = ref 0 in
  let health = ref None in
  let want_fpga i =
    match plan.Scheduler.assignments.(i).Scheduler.impl with
    | Dag.Fpga _ -> true
    | Dag.Cpu _ -> false
  in
  let backoff_rng = Rng.create (faults.Faults.seed lxor 0x5EED) in
  (* checkpoint plumbing: [ck_state] digests the resumable state (used as
     the snapshot integrity anchor), [ck_prune] bounds lineage memory at
     snapshot boundaries.  Both are deterministic in the run, so replay
     reproduces them bit-exactly. *)
  let ck_state () =
    let module Codec = Everest_recovery.Codec in
    let w = Codec.writer () in
    Codec.int w !n_done;
    Codec.int w !retries;
    Codec.int w !timeouts;
    Codec.int w !speculative;
    Codec.int w !recomputed;
    Codec.int w !spec_budget;
    Codec.int w (Rng.state backoff_rng);
    let finished = ref [] in
    for i = n - 1 downto 0 do
      if finish.(i) >= 0.0 then finished := (i, finish.(i)) :: !finished
    done;
    Codec.list w !finished ~item:(fun w (i, f) ->
        Codec.int w i;
        Codec.float w f);
    Codec.list w (Lineage.export lineage) ~item:(fun w (task, copies) ->
        Codec.int w task;
        Codec.list w copies ~item:(fun w (node, since) ->
            Codec.str w node;
            Codec.float w since));
    Codec.contents w
  in
  let lineage_gauge = Metrics.gauge ~registry ~labels "workflow_lineage_copies" in
  let ck_prune () =
    let dropped = Lineage.prune lineage ~now:(Desim.now sim) in
    Metrics.set lineage_gauge (float_of_int (Lineage.total_copies lineage));
    dropped
  in
  Option.iter (fun ck -> Checkpoint.start ck ~state:ck_state) checkpoint;
  let drop_token i tk =
    inflight.(i) <- List.filter (fun t -> t != tk) inflight.(i)
  in
  (* revoke an attempt's watchdogs the moment it terminates (no-op on
     already-fired ones) *)
  let cancel_timers tk =
    (match tk.tk_timers with
    | [] -> ()
    | timers -> List.iter (fun h -> Desim.cancel sim h) timers);
    tk.tk_timers <- []
  in
  let rec launch i =
    let a = plan.Scheduler.assignments.(i) in
    let planned = Cluster.find_node c a.Scheduler.node in
    let dst =
      if dead planned then fallback ~want_fpga:(want_fpga i) ()
      else planned
    in
    attempt i ~speculative_run:false ~recompute:false dst
  and attempt i ~speculative_run ~recompute (dst : Node.t) =
    let t = dag.Dag.tasks.(i) in
    let a = plan.Scheduler.assignments.(i) in
    let attempt_no = attempts.(i) in
    attempts.(i) <- attempts.(i) + 1;
    let span =
      if trace_on then begin
        let track, node_attrs = track_info dst.Node.name in
        let attrs =
          if attempt_no = 0 then node_attrs
          else ("attempt", Trace.I attempt_no) :: node_attrs
        in
        let attrs =
          if speculative_run then ("speculative", Trace.B true) :: attrs
          else attrs
        in
        let attrs =
          if recompute then ("recompute", Trace.B true) :: attrs else attrs
        in
        (* the task id ties attempt spans back to the DAG for the report's
           critical-path join; only paid when tracing is on *)
        let attrs = ("task", Trace.I i) :: attrs in
        Some (Trace.start tracer ~track ~attrs ("task:" ^ t.Dag.name))
      end
      else None
    in
    let tk =
      { tk_task = i; tk_node = dst; tk_span = span; tk_cancelled = false;
        tk_timers = [] }
    in
    inflight.(i) <- tk :: inflight.(i);
    let t_start = Desim.now sim in
    (* plan-relative rescue points, armed before the pull so slow transfers
       count toward straggler-ness too; cancellable so a finished attempt
       releases its watchdogs instead of leaving them in the heap *)
    (match policy.Policy.timeout with
    | Some { Policy.timeout_factor; timeout_min_s } ->
        let est = (Lazy.force planned_est).(i) in
        if Float.is_finite est then
          tk.tk_timers <-
            Desim.schedule_cancellable sim
              (Float.max timeout_min_s (timeout_factor *. est))
              (fun () -> rescue_timeout tk)
            :: tk.tk_timers
    | None -> ());
    (match policy.Policy.speculation with
    | Some { Policy.spec_factor; spec_min_s; _ }
      when (not speculative_run) && !spec_budget > 0 ->
        let est = (Lazy.force planned_est).(i) in
        if Float.is_finite est then
          tk.tk_timers <-
            Desim.schedule_cancellable sim
              (Float.max spec_min_s (spec_factor *. est))
              (fun () -> maybe_speculate tk)
            :: tk.tk_timers
    | _ -> ());
    (* pull inputs sequentially (HyperLoom pulls over per-pair connections),
       from whichever node still holds a valid copy *)
    let rec pull inputs k =
      if tk.tk_cancelled then ()
      else
        match inputs with
        | [] -> k ()
        | d :: rest -> (
            match
              Lineage.choose lineage ~task:d ~prefer:dst.Node.name
                ~now:(Desim.now sim)
            with
            | None ->
                (* the producer's output is lost: recompute it, then retry
                   this input *)
                recompute_output d (fun () -> pull inputs k)
            | Some src_name ->
                let src = Cluster.find_node c src_name in
                let bytes = dag.Dag.tasks.(d).Dag.out_bytes in
                let moved =
                  not (src == dst || String.equal src.Node.name dst.Node.name)
                in
                (* src/dst ride in the span name; only [bytes] needs an
                   attribute *)
                let xspan =
                  if trace_on && moved then
                    Some
                      (Trace.start tracer
                         ?parent:(Option.map (fun s -> s.Trace.id) span)
                         ~track:(fst (track_info dst.Node.name))
                         ~attrs:[ ("bytes", Trace.I bytes) ]
                         ("xfer:" ^ src.Node.name ^ "->" ^ dst.Node.name))
                  else None
                in
                let t0 = Desim.now sim in
                let arrived () =
                  if moved then begin
                    Metrics.inc ~by:(float_of_int bytes) m_bytes;
                    Metrics.inc m_transfers;
                    Metrics.observe h_xfer (Desim.now sim -. t0)
                  end;
                  Option.iter (fun s -> Trace.finish tracer s) xspan;
                  Lineage.record_replica lineage ~task:d ~node:dst.Node.name
                    ~now:(Desim.now sim);
                  pull rest k
                in
                let degrade =
                  if moved then
                    Faults.link_degradation faults ~src:src.Node.name
                      ~dst:dst.Node.name
                  else 1.0
                in
                Cluster.transfer c ~src ~dst ~bytes (fun () ->
                    if degrade > 1.0 then
                      (* a degraded link stretches the transfer by the
                         extra fraction of its healthy duration *)
                      let base =
                        Cluster.transfer_time c ~src ~dst ~bytes
                      in
                      Desim.schedule sim ((degrade -. 1.0) *. base) arrived
                    else arrived ()))
    in
    pull t.Dag.inputs (fun () ->
        if tk.tk_cancelled then ()
        else begin
          let done_ () =
            if tk.tk_cancelled then ()
            else if dead dst then fail_attempt tk ~reason:"node-death"
            else if
              Faults.transient faults ~task:i ~attempt:attempt_no
              || (want_fpga i
                 && Faults.fpga_transient faults ~task:i ~attempt:attempt_no)
            then fail_attempt tk ~reason:"transient"
            else complete tk ~t_start
          in
          match a.Scheduler.impl with
          | Dag.Cpu { flops; bytes; threads } ->
              Node.run_cpu sim dst ~flops ~bytes ~threads done_
          | Dag.Fpga { bitstream; estimate; in_bytes; out_bytes } -> (
              match Node.pick_device dst with
              | None ->
                  (* infeasible fallback: degrade explicitly to the CPU
                     path at estimate cycles *)
                  Node.run_cpu sim dst
                    ~flops:
                      (float_of_int estimate.Everest_hls.Estimate.cycles
                      *. 10.0)
                    ~bytes:(float_of_int (in_bytes + out_bytes))
                    ~threads:1 done_
              | Some dev ->
                  let link =
                    match dev.Node.fspec.Spec.attach with
                    | Spec.Bus_coherent -> Spec.opencapi
                    | Spec.Network_attached -> Spec.eth100_tcp
                  in
                  Node.run_fpga sim dst dev ~bitstream ~estimate
                    ~host_link:link ~in_bytes ~out_bytes done_)
        end)
  and complete tk ~t_start =
    let i = tk.tk_task in
    drop_token i tk;
    cancel_timers tk;
    let now = Desim.now sim in
    Lineage.record_primary lineage ~task:i ~node:tk.tk_node.Node.name ~now;
    let first = finish.(i) < 0.0 in
    if first then begin
      (* WAL: the completion record is durable (or replay-verified)
         before any of its effects land *)
      Option.iter
        (fun ck ->
          Checkpoint.on_complete ck ~task:i ~now ~node:tk.tk_node.Node.name
            ~state:ck_state ~prune:ck_prune)
        checkpoint;
      finish.(i) <- now;
      Metrics.inc m_tasks;
      Metrics.observe h_task (now -. t_start);
      (* read-only watch hook: task durations feed the windowed sketch,
         completions gate the interval scrape — no events, no feedback *)
      (match watch with
      | Some w ->
          Watch.observe w ~now
            ~labels:[ ("node", tk.tk_node.Node.name) ]
            "task_duration" (now -. t_start);
          Watch.maybe_tick w ~now
      | None -> ());
      Option.iter (fun s -> Trace.finish tracer ~attrs:ok_attrs s) tk.tk_span;
      (* abandon racing duplicates: the winner's output is authoritative *)
      List.iter
        (fun dup ->
          dup.tk_cancelled <- true;
          cancel_timers dup;
          Option.iter
            (fun s -> Trace.finish tracer ~attrs:speculative_attrs s)
            dup.tk_span)
        inflight.(i);
      inflight.(i) <- [];
      incr n_done;
      if !n_done = n then Option.iter Health.stop !health;
      Dag.iter_consumers dag i (fun s ->
          remaining_deps.(s) <- remaining_deps.(s) - 1;
          if remaining_deps.(s) = 0 then launch s)
    end
    else
      (* a recomputation of an already-finished task: the output is back,
         release the pulls waiting on it *)
      Option.iter
        (fun s -> Trace.finish tracer ~attrs:recomputed_attrs s)
        tk.tk_span;
    if recomputing.(i) then recomputing.(i) <- false;
    let ws = waiters.(i) in
    waiters.(i) <- [];
    List.iter (fun k -> k ()) ws
  and fail_attempt tk ~reason =
    let i = tk.tk_task in
    tk.tk_cancelled <- true;
    drop_token i tk;
    cancel_timers tk;
    incr retries;
    Metrics.inc m_retries;
    Option.iter
      (fun s ->
        Trace.finish tracer
          ~attrs:[ ("status", Trace.S "retried"); ("reason", Trace.S reason) ]
          s)
      tk.tk_span;
    relaunch_or_exhaust i ~exclude:[ tk.tk_node.Node.name ]
  and relaunch_or_exhaust i ~exclude =
    if retries_left.(i) > 0 then begin
      retries_left.(i) <- retries_left.(i) - 1;
      let delay =
        Policy.next_delay policy.Policy.backoff ~rng:backoff_rng
          ~prev:prev_delay.(i)
      in
      prev_delay.(i) <- delay;
      let go () =
        (* pick the node at relaunch time so restarts are honoured *)
        let dst = fallback ~want_fpga:(want_fpga i) ~exclude () in
        attempt i ~speculative_run:false ~recompute:false dst
      in
      if delay > 0.0 then Desim.schedule sim delay go else go ()
    end
    else if inflight.(i) = [] then
      raise
        (Exhausted
           (Printf.sprintf "task %d (%s): retry budget exhausted" i
              dag.Dag.tasks.(i).Dag.name))
  and rescue_timeout tk =
    let i = tk.tk_task in
    if (not tk.tk_cancelled) && finish.(i) < 0.0 && retries_left.(i) > 0
    then begin
      tk.tk_cancelled <- true;
      drop_token i tk;
      cancel_timers tk;
      incr timeouts;
      Metrics.inc m_timeouts;
      Option.iter
        (fun s -> Trace.finish tracer ~attrs:timeout_attrs s)
        tk.tk_span;
      retries_left.(i) <- retries_left.(i) - 1;
      let dst =
        fallback ~want_fpga:(want_fpga i) ~exclude:[ tk.tk_node.Node.name ] ()
      in
      attempt i ~speculative_run:false ~recompute:false dst
    end
  and maybe_speculate tk =
    let i = tk.tk_task in
    if (not tk.tk_cancelled) && finish.(i) < 0.0 && !spec_budget > 0 then begin
      match
        fallback ~want_fpga:(want_fpga i) ~exclude:[ tk.tk_node.Node.name ] ()
      with
      | dup when not (String.equal dup.Node.name tk.tk_node.Node.name) ->
          decr spec_budget;
          incr speculative;
          Metrics.inc m_spec;
          attempt i ~speculative_run:true ~recompute:false dup
      | _ -> ()  (* no alternative node: nothing to speculate on *)
      | exception Exhausted _ -> ()
    end
  and recompute_output d k =
    if
      Lineage.choose lineage ~task:d
        ~prefer:""
        ~now:(Desim.now sim)
      <> None
    then k ()  (* someone else already brought it back *)
    else if recomputing.(d) || inflight.(d) <> [] then
      (* a recomputation (or a racing duplicate) is already under way *)
      waiters.(d) <- k :: waiters.(d)
    else begin
      recomputing.(d) <- true;
      waiters.(d) <- k :: waiters.(d);
      incr recomputed;
      Metrics.inc m_recomputed;
      let dst = fallback ~want_fpga:(want_fpga d) () in
      attempt d ~speculative_run:false ~recompute:true dst
    end
  in
  (* heartbeat monitoring: detect node death within one interval and rescue
     the attempts running there instead of waiting for them to finish *)
  (match policy.Policy.heartbeat_s with
  | None -> ()
  | Some interval ->
      let names = List.map (fun (nd : Node.t) -> nd.Node.name) c.Cluster.nodes in
      health :=
        Some
          (Health.start sim ~faults ~interval ~nodes:names
             ~on_event:(fun ~node ev ->
               match ev with
               | Health.Recovered -> ()
               | Health.Died ->
                   (* rescue every attempt running on the dead node now,
                      instead of waiting for its completion event *)
                   Array.iter
                     (fun tks ->
                       List.iter
                         (fun tk ->
                           if
                             String.equal tk.tk_node.Node.name node
                             && not tk.tk_cancelled
                           then fail_attempt tk ~reason:"heartbeat")
                         tks)
                     (Array.copy inflight))));
  let execution_failed reason =
    let makespan = Array.fold_left Float.max 0.0 finish in
    let per_node =
      List.map
        (fun (nd : Node.t) -> (nd.Node.name, nd.Node.tasks_run))
        c.Cluster.nodes
    in
    let partial =
      { makespan;
        task_finish = finish;
        bytes_moved = c.Cluster.bytes_moved;
        transfers = c.Cluster.transfers;
        energy_j = Cluster.total_energy c;
        per_node_tasks = per_node;
        retries = !retries;
        timeouts = !timeouts;
        speculative = !speculative;
        recomputed = !recomputed;
        span_log = (if trace_on then Trace.spans_rev tracer else []);
        report =
          build_report ~plan ~tracer ~registry ~labels ~cluster:c ~finish
            ~makespan ~retries:!retries ~timeouts:!timeouts
            ~speculative:!speculative ~recomputed:!recomputed
            ~bytes_moved:c.Cluster.bytes_moved ~transfers:c.Cluster.transfers
            ~energy_j:(Cluster.total_energy c);
      }
    in
    Execution_failed { reason; partial }
  in
  (try
     Array.iteri (fun i t -> if t.Dag.inputs = [] then launch i) dag.Dag.tasks;
     Cluster.run c
   with Exhausted reason ->
     Option.iter Health.stop !health;
     raise (execution_failed reason));
  Array.iteri
    (fun i f ->
      if f < 0.0 then
        raise
          (execution_failed (Printf.sprintf "task %d never completed" i)))
    finish;
  let makespan = Array.fold_left Float.max 0.0 finish in
  Metrics.set
    (Metrics.gauge ~registry ~labels "workflow_makespan_s")
    makespan;
  Cluster.publish_metrics ~registry c;
  let per_node =
    List.map
      (fun (nd : Node.t) -> (nd.Node.name, nd.Node.tasks_run))
      c.Cluster.nodes
  in
  {
    makespan;
    task_finish = finish;
    bytes_moved = c.Cluster.bytes_moved;
    transfers = c.Cluster.transfers;
    energy_j = Cluster.total_energy c;
    per_node_tasks = per_node;
    retries = !retries;
    timeouts = !timeouts;
    speculative = !speculative;
    recomputed = !recomputed;
    span_log = (if trace_on then Trace.spans_rev tracer else []);
    report =
      build_report ~plan ~tracer ~registry ~labels ~cluster:c ~finish
        ~makespan ~retries:!retries ~timeouts:!timeouts
        ~speculative:!speculative ~recomputed:!recomputed
        ~bytes_moved:c.Cluster.bytes_moved ~transfers:c.Cluster.transfers
        ~energy_j:(Cluster.total_energy c);
  }

(* Convenience: build a fresh demonstrator, schedule with [policy], run. *)
let run_on_demonstrator ?(cloud_fpgas = 4) ?(edges = 2) ?(endpoints = 4)
    ?failures ?faults ?exec_policy ?(tracer = `Noop) ?registry ~policy dag =
  let c = Cluster.everest_demonstrator ~cloud_fpgas ~edges ~endpoints () in
  let tracer =
    match tracer with
    | `Noop -> Trace.noop
    | `Sim ->
        Trace.create ~clock:(fun () -> Desim.now c.Cluster.sim) ()
  in
  match Scheduler.by_name policy with
  | None -> invalid_arg ("unknown scheduling policy " ^ policy)
  | Some f ->
      let plan = f c dag in
      (plan, execute ?failures ?faults ?policy:exec_policy ~tracer ?registry c plan)
