(* Plan execution on the simulated platform.

   Each task waits for its inputs, pulls them from the producers' nodes over
   the cluster links, runs its chosen implementation on its assigned node,
   and signals completion — the measurable counterpart of HyperLoom's
   distributed executor.

   Fault tolerance: [failures] marks nodes that die at a given simulated
   time.  Tasks launched on a dead node divert to a fallback; tasks whose
   node died while they ran are detected at completion and re-executed
   (HyperLoom re-runs failed tasks from their inputs).

   Telemetry: every execution attempt opens a span on the tracer (simulated
   clock, one track per node) and every transfer nests a span under the
   pulling task, so the span log is a second, independent account of the run
   that stats can be checked against. *)

open Everest_platform
module Trace = Everest_telemetry.Trace
module Metrics = Everest_telemetry.Metrics

type stats = {
  makespan : float;
  task_finish : float array;
  bytes_moved : int;
  transfers : int;
  energy_j : float;
  per_node_tasks : (string * int) list;
  retries : int;
  span_log : Trace.span list;
}

(* ---- trace/stats agreement ------------------------------------------------------ *)

let trace_retries spans =
  List.length
    (List.filter
       (fun s -> Trace.attr_string s "status" = Some "retried")
       spans)

let trace_bytes_moved spans =
  List.fold_left
    (fun acc s ->
      match Trace.attr_int s "bytes" with
      | Some b when String.length s.Trace.name >= 5
                    && String.sub s.Trace.name 0 5 = "xfer:" -> acc + b
      | _ -> acc)
    0 spans

let trace_tasks_completed spans =
  List.length
    (List.filter (fun s -> Trace.attr_string s "status" = Some "ok") spans)

(* ---- execution ------------------------------------------------------------------ *)

(* Shared attribute lists so the per-span hot path allocates nothing for
   the common cases. *)
let ok_attrs = [ ("status", Trace.S "ok") ]
let retried_attrs = [ ("status", Trace.S "retried") ]

let execute ?(failures = []) ?(tracer = Trace.noop)
    ?(registry = Metrics.default) (c : Cluster.t) (plan : Scheduler.plan) :
    stats =
  let dag = plan.Scheduler.dag in
  let sim = c.Cluster.sim in
  let labels = [ ("workflow", dag.Dag.dag_name) ] in
  let m_tasks =
    Metrics.counter ~registry ~labels "workflow_tasks_completed_total"
  and m_retries =
    Metrics.counter ~registry ~labels "workflow_task_retries_total"
  and m_bytes = Metrics.counter ~registry ~labels "workflow_bytes_moved_total"
  and m_transfers = Metrics.counter ~registry ~labels "workflow_transfers_total"
  and h_task = Metrics.histogram ~registry ~labels "workflow_task_duration_s"
  and h_xfer = Metrics.histogram ~registry ~labels "workflow_transfer_s" in
  let trace_on = not (Trace.is_noop tracer) in
  (* one render track per node, in cluster order, with the node's constant
     span attributes precomputed alongside *)
  let track_info =
    let tracks = Hashtbl.create 16 in
    List.iteri
      (fun i (n : Node.t) ->
        Hashtbl.replace tracks n.Node.name
          (i + 1, [ ("node", Trace.S n.Node.name) ]);
        if trace_on then Trace.name_track tracer (i + 1) n.Node.name)
      c.Cluster.nodes;
    fun name ->
      match Hashtbl.find_opt tracks name with
      | Some info -> info
      | None -> (0, [])
  in
  let dead (node : Node.t) =
    match List.assoc_opt node.Node.name failures with
    | Some t -> Desim.now sim >= t
    | None -> false
  in
  let fallback () =
    match List.find_opt (fun n -> not (dead n)) c.Cluster.nodes with
    | Some n -> n
    | None -> invalid_arg "executor: every node failed"
  in
  (* Deployment-time configuration: install every planned bitstream on the
     FPGAs of its assigned node (the cloudFPGA shell configures roles when
     resources are allocated, not lazily at first launch). *)
  Array.iter
    (fun (a : Scheduler.assignment) ->
      match a.Scheduler.impl with
      | Dag.Fpga { bitstream; _ } ->
          let node = Cluster.find_node c a.Scheduler.node in
          List.iter (fun dev -> Node.preload dev ~bitstream) node.Node.fpgas
      | Dag.Cpu _ -> ())
    plan.Scheduler.assignments;
  let n = Dag.size dag in
  let finish = Array.make n (-1.0) in
  let ran_on = Array.make n "" in
  let remaining_deps = Array.map (fun t -> List.length t.Dag.inputs) dag.Dag.tasks in
  let retries = ref 0 in
  let rec launch i =
    let t = dag.Dag.tasks.(i) in
    let a = plan.Scheduler.assignments.(i) in
    let planned = Cluster.find_node c a.Scheduler.node in
    let dst = if dead planned then fallback () else planned in
    run_on i ~attempt:0 t a dst
  and run_on i ~attempt (t : Dag.task) (a : Scheduler.assignment) (dst : Node.t) =
    let span =
      if trace_on then begin
        let track, node_attrs = track_info dst.Node.name in
        Some
          (Trace.start tracer ~track
             ~attrs:
               (if attempt = 0 then node_attrs
                else ("attempt", Trace.I attempt) :: node_attrs)
             ("task:" ^ t.Dag.name))
      end
      else None
    in
    (* pull inputs sequentially (HyperLoom pulls over per-pair connections) *)
    let rec pull inputs k =
      match inputs with
      | [] -> k ()
      | d :: rest ->
          let src = Cluster.find_node c ran_on.(d) in
          let bytes = dag.Dag.tasks.(d).Dag.out_bytes in
          let moved =
            not (src == dst || String.equal src.Node.name dst.Node.name)
          in
          (* src/dst ride in the span name; only [bytes] needs an attribute *)
          let xspan =
            if trace_on && moved then
              Some
                (Trace.start tracer
                   ?parent:(Option.map (fun s -> s.Trace.id) span)
                   ~track:(fst (track_info dst.Node.name))
                   ~attrs:[ ("bytes", Trace.I bytes) ]
                   ("xfer:" ^ src.Node.name ^ "->" ^ dst.Node.name))
            else None
          in
          let t0 = Desim.now sim in
          Cluster.transfer c ~src ~dst ~bytes (fun () ->
              if moved then begin
                Metrics.inc ~by:(float_of_int bytes) m_bytes;
                Metrics.inc m_transfers;
                Metrics.observe h_xfer (Desim.now sim -. t0)
              end;
              Option.iter (fun s -> Trace.finish tracer s) xspan;
              pull rest k)
    in
    let t_start = Desim.now sim in
    pull t.Dag.inputs (fun () ->
        let done_ () =
          if dead dst then begin
            (* the node died while the task ran: re-execute elsewhere *)
            incr retries;
            Metrics.inc m_retries;
            Option.iter
              (fun s -> Trace.finish tracer ~attrs:retried_attrs s)
              span;
            run_on i ~attempt:(attempt + 1) t a (fallback ())
          end
          else begin
            ran_on.(i) <- dst.Node.name;
            finish.(i) <- Desim.now sim;
            Metrics.inc m_tasks;
            Metrics.observe h_task (Desim.now sim -. t_start);
            Option.iter
              (fun s -> Trace.finish tracer ~attrs:ok_attrs s)
              span;
            List.iter
              (fun s ->
                remaining_deps.(s) <- remaining_deps.(s) - 1;
                if remaining_deps.(s) = 0 then launch s)
              (Dag.consumers dag i)
          end
        in
        match a.Scheduler.impl with
        | Dag.Cpu { flops; bytes; threads } ->
            Node.run_cpu sim dst ~flops ~bytes ~threads done_
        | Dag.Fpga { bitstream; estimate; in_bytes; out_bytes } -> (
            match Node.pick_device dst with
            | None ->
                (* infeasible assignment: degrade to CPU at estimate cycles *)
                Node.run_cpu sim dst
                  ~flops:(float_of_int estimate.Everest_hls.Estimate.cycles *. 10.0)
                  ~bytes:(float_of_int (in_bytes + out_bytes))
                  ~threads:1 done_
            | Some dev ->
                let link =
                  match dev.Node.fspec.Spec.attach with
                  | Spec.Bus_coherent -> Spec.opencapi
                  | Spec.Network_attached -> Spec.eth100_tcp
                in
                Node.run_fpga sim dst dev ~bitstream ~estimate ~host_link:link
                  ~in_bytes ~out_bytes done_))
  in
  Array.iteri
    (fun i t -> if t.Dag.inputs = [] then launch i)
    dag.Dag.tasks;
  Cluster.run c;
  Array.iteri
    (fun i f ->
      if f < 0.0 then
        invalid_arg (Printf.sprintf "executor: task %d never completed" i))
    finish;
  let makespan = Array.fold_left Float.max 0.0 finish in
  Metrics.set
    (Metrics.gauge ~registry ~labels "workflow_makespan_s")
    makespan;
  Cluster.publish_metrics ~registry c;
  let per_node =
    List.map
      (fun (nd : Node.t) -> (nd.Node.name, nd.Node.tasks_run))
      c.Cluster.nodes
  in
  {
    makespan;
    task_finish = finish;
    bytes_moved = c.Cluster.bytes_moved;
    transfers = c.Cluster.transfers;
    energy_j = Cluster.total_energy c;
    per_node_tasks = per_node;
    retries = !retries;
    span_log = (if trace_on then Trace.spans_rev tracer else []);
  }

(* Convenience: build a fresh demonstrator, schedule with [policy], run. *)
let run_on_demonstrator ?(cloud_fpgas = 4) ?(edges = 2) ?(endpoints = 4)
    ?failures ?(tracer = `Noop) ?registry ~policy dag =
  let c = Cluster.everest_demonstrator ~cloud_fpgas ~edges ~endpoints () in
  let tracer =
    match tracer with
    | `Noop -> Trace.noop
    | `Sim ->
        Trace.create ~clock:(fun () -> Desim.now c.Cluster.sim) ()
  in
  match Scheduler.by_name policy with
  | None -> invalid_arg ("unknown scheduling policy " ^ policy)
  | Some f ->
      let plan = f c dag in
      (plan, execute ?failures ~tracer ?registry c plan)
