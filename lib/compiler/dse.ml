(* Design-space exploration over the variant space.

   Strategies: exhaustive enumeration (ground truth), random sampling and a
   greedy hill-climb — the trade-off between exploration cost (how many HLS
   estimations run) and result quality that the middle-end manages.

   Candidate evaluation runs on a domain pool and through the shared
   estimation cache (see Variants/Estimate_cache); [explored] counts
   candidate evaluations *requested*, cache hits make them cheap without
   changing the count.  Every strategy publishes the cache counters and
   per-domain pool gauges after it finishes, from the coordinating domain. *)

open Everest_dsl
module Probe = Everest_telemetry.Probe
module Trace = Everest_telemetry.Trace
module Pool = Everest_parallel.Pool
module Rng = Everest_parallel.Rng

type result = {
  explored : int;  (* candidate evaluations performed *)
  variants : Variants.variant list;  (* Pareto survivors *)
  best_time : Variants.variant option;
  best_energy : Variants.variant option;
}

let summarize ?(strategy = "exhaustive") explored vs =
  let best f =
    List.fold_left
      (fun acc v ->
        match acc with Some b when f b <= f v -> acc | _ -> Some v)
      None vs
  in
  let r =
    {
      explored;
      variants = Variants.pareto vs;
      best_time = best (fun v -> v.Variants.time_s);
      best_energy = best (fun v -> v.Variants.energy_j);
    }
  in
  let labels = [ ("strategy", strategy) ] in
  Probe.count ~labels ~by:(float_of_int explored) "dse_evaluations_total";
  Probe.gauge_set ~labels "dse_pareto_size"
    (float_of_int (List.length r.variants));
  r

(* Cache hit/miss gauges + per-domain task gauges, recorded once per
   strategy run from the coordinating domain. *)
let publish_instrumentation pool cache =
  Estimate_cache.publish
    (match cache with Some c -> c | None -> Estimate_cache.global);
  Pool.publish_stats (match pool with Some p -> p | None -> Pool.default ())

let exhaustive ?pool ?cache ?(target = Variants.default_target) ?(annots = [])
    (e : Tensor_expr.expr) : result =
  Probe.time_block ~labels:[ ("stage", "exhaustive") ] "dse_stage"
    (fun () ->
      let vs = Variants.generate ?pool ?cache ~target ~annots e in
      let r = summarize ~strategy:"exhaustive" (List.length vs) vs in
      publish_instrumentation pool cache;
      r)

(* Random subset of the full space: [budget] samples, deterministic seed.
   The shared Rng guards degenerate seeds (0 would freeze the ad-hoc
   generator this code used to carry). *)
let sampled ?pool ?cache ?(target = Variants.default_target) ?(annots = [])
    ?(seed = 17) ~budget (e : Tensor_expr.expr) : result =
  Probe.time_block ~labels:[ ("stage", "sampled") ] "dse_stage" @@ fun () ->
  let summarize explored vs =
    let r = summarize ~strategy:"sampled" explored vs in
    publish_instrumentation pool cache;
    r
  in
  let all = Variants.generate ?pool ?cache ~target ~annots e in
  let n = List.length all in
  if budget >= n then summarize n all
  else begin
    let rng = Rng.create seed in
    let arr = Array.of_list all in
    (* partial Fisher-Yates *)
    for i = 0 to budget - 1 do
      let j = i + Rng.int rng (n - i) in
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp
    done;
    summarize budget (Array.to_list (Array.sub arr 0 budget))
  end

(* Greedy coordinate descent: start from the naive software point and sweep
   one knob at a time — threads, then tile, then layout — keeping the best
   along each axis.  Only the final software point is compared against the
   (few) hardware candidates, so far fewer cost evaluations run than in the
   exhaustive search.  The sweeps revisit points (the threads axis runs
   twice), so evaluation goes through the shared estimation cache. *)
let greedy ?pool ?cache ?(target = Variants.default_target) ?(annots = [])
    (e : Tensor_expr.expr) : result =
  Probe.time_block ~labels:[ ("stage", "greedy") ] "dse_stage" @@ fun () ->
  (* per-axis timing: each coordinate sweep is its own probe stage *)
  let stage name f =
    Probe.time_block ~labels:[ ("stage", "greedy_" ^ name) ] "dse_stage" f
  in
  let explored = ref 0 in
  let eval (p : Cost_model.sw_params) =
    incr explored;
    Variants.eval_sw ?cache target e p
  in
  let better a b = if a.Variants.time_s <= b.Variants.time_s then a else b in
  let sweep current candidates =
    List.fold_left (fun best p -> better best (eval p)) current candidates
  in
  let p0 = { Cost_model.tile = None; layout = Cost_model.Aos; threads = 1 } in
  let current = eval p0 in
  let params v =
    match v.Variants.impl with Variants.Sw p -> p | _ -> assert false
  in
  (* threads axis *)
  let current =
    stage "threads" (fun () ->
        sweep current
          (List.map (fun t -> { (params current) with Cost_model.threads = t })
             target.Variants.sw_threads))
  in
  (* tile axis (only meaningful for contractions) *)
  let current =
    if Cost_model.has_contraction e then
      stage "tile" (fun () ->
          sweep current
            (List.map
               (fun t -> { (params current) with Cost_model.tile = Some t })
               target.Variants.sw_tiles))
    else current
  in
  (* second threads pass: tiling changes the compute/memory balance *)
  let current =
    stage "rethreads" (fun () ->
        sweep current
          (List.map (fun t -> { (params current) with Cost_model.threads = t })
             target.Variants.sw_threads))
  in
  (* layout axis *)
  let current =
    stage "layout" (fun () ->
        sweep current
          [ { (params current) with Cost_model.layout = Cost_model.Soa } ])
  in
  (* hardware candidates *)
  let hw =
    stage "hw" (fun () -> Variants.hw_variants ?pool ?cache target ~dift:false e)
  in
  explored := !explored + List.length hw;
  ignore annots;
  let final = List.fold_left better current hw in
  let r = summarize ~strategy:"greedy" !explored [ final ] in
  publish_instrumentation pool cache;
  r

(* Quality of a strategy versus the exhaustive oracle: ratio of achieved
   best time to true best time (1.0 = optimal). *)
let quality (r : result) (oracle : result) =
  match (r.best_time, oracle.best_time) with
  | Some a, Some b when b.Variants.time_s > 0.0 ->
      a.Variants.time_s /. b.Variants.time_s
  | _ -> infinity
