(** Design-space exploration over the variant space.

    Strategies trade exploration cost (how many cost-model/HLS evaluations
    run) against result quality.  Candidate evaluation goes through a
    domain pool and the shared estimation cache; omit [pool]/[cache] for
    the process-wide defaults.  [explored] counts evaluations requested —
    cache hits make them cheap without changing the count. *)

type result = {
  explored : int;  (** Candidate evaluations performed. *)
  variants : Variants.variant list;  (** Pareto survivors. *)
  best_time : Variants.variant option;
  best_energy : Variants.variant option;
}

(** [strategy] labels the [dse_*] telemetry metrics the summary emits. *)
val summarize : ?strategy:string -> int -> Variants.variant list -> result

(** Evaluate the whole space (the oracle). *)
val exhaustive :
  ?pool:Everest_parallel.Pool.t ->
  ?cache:Estimate_cache.t ->
  ?target:Variants.target ->
  ?annots:Everest_dsl.Annot.t list ->
  Everest_dsl.Tensor_expr.expr ->
  result

(** Deterministic random subset of [budget] candidates.  Any [seed] is
    valid: degenerate seeds (0, multiples of [0x7FFFFFFF]) are guarded by
    {!Everest_parallel.Rng}. *)
val sampled :
  ?pool:Everest_parallel.Pool.t ->
  ?cache:Estimate_cache.t ->
  ?target:Variants.target ->
  ?annots:Everest_dsl.Annot.t list ->
  ?seed:int ->
  budget:int ->
  Everest_dsl.Tensor_expr.expr ->
  result

(** Coordinate descent over threads, tile, threads again, layout, then the
    hardware candidates — far fewer evaluations than exhaustive. *)
val greedy :
  ?pool:Everest_parallel.Pool.t ->
  ?cache:Estimate_cache.t ->
  ?target:Variants.target ->
  ?annots:Everest_dsl.Annot.t list ->
  Everest_dsl.Tensor_expr.expr ->
  result

(** Achieved-to-optimal best-time ratio versus an oracle result (1.0 =
    optimal). *)
val quality : result -> result -> float
