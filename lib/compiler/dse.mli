(** Design-space exploration over the variant space.

    Strategies trade exploration cost (how many cost-model/HLS evaluations
    run) against result quality. *)

type result = {
  explored : int;  (** Candidate evaluations performed. *)
  variants : Variants.variant list;  (** Pareto survivors. *)
  best_time : Variants.variant option;
  best_energy : Variants.variant option;
}

(** [strategy] labels the [dse_*] telemetry metrics the summary emits. *)
val summarize : ?strategy:string -> int -> Variants.variant list -> result

(** Evaluate the whole space (the oracle). *)
val exhaustive :
  ?target:Variants.target ->
  ?annots:Everest_dsl.Annot.t list ->
  Everest_dsl.Tensor_expr.expr ->
  result

(** Deterministic random subset of [budget] candidates. *)
val sampled :
  ?target:Variants.target ->
  ?annots:Everest_dsl.Annot.t list ->
  ?seed:int ->
  budget:int ->
  Everest_dsl.Tensor_expr.expr ->
  result

(** Coordinate descent over threads, tile, threads again, layout, then the
    hardware candidates — far fewer evaluations than exhaustive. *)
val greedy :
  ?target:Variants.target ->
  ?annots:Everest_dsl.Annot.t list ->
  Everest_dsl.Tensor_expr.expr ->
  result

(** Achieved-to-optimal best-time ratio versus an oracle result (1.0 =
    optimal). *)
val quality : result -> result -> float
