(** The end-to-end compilation pipeline of Fig. 1:

    DSL workflow -> unified IR (front-end) -> canonicalized IR (middle-end
    passes) -> per-kernel variants via DSE (middle-end exploration) ->
    executable workflow DAG + tuner knowledge + emitted code (back-end).

    The produced {!compiled_app} is what the EVEREST SDK hands to the
    virtualized runtime. *)

type compiled_kernel = {
  ck_name : string;
  expr : Everest_dsl.Tensor_expr.expr;
  annots : Everest_dsl.Annot.t list;
  dse : Dse.result;
  knowledge : Everest_autotune.Knowledge.t;
  sycl : string;  (** Emitted code of the best software variant. *)
}

type compiled_app = {
  app_name : string;
  ir : Everest_ir.Ir.modul;  (** Unified, canonicalized module. *)
  kernels : compiled_kernel list;
  dag : Everest_workflow.Dag.t;
  pass_reports : Everest_ir.Pass.report list;
  violations : (string * Everest_security.Ift.flow_violation) list;
      (** Static information-flow audit results. *)
  lint : Everest_analysis.Lint.diag list;
      (** Pre-flight lint diagnostics (warnings and infos; errors abort
          the compile). *)
}

exception Compile_error of string

(** Compile a workflow graph.  Per-kernel DSE evaluates candidates on
    [pool] through [cache] (process-wide defaults when omitted, so warm
    re-compiles of the same kernels skip estimation).

    Unless [lint] is [false], a pre-flight {!Everest_analysis.Lint} run
    checks the freshly lowered module — error-severity diagnostics abort
    the compile, warnings are counted in telemetry and kept on the
    returned app.  Per-pass linting is available separately through the
    [?lint_each] hook of {!Everest_ir.Pass.run_pipeline}.
    @raise Compile_error on invalid graphs, IR verification failures, or
    error-severity lint diagnostics. *)
val compile :
  ?pool:Everest_parallel.Pool.t ->
  ?cache:Estimate_cache.t ->
  ?target:Variants.target ->
  ?lint:bool ->
  Everest_dsl.Dataflow.graph ->
  compiled_app

val total_variants : compiled_app -> int
val report : Format.formatter -> compiled_app -> unit
