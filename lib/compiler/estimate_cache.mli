(** Content-addressed cache of hardware/software cost estimations.

    Keys combine {!Everest_dsl.Tensor_expr.fingerprint} with the platform
    spec values and impl params that feed the estimation (sw
    tile/layout/threads, hw unroll/DIFT), so a cached result is reusable
    whenever the same candidate would be re-estimated — across DSE
    strategies, [Pipeline.compile] and repeated autotuner explorations.
    Lookups are safe from pool worker domains; the underlying
    {!Everest_parallel.Cache} does its own locking. *)

open Everest_platform

type value =
  | Sw_cost of { time_s : float; energy_j : float }
  | Hw_rejected  (** Candidate did not fit the FPGA budget. *)
  | Hw_design of {
      design : Everest_hls.Hls.design;
      time_s : float;
      energy_j : float;
      area_luts : int;
    }

type t = value Everest_parallel.Cache.t

val create : ?name:string -> unit -> t

(** The process-wide shared cache (default for every estimation site). *)
val global : t

val sw_key : fp:string -> Spec.cpu -> Cost_model.sw_params -> string
val hw_key : fp:string -> Spec.fpga -> unroll:int -> dift:bool -> string

val find_or_compute : t -> key:string -> (unit -> value) -> value

val stats : t -> Everest_parallel.Cache.stats
val hit_rate : t -> float
val reset : t -> unit

(** Publish hit/miss/entry gauges labelled [cache=<name>].  Call from the
    coordinating domain only. *)
val publish : ?registry:Everest_telemetry.Metrics.registry -> t -> unit
