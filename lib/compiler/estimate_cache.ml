(* Content-addressed cache of hardware/software cost estimations.

   Every DSE strategy regenerates the same candidate space, and the
   exhaustive/sampled/greedy strategies (plus the pipeline and repeated
   autotuner explorations) re-estimate the same points: the expensive part
   — DFG construction, HLS scheduling/binding/estimation — is pure in
   (expression structure, platform spec, impl params), so results are
   memoized under a key built from Tensor_expr.fingerprint and the
   parameter/spec values that feed the estimation.  The cache is shared
   process-wide by default and safe to hit from pool worker domains
   (Everest_parallel.Cache does its own locking). *)

open Everest_platform

type value =
  | Sw_cost of { time_s : float; energy_j : float }
  | Hw_rejected  (* candidate did not fit the FPGA budget *)
  | Hw_design of {
      design : Everest_hls.Hls.design;
      time_s : float;
      energy_j : float;
      area_luts : int;
    }

type t = value Everest_parallel.Cache.t

let create ?(name = "estimate") () : t = Everest_parallel.Cache.create ~name ()

(* The process-wide cache: shared across Dse strategies, Pipeline.compile
   and repeated explorations so warm re-runs skip estimation entirely. *)
let global : t = create ()

(* Cost inputs that are part of the key, not just the spec name: a custom
   target with the same name but different numbers must not collide. *)
let cpu_key (c : Spec.cpu) =
  Printf.sprintf "%s:%d:%h:%h:%h:%h:%h" c.Spec.cpu_name c.Spec.cores
    c.Spec.freq_ghz c.Spec.flops_per_cycle c.Spec.mem_bw_gbs c.Spec.idle_w
    c.Spec.active_w_per_core

let fpga_key (f : Spec.fpga) =
  Printf.sprintf "%s:%s:%d:%d:%d:%d:%h"
    f.Spec.fpga_name
    (match f.Spec.attach with
    | Spec.Bus_coherent -> "bus"
    | Spec.Network_attached -> "net")
    f.Spec.luts f.Spec.dsps f.Spec.brams f.Spec.ffs f.Spec.clock_mhz

let sw_key ~fp (cpu : Spec.cpu) (p : Cost_model.sw_params) =
  String.concat "|" [ fp; "sw"; cpu_key cpu; Cost_model.variant_name p ]

let hw_key ~fp (fpga : Spec.fpga) ~unroll ~dift =
  String.concat "|"
    [ fp; "hw"; fpga_key fpga; string_of_int unroll;
      (if dift then "dift" else "plain") ]

let find_or_compute (t : t) ~key f =
  Everest_parallel.Cache.find_or_compute t ~key f

let stats (t : t) = Everest_parallel.Cache.stats t
let hit_rate (t : t) = Everest_parallel.Cache.hit_rate t
let reset (t : t) = Everest_parallel.Cache.reset t

(* Publish hit/miss/entry gauges (labelled cache=<name>) from the
   coordinating domain; workers never touch the metrics registry. *)
let publish ?registry (t : t) = Everest_parallel.Cache.publish ?registry t
