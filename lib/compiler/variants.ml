(* Generation of hardware and software variants (Fig. 1, middle-end).

   Every kernel is expanded into a set of implementation candidates with
   estimated metrics; the DSE prunes them; survivors become the operating
   points the runtime selects among.

   Candidate evaluation is the hot path of the compile pipeline: each
   hardware point runs DFG construction + HLS schedule/bind/estimate from
   scratch.  Evaluation therefore goes through an Everest_parallel.Pool
   (one task per candidate, deterministic output ordering) and a shared
   Estimate_cache keyed on the expression fingerprint x impl params, so
   repeated explorations — other DSE strategies, autotuner re-runs, warm
   re-compiles — skip estimation entirely.  The evaluation itself touches
   no shared mutable state (Cost_model, Hw_lower and Everest_hls build all
   state locally), which is what makes the pool safe. *)

open Everest_dsl
open Everest_platform
module Pool = Everest_parallel.Pool

type target = {
  cpu : Spec.cpu;
  fpga : Spec.fpga option;
  sw_tiles : int list;
  sw_threads : int list;
  hw_unrolls : int list;
}

let default_target =
  { cpu = Spec.power9; fpga = Some Spec.bus_fpga; sw_tiles = [ 16; 32; 64 ];
    sw_threads = [ 1; 2; 4; 8; 16 ]; hw_unrolls = [ 1; 4; 16; 64; 256 ] }

type impl =
  | Sw of Cost_model.sw_params
  | Hw of { unroll : int; design : Everest_hls.Hls.design }

type variant = {
  vname : string;
  impl : impl;
  time_s : float;
  energy_j : float;
  area_luts : int;  (* 0 for software *)
}

let in_out_bytes (e : Tensor_expr.expr) =
  let ins =
    List.fold_left
      (fun acc (_, s) -> acc + (8 * Tensor_expr.num_elems s))
      0 (Tensor_expr.inputs e)
  in
  (ins, 8 * Tensor_expr.num_elems (Tensor_expr.shape e))

(* ---- candidate spaces ------------------------------------------------------------ *)

let sw_param_space (t : target) (e : Tensor_expr.expr) :
    Cost_model.sw_params list =
  let tiles =
    if Cost_model.has_contraction e then
      None :: List.map (fun x -> Some x) t.sw_tiles
    else [ None ]
  in
  List.concat_map
    (fun tile ->
      List.concat_map
        (fun layout ->
          List.map
            (fun threads -> { Cost_model.tile; layout; threads })
            t.sw_threads)
        [ Cost_model.Aos; Cost_model.Soa ])
    tiles

(* ---- cached evaluation ----------------------------------------------------------- *)

let sw_variant_of ~cache ~fp (t : target) (e : Tensor_expr.expr)
    (p : Cost_model.sw_params) : variant =
  let key = Estimate_cache.sw_key ~fp t.cpu p in
  match
    Estimate_cache.find_or_compute cache ~key (fun () ->
        Estimate_cache.Sw_cost
          { time_s = Cost_model.sw_time t.cpu e p;
            energy_j = Cost_model.sw_energy t.cpu e p })
  with
  | Estimate_cache.Sw_cost { time_s; energy_j } ->
      { vname = Cost_model.variant_name p; impl = Sw p; time_s; energy_j;
        area_luts = 0 }
  | _ -> assert false

(* Evaluate one software candidate through the shared cache (used by the
   greedy DSE's coordinate sweeps, which revisit points). *)
let eval_sw ?(cache = Estimate_cache.global) (t : target)
    (e : Tensor_expr.expr) (p : Cost_model.sw_params) : variant =
  sw_variant_of ~cache ~fp:(Tensor_expr.fingerprint e) t e p

(* One hardware candidate = DFG construction + schedule + bind + estimate
   as a single pool task; the cache stores the fit/reject decision too. *)
let hw_variant_of ~cache ~fp (fpga : Spec.fpga) ~dift ~in_bytes ~out_bytes
    (e : Tensor_expr.expr) (unroll : int) : variant option =
  let key = Estimate_cache.hw_key ~fp fpga ~unroll ~dift in
  match
    Estimate_cache.find_or_compute cache ~key (fun () ->
        let dfg = Hw_lower.dfg_of_expr ~unroll e in
        let trips = Hw_lower.trips e ~unroll in
        let c =
          { Everest_hls.Hls.default_constraints with
            Everest_hls.Hls.clock_mhz = fpga.Spec.clock_mhz;
            unroll; trips; dift; max_banks = max 16 unroll;
            res =
              { Everest_hls.Schedule.default_resources with
                Everest_hls.Schedule.adders = 2 * unroll;
                multipliers = 2 * unroll; mem_ports = 2 } }
        in
        let design = Everest_hls.Hls.synthesize ~c dfg in
        let est = design.Everest_hls.Hls.estimate in
        if
          not
            (Everest_hls.Estimate.fits ~budget:(Spec.fpga_budget fpga) est)
        then Estimate_cache.Hw_rejected
        else
          let link =
            match fpga.Spec.attach with
            | Spec.Bus_coherent -> Spec.opencapi
            | Spec.Network_attached -> Spec.eth100_tcp
          in
          let t_exec = Spec.fpga_kernel_time fpga est in
          let t_io =
            Spec.transfer_time link ~bytes:in_bytes
            +. Spec.transfer_time link ~bytes:out_bytes
          in
          Estimate_cache.Hw_design
            { design;
              time_s = t_exec +. t_io;
              energy_j =
                (t_exec *. est.Everest_hls.Estimate.dynamic_power_w)
                +. (t_io *. 0.2 *. fpga.Spec.active_w);
              area_luts =
                est.Everest_hls.Estimate.area.Everest_hls.Estimate.luts })
  with
  | Estimate_cache.Hw_rejected -> None
  | Estimate_cache.Hw_design { design; time_s; energy_j; area_luts } ->
      Some
        {
          vname =
            Printf.sprintf "hw-u%d%s" unroll (if dift then "-dift" else "");
          impl = Hw { unroll; design };
          time_s; energy_j; area_luts;
        }
  | Estimate_cache.Sw_cost _ -> assert false

(* ---- variant generation ----------------------------------------------------------- *)

let sw_variants ?pool ?(cache = Estimate_cache.global) (t : target)
    (e : Tensor_expr.expr) : variant list =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let fp = Tensor_expr.fingerprint e in
  Pool.parallel_map pool (sw_variant_of ~cache ~fp t e) (sw_param_space t e)

let hw_variants ?pool ?(cache = Estimate_cache.global) (t : target)
    ?(dift = false) (e : Tensor_expr.expr) : variant list =
  match t.fpga with
  | None -> []
  | Some fpga ->
      let pool = match pool with Some p -> p | None -> Pool.default () in
      let fp = Tensor_expr.fingerprint e in
      let in_bytes, out_bytes = in_out_bytes e in
      let total_work = Hw_lower.trips e ~unroll:1 in
      let unrolls =
        List.filter
          (fun unroll -> not (unroll > 1 && unroll * 4 > total_work))
          t.hw_unrolls
      in
      List.filter_map Fun.id
        (Pool.parallel_map pool
           (hw_variant_of ~cache ~fp fpga ~dift ~in_bytes ~out_bytes e)
           unrolls)

(* All variants of a kernel under a target.  Security annotations requiring
   confidentiality force DIFT-instrumented hardware variants. *)
let generate ?pool ?cache ?(target = default_target) ?(annots = [])
    (e : Tensor_expr.expr) : variant list =
  let need_dift =
    Everest_ir.Dialect_sec.level_leq Everest_ir.Dialect_sec.Confidential
      (Annot.security_level annots)
  in
  sw_variants ?pool ?cache target e
  @ hw_variants ?pool ?cache target ~dift:need_dift e

(* ---- Pareto filtering ------------------------------------------------------------ *)

(* Keep the points not dominated in (time, energy, area). *)
let dominates a b =
  a.time_s <= b.time_s && a.energy_j <= b.energy_j
  && a.area_luts <= b.area_luts
  && (a.time_s < b.time_s || a.energy_j < b.energy_j || a.area_luts < b.area_luts)

(* O(n^2) reference implementation, kept as the oracle for the property
   test that pins the sweep below to the same semantics. *)
let pareto_naive (vs : variant list) =
  List.filter (fun v -> not (List.exists (fun w -> dominates w v) vs)) vs

module Fmap = Map.Make (Float)

(* O(n log n) Pareto filter: sort lexicographically by (time, energy,
   area); any dominator of a point sorts strictly before it, so a sweep in
   that order only has to ask "does an already-seen point have energy <= E
   and area <= A?".  Seen points are kept as a staircase (a map energy ->
   min area whose areas strictly decrease as energy grows): the answer is
   the area at the greatest energy <= E.  Points with identical keys are
   queried as a batch before any of them is inserted — equal points do not
   dominate each other.  Survivors come back in input order, exactly as the
   naive filter returns them. *)
let pareto (vs : variant list) =
  match vs with
  | [] | [ _ ] -> vs
  | _ ->
      let arr = Array.of_list vs in
      let n = Array.length arr in
      let key i = (arr.(i).time_s, arr.(i).energy_j, arr.(i).area_luts) in
      let order = Array.init n (fun i -> i) in
      Array.sort (fun a b -> compare (key a) (key b)) order;
      let dominated = Array.make n false in
      let stair = ref Fmap.empty in
      let is_dominated e a =
        match Fmap.find_last_opt (fun k -> k <= e) !stair with
        | Some (_, a') -> a' <= a
        | None -> false
      in
      let insert e a =
        if not (is_dominated e a) then begin
          (* drop staircase entries the new point dominates-or-equals *)
          let rec prune () =
            match Fmap.find_first_opt (fun k -> k >= e) !stair with
            | Some (k, a') when a' >= a ->
                stair := Fmap.remove k !stair;
                prune ()
            | _ -> ()
          in
          prune ();
          stair := Fmap.add e a !stair
        end
      in
      let i = ref 0 in
      while !i < n do
        (* batch of identical (time, energy, area) keys *)
        let j = ref !i in
        while !j < n && key order.(!j) = key order.(!i) do
          incr j
        done;
        let _, e, a = key order.(!i) in
        let a = float_of_int a in
        if is_dominated e a then
          for k = !i to !j - 1 do
            dominated.(order.(k)) <- true
          done
        else insert e a;
        i := !j
      done;
      let out = ref [] in
      for k = n - 1 downto 0 do
        if not dominated.(k) then out := arr.(k) :: !out
      done;
      !out

(* ---- bridges to the runtime -------------------------------------------------------- *)

let to_knowledge ~kernel ?(features = []) (vs : variant list) :
    Everest_autotune.Knowledge.t =
  Everest_autotune.Knowledge.create kernel
    (List.map
       (fun v ->
         { Everest_autotune.Knowledge.variant = v.vname; features;
           metrics =
             [ ("time_s", v.time_s); ("energy_j", v.energy_j);
               ("area_luts", float_of_int v.area_luts) ] })
       vs)

let to_dag_impl (e : Tensor_expr.expr) (v : variant) : Everest_workflow.Dag.impl =
  let in_bytes, out_bytes = in_out_bytes e in
  match v.impl with
  | Sw p ->
      Everest_workflow.Dag.Cpu
        { flops = float_of_int (Tensor_expr.flops e);
          bytes = Cost_model.traffic_bytes e p;
          threads = p.Cost_model.threads }
  | Hw { design; _ } ->
      Everest_workflow.Dag.Fpga
        { bitstream = v.vname; estimate = design.Everest_hls.Hls.estimate;
          in_bytes; out_bytes }

let pp ppf v =
  Fmt.pf ppf "%-20s %.3es %.3eJ %7d LUT" v.vname v.time_s v.energy_j v.area_luts
