(** Generation of hardware and software variants (Fig. 1, middle-end).

    Every kernel expands into implementation candidates with estimated
    metrics; the DSE prunes them; survivors become the operating points the
    runtime selects among.

    Candidate evaluation runs through an {!Everest_parallel.Pool} (one task
    per candidate, deterministic output ordering) and a shared
    {!Estimate_cache}, so repeated explorations reuse earlier estimations.
    When [pool]/[cache] are omitted the process-wide defaults are used. *)

open Everest_platform

type target = {
  cpu : Spec.cpu;
  fpga : Spec.fpga option;
  sw_tiles : int list;
  sw_threads : int list;
  hw_unrolls : int list;
}

(** POWER9 + bus FPGA with a moderate knob grid. *)
val default_target : target

type impl =
  | Sw of Cost_model.sw_params
  | Hw of { unroll : int; design : Everest_hls.Hls.design }

type variant = {
  vname : string;
  impl : impl;
  time_s : float;
  energy_j : float;
  area_luts : int;  (** 0 for software variants. *)
}

val in_out_bytes : Everest_dsl.Tensor_expr.expr -> int * int

(** The software knob grid of a target for an expression (tiles only for
    contraction kernels). *)
val sw_param_space :
  target -> Everest_dsl.Tensor_expr.expr -> Cost_model.sw_params list

(** Evaluate one software candidate through the estimation cache. *)
val eval_sw :
  ?cache:Estimate_cache.t ->
  target ->
  Everest_dsl.Tensor_expr.expr ->
  Cost_model.sw_params ->
  variant

val sw_variants :
  ?pool:Everest_parallel.Pool.t ->
  ?cache:Estimate_cache.t ->
  target ->
  Everest_dsl.Tensor_expr.expr ->
  variant list

(** Hardware candidates that fit the target FPGA; [dift] instruments every
    design with taint tracking.  Each candidate's DFG construction +
    schedule + bind + estimate runs as one pool task. *)
val hw_variants :
  ?pool:Everest_parallel.Pool.t ->
  ?cache:Estimate_cache.t ->
  target ->
  ?dift:bool ->
  Everest_dsl.Tensor_expr.expr ->
  variant list

(** Full variant space.  Kernels annotated Confidential or higher get
    DIFT-instrumented hardware variants. *)
val generate :
  ?pool:Everest_parallel.Pool.t ->
  ?cache:Estimate_cache.t ->
  ?target:target ->
  ?annots:Everest_dsl.Annot.t list ->
  Everest_dsl.Tensor_expr.expr ->
  variant list

(** Pareto dominance in (time, energy, area). *)
val dominates : variant -> variant -> bool

(** O(n log n) Pareto filter (lexicographic sort + staircase sweep on
    energy/area).  Survivors are returned in input order, identical to
    {!pareto_naive}. *)
val pareto : variant list -> variant list

(** O(n²) reference implementation (oracle for the property tests). *)
val pareto_naive : variant list -> variant list

(** Bridge to the runtime: variants as mARGOt operating points. *)
val to_knowledge :
  kernel:string ->
  ?features:(string * float) list ->
  variant list ->
  Everest_autotune.Knowledge.t

(** Bridge to the workflow layer: a variant as a task implementation. *)
val to_dag_impl :
  Everest_dsl.Tensor_expr.expr -> variant -> Everest_workflow.Dag.impl

val pp : Format.formatter -> variant -> unit
