(* The end-to-end compilation pipeline of Fig. 1:

     DSL workflow -> unified IR (front-end)
                  -> canonicalized IR (middle-end passes)
                  -> per-kernel variants via DSE (middle-end exploration)
                  -> executable workflow DAG + knowledge + emitted code
                     (back-end)

   The produced [compiled_app] is what the EVEREST SDK hands to the
   virtualized runtime. *)

open Everest_dsl

type compiled_kernel = {
  ck_name : string;
  expr : Tensor_expr.expr;
  annots : Annot.t list;
  dse : Dse.result;
  knowledge : Everest_autotune.Knowledge.t;
  sycl : string;  (* emitted code of the best software variant *)
}

type compiled_app = {
  app_name : string;
  ir : Everest_ir.Ir.modul;  (* unified, canonicalized module *)
  kernels : compiled_kernel list;
  dag : Everest_workflow.Dag.t;
  pass_reports : Everest_ir.Pass.report list;
  violations : (string * Everest_security.Ift.flow_violation) list;
  lint : Everest_analysis.Lint.diag list;
}

exception Compile_error of string

module Lint = Everest_analysis.Lint

(* Lint gate: error diagnostics abort the compile by raising. *)
let lint_gate ~stage m =
  let ds = Lint.run m in
  (match Lint.errors ds with
  | [] -> ()
  | errs ->
      raise
        (Compile_error (Fmt.str "lint (%s):@.%s" stage (Lint.render_text errs))));
  ds

let count_lint_warnings ds =
  List.iter
    (fun (d : Lint.diag) ->
      if d.Lint.severity = Lint.Warning then
        Everest_telemetry.Metrics.inc
          (Everest_telemetry.Metrics.counter
             ~labels:[ ("code", d.Lint.code) ]
             ~help:"Lint warnings observed during compilation"
             "compile_lint_warnings_total"))
    ds

let compile ?pool ?cache ?(target = Variants.default_target) ?(lint = true)
    (g : Dataflow.graph) : compiled_app =
  (match Dataflow.validate g with
  | Ok () -> ()
  | Error es -> raise (Compile_error (String.concat "; " es)));
  Everest_ir.Registry.register_all ();
  let ctx = Everest_ir.Ir.ctx () in
  (* front-end: unified IR *)
  let ir0 = Lower.lower_graph ctx g in
  (match Everest_ir.Verify.check_module ir0 with
  | Ok () -> ()
  | Error ds ->
      raise (Compile_error (Everest_ir.Verify.errors_to_string ds)));
  (* pre-flight static analysis over the freshly lowered module;
     warnings are counted in telemetry (labelled by rule code) and kept
     on the compiled app for inspection *)
  let lint_diags = if lint then lint_gate ~stage:"pre-flight" ir0 else [] in
  count_lint_warnings lint_diags;
  (* middle-end: canonicalization pipeline.  The lint gate is pre-flight
     only; callers who want per-pass linting can pass their own
     [?lint_each] hook to [Pass.run_pipeline]. *)
  let ir, pass_reports =
    Everest_ir.Pass.run_pipeline ctx Everest_ir.Transforms.standard_pipeline
      ir0
  in
  (* static security audit *)
  let violations = Everest_security.Ift.analyze_module ir in
  (* per-kernel DSE *)
  let kernels =
    List.filter_map
      (fun (n : Dataflow.node) ->
        match n.Dataflow.kernel with
        | Some (Dataflow.Tensor_kernel e) ->
            let dse = Dse.exhaustive ?pool ?cache ~target ~annots:n.Dataflow.annots e in
            let knowledge =
              Variants.to_knowledge ~kernel:n.Dataflow.nname dse.Dse.variants
            in
            let sycl =
              match dse.Dse.best_time with
              | Some { Variants.impl = Variants.Sw p; _ } ->
                  Backend.emit_sycl ~kernel:n.Dataflow.nname e p
              | _ -> (
                  (* best is hardware: emit the best software fallback *)
                  let sw =
                    List.filter
                      (fun v ->
                        match v.Variants.impl with
                        | Variants.Sw _ -> true
                        | _ -> false)
                      dse.Dse.variants
                  in
                  match sw with
                  | { Variants.impl = Variants.Sw p; _ } :: _ ->
                      Backend.emit_sycl ~kernel:n.Dataflow.nname e p
                  | _ -> "// no software variant\n")
            in
            Some { ck_name = n.Dataflow.nname; expr = e;
                   annots = n.Dataflow.annots; dse; knowledge; sycl }
        | _ -> None)
      (Dataflow.nodes g)
  in
  (* back-end: executable DAG with one impl per Pareto variant *)
  let find_kernel name =
    List.find_opt (fun k -> String.equal k.ck_name name) kernels
  in
  let tasks =
    List.map
      (fun (n : Dataflow.node) ->
        let impls =
          match n.Dataflow.kernel with
          | None -> [ Everest_workflow.Dag.Cpu { flops = 1e6; bytes = float_of_int n.Dataflow.out_bytes; threads = 1 } ]
          | Some (Dataflow.Tensor_kernel e) -> (
              match find_kernel n.Dataflow.nname with
              | Some ck ->
                  List.map (Variants.to_dag_impl e) ck.dse.Dse.variants
              | None -> [])
          | Some (Dataflow.External { est_flops; est_bytes; _ }) ->
              [ Everest_workflow.Dag.Cpu
                  { flops = float_of_int est_flops;
                    bytes = float_of_int est_bytes; threads = 1 } ]
          | Some (Dataflow.Ai_model _ as k) ->
              [ Everest_workflow.Dag.Cpu
                  { flops = float_of_int (Dataflow.kernel_flops (Some k));
                    bytes = float_of_int n.Dataflow.out_bytes; threads = 4 } ]
        in
        let pinned =
          List.find_map
            (function Annot.Locality l -> Some l | _ -> None)
            n.Dataflow.annots
          |> fun loc ->
          match loc with
          | Some l when String.length l > 5 && String.sub l 0 5 = "node:" ->
              Some (String.sub l 5 (String.length l - 5))
          | _ -> None
        in
        Everest_workflow.Dag.task ~id:n.Dataflow.nid ~name:n.Dataflow.nname
          ~inputs:(List.map (fun (d : Dataflow.node) -> d.Dataflow.nid) n.Dataflow.deps)
          ~out_bytes:n.Dataflow.out_bytes ~impls ~pinned ())
      (Dataflow.nodes g)
  in
  let dag = Everest_workflow.Dag.create g.Dataflow.gname tasks in
  { app_name = g.Dataflow.gname; ir; kernels; dag; pass_reports; violations;
    lint = lint_diags }

let total_variants app =
  List.fold_left
    (fun acc k -> acc + List.length k.dse.Dse.variants)
    0 app.kernels

let report ppf app =
  Fmt.pf ppf "app %s: %d kernels, %d Pareto variants, %d IR ops, %d violations@."
    app.app_name (List.length app.kernels) (total_variants app)
    (Everest_ir.Ir.module_op_count app.ir)
    (List.length app.violations);
  List.iter
    (fun k ->
      Fmt.pf ppf "  kernel %-12s explored=%-3d pareto=%d best=%a@." k.ck_name
        k.dse.Dse.explored
        (List.length k.dse.Dse.variants)
        Fmt.(option Variants.pp)
        k.dse.Dse.best_time)
    app.kernels
