(* Hierarchical spans over a pluggable clock with a bounded in-memory sink.

   A span is one timed region with attributes; parent/child nesting comes
   either from an explicit [?parent] (asynchronous code: the executor opens a
   task span, transfers nest under it across Desim callbacks) or from the
   tracer's stack of currently open [with_span] scopes (synchronous code:
   compiler passes, DSE stages).

   The sink keeps the first [capacity] started spans and counts the rest as
   dropped — telemetry must never grow without bound inside a long run. *)

type attr_value = S of string | I of int | F of float | B of bool

type attr = string * attr_value

type span = {
  id : int;
  parent : int option;
  name : string;
  track : int;  (* render lane: Chrome trace tid; executor uses one per node *)
  start_s : float;
  mutable end_s : float;  (* < start_s while the span is still open *)
  mutable attrs : attr list;
}

type t = {
  clock : Clock.t;
  capacity : int;
  mutable pool : span array;  (* slots [0, n_spans) hold spans in start order *)
  mutable n_spans : int;
  mutable dropped : int;
  mutable next_id : int;
  mutable stack : span list;  (* open [with_span] scopes, innermost first *)
  mutable track_names : (int * string) list;
}

(* Filler for unused pool slots; never handed out. *)
let null_span =
  { id = -1; parent = None; name = ""; track = 0; start_s = 0.0; end_s = 0.0;
    attrs = [] }

let create ?(capacity = 65536) ?(clock = Clock.wall) () =
  { clock; capacity; pool = [||]; n_spans = 0; dropped = 0; next_id = 0;
    stack = []; track_names = [] }

(* The shared disabled tracer: records nothing, costs (almost) nothing.
   Instrumented code paths default to it so uninstrumented runs stay fast. *)
let noop = create ~capacity:0 ~clock:(fun () -> 0.0) ()

let is_noop t = t == noop

let name_track t track name =
  if not (List.mem_assoc track t.track_names) then
    t.track_names <- (track, name) :: t.track_names

let track_name t track = List.assoc_opt track t.track_names
let named_tracks t = List.sort compare t.track_names

let start t ?parent ?(track = 0) ?(attrs = []) name =
  let parent =
    match parent with
    | Some _ as p -> p
    | None -> ( match t.stack with [] -> None | s :: _ -> Some s.id)
  in
  let s =
    { id = t.next_id; parent; name; track; start_s = t.clock ();
      end_s = neg_infinity; attrs }
  in
  t.next_id <- t.next_id + 1;
  if t.n_spans < t.capacity then begin
    (* pooled sink: amortized O(1) append, no cons cell per span — at 10⁶
       spans the historical list cost dominated report forcing *)
    if t.n_spans = Array.length t.pool then begin
      let cap = min t.capacity (max 256 (2 * t.n_spans)) in
      let bigger = Array.make cap null_span in
      Array.blit t.pool 0 bigger 0 t.n_spans;
      t.pool <- bigger
    end;
    t.pool.(t.n_spans) <- s;
    t.n_spans <- t.n_spans + 1
  end
  else t.dropped <- t.dropped + 1;
  s

let set_attr s key v = s.attrs <- (key, v) :: List.remove_assoc key s.attrs

(* Prepend rather than dedupe: [attr] reads the first binding, so late
   attributes shadow earlier ones and the hot path stays allocation-light
   (exporters dedupe on their own, cold, path). *)
let finish t ?attrs s =
  (match attrs with
  | None | Some [] -> ()
  | Some attrs -> s.attrs <- attrs @ s.attrs);
  s.end_s <- t.clock ()

let finished s = s.end_s >= s.start_s
let duration s = if finished s then s.end_s -. s.start_s else 0.0

(* Scratch span handed to callbacks when tracing is disabled, so [with_span]
   bodies always receive a span they may set attributes on. *)
let dummy_span () =
  { id = -1; parent = None; name = "(disabled)"; track = 0; start_s = 0.0;
    end_s = 0.0; attrs = [] }

(* Synchronous scoped span: nesting tracked on the tracer's stack. *)
let with_span t ?(attrs = []) name f =
  if is_noop t then f (dummy_span ())
  else begin
    let s = start t ~attrs name in
    t.stack <- s :: t.stack;
    Fun.protect
      ~finally:(fun () ->
        (match t.stack with
        | top :: rest when top == s -> t.stack <- rest
        | _ -> ());
        finish t s)
      (fun () -> f s)
  end

(* Completed+open spans in start order. *)
let spans t =
  let acc = ref [] in
  for i = t.n_spans - 1 downto 0 do
    acc := t.pool.(i) :: !acc
  done;
  !acc

(* Same spans, newest first. *)
let spans_rev t =
  let acc = ref [] in
  for i = 0 to t.n_spans - 1 do
    acc := t.pool.(i) :: !acc
  done;
  !acc

(* Start-order snapshot of the pool — the cheap bulk read: one array copy,
   no per-span cons cell. *)
let to_array t = Array.sub t.pool 0 t.n_spans

(* Zero-allocation walk in start order.  [unsafe_get] is fine: slots
   [0, n_spans) are always live spans by the sink invariant. *)
let iter t f =
  for i = 0 to t.n_spans - 1 do
    f (Array.unsafe_get t.pool i)
  done

let span_count t = t.n_spans
let next_span_id t = t.next_id
let dropped t = t.dropped

let roots t = List.filter (fun s -> s.parent = None) (spans t)
let children t s = List.filter (fun c -> c.parent = Some s.id) (spans t)
let find t name = List.find_opt (fun s -> String.equal s.name name) (spans t)

let attr s key = List.assoc_opt key s.attrs

let attr_int s key =
  match attr s key with Some (I i) -> Some i | _ -> None

let attr_string s key =
  match attr s key with Some (S v) -> Some v | _ -> None

(* Allocation-free variants for per-span hot loops (the report builder
   walks 10⁶-span logs): no [option] wrapper, first binding wins as in
   [attr].  The recursion lives at top level — an inner [let rec] would
   allocate a fresh closure per call, which at two lookups per span is
   megawords of garbage on a million-span walk. *)
let rec attr_is_from attrs key v =
  match attrs with
  | [] -> false
  | (k, value) :: rest ->
      if String.equal k key then
        match value with S x -> String.equal x v | _ -> false
      else attr_is_from rest key v

let attr_is s key v = attr_is_from s.attrs key v

let rec attr_int_from attrs key default =
  match attrs with
  | [] -> default
  | (k, value) :: rest ->
      if String.equal k key then
        match value with I i -> i | _ -> default
      else attr_int_from rest key default

let attr_int_def s key ~default = attr_int_from s.attrs key default

let reset t =
  t.pool <- [||];  (* release the pool so retained spans stay collectable *)
  t.n_spans <- 0;
  t.dropped <- 0;
  t.next_id <- 0;
  t.stack <- [];
  t.track_names <- []

let pp_attr_value ppf = function
  | S s -> Fmt.string ppf s
  | I i -> Fmt.int ppf i
  | F f -> Fmt.float ppf f
  | B b -> Fmt.bool ppf b

let pp_span ppf s =
  Fmt.pf ppf "[%g..%g] %s%a" s.start_s
    (if finished s then s.end_s else Float.nan)
    s.name
    Fmt.(list ~sep:nop (fun ppf (k, v) -> pf ppf " %s=%a" k pp_attr_value v))
    s.attrs
