(* Hierarchical spans over a pluggable clock with a bounded in-memory sink.

   A span is one timed region with attributes; parent/child nesting comes
   either from an explicit [?parent] (asynchronous code: the executor opens a
   task span, transfers nest under it across Desim callbacks) or from the
   tracer's stack of currently open [with_span] scopes (synchronous code:
   compiler passes, DSE stages).

   The sink keeps the first [capacity] started spans and counts the rest as
   dropped — telemetry must never grow without bound inside a long run. *)

type attr_value = S of string | I of int | F of float | B of bool

type attr = string * attr_value

type span = {
  id : int;
  parent : int option;
  name : string;
  track : int;  (* render lane: Chrome trace tid; executor uses one per node *)
  start_s : float;
  mutable end_s : float;  (* < start_s while the span is still open *)
  mutable attrs : attr list;
}

type t = {
  clock : Clock.t;
  capacity : int;
  mutable spans : span list;  (* completed+open, newest first *)
  mutable n_spans : int;
  mutable dropped : int;
  mutable next_id : int;
  mutable stack : span list;  (* open [with_span] scopes, innermost first *)
  mutable track_names : (int * string) list;
}

let create ?(capacity = 65536) ?(clock = Clock.wall) () =
  { clock; capacity; spans = []; n_spans = 0; dropped = 0; next_id = 0;
    stack = []; track_names = [] }

(* The shared disabled tracer: records nothing, costs (almost) nothing.
   Instrumented code paths default to it so uninstrumented runs stay fast. *)
let noop = create ~capacity:0 ~clock:(fun () -> 0.0) ()

let is_noop t = t == noop

let name_track t track name =
  if not (List.mem_assoc track t.track_names) then
    t.track_names <- (track, name) :: t.track_names

let track_name t track = List.assoc_opt track t.track_names
let named_tracks t = List.sort compare t.track_names

let start t ?parent ?(track = 0) ?(attrs = []) name =
  let parent =
    match parent with
    | Some _ as p -> p
    | None -> ( match t.stack with [] -> None | s :: _ -> Some s.id)
  in
  let s =
    { id = t.next_id; parent; name; track; start_s = t.clock ();
      end_s = neg_infinity; attrs }
  in
  t.next_id <- t.next_id + 1;
  if t.n_spans < t.capacity then begin
    t.spans <- s :: t.spans;
    t.n_spans <- t.n_spans + 1
  end
  else t.dropped <- t.dropped + 1;
  s

let set_attr s key v = s.attrs <- (key, v) :: List.remove_assoc key s.attrs

(* Prepend rather than dedupe: [attr] reads the first binding, so late
   attributes shadow earlier ones and the hot path stays allocation-light
   (exporters dedupe on their own, cold, path). *)
let finish t ?attrs s =
  (match attrs with
  | None | Some [] -> ()
  | Some attrs -> s.attrs <- attrs @ s.attrs);
  s.end_s <- t.clock ()

let finished s = s.end_s >= s.start_s
let duration s = if finished s then s.end_s -. s.start_s else 0.0

(* Scratch span handed to callbacks when tracing is disabled, so [with_span]
   bodies always receive a span they may set attributes on. *)
let dummy_span () =
  { id = -1; parent = None; name = "(disabled)"; track = 0; start_s = 0.0;
    end_s = 0.0; attrs = [] }

(* Synchronous scoped span: nesting tracked on the tracer's stack. *)
let with_span t ?(attrs = []) name f =
  if is_noop t then f (dummy_span ())
  else begin
    let s = start t ~attrs name in
    t.stack <- s :: t.stack;
    Fun.protect
      ~finally:(fun () ->
        (match t.stack with
        | top :: rest when top == s -> t.stack <- rest
        | _ -> ());
        finish t s)
      (fun () -> f s)
  end

(* Completed+open spans in start order. *)
let spans t = List.rev t.spans

(* Same spans, newest first, without the copy — for hot paths that only
   fold over the log and don't care about order. *)
let spans_rev t = t.spans
let span_count t = t.n_spans
let dropped t = t.dropped

let roots t = List.filter (fun s -> s.parent = None) (spans t)
let children t s = List.filter (fun c -> c.parent = Some s.id) (spans t)
let find t name = List.find_opt (fun s -> String.equal s.name name) (spans t)

let attr s key = List.assoc_opt key s.attrs

let attr_int s key =
  match attr s key with Some (I i) -> Some i | _ -> None

let attr_string s key =
  match attr s key with Some (S v) -> Some v | _ -> None

let reset t =
  t.spans <- [];
  t.n_spans <- 0;
  t.dropped <- 0;
  t.next_id <- 0;
  t.stack <- [];
  t.track_names <- []

let pp_attr_value ppf = function
  | S s -> Fmt.string ppf s
  | I i -> Fmt.int ppf i
  | F f -> Fmt.float ppf f
  | B b -> Fmt.bool ppf b

let pp_span ppf s =
  Fmt.pf ppf "[%g..%g] %s%a" s.start_s
    (if finished s then s.end_s else Float.nan)
    s.name
    Fmt.(list ~sep:nop (fun ppf (k, v) -> pf ppf " %s=%a" k pp_attr_value v))
    s.attrs
