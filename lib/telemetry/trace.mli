(** Hierarchical spans over a pluggable clock with a bounded in-memory sink.

    A span is one timed region with attributes; parent/child nesting comes
    either from an explicit [?parent] (asynchronous code: the executor opens
    a task span and nests transfers under it across Desim callbacks) or from
    the tracer's stack of currently open [with_span] scopes (synchronous
    code: compiler passes, DSE stages).

    The sink keeps the first [capacity] started spans and counts the rest as
    dropped — telemetry must never grow without bound inside a long run. *)

type attr_value = S of string | I of int | F of float | B of bool

type attr = string * attr_value

type span = {
  id : int;
  parent : int option;
  name : string;
  track : int;  (** render lane: Chrome trace tid; executor uses one per node *)
  start_s : float;
  mutable end_s : float;  (** < [start_s] while the span is still open *)
  mutable attrs : attr list;
}

type t

(** [create ()] makes a fresh tracer. Span ids are allocated monotonically
    from 0, counting every *started* span — including spans dropped once the
    sink is full — so an id is a stable identity within one tracer
    generation. [reset] starts a new generation: ids restart at 0 and any
    spans retained from before the reset must not be mixed with spans
    recorded after it. *)
val create : ?capacity:int -> ?clock:Clock.t -> unit -> t

(** The shared disabled tracer: records nothing, costs (almost) nothing.
    Instrumented code paths default to it so uninstrumented runs stay
    fast. *)
val noop : t

val is_noop : t -> bool

(** [name_track t track name] gives a render track a human name (first
    binding wins). *)
val name_track : t -> int -> string -> unit

val track_name : t -> int -> string option
val named_tracks : t -> (int * string) list

val start : t -> ?parent:int -> ?track:int -> ?attrs:attr list -> string -> span

(** [set_attr s key v] sets [key], replacing any previous binding. *)
val set_attr : span -> string -> attr_value -> unit

(** [finish t ?attrs s] stamps the end time; [?attrs] are *prepended*, so
    late attributes shadow earlier ones ([attr] reads the first binding) and
    the hot path stays allocation-light — exporters dedupe on their own,
    cold, path. *)
val finish : t -> ?attrs:attr list -> span -> unit

val finished : span -> bool

(** 0 while the span is still open. *)
val duration : span -> float

(** Synchronous scoped span: nesting tracked on the tracer's stack. The
    callback always receives a span it may set attributes on, even when
    tracing is disabled. *)
val with_span : t -> ?attrs:attr list -> string -> (span -> 'a) -> 'a

(** Completed+open spans in start order (copies the log). *)
val spans : t -> span list

(** Same spans, newest first (also a copy — the sink is a pooled array, so
    both list views cost one cons per span; prefer [to_array] or [iter] on
    hot paths). *)
val spans_rev : t -> span list

(** Start-order snapshot: one array copy, no per-span cons cell.  The cheap
    bulk read for million-span logs. *)
val to_array : t -> span array

(** Zero-allocation walk over the log in start order. *)
val iter : t -> (span -> unit) -> unit

val span_count : t -> int

(** Exclusive upper bound on span ids in this tracer generation (counts
    dropped spans too) — lets readers size dense id-indexed tables. *)
val next_span_id : t -> int

(** Spans lost to the bounded sink. *)
val dropped : t -> int

(** O(n) scans — fine for tests and one-shot queries; index the log with
    [Everest_observe.Span_dag] for repeated lookups. *)
val roots : t -> span list

val children : t -> span -> span list
val find : t -> string -> span option

val attr : span -> string -> attr_value option
val attr_int : span -> string -> int option
val attr_string : span -> string -> string option

(** Allocation-free variants for per-span hot loops.  [attr_is s key v] is
    true iff [key]'s first binding is the string [v]; [attr_int_def] reads
    an integer attribute with a default instead of an [option]. *)
val attr_is : span -> string -> string -> bool

val attr_int_def : span -> string -> default:int -> int

(** Drop every recorded span and start a new tracer generation: span ids
    restart at 0 (see [create]), the open-scope stack, drop counter and
    track names are cleared. The clock and capacity are kept. *)
val reset : t -> unit

val pp_attr_value : attr_value Fmt.t
val pp_span : span Fmt.t
