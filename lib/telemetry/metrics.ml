(* Process-wide metrics: named counters, gauges and histograms, labeled by
   (key,value) pairs.

   Histograms use fixed log-scale buckets (factor 10^(1/10) per bucket from
   1 ns up) so one layout covers everything from span durations in simulated
   seconds to byte counts; quantiles are estimated by geometric interpolation
   inside the bucket that crosses the requested rank — the error is bounded
   by the bucket ratio (~26%), which is plenty for p50/p90/p99 steering.

   A metric's identity is (name, sorted labels): asking for the same name
   with the same labels returns the same underlying cell, so instrumentation
   sites never need to coordinate. *)

(* ---- histogram ------------------------------------------------------------------ *)

let bucket_ratio = 10.0 ** 0.1
let bucket_min = 1e-9
let n_buckets = 181  (* covers 1e-9 .. 10^9.1, plus under/overflow *)

(* Computed eagerly: a [lazy] here would be forced from whichever domain
   observes first, and Lazy.force is not safe under concurrent forcing. *)
let bucket_upper =
  Array.init n_buckets (fun i ->
      bucket_min *. (bucket_ratio ** float_of_int (i + 1)))

(* index of the bucket whose (lower, upper] range holds [x] *)
let bucket_index x =
  if x <= bucket_min then 0
  else
    let i =
      int_of_float (Float.ceil (10.0 *. (Float.log10 x +. 9.0))) - 1
    in
    (* float_of/log rounding can land one off; nudge into the right bucket *)
    let upper = bucket_upper in
    let i = max 0 (min (n_buckets - 1) i) in
    if x > upper.(i) then min (n_buckets - 1) (i + 1)
    else if i > 0 && x <= upper.(i - 1) then i - 1
    else i

type histogram = {
  counts : int array;  (* per-bucket observation counts *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

let make_histogram () =
  { counts = Array.make n_buckets 0; h_count = 0; h_sum = 0.0;
    h_min = infinity; h_max = neg_infinity }

let observe h x =
  let x = Float.max 0.0 x in
  h.counts.(bucket_index x) <- h.counts.(bucket_index x) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. x;
  h.h_min <- Float.min h.h_min x;
  h.h_max <- Float.max h.h_max x

let hist_count h = h.h_count
let hist_sum h = h.h_sum
let hist_mean h = if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count

(* Estimated value at quantile [q] in [0,1]. *)
let quantile h q =
  if h.h_count = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = q *. float_of_int h.h_count in
    let upper = bucket_upper in
    let rec scan i cum =
      if i >= n_buckets then h.h_max
      else
        let cum' = cum + h.counts.(i) in
        if float_of_int cum' >= rank && h.counts.(i) > 0 then begin
          let lower = if i = 0 then 0.0 else upper.(i - 1) in
          let frac =
            (rank -. float_of_int cum) /. float_of_int h.counts.(i)
          in
          (* geometric interpolation inside the log-scale bucket *)
          let lo = Float.max lower (bucket_min /. bucket_ratio) in
          let v = lo *. ((upper.(i) /. lo) ** frac) in
          Float.min (Float.min v h.h_max) upper.(i)
        end
        else scan (i + 1) cum'
    in
    scan 0 0
  end

(* ---- registry ------------------------------------------------------------------- *)

type value =
  | Counter of float ref
  | Gauge of float ref
  | Histogram of histogram

type metric = {
  mname : string;
  labels : (string * string) list;  (* sorted by key *)
  help : string;
  value : value;
}

type registry = { tbl : (string * (string * string) list, metric) Hashtbl.t }

(* One lock for every registry: registration can race when pool worker
   domains look metrics up concurrently, and an unsynchronized Hashtbl is
   unsafe under parallel writes.  Individual counter/gauge/histogram
   updates stay lock-free — they are plain field writes, which the OCaml
   memory model keeps memory-safe; concurrent writers to the *same* cell
   may lose updates, so hot multi-domain paths publish from a single
   coordinating domain instead (see Everest_parallel.Cache.publish). *)
let registry_lock = Mutex.create ()

let locked f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let create_registry () = { tbl = Hashtbl.create 64 }

(* The process-wide default registry: the Probe API and all subsystem
   counters write here unless told otherwise. *)
let default = create_registry ()

let reset r = locked (fun () -> Hashtbl.reset r.tbl)

let valid_name n =
  n <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9') || c = '_' || c = ':')
       n

let normalize_labels labels =
  List.sort_uniq (fun (a, _) (b, _) -> compare a b) labels

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let get_or_create r name labels help mk same_kind =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "metrics: invalid metric name %S" name);
  let labels = normalize_labels labels in
  locked (fun () ->
      match Hashtbl.find_opt r.tbl (name, labels) with
      | Some m ->
          if not (same_kind m.value) then
            invalid_arg
              (Printf.sprintf "metrics: %s already registered as a %s" name
                 (kind_name m.value));
          m.value
      | None ->
          let m = { mname = name; labels; help; value = mk () } in
          Hashtbl.replace r.tbl (name, labels) m;
          m.value)

type counter = float ref
type gauge = float ref

let counter ?(registry = default) ?(labels = []) ?(help = "") name : counter =
  match
    get_or_create registry name labels help
      (fun () -> Counter (ref 0.0))
      (function Counter _ -> true | _ -> false)
  with
  | Counter c -> c
  | _ -> assert false

let inc ?(by = 1.0) (c : counter) =
  if by < 0.0 then invalid_arg "metrics: counters only go up";
  c := !c +. by

let counter_value (c : counter) = !c

let gauge ?(registry = default) ?(labels = []) ?(help = "") name : gauge =
  match
    get_or_create registry name labels help
      (fun () -> Gauge (ref 0.0))
      (function Gauge _ -> true | _ -> false)
  with
  | Gauge g -> g
  | _ -> assert false

let set (g : gauge) v = g := v
let add (g : gauge) v = g := !g +. v
let gauge_value (g : gauge) = !g

let histogram ?(registry = default) ?(labels = []) ?(help = "") name =
  match
    get_or_create registry name labels help
      (fun () -> Histogram (make_histogram ()))
      (function Histogram _ -> true | _ -> false)
  with
  | Histogram h -> h
  | _ -> assert false

let metrics r =
  locked (fun () -> Hashtbl.fold (fun _ m acc -> m :: acc) r.tbl [])
  |> List.sort (fun a b ->
         match compare a.mname b.mname with
         | 0 -> compare a.labels b.labels
         | c -> c)

let find ?(registry = default) ?(labels = []) name =
  locked (fun () ->
      Hashtbl.find_opt registry.tbl (name, normalize_labels labels))

(* ---- rendering ------------------------------------------------------------------- *)

let pp_labels ppf = function
  | [] -> ()
  | labels ->
      Fmt.pf ppf "{%a}"
        Fmt.(
          list ~sep:(any ",") (fun ppf (k, v) -> pf ppf "%s=%S" k v))
        labels

(* Human-oriented dump: one line per metric, histograms with quantiles. *)
let render_text r =
  let buf = Buffer.create 1024 in
  List.iter
    (fun m ->
      let lbl = Fmt.str "%a" pp_labels m.labels in
      match m.value with
      | Counter c -> Buffer.add_string buf (Fmt.str "%s%s %g\n" m.mname lbl !c)
      | Gauge g -> Buffer.add_string buf (Fmt.str "%s%s %g\n" m.mname lbl !g)
      | Histogram h ->
          Buffer.add_string buf
            (Fmt.str "%s%s count=%d sum=%g mean=%g p50=%.3g p90=%.3g p99=%.3g\n"
               m.mname lbl h.h_count h.h_sum (hist_mean h) (quantile h 0.5)
               (quantile h 0.9) (quantile h 0.99)))
    (metrics r);
  Buffer.contents buf

(* Exposition-format label-value escaping: exactly backslash, double
   quote and newline, nothing else.  OCaml's %S additionally escapes
   tabs and emits non-ASCII bytes as decimal escapes, which corrupts
   UTF-8 label values for conforming scrapers — so the Prometheus path
   gets its own escaper (the human-oriented [render_text] keeps %S). *)
let escape_label_value v =
  let buf = Buffer.create (String.length v + 8) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let pp_labels_prom ppf = function
  | [] -> ()
  | labels ->
      Fmt.pf ppf "{%a}"
        Fmt.(
          list ~sep:(any ",") (fun ppf (k, v) ->
              pf ppf "%s=\"%s\"" k (escape_label_value v)))
        labels

(* Prometheus exposition format. Histogram buckets are emitted cumulatively
   and only where occupied (plus +Inf), which the format permits. *)
let render_prometheus r =
  let buf = Buffer.create 4096 in
  let seen_header = Hashtbl.create 16 in
  let header name kind help =
    if not (Hashtbl.mem seen_header name) then begin
      Hashtbl.add seen_header name ();
      if help <> "" then
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  let line name labels v =
    Buffer.add_string buf
      (Fmt.str "%s%a %g\n" name pp_labels_prom labels v)
  in
  List.iter
    (fun m ->
      match m.value with
      | Counter c ->
          header m.mname "counter" m.help;
          line m.mname m.labels !c
      | Gauge g ->
          header m.mname "gauge" m.help;
          line m.mname m.labels !g
      | Histogram h ->
          header m.mname "histogram" m.help;
          let upper = bucket_upper in
          let cum = ref 0 in
          Array.iteri
            (fun i c ->
              if c > 0 then begin
                cum := !cum + c;
                line (m.mname ^ "_bucket")
                  (m.labels @ [ ("le", Printf.sprintf "%g" upper.(i)) ])
                  (float_of_int !cum)
              end)
            h.counts;
          line (m.mname ^ "_bucket")
            (m.labels @ [ ("le", "+Inf") ])
            (float_of_int h.h_count);
          line (m.mname ^ "_sum") m.labels h.h_sum;
          line (m.mname ^ "_count") m.labels (float_of_int h.h_count))
    (metrics r);
  Buffer.contents buf
