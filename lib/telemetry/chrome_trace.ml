(* Chrome trace_event JSON exporter.

   Emits the "JSON object format" variant ({"traceEvents":[...]}) with
   complete ("X") duration events, so a tracer's span log opens directly in
   chrome://tracing or Perfetto.  Timestamps are microseconds; the tracer's
   clock domain (wall or simulated seconds) carries through unchanged, which
   is exactly what we want — an executor trace laid out in simulated time.

   Span tracks map to Chrome thread ids and named tracks become thread_name
   metadata events, so executor traces show one lane per platform node. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let attr_json (k, v) =
  let value =
    match (v : Trace.attr_value) with
    | Trace.S s -> Printf.sprintf "\"%s\"" (escape s)
    | Trace.I i -> string_of_int i
    | Trace.F f -> json_float f
    | Trace.B b -> if b then "true" else "false"
  in
  Printf.sprintf "\"%s\":%s" (escape k) value

let span_json ~pid (s : Trace.span) =
  let us t = t *. 1e6 in
  (* attrs may carry shadowed duplicates (Trace.finish prepends); keep the
     first binding of each key, like Trace.attr does.  The synthetic
     "parent" arg below counts as already bound, so a user attribute of the
     same name cannot produce a duplicate JSON key. *)
  let attrs =
    List.rev
      (fst
         (List.fold_left
            (fun (acc, seen) (k, v) ->
              if List.mem_assoc k seen then (acc, seen)
              else ((k, v) :: acc, (k, ()) :: seen))
            ([], [ ("parent", ()) ])
            s.Trace.attrs))
  in
  let args =
    ("parent",
     match s.Trace.parent with
     | Some p -> string_of_int p
     | None -> "-1")
    :: List.map (fun (k, (v : Trace.attr_value)) ->
           ( k,
             match v with
             | Trace.S str -> Printf.sprintf "\"%s\"" (escape str)
             | Trace.I i -> string_of_int i
             | Trace.F f -> json_float f
             | Trace.B b -> if b then "true" else "false" ))
         attrs
  in
  let args_s =
    String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (escape k) v) args)
  in
  Printf.sprintf
    "{\"name\":\"%s\",\"cat\":\"everest\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\
     \"pid\":%d,\"tid\":%d,\"args\":{%s}}"
    (escape s.Trace.name)
    (json_float (us s.Trace.start_s))
    (json_float (us (Trace.duration s)))
    pid s.Trace.track args_s

let thread_name_json ~pid track name =
  Printf.sprintf
    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\
     \"args\":{\"name\":\"%s\"}}"
    pid track (escape name)

let process_name_json ~pid name =
  Printf.sprintf
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\
     \"args\":{\"name\":\"%s\"}}"
    pid (escape name)

(* A Chrome-trace process: one tracer's spans (or a bare span log) under a
   pid, with named tracks as threads.  Multiple clock domains — wall-clock
   compile spans, simulated-time executor and orchestrator spans — export as
   separate processes of one trace file. *)
type proc = {
  pid : int;
  pname : string;
  tracks : (int * string) list;
  proc_spans : Trace.span list;
}

let of_tracer ?(pid = 1) ?(process_name = "everest") t =
  { pid; pname = process_name; tracks = Trace.named_tracks t;
    proc_spans = Trace.spans t }

let of_spans ?(pid = 1) ?(process_name = "everest") ?(tracks = []) spans =
  { pid; pname = process_name; tracks; proc_spans = spans }

(* Only finished spans are exported. *)
let processes_to_string procs =
  let events =
    List.concat_map
      (fun p ->
        process_name_json ~pid:p.pid p.pname
        :: List.map
             (fun (track, n) -> thread_name_json ~pid:p.pid track n)
             p.tracks
        @ List.filter_map
            (fun s ->
              if Trace.finished s then Some (span_json ~pid:p.pid s) else None)
            p.proc_spans)
      procs
  in
  Printf.sprintf
    "{\"traceEvents\":[%s],\"displayTimeUnit\":\"ms\"}"
    (String.concat ",\n" events)

let to_string ?pid ?process_name t =
  processes_to_string [ of_tracer ?pid ?process_name t ]

let write_processes path procs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (processes_to_string procs))

let write_file path ?pid ?process_name t =
  write_processes path [ of_tracer ?pid ?process_name t ]
