(* Time sources for telemetry.

   A clock is just a function returning "now" in seconds.  Tracing is
   parameterized over it so the same span machinery records either host wall
   time (compiler/DSE instrumentation) or Desim simulated time (executor and
   orchestrator instrumentation) — the EVEREST runtime adapts on *simulated*
   time, so its traces must be in that domain too. *)

type t = unit -> float

(* Host wall clock. *)
let wall : t = Unix.gettimeofday

(* Monotonic process clock (never jumps backwards with NTP adjustments);
   suitable for durations, not absolute timestamps. *)
let monotonic : t = Sys.time

(* A manually advanced clock for deterministic tests. *)
type manual = { mutable now_s : float }

let manual ?(start = 0.0) () = { now_s = start }
let advance m dt = m.now_s <- m.now_s +. dt
let of_manual m : t = fun () -> m.now_s

(* Adapt any "now" accessor, e.g. [of_fn (fun () -> Desim.now sim)]. *)
let of_fn (f : unit -> float) : t = f
