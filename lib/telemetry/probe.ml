(* The lightweight instrumentation facade the rest of the codebase calls.

   Spans go to a process-global tracer that is [Trace.noop] until someone
   installs one ([with_tracer] in the CLI, tests, benchmarks), so plain
   library use pays a single physical-equality check per probe.  Metrics go
   to [Metrics.default] unless a registry is passed explicitly. *)

let tracer = ref Trace.noop

let set_tracer t = tracer := t
let clear_tracer () = tracer := Trace.noop
let current_tracer () = !tracer
let enabled () = not (Trace.is_noop !tracer)

(* Time source for [time_block]; swappable so tests (and simulated runs)
   can measure against a manual clock instead of the wall. *)
let clock = ref Clock.wall

let set_clock c = clock := c
let current_clock () = !clock

(* Install [c] for the duration of [f]. *)
let with_clock c f =
  let prev = !clock in
  clock := c;
  Fun.protect ~finally:(fun () -> clock := prev) f

(* Install [t] for the duration of [f]. *)
let with_tracer t f =
  let prev = !tracer in
  tracer := t;
  Fun.protect ~finally:(fun () -> tracer := prev) f

(* Scoped span on the global tracer (no-op when none installed). *)
let with_span ?attrs name f =
  let t = !tracer in
  if Trace.is_noop t then f ()
  else Trace.with_span t ?attrs name (fun _ -> f ())

(* Like [with_span] but also records the duration into histogram [name]
   (suffix "_s") in the default registry — one call gives both the trace
   entry and the aggregate timing distribution. *)
let time_block ?registry ?labels ?attrs name f =
  let t = !tracer in
  let now = !clock in
  let t0 = now () in
  let record () =
    Metrics.observe
      (Metrics.histogram ?registry ?labels (name ^ "_s"))
      (now () -. t0)
  in
  if Trace.is_noop t then
    Fun.protect ~finally:record (fun () -> f ())
  else
    Trace.with_span t ?attrs name (fun _ ->
        Fun.protect ~finally:record (fun () -> f ()))

let count ?registry ?labels ?(by = 1.0) name =
  Metrics.inc ~by (Metrics.counter ?registry ?labels name)

let gauge_set ?registry ?labels name v =
  Metrics.set (Metrics.gauge ?registry ?labels name) v

let observe ?registry ?labels name v =
  Metrics.observe (Metrics.histogram ?registry ?labels name) v
