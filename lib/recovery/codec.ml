(* Byte-deterministic token codec for snapshots and journal records.

   Everything recovery persists is a single line of space-separated
   tokens: decimal integers, floats as the 16 hex digits of their
   IEEE-754 bit pattern (bit-exact for every double, including
   infinities, NaNs and signed zeros), booleans, and
   percent-encoded strings (so tenant or node names with spaces,
   newlines or '%' cannot break the framing).  The reader is the exact
   inverse and fails loudly with {!Decode} — a snapshot that does not
   parse is corrupt, never half-loaded. *)

exception Decode of string

let fail fmt = Printf.ksprintf (fun s -> raise (Decode s)) fmt

(* ---- writer --------------------------------------------------------------------- *)

type writer = { buf : Buffer.t; mutable first : bool }

let writer () = { buf = Buffer.create 256; first = true }

let sep w =
  if w.first then w.first <- false else Buffer.add_char w.buf ' '

let int w i =
  sep w;
  Buffer.add_string w.buf (string_of_int i)

(* Floats are written as the 16 hex digits of their IEEE-754 bit pattern:
   bit-exact for every value including infinities, NaNs and signed zeros,
   and an order of magnitude cheaper to produce than printf float
   formatting — float tokens dominate snapshot bodies, so this is the
   codec's hot path. *)
let hex_digits = "0123456789abcdef"

let float w f =
  sep w;
  let bits = Int64.bits_of_float f in
  (* split into two plain ints up front so the digit loop runs on unboxed
     arithmetic — per-iteration Int64 ops would allocate *)
  let hi = Int64.to_int (Int64.shift_right_logical bits 32) land 0xffffffff in
  let lo = Int64.to_int bits land 0xffffffff in
  let b = Bytes.create 16 in
  for i = 0 to 7 do
    Bytes.unsafe_set b i
      (String.unsafe_get hex_digits ((hi lsr ((7 - i) * 4)) land 0xf));
    Bytes.unsafe_set b (8 + i)
      (String.unsafe_get hex_digits ((lo lsr ((7 - i) * 4)) land 0xf))
  done;
  Buffer.add_bytes w.buf b

let bool w b =
  sep w;
  Buffer.add_char w.buf (if b then 't' else 'f')

let needs_escape c =
  c <= ' ' || c > '~' || c = '%'

let str w s =
  sep w;
  if String.for_all (fun c -> not (needs_escape c)) s && s <> "" then
    Buffer.add_string w.buf s
  else begin
    (* '%' guards the empty string and every byte outside the printable
       ASCII range *)
    Buffer.add_char w.buf '%';
    String.iter
      (fun c ->
        if needs_escape c then
          Buffer.add_string w.buf (Printf.sprintf "%%%02x" (Char.code c))
        else Buffer.add_char w.buf c)
      s
  end

let contents w = Buffer.contents w.buf

(* Reuse one writer across many small encodes (hot paths encode one
   ~100-byte record per simulated event — a fresh Buffer each time is
   pure allocator churn). *)
let reset w =
  Buffer.clear w.buf;
  w.first <- true

(* Append everything written so far into [dst] without the intermediate
   string that [contents] would build. *)
let blit_into w dst = Buffer.add_buffer dst w.buf

(* Splice a pre-encoded run of tokens (produced by this same codec)
   directly into the stream — a memcpy instead of re-encoding.  The
   caller guarantees the buffer holds zero or more space-separated
   tokens with no leading or trailing separator; an empty buffer
   splices nothing. *)
let splice w b =
  if Buffer.length b > 0 then begin
    sep w;
    Buffer.add_buffer w.buf b
  end

let splice_str w s =
  if String.length s > 0 then begin
    sep w;
    Buffer.add_string w.buf s
  end

(* ---- reader --------------------------------------------------------------------- *)

type reader = { s : string; mutable pos : int }

let reader s = { s; pos = 0 }

let token r =
  let n = String.length r.s in
  if r.pos >= n then fail "unexpected end of record at byte %d" r.pos;
  let start = r.pos in
  while r.pos < n && r.s.[r.pos] <> ' ' do
    r.pos <- r.pos + 1
  done;
  let t = String.sub r.s start (r.pos - start) in
  if r.pos < n then r.pos <- r.pos + 1;  (* skip the separator *)
  t

let r_int r =
  let t = token r in
  match int_of_string_opt t with
  | Some i -> i
  | None -> fail "expected int, got %S" t

let unhex c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | _ -> fail "bad hex digit %C" c

let r_float r =
  let t = token r in
  if String.length t <> 16 then fail "expected float bits, got %S" t;
  let hi = ref 0 and lo = ref 0 in
  for i = 0 to 7 do
    hi := (!hi lsl 4) lor unhex (String.unsafe_get t i);
    lo := (!lo lsl 4) lor unhex (String.unsafe_get t (8 + i))
  done;
  Int64.float_of_bits
    (Int64.logor
       (Int64.shift_left (Int64.of_int !hi) 32)
       (Int64.of_int !lo))

let r_bool r =
  match token r with
  | "t" -> true
  | "f" -> false
  | t -> fail "expected bool, got %S" t

let r_str r =
  let t = token r in
  if String.length t = 0 then fail "empty string token"
  else if t.[0] <> '%' then t
  else begin
    let b = Buffer.create (String.length t) in
    let i = ref 1 in
    let n = String.length t in
    while !i < n do
      if t.[!i] = '%' then begin
        if !i + 2 >= n then fail "truncated escape in %S" t;
        Buffer.add_char b
          (Char.chr ((unhex t.[!i + 1] * 16) + unhex t.[!i + 2]));
        i := !i + 3
      end
      else begin
        Buffer.add_char b t.[!i];
        incr i
      end
    done;
    Buffer.contents b
  end

let at_end r = r.pos >= String.length r.s

(* Expect a literal tag token — the schema self-check inside a record. *)
let expect r tag =
  let t = token r in
  if not (String.equal t tag) then fail "expected tag %S, got %S" tag t

(* ---- composite helpers ---------------------------------------------------------- *)

let list w xs ~item =
  int w (List.length xs);
  List.iter (fun x -> item w x) xs

let r_list r ~item =
  let n = r_int r in
  if n < 0 then fail "negative list length %d" n;
  List.init n (fun _ -> item r)

let assoc_floats w xs =
  list w xs ~item:(fun w (k, v) ->
      str w k;
      float w v)

let r_assoc_floats r =
  r_list r ~item:(fun r ->
      let k = r_str r in
      let v = r_float r in
      (k, v))
