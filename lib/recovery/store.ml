(* Durable recovery store: one directory holding a config fingerprint,
   numbered snapshots and numbered write-ahead journal segments.

     dir/meta                EVEREST-META v1 + config fingerprint
     dir/snap-000042.esnap   snapshot 42 (Snapshot envelope)
     dir/journal-000042.ejrnl  records appended after snapshot 42

   Writing snapshot [n] atomically (tmp + rename) then starting segment
   [n] keeps the invariant that segment [n] only ever holds events that
   happened after snapshot [n]: restore = newest valid snapshot [k] +
   replay of segments [k..last].  Snapshots that fail validation are
   skipped — restore falls back to the previous one and re-replays a
   longer tail, it never silently loads damaged state.

   Crash injection for drills and the QCheck byte-identity property is
   armed here: after N appended records the store flushes (the record
   itself is durable — it is a write-AHEAD log) and raises
   {!Journal.Crashed}. *)

type error =
  | Corrupt of string
  | Version_skew of { found : int; expected : int }
  | Truncated of string
  | Config_mismatch of { found : string; expected : string }
  | Replay_divergence of { expected : string; got : string }
  | No_snapshot

exception Recovery_error of error

let error_to_string = function
  | Corrupt why -> Printf.sprintf "corrupt: %s" why
  | Version_skew { found; expected } ->
      Printf.sprintf "version skew: found v%d, expected v%d" found expected
  | Truncated why -> Printf.sprintf "truncated: %s" why
  | Config_mismatch { found; expected } ->
      Printf.sprintf "config mismatch: store %s, run %s" found expected
  | Replay_divergence { expected; got } ->
      Printf.sprintf "replay divergence: journal %S, re-derived %S" expected
        got
  | No_snapshot -> "no valid snapshot in store"

let of_snapshot_error = function
  | Snapshot.Corrupt w -> Corrupt w
  | Snapshot.Version_skew { found; expected } ->
      Version_skew { found; expected }
  | Snapshot.Truncated w -> Truncated w

type t = {
  dir : string;
  fingerprint : string;
  mutable chan : out_channel option;
  mutable seg_index : int;
  mutable crash_after : int option;
  mutable records_written : int;
  mutable records_replayed : int;
  mutable snapshots_written : int;
  mutable journal_bytes : int;
  mutable snapshot_bytes : int;
  mutable work_s : float;
      (* CPU the client attributes to recovery work (encoding, appends,
         snapshots).  Benches gate on [work_s /. (total -. work_s)]: both
         sides of that fraction come from the same run, so host-noise
         multipliers (frequency scaling, co-tenant contention) cancel,
         unlike an A/B comparison of separate timed runs. *)
}

let meta_magic = "EVEREST-META v1"

let snap_path t i = Filename.concat t.dir (Printf.sprintf "snap-%06d.esnap" i)

let seg_path t i =
  Filename.concat t.dir (Printf.sprintf "journal-%06d.ejrnl" i)

let rec mkdirs d =
  if d = "" || d = "/" || d = "." || Sys.file_exists d then ()
  else begin
    mkdirs (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

(* Indices of on-disk artifacts with the given prefix/suffix. *)
let indices t ~prefix ~suffix =
  Sys.readdir t.dir |> Array.to_list
  |> List.filter_map (fun name ->
         let pl = String.length prefix and sl = String.length suffix in
         let nl = String.length name in
         if
           nl > pl + sl
           && String.equal (String.sub name 0 pl) prefix
           && String.equal (String.sub name (nl - sl) sl) suffix
         then int_of_string_opt (String.sub name pl (nl - pl - sl))
         else None)
  |> List.sort compare

let snapshot_indices t = indices t ~prefix:"snap-" ~suffix:".esnap"
let segment_indices t = indices t ~prefix:"journal-" ~suffix:".ejrnl"

let wipe t =
  List.iter (fun i -> try Sys.remove (snap_path t i) with Sys_error _ -> ())
    (snapshot_indices t);
  List.iter (fun i -> try Sys.remove (seg_path t i) with Sys_error _ -> ())
    (segment_indices t)

let open_store ?(fresh = false) ~dir ~fingerprint () =
  mkdirs dir;
  let t =
    {
      dir;
      fingerprint;
      chan = None;
      seg_index = -1;
      crash_after = None;
      records_written = 0;
      records_replayed = 0;
      snapshots_written = 0;
      journal_bytes = 0;
      snapshot_bytes = 0;
      work_s = 0.0;
    }
  in
  let meta = Filename.concat dir "meta" in
  if fresh then begin
    wipe t;
    write_file meta (Printf.sprintf "%s\n%s\n" meta_magic fingerprint)
  end
  else if Sys.file_exists meta then begin
    match String.split_on_char '\n' (read_file meta) with
    | m :: fp :: _ when String.equal m meta_magic ->
        if not (String.equal fp fingerprint) then
          raise
            (Recovery_error
               (Config_mismatch { found = fp; expected = fingerprint }))
    | _ -> raise (Recovery_error (Corrupt "bad meta file"))
  end
  else write_file meta (Printf.sprintf "%s\n%s\n" meta_magic fingerprint);
  t

let arm_crash t ~after_records =
  t.crash_after <- (if after_records <= 0 then None else Some after_records)

let close t =
  match t.chan with
  | None -> ()
  | Some oc ->
      close_out_noerr oc;
      t.chan <- None

(* Open journal segment [i] for appending, writing the magic line when
   the file does not exist yet. *)
let open_segment t i ~truncate =
  close t;
  let path = seg_path t i in
  let existed = (not truncate) && Sys.file_exists path in
  let flags =
    if truncate then [ Open_wronly; Open_creat; Open_trunc; Open_binary ]
    else [ Open_wronly; Open_creat; Open_append; Open_binary ]
  in
  let oc = open_out_gen flags 0o644 path in
  if not existed then output_string oc (Journal.magic_line ^ "\n");
  t.chan <- Some oc;
  t.seg_index <- i

let append t payload =
  let oc =
    match t.chan with
    | Some oc -> oc
    | None ->
        if t.seg_index < 0 then
          invalid_arg "Store.append: no journal segment open";
        open_segment t t.seg_index ~truncate:false;
        Option.get t.chan
  in
  let written = Journal.output_record oc payload in
  t.records_written <- t.records_written + 1;
  t.journal_bytes <- t.journal_bytes + written;
  match t.crash_after with
  | Some n when n <= 1 ->
      t.crash_after <- None;
      (* WAL contract: the record that triggers the crash is already
         durable — flush before dying. *)
      flush oc;
      raise Journal.Crashed
  | Some n ->
      t.crash_after <- Some (n - 1)
  | None -> ()

let write_snapshot t ~index body =
  let hdr = Snapshot.header body in
  let path = snap_path t index in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc hdr;
      output_string oc body);
  Sys.rename tmp path;
  t.snapshots_written <- t.snapshots_written + 1;
  t.snapshot_bytes <- t.snapshot_bytes + String.length hdr + String.length body;
  open_segment t index ~truncate:true

let load_snapshot t ~index =
  let path = snap_path t index in
  if not (Sys.file_exists path) then Error No_snapshot
  else
    match Snapshot.decode (read_file path) with
    | Ok body -> Ok body
    | Error e -> Error (of_snapshot_error e)

type resume = {
  r_state : string;                 (* body of the newest valid snapshot *)
  r_index : int;                    (* its index *)
  r_fallbacks : int;                (* newer snapshots rejected as invalid *)
  r_skipped : (int * error) list;   (* what was wrong with each of them *)
  r_tail : string list;             (* journal records to replay *)
  r_torn : bool;                    (* a torn segment tail was truncated *)
  r_next_snapshot_index : int;      (* where the resumed run snapshots next *)
}

(* Truncate a torn segment to its valid prefix so the resumed run can
   keep appending to a clean file. *)
let heal_segment t i =
  let seg = Journal.read_segment (seg_path t i) in
  if seg.Journal.sg_torn then begin
    let raw = if Sys.file_exists (seg_path t i) then read_file (seg_path t i) else "" in
    let keep =
      if seg.Journal.sg_valid_bytes = 0 then Journal.magic_line ^ "\n"
      else String.sub raw 0 seg.Journal.sg_valid_bytes
    in
    write_file (seg_path t i) keep
  end;
  seg

(* [genesis] replays the journal from segment 0 regardless of which
   snapshot anchors the resume — used by the workflow executor, whose
   restore model is deterministic re-execution verified against the
   journal, with snapshots serving as integrity anchors. *)
let plan_resume ?(genesis = false) t =
  close t;
  let snaps = List.rev (snapshot_indices t) in  (* newest first *)
  if snaps = [] then raise (Recovery_error No_snapshot);
  let rec pick skipped = function
    | [] -> raise (Recovery_error No_snapshot)
    | i :: rest -> (
        match load_snapshot t ~index:i with
        | Ok body -> (i, body, List.rev skipped)
        | Error e -> pick ((i, e) :: skipped) rest)
  in
  let index, state, skipped = pick [] snaps in
  let segs = segment_indices t in
  let first_seg = if genesis then 0 else index in
  let replay_segs = List.filter (fun i -> i >= first_seg) segs in
  let torn = ref false in
  let tail =
    List.concat_map
      (fun i ->
        let seg = heal_segment t i in
        if seg.Journal.sg_torn then torn := true;
        seg.Journal.sg_records)
      replay_segs
  in
  (* Keep appending to the newest segment on disk; the next snapshot
     gets a fresh index above everything present (including rejected
     snapshots, which are left in place as evidence). *)
  let last_seg = List.fold_left max index segs in
  open_segment t last_seg ~truncate:false;
  let next_snap = 1 + List.fold_left max index (List.map fst skipped) in
  {
    r_state = state;
    r_index = index;
    r_fallbacks = List.length skipped;
    r_skipped = skipped;
    r_tail = tail;
    r_torn = !torn;
    r_next_snapshot_index = next_snap;
  }

let flush t = match t.chan with Some oc -> flush oc | None -> ()
