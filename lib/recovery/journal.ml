(* Write-ahead journal record framing.

   A journal segment is a text file:

     EVEREST-JRNL v1
     <payload> #<8 hex chars of fnv1a32(payload)>
     ...

   Each record carries its own checksum so a torn tail (the crash wrote
   half a line) is detected record-locally: readers stop at the first
   record that fails its checksum and report how many bytes were valid,
   letting the store truncate the tail instead of rejecting the whole
   segment. *)

let magic_line = "EVEREST-JRNL v1"

(* Raised by the store when an armed crash point fires mid-append. *)
exception Crashed

(* FNV-1a 32-bit: record checksums are a torn-write detector on the hot
   append path, not a cryptographic seal — a cheap in-OCaml hash beats an
   MD5 round-trip per record by an order of magnitude. *)
let checksum_raw payload =
  let h = ref 0x811c9dc5 in
  for i = 0 to String.length payload - 1 do
    h :=
      (!h lxor Char.code (String.unsafe_get payload i))
      * 0x01000193 land 0xffffffff
  done;
  !h

let hex_digits = "0123456789abcdef"

let checksum payload =
  let h = checksum_raw payload in
  String.init 8 (fun i -> hex_digits.[(h lsr ((7 - i) * 4)) land 0xf])

(* " #xxxxxxxx\n" for the given payload. *)
let trailer payload =
  let b = Bytes.create 11 in
  Bytes.unsafe_set b 0 ' ';
  Bytes.unsafe_set b 1 '#';
  let h = checksum_raw payload in
  for i = 0 to 7 do
    Bytes.unsafe_set b (2 + i)
      (String.unsafe_get hex_digits ((h lsr ((7 - i) * 4)) land 0xf))
  done;
  Bytes.unsafe_set b 10 '\n';
  b

(* One append per simulated event makes this framing hot; building the
   line with Bytes instead of Printf keeps it under the journaling
   overhead budget. *)
let encode_record payload =
  if String.contains payload '\n' then
    invalid_arg "Journal.encode_record: payload contains newline";
  let n = String.length payload in
  let b = Bytes.create (n + 11) in
  Bytes.blit_string payload 0 b 0 n;
  Bytes.blit (trailer payload) 0 b n 11;
  Bytes.unsafe_to_string b

(* Write a record straight to [oc] — payload then trailer — skipping the
   concatenated line [encode_record] would allocate.  The trailer goes
   out char by char into the channel buffer, so the hot append path
   allocates nothing.  Returns the bytes written. *)
let output_record oc payload =
  if String.contains payload '\n' then
    invalid_arg "Journal.output_record: payload contains newline";
  output_string oc payload;
  output_char oc ' ';
  output_char oc '#';
  let h = checksum_raw payload in
  for i = 7 downto 0 do
    output_char oc (String.unsafe_get hex_digits ((h lsr (i * 4)) land 0xf))
  done;
  output_char oc '\n';
  String.length payload + 11

let decode_record line =
  match String.rindex_opt line '#' with
  | Some i
    when i >= 1
         && line.[i - 1] = ' '
         && String.length line - i - 1 = 8 ->
      let payload = String.sub line 0 (i - 1) in
      let sum = String.sub line (i + 1) 8 in
      if String.equal sum (checksum payload) then Some payload else None
  | _ -> None

type segment = {
  sg_records : string list;  (* decoded payloads, in append order *)
  sg_torn : bool;            (* true when a trailing record failed its checksum *)
  sg_valid_bytes : int;      (* prefix length covering magic + valid records *)
}

(* Lenient read: a missing file is an empty segment, a bad magic line is
   fully torn, and decoding stops at the first invalid record. *)
let read_segment path =
  if not (Sys.file_exists path) then
    { sg_records = []; sg_torn = false; sg_valid_bytes = 0 }
  else begin
    let ic = open_in_bin path in
    let raw =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let lines = String.split_on_char '\n' raw in
    match lines with
    | m :: rest when String.equal m magic_line ->
        let valid = ref (String.length magic_line + 1) in
        let torn = ref false in
        let records = ref [] in
        let rec go = function
          | [] | [ "" ] -> ()
          | line :: tl -> (
              match decode_record line with
              | Some payload ->
                  records := payload :: !records;
                  valid := !valid + String.length line + 1;
                  go tl
              | None -> torn := true)
        in
        go rest;
        {
          sg_records = List.rev !records;
          sg_torn = !torn;
          sg_valid_bytes = !valid;
        }
    | _ -> { sg_records = []; sg_torn = true; sg_valid_bytes = 0 }
  end
