(* Versioned, content-hashed snapshot envelope.

   On-disk layout (all '\n'-terminated lines, then the raw body):

     EVEREST-SNAP v<version>
     <md5 hex of body>
     <byte length of body>
     <body...>

   Decoding validates magic, schema version, length and digest before a
   single byte of the body is interpreted, and reports each failure as
   a distinct typed error so callers can tell version skew from
   bit-rot from truncation. *)

let magic = "EVEREST-SNAP"

let version = 1

type error =
  | Corrupt of string         (* digest mismatch / bad framing *)
  | Version_skew of { found : int; expected : int }
  | Truncated of string

let error_to_string = function
  | Corrupt why -> Printf.sprintf "corrupt snapshot: %s" why
  | Version_skew { found; expected } ->
      Printf.sprintf "snapshot version skew: found v%d, expected v%d" found
        expected
  | Truncated why -> Printf.sprintf "truncated snapshot: %s" why

(* The envelope header alone — writers that already hold the body as its
   own string can emit header and body separately instead of building the
   concatenated envelope (bodies run to hundreds of KiB). *)
let header body =
  Printf.sprintf "%s v%d\n%s\n%d\n" magic version
    (Digest.to_hex (Digest.string body))
    (String.length body)

let encode body = header body ^ body

exception Bad of error

let decode raw =
  let pos = ref 0 in
  let next_line what =
    match String.index_from_opt raw !pos '\n' with
    | None -> raise (Bad (Truncated (Printf.sprintf "missing %s line" what)))
    | Some i ->
        let line = String.sub raw !pos (i - !pos) in
        pos := i + 1;
        line
  in
  try
    let header = next_line "header" in
    (match String.split_on_char ' ' header with
    | [ m; v ] when String.equal m magic ->
        let found =
          if String.length v > 1 && v.[0] = 'v' then
            int_of_string_opt (String.sub v 1 (String.length v - 1))
          else None
        in
        (match found with
        | None -> raise (Bad (Corrupt (Printf.sprintf "bad version token %S" v)))
        | Some found when found <> version ->
            raise (Bad (Version_skew { found; expected = version }))
        | Some _ -> ())
    | _ -> raise (Bad (Corrupt (Printf.sprintf "bad magic %S" header))));
    let digest_hex = next_line "digest" in
    let len_s = next_line "length" in
    let len =
      match int_of_string_opt len_s with
      | Some len when len >= 0 -> len
      | _ -> raise (Bad (Corrupt (Printf.sprintf "bad length token %S" len_s)))
    in
    if String.length raw - !pos < len then
      raise
        (Bad
           (Truncated
              (Printf.sprintf "body has %d of %d bytes"
                 (String.length raw - !pos)
                 len)));
    let body = String.sub raw !pos len in
    let got = Digest.to_hex (Digest.string body) in
    if String.equal got digest_hex then Ok body
    else
      Error (Corrupt (Printf.sprintf "digest mismatch (%s != %s)" got digest_hex))
  with Bad e -> Error e
