(* Per-node busy/idle timelines from a span log.

   The executor records every execution attempt as a ["task:…"] span on the
   node's render track and every transfer as an ["xfer:…"] child on the
   same track, so one track is one node's complete activity record.  Busy
   time is the union of the track's task-span intervals (attempts overlap
   under speculation — merging avoids double counting); everything else up
   to the horizon is idle, reported as gaps so schedulers can see *where*
   a node sat unused, not just how much.  When the caller supplies Desim
   wait statistics the per-node queueing time rides along, reconciling the
   span-log account with the engine's own contention counters. *)

module Trace = Everest_telemetry.Trace

type node_util = {
  nu_node : string;
  nu_track : int;
  nu_tasks : int;  (* first completions (status="ok") on the node *)
  nu_attempts : int;  (* task spans, incl. retries and speculation *)
  nu_busy_s : float;  (* merged task-span time *)
  nu_span_s : float;  (* unmerged task-span sum (>= busy) *)
  nu_xfer_s : float;  (* transfer-span sum *)
  nu_wait_s : float;  (* Desim queueing time, when supplied *)
  nu_util : float;  (* busy / horizon *)
  nu_idle_s : float;  (* horizon - busy *)
  nu_gaps : (float * float) list;  (* largest idle (start, length) first *)
}

type t = { u_horizon_s : float; u_nodes : node_util list }

let has_prefix p (s : Trace.span) = String.starts_with ~prefix:p s.Trace.name

(* Merge [(start, stop)] intervals (sorted by start) and clamp to
   [0, horizon]; returns (busy, gaps sorted by start). *)
let merge_intervals ~horizon ivals =
  let rec go busy gaps cursor = function
    | [] ->
        let busy, gaps =
          if horizon -. cursor > 0.0 then
            (busy, (cursor, horizon -. cursor) :: gaps)
          else (busy, gaps)
        in
        (busy, List.rev gaps)
    | (s, e) :: rest ->
        let s = Float.max 0.0 (Float.min s horizon) in
        let e = Float.max 0.0 (Float.min e horizon) in
        if e <= cursor then go busy gaps cursor rest
        else if s > cursor then
          go (busy +. (e -. Float.max s cursor)) ((cursor, s -. cursor) :: gaps)
            e rest
        else go (busy +. (e -. cursor)) gaps e rest
  in
  go 0.0 [] 0.0 ivals

let of_span_dag ?horizon ?(track_names = []) ?(waits = []) ?(max_gaps = 3)
    (dag : Span_dag.t) : t =
  let horizon =
    match horizon with Some h -> h | None -> Span_dag.horizon dag
  in
  let nodes =
    List.filter_map
      (fun track ->
        (* one pass over the track's start-ordered spans gathers every
           per-node aggregate (the report builder runs under E15's
           <5%-of-run budget, so no intermediate filtered lists) *)
        let spans = Span_dag.track_spans dag track in
        let tasks = ref 0 and attempts = ref 0 in
        let span_s = ref 0.0 and xfer_s = ref 0.0 in
        let ivals = ref [] (* reversed start order *) in
        let node_attr = ref None in
        List.iter
          (fun (s : Trace.span) ->
            if has_prefix "task:" s then begin
              incr attempts;
              if Trace.attr_string s "status" = Some "ok" then incr tasks;
              (match !node_attr with
              | None -> node_attr := Trace.attr_string s "node"
              | Some _ -> ());
              if Trace.finished s then begin
                span_s := !span_s +. Trace.duration s;
                ivals := (s.Trace.start_s, s.Trace.end_s) :: !ivals
              end
            end
            else if has_prefix "xfer:" s then
              xfer_s := !xfer_s +. Trace.duration s)
          spans;
        if !attempts = 0 then None
        else begin
          let busy, gaps = merge_intervals ~horizon (List.rev !ivals) in
          let node =
            match List.assoc_opt track track_names with
            | Some n -> n
            | None -> (
                (* task spans carry the node as an attribute *)
                match !node_attr with
                | Some n -> n
                | None -> Printf.sprintf "track%d" track)
          in
          let top_gaps =
            List.filteri
              (fun i _ -> i < max_gaps)
              (List.sort (fun (_, a) (_, b) -> compare b a) gaps)
          in
          Some
            { nu_node = node; nu_track = track; nu_tasks = !tasks;
              nu_attempts = !attempts;
              nu_busy_s = busy; nu_span_s = !span_s; nu_xfer_s = !xfer_s;
              nu_wait_s = Option.value ~default:0.0 (List.assoc_opt node waits);
              nu_util = (if horizon > 0.0 then busy /. horizon else 0.0);
              nu_idle_s = Float.max 0.0 (horizon -. busy);
              nu_gaps = top_gaps }
        end)
      (Span_dag.tracks dag)
  in
  { u_horizon_s = horizon; u_nodes = nodes }

(* Per-window busy fraction of one node's track: the timeline shape that
   phase detection (Everest_watch.Detect) segments into stable phases.
   The [windows] equal windows tile [0, horizon]; each window's value is
   the fraction of it covered by the merged task-span intervals, so the
   array sums (times the window width) to the node's busy time. *)
let busy_timeline ?(windows = 32) ?horizon (dag : Span_dag.t) ~track =
  let horizon =
    match horizon with Some h -> h | None -> Span_dag.horizon dag
  in
  if windows <= 0 then invalid_arg "Utilization.busy_timeline: windows <= 0";
  let w = if horizon > 0.0 then horizon /. float_of_int windows else 1.0 in
  let busy = Array.make windows 0.0 in
  let ivals =
    List.filter_map
      (fun (s : Trace.span) ->
        if has_prefix "task:" s && Trace.finished s then
          Some (s.Trace.start_s, s.Trace.end_s)
        else None)
      (Span_dag.track_spans dag track)
  in
  (* fold the start-sorted intervals with a cursor so overlapping attempts
     (speculation) are not double counted, spreading each merged stretch
     over the windows it crosses *)
  let cursor = ref 0.0 in
  List.iter
    (fun (s, e) ->
      let s = Float.max !cursor (Float.max 0.0 (Float.min s horizon)) in
      let e = Float.max 0.0 (Float.min e horizon) in
      if e > s then begin
        cursor := e;
        let wi_lo = max 0 (int_of_float (s /. w)) in
        let wi_hi = min (windows - 1) (int_of_float (e /. w)) in
        for wi = wi_lo to wi_hi do
          let lo = Float.max s (float_of_int wi *. w) in
          let hi = Float.min e (float_of_int (wi + 1) *. w) in
          if hi > lo then busy.(wi) <- busy.(wi) +. (hi -. lo)
        done
      end)
    ivals;
  Array.mapi (fun wi b -> (float_of_int wi *. w, Float.min 1.0 (b /. w))) busy

(* Reconciliation against the span log it was built from: merged busy time
   can never exceed the raw span sum or the horizon, busy + idle must tile
   the horizon, and utilization is a fraction. *)
let check ?(eps = 1e-9) t =
  List.for_all
    (fun n ->
      n.nu_busy_s >= -.eps
      && n.nu_busy_s <= n.nu_span_s +. eps
      && n.nu_busy_s <= t.u_horizon_s +. eps
      && Float.abs (n.nu_busy_s +. n.nu_idle_s -. t.u_horizon_s) <= eps
      && n.nu_util >= -.eps
      && n.nu_util <= 1.0 +. eps)
    t.u_nodes

let total_busy_s t =
  List.fold_left (fun acc n -> acc +. n.nu_busy_s) 0.0 t.u_nodes

(* The longest idle gap across every node: (node, start, length). *)
let worst_gap t =
  List.fold_left
    (fun acc n ->
      match n.nu_gaps with
      | (start, len) :: _ -> (
          match acc with
          | Some (_, _, best) when best >= len -> acc
          | _ -> Some (n.nu_node, start, len))
      | [] -> acc)
    None t.u_nodes

(* ---- serialization -------------------------------------------------------------- *)

let node_to_json n =
  Json.Obj
    [ ("node", Json.Str n.nu_node); ("track", Json.Num (float_of_int n.nu_track));
      ("tasks", Json.Num (float_of_int n.nu_tasks));
      ("attempts", Json.Num (float_of_int n.nu_attempts));
      ("busy_s", Json.Num n.nu_busy_s); ("span_s", Json.Num n.nu_span_s);
      ("xfer_s", Json.Num n.nu_xfer_s); ("wait_s", Json.Num n.nu_wait_s);
      ("util", Json.Num n.nu_util); ("idle_s", Json.Num n.nu_idle_s);
      ("gaps",
       Json.Arr
         (List.map
            (fun (s, l) ->
              Json.Obj [ ("start_s", Json.Num s); ("len_s", Json.Num l) ])
            n.nu_gaps)) ]

let to_json t =
  Json.Obj
    [ ("horizon_s", Json.Num t.u_horizon_s);
      ("nodes", Json.Arr (List.map node_to_json t.u_nodes)) ]

let node_of_json j =
  { nu_node = Json.need_str "node" j;
    nu_track = int_of_float (Json.need_num "track" j);
    nu_tasks = int_of_float (Json.need_num "tasks" j);
    nu_attempts = int_of_float (Json.need_num "attempts" j);
    nu_busy_s = Json.need_num "busy_s" j; nu_span_s = Json.need_num "span_s" j;
    nu_xfer_s = Json.need_num "xfer_s" j; nu_wait_s = Json.need_num "wait_s" j;
    nu_util = Json.need_num "util" j; nu_idle_s = Json.need_num "idle_s" j;
    nu_gaps =
      List.map
        (fun g -> (Json.need_num "start_s" g, Json.need_num "len_s" g))
        (Json.to_list (Json.need "gaps" j)) }

let of_json j =
  { u_horizon_s = Json.need_num "horizon_s" j;
    u_nodes = List.map node_of_json (Json.to_list (Json.need "nodes" j)) }
