(** The run report: everything the analytics layer derives from one run,
    in one value that renders as text, serializes to JSON and round-trips
    back for regression diffing ({!Regress}).

    A report is {e pulled}: the executor exposes it as a lazy field on its
    stats and nothing is computed until someone forces it.  Serialization
    prints floats deterministically, so identical runs produce
    byte-identical report JSON. *)

type t = {
  r_name : string;  (** Workload name ("stress", dag name, …). *)
  r_policy : string;  (** Scheduling policy the run used. *)
  r_tasks_done : int;
  r_tasks_total : int;
  r_spans : int;  (** Spans captured in the log. *)
  r_dropped : int;  (** Spans lost to the bounded sink. *)
  r_makespan_s : float;
  r_cp : Critical_path.t option;  (** [None] when the log is untraced. *)
  r_util : Utilization.t option;
  r_quantiles : (string * float) list;  (** ["p50_s"] -> seconds, … *)
  r_counters : (string * float) list;  (** Retries, transfers, bytes, … *)
  r_slos : Slo.result list;
}

val make :
  ?name:string ->
  ?policy:string ->
  ?tasks_done:int ->
  ?tasks_total:int ->
  ?spans:int ->
  ?dropped:int ->
  ?makespan_s:float ->
  ?cp:Critical_path.t ->
  ?util:Utilization.t ->
  ?quantiles:(string * float) list ->
  ?counters:(string * float) list ->
  ?slos:Slo.result list ->
  unit ->
  t

val slo_violations : t -> Slo.result list
val to_json : t -> Json.t
val of_json : Json.t -> t
val pp : Format.formatter -> t -> unit
val render : t -> string
