(* Queryable index over a span log.

   [Trace] keeps its sink a flat pooled array — recording must stay
   allocation-light — but its [children]/[find] helpers are O(n) scans and
   any parent/child walk O(n²).  The read side builds this index once and
   then answers id lookups, child lists, name lookups and per-track
   timelines in O(1)/O(result).  All derived span lists are in start order
   (ties broken by span id, which [Trace] allocates monotonically).

   Two costs matter because the executor's lazy report is benchmarked
   against a <5%-of-run budget (E15/E17): the log usually arrives already
   ordered ([Trace.to_array] is start-ordered off a monotone clock), so the
   constructor detects sorted/reversed input and skips the O(n log n) sort;
   and each secondary index is built on first use, so a consumer that only
   walks tracks never pays for the name or parent tables. *)

module Trace = Everest_telemetry.Trace

type t = {
  arr : Trace.span array;  (* every span, sorted by (start_s, id) *)
  mutable by_id : (int, Trace.span) Hashtbl.t option;
  mutable child_tbl : (int, Trace.span list) Hashtbl.t option;
  mutable name_tbl : (string, Trace.span list) Hashtbl.t option;
  mutable root_spans : Trace.span list option;
  mutable track_tbl : (int, Trace.span list) Hashtbl.t option;
  mutable track_ids : int list option;
}

let start_order (a : Trace.span) (b : Trace.span) =
  if a.Trace.start_s < b.Trace.start_s then -1
  else if a.Trace.start_s > b.Trace.start_s then 1
  else compare a.Trace.id b.Trace.id

(* Takes ownership of [arr]. *)
let of_array arr =
  let n = Array.length arr in
  let ascending = ref true and descending = ref true in
  for i = 0 to n - 2 do
    let c = start_order arr.(i) arr.(i + 1) in
    if c > 0 then ascending := false;
    if c < 0 then descending := false
  done;
  if !ascending then ()
  else if !descending then begin
    let i = ref 0 and j = ref (n - 1) in
    while !i < !j do
      let tmp = arr.(!i) in
      arr.(!i) <- arr.(!j);
      arr.(!j) <- tmp;
      incr i;
      decr j
    done
  end
  else Array.sort start_order arr;
  { arr; by_id = None; child_tbl = None; name_tbl = None; root_spans = None;
    track_tbl = None; track_ids = None }

let of_spans spans = of_array (Array.of_list spans)

(* [Trace.to_array] already hands the log back in start order, so this is
   one array copy and a linear sortedness check — no per-span consing. *)
let of_tracer t = of_array (Trace.to_array t)

let size t = Array.length t.arr

(* Every span in start order (do not mutate). *)
let spans t = t.arr

(* Start-ordered span lists keyed by [key]; the downward walk makes the
   consed lists come out in start order. *)
let group_by t key =
  let tbl = Hashtbl.create (max 16 (Array.length t.arr)) in
  for i = Array.length t.arr - 1 downto 0 do
    let s = t.arr.(i) in
    match key s with
    | Some k ->
        Hashtbl.replace tbl k
          (s :: Option.value ~default:[] (Hashtbl.find_opt tbl k))
    | None -> ()
  done;
  tbl

let id_tbl t =
  match t.by_id with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create (max 16 (Array.length t.arr)) in
      Array.iter (fun (s : Trace.span) -> Hashtbl.replace tbl s.Trace.id s) t.arr;
      t.by_id <- Some tbl;
      tbl

let children_tbl t =
  match t.child_tbl with
  | Some tbl -> tbl
  | None ->
      let tbl = group_by t (fun (s : Trace.span) -> s.Trace.parent) in
      t.child_tbl <- Some tbl;
      tbl

let names_tbl t =
  match t.name_tbl with
  | Some tbl -> tbl
  | None ->
      let tbl = group_by t (fun (s : Trace.span) -> Some s.Trace.name) in
      t.name_tbl <- Some tbl;
      tbl

let tracks_tbl t =
  match t.track_tbl with
  | Some tbl -> tbl
  | None ->
      let tbl = group_by t (fun (s : Trace.span) -> Some s.Trace.track) in
      t.track_tbl <- Some tbl;
      tbl

let span t id = Hashtbl.find_opt (id_tbl t) id

let children t id =
  Option.value ~default:[] (Hashtbl.find_opt (children_tbl t) id)

let roots t =
  match t.root_spans with
  | Some rs -> rs
  | None ->
      let rs = ref [] in
      for i = Array.length t.arr - 1 downto 0 do
        let s = t.arr.(i) in
        if s.Trace.parent = None then rs := s :: !rs
      done;
      t.root_spans <- Some !rs;
      !rs

let find_all t name =
  Option.value ~default:[] (Hashtbl.find_opt (names_tbl t) name)

let find t name = match find_all t name with [] -> None | s :: _ -> Some s

let tracks t =
  match t.track_ids with
  | Some ids -> ids
  | None ->
      let ids =
        List.sort compare
          (Hashtbl.fold (fun k _ acc -> k :: acc) (tracks_tbl t) [])
      in
      t.track_ids <- Some ids;
      ids

let track_spans t track =
  Option.value ~default:[] (Hashtbl.find_opt (tracks_tbl t) track)

(* Spans whose name starts with [prefix], in start order. *)
let with_prefix t prefix =
  let acc = ref [] in
  for i = Array.length t.arr - 1 downto 0 do
    let s = t.arr.(i) in
    if String.starts_with ~prefix s.Trace.name then acc := s :: !acc
  done;
  !acc

(* Simulated horizon of the log: the latest finish time seen (0 if empty). *)
let horizon t =
  Array.fold_left
    (fun acc (s : Trace.span) ->
      if Trace.finished s then Float.max acc s.Trace.end_s else acc)
    0.0 t.arr
