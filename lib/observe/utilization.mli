(** Per-node busy/idle timelines derived from a span log.

    One render track is one node's complete activity record (the executor
    records every execution attempt as a ["task:…"] span and every
    transfer as an ["xfer:…"] span on the node's track).  Busy time is the
    union of the task-span intervals — overlapping speculative attempts
    are merged, not double counted — and everything else up to the horizon
    is idle, reported as gaps. *)

type node_util = {
  nu_node : string;
  nu_track : int;
  nu_tasks : int;  (** First completions (status ["ok"]) on the node. *)
  nu_attempts : int;  (** Task spans, including retries and speculation. *)
  nu_busy_s : float;  (** Merged task-span time. *)
  nu_span_s : float;  (** Unmerged task-span sum (>= busy). *)
  nu_xfer_s : float;  (** Transfer-span sum. *)
  nu_wait_s : float;  (** Desim queueing time, when supplied. *)
  nu_util : float;  (** busy / horizon. *)
  nu_idle_s : float;  (** horizon - busy. *)
  nu_gaps : (float * float) list;  (** Largest idle (start, length) first. *)
}

type t = { u_horizon_s : float; u_nodes : node_util list }

(** Build the per-node account from a span index.  [track_names] overrides
    the node name of a track; [waits] supplies per-node Desim queueing
    time; [max_gaps] bounds the idle gaps kept per node (largest first). *)
val of_span_dag :
  ?horizon:float ->
  ?track_names:(int * string) list ->
  ?waits:(string * float) list ->
  ?max_gaps:int ->
  Span_dag.t ->
  t

(** Per-window busy fraction of one track over [windows] equal windows of
    the horizon: [(window_start_s, busy_fraction)] per window, oldest
    first.  This is the utilization timeline the watch layer's phase
    detector ({!Everest_watch.Detect.phases_of_track}) segments. *)
val busy_timeline :
  ?windows:int -> ?horizon:float -> Span_dag.t -> track:int -> (float * float) array

(** Invariants every extraction satisfies: busy within [0, span_s] and
    [0, horizon], busy + idle tiles the horizon, utilization in [0, 1]. *)
val check : ?eps:float -> t -> bool

val total_busy_s : t -> float

(** The longest idle gap across every node: (node, start, length). *)
val worst_gap : t -> (string * float * float) option

val node_to_json : node_util -> Json.t
val to_json : t -> Json.t
val node_of_json : Json.t -> node_util
val of_json : Json.t -> t
