(** Declarative service-level objectives with error budgets and
    multi-window burn-rate alerting, evaluated over simulated time.

    An objective classifies each outcome (one served request, or one
    workflow task) as good or bad.  {!evaluate} is the batch view over a
    whole log; {!monitor} is the online view fed as requests complete,
    implementing the standard fast/slow two-window burn-rate rule: alert
    when *both* a short and a long window burn the error budget faster
    than [burn_threshold], so a short blip does not page but a sustained
    burn does.  Time always comes from the caller ([~now]), so everything
    runs on the simulated clock and stays deterministic. *)

type objective =
  | Availability of { target : float }
      (** Fraction of requests ok; bad = failed; budget = 1-target. *)
  | Latency_quantile of { q : float; limit_s : float }
      (** "q of requests finish within limit_s"; bad = slower than the
          limit (or failed); budget = 1-q. *)
  | Completion_ratio of { target : float }
      (** Availability over task outcomes. *)

type spec = { slo_name : string; objective : objective }

val availability : string -> float -> spec
val latency : string -> q:float -> limit_s:float -> spec
val completion : string -> float -> spec

(** One observed unit: a request (or task) that finished at [o_t_s]. *)
type outcome = { o_t_s : float; o_ok : bool; o_latency_s : float }

(** Exact empirical quantile (nearest-rank): value at index ceil(q*n);
    0 on an empty list. *)
val exact_quantile : float list -> float -> float

type result = {
  res_name : string;
  res_kind : string;  (** "availability" | "latency" | "completion" *)
  attained : float;  (** Measured value of the objective. *)
  target : float;  (** What the spec demands. *)
  met : bool;
  budget : float;  (** Allowed bad fraction. *)
  budget_used : float;  (** Bad fraction / budget; > 1 means exhausted. *)
  total : int;
  bad : int;
}

(** Batch verdict over a whole log. *)
val evaluate : spec -> outcome list -> result

val evaluate_all : spec list -> outcome list -> result list

(** Counting objectives (availability, completion) from tallies alone — no
    outcome list to materialize.  Raises [Invalid_argument] for latency
    objectives, which need the individual samples. *)
val evaluate_counts : spec -> total:int -> bad:int -> result

(** {2 Online burn-rate monitoring} *)

type alert_config = {
  fast_window_s : float;  (** Short window: catches fresh, fast burns. *)
  slow_window_s : float;  (** Long window: confirms the burn is sustained. *)
  burn_threshold : float;  (** Alert when both windows burn >= this rate. *)
}

(** Both windows at 2x budget burn — conservative enough for the short
    simulated runs these monitors watch.  Callers with a real budget
    window scale fast/slow to ~1/60 and ~1/12 of it (the SRE 5m/1h
    pairing). *)
val default_alert : alert_config

type monitor

val monitor : ?alert:alert_config -> spec -> monitor
val monitor_name : monitor -> string

(** Currently alerting (both windows over threshold at last observe). *)
val firing : monitor -> bool

(** Rising edges of the alert so far. *)
val alerts : monitor -> int

(** Outcomes observed so far. *)
val observed : monitor -> int

(** (fast, slow) burn rates — windowed bad fraction over the error
    budget — at time [now]. *)
val burn_rates : monitor -> now:float -> float * float

(** Feed one outcome; [latency_s] defaults to 0 (irrelevant for
    availability objectives).  Updates the firing state. *)
val observe : monitor -> now:float -> ?latency_s:float -> ok:bool -> unit -> unit

(** Batch result over everything the monitor has seen (all-time, not
    windowed) — the end-of-run SLO verdict.  Latency monitors report the
    bad fraction against the budget rather than an exact quantile (the
    bounded window does not keep every latency). *)
val snapshot : monitor -> result

(** {2 Checkpoint / restore} *)

(** The monitor's full mutable core; a restored monitor burns and prunes
    byte-identically to one that never stopped. *)
type monitor_state = {
  ms_events : (float * bool) list;  (** (t, bad), newest first *)
  ms_total : int;
  ms_bad : int;
  ms_last_t : float;
  ms_firing : bool;
  ms_alerts : int;
}

val monitor_export : monitor -> monitor_state
val monitor_import : monitor -> monitor_state -> unit

(** {2 Serialization} *)

val result_to_json : result -> Json.t
val result_of_json : Json.t -> result
val pp_result : Format.formatter -> result -> unit
