(* Diff two run reports (as JSON trees) and flag regressions.

   The walk pairs numeric leaves by path; array elements are matched by an
   identity member ("task", "node", "slo" or "name") when present, by
   position otherwise, so reordering a node list does not read as churn.
   A numeric change beyond [tolerance] (relative) becomes a *regression*
   only when it moves in the bad direction for that metric — times, waits
   and drop counts must not grow, utilization and attainment must not
   shrink; counters with no inherent direction (start times, totals,
   targets) are recorded as changes but never flagged.  A met-SLO turning
   unmet is always a regression regardless of tolerance. *)

type change = {
  c_path : string;
  c_before : string;  (* rendered old value ("-" when absent) *)
  c_after : string;  (* rendered new value *)
  c_delta : float;  (* relative change; nan when not numeric *)
  c_regression : bool;
}

type direction = Higher_better | Lower_better | Neutral

(* Direction of a metric, from the last path segment. *)
let direction_of_key key =
  let lower =
    [ "makespan_s"; "duration_s"; "wait_s"; "idle_s"; "len_s"; "xfer_s";
      "dropped"; "budget_used"; "bad"; "retries"; "timeouts"; "recomputed";
      "energy_j"; "bytes_moved"; "transfers" ]
  and higher = [ "util"; "attained"; "tasks_done"; "tasks"; "busy_s" ] in
  if List.mem key lower then Lower_better
  else if List.mem key higher then Higher_better
  else if
    (* latency quantiles: p50_s, p95_s, p99_s, ... *)
    String.length key > 2
    && key.[0] = 'p'
    && (match key.[1] with '0' .. '9' -> true | _ -> false)
  then Lower_better
  else Neutral

let render_leaf = function
  | Json.Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Printf.sprintf "%.0f" f
      else Printf.sprintf "%.6g" f
  | Json.Str s -> s
  | Json.Bool b -> string_of_bool b
  | Json.Null -> "null"
  | Json.Arr _ -> "[...]"
  | Json.Obj _ -> "{...}"

let last_segment path =
  match String.rindex_opt path '.' with
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)
  | None -> path

(* Identity of an array element, when it carries one. *)
let identity j =
  List.find_map (fun k -> Json.str_member k j) [ "task"; "node"; "slo"; "name" ]

let diff ?(tolerance = 0.05) ~(before : Json.t) ~(after : Json.t) () :
    change list =
  let out = ref [] in
  let emit c = out := c :: !out in
  let join path k = if path = "" then k else path ^ "." ^ k in
  let missing path side v =
    emit
      { c_path = path;
        c_before = (if side = `Before then render_leaf v else "-");
        c_after = (if side = `After then render_leaf v else "-");
        c_delta = Float.nan; c_regression = false }
  in
  let rec go path (b : Json.t) (a : Json.t) =
    match (b, a) with
    | Json.Num x, Json.Num y ->
        let delta = (y -. x) /. Float.max (Float.abs x) 1e-12 in
        if Float.abs delta > tolerance then
          let regression =
            match direction_of_key (last_segment path) with
            | Lower_better -> y > x
            | Higher_better -> y < x
            | Neutral -> false
          in
          emit
            { c_path = path; c_before = render_leaf b; c_after = render_leaf a;
              c_delta = delta; c_regression = regression }
    | Json.Bool x, Json.Bool y when x <> y ->
        (* the only booleans in a report are "met" flags: true->false bad *)
        emit
          { c_path = path; c_before = render_leaf b; c_after = render_leaf a;
            c_delta = Float.nan; c_regression = x && not y }
    | Json.Str x, Json.Str y when x <> y ->
        emit
          { c_path = path; c_before = x; c_after = y; c_delta = Float.nan;
            c_regression = false }
    | Json.Obj bs, Json.Obj as_ ->
        List.iter
          (fun (k, bv) ->
            match List.assoc_opt k as_ with
            | Some av -> go (join path k) bv av
            | None -> missing (join path k) `Before bv)
          bs;
        List.iter
          (fun (k, av) ->
            if List.assoc_opt k bs = None then missing (join path k) `After av)
          as_
    | Json.Arr bs, Json.Arr as_ ->
        let keyed xs =
          List.mapi
            (fun i x ->
              (Option.value ~default:(string_of_int i) (identity x), x))
            xs
        in
        let bk = keyed bs and ak = keyed as_ in
        List.iter
          (fun (k, bv) ->
            match List.assoc_opt k ak with
            | Some av -> go (join path ("[" ^ k ^ "]")) bv av
            | None -> missing (join path ("[" ^ k ^ "]")) `Before bv)
          bk;
        List.iter
          (fun (k, av) ->
            if List.assoc_opt k bk = None then
              missing (join path ("[" ^ k ^ "]")) `After av)
          ak
    | Json.Null, Json.Null -> ()
    | _, _ when b = a -> ()
    | _ ->
        (* type changed (e.g. critical_path null -> object) *)
        emit
          { c_path = path; c_before = render_leaf b; c_after = render_leaf a;
            c_delta = Float.nan; c_regression = false }
  in
  go "" before after;
  List.rev !out

let regressions changes = List.filter (fun c -> c.c_regression) changes

let pp_change ppf c =
  if Float.is_nan c.c_delta then
    Fmt.pf ppf "%-40s %s -> %s%s" c.c_path c.c_before c.c_after
      (if c.c_regression then "  REGRESSION" else "")
  else
    Fmt.pf ppf "%-40s %s -> %s (%+.1f%%)%s" c.c_path c.c_before c.c_after
      (100.0 *. c.c_delta)
      (if c.c_regression then "  REGRESSION" else "")

let render_text changes =
  match changes with
  | [] -> "no changes beyond tolerance\n"
  | cs ->
      let bad = List.length (regressions cs) in
      Fmt.str "%a%d change(s), %d regression(s)\n"
        (Fmt.list ~sep:Fmt.nop (fun ppf c -> Fmt.pf ppf "%a\n" pp_change c))
        cs (List.length cs) bad
