(** Critical-path extraction with self-time vs. wait-time attribution.

    Works over generic {e activities} — completed units of work with a
    dependency list — so the same walk serves executor runs, orchestrator
    request logs or anything that can name its predecessors.  The path is
    the backward chain from the latest-finishing activity, always stepping
    to the latest-finishing present dependency; per step, the segment
    since the previous finish splits into {e self} time (bounded by the
    measured work) and {e wait} time (transfers, retries, queueing).

    Invariant (pinned by {!check} and the tests):
    [work_s <= duration_s <= makespan_s], with [duration_s = makespan_s]
    whenever the chain anchors at a time-zero root. *)

type activity = {
  act_id : int;
  act_name : string;
  act_node : string;
  act_start : float;  (** First attempt start ([<= finish]). *)
  act_finish : float;  (** Authoritative completion time. *)
  act_work_s : float;  (** Self time of the winning execution. *)
  act_deps : int list;  (** Activity ids that must finish first. *)
}

type step = {
  st_name : string;
  st_node : string;
  st_start_s : float;  (** The activity's own start. *)
  st_finish_s : float;
  st_self_s : float;  (** Executing, within this step's path segment. *)
  st_wait_s : float;  (** The rest of the segment. *)
}

type t = {
  steps : step list;  (** In execution order. *)
  duration_s : float;  (** Last finish - first start along the path. *)
  work_s : float;  (** Sum of per-step self time. *)
  wait_s : float;  (** Sum of per-step wait time. *)
  makespan_s : float;  (** Max finish over all activities. *)
  total_work_s : float;  (** Sum of work over all activities. *)
}

(** [None] on an empty activity list.  Ties on finish time break to the
    smaller id, so extraction is deterministic. *)
val extract : activity list -> t option

(** Flat variant for id-indexed activity sets (slot [i] absent when
    [finish.(i) < 0]): timing lives in unboxed float arrays and the
    [deps]/[name]/[node] callbacks are consulted only for ids actually on
    the walked chain, so a million-task join allocates a few hundred
    records.  Anchor choice and tie-breaks replicate {!extract}. *)
val extract_flat :
  start:float array ->
  finish:float array ->
  work:float array ->
  deps:(int -> int list) ->
  name:(int -> string) ->
  node:(int -> string) ->
  t option

(** Path time attributed per node, (self, wait) pairs, largest share
    first. *)
val by_node : t -> (string * (float * float)) list

(** The top-[k] path steps by share of the critical path (self + wait). *)
val bottlenecks : ?k:int -> t -> step list

(** The extraction invariant ([eps] is absolute). *)
val check : ?eps:float -> t -> bool

val step_to_json : step -> Json.t
val to_json : t -> Json.t
val step_of_json : Json.t -> step
val of_json : Json.t -> t
val pp : Format.formatter -> t -> unit
