(* Declarative service-level objectives with error budgets and multi-window
   burn-rate alerting, evaluated over simulated time.

   An objective classifies each outcome (one served request, or one
   workflow task) as good or bad:

     - [Availability target]: bad = the request failed; budget = 1-target.
     - [Latency_quantile {q; limit_s}]: "q of requests finish within
       limit_s"; bad = slower than the limit (or failed); budget = 1-q.
     - [Completion_ratio target]: availability over task outcomes.

   [evaluate] is the batch view over a whole log.  [monitor] is the online
   view the orchestrator feeds as requests complete: it keeps a bounded
   event window and evaluates the standard fast/slow two-window burn-rate
   rule — alert when *both* a short and a long window burn the error budget
   faster than [burn_threshold] — so a short blip does not page but a
   sustained burn does, and recovery resets the alert quickly.  Time comes
   from the caller ([~now]), so everything runs on the Desim simulated
   clock and is deterministic. *)

type objective =
  | Availability of { target : float }  (* fraction of requests ok *)
  | Latency_quantile of { q : float; limit_s : float }
  | Completion_ratio of { target : float }  (* fraction of tasks done *)

type spec = { slo_name : string; objective : objective }

let availability name target =
  { slo_name = name; objective = Availability { target } }

let latency name ~q ~limit_s =
  { slo_name = name; objective = Latency_quantile { q; limit_s } }

let completion name target =
  { slo_name = name; objective = Completion_ratio { target } }

(* One observed unit: a request (or task) that finished at [o_t_s]. *)
type outcome = { o_t_s : float; o_ok : bool; o_latency_s : float }

(* Allowed bad fraction. *)
let error_budget = function
  | Availability { target } | Completion_ratio { target } ->
      Float.max 1e-9 (1.0 -. target)
  | Latency_quantile { q; _ } -> Float.max 1e-9 (1.0 -. q)

let is_bad spec (o : outcome) =
  match spec.objective with
  | Availability _ | Completion_ratio _ -> not o.o_ok
  | Latency_quantile { limit_s; _ } -> (not o.o_ok) || o.o_latency_s > limit_s

(* Exact empirical quantile (nearest-rank): value at index ceil(q*n). *)
let exact_quantile xs q =
  match xs with
  | [] -> 0.0
  | _ ->
      let arr = Array.of_list xs in
      Array.sort compare arr;
      let n = Array.length arr in
      let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
      arr.(max 0 (min (n - 1) (rank - 1)))

type result = {
  res_name : string;
  res_kind : string;  (* "availability" | "latency" | "completion" *)
  attained : float;  (* measured value of the objective *)
  target : float;  (* what the spec demands *)
  met : bool;
  budget : float;  (* allowed bad fraction *)
  budget_used : float;  (* bad fraction / budget; > 1 means exhausted *)
  total : int;
  bad : int;
}

let evaluate spec (outcomes : outcome list) : result =
  let total = List.length outcomes in
  let bad = List.length (List.filter (is_bad spec) outcomes) in
  let bad_frac =
    if total = 0 then 0.0 else float_of_int bad /. float_of_int total
  in
  let budget = error_budget spec.objective in
  let kind, attained, target, met =
    match spec.objective with
    | Availability { target } ->
        ("availability", 1.0 -. bad_frac, target, 1.0 -. bad_frac >= target)
    | Completion_ratio { target } ->
        ("completion", 1.0 -. bad_frac, target, 1.0 -. bad_frac >= target)
    | Latency_quantile { q; limit_s } ->
        let lat =
          exact_quantile
            (List.filter_map
               (fun o -> if o.o_ok then Some o.o_latency_s else None)
               outcomes)
            q
        in
        ("latency", lat, limit_s, lat <= limit_s && bad_frac <= budget)
  in
  { res_name = spec.slo_name; res_kind = kind; attained; target; met;
    budget; budget_used = bad_frac /. budget; total; bad }

let evaluate_all specs outcomes = List.map (fun s -> evaluate s outcomes) specs

(* Counting objectives need only the tallies, not the outcome log — the
   executor's report hook evaluates completion over 10⁶ task outcomes
   without materializing a 10⁶-element list.  Latency objectives need the
   individual samples; feed those through [evaluate]. *)
let evaluate_counts spec ~total ~bad : result =
  let bad_frac =
    if total = 0 then 0.0 else float_of_int bad /. float_of_int total
  in
  let budget = error_budget spec.objective in
  let kind, attained, target, met =
    match spec.objective with
    | Availability { target } ->
        ("availability", 1.0 -. bad_frac, target, 1.0 -. bad_frac >= target)
    | Completion_ratio { target } ->
        ("completion", 1.0 -. bad_frac, target, 1.0 -. bad_frac >= target)
    | Latency_quantile _ ->
        invalid_arg "Slo.evaluate_counts: latency objectives need samples"
  in
  { res_name = spec.slo_name; res_kind = kind; attained; target; met;
    budget; budget_used = bad_frac /. budget; total; bad }

(* ---- online burn-rate monitor --------------------------------------------------- *)

type alert_config = {
  fast_window_s : float;  (* short window: catches fresh, fast burns *)
  slow_window_s : float;  (* long window: confirms the burn is sustained *)
  burn_threshold : float;  (* alert when both windows burn >= this rate *)
}

(* Both windows at 2x budget burn — conservative enough for the short
   simulated runs these monitors watch.  Callers with a real budget window
   scale fast/slow to ~1/60 and ~1/12 of it (the SRE 5m/1h pairing). *)
let default_alert =
  { fast_window_s = 0.05; slow_window_s = 0.5; burn_threshold = 2.0 }

type monitor = {
  m_spec : spec;
  m_alert : alert_config;
  mutable m_events : (float * bool) list;  (* (t, bad), newest first *)
  mutable m_total : int;
  mutable m_bad : int;
  mutable m_last_t : float;
  mutable m_firing : bool;
  mutable m_alerts : int;  (* rising edges *)
}

let monitor ?(alert = default_alert) spec =
  { m_spec = spec; m_alert = alert; m_events = []; m_total = 0; m_bad = 0;
    m_last_t = 0.0; m_firing = false; m_alerts = 0 }

let monitor_name m = m.m_spec.slo_name
let firing m = m.m_firing
let alerts m = m.m_alerts
let observed m = m.m_total

(* Bad fraction over the trailing [window_s]; 0 when no events fall in. *)
let window_bad_frac m ~now ~window_s =
  let lo = now -. window_s in
  let total, bad =
    List.fold_left
      (fun (t, b) (ts, is_bad) ->
        if ts >= lo then (t + 1, if is_bad then b + 1 else b) else (t, b))
      (0, 0) m.m_events
  in
  if total = 0 then 0.0 else float_of_int bad /. float_of_int total

let burn_rates m ~now =
  let budget = error_budget m.m_spec.objective in
  ( window_bad_frac m ~now ~window_s:m.m_alert.fast_window_s /. budget,
    window_bad_frac m ~now ~window_s:m.m_alert.slow_window_s /. budget )

let observe m ~now ?(latency_s = 0.0) ~ok () =
  let bad = is_bad m.m_spec { o_t_s = now; o_ok = ok; o_latency_s = latency_s } in
  m.m_events <- (now, bad) :: m.m_events;
  m.m_total <- m.m_total + 1;
  if bad then m.m_bad <- m.m_bad + 1;
  m.m_last_t <- Float.max m.m_last_t now;
  (* prune events that fell out of the slow window *)
  let lo = now -. m.m_alert.slow_window_s in
  (match List.rev m.m_events with
  | (oldest_t, _) :: _ when oldest_t < lo ->
      m.m_events <- List.filter (fun (t, _) -> t >= lo) m.m_events
  | _ -> ());
  let fast, slow = burn_rates m ~now in
  let was = m.m_firing in
  m.m_firing <-
    fast >= m.m_alert.burn_threshold && slow >= m.m_alert.burn_threshold;
  if m.m_firing && not was then m.m_alerts <- m.m_alerts + 1

(* Batch result over everything the monitor has seen (all-time, not
   windowed) — the end-of-run SLO verdict. *)
let snapshot m : result =
  let total = m.m_total and bad = m.m_bad in
  let bad_frac =
    if total = 0 then 0.0 else float_of_int bad /. float_of_int total
  in
  let budget = error_budget m.m_spec.objective in
  let kind, attained, target, met =
    match m.m_spec.objective with
    | Availability { target } ->
        ("availability", 1.0 -. bad_frac, target, 1.0 -. bad_frac >= target)
    | Completion_ratio { target } ->
        ("completion", 1.0 -. bad_frac, target, 1.0 -. bad_frac >= target)
    | Latency_quantile { q; limit_s } ->
        (* windowed monitors do not keep every latency; report the bad
           fraction against the budget instead of the exact quantile *)
        ("latency", 1.0 -. bad_frac, q, bad_frac <= budget && limit_s >= 0.0)
  in
  { res_name = m.m_spec.slo_name; res_kind = kind; attained; target; met;
    budget; budget_used = bad_frac /. budget; total; bad }

(* Checkpoint/restore: the monitor's full mutable core.  Events stay
   newest first, exactly as stored, so a restored monitor burns and
   prunes byte-identically to one that never stopped. *)
type monitor_state = {
  ms_events : (float * bool) list;  (* newest first *)
  ms_total : int;
  ms_bad : int;
  ms_last_t : float;
  ms_firing : bool;
  ms_alerts : int;
}

let monitor_export m =
  { ms_events = m.m_events; ms_total = m.m_total; ms_bad = m.m_bad;
    ms_last_t = m.m_last_t; ms_firing = m.m_firing; ms_alerts = m.m_alerts }

let monitor_import m s =
  m.m_events <- s.ms_events;
  m.m_total <- s.ms_total;
  m.m_bad <- s.ms_bad;
  m.m_last_t <- s.ms_last_t;
  m.m_firing <- s.ms_firing;
  m.m_alerts <- s.ms_alerts

(* ---- serialization -------------------------------------------------------------- *)

let result_to_json r =
  Json.Obj
    [ ("slo", Json.Str r.res_name); ("kind", Json.Str r.res_kind);
      ("attained", Json.Num r.attained); ("target", Json.Num r.target);
      ("met", Json.Bool r.met); ("budget", Json.Num r.budget);
      ("budget_used", Json.Num r.budget_used);
      ("total", Json.Num (float_of_int r.total));
      ("bad", Json.Num (float_of_int r.bad)) ]

let result_of_json j =
  { res_name = Json.need_str "slo" j; res_kind = Json.need_str "kind" j;
    attained = Json.need_num "attained" j; target = Json.need_num "target" j;
    met = Json.to_bool (Json.need "met" j); budget = Json.need_num "budget" j;
    budget_used = Json.need_num "budget_used" j;
    total = int_of_float (Json.need_num "total" j);
    bad = int_of_float (Json.need_num "bad" j) }

let pp_result ppf r =
  Fmt.pf ppf "%-20s %s attained=%.4g target=%.4g budget used %.0f%% %s"
    r.res_name r.res_kind r.attained r.target (100.0 *. r.budget_used)
    (if r.met then "met" else "VIOLATED")
