(* Critical-path extraction with self-time vs. wait-time attribution.

   Works over generic *activities* — completed units of work with a
   dependency list — so the same walk serves executor runs (tasks with DAG
   edges), orchestrator request logs (requests depending on nothing) or
   anything else that can name its predecessors.  The caller builds
   activities from its own structures (the executor's report hook joins the
   scheduler plan with the span log).

   The path is the backward chain from the latest-finishing activity,
   always stepping to the latest-finishing present dependency, ending at an
   activity with no (present) dependencies.  Because a consumer starts the
   moment its last input is ready, the forward segments
   [prev.finish, this.finish] tile the whole interval from the first
   activity's start to the makespan: per step, the segment splits into
   *self* time (the activity actually executing, bounded by its measured
   work) and *wait* time (transfers, retries, backoff, queueing — whatever
   kept the segment longer than the work).  Hence the invariant the tests
   pin: work_s <= duration_s <= makespan_s, with equality of duration and
   makespan whenever the chain is anchored at a time-zero root. *)

type activity = {
  act_id : int;
  act_name : string;
  act_node : string;
  act_start : float;  (* first attempt start (<= finish) *)
  act_finish : float;  (* authoritative completion time *)
  act_work_s : float;  (* self time of the winning execution *)
  act_deps : int list;  (* activity ids that must finish first *)
}

type step = {
  st_name : string;
  st_node : string;
  st_start_s : float;  (* the activity's own start *)
  st_finish_s : float;
  st_self_s : float;  (* executing, within this step's path segment *)
  st_wait_s : float;  (* the rest of the segment *)
}

type t = {
  steps : step list;  (* in execution order *)
  duration_s : float;  (* last finish - first start along the path *)
  work_s : float;  (* sum of per-step self time *)
  wait_s : float;  (* sum of per-step wait time *)
  makespan_s : float;  (* max finish over all activities *)
  total_work_s : float;  (* sum of work over all activities *)
}

let later (a : activity) (b : activity) =
  (* the gating predecessor: latest finish, ties to the smaller id so the
     walk is deterministic *)
  if b.act_finish > a.act_finish
     || (b.act_finish = a.act_finish && b.act_id < a.act_id)
  then b
  else a

(* Turn the backward chain (already reversed into execution order) into the
   attributed path record; shared by the list and dense entry points. *)
let assemble ~makespan_s ~total_work_s (anchor : activity) chain =
  let head = List.hd chain in
  let steps =
    List.rev
      (fst
         (List.fold_left
            (fun (acc, prev_end) a ->
              let seg = a.act_finish -. prev_end in
              let self = Float.min (Float.max 0.0 a.act_work_s) seg in
              ( { st_name = a.act_name; st_node = a.act_node;
                  st_start_s = a.act_start; st_finish_s = a.act_finish;
                  st_self_s = self; st_wait_s = seg -. self }
                :: acc,
                a.act_finish ))
            ([], head.act_start) chain))
  in
  let sum f = List.fold_left (fun acc s -> acc +. f s) 0.0 steps in
  { steps;
    duration_s = anchor.act_finish -. head.act_start;
    work_s = sum (fun s -> s.st_self_s);
    wait_s = sum (fun s -> s.st_wait_s);
    makespan_s;
    total_work_s }

let extract (acts : activity list) : t option =
  match acts with
  | [] -> None
  | first :: rest ->
      let by_id = Hashtbl.create (List.length acts) in
      List.iter (fun a -> Hashtbl.replace by_id a.act_id a) acts;
      let anchor = List.fold_left later first rest in
      let rec walk (a : activity) path =
        let preds = List.filter_map (Hashtbl.find_opt by_id) a.act_deps in
        match preds with
        | [] -> a :: path
        | p :: ps -> walk (List.fold_left later p ps) (a :: path)
      in
      let makespan_s =
        List.fold_left (fun acc a -> Float.max acc a.act_finish) 0.0 acts
      in
      let total_work_s =
        List.fold_left (fun acc a -> acc +. a.act_work_s) 0.0 acts
      in
      Some (assemble ~makespan_s ~total_work_s anchor (walk anchor []))

(* Flat variant for id-indexed activity sets (the executor report keys
   activities by task id, in [0, n)): timing lives in unboxed float arrays,
   slot [i] absent when [finish.(i) < 0], and the [deps]/[name]/[node]
   callbacks are consulted only for ids actually on the walked chain.  A
   million-task join therefore allocates a few hundred records instead of a
   million — which is what keeps report forcing inside its <5%-of-run
   budget (E17).  Anchor choice and gating-predecessor tie-breaks replicate
   [extract]: latest finish, ties to the smaller id ([later] is a total
   order, so traversal order doesn't matter). *)
let extract_flat ~(start : float array) ~(finish : float array)
    ~(work : float array) ~(deps : int -> int list) ~(name : int -> string)
    ~(node : int -> string) : t option =
  let n = Array.length finish in
  let anchor = ref (-1) in
  let makespan = ref 0.0 in
  let total_work = ref 0.0 in
  for i = 0 to n - 1 do
    let f = finish.(i) in
    if f >= 0.0 then begin
      if f > !makespan then makespan := f;
      total_work := !total_work +. work.(i);
      (* ascending scan: a strictly later finish replaces, a tie keeps the
         smaller (= earlier) id — exactly [later] *)
      if !anchor < 0 || f > finish.(!anchor) then anchor := i
    end
  done;
  if !anchor < 0 then None
  else begin
    let rec walk i chain =
      let best =
        List.fold_left
          (fun best d ->
            if d < 0 || d >= n || finish.(d) < 0.0 then best
            else
              match best with
              | None -> Some d
              | Some b ->
                  if
                    finish.(d) > finish.(b)
                    || (finish.(d) = finish.(b) && d < b)
                  then Some d
                  else best)
          None (deps i)
      in
      match best with
      | None -> i :: chain
      | Some p -> walk p (i :: chain)
    in
    let ids = walk !anchor [] in
    let acts =
      List.map
        (fun i ->
          { act_id = i; act_name = name i; act_node = node i;
            act_start = start.(i); act_finish = finish.(i);
            act_work_s = work.(i); act_deps = deps i })
        ids
    in
    let anchor_act = List.fold_left (fun _ a -> a) (List.hd acts) acts in
    Some
      (assemble ~makespan_s:!makespan ~total_work_s:!total_work anchor_act
         acts)
  end

(* Path time attributed per node, (self, wait) pairs, largest share first. *)
let by_node t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let self, wait =
        Option.value ~default:(0.0, 0.0) (Hashtbl.find_opt tbl s.st_node)
      in
      Hashtbl.replace tbl s.st_node (self +. s.st_self_s, wait +. s.st_wait_s))
    t.steps;
  Hashtbl.fold (fun node sw acc -> (node, sw) :: acc) tbl []
  |> List.sort (fun (_, (s1, w1)) (_, (s2, w2)) ->
         compare (s2 +. w2) (s1 +. w1))

(* The top-[k] path steps by share of the critical path (self + wait). *)
let bottlenecks ?(k = 5) t =
  let sorted =
    List.sort
      (fun a b ->
        compare (b.st_self_s +. b.st_wait_s) (a.st_self_s +. a.st_wait_s))
      t.steps
  in
  List.filteri (fun i _ -> i < k) sorted

(* The invariant every extraction must satisfy (eps is absolute). *)
let check ?(eps = 1e-9) t =
  t.work_s <= t.duration_s +. eps
  && t.duration_s <= t.makespan_s +. eps
  && t.work_s <= t.total_work_s +. eps
  && List.for_all (fun s -> s.st_self_s >= 0.0 && s.st_wait_s >= 0.0) t.steps

(* ---- serialization -------------------------------------------------------------- *)

let step_to_json s =
  Json.Obj
    [ ("task", Json.Str s.st_name); ("node", Json.Str s.st_node);
      ("start_s", Json.Num s.st_start_s);
      ("finish_s", Json.Num s.st_finish_s);
      ("self_s", Json.Num s.st_self_s); ("wait_s", Json.Num s.st_wait_s) ]

let to_json t =
  Json.Obj
    [ ("duration_s", Json.Num t.duration_s); ("work_s", Json.Num t.work_s);
      ("wait_s", Json.Num t.wait_s); ("makespan_s", Json.Num t.makespan_s);
      ("total_work_s", Json.Num t.total_work_s);
      ("steps", Json.Arr (List.map step_to_json t.steps)) ]

let step_of_json j =
  { st_name = Json.need_str "task" j; st_node = Json.need_str "node" j;
    st_start_s = Json.need_num "start_s" j;
    st_finish_s = Json.need_num "finish_s" j;
    st_self_s = Json.need_num "self_s" j;
    st_wait_s = Json.need_num "wait_s" j }

let of_json j =
  { duration_s = Json.need_num "duration_s" j;
    work_s = Json.need_num "work_s" j; wait_s = Json.need_num "wait_s" j;
    makespan_s = Json.need_num "makespan_s" j;
    total_work_s = Json.need_num "total_work_s" j;
    steps = List.map step_of_json (Json.to_list (Json.need "steps" j)) }

let pp ppf t =
  Fmt.pf ppf "critical path: %d steps, %.4gs (self %.4gs + wait %.4gs)"
    (List.length t.steps) t.duration_s t.work_s t.wait_s
