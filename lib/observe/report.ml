(* The run report: everything the analytics layer derives from one run,
   in one value that renders as text, serializes to JSON and round-trips
   back for regression diffing.

   A report is *pulled*: the executor exposes it as a lazy field on its
   stats and nothing here executes until someone forces it, so runs that
   never ask for a report pay nothing. *)

type t = {
  r_name : string;  (* workload name ("stress", dag name, ...) *)
  r_policy : string;  (* scheduling policy the run used *)
  r_tasks_done : int;
  r_tasks_total : int;
  r_spans : int;  (* spans captured in the log *)
  r_dropped : int;  (* spans lost to the bounded sink *)
  r_makespan_s : float;
  r_cp : Critical_path.t option;  (* None when the log is empty/untraced *)
  r_util : Utilization.t option;
  r_quantiles : (string * float) list;  (* "p50_s" -> seconds, ... *)
  r_counters : (string * float) list;  (* retries, transfers, bytes, ... *)
  r_slos : Slo.result list;
}

let make ?(name = "run") ?(policy = "") ?(tasks_done = 0) ?(tasks_total = 0)
    ?(spans = 0) ?(dropped = 0) ?(makespan_s = 0.0) ?cp ?util
    ?(quantiles = []) ?(counters = []) ?(slos = []) () =
  { r_name = name; r_policy = policy; r_tasks_done = tasks_done;
    r_tasks_total = tasks_total; r_spans = spans; r_dropped = dropped;
    r_makespan_s = makespan_s; r_cp = cp; r_util = util;
    r_quantiles = quantiles; r_counters = counters; r_slos = slos }

let slo_violations t = List.filter (fun (r : Slo.result) -> not r.met) t.r_slos

(* ---- serialization -------------------------------------------------------------- *)

let pairs_to_json kvs =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) kvs)

let pairs_of_json j =
  match j with
  | Json.Obj kvs -> List.map (fun (k, v) -> (k, Json.to_num v)) kvs
  | _ -> invalid_arg "Report: expected an object of numbers"

let to_json t =
  Json.Obj
    [ ("name", Json.Str t.r_name); ("policy", Json.Str t.r_policy);
      ("tasks_done", Json.Num (float_of_int t.r_tasks_done));
      ("tasks_total", Json.Num (float_of_int t.r_tasks_total));
      ("spans", Json.Num (float_of_int t.r_spans));
      ("dropped", Json.Num (float_of_int t.r_dropped));
      ("makespan_s", Json.Num t.r_makespan_s);
      ("critical_path",
       match t.r_cp with Some cp -> Critical_path.to_json cp | None -> Json.Null);
      ("utilization",
       match t.r_util with Some u -> Utilization.to_json u | None -> Json.Null);
      ("quantiles", pairs_to_json t.r_quantiles);
      ("counters", pairs_to_json t.r_counters);
      ("slos", Json.Arr (List.map Slo.result_to_json t.r_slos)) ]

let of_json j =
  { r_name = Json.need_str "name" j; r_policy = Json.need_str "policy" j;
    r_tasks_done = int_of_float (Json.need_num "tasks_done" j);
    r_tasks_total = int_of_float (Json.need_num "tasks_total" j);
    r_spans = int_of_float (Json.need_num "spans" j);
    r_dropped = int_of_float (Json.need_num "dropped" j);
    r_makespan_s = Json.need_num "makespan_s" j;
    r_cp =
      (match Json.need "critical_path" j with
      | Json.Null -> None
      | cp -> Some (Critical_path.of_json cp));
    r_util =
      (match Json.need "utilization" j with
      | Json.Null -> None
      | u -> Some (Utilization.of_json u));
    r_quantiles = pairs_of_json (Json.need "quantiles" j);
    r_counters = pairs_of_json (Json.need "counters" j);
    r_slos = List.map Slo.result_of_json (Json.to_list (Json.need "slos" j)) }

(* ---- rendering ------------------------------------------------------------------ *)

let pp ppf t =
  let line fmt = Fmt.pf ppf fmt in
  line "run report: %s%s@."
    t.r_name (if t.r_policy = "" then "" else " (policy " ^ t.r_policy ^ ")");
  line "  tasks      %d/%d done, %d spans (%d dropped), makespan %.4gs@."
    t.r_tasks_done t.r_tasks_total t.r_spans t.r_dropped t.r_makespan_s;
  (match t.r_cp with
  | None -> line "  critical path: (no trace)@."
  | Some cp ->
      line "  critical path: %d steps, %.4gs = self %.4gs + wait %.4gs@."
        (List.length cp.Critical_path.steps) cp.Critical_path.duration_s
        cp.Critical_path.work_s cp.Critical_path.wait_s;
      List.iter
        (fun (s : Critical_path.step) ->
          line "    %-24s %-10s self %8.4gs  wait %8.4gs@." s.st_name
            s.st_node s.st_self_s s.st_wait_s)
        (Critical_path.bottlenecks ~k:5 cp);
      List.iter
        (fun (node, (self, wait)) ->
          line "    node %-10s self %8.4gs  wait %8.4gs@." node self wait)
        (Critical_path.by_node cp));
  (match t.r_util with
  | None -> ()
  | Some u ->
      line "  utilization (horizon %.4gs):@." u.Utilization.u_horizon_s;
      List.iter
        (fun (n : Utilization.node_util) ->
          line
            "    %-10s %5.1f%%  busy %8.4gs  idle %8.4gs  wait %8.4gs  \
             %d tasks (%d attempts)@."
            n.nu_node (100.0 *. n.nu_util) n.nu_busy_s n.nu_idle_s n.nu_wait_s
            n.nu_tasks n.nu_attempts)
        u.Utilization.u_nodes;
      match Utilization.worst_gap u with
      | Some (node, at, len) when len > 0.0 ->
          line "    worst idle gap: %.4gs on %s at t=%.4gs@." len node at
      | _ -> ());
  if t.r_quantiles <> [] then begin
    line "  task latency:";
    List.iter (fun (k, v) -> line " %s=%.4gs" k v) t.r_quantiles;
    line "@."
  end;
  if t.r_counters <> [] then begin
    line "  counters:   ";
    List.iter (fun (k, v) -> line " %s=%.4g" k v) t.r_counters;
    line "@."
  end;
  List.iter (fun r -> line "  slo: %a@." Slo.pp_result r) t.r_slos

let render t = Fmt.str "%a" pp t
