(* Minimal JSON values for the observe reports.

   Reports must round-trip (write a run's report, diff it against a later
   run) without pulling a JSON package into the dependency set, so this is
   the smallest useful value type plus a recursive-descent parser and a
   deterministic printer: object members keep insertion order, floats print
   as integers when exact, with %.17g otherwise (re-parsing gives the same
   float back, which Regress relies on for zero-diff self-comparison). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ---- printing ------------------------------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let num_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string ?(pretty = false) v =
  let buf = Buffer.create 1024 in
  let pad d = if pretty then Buffer.add_string buf (String.make (2 * d) ' ') in
  let nl () = if pretty then Buffer.add_char buf '\n' in
  let rec go d = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (num_to_string f)
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr xs ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun i x ->
            if i > 0 then (Buffer.add_char buf ','; nl ());
            pad (d + 1);
            go (d + 1) x)
          xs;
        nl ();
        pad d;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj kvs ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun i (k, x) ->
            if i > 0 then (Buffer.add_char buf ','; nl ());
            pad (d + 1);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf (if pretty then "\": " else "\":");
            go (d + 1) x)
          kvs;
        nl ();
        pad d;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* ---- parsing -------------------------------------------------------------------- *)

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail m = raise (Parse_error (Printf.sprintf "%s at offset %d" m !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\n' | '\t' | '\r' -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let literal lit v =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit
    then (pos := !pos + String.length lit; v)
    else fail ("expected " ^ lit)
  in
  let string_ () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match peek () with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (match peek () with
            | '"' -> Buffer.add_char b '"'; advance ()
            | '\\' -> Buffer.add_char b '\\'; advance ()
            | '/' -> Buffer.add_char b '/'; advance ()
            | 'n' -> Buffer.add_char b '\n'; advance ()
            | 't' -> Buffer.add_char b '\t'; advance ()
            | 'r' -> Buffer.add_char b '\r'; advance ()
            | 'b' | 'f' -> advance ()
            | 'u' ->
                advance ();
                for _ = 1 to 4 do
                  match peek () with
                  | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> advance ()
                  | _ -> fail "bad \\u escape"
                done
            | _ -> fail "bad escape");
            go ()
        | c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e'
      || c = 'E'
    in
    while !pos < n && num_char (peek ()) do advance () done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then (advance (); Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = string_ () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); members ((k, v) :: acc)
            | '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then (advance (); Arr [])
        else
          let rec elements acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); elements (v :: acc)
            | ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          elements []
    | '"' -> Str (string_ ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> Num (number ())
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

(* ---- accessors ------------------------------------------------------------------ *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_num = function Num f -> f | _ -> invalid_arg "Json.to_num"
let to_str = function Str s -> s | _ -> invalid_arg "Json.to_str"
let to_bool = function Bool b -> b | _ -> invalid_arg "Json.to_bool"
let to_list = function Arr xs -> xs | _ -> invalid_arg "Json.to_list"

let num_member k v = Option.map to_num (member k v)
let str_member k v = Option.map to_str (member k v)

(* Required members, for reconstructing reports written by this library. *)
let need k v =
  match member k v with
  | Some x -> x
  | None -> invalid_arg (Printf.sprintf "Json: missing member %S" k)

let need_num k v = to_num (need k v)
let need_str k v = to_str (need k v)
