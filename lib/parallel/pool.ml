(* Fixed-size domain pool for the compiler's embarrassingly parallel stages
   (variant evaluation, DSE).

   A pool of [domains] OCaml 5 domains shares a lock-protected queue of
   chunked index ranges.  The submitting domain participates in the work, so
   a pool of size 1 spawns no domains at all and degrades to plain
   sequential evaluation — `dune runtest` stays deterministic on one core.
   Output ordering of [parallel_map] is positional regardless of completion
   order, so results are identical to the sequential path whenever the task
   function is pure. *)

type job = {
  run : int -> unit;  (* execute item [i]; writes results into caller slots *)
  n : int;
  chunk : int;  (* indices claimed per lock acquisition *)
  mutable next : int;  (* next unclaimed index *)
  mutable live : int;  (* chunks claimed but not yet completed *)
  mutable failed : (exn * Printexc.raw_backtrace) option;  (* first failure *)
  finished : Condition.t;  (* signalled (with the pool mutex) when drained *)
}

type t = {
  m : Mutex.t;
  work : Condition.t;  (* workers wait here for jobs *)
  jobs : job Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  tasks : int array;  (* items executed per slot; slot 0 = submitting domain *)
  size : int;  (* total domains including the submitter *)
}

let size t = t.size

(* Pool size resolution: explicit argument, then the EVEREST_DOMAINS
   environment variable, then whatever the runtime recommends for the
   machine. *)
let default_domains () =
  match Sys.getenv_opt "EVEREST_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> d
      | _ -> 1)
  | None -> max 1 (Domain.recommended_domain_count ())

(* Claim the next chunk of [j], or report it drained.  Caller holds [t.m].
   After a failure no further work is handed out: remaining items are
   abandoned and the exception is re-raised at the submission site. *)
let claim j =
  if j.failed <> None || j.next >= j.n then None
  else begin
    let lo = j.next in
    let hi = min j.n (lo + j.chunk) in
    j.next <- hi;
    j.live <- j.live + 1;
    Some (lo, hi)
  end

let job_drained j = (j.next >= j.n || j.failed <> None) && j.live = 0

(* Run chunk [lo, hi) of [j] outside the lock, then account for it. *)
let exec t slot j (lo, hi) =
  let result =
    match
      for i = lo to hi - 1 do
        j.run i
      done
    with
    | () -> Ok (hi - lo)
    | exception e -> Error (e, Printexc.get_raw_backtrace ())
  in
  Mutex.lock t.m;
  (match result with
  | Ok k -> t.tasks.(slot) <- t.tasks.(slot) + k
  | Error eb -> if j.failed = None then j.failed <- Some eb);
  j.live <- j.live - 1;
  if job_drained j then Condition.broadcast j.finished;
  Mutex.unlock t.m

(* Worker domains loop here: find the front job with work left, claim a
   chunk, run it; drop drained jobs; park on [work] when idle. *)
let rec worker_loop t slot =
  Mutex.lock t.m;
  let rec get () =
    if t.stop then None
    else
      match Queue.peek_opt t.jobs with
      | None ->
          Condition.wait t.work t.m;
          get ()
      | Some j -> (
          match claim j with
          | Some range -> Some (j, range)
          | None ->
              (* drained (or failed): retire it and look again *)
              ignore (Queue.pop t.jobs);
              get ())
  in
  match get () with
  | None -> Mutex.unlock t.m
  | Some (j, range) ->
      Mutex.unlock t.m;
      exec t slot j range;
      worker_loop t slot

let create ?domains () =
  let size =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  let t =
    { m = Mutex.create (); work = Condition.create (); jobs = Queue.create ();
      stop = false; workers = []; tasks = Array.make size 0; size }
  in
  if size > 1 then
    t.workers <-
      List.init (size - 1) (fun k ->
          Domain.spawn (fun () -> worker_loop t (k + 1)));
  t

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Submit [n] items and help drain them from the submitting domain.  Blocks
   until every claimed chunk has completed, then re-raises the first worker
   exception, if any. *)
let run_items t ~n run =
  if n > 0 then begin
    let chunk = max 1 (n / (4 * t.size)) in
    let j =
      { run; n; chunk; next = 0; live = 0; failed = None;
        finished = Condition.create () }
    in
    Mutex.lock t.m;
    Queue.push j t.jobs;
    Condition.broadcast t.work;
    let rec help () =
      match claim j with
      | Some range ->
          Mutex.unlock t.m;
          exec t 0 j range;
          Mutex.lock t.m;
          help ()
      | None -> ()
    in
    help ();
    while not (job_drained j) do
      Condition.wait j.finished t.m
    done;
    (* retire the job if no worker got to it first *)
    (match Queue.peek_opt t.jobs with
    | Some j' when j' == j -> ignore (Queue.pop t.jobs)
    | _ -> ());
    let failed = j.failed in
    Mutex.unlock t.m;
    match failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let parallel_map t f xs =
  if t.size <= 1 then List.map f xs  (* sequential fallback, no queue *)
  else
    match xs with
    | [] -> []
    | [ x ] -> [ f x ]
    | _ ->
        let arr = Array.of_list xs in
        let n = Array.length arr in
        let out = Array.make n None in
        (* slots are disjoint, so unsynchronized writes are safe *)
        run_items t ~n (fun i -> out.(i) <- Some (f arr.(i)));
        List.init n (fun i ->
            match out.(i) with Some v -> v | None -> assert false)

let parallel_iter t f xs = run_items t ~n:(List.length xs)
    (let arr = Array.of_list xs in fun i -> f arr.(i))

(* Map in parallel, combine sequentially in input order: the reduction is
   deterministic for any [combine], associative or not. *)
let parallel_reduce t ~map ~combine ~init xs =
  List.fold_left (fun acc y -> combine acc y) init (parallel_map t map xs)

let stats t =
  Mutex.lock t.m;
  let a = Array.copy t.tasks in
  Mutex.unlock t.m;
  a

(* Per-domain task gauges, published from the submitting domain. *)
let publish_stats ?registry t =
  Array.iteri
    (fun i n ->
      Everest_telemetry.Probe.gauge_set ?registry
        ~labels:[ ("domain", string_of_int i) ]
        "pool_domain_tasks" (float_of_int n))
    (stats t);
  Everest_telemetry.Probe.gauge_set ?registry "pool_domains"
    (float_of_int t.size)

(* ---- process-wide default pool -------------------------------------------------- *)

let default_lock = Mutex.create ()
let default_pool = ref None

(* The shared pool used when callers do not pass one; sized by
   EVEREST_DOMAINS or the runtime's recommendation, created on first use. *)
let default () =
  Mutex.lock default_lock;
  let p =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create () in
        default_pool := Some p;
        p
  in
  Mutex.unlock default_lock;
  p
