(** Park–Miller minimal-standard PRNG with guarded seeding.

    The multiplicative generator [s <- s * 48271 mod (2^31-1)] has 0 as an
    absorbing state; [create] maps every seed into the period [1, 2^31-2]
    so no seed (0, negatives, multiples of [0x7FFFFFFF]) can freeze the
    stream.  For seeds already inside the period the sequence matches the
    ad-hoc generators this module replaced, keeping historical seeded
    behaviour bit-identical. *)

type t

val create : int -> t
val copy : t -> t

(** Next raw state, in [1, 2^31-2]. *)
val next : t -> int

(** [int t bound] draws uniformly from [0, bound).  Raises [Invalid_argument]
    when [bound <= 0]. *)
val int : t -> int -> int

(** Uniform draw in [0, 1). *)
val float : t -> float

(** Derive an independent deterministic child stream. *)
val split : t -> t

(** Raw stream position, for checkpoint/restore. *)
val state : t -> int

(** Restore a stream position previously read with {!state}.  The value is
    guarded like a seed: it can never install the absorbing state 0. *)
val set_state : t -> int -> unit
