(* Park–Miller minimal-standard PRNG (Lehmer, multiplier 48271 modulo the
   Mersenne prime 2^31-1), hoisted out of the ad-hoc copies that used to
   live in dse.ml, dag.ml and orchestrator.ml.

   Those copies had a lethal seeding bug: state 0 is a fixed point of
   [s * 48271 mod (2^31-1)], so a user-supplied seed of 0 (or any multiple
   of 0x7FFFFFFF) made the generator emit 0 forever.  [create] guards the
   seed into the generator's period [1, 2^31-2]; for seeds already in that
   range the emitted sequence is identical to the historical one. *)

let modulus = 0x7FFFFFFF  (* 2^31 - 1, prime *)
let multiplier = 48271

type t = { mutable state : int }

let create seed =
  (* map any int into [0, modulus), then kick the absorbing state 0 *)
  let s = ((seed mod modulus) + modulus) mod modulus in
  { state = (if s = 0 then 1 else s) }

let copy t = { state = t.state }

let next t =
  t.state <- t.state * multiplier mod modulus;
  t.state

(* Uniform draw in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Everest_parallel.Rng.int: bound <= 0";
  next t mod bound

(* Uniform draw in [0, 1). *)
let float t = float_of_int (next t) /. float_of_int modulus

(* Derive an independent deterministic stream, e.g. one per parallel task. *)
let split t = create (next t)

(* Raw stream position, for checkpoint/restore.  [set_state] guards the
   incoming value the same way [create] guards seeds, so a corrupted
   snapshot can never install the absorbing state 0. *)
let state t = t.state

let set_state t s =
  let s = ((s mod modulus) + modulus) mod modulus in
  t.state <- (if s = 0 then 1 else s)
