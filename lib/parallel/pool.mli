(** Fixed-size domain pool for embarrassingly parallel compiler stages.

    A pool of [domains] OCaml 5 domains drains a lock-protected queue of
    chunked index ranges.  The submitting domain participates in the work:
    a pool of size 1 spawns no domains and runs everything sequentially in
    the caller, so results (and test runs) are deterministic on one core.
    [parallel_map] preserves positional output ordering regardless of
    completion order. *)

type t

(** Pool size resolution used by {!create} when [domains] is omitted: the
    [EVEREST_DOMAINS] environment variable if set to a positive integer,
    otherwise [Domain.recommended_domain_count ()]. *)
val default_domains : unit -> int

(** [create ~domains ()] spawns [domains - 1] worker domains (the caller is
    the remaining one).  [domains] defaults to {!default_domains}. *)
val create : ?domains:int -> unit -> t

(** Total domains serving the pool, including the submitting one. *)
val size : t -> int

(** Stop the workers and join them.  Pending jobs are abandoned. *)
val shutdown : t -> unit

(** [with_pool ~domains f] runs [f] with a fresh pool and shuts it down
    afterwards, also on exception. *)
val with_pool : ?domains:int -> (t -> 'a) -> 'a

(** [parallel_map t f xs] evaluates [f] on every element of [xs] across the
    pool and returns results in input order.  If any task raises, the first
    exception is re-raised at the call site (with its backtrace) once
    in-flight chunks drain; remaining unclaimed items are not started.
    Must not be called from inside a task running on the same pool. *)
val parallel_map : t -> ('a -> 'b) -> 'a list -> 'b list

(** [parallel_iter t f xs] is [parallel_map] for effects only. *)
val parallel_iter : t -> ('a -> unit) -> 'a list -> unit

(** [parallel_reduce t ~map ~combine ~init xs] maps in parallel and folds
    the results sequentially in input order — deterministic for any
    [combine], associative or not. *)
val parallel_reduce :
  t -> map:('a -> 'b) -> combine:('c -> 'b -> 'c) -> init:'c -> 'a list -> 'c

(** Items executed per domain slot (slot 0 is the submitting domain). *)
val stats : t -> int array

(** Publish {!stats} as [pool_domain_tasks{domain="i"}] gauges plus a
    [pool_domains] gauge.  Call from the submitting domain only. *)
val publish_stats : ?registry:Everest_telemetry.Metrics.registry -> t -> unit

(** The process-wide shared pool used by callers that do not pass one,
    created on first use with {!default_domains}. *)
val default : unit -> t
