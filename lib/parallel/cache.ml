(* Domain-safe string-keyed memo cache with hit/miss accounting.

   The concrete caches built on top of this (the compiler's estimation
   cache, the tuner's selection memo) share one locking and telemetry
   discipline: a single mutex guards the table and the counters, the
   cached computation itself runs outside the lock.  Two domains racing on
   the same missing key may both compute it — the first insert wins and
   the duplicate work is bounded by one task — which keeps the lock out of
   the (potentially expensive) compute path. *)

type 'a t = {
  name : string;
  m : Mutex.t;
  tbl : (string, 'a) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

type stats = { hits : int; misses : int; entries : int }

let create ?(name = "cache") () =
  { name; m = Mutex.create (); tbl = Hashtbl.create 64; hits = 0; misses = 0 }

let name t = t.name

let find t key =
  Mutex.lock t.m;
  let r = Hashtbl.find_opt t.tbl key in
  (match r with
  | Some _ -> t.hits <- t.hits + 1
  | None -> t.misses <- t.misses + 1);
  Mutex.unlock t.m;
  r

let add t key v =
  Mutex.lock t.m;
  if not (Hashtbl.mem t.tbl key) then Hashtbl.add t.tbl key v;
  Mutex.unlock t.m

let find_or_compute t ~key f =
  Mutex.lock t.m;
  match Hashtbl.find_opt t.tbl key with
  | Some v ->
      t.hits <- t.hits + 1;
      Mutex.unlock t.m;
      v
  | None ->
      t.misses <- t.misses + 1;
      Mutex.unlock t.m;
      let v = f () in
      add t key v;
      v

let stats t =
  Mutex.lock t.m;
  let s = { hits = t.hits; misses = t.misses; entries = Hashtbl.length t.tbl } in
  Mutex.unlock t.m;
  s

let hit_rate t =
  let s = stats t in
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

let clear t =
  Mutex.lock t.m;
  Hashtbl.reset t.tbl;
  Mutex.unlock t.m

let reset t =
  Mutex.lock t.m;
  Hashtbl.reset t.tbl;
  t.hits <- 0;
  t.misses <- 0;
  Mutex.unlock t.m

(* Publish the counters as gauges labelled by cache name.  Call from a
   single domain (the metrics registry is not written concurrently). *)
let publish ?registry t =
  let s = stats t in
  let labels = [ ("cache", t.name) ] in
  Everest_telemetry.Probe.gauge_set ?registry ~labels "cache_hits"
    (float_of_int s.hits);
  Everest_telemetry.Probe.gauge_set ?registry ~labels "cache_misses"
    (float_of_int s.misses);
  Everest_telemetry.Probe.gauge_set ?registry ~labels "cache_entries"
    (float_of_int s.entries)
