(** Domain-safe string-keyed memo cache with hit/miss accounting.

    One mutex guards the table and the counters; the cached computation in
    {!find_or_compute} runs outside the lock, so two domains racing on the
    same missing key may both compute it (first insert wins).  Lookups —
    including misses — are counted; [hits / (hits + misses)] is the reuse
    rate of whatever sits behind the cache. *)

type 'a t

type stats = { hits : int; misses : int; entries : int }

(** [create ~name ()] — [name] labels the published telemetry gauges. *)
val create : ?name:string -> unit -> 'a t

val name : 'a t -> string

(** Counted lookup. *)
val find : 'a t -> string -> 'a option

(** Insert unless present (first writer wins). *)
val add : 'a t -> string -> 'a -> unit

(** [find_or_compute t ~key f] returns the cached value or computes,
    stores and returns [f ()].  [f] runs outside the cache lock. *)
val find_or_compute : 'a t -> key:string -> (unit -> 'a) -> 'a

val stats : 'a t -> stats
val hit_rate : 'a t -> float

(** Drop all entries, keep the counters (used for invalidation). *)
val clear : 'a t -> unit

(** Drop entries and zero the counters. *)
val reset : 'a t -> unit

(** Publish [cache_hits] / [cache_misses] / [cache_entries] gauges labelled
    [cache=<name>].  Call from a single domain. *)
val publish : ?registry:Everest_telemetry.Metrics.registry -> 'a t -> unit
