(* Heartbeat monitoring on the Desim clock.

   A monitor beats every [interval] simulated seconds, compares each node's
   liveness (per the fault plan) against its last known state and fires
   [on_event] on every edge — so node death is detected within one beat
   instead of only when a task completes on the dead node.

   The monitor must be [stop]ped when the workload completes: a pending beat
   checks the flag and declines to reschedule, letting the event queue
   drain. *)

open Everest_platform

type event = Died | Recovered

type t = {
  sim : Desim.t;
  faults : Faults.t;
  interval : float;
  nodes : string list;
  on_event : node:string -> event -> unit;
  mutable down : string list;  (* nodes currently believed dead *)
  mutable stopped : bool;
  mutable beats : int;
}

let is_down t node = List.exists (String.equal node) t.down

let check t =
  let now = Desim.now t.sim in
  List.iter
    (fun node ->
      let dead = Faults.node_dead t.faults ~node ~now in
      let marked = is_down t node in
      if dead && not marked then begin
        t.down <- node :: t.down;
        t.on_event ~node Died
      end
      else if (not dead) && marked then begin
        t.down <- List.filter (fun n -> not (String.equal n node)) t.down;
        t.on_event ~node Recovered
      end)
    t.nodes

let rec beat t () =
  if not t.stopped then begin
    t.beats <- t.beats + 1;
    check t;
    Desim.schedule t.sim t.interval (beat t)
  end

let start sim ~faults ~interval ~nodes ~on_event =
  if interval <= 0.0 then invalid_arg "Health.start: interval must be positive";
  let t =
    { sim; faults; interval; nodes; on_event; down = []; stopped = false;
      beats = 0 }
  in
  Desim.schedule sim interval (beat t);
  t

let stop t = t.stopped <- true
let beats t = t.beats
