(** Recovery policies: retry budgets with exponential backoff and
    decorrelated jitter (simulated time), plan-relative task timeouts, and
    speculative re-execution of stragglers.

    {!default} is inert beyond retries — no timeouts, speculation or
    heartbeat — so zero-fault runs under it are byte-identical to the
    pre-resilience executor. *)

type backoff = {
  base_s : float;  (** First delay; 0 disables backoff entirely. *)
  factor : float;  (** Growth per retry. *)
  max_s : float;  (** Cap. *)
}

val default_backoff : backoff

(** Decorrelated jitter: next delay uniform in [base, prev * factor],
    capped at [max_s].  Pass the previous delay (0 initially). *)
val next_delay :
  backoff -> rng:Everest_parallel.Rng.t -> prev:float -> float

type timeout = {
  timeout_factor : float;
      (** Deadline as a multiple of the planned-node execution estimate —
          the plan is the SLA, whatever node the attempt landed on. *)
  timeout_min_s : float;
}

type speculation = {
  spec_factor : float;  (** Backup launch point, × the planned estimate. *)
  spec_min_s : float;
  max_speculative : int;  (** Backup launches allowed per run. *)
}

type t = {
  max_retries : int;  (** Re-launches per task, all failure kinds combined. *)
  backoff : backoff;
  timeout : timeout option;
  speculation : speculation option;
  heartbeat_s : float option;
      (** Health-monitor interval: node death is detected within this bound
          instead of only at task completion.  [None] disables it. *)
}

val default : t

(** Everything on: timeouts, speculation and a heartbeat — the policy the
    chaos CLI and bench e14 run under. *)
val chaos : t

(** @raise Invalid_argument on a negative retry budget. *)
val make :
  ?max_retries:int ->
  ?backoff:backoff ->
  ?timeout:timeout ->
  ?speculation:speculation ->
  ?heartbeat_s:float ->
  unit ->
  t

val pp : Format.formatter -> t -> unit
