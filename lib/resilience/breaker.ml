(* Three-state circuit breaker (closed / open / half-open) over an external
   clock.

   Closed counts consecutive failures; at the threshold it opens and rejects
   every call.  After [cooldown_s] the next state query flips it to
   half-open, where a bounded number of probe calls is let through: one
   success closes the breaker, one failure re-opens it and restarts the
   cooldown.  Time is always passed in (~now) so the same breaker works on
   wall or simulated clocks. *)

type state = Closed | Open | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type config = {
  failure_threshold : int;  (* consecutive failures that open the breaker *)
  cooldown_s : float;  (* open -> half-open delay *)
  half_open_probes : int;  (* concurrent probes allowed while half-open *)
}

let default_config =
  { failure_threshold = 3; cooldown_s = 0.05; half_open_probes = 1 }

type t = {
  config : config;
  mutable cur : state;
  mutable consecutive_failures : int;
  mutable opened_at : float;
  mutable probes : int;  (* probes admitted in the current half-open phase *)
  mutable opens : int;  (* times the breaker has opened, ever *)
  mutable transitions : (float * state) list;  (* newest first *)
}

let create ?(config = default_config) () =
  if config.failure_threshold <= 0 then
    invalid_arg "Breaker.create: failure_threshold must be positive";
  if config.half_open_probes <= 0 then
    invalid_arg "Breaker.create: half_open_probes must be positive";
  { config; cur = Closed; consecutive_failures = 0; opened_at = neg_infinity;
    probes = 0; opens = 0; transitions = [] }

let transition b ~now s =
  if b.cur <> s then begin
    b.cur <- s;
    b.transitions <- (now, s) :: b.transitions
  end

(* Lazily promote open -> half-open once the cooldown has elapsed.

   Clocks are not guaranteed monotonic here: a breaker restored from a
   checkpoint, or shared across simulations, can observe [now] earlier
   than [opened_at].  Without the clamp the Open state would demand
   [opened_at + cooldown_s] of a clock that may never reach it (wedging
   the breaker open); re-basing the cooldown on the earlier clock keeps
   the contract "open for at most cooldown_s of observed time". *)
let state b ~now =
  (match b.cur with
  | Open when now < b.opened_at -> b.opened_at <- now
  | _ -> ());
  (match b.cur with
  | Open when now >= b.opened_at +. b.config.cooldown_s ->
      b.probes <- 0;
      transition b ~now Half_open
  | _ -> ());
  b.cur

let allow b ~now =
  match state b ~now with
  | Closed -> true
  | Open -> false
  | Half_open ->
      if b.probes < b.config.half_open_probes then begin
        b.probes <- b.probes + 1;
        true
      end
      else false

let trip b ~now =
  b.opened_at <- now;
  b.opens <- b.opens + 1;
  b.consecutive_failures <- 0;
  transition b ~now Open

let record b ~now ~ok =
  match state b ~now with
  | Closed ->
      if ok then b.consecutive_failures <- 0
      else begin
        b.consecutive_failures <- b.consecutive_failures + 1;
        if b.consecutive_failures >= b.config.failure_threshold then
          trip b ~now
      end
  | Half_open -> if ok then transition b ~now Closed else trip b ~now
  | Open -> ()  (* late result of a call admitted before the trip *)

let transitions b = List.rev b.transitions
let opens b = b.opens

(* Checkpoint/restore: the full mutable core, transitions oldest first. *)
type persisted = {
  p_state : state;
  p_failures : int;
  p_opened_at : float;
  p_probes : int;
  p_opens : int;
  p_transitions : (float * state) list;  (* oldest first *)
}

let export b =
  {
    p_state = b.cur;
    p_failures = b.consecutive_failures;
    p_opened_at = b.opened_at;
    p_probes = b.probes;
    p_opens = b.opens;
    p_transitions = List.rev b.transitions;
  }

let import b p =
  b.cur <- p.p_state;
  b.consecutive_failures <- p.p_failures;
  b.opened_at <- p.p_opened_at;
  b.probes <- p.p_probes;
  b.opens <- p.p_opens;
  b.transitions <- List.rev p.p_transitions

let pp_state ppf s = Fmt.string ppf (state_name s)

let pp ppf b =
  Fmt.pf ppf "breaker[%a failures=%d opens=%d]" pp_state b.cur
    b.consecutive_failures b.opens
