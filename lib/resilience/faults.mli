(** Deterministic fault plans over the simulated clock.

    A plan is pure data — crash/restart windows, transient-failure
    probabilities, link degradation factors — and every random verdict is
    derived by hashing the query key against the plan seed, never by
    consuming a shared stream.  The same (seed, task, attempt) always gets
    the same verdict, whatever order the executor asks in, which is what
    makes chaos runs bit-reproducible. *)

type window = {
  w_node : string;
  w_down : float;  (** The node dies at this simulated time. *)
  w_up : float option;  (** Restart time; [None] = permanent death. *)
}

type t = {
  seed : int;
  windows : window list;
  transient_prob : float;  (** Per-attempt transient failure probability. *)
  fpga_transient_prob : float;  (** Extra transient probability on FPGA runs. *)
  link_factors : (string * string * float) list;
      (** Symmetric per-pair transfer-time multipliers (>= 1). *)
}

(** The empty plan: nothing ever fails. *)
val none : t

val is_none : t -> bool

(** @raise Invalid_argument when a probability is outside [0, 1). *)
val plan :
  ?seed:int ->
  ?windows:window list ->
  ?transient_prob:float ->
  ?fpga_transient_prob:float ->
  ?link_factors:(string * string * float) list ->
  unit ->
  t

(** Compatibility shim for the historical [(node, time)] failure lists:
    each pair becomes a permanent-death window. *)
val of_failures : (string * float) list -> t

(** Is [node] inside a down window at [now]? *)
val node_dead : t -> node:string -> now:float -> bool

(** Did [node] crash at any point in ([t0], [t1]]?  Outputs produced before
    a crash are lost even if the node restarted. *)
val down_between : t -> node:string -> t0:float -> t1:float -> bool

(** Earliest restart after [now] when the node is currently down. *)
val next_up : t -> node:string -> now:float -> float option

(** Transfer-time multiplier for the (src, dst) pair, >= 1. *)
val link_degradation : t -> src:string -> dst:string -> float

(** Deterministic transient-failure verdict for one execution attempt. *)
val transient : t -> task:int -> attempt:int -> bool

(** Deterministic FPGA-transient verdict for one execution attempt. *)
val fpga_transient : t -> task:int -> attempt:int -> bool

(** Derive a plan from a seed: each node crashes with probability
    [fault_rate] at a uniform time in [0, horizon), staying down for an
    exponential-ish [2 * U * mean_downtime] (permanently when
    [mean_downtime] is 0). *)
val random_plan :
  ?seed:int ->
  fault_rate:float ->
  ?mean_downtime:float ->
  ?transient_prob:float ->
  ?fpga_transient_prob:float ->
  nodes:string list ->
  horizon:float ->
  unit ->
  t

val pp : Format.formatter -> t -> unit
