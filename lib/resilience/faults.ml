(* Deterministic fault plans over the simulated clock.

   A plan is pure data: crash/restart windows per node, per-attempt
   transient-failure probabilities and link degradation factors.  Every
   random decision is derived by hashing (seed, task, attempt, salt), never
   by consuming a shared stream, so the verdict for a given attempt does not
   depend on the order in which the executor asks — the property that makes
   chaos runs bit-reproducible regardless of event interleaving. *)

module Rng = Everest_parallel.Rng

type window = {
  w_node : string;
  w_down : float;  (* node dies at this simulated time *)
  w_up : float option;  (* restarts here; [None] = permanent death *)
}

type t = {
  seed : int;
  windows : window list;
  transient_prob : float;
  fpga_transient_prob : float;
  link_factors : (string * string * float) list;
}

let none =
  { seed = 0; windows = []; transient_prob = 0.0; fpga_transient_prob = 0.0;
    link_factors = [] }

let is_none t =
  t.windows = [] && t.transient_prob = 0.0 && t.fpga_transient_prob = 0.0
  && t.link_factors = []

let plan ?(seed = 1) ?(windows = []) ?(transient_prob = 0.0)
    ?(fpga_transient_prob = 0.0) ?(link_factors = []) () =
  if transient_prob < 0.0 || transient_prob >= 1.0 then
    invalid_arg "Faults.plan: transient_prob must be in [0, 1)";
  if fpga_transient_prob < 0.0 || fpga_transient_prob >= 1.0 then
    invalid_arg "Faults.plan: fpga_transient_prob must be in [0, 1)";
  { seed; windows; transient_prob; fpga_transient_prob; link_factors }

(* Compatibility shim for the historical [Executor.execute ~failures] list:
   each (node, time) pair becomes a permanent-death window. *)
let of_failures failures =
  { none with
    windows =
      List.map (fun (n, t) -> { w_node = n; w_down = t; w_up = None }) failures
  }

let node_dead t ~node ~now =
  List.exists
    (fun w ->
      String.equal w.w_node node
      && now >= w.w_down
      && match w.w_up with None -> true | Some up -> now < up)
    t.windows

(* Did [node] go down at any point in ([t0], [t1]]?  Used by lineage: an
   output produced before a crash is lost even if the node restarted. *)
let down_between t ~node ~t0 ~t1 =
  List.exists
    (fun w ->
      String.equal w.w_node node && w.w_down > t0 && w.w_down <= t1)
    t.windows

(* Earliest restart of [node] after [now], if it is currently down. *)
let next_up t ~node ~now =
  List.fold_left
    (fun acc w ->
      match w.w_up with
      | Some up
        when String.equal w.w_node node && now >= w.w_down && now < up -> (
          match acc with
          | Some best when best <= up -> acc
          | _ -> Some up)
      | _ -> acc)
    None t.windows

let link_degradation t ~src ~dst =
  let hit (a, b, _) =
    (String.equal a src && String.equal b dst)
    || (String.equal a dst && String.equal b src)
  in
  match List.find_opt hit t.link_factors with
  | Some (_, _, f) -> Float.max 1.0 f
  | None -> 1.0

(* ---- deterministic draws -------------------------------------------------------- *)

(* One uniform draw in [0,1) keyed by (seed, a, b, salt).  Park–Miller with a
   mixed seed; a single [next] decorrelates nearby keys well enough for fault
   injection. *)
let hash_draw t ~a ~b ~salt =
  let key =
    (t.seed * 1_000_003) lxor (a * 8_191) lxor (b * 131_071) lxor (salt * 29)
  in
  let r = Rng.create key in
  ignore (Rng.next r);
  Rng.float r

let transient t ~task ~attempt =
  t.transient_prob > 0.0
  && hash_draw t ~a:task ~b:attempt ~salt:1 < t.transient_prob

let fpga_transient t ~task ~attempt =
  t.fpga_transient_prob > 0.0
  && hash_draw t ~a:task ~b:attempt ~salt:2 < t.fpga_transient_prob

(* ---- random plan generation (the chaos entry point) ----------------------------- *)

let random_plan ?(seed = 7) ~fault_rate ?(mean_downtime = 0.0)
    ?(transient_prob = 0.0) ?(fpga_transient_prob = 0.0) ~nodes ~horizon () =
  if fault_rate < 0.0 || fault_rate > 1.0 then
    invalid_arg "Faults.random_plan: fault_rate must be in [0, 1]";
  let rng = Rng.create seed in
  let windows =
    List.filter_map
      (fun node ->
        let hit = Rng.float rng < fault_rate in
        let at = Rng.float rng *. horizon in
        let dt = Rng.float rng *. 2.0 *. mean_downtime in
        if hit then
          Some
            { w_node = node; w_down = at;
              w_up = (if mean_downtime > 0.0 then Some (at +. dt) else None) }
        else None)
      nodes
  in
  { seed; windows; transient_prob; fpga_transient_prob; link_factors = [] }

let pp ppf t =
  Fmt.pf ppf "faults[seed=%d transient=%g fpga=%g windows=%a]" t.seed
    t.transient_prob t.fpga_transient_prob
    Fmt.(
      list ~sep:(any ", ") (fun ppf w ->
          pf ppf "%s@%g%a" w.w_node w.w_down
            (option (fun ppf up -> pf ppf "..%g" up))
            w.w_up))
    t.windows
