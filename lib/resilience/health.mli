(** Heartbeat monitoring on the Desim clock: node death (per a fault plan)
    is detected within one beat interval instead of only at task
    completion.  [stop] the monitor when the workload completes so the
    event queue can drain. *)

open Everest_platform

type event = Died | Recovered

type t

(** Start beating every [interval] simulated seconds; [on_event] fires on
    every liveness edge of a monitored node.
    @raise Invalid_argument on a non-positive interval. *)
val start :
  Desim.t ->
  faults:Faults.t ->
  interval:float ->
  nodes:string list ->
  on_event:(node:string -> event -> unit) ->
  t

(** Stop rescheduling; the pending beat becomes a no-op. *)
val stop : t -> unit

(** Is the node currently believed dead? *)
val is_down : t -> string -> bool

(** Beats executed so far. *)
val beats : t -> int
