(** Output lineage: which nodes hold a copy of each task's output and since
    when.  A copy is valid only if its node has not crashed since the copy
    was made (a restart wipes memory); when no valid copy survives the
    output is lost and the producer must be recomputed. *)

type t

val create : Faults.t -> t

(** Record the producing node; becomes the primary copy. *)
val record_primary : t -> task:int -> node:string -> now:float -> unit

(** Record a node that pulled (and now holds) a replica. *)
val record_replica : t -> task:int -> node:string -> now:float -> unit

(** Nodes with a valid copy at [now], primary first. *)
val locations : t -> task:int -> now:float -> string list

(** Node to pull from: the primary while valid (the fault-free fast path),
    else a replica on [prefer], else any survivor, else [None] (lost). *)
val choose : t -> task:int -> prefer:string -> now:float -> string option

(** Produced at least once but no valid copy survives. *)
val lost : t -> task:int -> now:float -> bool

(** Copies tracked across all tasks — the memory {!prune} bounds. *)
val total_copies : t -> int

(** Bound lineage memory at checkpoint points: for tasks that still have
    a valid copy, drop invalidated copies and cap replicas at
    [keep_replicas] (default 1) beyond the primary.  Tasks with no valid
    copy are untouched so {!lost} stays accurate.  Returns the number of
    copies dropped. *)
val prune : ?keep_replicas:int -> t -> now:float -> int

(** Checkpoint/restore: copies per task (node, since), primary first,
    sorted by task id. *)
val export : t -> (int * (string * float) list) list

val import : t -> (int * (string * float) list) list -> unit
