(** Three-state circuit breaker (closed / open / half-open) over an
    external clock — pass [~now] everywhere, so the same breaker works on
    wall or simulated time.

    Closed counts consecutive failures and opens at the threshold; open
    rejects everything until [cooldown_s] has elapsed, then half-open
    admits up to [half_open_probes] probe calls: one success closes the
    breaker, one failure re-opens it. *)

type state = Closed | Open | Half_open

val state_name : state -> string

type config = {
  failure_threshold : int;
  cooldown_s : float;
  half_open_probes : int;
}

val default_config : config

type t

(** @raise Invalid_argument on non-positive threshold or probe count. *)
val create : ?config:config -> unit -> t

(** Current state, lazily promoting open to half-open after the cooldown. *)
val state : t -> now:float -> state

(** May a call proceed?  Half-open admits a bounded number of probes. *)
val allow : t -> now:float -> bool

(** Feed back one call outcome. *)
val record : t -> now:float -> ok:bool -> unit

(** State transitions (time, new state), oldest first. *)
val transitions : t -> (float * state) list

(** Times the breaker has opened. *)
val opens : t -> int

(** {2 Checkpoint / restore} *)

type persisted = {
  p_state : state;
  p_failures : int;
  p_opened_at : float;
  p_probes : int;
  p_opens : int;
  p_transitions : (float * state) list;  (** oldest first *)
}

val export : t -> persisted
val import : t -> persisted -> unit

val pp_state : Format.formatter -> state -> unit
val pp : Format.formatter -> t -> unit
