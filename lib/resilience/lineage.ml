(* Output lineage: which nodes hold a copy of each task's output, and since
   when.

   The executor records the producing node at completion and every pull
   destination at arrival.  A copy is only valid if its node has not crashed
   since the copy was made (a restart wipes memory), so [choose] filters
   replicas through the fault plan.  When no valid copy survives, the output
   is lost and the producer must be recomputed. *)

type copy = { c_node : string; c_since : float }

type t = {
  faults : Faults.t;
  copies : (int, copy list) Hashtbl.t;  (* task -> copies, primary first *)
}

let create faults = { faults; copies = Hashtbl.create 64 }

let copies t ~task = Option.value ~default:[] (Hashtbl.find_opt t.copies task)

(* Record the producing node: becomes the primary (head) copy. *)
let record_primary t ~task ~node ~now =
  let rest =
    List.filter (fun c -> not (String.equal c.c_node node)) (copies t ~task)
  in
  Hashtbl.replace t.copies task ({ c_node = node; c_since = now } :: rest)

(* Record a pulled replica; the primary stays at the head. *)
let record_replica t ~task ~node ~now =
  let cs = copies t ~task in
  if not (List.exists (fun c -> String.equal c.c_node node) cs) then
    Hashtbl.replace t.copies task (cs @ [ { c_node = node; c_since = now } ])

let valid t ~now c =
  (not (Faults.node_dead t.faults ~node:c.c_node ~now))
  && not (Faults.down_between t.faults ~node:c.c_node ~t0:c.c_since ~t1:now)

let locations t ~task ~now =
  List.filter_map
    (fun c -> if valid t ~now c then Some c.c_node else None)
    (copies t ~task)

(* Node to pull [task]'s output from.  The primary wins while it is valid —
   the fault-free fast path, identical to pre-lineage behaviour (always
   read from the producer).  Only when the primary is gone do replicas come
   into play: one on [prefer] first (free local read), else any survivor. *)
let choose t ~task ~prefer ~now =
  match copies t ~task with
  | [] -> None
  | primary :: _ when valid t ~now primary -> Some primary.c_node
  | cs -> (
      let live = List.filter (valid t ~now) cs in
      match List.find_opt (fun c -> String.equal c.c_node prefer) live with
      | Some c -> Some c.c_node
      | None -> ( match live with [] -> None | c :: _ -> Some c.c_node))

(* Is the output lost (produced at least once, no valid copy anywhere)? *)
let lost t ~task ~now =
  copies t ~task <> [] && locations t ~task ~now = []

(* Copies tracked across all tasks — the memory the pruner bounds. *)
let total_copies t =
  Hashtbl.fold (fun _ cs acc -> acc + List.length cs) t.copies 0

(* Bound lineage memory at checkpoint/snapshot points.

   For every task that still has at least one valid copy, drop the
   invalidated copies (their nodes crashed — they can never satisfy a
   pull again) and cap surviving replicas at [keep_replicas] beyond the
   first.  Tasks with no valid copy are left untouched so [lost] keeps
   reporting them as lost rather than never-produced.  Returns the
   number of copies dropped. *)
let prune ?(keep_replicas = 1) t ~now =
  let keep_n = 1 + max 0 keep_replicas in
  let dropped = ref 0 in
  let tasks = Hashtbl.fold (fun task _ acc -> task :: acc) t.copies [] in
  List.iter
    (fun task ->
      let cs = copies t ~task in
      let live = List.filter (valid t ~now) cs in
      if live <> [] then begin
        let kept = List.filteri (fun i _ -> i < keep_n) live in
        dropped := !dropped + List.length cs - List.length kept;
        Hashtbl.replace t.copies task kept
      end)
    tasks;
  !dropped

(* Checkpoint/restore: copies per task, sorted by task id for
   byte-deterministic serialization. *)
let export t =
  Hashtbl.fold
    (fun task cs acc ->
      (task, List.map (fun c -> (c.c_node, c.c_since)) cs) :: acc)
    t.copies []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let import t entries =
  Hashtbl.reset t.copies;
  List.iter
    (fun (task, cs) ->
      Hashtbl.replace t.copies task
        (List.map (fun (c_node, c_since) -> { c_node; c_since }) cs))
    entries
