(* Recovery policies: retry budgets with exponential backoff + decorrelated
   jitter (in simulated time), plan-relative task timeouts, and speculative
   re-execution of stragglers.

   The default policy is deliberately inert beyond retries: no timeouts, no
   speculation, no heartbeat — so a zero-fault run under the default policy
   schedules exactly the same events as the pre-resilience executor. *)

module Rng = Everest_parallel.Rng

type backoff = {
  base_s : float;  (* first delay *)
  factor : float;  (* growth per retry *)
  max_s : float;  (* cap *)
}

let default_backoff = { base_s = 1e-4; factor = 2.0; max_s = 0.05 }

(* Decorrelated jitter (the AWS formula): the next delay is uniform in
   [base, prev * factor], capped.  Threading [prev] keeps consecutive delays
   from synchronizing across tasks while staying fully deterministic for a
   seeded rng. *)
let next_delay b ~rng ~prev =
  if b.base_s <= 0.0 then 0.0
  else begin
    let prev = if prev <= 0.0 then b.base_s else prev in
    let hi = Float.max b.base_s (prev *. b.factor) in
    let d = b.base_s +. (Rng.float rng *. (hi -. b.base_s)) in
    Float.min b.max_s d
  end

type timeout = {
  timeout_factor : float;  (* of the planned-node execution estimate *)
  timeout_min_s : float;
}

type speculation = {
  spec_factor : float;  (* of the planned-node execution estimate *)
  spec_min_s : float;
  max_speculative : int;  (* backup launches allowed across the whole run *)
}

type t = {
  max_retries : int;  (* re-launches per task, all failure kinds combined *)
  backoff : backoff;
  timeout : timeout option;
  speculation : speculation option;
  heartbeat_s : float option;  (* health-monitor interval; None = disabled *)
}

let default =
  { max_retries = 8; backoff = default_backoff; timeout = None;
    speculation = None; heartbeat_s = None }

let chaos =
  { max_retries = 8;
    backoff = default_backoff;
    timeout = Some { timeout_factor = 8.0; timeout_min_s = 1e-3 };
    speculation = Some { spec_factor = 3.0; spec_min_s = 1e-3; max_speculative = 16 };
    heartbeat_s = Some 0.005 }

let make ?(max_retries = default.max_retries) ?(backoff = default.backoff)
    ?timeout ?speculation ?heartbeat_s () =
  if max_retries < 0 then invalid_arg "Policy.make: max_retries < 0";
  { max_retries; backoff; timeout; speculation; heartbeat_s }

let pp ppf p =
  Fmt.pf ppf "policy[retries=%d backoff=%g*%g<=%g timeout=%a spec=%a hb=%a]"
    p.max_retries p.backoff.base_s p.backoff.factor p.backoff.max_s
    Fmt.(option ~none:(any "off") (fun ppf t -> pf ppf "%gx" t.timeout_factor))
    p.timeout
    Fmt.(option ~none:(any "off") (fun ppf s -> pf ppf "%gx" s.spec_factor))
    p.speculation
    Fmt.(option ~none:(any "off") float)
    p.heartbeat_s
