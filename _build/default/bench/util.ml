(* Table printing and Bechamel wrappers shared by the experiments. *)

let header title =
  Printf.printf "\n==================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==================================================================\n"

let row fmt = Printf.printf fmt

(* Render a simple aligned table. *)
let table ~cols rows =
  let widths =
    List.mapi
      (fun i c ->
        List.fold_left
          (fun w r -> max w (String.length (List.nth r i)))
          (String.length c) rows)
      cols
  in
  let print_row cells =
    List.iteri
      (fun i c -> Printf.printf "%-*s  " (List.nth widths i) c)
      cells;
    print_newline ()
  in
  print_row cols;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let f2 x = Printf.sprintf "%.2f" x
let f1 x = Printf.sprintf "%.1f" x
let e2 x = Printf.sprintf "%.2e" x
let si x =
  if x >= 1e9 then Printf.sprintf "%.2fG" (x /. 1e9)
  else if x >= 1e6 then Printf.sprintf "%.2fM" (x /. 1e6)
  else if x >= 1e3 then Printf.sprintf "%.2fk" (x /. 1e3)
  else Printf.sprintf "%.1f" x

let time_str s =
  if s < 1e-6 then Printf.sprintf "%.1f ns" (s *. 1e9)
  else if s < 1e-3 then Printf.sprintf "%.1f us" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.2f ms" (s *. 1e3)
  else Printf.sprintf "%.2f s" s

(* ---- Bechamel ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

(* Run the tests and return (name, ns/run) pairs. *)
let run_benchmarks ?(quota = 0.5) (tests : Test.t list) =
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  List.concat_map
    (fun test ->
      let results = Benchmark.all cfg instances test in
      List.filter_map
        (fun (name, raw) ->
          let ols =
            Analyze.OLS.ols ~r_square:false ~responder:"monotonic-clock"
              ~predictors:[| "run" |] raw.Benchmark.lr
          in
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> Some (name, t)
          | _ -> None)
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) results []))
    tests
  |> List.sort compare

let print_benchmarks ?(quota = 0.5) title tests =
  header title;
  let rows =
    List.map
      (fun (name, ns) ->
        [ name; Printf.sprintf "%.1f" ns; time_str (ns /. 1e9) ])
      (run_benchmarks ~quota tests)
  in
  table ~cols:[ "benchmark"; "ns/run"; "per-run" ] rows
