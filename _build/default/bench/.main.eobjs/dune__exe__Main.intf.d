bench/main.mli:
