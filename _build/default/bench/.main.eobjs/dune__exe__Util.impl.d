bench/util.ml: Analyze Bechamel Benchmark Hashtbl Instance List Printf String Test Time Toolkit
