examples/energy_forecast.ml: Everest Everest_dsl Everest_energy Format List
