examples/secure_pipeline.mli:
