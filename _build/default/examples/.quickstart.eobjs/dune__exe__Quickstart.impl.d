examples/quickstart.ml: Everest Everest_compiler Everest_dsl Everest_ir Format List
