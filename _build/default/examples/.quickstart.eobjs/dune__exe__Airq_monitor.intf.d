examples/airq_monitor.mli:
