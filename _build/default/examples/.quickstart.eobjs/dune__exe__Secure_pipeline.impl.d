examples/secure_pipeline.ml: Bytes Char Everest_compiler Everest_dsl Everest_ir Everest_runtime Everest_security Format List Option
