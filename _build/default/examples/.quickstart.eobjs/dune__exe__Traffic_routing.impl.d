examples/traffic_routing.ml: Everest_traffic Format List
