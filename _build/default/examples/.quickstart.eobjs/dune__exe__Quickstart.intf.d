examples/quickstart.mli:
