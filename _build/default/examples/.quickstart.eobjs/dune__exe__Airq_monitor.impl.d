examples/airq_monitor.ml: Array Everest_airq Everest_runtime Format List
