examples/energy_forecast.mli:
