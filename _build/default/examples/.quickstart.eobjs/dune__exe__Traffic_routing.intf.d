examples/traffic_routing.mli:
