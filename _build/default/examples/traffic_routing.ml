(* Use case C (§VI-C): traffic modeling and probabilistic time-dependent
   routing for a smart city.
   Run with:  dune exec examples/traffic_routing.exe *)

module RN = Everest_traffic.Roadnet
module RT = Everest_traffic.Routing
module OD = Everest_traffic.Od
module TS = Everest_traffic.Simulator
module FC = Everest_traffic.Fcd
module PR = Everest_traffic.Profiles
module PT = Everest_traffic.Ptdr

let () =
  Format.printf "== EVEREST use case C: intelligent transportation ==@.";
  let city = RN.grid_city ~rows:8 ~cols:8 () in
  let od = OD.gravity ~n_zones:64 ~total_trips_per_hour:60_000.0 ~cols:8 () in
  Format.printf "city: %d intersections, %d directed links@." city.RN.n_nodes
    (RN.n_links city);

  (* 24h mesoscopic simulation *)
  let st = TS.run city od ~periods:24 in
  Format.printf "@.network speed by hour:@.  ";
  for h = 0 to 23 do
    if h mod 3 = 0 then
      Format.printf "%02dh %4.1f m/s (%.0f%% congested)  " h
        (TS.mean_network_speed st ~period:h)
        (100.0 *. TS.congested_fraction st ~period:h)
  done;
  Format.printf "@.";

  (* FCD -> learned speed profiles *)
  let pings = FC.generate st ~n_vehicles:2000 in
  Format.printf "@.floating car data: %d pings (%.1f MB/day) from 2000 vehicles@."
    (FC.count pings)
    (float_of_int (FC.total_bytes pings) /. 1e6);
  let prof = PR.learn city ~periods:24 pings in
  Format.printf "profiles: %.0f%% link-hour coverage, RMSE %.2f m/s vs simulator@."
    (100.0 *. PR.coverage prof)
    (PR.prediction_rmse prof st);

  (* probabilistic time-dependent routing *)
  let depart = 8.0 *. 3600.0 in
  let alts = PT.alternatives ~k:3 city prof ~src:0 ~dst:63 ~period:8 in
  Format.printf "@.PTDR (corner to corner at 08:00, %d alternatives):@."
    (List.length alts);
  List.iteri
    (fun i r ->
      let d = PT.monte_carlo city prof r ~depart ~n_samples:500 in
      Format.printf "  route %d: %2d links  mean %5.1f min  p50 %5.1f  p90 %5.1f  p99 %5.1f@."
        i (List.length r.RT.links) (d.PT.mean /. 60.0) (d.PT.p50 /. 60.0)
        (d.PT.p90 /. 60.0) (d.PT.p99 /. 60.0))
    alts;
  (match PT.reliable_route city prof alts ~depart with
  | Some (r, q) ->
      Format.printf "risk-averse choice: %d links, p90 %.1f min@."
        (List.length r.RT.links) (q /. 60.0)
  | None -> ());

  (* Monte Carlo convergence: the kernel EVEREST accelerates *)
  (match alts with
  | r :: _ ->
      Format.printf "@.Monte Carlo convergence (95%% CI of mean, minutes):@.";
      List.iter
        (fun (n, mean, ci) ->
          Format.printf "  %6d samples: %.2f +/- %.3f@." n (mean /. 60.0)
            (ci /. 60.0))
        (PT.convergence city prof r ~depart ~sample_counts:[ 10; 100; 1000; 10000 ])
  | [] -> ())
