(* Security walkthrough: the data-centric protection story of §III-A/B.

   - classify data, let the static IFT audit catch a leak,
   - fix it with encryption at the boundary (sealed with real AES-CTR+HMAC),
   - see the compiler force DIFT-instrumented hardware variants,
   - watch the runtime protection layer quarantine a poisoned stream.

   Run with:  dune exec examples/secure_pipeline.exe *)

module Ir = Everest_ir
module Sec = Everest_security
module TE = Everest_dsl.Tensor_expr
module Dsl = Everest_dsl

let () = Ir.Registry.register_all ()

let () =
  Format.printf "== EVEREST security walkthrough ==@.";

  (* 1. a leaky kernel: secret data flows to a public sink *)
  let ctx = Ir.Ir.ctx () in
  let x = Ir.Ir.fresh_value ctx (Ir.Types.tensor Ir.Types.F64 [ 16 ]) in
  let key = Ir.Ir.fresh_value ctx Ir.Types.f64 in
  let cls = Ir.Dialect_sec.classify ctx x Ir.Dialect_sec.Secret in
  let leak_sink = Ir.Dialect_df.sink ctx "telemetry" (Ir.Ir.result cls) in
  let leaky =
    Ir.Ir.func "leaky" [ x; key ] []
      [ cls; leak_sink; Ir.Dialect_func.return ctx [] ]
  in
  Format.printf "@.static IFT audit of the leaky kernel:@.";
  List.iter
    (fun v -> Format.printf "  VIOLATION: %a@." Sec.Ift.pp_violation v)
    (Sec.Ift.analyze_func leaky);

  (* 2. the fix: encrypt before the boundary *)
  let ctx = Ir.Ir.ctx () in
  let x = Ir.Ir.fresh_value ctx (Ir.Types.tensor Ir.Types.F64 [ 16 ]) in
  let key = Ir.Ir.fresh_value ctx Ir.Types.f64 in
  let cls = Ir.Dialect_sec.classify ctx x Ir.Dialect_sec.Secret in
  let enc = Ir.Dialect_sec.encrypt ctx (Ir.Ir.result cls) key in
  let sink = Ir.Dialect_df.sink ctx "telemetry" (Ir.Ir.result enc) in
  let fixed =
    Ir.Ir.func "fixed" [ x; key ] []
      [ cls; enc; sink; Ir.Dialect_func.return ctx [] ]
  in
  Format.printf "after adding sec.encrypt: %d violations@."
    (List.length (Sec.Ift.analyze_func fixed));

  (* 3. the encryption itself, with the real primitives *)
  let keys = Sec.Cipher.derive_keys "everest-demo-master" in
  let payload = Bytes.of_string "turbine 7: bearing temperature anomaly" in
  let sealed = Sec.Cipher.seal keys payload in
  Format.printf "@.sealed payload: nonce=%s ct=%s tag=%s...@."
    (Sec.Aes.to_hex sealed.Sec.Cipher.nonce)
    (Sec.Aes.to_hex (Bytes.sub sealed.Sec.Cipher.ct 0 8))
    (Sec.Aes.to_hex (Bytes.sub sealed.Sec.Cipher.tag 0 8));
  (match Sec.Cipher.open_ keys sealed with
  | Ok pt -> Format.printf "authentic decrypt: %S@." (Bytes.to_string pt)
  | Error _ -> assert false);
  let tampered = { sealed with Sec.Cipher.ct = Bytes.map (fun c -> Char.chr (Char.code c lxor 1)) sealed.Sec.Cipher.ct } in
  (match Sec.Cipher.open_ keys tampered with
  | Error Sec.Cipher.Bad_tag -> Format.printf "tampered ciphertext: rejected (bad tag)@."
  | Ok _ -> assert false);

  (* 4. confidential kernels get DIFT-instrumented hardware variants *)
  let e = TE.matmul (TE.input "a" [ 64; 64 ]) (TE.input "b" [ 64; 64 ]) in
  let vs =
    Everest_compiler.Variants.generate
      ~annots:[ Dsl.Annot.Security Ir.Dialect_sec.Secret ]
      e
  in
  Format.printf "@.variants of the secret matmul kernel:@.";
  List.iter
    (fun v -> Format.printf "  %a@." Everest_compiler.Variants.pp v)
    (Everest_compiler.Variants.pareto vs);

  (* 5. runtime protection: poisoned sensor stream gets quarantined *)
  let layer = Everest_runtime.Protection.create () in
  let s = Everest_runtime.Protection.register layer "scada-stream" in
  for _ = 1 to 300 do
    Everest_runtime.Protection.train s ~values:[ 55.0; 61.0; 58.5 ] ~bytes:512
      ~latency_s:0.004
  done;
  Everest_runtime.Protection.finalize s;
  let show label result =
    Format.printf "  %-18s -> %s@." label
      (match result with
      | Everest_runtime.Protection.Accepted -> "accepted"
      | Everest_runtime.Protection.Rejected r -> "rejected (" ^ r ^ ")")
  in
  Format.printf "@.protection layer on the SCADA stream:@.";
  show "clean batch"
    (Everest_runtime.Protection.admit layer s ~values:[ 57.0; 60.2 ] ~bytes:520
       ~latency_s:0.004);
  show "poisoned batch"
    (Everest_runtime.Protection.admit layer s ~values:[ 4.2e7 ] ~bytes:512
       ~latency_s:0.004);
  Format.printf "  alerts=%d force_encryption=%b hardened=%s@."
    layer.Everest_runtime.Protection.total_alerts
    s.Everest_runtime.Protection.force_encryption
    (Option.value ~default:"-" s.Everest_runtime.Protection.hardened_variant);
  let overhead =
    Everest_runtime.Protection.transfer_overhead_s s ~bytes:(1 lsl 20)
      ~accelerated:true ~clock_hz:2.5e8
  in
  Format.printf "  forced-encryption cost on a 1 MiB transfer: %.2f ms (accelerated)@."
    (overhead *. 1e3)
