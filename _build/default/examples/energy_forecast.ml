(* Use case A (§VI-A): day-ahead wind-power forecasting from weather
   ensembles.  Shows the quality/compute trade-off of ensemble resolution
   and the accelerated workflow on the simulated platform.
   Run with:  dune exec examples/energy_forecast.exe *)

module W = Everest_energy.Weather
module EF = Everest_energy.Forecast
module Sdk = Everest.Sdk
module Dsl = Everest_dsl
module TE = Everest_dsl.Tensor_expr

let () =
  Format.printf "== EVEREST use case A: renewable-energy prediction ==@.";
  let p = { W.default_params with W.days = 30; seed = 12 } in

  (* forecast skill versus ensemble resolution *)
  Format.printf "@.resolution sweep (day-ahead horizon):@.";
  Format.printf "  %8s %12s %14s %12s@." "res(km)" "MAE(kW)" "imbalance(EUR)"
    "Gflop/member";
  List.iter
    (fun (r, mae, imb, flops) ->
      Format.printf "  %8.1f %12.1f %14.1f %12.2f@." r mae imb (flops /. 1e9))
    (EF.resolution_sweep ~resolutions:[ 25.0; 12.5; 5.0; 2.5 ] p);

  (* against the standard baselines *)
  let cfg = { EF.default_config with EF.resolution_km = 5.0; train_days = 22 } in
  let model, persistence, climatology = EF.evaluate ~cfg p in
  Format.printf "@.day-ahead skill at 5 km:@.";
  List.iter
    (fun (name, (e : EF.eval)) ->
      Format.printf "  %-12s MAE %8.1f kW  ramp-recall %.2f@." name e.EF.mae_kw
        e.EF.ramp_recall)
    [ ("mlp-model", model); ("persistence", persistence);
      ("climatology", climatology) ];

  (* the production workflow, compiled and run on the platform *)
  let g = Sdk.workflow "wind-forecast" in
  let ensemble_src =
    Dsl.Dataflow.source g "ensemble" ~bytes:(10 * 24 * 8 * 128)
      ~annots:[ Dsl.Annot.Locality "cloud" ]
  in
  let feat = TE.input "members" [ 10; 240 ] in
  let features =
    Dsl.Dataflow.task g "features"
      (Dsl.Dataflow.Tensor_kernel
         (TE.contract "mh,hf->mf" [ feat; TE.input "basis" [ 240; 16 ] ]))
      ~deps:[ ensemble_src ]
  in
  let infer =
    Dsl.Dataflow.task g "inference"
      (Dsl.Dataflow.Ai_model { layers = [ 16; 32; 24 ]; activation = "relu" })
      ~deps:[ features ]
  in
  Dsl.Dataflow.sink g "forecast" infer;
  let app = Sdk.compile g in
  Format.printf "@.compiled workflow on the EVEREST demonstrator:@.";
  List.iter
    (fun (pol, stats) -> Format.printf "  %-14s %a@." pol Sdk.pp_run stats)
    (Sdk.compare_policies app)
