(* Use case B (§VI-B): air-quality monitoring of an industrial site.
   Gaussian-plume forecasts drive abatement decisions; low-cost sensors and
   the runtime protection layer guard the data stream.
   Run with:  dune exec examples/airq_monitor.exe *)

module P = Everest_airq.Plume
module AF = Everest_airq.Airq_forecast
module Sn = Everest_airq.Sensors
module Prot = Everest_runtime.Protection

let () =
  Format.printf "== EVEREST use case B: air-quality monitoring ==@.";

  (* decision quality vs grid resolution *)
  Format.printf "@.abatement decision quality (48h, 3 receptors):@.";
  Format.printf "  %10s %8s %10s %8s %14s@." "grid" "res(km)" "precision"
    "recall" "Mflop/hour";
  List.iter
    (fun (cells, res) ->
      let e = AF.evaluate ~hours:48 ~cells ~resolution_km:res () in
      Format.printf "  %7dx%-3d %7.1f %10.2f %8.2f %14.2f@." cells cells res
        e.AF.precision e.AF.recall
        (e.AF.flops_per_hour /. 1e6))
    [ (16, 25.0); (32, 12.5); (64, 2.5) ];

  (* a snapshot plume field and the sensor network view *)
  let hw = (AF.weather_series ~hours:1 ()).(0) in
  let g =
    P.field ~cells:48 ~sources:AF.default_site.AF.sources
      ~wind_ms:hw.AF.wind_ms ~wind_dir_rad:hw.AF.wind_dir_rad ~cls:hw.AF.cls ()
  in
  Format.printf "@.snapshot: max ground concentration %.1f ug/m3, %.1f%% of 10km domain above 50@."
    (P.max_concentration g)
    (100.0 *. P.exceedance_area g ~threshold:50.0);
  let sensors = Sn.deploy ~n:80 ~half_extent_m:10_000.0 () in
  let readings = Sn.sample_all g sensors in
  (match Sn.fused_estimate sensors readings ~x:2_500.0 ~y:600.0 ~radius_m:4_000.0 with
  | Some v -> Format.printf "fused sensor estimate near school: %.1f ug/m3@." v
  | None -> Format.printf "no sensor coverage near school@.");

  (* the protection layer guarding the sensor stream *)
  let layer = Prot.create () in
  let s = Prot.register layer "sensor-stream" in
  for _ = 1 to 200 do
    Prot.train s ~values:[ 20.0; 30.0; 45.0 ] ~bytes:2048 ~latency_s:0.02
  done;
  Prot.finalize s;
  let inject values =
    match Prot.admit layer s ~values ~bytes:2048 ~latency_s:0.02 with
    | Prot.Accepted -> "accepted"
    | Prot.Rejected r -> "rejected: " ^ r
  in
  Format.printf "@.protection layer:@.";
  Format.printf "  clean batch     -> %s@." (inject [ 25.0; 33.0 ]);
  Format.printf "  poisoned batch  -> %s@." (inject [ 1e6 ]);
  Format.printf "  alerts=%d, encryption forced=%b@." layer.Prot.total_alerts
    s.Prot.force_encryption
