(* Quickstart: describe -> compile -> run -> adapt, on a small tensor
   pipeline.  Run with:  dune exec examples/quickstart.exe *)

module Sdk = Everest.Sdk
module Dsl = Everest_dsl
module TE = Everest_dsl.Tensor_expr

let () =
  (* 1. Describe the application: an annotated workflow whose kernels are
     tensor expressions (the EVEREST DSL layer). *)
  let g = Sdk.workflow "quickstart" in
  let src =
    Dsl.Dataflow.source g "sensor" ~bytes:(1 lsl 16)
      ~annots:[ Dsl.Annot.Access Dsl.Annot.Streaming ]
  in
  let x = TE.input "x" [ 64; 64 ] in
  let smooth =
    Dsl.Dataflow.task g "smooth"
      (Dsl.Dataflow.Tensor_kernel (TE.scale 0.25 (TE.add x x)))
      ~deps:[ src ]
  in
  let w = TE.input "w" [ 64; 64 ] in
  let project =
    Dsl.Dataflow.task g "project"
      (Dsl.Dataflow.Tensor_kernel (TE.relu (TE.matmul w w)))
      ~deps:[ smooth ]
      ~annots:[ Dsl.Annot.Security Everest_ir.Dialect_sec.Confidential ]
  in
  Dsl.Dataflow.sink g "result" project;

  (* 2. Compile: unified IR, canonicalization, per-kernel design-space
     exploration producing hardware and software variants. *)
  let app = Sdk.compile g in
  Format.printf "%a" Everest_compiler.Pipeline.report app;
  Format.printf "IR module:@.%s@."
    (Everest_ir.Printer.module_to_string app.Everest_compiler.Pipeline.ir);

  (* 3. Run the compiled workflow on the simulated EVEREST demonstrator
     under several scheduling policies. *)
  List.iter
    (fun (p, stats) -> Format.printf "  %-14s %a@." p Sdk.pp_run stats)
    (Sdk.compare_policies app);

  (* 4. Serve the hot kernel adaptively: the mARGOt loop picks variants and
     reacts to measurements. *)
  let served = Sdk.serve app ~kernel:"project" ~n:50 in
  Format.printf "adaptive serving: %a@." Sdk.pp_served served
