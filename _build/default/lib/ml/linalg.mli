(** Small dense linear algebra used by the learning substrate. *)

type mat = { rows : int; cols : int; data : float array }

(** Zero matrix. *)
val mat : int -> int -> mat

(** @raise Invalid_argument on size mismatch. *)
val of_array : int -> int -> float array -> mat

val get : mat -> int -> int -> float
val set : mat -> int -> int -> float -> unit
val init : int -> int -> (int -> int -> float) -> mat
val copy : mat -> mat

(** @raise Invalid_argument on dimension mismatch. *)
val matmul : mat -> mat -> mat

val matvec : mat -> float array -> float array

(** [axpy a x y] updates [y <- a*x + y] in place. *)
val axpy : float -> float array -> float array -> unit

val dot : float array -> float array -> float
val transpose : mat -> mat
val map : (float -> float) -> mat -> mat

(** Gaussian elimination with partial pivoting.
    @raise Failure on singular systems. *)
val solve : mat -> float array -> float array
