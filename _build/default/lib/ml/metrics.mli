(** Error metrics for the forecasting use cases. *)

(** All pairwise metrics
    @raise Invalid_argument on empty or mismatched arrays. *)

val mse : float array -> float array -> float
val rmse : float array -> float array -> float
val mae : float array -> float array -> float
val mean : float array -> float
val r2 : float array -> float array -> float

(** Asymmetric energy-market imbalance cost: over-forecasting (buying
    balancing energy) is priced higher than under-forecasting. *)
val imbalance_cost :
  ?under_price:float -> ?over_price:float -> float array -> float array -> float

(** Binary-event skill on threshold exceedances. *)
type confusion = { tp : int; fp : int; fn : int; tn : int }

val exceedance_confusion : threshold:float -> float array -> float array -> confusion
val precision : confusion -> float
val recall : confusion -> float
val f1 : confusion -> float

(** Linear-interpolated quantile, [q] in [0, 1].
    @raise Invalid_argument on empty arrays. *)
val percentile : float array -> float -> float

val stddev : float array -> float
