(* Deterministic pseudo-random numbers for reproducible experiments.
   xorshift64* core with Box-Muller gaussians. *)

type t = { mutable state : int64; mutable spare : float option }

let create seed =
  { state = Int64.of_int (if seed = 0 then 0x9E3779B9 else seed); spare = None }

let next_int64 t =
  let x = t.state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.state <- x;
  Int64.mul x 0x2545F4914F6CDD1DL

(* uniform in [0, 1) *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0

let uniform t lo hi = lo +. ((hi -. lo) *. float t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 t) 1) (Int64.of_int bound))

let gaussian ?(mu = 0.0) ?(sigma = 1.0) t =
  match t.spare with
  | Some z ->
      t.spare <- None;
      mu +. (sigma *. z)
  | None ->
      let rec draw () =
        let u = float t in
        if u <= 1e-12 then draw () else u
      in
      let u1 = draw () and u2 = float t in
      let r = sqrt (-2.0 *. log u1) in
      let theta = 2.0 *. Float.pi *. u2 in
      t.spare <- Some (r *. sin theta);
      mu +. (sigma *. r *. cos theta)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr = arr.(int t (Array.length arr))
