(* Small dense linear algebra used by the learning substrate. *)

type mat = { rows : int; cols : int; data : float array }

let mat rows cols = { rows; cols; data = Array.make (rows * cols) 0.0 }

let of_array rows cols data =
  if Array.length data <> rows * cols then invalid_arg "of_array: size mismatch";
  { rows; cols; data }

let get m i j = m.data.((i * m.cols) + j)
let set m i j v = m.data.((i * m.cols) + j) <- v

let init rows cols f =
  let m = mat rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      set m i j (f i j)
    done
  done;
  m

let copy m = { m with data = Array.copy m.data }

let matmul a b =
  if a.cols <> b.rows then invalid_arg "matmul: dims";
  let c = mat a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = get a i k in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          c.data.((i * c.cols) + j) <-
            c.data.((i * c.cols) + j) +. (aik *. get b k j)
        done
    done
  done;
  c

let matvec a (x : float array) =
  if a.cols <> Array.length x then invalid_arg "matvec: dims";
  Array.init a.rows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to a.cols - 1 do
        acc := !acc +. (get a i j *. x.(j))
      done;
      !acc)

(* y <- a*x + y *)
let axpy a (x : float array) (y : float array) =
  Array.iteri (fun i xi -> y.(i) <- y.(i) +. (a *. xi)) x

let dot x y =
  let acc = ref 0.0 in
  Array.iteri (fun i xi -> acc := !acc +. (xi *. y.(i))) x;
  !acc

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let map f m = { m with data = Array.map f m.data }

(* Solve A x = b by Gaussian elimination with partial pivoting. *)
let solve a0 (b0 : float array) =
  let n = a0.rows in
  if a0.cols <> n || Array.length b0 <> n then invalid_arg "solve: dims";
  let a = copy a0 and b = Array.copy b0 in
  for col = 0 to n - 1 do
    (* pivot *)
    let piv = ref col in
    for r = col + 1 to n - 1 do
      if Float.abs (get a r col) > Float.abs (get a !piv col) then piv := r
    done;
    if Float.abs (get a !piv col) < 1e-12 then failwith "solve: singular";
    if !piv <> col then begin
      for j = 0 to n - 1 do
        let tmp = get a col j in
        set a col j (get a !piv j);
        set a !piv j tmp
      done;
      let tmp = b.(col) in
      b.(col) <- b.(!piv);
      b.(!piv) <- tmp
    end;
    for r = col + 1 to n - 1 do
      let f = get a r col /. get a col col in
      if f <> 0.0 then begin
        for j = col to n - 1 do
          set a r j (get a r j -. (f *. get a col j))
        done;
        b.(r) <- b.(r) -. (f *. b.(col))
      end
    done
  done;
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let acc = ref b.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (get a i j *. x.(j))
    done;
    x.(i) <- !acc /. get a i i
  done;
  x
