(* Dataset utilities: normalization, splits, batching. *)

type norm = { means : float array; stds : float array }

let fit_norm (xs : float array array) =
  let n = Array.length xs in
  if n = 0 then invalid_arg "fit_norm: empty";
  let d = Array.length xs.(0) in
  let means = Array.make d 0.0 and stds = Array.make d 0.0 in
  Array.iter (fun x -> Array.iteri (fun j v -> means.(j) <- means.(j) +. v) x) xs;
  Array.iteri (fun j m -> means.(j) <- m /. float_of_int n) means;
  Array.iter
    (fun x ->
      Array.iteri
        (fun j v -> stds.(j) <- stds.(j) +. ((v -. means.(j)) ** 2.0))
        x)
    xs;
  Array.iteri
    (fun j s -> stds.(j) <- Float.max 1e-9 (sqrt (s /. float_of_int n)))
    stds;
  { means; stds }

let normalize norm x =
  Array.mapi (fun j v -> (v -. norm.means.(j)) /. norm.stds.(j)) x

let denormalize_scalar ~mean ~std v = (v *. std) +. mean

let split ?(train_frac = 0.8) xs ys =
  let n = Array.length xs in
  let k = int_of_float (train_frac *. float_of_int n) in
  ( (Array.sub xs 0 k, Array.sub ys 0 k),
    (Array.sub xs k (n - k), Array.sub ys k (n - k)) )

let batches rng ~batch_size xs ys =
  let n = Array.length xs in
  let idx = Array.init n Fun.id in
  Rng.shuffle rng idx;
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let k = min batch_size (n - i) in
      let bx = Array.init k (fun j -> xs.(idx.(i + j))) in
      let by = Array.init k (fun j -> ys.(idx.(i + j))) in
      go (i + k) ((bx, by) :: acc)
  in
  go 0 []
