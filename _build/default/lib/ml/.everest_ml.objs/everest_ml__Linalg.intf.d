lib/ml/linalg.mli:
