lib/ml/metrics.mli:
