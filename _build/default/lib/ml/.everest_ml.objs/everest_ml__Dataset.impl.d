lib/ml/dataset.ml: Array Float Fun List Rng
