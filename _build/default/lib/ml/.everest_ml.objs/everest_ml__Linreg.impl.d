lib/ml/linreg.ml: Array Linalg
