lib/ml/rng.mli:
