lib/ml/linreg.mli:
