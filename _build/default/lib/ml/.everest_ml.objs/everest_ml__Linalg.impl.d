lib/ml/linalg.ml: Array Float
