lib/ml/mlp.mli:
