lib/ml/dataset.mli: Rng
