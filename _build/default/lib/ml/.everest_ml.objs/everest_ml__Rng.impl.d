lib/ml/rng.ml: Array Float Int64
