lib/ml/mlp.ml: Array Dataset Float Fun Linalg List Rng
