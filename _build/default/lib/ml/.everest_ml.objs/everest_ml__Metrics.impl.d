lib/ml/metrics.ml: Array Float
