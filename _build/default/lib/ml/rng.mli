(** Deterministic pseudo-random numbers for reproducible experiments
    (xorshift64* core with Box–Muller gaussians). *)

type t

val create : int -> t

(** Uniform in [0, 1). *)
val float : t -> float

val uniform : t -> float -> float -> float

(** Uniform integer in [0, bound).
    @raise Invalid_argument on non-positive bounds. *)
val int : t -> int -> int

val gaussian : ?mu:float -> ?sigma:float -> t -> float

(** In-place Fisher–Yates shuffle. *)
val shuffle : t -> 'a array -> unit

val pick : t -> 'a array -> 'a
