(* Error metrics for the forecasting use cases. *)

let check_lengths a b =
  if Array.length a <> Array.length b then invalid_arg "metrics: length mismatch";
  if Array.length a = 0 then invalid_arg "metrics: empty"

let mse pred truth =
  check_lengths pred truth;
  let acc = ref 0.0 in
  Array.iteri (fun i p -> acc := !acc +. ((p -. truth.(i)) ** 2.0)) pred;
  !acc /. float_of_int (Array.length pred)

let rmse pred truth = sqrt (mse pred truth)

let mae pred truth =
  check_lengths pred truth;
  let acc = ref 0.0 in
  Array.iteri (fun i p -> acc := !acc +. Float.abs (p -. truth.(i))) pred;
  !acc /. float_of_int (Array.length pred)

let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let r2 pred truth =
  check_lengths pred truth;
  let mu = mean truth in
  let ss_res = ref 0.0 and ss_tot = ref 0.0 in
  Array.iteri
    (fun i t ->
      ss_res := !ss_res +. ((pred.(i) -. t) ** 2.0);
      ss_tot := !ss_tot +. ((t -. mu) ** 2.0))
    truth;
  if !ss_tot = 0.0 then 0.0 else 1.0 -. (!ss_res /. !ss_tot)

(* Asymmetric imbalance cost of energy-market forecasting: under-forecasting
   (producing more than sold) is cheaper than over-forecasting (buying
   balancing energy). *)
let imbalance_cost ?(under_price = 20.0) ?(over_price = 60.0) pred truth =
  check_lengths pred truth;
  let acc = ref 0.0 in
  Array.iteri
    (fun i p ->
      let e = p -. truth.(i) in
      acc := !acc +. (if e > 0.0 then over_price *. e else under_price *. -.e))
    pred;
  !acc

(* Binary-event skill: detection of threshold exceedances. *)
type confusion = { tp : int; fp : int; fn : int; tn : int }

let exceedance_confusion ~threshold pred truth =
  check_lengths pred truth;
  let c = ref { tp = 0; fp = 0; fn = 0; tn = 0 } in
  Array.iteri
    (fun i p ->
      let pe = p >= threshold and te = truth.(i) >= threshold in
      c :=
        (match (pe, te) with
        | true, true -> { !c with tp = !c.tp + 1 }
        | true, false -> { !c with fp = !c.fp + 1 }
        | false, true -> { !c with fn = !c.fn + 1 }
        | false, false -> { !c with tn = !c.tn + 1 }))
    pred;
  !c

let precision c =
  if c.tp + c.fp = 0 then 1.0 else float_of_int c.tp /. float_of_int (c.tp + c.fp)

let recall c =
  if c.tp + c.fn = 0 then 1.0 else float_of_int c.tp /. float_of_int (c.tp + c.fn)

let f1 c =
  let p = precision c and r = recall c in
  if p +. r = 0.0 then 0.0 else 2.0 *. p *. r /. (p +. r)

let percentile (xs : float array) q =
  if Array.length xs = 0 then invalid_arg "percentile: empty";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = min (n - 1) (lo + 1) in
  let frac = pos -. float_of_int lo in
  (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let stddev xs =
  let mu = mean xs in
  sqrt
    (Array.fold_left (fun acc x -> acc +. ((x -. mu) ** 2.0)) 0.0 xs
    /. float_of_int (Array.length xs))
