(** Multilayer perceptron with backpropagation and SGD + momentum.

    Stands in for the "deep learning model trying to characterize the
    complex input/output relationship of the given power plant" (use case
    A) and the traffic prediction model (use case C). *)

type activation = Relu | Tanh | Sigmoid | Linear

type t

(** [create ~layers ~activation ()] builds a network; [layers] lists sizes
    from input to output (He-initialized, linear output layer).
    @raise Invalid_argument with fewer than two sizes. *)
val create : ?seed:int -> layers:int list -> activation:activation -> unit -> t

val forward : t -> float array -> float array

(** One SGD step on a batch; returns the batch MSE. *)
val train_batch :
  ?lr:float -> ?momentum:float -> t -> float array array -> float array array -> float

(** Mini-batch training; returns the per-epoch loss curve. *)
val fit :
  ?epochs:int ->
  ?lr:float ->
  ?momentum:float ->
  ?batch_size:int ->
  ?seed:int ->
  t ->
  float array array ->
  float array array ->
  float list

val predict : t -> float array -> float array

(** Inference cost in flops per sample. *)
val inference_flops : t -> int
