(** Ridge-regularized linear regression via the normal equations — the
    simple learner used as a baseline against the MLP. *)

type t = { weights : float array; bias : float }

(** @raise Invalid_argument on empty input.
    @raise Failure on (unregularized) singular systems. *)
val fit : ?lambda:float -> float array array -> float array -> t

val predict : t -> float array -> float
