(* Multilayer perceptron with backpropagation and SGD + momentum.

   Stands in for the "deep learning model trying to characterize the complex
   input/output relationship of the given power plant" (use case A) and the
   traffic prediction model (use case C). *)

type activation = Relu | Tanh | Sigmoid | Linear

let act = function
  | Relu -> fun x -> Float.max 0.0 x
  | Tanh -> Float.tanh
  | Sigmoid -> fun x -> 1.0 /. (1.0 +. exp (-.x))
  | Linear -> Fun.id

let act_deriv = function
  | Relu -> fun y -> if y > 0.0 then 1.0 else 0.0
  | Tanh -> fun y -> 1.0 -. (y *. y)  (* in terms of output *)
  | Sigmoid -> fun y -> y *. (1.0 -. y)
  | Linear -> fun _ -> 1.0

type layer = {
  w : Linalg.mat;  (* out x in *)
  b : float array;
  vw : Linalg.mat;  (* momentum buffers *)
  vb : float array;
  activation : activation;
}

type t = { layers : layer list; n_in : int }

let create ?(seed = 7) ~layers:sizes ~activation () =
  match sizes with
  | [] | [ _ ] -> invalid_arg "mlp: need at least input and output sizes"
  | n_in :: rest ->
      let rng = Rng.create seed in
      let rec build prev = function
        | [] -> []
        | n :: tl ->
            let scale = sqrt (2.0 /. float_of_int prev) in
            let w =
              Linalg.init n prev (fun _ _ -> Rng.gaussian ~sigma:scale rng)
            in
            let layer =
              { w; b = Array.make n 0.0; vw = Linalg.mat n prev;
                vb = Array.make n 0.0;
                activation = (if tl = [] then Linear else activation) }
            in
            layer :: build n tl
      in
      { layers = build n_in rest; n_in }

let forward (net : t) (x : float array) =
  List.fold_left
    (fun v (l : layer) ->
      let z = Linalg.matvec l.w v in
      Array.mapi (fun i zi -> act l.activation (zi +. l.b.(i))) z)
    x net.layers

(* Forward keeping every activation (for backprop). *)
let forward_trace net x =
  let rec go v = function
    | [] -> [ v ]
    | (l : layer) :: rest ->
        let z = Linalg.matvec l.w v in
        let a = Array.mapi (fun i zi -> act l.activation (zi +. l.b.(i))) z in
        v :: go a rest
  in
  go x net.layers

(* One SGD step on a batch; returns batch MSE loss. *)
let train_batch ?(lr = 0.01) ?(momentum = 0.9) (net : t)
    (xs : float array array) (ys : float array array) =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let n_layers = List.length net.layers in
    let grads_w =
      List.map (fun (l : layer) -> Linalg.mat l.w.Linalg.rows l.w.Linalg.cols) net.layers
    in
    let grads_b = List.map (fun (l : layer) -> Array.make (Array.length l.b) 0.0) net.layers in
    let loss = ref 0.0 in
    Array.iteri
      (fun si x ->
        let y = ys.(si) in
        let acts = forward_trace net x in
        let out = List.nth acts n_layers in
        (* output delta: dL/da for MSE, times activation' *)
        let delta =
          ref
            (Array.mapi
               (fun i o ->
                 let e = o -. y.(i) in
                 loss := !loss +. (e *. e);
                 2.0 *. e
                 *. act_deriv (List.nth net.layers (n_layers - 1)).activation o)
               out)
        in
        (* walk layers backwards *)
        for li = n_layers - 1 downto 0 do
          let l = List.nth net.layers li in
          let input = List.nth acts li in
          let gw = List.nth grads_w li and gb = List.nth grads_b li in
          Array.iteri
            (fun i d ->
              gb.(i) <- gb.(i) +. d;
              for j = 0 to Array.length input - 1 do
                Linalg.set gw i j (Linalg.get gw i j +. (d *. input.(j)))
              done)
            !delta;
          if li > 0 then begin
            let prev = List.nth net.layers (li - 1) in
            let prev_out = List.nth acts li in
            ignore prev;
            let new_delta =
              Array.init (Array.length input) (fun j ->
                  let acc = ref 0.0 in
                  Array.iteri
                    (fun i d -> acc := !acc +. (d *. Linalg.get l.w i j))
                    !delta;
                  !acc
                  *. act_deriv (List.nth net.layers (li - 1)).activation
                       prev_out.(j))
            in
            delta := new_delta
          end
        done)
      xs;
    (* apply momentum SGD *)
    let scale = lr /. float_of_int n in
    List.iteri
      (fun li (l : layer) ->
        let gw = List.nth grads_w li and gb = List.nth grads_b li in
        for i = 0 to l.w.Linalg.rows - 1 do
          for j = 0 to l.w.Linalg.cols - 1 do
            let v =
              (momentum *. Linalg.get l.vw i j) -. (scale *. Linalg.get gw i j)
            in
            Linalg.set l.vw i j v;
            Linalg.set l.w i j (Linalg.get l.w i j +. v)
          done;
          let vb = (momentum *. l.vb.(i)) -. (scale *. gb.(i)) in
          l.vb.(i) <- vb;
          l.b.(i) <- l.b.(i) +. vb
        done)
      net.layers;
    !loss /. float_of_int n
  end

let fit ?(epochs = 100) ?(lr = 0.01) ?(momentum = 0.9) ?(batch_size = 32)
    ?(seed = 11) (net : t) xs ys =
  let rng = Rng.create seed in
  let losses = ref [] in
  for _e = 1 to epochs do
    let epoch_loss = ref 0.0 and nb = ref 0 in
    List.iter
      (fun (bx, by) ->
        epoch_loss := !epoch_loss +. train_batch ~lr ~momentum net bx by;
        incr nb)
      (Dataset.batches rng ~batch_size xs ys);
    losses := (!epoch_loss /. float_of_int (max 1 !nb)) :: !losses
  done;
  List.rev !losses

let predict = forward

(* Inference cost in flops: 2 * sum(in*out) per sample. *)
let inference_flops net =
  List.fold_left
    (fun acc (l : layer) -> acc + (2 * l.w.Linalg.rows * l.w.Linalg.cols))
    0 net.layers
