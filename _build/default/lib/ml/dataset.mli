(** Dataset utilities: normalization, splits, batching. *)

(** Per-feature standardization parameters. *)
type norm = { means : float array; stds : float array }

(** @raise Invalid_argument on empty input. *)
val fit_norm : float array array -> norm

val normalize : norm -> float array -> float array
val denormalize_scalar : mean:float -> std:float -> float -> float

(** Front/back split (no shuffling — time series stay ordered). *)
val split :
  ?train_frac:float ->
  'a array ->
  'b array ->
  ('a array * 'b array) * ('a array * 'b array)

(** Shuffled mini-batches covering every sample exactly once. *)
val batches :
  Rng.t ->
  batch_size:int ->
  'a array ->
  'b array ->
  ('a array * 'b array) list
