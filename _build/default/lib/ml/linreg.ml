(* Ridge-regularized linear regression via the normal equations — the simple
   learner used as a baseline against the MLP. *)

type t = { weights : float array; bias : float }

let fit ?(lambda = 1e-6) (xs : float array array) (ys : float array) : t =
  let n = Array.length xs in
  if n = 0 then invalid_arg "linreg: empty";
  let d = Array.length xs.(0) in
  (* augmented design with bias column *)
  let dd = d + 1 in
  let xtx = Linalg.mat dd dd in
  let xty = Array.make dd 0.0 in
  Array.iteri
    (fun si x ->
      let aug = Array.append x [| 1.0 |] in
      for i = 0 to dd - 1 do
        xty.(i) <- xty.(i) +. (aug.(i) *. ys.(si));
        for j = 0 to dd - 1 do
          Linalg.set xtx i j (Linalg.get xtx i j +. (aug.(i) *. aug.(j)))
        done
      done)
    xs;
  for i = 0 to dd - 1 do
    Linalg.set xtx i i (Linalg.get xtx i i +. lambda)
  done;
  let sol = Linalg.solve xtx xty in
  { weights = Array.sub sol 0 d; bias = sol.(d) }

let predict (m : t) (x : float array) = Linalg.dot m.weights x +. m.bias
