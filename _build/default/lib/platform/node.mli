(** Simulated compute nodes: CPUs with core contention, FPGAs with
    shell-role slots and partial reconfiguration, and per-node energy
    accounting. *)

type fpga_dev = {
  fspec : Spec.fpga;
  dev_id : int;
  slots : Desim.resource;
  mutable loaded : (int * string) list;  (** Slot index -> bitstream name. *)
  mutable next_slot : int;
  mutable reconfigs : int;
  mutable f_busy_s : float;
}

type t = {
  name : string;
  tier : Spec.tier;
  cpu : Spec.cpu;
  cores : Desim.resource;
  fpgas : fpga_dev list;
  mutable cpu_busy_core_s : float;
  mutable energy_j : float;  (** Active energy; idle added by {!total_energy}. *)
  mutable tasks_run : int;
}

val create : ?fpgas:Spec.fpga list -> name:string -> tier:Spec.tier -> Spec.cpu -> t
val has_fpga : t -> bool

(** Acquire [n] units, then run the continuation. *)
val acquire_n : Desim.t -> Desim.resource -> int -> (unit -> unit) -> unit

val release_n : Desim.t -> Desim.resource -> int -> unit

(** Run a software kernel on up to [threads] cores; the continuation runs at
    completion. *)
val run_cpu :
  Desim.t ->
  t ->
  flops:float ->
  bytes:float ->
  ?threads:int ->
  (unit -> unit) ->
  unit

(** Least-busy FPGA device of a node. *)
val pick_device : t -> fpga_dev option

(** Install a bitstream into a role slot without simulated delay
    (deployment-time configuration). *)
val preload : fpga_dev -> bitstream:string -> unit

(** Ensure the bitstream occupies a role slot, paying reconfiguration time
    when absent (round-robin eviction). *)
val ensure_loaded : Desim.t -> fpga_dev -> bitstream:string -> (unit -> unit) -> unit

(** Execute a synthesized kernel: waits for a role slot, loads the
    bitstream if needed, transfers data over [host_link], runs for the
    estimated time, transfers back. *)
val run_fpga :
  Desim.t ->
  t ->
  fpga_dev ->
  bitstream:string ->
  estimate:Everest_hls.Estimate.t ->
  host_link:Spec.link ->
  in_bytes:int ->
  out_bytes:int ->
  (unit -> unit) ->
  unit

(** Active energy plus the idle floor over [elapsed] seconds. *)
val total_energy : t -> elapsed:float -> float

val cpu_utilization : t -> elapsed:float -> float
val pp : Format.formatter -> t -> unit
