(** Discrete-event simulation engine.

    Event-scheduling style: callbacks queue at absolute times in a binary
    min-heap; FIFO resources model contention (CPU cores, FPGA role slots).
    All platform and runtime behaviour in EVEREST's simulated target system
    runs on this engine. *)

type t

val create : unit -> t

(** Current simulated time in seconds. *)
val now : t -> float

(** [schedule sim delay f] runs [f] at [now + delay].
    @raise Invalid_argument on negative delays. *)
val schedule : t -> float -> (unit -> unit) -> unit

(** [at sim time f] runs [f] at the absolute [time].
    @raise Invalid_argument for times in the past. *)
val at : t -> float -> (unit -> unit) -> unit

(** Run until the queue drains, or until the horizon [until]; ties execute
    in insertion order. *)
val run : ?until:float -> t -> unit

(** Number of events executed so far. *)
val executed : t -> int

(** {2 FIFO resources} *)

type resource = {
  rname : string;
  capacity : int;
  mutable in_use : int;
  waiting : (unit -> unit) Queue.t;
  mutable peak : int;
  mutable total_wait_starts : int;
}

(** [resource name capacity] models [capacity] interchangeable units. *)
val resource : string -> int -> resource

(** [acquire sim r k] runs [k] as soon as a unit is free (immediately when
    available, else FIFO). *)
val acquire : t -> resource -> (unit -> unit) -> unit

(** Release one unit; hands it directly to the next waiter if any.
    @raise Invalid_argument when nothing is held. *)
val release : t -> resource -> unit

(** Hold one unit for [duration] simulated seconds, then continue with the
    callback. *)
val with_resource : t -> resource -> duration:float -> (unit -> unit) -> unit

val queue_length : resource -> int
val utilization_now : resource -> float
