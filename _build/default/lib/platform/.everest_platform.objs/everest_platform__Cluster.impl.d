lib/platform/cluster.ml: Desim Fmt List Node Printf Spec String
