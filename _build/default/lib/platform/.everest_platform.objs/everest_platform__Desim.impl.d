lib/platform/desim.ml: Array Queue
