lib/platform/spec.mli: Everest_hls
