lib/platform/node.ml: Desim Everest_hls Fmt List Printf Spec String
