lib/platform/node.mli: Desim Everest_hls Format Spec
