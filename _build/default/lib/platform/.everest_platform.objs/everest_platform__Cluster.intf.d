lib/platform/cluster.mli: Desim Format Node Spec
