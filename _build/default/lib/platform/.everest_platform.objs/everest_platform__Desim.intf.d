lib/platform/desim.mli: Queue
