lib/platform/spec.ml: Everest_hls Float
